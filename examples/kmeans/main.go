// K-Means: the paper's flagship data-locality workload (Algorithm 1),
// iterated to convergence on the public API.
//
// Each iteration ships only *positions* (node, file, offset) and
// similarity scores between flowlets — never the rating vectors — and
// routes back to the node that holds a chosen record to re-read it
// locally (paper §3.3). The iteration loop feeds each round's centroids
// into the next graph.
//
// Run with:
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	hamr "github.com/hamr-go/hamr"
	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/datagen"
)

// firstLines extracts the given line indices from a text blob.
func firstLines(data []byte, idx []int) []string {
	lines := strings.Split(string(data), "\n")
	out := make([]string, 0, len(idx))
	for _, i := range idx {
		if i < len(lines) {
			out = append(out, lines[i])
		}
	}
	return out
}

func main() {
	c, err := hamr.NewCluster(hamr.ClusterOptions{NumNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Synthesize PUMA-format movie data with 3 latent taste clusters.
	const k = 3
	data := datagen.Movies(datagen.MoviesConfig{
		Seed: 99, Movies: 1200, Users: 80, Clusters: k,
	})
	files, err := hamr.DistributeLocalText(c, "movies", data, 8)
	if err != nil {
		log.Fatal(err)
	}
	// Deliberately poor seeds — the first k records all come from the same
	// latent cluster (the generator assigns clusters round-robin, so rows
	// 0, 3, 6 share cluster 0), which forces the medoids to move.
	var centroids []hamrapps.Centroid
	for _, line := range firstLines(data, []int{0, 3, 6}) {
		rec, ok := datagen.ParseMovie(line)
		if !ok {
			log.Fatalf("bad seed record %q", line)
		}
		centroids = append(centroids, rec.Ratings)
	}

	for iter := 1; iter <= 8; iter++ {
		g, sinks, err := hamrapps.BuildKMeans(hamrapps.KMeansOptions{
			Files:     files,
			Centroids: centroids,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.Run(g); err != nil {
			log.Fatal(err)
		}

		// Pull the new centroids out of the job's sink.
		next := make([]hamrapps.Centroid, k)
		for _, kv := range sinks.Centroids.Pairs() {
			var idx int
			fmt.Sscanf(kv.Key, "%d", &idx)
			cent, err := hamrapps.ParseCentroid(kv.Value.(string))
			if err != nil {
				log.Fatal(err)
			}
			if idx >= 0 && idx < k {
				next[idx] = cent
			}
		}
		moved := 0
		for i := range next {
			if next[i] == nil {
				next[i] = centroids[i] // empty cluster keeps its centroid
				continue
			}
			if hamrapps.FormatCentroid(next[i]) != hamrapps.FormatCentroid(centroids[i]) {
				moved++
			}
		}

		// Cluster sizes from the locally-written assignments.
		sizes := map[string]int{}
		for _, kv := range sinks.Assignments.Pairs() {
			sizes[kv.Key]++
		}
		var keys []string
		for ck := range sizes {
			keys = append(keys, ck)
		}
		sort.Strings(keys)
		fmt.Printf("iteration %d: %d centroid(s) moved, cluster sizes:", iter, moved)
		for _, ck := range keys {
			fmt.Printf(" c%s=%d", ck, sizes[ck])
		}
		fmt.Println()

		centroids = next
		if moved == 0 {
			fmt.Println("converged: medoid centroids are stable")
			break
		}
	}
}
