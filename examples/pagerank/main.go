// PageRank: an iterative, multi-phase dataflow job on the public API.
//
// This example shows the two properties the engine was designed around
// (paper §3.1/§3.2): a DAG job with more than two phases, and iteration
// state kept in distributed memory (the kv-store) instead of being
// re-materialized on disk between jobs. The first iteration parses the
// edge list and builds adjacency lists in memory; later iterations replay
// contributions straight from memory.
//
// Run with:
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	hamr "github.com/hamr-go/hamr"
)

const (
	damping   = 0.85
	adjTable  = "example.adj"
	rankTable = "example.rank"
)

// edgeJoin is the iteration-1 reduce: collect each page's outgoing links,
// remember them in node-local memory, seed the rank, and send the first
// contributions.
type edgeJoin struct{}

func (edgeJoin) Reduce(page string, values []any, ctx hamr.Context) error {
	st, err := hamr.StoreService(ctx)
	if err != nil {
		return err
	}
	dsts := make([]string, 0, len(values))
	for _, v := range values {
		dsts = append(dsts, v.(string))
	}
	sort.Strings(dsts)
	st.Table(adjTable).LocalPut(ctx.Node(), page, dsts)
	st.Table(rankTable).LocalPut(ctx.Node(), page, 1.0)
	contrib := 1.0 / float64(len(dsts))
	for _, d := range dsts {
		if err := ctx.Emit(hamr.KV{Key: d, Value: contrib}); err != nil {
			return err
		}
	}
	return nil
}

// memLoader replays contributions from the in-memory adjacency (iterations
// two and up) — one split per node, each reading only its own shard.
type memLoader struct{}

func (memLoader) Plan(env *hamr.Env) ([]hamr.Split, error) {
	splits := make([]hamr.Split, env.NumNodes)
	for n := range splits {
		splits[n] = hamr.Split{Payload: n, PreferredNode: n}
	}
	return splits, nil
}

func (memLoader) Load(sp hamr.Split, ctx hamr.Context) error {
	st, err := hamr.StoreService(ctx)
	if err != nil {
		return err
	}
	node := ctx.Node()
	adj, ranks := st.Table(adjTable), st.Table(rankTable)
	for _, page := range adj.LocalKeys(node) {
		v, _ := adj.LocalGet(node, page)
		dsts := v.([]string)
		rank := 1.0
		if rv, ok := ranks.LocalGet(node, page); ok {
			rank = rv.(float64)
		}
		contrib := rank / float64(len(dsts))
		for _, d := range dsts {
			if err := ctx.Emit(hamr.KV{Key: d, Value: contrib}); err != nil {
				return err
			}
		}
	}
	return nil
}

// rankMerge sums a page's incoming contributions and updates its rank in
// memory; it emits the rank delta for convergence tracking.
type rankMerge struct{}

func (rankMerge) Reduce(page string, values []any, ctx hamr.Context) error {
	st, err := hamr.StoreService(ctx)
	if err != nil {
		return err
	}
	sum := 0.0
	for _, v := range values {
		sum += v.(float64)
	}
	next := (1 - damping) + damping*sum
	ranks := st.Table(rankTable)
	old := 1.0
	if ov, ok := ranks.LocalGet(ctx.Node(), page); ok {
		old = ov.(float64)
	}
	ranks.LocalPut(ctx.Node(), page, next)
	delta := next - old
	if delta < 0 {
		delta = -delta
	}
	return ctx.Emit(hamr.KV{Key: "delta", Value: delta})
}

// edgeLoader turns raw "src dst" lines into (src, dst) pairs.
type edgeLoader struct {
	inner hamr.Loader
}

func (l *edgeLoader) Plan(env *hamr.Env) ([]hamr.Split, error) { return l.inner.Plan(env) }

func (l *edgeLoader) Load(sp hamr.Split, ctx hamr.Context) error {
	return l.inner.Load(sp, &edgeCtx{Context: ctx})
}

type edgeCtx struct{ hamr.Context }

func (c *edgeCtx) Emit(kv hamr.KV) error {
	f := strings.Fields(kv.Value.(string))
	if len(f) != 2 {
		return fmt.Errorf("bad edge line %q", kv.Value)
	}
	return c.Context.Emit(hamr.KV{Key: f[0], Value: f[1]})
}

// maxDelta keeps the largest observed rank change.
func maxDelta() hamr.PartialReducer {
	return hamr.Fold(func(key string, state, value any) (any, error) {
		v := value.(float64)
		if state == nil || v > state.(float64) {
			return v, nil
		}
		return state, nil
	}, nil)
}

func buildIteration(first bool, edges hamr.Loader) (*hamr.Graph, *hamr.CollectSink, error) {
	var p *hamr.Pipeline
	if first {
		p = hamr.NewPipeline("pagerank-1", &edgeLoader{inner: edges}).
			Reduce("join", edgeJoin{})
	} else {
		p = hamr.NewPipeline("pagerank-n", memLoader{})
	}
	return p.
		Reduce("merge", rankMerge{}).
		PartialReduce("maxdelta", maxDelta()).
		Collect()
}

func main() {
	c, err := hamr.NewCluster(hamr.ClusterOptions{NumNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// A small deterministic graph: a hub (page 0) that everything links
	// to, plus a ring.
	var lines []string
	const pages = 60
	for i := 1; i < pages; i++ {
		lines = append(lines, fmt.Sprintf("%d 0", i))
		lines = append(lines, fmt.Sprintf("%d %d", i, i%pages+1-1))
		lines = append(lines, fmt.Sprintf("0 %d", i))
	}
	edges := &hamr.SliceLoader{Chunks: [][]string{lines[:len(lines)/2], lines[len(lines)/2:]}}

	const iters = 10
	var lastDelta float64
	for it := 0; it < iters; it++ {
		g, sink, err := buildIteration(it == 0, edges)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.Run(g); err != nil {
			log.Fatal(err)
		}
		lastDelta = 0
		for _, kv := range sink.Pairs() {
			if d := kv.Value.(float64); d > lastDelta {
				lastDelta = d
			}
		}
		fmt.Printf("iteration %2d: max rank delta %.6f\n", it+1, lastDelta)
		if lastDelta < 1e-4 {
			break
		}
	}

	// Read the final ranks out of distributed memory.
	type pr struct {
		page string
		rank float64
	}
	var ranks []pr
	t := c.Store().Table(rankTable)
	for n := 0; n < c.NumNodes(); n++ {
		for _, k := range t.LocalKeys(n) {
			if v, ok := t.LocalGet(n, k); ok {
				ranks = append(ranks, pr{k, v.(float64)})
			}
		}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].rank > ranks[j].rank })
	fmt.Println("top pages:")
	for i := 0; i < 5 && i < len(ranks); i++ {
		fmt.Printf("  page %-4s rank %.4f\n", ranks[i].page, ranks[i].rank)
	}
	if _, err := strconv.Atoi(ranks[0].page); err == nil && ranks[0].page != "0" {
		log.Fatalf("expected the hub (page 0) to rank first, got page %s", ranks[0].page)
	}
}
