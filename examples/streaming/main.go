// Streaming: windowed event counting over an unbounded source.
//
// The original system's pitch is one engine for both batch and streaming
// (the Lambda architecture, paper §1/Fig. 1). This example runs the same
// flowlet pipeline over a live event source via micro-batch epochs:
// events are windowed by event time, counted per (window, event type)
// with a partial reduce, and the running totals persist in the cluster's
// distributed key-value store across epochs.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"time"

	hamr "github.com/hamr-go/hamr"
)

const totalsTable = "stream.event.totals"

func main() {
	c, err := hamr.NewCluster(hamr.ClusterOptions{NumNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	src := hamr.NewStreamSource()

	// The per-epoch graph: the SAME pipeline a batch job would use, fed
	// by whatever the epoch drained from the source.
	build := func(epoch int, loader hamr.Loader) (*hamr.Graph, error) {
		g, err := hamr.NewPipeline(fmt.Sprintf("events-epoch-%d", epoch), loader).
			Via(hamr.WithRouting(hamr.RouteLocal)).
			Map("window", hamr.WindowAssign{
				Width: time.Second,
				Keys: func(line string) []hamr.KV {
					// Event lines look like "login user42"; count by verb.
					verb := strings.Fields(line)[0]
					return []hamr.KV{{Key: verb, Value: int64(1)}}
				},
			}).
			PartialReduce("count", hamr.Accumulate{Table: totalsTable}).
			Sink("out", hamr.NewCountSink())
		return g, err
	}
	exec := hamr.NewStreamExecutor(c, src, build)

	// A producer pushes events with slightly skewed verbs while the
	// executor processes epochs.
	rng := rand.New(rand.NewSource(7))
	verbs := []string{"login", "click", "click", "click", "purchase", "logout"}
	base := time.Unix(1_700_000_000, 0)
	pushed := map[string]int64{}
	for epoch := 0; epoch < 5; epoch++ {
		for i := 0; i < 400; i++ {
			verb := verbs[rng.Intn(len(verbs))]
			pushed[verb]++
			err := src.Push(hamr.StreamRecord{
				Time:  base.Add(time.Duration(epoch*400+i) * 7 * time.Millisecond),
				Value: fmt.Sprintf("%s user%02d", verb, rng.Intn(50)),
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		n, err := exec.Epoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: processed %d events\n", epoch+1, n)
	}
	src.Close()

	// Read the running totals back out of distributed memory and fold the
	// per-window counts into per-verb totals for the summary.
	totals := hamr.StreamTotals(c, totalsTable)
	perVerb := map[string]int64{}
	windows := map[string]bool{}
	for wk, n := range totals {
		w, verb, err := hamr.SplitWindowKey(wk)
		if err != nil {
			log.Fatal(err)
		}
		windows[w.Format("15:04:05")] = true
		perVerb[verb] += n
	}
	type vc struct {
		verb string
		n    int64
	}
	var rows []vc
	for v, n := range perVerb {
		rows = append(rows, vc{v, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Printf("windowed totals across %d one-second windows:\n", len(windows))
	for _, r := range rows {
		fmt.Printf("  %-9s %4d (pushed %d)\n", r.verb, r.n, pushed[r.verb])
		if r.n != pushed[r.verb] {
			log.Fatalf("streaming count mismatch for %s: got %d, pushed %d", r.verb, r.n, pushed[r.verb])
		}
	}
	fmt.Printf("%d epochs, %d records — exactly-once per epoch, state in the kv-store\n",
		exec.Epochs(), exec.Records())
}
