// SQL: interactive-style queries compiled to flowlet graphs — the
// "higher level interface like SQL" on the original system's roadmap
// (paper §7), built on the same engine as every other example.
//
// Run with:
//
//	go run ./examples/sql
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	hamr "github.com/hamr-go/hamr"
)

func main() {
	c, err := hamr.NewCluster(hamr.ClusterOptions{NumNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Synthesize an orders table: city, item, quantity, price.
	rng := rand.New(rand.NewSource(11))
	cities := []string{"NYC", "SFO", "LAX", "CHI", "SEA"}
	items := []string{"widget", "gadget", "doohickey"}
	var rows []string
	for i := 0; i < 5000; i++ {
		rows = append(rows, fmt.Sprintf("%s\t%s\t%d\t%d",
			cities[rng.Intn(len(cities))],
			items[rng.Intn(len(items))],
			1+rng.Intn(9),
			5+rng.Intn(95)))
	}
	files, err := hamr.DistributeLocalText(c, "orders", []byte(strings.Join(rows, "\n")+"\n"), 8)
	if err != nil {
		log.Fatal(err)
	}

	cat := hamr.NewSQLCatalog(c)
	if err := cat.Register(&hamr.SQLTable{
		Name:    "orders",
		Columns: []string{"city", "item", "qty", "price"},
		Loader:  &hamr.LocalTextLoader{Files: files},
	}); err != nil {
		log.Fatal(err)
	}

	for _, stmt := range []string{
		"SELECT city, COUNT(*) AS orders, SUM(qty) AS units FROM orders GROUP BY city ORDER BY units DESC",
		"SELECT item, AVG(price) AS avg_price, MAX(price) AS max_price FROM orders GROUP BY item ORDER BY avg_price DESC",
		"SELECT COUNT(*) AS big_orders FROM orders WHERE qty >= 8 AND price > 50",
		"SELECT city, item, price FROM orders WHERE price >= 98 ORDER BY price DESC LIMIT 5",
	} {
		fmt.Printf("hamr> %s\n", stmt)
		res, err := cat.Query(stmt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(indent(res.Format(), "  "))
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
