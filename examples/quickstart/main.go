// Quickstart: WordCount on the public HAMR API.
//
// This is the canonical first HAMR program: a loader feeding lines, a
// FlatMap splitting them into (word, 1) pairs, a Filter dropping noise
// words, and a partial reduce that counts occurrences as soon as they
// arrive (no barrier before aggregation — the dataflow property the
// engine is built around). Pipeline.Run wires the sink and executes the
// job in one call; no manual graph assembly is needed.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	hamr "github.com/hamr-go/hamr"
)

// splitLine turns one text line into (word, 1) pairs.
func splitLine(kv hamr.KV, emit func(hamr.KV) error) error {
	for _, w := range strings.Fields(kv.Value.(string)) {
		w = strings.ToLower(strings.Trim(w, ".,;:!?\"'()"))
		if w == "" {
			continue
		}
		if err := emit(hamr.KV{Key: w, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	// A 4-node in-process cluster. Real deployments of the original system
	// spanned physical machines; the Go engine simulates the cluster in
	// one process while keeping all the distributed machinery (per-node
	// runtimes, shuffle, flow control) live.
	c, err := hamr.NewCluster(hamr.ClusterOptions{NumNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	corpus := []string{
		"the quick brown fox jumps over the lazy dog",
		"the dog barks and the fox runs",
		"a lazy afternoon for a quick brown fox",
		"dataflow engines keep the data moving and the disks idle",
	}
	// Two chunks -> two loader splits -> parallel loading.
	loader := &hamr.SliceLoader{Chunks: [][]string{corpus[:2], corpus[2:]}}

	// Stopwords to drop before the shuffle — Filter runs on the mapping
	// node, so filtered pairs never cross the network.
	stop := map[string]bool{"the": true, "a": true, "and": true, "for": true}

	res, sink, err := hamr.NewPipeline("wordcount", loader).
		Via(hamr.WithRouting(hamr.RouteLocal)). // split where the data loads
		FlatMap("split", splitLine).
		Via(hamr.WithRouting(hamr.RouteLocal)).
		Filter("drop-stopwords", func(kv hamr.KV) bool { return !stop[kv.Key] }).
		PartialReduce("count", hamr.SumInt64()).
		Run(context.Background(), c)
	if err != nil {
		log.Fatal(err)
	}

	counts := sink.Pairs()
	sort.Slice(counts, func(i, j int) bool {
		a, b := counts[i].Value.(int64), counts[j].Value.(int64)
		if a != b {
			return a > b
		}
		return counts[i].Key < counts[j].Key
	})
	fmt.Printf("word counts (job %d ran in %v):\n", res.Job, res.Duration.Round(0))
	for _, kv := range counts {
		if kv.Value.(int64) < 2 {
			continue
		}
		fmt.Printf("  %-10s %d\n", kv.Key, kv.Value)
	}
	fmt.Printf("(%d distinct words total)\n", len(counts))
}
