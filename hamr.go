// Package hamr is a dataflow-based in-memory cluster computing engine, a
// from-scratch Go reproduction of the system described in "Design and
// Evaluation of a Novel DataFlow based BigData Solution" (PMAM/PPoPP
// 2015).
//
// A HAMR job is a directed acyclic graph of flowlets — Loader, Map,
// Reduce, PartialReduce and Sink stages. The whole graph is deployed on
// every node of the cluster; key-value pairs move between flowlets packed
// into bins; each node's runtime schedules flowlet tasks asynchronously as
// their input bins arrive, so downstream stages start processing before
// upstream stages finish. Intermediate data stays in memory (spilling to
// local disk only under memory pressure), flow control throttles
// producers whose consumers fall behind, and reduce stages form the only
// barriers.
//
// # Quick start
//
//	c, _ := hamr.NewCluster(hamr.ClusterOptions{NumNodes: 4})
//	defer c.Close()
//
//	g := hamr.NewGraph("wordcount")
//	sink := hamr.NewCollectSink()
//	ld, _ := g.AddLoader("load", myLoader)
//	mp, _ := g.AddMap("split", splitWords{})
//	pr, _ := g.AddPartialReduce("count", sumCounts{})
//	sk, _ := g.AddSink("out", sink)
//	g.Connect(ld, mp)
//	g.Connect(mp, pr)
//	g.Connect(pr, sk)
//
//	res, err := c.Run(g)
//
// # Concurrent jobs and cancellation
//
// Run blocks; Submit does not. Submit(ctx, g) admits a job into a bounded
// queue and returns a JobHandle immediately — up to
// ClusterOptions.MaxConcurrentJobs admitted jobs execute at once, sharing
// the cluster's loader slots fairly and (with JobMemMB set) competing for
// YARN memory. Each JobHandle's Result carries only that job's own metric
// deltas; concurrent jobs do not contaminate each other's counters.
//
// Errors are typed sentinels matched with errors.Is, and survive being
// relayed across nodes by the engine's abort broadcast:
//
//	h, err := c.Submit(ctx, g)
//	if errors.Is(err, hamr.ErrQueueFull) { /* back off and resubmit */ }
//	res, err := h.Wait()
//	if errors.Is(err, hamr.ErrJobCanceled) { /* ctx expired or h.Cancel() */ }
//
// The package also ships the full evaluation substrate used to reproduce
// the paper's experiments — a simulated commodity cluster with cost-model
// disks and network, a simulated HDFS, a YARN-style scheduler and a
// Hadoop-faithful MapReduce baseline — under internal/, driven by
// cmd/hamrbench and the benchmarks in bench_test.go.
package hamr

import (
	"fmt"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/kvstore"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
)

// Core data-plane types.
type (
	// KV is a key-value pair, the unit of data flowing through a graph.
	KV = core.KV
	// Context is passed to user flowlet code for emitting pairs and
	// inspecting the node environment.
	Context = core.Context
	// Loader pulls input data: Plan enumerates splits on the driver, Load
	// runs per split on its assigned node.
	Loader = core.Loader
	// Mapper transforms one pair at a time.
	Mapper = core.Mapper
	// Reducer processes one fully grouped key after all upstreams
	// complete.
	Reducer = core.Reducer
	// PartialReducer folds arriving values immediately (commutative,
	// associative operations) and emits on completion.
	PartialReducer = core.PartialReducer
	// Sink receives job output.
	Sink = core.Sink
	// Split is one unit of loader input.
	Split = core.Split
	// Env is the driver-side environment for Loader.Plan.
	Env = core.Env
	// Graph is a DAG of flowlets submitted as one job.
	Graph = core.Graph
	// EdgeOption configures a Connect edge.
	EdgeOption = core.EdgeOption
	// Routing selects how an edge moves pairs between nodes.
	Routing = core.Routing
	// Partitioner maps keys to nodes.
	Partitioner = core.Partitioner
	// EngineConfig tunes the per-node runtime (workers, bin size, flow
	// control, memory budget).
	EngineConfig = core.Config
	// JobResult reports a completed job.
	JobResult = core.JobResult
	// CollectSink gathers output pairs in memory.
	CollectSink = core.CollectSink
	// CountSink counts output pairs without retaining them.
	CountSink = core.CountSink
	// FileSink writes formatted pairs to one writer per node.
	FileSink = core.FileSink
	// FuncSink adapts a function to Sink.
	FuncSink = core.FuncSink
)

// Edge routing modes.
const (
	// RouteShuffle partitions pairs by key hash across all nodes.
	RouteShuffle = core.RouteShuffle
	// RouteLocal keeps pairs on the producing node.
	RouteLocal = core.RouteLocal
	// RouteBroadcast copies every pair to all nodes.
	RouteBroadcast = core.RouteBroadcast
)

// NewGraph creates an empty job graph.
func NewGraph(name string) *Graph { return core.NewGraph(name) }

// NewCollectSink returns an in-memory output collector.
func NewCollectSink() *CollectSink { return core.NewCollectSink() }

// NewCountSink returns a counting sink.
func NewCountSink() *CountSink { return core.NewCountSink() }

// WithRouting overrides an edge's routing mode.
func WithRouting(r Routing) EdgeOption { return core.WithRouting(r) }

// WithPartitioner overrides an edge's partitioner.
func WithPartitioner(p Partitioner) EdgeOption { return core.WithPartitioner(p) }

// HashPartition is the default key partitioner.
func HashPartition(key string, n int) int { return core.HashPartition(key, n) }

// RegisterValue registers a custom value type for spill/wire encoding.
func RegisterValue(v any) { core.RegisterValue(v) }

// Cluster is a running HAMR cluster: N simulated nodes, each with a
// flowlet runtime, local disk and services (HDFS, kv-store), joined by a
// message fabric.
type Cluster = cluster.Cluster

// ClusterOptions configures NewCluster.
type ClusterOptions = cluster.Options

// DiskModel and NetModel are cost models for the simulated local disks
// and network fabric.
type (
	DiskModel = storage.CostModel
	NetModel  = transport.CostModel
)

// SATA3 returns a disk cost model resembling a SATA-III local disk.
func SATA3() DiskModel { return storage.SATA3() }

// FDRInfiniBand returns a network cost model resembling 4x FDR InfiniBand.
func FDRInfiniBand() NetModel { return transport.FDRInfiniBand() }

// GigabitEthernet returns a commodity 1 GbE network cost model.
func GigabitEthernet() NetModel { return transport.GigabitEthernet() }

// NewCluster builds and starts a cluster.
func NewCluster(opts ClusterOptions) (*Cluster, error) { return cluster.New(opts) }

// Job-submission types (see Cluster.Submit).
type (
	// JobHandle tracks one submitted job: Wait, Result, Cancel, Done,
	// Status.
	JobHandle = cluster.JobHandle
	// JobStatus is a submitted job's lifecycle state.
	JobStatus = cluster.JobStatus
	// JobStats reports the job manager's lifetime counters.
	JobStats = cluster.JobStats
)

// JobStatus values.
const (
	// JobQueued means admitted but not yet dispatched.
	JobQueued = cluster.JobQueued
	// JobRunning means executing on the node runtimes.
	JobRunning = cluster.JobRunning
	// JobDone means finished: succeeded, failed or canceled.
	JobDone = cluster.JobDone
)

// Typed sentinels for the job-submission path; match with errors.Is.
var (
	// ErrJobCanceled reports a job stopped by JobHandle.Cancel or an
	// expired submission context.
	ErrJobCanceled = core.ErrJobCanceled
	// ErrQueueFull reports a Submit refused because the admission queue
	// was at ClusterOptions.JobQueueDepth.
	ErrQueueFull = cluster.ErrQueueFull
	// ErrNoNodes reports a run over zero node runtimes.
	ErrNoNodes = core.ErrNoNodes
	// ErrGraphInvalid wraps graph validation failures.
	ErrGraphInvalid = core.ErrGraphInvalid
)

// Service names available through Context.Service on every node.
const (
	// ServiceHDFS is the simulated HDFS (*hdfs.FileSystem).
	ServiceHDFS = cluster.ServiceHDFS
	// ServiceDisk is the node-local disk (storage.Disk).
	ServiceDisk = cluster.ServiceDisk
	// ServiceKVStore is the distributed key-value store (*KVStore).
	ServiceKVStore = cluster.ServiceKVStore
)

// KVStore is the distributed in-memory key-value store deployed on every
// cluster (node-sharded tables; see Cluster.Store). It backs iterative
// jobs that keep state in memory between graphs — e.g. PageRank adjacency
// lists — the in-memory multi-phase pattern of the paper's §3.1/§3.2.
type KVStore = kvstore.Store

// KVTable is one namespace of the key-value store.
type KVTable = kvstore.Table

// StoreService extracts the key-value store from a flowlet context.
func StoreService(ctx Context) (*KVStore, error) {
	st, ok := ctx.Service(ServiceKVStore).(*KVStore)
	if !ok {
		return nil, fmt.Errorf("hamr: kv-store service not available on node %d", ctx.Node())
	}
	return st, nil
}
