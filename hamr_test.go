package hamr

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func newTestClusterRoot(t testing.TB, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterOptions{NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

type upperMapper struct{}

func (upperMapper) Map(kv KV, ctx Context) error {
	return ctx.Emit(KV{Key: strings.ToUpper(kv.Value.(string)), Value: int64(1)})
}

func TestPipelineBuildsLinearGraph(t *testing.T) {
	c := newTestClusterRoot(t, 3)
	loader := &SliceLoader{Chunks: [][]string{{"a", "b"}, {"a", "c", "a"}}}
	g, sink, err := NewPipeline("upper", loader).
		Map("upper", upperMapper{}).
		PartialReduce("count", SumInt64()).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	got := sink.Map()
	if got["A"].(int64) != 3 || got["B"].(int64) != 1 || got["C"].(int64) != 1 {
		t.Fatalf("counts = %v", got)
	}
}

func TestPipelineWithReduceStage(t *testing.T) {
	c := newTestClusterRoot(t, 2)
	loader := &SliceLoader{Chunks: [][]string{{"x x y"}}}
	g, sink, err := NewPipeline("wc", loader).
		Map("split", MapFunc(func(kv KV, ctx Context) error {
			for _, w := range strings.Fields(kv.Value.(string)) {
				if err := ctx.Emit(KV{Key: w, Value: int64(1)}); err != nil {
					return err
				}
			}
			return nil
		})).
		Reduce("count", ReduceFunc(func(key string, values []any, ctx Context) error {
			return ctx.Emit(KV{Key: key, Value: int64(len(values))})
		})).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	got := sink.Map()
	if got["x"].(int64) != 2 || got["y"].(int64) != 1 {
		t.Fatalf("counts = %v", got)
	}
}

func TestPipelineErrorPropagation(t *testing.T) {
	// A nil loader fails at Plan time; the pipeline carries the error to
	// the terminal call instead of panicking mid-build.
	_, _, err := NewPipeline("bad", &SliceLoader{}).
		Map("m", upperMapper{}).
		Collect()
	if err == nil {
		t.Skip("empty SliceLoader fails at run time, not build time")
	}
}

func TestPipelineViaRouting(t *testing.T) {
	c := newTestClusterRoot(t, 3)
	loader := &SliceLoader{Chunks: [][]string{{"l1"}, {"l2"}, {"l3"}}}
	g, sink, err := NewPipeline("local", loader).
		Via(WithRouting(RouteLocal)).
		Map("stamp", MapFunc(func(kv KV, ctx Context) error {
			return ctx.Emit(KV{Key: fmt.Sprintf("node%d", ctx.Node()), Value: int64(1)})
		})).
		PartialReduce("count", SumInt64()).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Fatal("no output")
	}
	_ = res
}

func TestSumInt64RejectsWrongType(t *testing.T) {
	c := newTestClusterRoot(t, 1)
	loader := &SliceLoader{Chunks: [][]string{{"x"}}}
	g, _, err := NewPipeline("bad", loader).
		Map("wrong", MapFunc(func(kv KV, ctx Context) error {
			return ctx.Emit(KV{Key: "k", Value: "not an int64"})
		})).
		PartialReduce("sum", SumInt64()).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(g); err == nil || !strings.Contains(err.Error(), "SumInt64") {
		t.Fatalf("type error not surfaced: %v", err)
	}
}

func TestDistributeLocalTextCoversAllLines(t *testing.T) {
	c := newTestClusterRoot(t, 3)
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "line-%03d\n", i)
	}
	files, err := DistributeLocalText(c, "t", []byte(sb.String()), 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for node, names := range files {
		for _, name := range names {
			data, err := c.ReadLocalText(node, name)
			if err != nil {
				t.Fatal(err)
			}
			seen += strings.Count(string(data), "\n")
		}
	}
	if seen != 100 {
		t.Fatalf("distributed %d lines, want 100", seen)
	}
}

func TestStoreServiceFromContext(t *testing.T) {
	c := newTestClusterRoot(t, 2)
	loader := &SliceLoader{Chunks: [][]string{{"put"}}}
	g, sink, err := NewPipeline("kv", loader).
		Map("store", MapFunc(func(kv KV, ctx Context) error {
			st, err := StoreService(ctx)
			if err != nil {
				return err
			}
			st.Table("t").Put(ctx.Node(), "written", int64(1))
			return ctx.Emit(KV{Key: "done", Value: int64(1)})
		})).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 1 {
		t.Fatal("map did not run")
	}
	if v, ok := c.Store().Table("t").Get(-1, "written"); !ok || v.(int64) != 1 {
		t.Fatalf("kv-store write lost: %v %v", v, ok)
	}
}

func TestStreamingFacade(t *testing.T) {
	c := newTestClusterRoot(t, 2)
	src := NewStreamSource()
	build := func(epoch int, loader Loader) (*Graph, error) {
		g, err := NewPipeline(fmt.Sprintf("e%d", epoch), loader).
			Via(WithRouting(RouteLocal)).
			Map("window", WindowAssign{
				Width: time.Second,
				Keys: func(line string) []KV {
					return []KV{{Key: line, Value: int64(1)}}
				},
			}).
			PartialReduce("acc", Accumulate{Table: "facade.totals"}).
			Sink("out", NewCountSink())
		return g, err
	}
	exec := NewStreamExecutor(c, src, build)
	for i := 0; i < 6; i++ {
		src.Push(StreamRecord{Time: time.Unix(100, 0), Value: "evt"})
	}
	if n, err := exec.Epoch(); err != nil || n != 6 {
		t.Fatalf("epoch: n=%d err=%v", n, err)
	}
	totals := StreamTotals(c, "facade.totals")
	var sum int64
	for _, n := range totals {
		sum += n
	}
	if sum != 6 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestCostModelPresetsExported(t *testing.T) {
	if SATA3().ReadBytesPerSec <= 0 {
		t.Error("SATA3 preset broken")
	}
	if FDRInfiniBand().BytesPerSec <= GigabitEthernet().BytesPerSec {
		t.Error("fabric presets inverted")
	}
}

func TestHashPartitionExported(t *testing.T) {
	if p := HashPartition("key", 4); p < 0 || p >= 4 {
		t.Fatalf("HashPartition out of range: %d", p)
	}
}
