package hamr

import (
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/sqlq"
)

// SQL support — the "higher level interactive interface like SQL" the
// original system's roadmap promises (§7). Queries compile to flowlet
// graphs: scans run as loaders, WHERE/projection as a map flowlet, and
// GROUP BY aggregation as a partial reduce that folds rows the moment
// they arrive.
//
//	cat := hamr.NewSQLCatalog(c)
//	cat.Register(&hamr.SQLTable{
//	    Name: "sales", Columns: []string{"city", "item", "amount"},
//	    Loader: &hamr.LocalTextLoader{Files: files},
//	})
//	res, err := cat.Query(
//	    "SELECT city, SUM(amount) AS total FROM sales GROUP BY city ORDER BY total DESC LIMIT 3")
//	fmt.Print(res.Format())

type (
	// SQLCatalog maps table names to definitions for one cluster.
	SQLCatalog = sqlq.Catalog
	// SQLTable is a schema-typed text source.
	SQLTable = sqlq.Table
	// SQLResult is a finished query's columns and formatted rows.
	SQLResult = sqlq.Result
)

// NewSQLCatalog creates an empty SQL catalog bound to a cluster.
func NewSQLCatalog(c *Cluster) *SQLCatalog {
	return sqlq.NewCatalog((*cluster.Cluster)(c))
}

// ParseSQL parses a statement without running it (syntax checking).
func ParseSQL(stmt string) error {
	_, err := sqlq.Parse(stmt)
	return err
}
