module github.com/hamr-go/hamr

go 1.22
