// Command compressprobe is the invariance-and-savings probe for the block
// compression substrate (internal/compress). It drives the byte-heaviest
// workloads — MR WordCount (map-side spills), MR TeraSort (reduce-side
// external merge), MR PageRank (chained jobs) and a HAMR WordCount over
// the message fabric — once with compression off and once with a codec
// enabled on both sites (spill and shuffle), and prints the modeled-cost
// counters plus a SHA-256 of every run's output.
//
// Contract:
//
//   - the compression-off counter lines must be bit-identical to the
//     pre-compression baseline (the off path is byte-identical code, the
//     HDFSCacheMB=0 discipline);
//   - the codec-on runs must produce bit-identical output hashes while
//     disk.write.bytes and net.bytes drop at least 30% on the three MR
//     workloads, and net.bytes drops at least 30% on the fabric workload.
//
// The probe exits non-zero if any assertion fails, so CI can run it.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/apps/mrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/vtime"
)

// vclock runs every probe cluster under a virtual clock. Task-startup
// charges keep a real hold (see probeTaskStartup: the hold is what
// spreads reduce placement), so the printed lines must stay identical
// either way — which is exactly what CI diffs.
var vclock = flag.Bool("vclock", false, "pay modeled delays on a virtual clock instead of sleeping")

// baselineCounters is the fixed list of pre-compression counters whose
// values must be identical between a codec-off run and the pre-PR
// baseline, in print order.
var baselineCounters = []string{
	"mr.jobs", "mr.spills", "mr.spill.bytes", "mr.merge.passes",
	"mr.shuffle.bytes", "mr.reduce.disk.merges",
	"disk.read.bytes", "disk.write.bytes", "net.bytes", "net.msgs",
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compressprobe:", err)
	os.Exit(1)
}

// newCluster builds the probe cluster: zero-delay cost-counting disks and
// oversized YARN memory for placement determinism. codec == "" leaves
// every compression knob at its zero value — the bit-identical path.
func newCluster(nodes int, blockSize int64, codec string, coreCfg core.Config) *cluster.Cluster {
	// Block sizes are picked per workload to keep the map count small:
	// each map's line iterator reads up to 1 MiB of slack past its split,
	// so tiny blocks would multiply HDFS read traffic until it drowns the
	// shuffle bytes this probe is measuring.
	opts := cluster.Options{
		NumNodes:      nodes,
		Core:          coreCfg,
		DiskModel:     &storage.CostModel{},
		HDFSBlockSize: blockSize,
		YarnMemMB:     1 << 20,
	}
	if codec != "" {
		opts.CompressSpill = true
		opts.CompressShuffle = true
		opts.CompressCodec = codec
	}
	if *vclock {
		opts.Clock = vtime.NewVirtual(nodes).SetRealHold(vtime.Startup, true)
	}
	c, err := cluster.New(opts)
	if err != nil {
		fatal(err)
	}
	return c
}

func hashHDFSOutput(c *cluster.Cluster, prefix string) string {
	h := sha256.New()
	for _, name := range c.FS().List(prefix) {
		data, err := c.FS().ReadFile(name, -1)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(h, "%s\n", name)
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

func counterLine(reg *metrics.Registry, names []string) string {
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, reg.Counter(n).Value()))
	}
	return strings.Join(parts, " ")
}

// printCompressCounters prints the compression-era counters on their own
// line so the baseline-compat line above stays diffable against
// pre-compression builds (the cacheprobe discipline).
func printCompressCounters(label string, reg *metrics.Registry, codec string) {
	if codec == "" {
		return
	}
	fmt.Printf("%s: %s\n", label, counterLine(reg, []string{
		"compress.in.bytes", "compress.out.bytes", "compress.skipped",
		"spill.compressed.bytes", "net.compressed.bytes",
	}))
}

// runResult carries what the off/on comparison needs.
type runResult struct {
	outHash    string
	diskWrite  int64
	netBytes   int64
	compressIn int64
}

func report(label, codec string, c *cluster.Cluster, outHash string) runResult {
	reg := c.Metrics()
	fmt.Printf("%s: %s\n", label, counterLine(reg, baselineCounters))
	printCompressCounters(label, reg, codec)
	fmt.Printf("%s: output=%s\n", label, outHash)
	return runResult{
		outHash:    outHash,
		diskWrite:  reg.Counter("disk.write.bytes").Value(),
		netBytes:   reg.Counter("net.bytes").Value(),
		compressIn: reg.Counter("compress.in.bytes").Value(),
	}
}

type wcMapper struct{}

func (wcMapper) Map(kv core.KV, out mapreduce.Emitter) error {
	for _, w := range strings.Fields(kv.Value.(string)) {
		if err := out.Emit(core.KV{Key: w, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

type sumReducer struct{}

func (sumReducer) Reduce(key string, values []any, out mapreduce.Emitter) error {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return out.Emit(core.KV{Key: key, Value: total})
}

type teraMapper struct{}

func (teraMapper) Map(kv core.KV, out mapreduce.Emitter) error {
	line := kv.Value.(string)
	if line == "" {
		return nil
	}
	k, v, _ := strings.Cut(line, " ")
	return out.Emit(core.KV{Key: k, Value: v})
}

type identityReducer struct{}

func (identityReducer) Reduce(key string, values []any, out mapreduce.Emitter) error {
	for _, v := range values {
		if err := out.Emit(core.KV{Key: key, Value: v}); err != nil {
			return err
		}
	}
	return nil
}

// probeTaskStartup holds every container for a beat after allocation.
// Without it a tiny reduce task can finish and release its container
// before its sibling goroutines even reach YARN, so the least-loaded
// scheduler sees an empty cluster each time and stacks all reduces on
// node 0 — zeroing the shuffle baseline the net.bytes assertion divides
// by. A 2 ms hold makes the allocations overlap, which spreads the
// reduces across nodes deterministically.
const probeTaskStartup = 2 * time.Millisecond

// zipfCorpus is the Zipfian text the paper's WordCount input follows —
// the shape map-side spills actually have.
func zipfCorpus() []byte {
	return datagen.Text(datagen.TextConfig{Seed: 11, Vocabulary: 800, WordsPerLine: 10, Lines: 2200})
}

// teraLines builds TeraSort-style rows: a deterministic pseudo-random
// 10-hex-digit key plus a fixed-width payload, one per line.
func teraLines(n int) []byte {
	var sb strings.Builder
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		fmt.Fprintf(&sb, "%010x %08d-payload\n", state&0xFFFFFFFFFF, i)
	}
	return []byte(sb.String())
}

// probeWordCount drives the map-side sort buffer hard: a 1 KiB sort
// buffer forces many spills per map task and MergeFactor 2 forces
// multi-pass merging — the disk-byte shape compression is aimed at.
func probeWordCount(label, codec string) runResult {
	c := newCluster(3, 64<<10, codec, core.Config{})
	defer c.Close()
	if err := c.FS().WriteFile("in/corpus.txt", zipfCorpus(), -1); err != nil {
		fatal(err)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 4 << 10,
		MergeFactor:     2,
		DefaultReduces:  3,
		TaskStartup:     probeTaskStartup,
	})
	if _, err := eng.Run(mapreduce.Job{
		Name:          "wc",
		InputPrefixes: []string{"in/"},
		Output:        "out",
		NewMapper:     func() mapreduce.Mapper { return wcMapper{} },
		NewReducer:    func() mapreduce.Reducer { return sumReducer{} },
	}); err != nil {
		fatal(err)
	}
	return report(label, codec, c, hashHDFSOutput(c, "out/"))
}

// probeTeraSort exercises the reduce-side external merge: a small reduce
// heap pushes the fetched segments past heap/2 so reduce tasks spill
// fetched runs to disk and merge from there.
func probeTeraSort(label, codec string) runResult {
	c := newCluster(3, 64<<10, codec, core.Config{})
	defer c.Close()
	// All input blocks on node 0: the maps run local (their 1 MiB slack
	// reads never touch the network), so net.bytes is the shuffle — the
	// traffic this probe's codec assertion is about.
	if err := c.FS().WriteFile("in/tera.txt", teraLines(12000), 0); err != nil {
		fatal(err)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 8 << 10,
		MergeFactor:     3,
		DefaultReduces:  3,
		ReduceHeapBytes: 32 << 10,
		TaskStartup:     probeTaskStartup,
	})
	if _, err := eng.Run(mapreduce.Job{
		Name:          "tera",
		InputPrefixes: []string{"in/"},
		Output:        "tout",
		NewMapper:     func() mapreduce.Mapper { return teraMapper{} },
		NewReducer:    func() mapreduce.Reducer { return identityReducer{} },
	}); err != nil {
		fatal(err)
	}
	return report(label, codec, c, hashHDFSOutput(c, "tout/"))
}

// probePageRank runs the chained PageRank workload (2 iterations = 4
// chained jobs) with a spill-heavy configuration, so compressible run
// files dominate the disk traffic next to the HDFS materializations.
func probePageRank(label, codec string) runResult {
	c := newCluster(3, 64<<10, codec, core.Config{})
	defer c.Close()
	graph := datagen.WebGraph(datagen.WebGraphConfig{Seed: 7, Pages: 2500})
	if err := c.FS().WriteFile("in/pagerank", graph, -1); err != nil {
		fatal(err)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 8 << 10,
		MergeFactor:     3,
		DefaultReduces:  1,
		TaskStartup:     probeTaskStartup,
	})
	res, err := mrapps.RunPageRankMR(eng, c.FS(), "in/pagerank", "work", 2, 1)
	if err != nil {
		fatal(err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "ranks=%d\n", len(res.Ranks))
	return report(label, codec, c, hashHDFSOutput(c, "work/iter01-rank/")+"/"+fmt.Sprintf("%x", h.Sum(nil))[:8])
}

type probeSumReduce struct{}

func (probeSumReduce) Reduce(key string, values []any, ctx core.Context) error {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return ctx.Emit(core.KV{Key: key, Value: total})
}

// probeHAMRWordCount runs WordCount on the flowlet engine: shuffle bins
// cross the message fabric through the coalescer (KindBatchZ when the
// codec is on) and a tight memory budget makes the reduce accumulators
// spill compressed runs.
func probeHAMRWordCount(label, codec string) runResult {
	// A long coalescer age keeps batch boundaries size-driven: MaxAge
	// timer flushes land at goroutine-timing-dependent points, which
	// makes batch sizes — and with them the codec's ratio — wander
	// run-to-run. Size-driven flushes are deterministic.
	c := newCluster(3, 64<<10, codec, core.Config{
		MemoryBudget: 4 << 10,
		CoalesceAge:  50 * time.Millisecond,
	})
	defer c.Close()
	files, err := hamrapps.DistributeLocalText(c, "wc", zipfCorpus(), 6)
	if err != nil {
		fatal(err)
	}
	g := core.NewGraph("compresswc")
	sink := core.NewCollectSink()
	ld, _ := g.AddLoader("load", &hamrapps.LocalTextLoader{Files: files})
	mp, _ := g.AddMap("split", hamrapps.SplitWords{})
	rd, _ := g.AddReduce("count", probeSumReduce{})
	sk, _ := g.AddSink("out", sink)
	for _, e := range [][2]int{{ld, mp}, {mp, rd}, {rd, sk}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			fatal(err)
		}
	}
	if _, err := c.Run(g); err != nil {
		fatal(err)
	}
	pairs := sink.Sorted()
	h := sha256.New()
	for _, kv := range pairs {
		fmt.Fprintf(h, "%s=%v\n", kv.Key, kv.Value)
	}
	reg := c.Metrics()
	fmt.Printf("%s: %s\n", label, counterLine(reg, []string{
		"reduce.spills", "reduce.spill.bytes",
		"disk.read.bytes", "disk.write.bytes", "net.bytes", "net.msgs",
	}))
	printCompressCounters(label, reg, codec)
	out := fmt.Sprintf("%x", h.Sum(nil))[:16]
	fmt.Printf("%s: pairs=%d output=%s\n", label, len(pairs), out)
	return runResult{
		outHash:    out,
		diskWrite:  reg.Counter("disk.write.bytes").Value(),
		netBytes:   reg.Counter("net.bytes").Value(),
		compressIn: reg.Counter("compress.in.bytes").Value(),
	}
}

func pct(off, on int64) int64 {
	if off < 1 {
		off = 1
	}
	return (off - on) * 100 / off
}

func main() {
	codec := flag.String("codec", "lz", "codec for the compression-on runs (lz, flate)")
	flag.Parse()
	if c, err := compress.Lookup(*codec); err != nil {
		fatal(err)
	} else if c == nil {
		// "none"/"" is the passthrough — the savings assertions below are
		// vacuously false for it, so it is not a valid probe codec.
		fatal(fmt.Errorf("-codec=%q is the off path; pick a real codec (lz, flate)", *codec))
	}

	fail := false
	check := func(ok bool, format string, args ...any) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
			fail = true
		}
		fmt.Printf("[%s] %s\n", verdict, fmt.Sprintf(format, args...))
	}

	type workload struct {
		name string
		run  func(label, codec string) runResult
		// wantNetDrop: the MR workloads must cut both disk.write.bytes and
		// net.bytes; the fabric workload is judged on net.bytes only (its
		// disk traffic is reduce spills, checked via compress.in.bytes).
		wantDiskDrop bool
	}
	workloads := []workload{
		{"wordcount", probeWordCount, true},
		{"terasort", probeTeraSort, true},
		{"pagerank", probePageRank, true},
		{"hamr-wordcount", probeHAMRWordCount, false},
	}

	for _, w := range workloads {
		off := w.run(w.name+"-off", "")
		on := w.run(w.name+"-"+*codec, *codec)
		check(off.compressIn == 0, "%s off-run never touches the codec", w.name)
		check(on.outHash == off.outHash,
			"%s output bit-identical codec on/off (%s vs %s)", w.name, on.outHash, off.outHash)
		check(on.compressIn > 0, "%s codec-on run compresses (%d bytes in)", w.name, on.compressIn)
		if w.wantDiskDrop {
			check(on.diskWrite <= off.diskWrite*7/10,
				"%s disk.write.bytes cut >=30%% (%d -> %d, -%d%%)",
				w.name, off.diskWrite, on.diskWrite, pct(off.diskWrite, on.diskWrite))
		}
		check(on.netBytes <= off.netBytes*7/10,
			"%s net.bytes cut >=30%% (%d -> %d, -%d%%)",
			w.name, off.netBytes, on.netBytes, pct(off.netBytes, on.netBytes))
	}

	if fail {
		fmt.Println("compressprobe: FAIL")
		os.Exit(1)
	}
	fmt.Println("compressprobe: OK")
}
