// Command datagen generates the paper's benchmark datasets (§4) as local
// files: PUMA-format movie/rating data, HiBench-style Zipfian text and
// labeled documents, Zipfian-linked web graphs, and R-MAT graphs.
//
// Usage:
//
//	datagen -kind movies -movies 10000 -users 200 -out movies.txt
//	datagen -kind text -lines 50000 -vocab 5000 -out corpus.txt
//	datagen -kind docs -docs 20000 -labels 4 -out docs.txt
//	datagen -kind webgraph -pages 5000 -out edges.txt
//	datagen -kind rmat -graphscale 12 -edges 40000 -out graph.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hamr-go/hamr/internal/datagen"
)

func main() {
	var (
		kind   = flag.String("kind", "", "dataset kind: movies, text, docs, webgraph, rmat")
		out    = flag.String("out", "", "output file (default stdout)")
		seed   = flag.Int64("seed", 42, "generator seed")
		movies = flag.Int("movies", 10000, "movies: record count")
		users  = flag.Int("users", 200, "movies: user universe")
		lines  = flag.Int("lines", 10000, "text: line count")
		vocab  = flag.Int("vocab", 1000, "text/docs: vocabulary size")
		docs   = flag.Int("docs", 5000, "docs: document count")
		labels = flag.Int("labels", 4, "docs: label count")
		pages  = flag.Int("pages", 1000, "webgraph: page count")
		gscale = flag.Int("graphscale", 10, "rmat: log2 of the vertex count")
		edges  = flag.Int("edges", 0, "rmat: edge count (default 8*2^scale)")
	)
	flag.Parse()

	var data []byte
	switch *kind {
	case "movies":
		data = datagen.Movies(datagen.MoviesConfig{Seed: *seed, Movies: *movies, Users: *users})
	case "text":
		data = datagen.Text(datagen.TextConfig{Seed: *seed, Lines: *lines, Vocabulary: *vocab})
	case "docs":
		data = datagen.Docs(datagen.DocsConfig{Seed: *seed, Docs: *docs, Labels: *labels, Vocabulary: *vocab})
	case "webgraph":
		data = datagen.WebGraph(datagen.WebGraphConfig{Seed: *seed, Pages: *pages})
	case "rmat":
		data = datagen.RMAT(datagen.RMATConfig{Seed: *seed, Scale: *gscale, Edges: *edges})
	default:
		fmt.Fprintln(os.Stderr, "datagen: -kind must be one of movies, text, docs, webgraph, rmat")
		os.Exit(2)
	}

	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d bytes to %s\n", len(data), *out)
}
