// Command hamr runs one of the built-in flowlet applications on a local
// simulated cluster, reading real files from disk. It is the quickest way
// to watch the engine work end to end:
//
//	hamr -app wordcount -in corpus.txt -nodes 4 -top 10
//	hamr -app histogram-movies -in movies.txt
//	hamr -app histogram-ratings -in movies.txt -combiner
//	hamr -app pagerank -in edges.txt -iters 5
//	hamr -app kcliques -in graph.txt -k 4
//	hamr -app naivebayes -in docs.txt
//	hamr -app sql -in table.tsv -cols "city,item,amount" \
//	     -query "SELECT city, SUM(amount) AS t FROM t GROUP BY city ORDER BY t DESC"
//
// Use cmd/datagen to produce inputs in the right formats.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/sqlq"
)

func main() {
	var (
		app      = flag.String("app", "wordcount", "application: wordcount, histogram-movies, histogram-ratings, naivebayes, pagerank, kcliques, kmeans, classification")
		in       = flag.String("in", "", "input file (required)")
		nodes    = flag.Int("nodes", 4, "simulated cluster size")
		workers  = flag.Int("workers", 4, "workers per node")
		combiner = flag.Bool("combiner", false, "enable the HAMR combiner (wordcount, histograms)")
		iters    = flag.Int("iters", 3, "pagerank iterations")
		k        = flag.Int("k", 3, "clique size / cluster count")
		top      = flag.Int("top", 20, "print at most this many result rows (0 = all)")
		stats    = flag.Bool("stats", false, "print engine metrics after the run")
		query    = flag.String("query", "", "sql: the SELECT statement (table name: t)")
		cols     = flag.String("cols", "", "sql: comma-separated column names of the input")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "hamr: -in is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}

	c, err := cluster.New(cluster.Options{
		NumNodes: *nodes,
		Core:     core.Config{Workers: *workers},
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	files, err := hamrapps.DistributeLocalText(c, "input", data, 2**nodes)
	if err != nil {
		fatal(err)
	}
	loader := &hamrapps.LocalTextLoader{Files: files}

	start := time.Now()
	var pairs []core.KV
	switch *app {
	case "wordcount":
		g, sink, err := hamrapps.BuildWordCount(hamrapps.WordCountOptions{Loader: loader, Combiner: *combiner})
		run(c, g, err, stats)
		pairs = sink.Sorted()
	case "histogram-movies":
		g, sink, err := hamrapps.BuildHistogramMovies(hamrapps.HistogramOptions{Loader: loader, Combiner: *combiner})
		run(c, g, err, stats)
		pairs = sink.Sorted()
	case "histogram-ratings":
		g, sink, err := hamrapps.BuildHistogramRatings(hamrapps.HistogramOptions{Loader: loader, Combiner: *combiner})
		run(c, g, err, stats)
		pairs = sink.Sorted()
	case "naivebayes":
		g, sink, err := hamrapps.BuildNaiveBayes(loader)
		run(c, g, err, stats)
		pairs = sink.Sorted()
	case "pagerank":
		res, err := hamrapps.RunPageRank(c, loader, 1e-4, *iters)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pagerank: %d iterations, final max delta %.6f\n", res.Iterations, res.MaxDelta)
		for page, rank := range res.Ranks {
			pairs = append(pairs, core.KV{Key: page, Value: rank})
		}
		sort.Slice(pairs, func(i, j int) bool {
			return pairs[i].Value.(float64) > pairs[j].Value.(float64)
		})
	case "kcliques":
		g, sink, err := hamrapps.BuildKCliques(*k, loader)
		run(c, g, err, stats)
		pairs = sink.Sorted()
	case "kmeans":
		centroids := datagen.InitialCentroids(data, *k)
		g, sinks, err := hamrapps.BuildKMeans(hamrapps.KMeansOptions{Files: files, Centroids: centroids})
		run(c, g, err, stats)
		pairs = sinks.Centroids.Sorted()
	case "classification":
		centroids := datagen.InitialCentroids(data, *k)
		g, sinks, err := hamrapps.BuildClassification(hamrapps.ClassificationOptions{
			Files: files, Centroids: centroids, WithCounts: true,
		})
		run(c, g, err, stats)
		pairs = sinks.Counts.Sorted()
	case "sql":
		if *query == "" || *cols == "" {
			fmt.Fprintln(os.Stderr, "hamr: -app sql needs -query and -cols")
			os.Exit(2)
		}
		cat := sqlq.NewCatalog(c)
		if err := cat.Register(&sqlq.Table{
			Name:    "t",
			Columns: strings.Split(*cols, ","),
			Loader:  loader,
		}); err != nil {
			fatal(err)
		}
		res, err := cat.Query(*query)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Fprintf(os.Stderr, "hamr: sql finished in %v on %d nodes\n",
			time.Since(start).Round(time.Millisecond), *nodes)
		return
	default:
		fmt.Fprintf(os.Stderr, "hamr: unknown -app %q\n", *app)
		os.Exit(2)
	}

	n := len(pairs)
	if *top > 0 && n > *top {
		n = *top
	}
	for _, kv := range pairs[:n] {
		fmt.Printf("%s\t%v\n", kv.Key, kv.Value)
	}
	if len(pairs) > n {
		fmt.Printf("... (%d more rows)\n", len(pairs)-n)
	}
	fmt.Fprintf(os.Stderr, "hamr: %s finished in %v on %d nodes\n", *app, time.Since(start).Round(time.Millisecond), *nodes)
}

func run(c *cluster.Cluster, g *core.Graph, buildErr error, stats *bool) {
	if buildErr != nil {
		fatal(buildErr)
	}
	res, err := c.Run(g)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "--- flowlet timeline (job %d, %v) ---\n%s", res.Job, res.Duration.Round(time.Millisecond), res.Timeline())
		fmt.Fprintf(os.Stderr, "--- metrics ---\n%s", res.Metrics)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hamr:", err)
	os.Exit(1)
}
