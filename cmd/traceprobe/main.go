// Command traceprobe is the invariance probe for the span recorder
// (internal/trace). It drives the trace-relevant workloads — MR WordCount
// (map-side spills), MR TeraSort (reduce-side external merge + shuffle)
// and a HAMR WordCount over the message fabric — once with tracing off
// and once with a recorder attached, and checks:
//
//   - the trace-off counter lines and output hashes are bit-identical to
//     the pre-tracing baseline baked in below (the off path is the nil
//     tracer: no span code runs);
//   - the trace-on runs keep the same output hashes and modeled byte
//     counters while recording a non-empty span set whose Chrome JSON
//     export is valid and whose critical path is computable.
//
// -out writes the TeraSort trace-on JSON for archiving; -vclock runs
// everything on the virtual clock (the lines must not change).
//
// The probe exits non-zero if any assertion fails, so CI can run it.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/trace"
	"github.com/hamr-go/hamr/internal/vtime"
)

var vclock = flag.Bool("vclock", false, "pay modeled delays on a virtual clock instead of sleeping")

// Baselines captured on the pre-tracing build (HDFSCacheMB=0, codec off).
// The trace-off runs below must reproduce them byte for byte.
const (
	wcBaseLine   = "mr.jobs=1 mr.spills=162 mr.spill.bytes=660000 mr.merge.passes=156 mr.shuffle.bytes=254388 mr.reduce.disk.merges=0 disk.read.bytes=15393244 disk.write.bytes=15281852 net.bytes=365780 net.msgs=9"
	wcBaseHash   = "a2d0545efc707c61"
	teraBaseLine = "mr.jobs=1 mr.spills=88 mr.spill.bytes=696000 mr.merge.passes=35 mr.shuffle.bytes=294002 mr.reduce.disk.merges=18 disk.read.bytes=4630890 disk.write.bytes=3933930 net.bytes=294002 net.msgs=2"
	teraBaseHash = "f5e59e5c693fe5c9"
	hamrBaseLine = "reduce.spills=160 reduce.spill.bytes=652800 disk.read.bytes=523920 disk.write.bytes=523920 net.bytes=590118 net.msgs=58"
	hamrBaseHash = "pairs=797 output=8a1dfb7ea1522845"
)

var mrCounters = []string{
	"mr.jobs", "mr.spills", "mr.spill.bytes", "mr.merge.passes",
	"mr.shuffle.bytes", "mr.reduce.disk.merges",
	"disk.read.bytes", "disk.write.bytes", "net.bytes", "net.msgs",
}

var hamrCounters = []string{
	"reduce.spills", "reduce.spill.bytes",
	"disk.read.bytes", "disk.write.bytes", "net.bytes", "net.msgs",
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceprobe:", err)
	os.Exit(1)
}

// newCluster builds the probe cluster (zero-delay cost-counting disks,
// oversized YARN memory — the compressprobe discipline). withTrace
// attaches a recorder stamping from the run's clock; without it the
// cluster carries a nil tracer, the bit-identical path.
func newCluster(nodes int, blockSize int64, coreCfg core.Config, withTrace bool) (*cluster.Cluster, *trace.Tracer) {
	opts := cluster.Options{
		NumNodes:      nodes,
		Core:          coreCfg,
		DiskModel:     &storage.CostModel{},
		HDFSBlockSize: blockSize,
		YarnMemMB:     1 << 20,
	}
	clk := vtime.Real()
	if *vclock {
		vc := vtime.NewVirtual(nodes).SetRealHold(vtime.Startup, true)
		opts.Clock = vc
		clk = vc
	}
	var tr *trace.Tracer
	if withTrace {
		tr = trace.New(nodes, clk)
		opts.Trace = tr
	}
	c, err := cluster.New(opts)
	if err != nil {
		fatal(err)
	}
	return c, tr
}

func hashHDFSOutput(c *cluster.Cluster, prefix string) string {
	h := sha256.New()
	for _, name := range c.FS().List(prefix) {
		data, err := c.FS().ReadFile(name, -1)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(h, "%s\n", name)
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

func counterLine(reg *metrics.Registry, names []string) string {
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, reg.Counter(n).Value()))
	}
	return strings.Join(parts, " ")
}

type wcMapper struct{}

func (wcMapper) Map(kv core.KV, out mapreduce.Emitter) error {
	for _, w := range strings.Fields(kv.Value.(string)) {
		if err := out.Emit(core.KV{Key: w, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

type sumReducer struct{}

func (sumReducer) Reduce(key string, values []any, out mapreduce.Emitter) error {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return out.Emit(core.KV{Key: key, Value: total})
}

type teraMapper struct{}

func (teraMapper) Map(kv core.KV, out mapreduce.Emitter) error {
	line := kv.Value.(string)
	if line == "" {
		return nil
	}
	k, v, _ := strings.Cut(line, " ")
	return out.Emit(core.KV{Key: k, Value: v})
}

type identityReducer struct{}

func (identityReducer) Reduce(key string, values []any, out mapreduce.Emitter) error {
	for _, v := range values {
		if err := out.Emit(core.KV{Key: key, Value: v}); err != nil {
			return err
		}
	}
	return nil
}

type probeSumReduce struct{}

func (probeSumReduce) Reduce(key string, values []any, ctx core.Context) error {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return ctx.Emit(core.KV{Key: key, Value: total})
}

// probeTaskStartup holds every container for a beat after allocation so
// sibling allocations overlap and the least-loaded scheduler spreads the
// reduces deterministically (see compressprobe for the full story).
const probeTaskStartup = 2 * time.Millisecond

func zipfCorpus() []byte {
	return datagen.Text(datagen.TextConfig{Seed: 11, Vocabulary: 800, WordsPerLine: 10, Lines: 2200})
}

func teraLines(n int) []byte {
	var sb strings.Builder
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		fmt.Fprintf(&sb, "%010x %08d-payload\n", state&0xFFFFFFFFFF, i)
	}
	return []byte(sb.String())
}

// probeResult carries one run's identity line, output hash and (for
// trace-on runs) the recorder.
type probeResult struct {
	line string
	hash string
	tr   *trace.Tracer
}

func probeWordCount(withTrace bool) probeResult {
	c, tr := newCluster(3, 64<<10, core.Config{}, withTrace)
	defer c.Close()
	if err := c.FS().WriteFile("in/corpus.txt", zipfCorpus(), -1); err != nil {
		fatal(err)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 4 << 10,
		MergeFactor:     2,
		DefaultReduces:  3,
		TaskStartup:     probeTaskStartup,
	})
	if _, err := eng.Run(mapreduce.Job{
		Name:          "wc",
		InputPrefixes: []string{"in/"},
		Output:        "out",
		NewMapper:     func() mapreduce.Mapper { return wcMapper{} },
		NewReducer:    func() mapreduce.Reducer { return sumReducer{} },
	}); err != nil {
		fatal(err)
	}
	// Hash before snapshotting counters: reading the output back through
	// HDFS charges disk.read.bytes, and the baseline lines include it.
	hash := hashHDFSOutput(c, "out/")
	return probeResult{counterLine(c.Metrics(), mrCounters), hash, tr}
}

func probeTeraSort(withTrace bool) probeResult {
	c, tr := newCluster(3, 64<<10, core.Config{}, withTrace)
	defer c.Close()
	if err := c.FS().WriteFile("in/tera.txt", teraLines(12000), 0); err != nil {
		fatal(err)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 8 << 10,
		MergeFactor:     3,
		DefaultReduces:  3,
		ReduceHeapBytes: 32 << 10,
		TaskStartup:     probeTaskStartup,
	})
	if _, err := eng.Run(mapreduce.Job{
		Name:          "tera",
		InputPrefixes: []string{"in/"},
		Output:        "tout",
		NewMapper:     func() mapreduce.Mapper { return teraMapper{} },
		NewReducer:    func() mapreduce.Reducer { return identityReducer{} },
	}); err != nil {
		fatal(err)
	}
	hash := hashHDFSOutput(c, "tout/")
	return probeResult{counterLine(c.Metrics(), mrCounters), hash, tr}
}

func probeHAMRWordCount(withTrace bool) probeResult {
	c, tr := newCluster(3, 64<<10, core.Config{
		MemoryBudget: 4 << 10,
		CoalesceAge:  50 * time.Millisecond,
	}, withTrace)
	defer c.Close()
	files, err := hamrapps.DistributeLocalText(c, "wc", zipfCorpus(), 6)
	if err != nil {
		fatal(err)
	}
	g := core.NewGraph("tracewc")
	sink := core.NewCollectSink()
	ld, _ := g.AddLoader("load", &hamrapps.LocalTextLoader{Files: files})
	mp, _ := g.AddMap("split", hamrapps.SplitWords{})
	rd, _ := g.AddReduce("count", probeSumReduce{})
	sk, _ := g.AddSink("out", sink)
	for _, e := range [][2]int{{ld, mp}, {mp, rd}, {rd, sk}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			fatal(err)
		}
	}
	if _, err := c.Run(g); err != nil {
		fatal(err)
	}
	pairs := sink.Sorted()
	h := sha256.New()
	for _, kv := range pairs {
		fmt.Fprintf(h, "%s=%v\n", kv.Key, kv.Value)
	}
	hash := fmt.Sprintf("pairs=%d output=%s", len(pairs), fmt.Sprintf("%x", h.Sum(nil))[:16])
	return probeResult{counterLine(c.Metrics(), hamrCounters), hash, tr}
}

func main() {
	out := flag.String("out", "", "write the TeraSort trace-on Chrome JSON to this path")
	flag.Parse()

	fail := false
	check := func(ok bool, format string, args ...any) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
			fail = true
		}
		fmt.Printf("[%s] %s\n", verdict, fmt.Sprintf(format, args...))
	}

	type workload struct {
		name     string
		run      func(withTrace bool) probeResult
		baseLine string
		baseHash string
	}
	workloads := []workload{
		{"wordcount", probeWordCount, wcBaseLine, wcBaseHash},
		{"terasort", probeTeraSort, teraBaseLine, teraBaseHash},
		{"hamr-wordcount", probeHAMRWordCount, hamrBaseLine, hamrBaseHash},
	}

	for _, w := range workloads {
		off := w.run(false)
		fmt.Printf("%s-off: %s\n%s-off: %s\n", w.name, off.line, w.name, off.hash)
		check(off.line == w.baseLine, "%s trace-off counters match the pre-tracing baseline", w.name)
		check(off.hash == w.baseHash, "%s trace-off output matches the pre-tracing baseline", w.name)

		on := w.run(true)
		check(on.line == off.line, "%s trace-on counters unchanged", w.name)
		check(on.hash == off.hash, "%s trace-on output unchanged", w.name)

		evs := on.tr.Events()
		spans, instants := 0, 0
		for _, ev := range evs {
			if ev.Instant {
				instants++
			} else {
				spans++
			}
		}
		fmt.Printf("%s-on: spans=%d instants=%d\n", w.name, spans, instants)
		check(spans > 0, "%s trace-on records spans", w.name)

		var buf bytes.Buffer
		if err := trace.WriteJSON(&buf, evs); err != nil {
			fatal(err)
		}
		check(json.Valid(buf.Bytes()), "%s trace JSON is valid (%d bytes)", w.name, buf.Len())
		// Under -vclock with zero-delay cost models every lane can stay at
		// zero, making all spans zero-duration; the critical path is then
		// legitimately empty, so only require it when some span has width.
		var maxDur time.Duration
		for _, ev := range evs {
			if !ev.Instant && ev.Dur > maxDur {
				maxDur = ev.Dur
			}
		}
		cp := trace.CriticalPath(evs)
		check(len(cp) > 0 || maxDur == 0, "%s critical path computable (%d segments)", w.name, len(cp))

		if w.name == "terasort" && *out != "" {
			if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("terasort trace written to %s\n", *out)
		}
	}

	if fail {
		fmt.Println("traceprobe: FAIL")
		os.Exit(1)
	}
	fmt.Println("traceprobe: OK")
}
