// Command sortprobe exercises every spill/sort/merge path in the repo —
// the MapReduce map-side sort buffer with multi-pass merging, the
// reduce-side external merge, and the HAMR reduce accumulator spill —
// over deterministic inputs, and prints the modeled-cost invariants
// (spill bytes, spill/merge-pass counts, disk byte totals) plus a SHA-256
// of each job's output. Run it before and after a change to the sort
// substrate: every printed line must be identical.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
	"github.com/hamr-go/hamr/internal/vtime"
)

// vclock runs every probe cluster under a virtual clock. The probe's
// cost models are zero-delay, so the printed lines must stay identical
// either way — which is exactly what CI diffs.
var vclock = flag.Bool("vclock", false, "pay modeled delays on a virtual clock instead of sleeping")

// corpus builds a deterministic multi-line text (same generator as the
// mapreduce engine tests, larger vocabulary so runs hold many keys).
func corpus(lines int) string {
	words := []string{
		"ant", "bee", "cat", "dog", "elk", "fox", "gnu", "hen",
		"ibis", "jay", "kite", "lark", "mole", "newt", "owl", "pika",
	}
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		for j := 0; j < 8; j++ {
			sb.WriteString(words[(i*13+j*5)%len(words)])
			sb.WriteByte(' ')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// teraLines builds TeraSort-style rows: a deterministic pseudo-random
// 10-hex-digit key plus a fixed-width payload, one per line.
func teraLines(n int) string {
	var sb strings.Builder
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		fmt.Fprintf(&sb, "%010x %08d-payload\n", state&0xFFFFFFFFFF, i)
	}
	return sb.String()
}

// zeroCost counts disk bytes in metrics without charging any modeled
// delay (all rates/latencies zero).
func zeroCost() *storage.CostModel { return &storage.CostModel{} }

func newCluster(nodes int, coreCfg core.Config) *cluster.Cluster {
	opts := cluster.Options{
		NumNodes:      nodes,
		Core:          coreCfg,
		DiskModel:     zeroCost(),
		HDFSBlockSize: 4 << 10,
	}
	if *vclock {
		opts.Clock = vtime.NewVirtual(nodes).SetRealHold(vtime.Startup, true)
	}
	c, err := cluster.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return c
}

func hashHDFSOutput(c *cluster.Cluster, prefix string) string {
	h := sha256.New()
	for _, name := range c.FS().List(prefix) {
		data, err := c.FS().ReadFile(name, -1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(h, "%s\n", name)
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

func printCounters(label string, reg *metrics.Registry, names ...string) {
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, reg.Counter(n).Value()))
	}
	fmt.Printf("%s: %s\n", label, strings.Join(parts, " "))
}

type wcMapper struct{}

func (wcMapper) Map(kv core.KV, out mapreduce.Emitter) error {
	for _, w := range strings.Fields(kv.Value.(string)) {
		if err := out.Emit(core.KV{Key: w, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

type sumReducer struct{}

func (sumReducer) Reduce(key string, values []any, out mapreduce.Emitter) error {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return out.Emit(core.KV{Key: key, Value: total})
}

type teraMapper struct{}

func (teraMapper) Map(kv core.KV, out mapreduce.Emitter) error {
	line := kv.Value.(string)
	if line == "" {
		return nil
	}
	k, v, _ := strings.Cut(line, " ")
	return out.Emit(core.KV{Key: k, Value: v})
}

type identityReducer struct{}

func (identityReducer) Reduce(key string, values []any, out mapreduce.Emitter) error {
	for _, v := range values {
		if err := out.Emit(core.KV{Key: key, Value: v}); err != nil {
			return err
		}
	}
	return nil
}

// probeMRWordCount drives the map-side sort buffer hard: a 1 KiB sort
// buffer forces many spills per map task and MergeFactor 2 forces
// multi-pass merging.
func probeMRWordCount(withCombiner bool) {
	c := newCluster(3, core.Config{})
	defer c.Close()
	if err := c.FS().WriteFile("in/corpus.txt", []byte(corpus(800)), -1); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 1 << 10,
		MergeFactor:     2,
		DefaultReduces:  3,
	})
	job := mapreduce.Job{
		Name:          "wc",
		InputPrefixes: []string{"in/"},
		Output:        "out",
		NewMapper:     func() mapreduce.Mapper { return wcMapper{} },
		NewReducer:    func() mapreduce.Reducer { return sumReducer{} },
	}
	label := "mr-wordcount"
	if withCombiner {
		job.NewCombiner = func() mapreduce.Reducer { return sumReducer{} }
		label = "mr-wordcount+comb"
	}
	if _, err := eng.Run(job); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printCounters(label, c.Metrics(),
		"mr.spills", "mr.spill.bytes", "mr.merge.passes", "mr.shuffle.bytes",
		"mr.reduce.disk.merges", "disk.read.bytes", "disk.write.bytes")
	fmt.Printf("%s: output=%s\n", label, hashHDFSOutput(c, "out/"))
}

// probeMRTeraSort exercises the reduce-side external merge: a small
// reduce heap pushes the fetched segments past heap/2 so the reduce
// tasks merge from disk.
func probeMRTeraSort() {
	c := newCluster(3, core.Config{})
	defer c.Close()
	if err := c.FS().WriteFile("in/tera.txt", []byte(teraLines(3000)), -1); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 4 << 10,
		MergeFactor:     3,
		DefaultReduces:  2,
		ReduceHeapBytes: 32 << 10,
	})
	job := mapreduce.Job{
		Name:          "tera",
		InputPrefixes: []string{"in/"},
		Output:        "tout",
		NewMapper:     func() mapreduce.Mapper { return teraMapper{} },
		NewReducer:    func() mapreduce.Reducer { return identityReducer{} },
	}
	if _, err := eng.Run(job); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printCounters("mr-terasort", c.Metrics(),
		"mr.spills", "mr.spill.bytes", "mr.merge.passes", "mr.shuffle.bytes",
		"mr.reduce.disk.merges", "disk.read.bytes", "disk.write.bytes")
	fmt.Printf("mr-terasort: output=%s\n", hashHDFSOutput(c, "tout/"))
}

type probeSumReduce struct{}

func (probeSumReduce) Reduce(key string, values []any, ctx core.Context) error {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return ctx.Emit(core.KV{Key: key, Value: total})
}

// probeHAMRReduceSpill drives the core reduce accumulator past a tiny
// memory budget so every node spills sorted runs and merges them back.
func probeHAMRReduceSpill() {
	c := newCluster(2, core.Config{MemoryBudget: 4 << 10})
	defer c.Close()
	files, err := hamrapps.DistributeLocalText(c, "wc", []byte(corpus(600)), 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g := core.NewGraph("spillwc")
	sink := core.NewCollectSink()
	ld, _ := g.AddLoader("load", &hamrapps.LocalTextLoader{Files: files})
	mp, _ := g.AddMap("split", hamrapps.SplitWords{})
	rd, _ := g.AddReduce("count", probeSumReduce{})
	sk, _ := g.AddSink("out", sink)
	for _, e := range [][2]int{{ld, mp}, {mp, rd}, {rd, sk}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if _, err := c.Run(g); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printCounters("hamr-reduce-spill", c.Metrics(),
		"reduce.spills", "reduce.spill.bytes", "disk.read.bytes", "disk.write.bytes")
	pairs := sink.Sorted()
	h := sha256.New()
	for _, kv := range pairs {
		fmt.Fprintf(h, "%s=%v\n", kv.Key, kv.Value)
	}
	fmt.Printf("hamr-reduce-spill: pairs=%d output=%x\n", len(pairs), h.Sum(nil)[:8])
	// Spill runs must be cleaned up after the merge.
	var leftover []string
	for node, d := range c.Disks() {
		if md, ok := d.(*storage.CostDisk); ok {
			_ = md
		}
		for _, name := range d.List("") {
			leftover = append(leftover, fmt.Sprintf("node%d:%s", node, name))
		}
	}
	sort.Strings(leftover)
	fmt.Printf("hamr-reduce-spill: leftover-files=%d\n", len(leftover))
	_ = transport.NodeID(0)
}

func main() {
	flag.Parse()
	probeMRWordCount(false)
	probeMRWordCount(true)
	probeMRTeraSort()
	probeHAMRReduceSpill()
}
