// Command hamrbench regenerates the paper's evaluation: Table 1 (cluster
// spec), Table 2 (eight-benchmark comparison between the MapReduce
// baseline and HAMR), Table 3 (HAMR with combiner) and Figure 3's two
// speedup panels. Measured numbers print side by side with the published
// ones; a shape check asserts the qualitative agreement the reproduction
// targets.
//
// Usage:
//
//	hamrbench                  # everything (Table 1, 2, 3, Fig 3a, 3b)
//	hamrbench -table 2         # one table
//	hamrbench -figure 3a       # one figure panel
//	hamrbench -bench PageRank  # one Table 2 row
//	hamrbench -scale tiny      # smaller inputs (fast smoke run)
//	hamrbench -nodes 8 -workers 4
//	hamrbench -vclock          # virtual clock: modeled seconds, no sleeps
//	hamrbench -jobs 4          # multi-job throughput: N concurrent WordCounts
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hamr-go/hamr/internal/bench"
	"github.com/hamr-go/hamr/internal/trace"
)

func main() {
	var (
		table   = flag.String("table", "", "regenerate one table: 1, 2 or 3 (default: all)")
		figure  = flag.String("figure", "", "regenerate one figure panel: 3a or 3b")
		one     = flag.String("bench", "", "run a single Table 2 benchmark by name")
		scale   = flag.String("scale", "small", "input scale: tiny or small")
		nodes   = flag.Int("nodes", 0, "override worker node count")
		workers = flag.Int("workers", 0, "override workers per node")
		check   = flag.Bool("check", true, "run the shape check after Table 2")
		chaos   = flag.Bool("chaos", false, "run the chaos recovery check (seeded fault injection on both engines) and exit")
		seed    = flag.Int64("chaos-seed", 1, "fault-injection seed for -chaos")
		cacheMB = flag.Int("hdfs-cache", 0, "per-node HDFS block cache budget in MB for the baseline (0 = off, matching the paper's cold-read accounting)")
		codec   = flag.String("codec", "", "block codec for spills and shuffle on both engines: lz or flate (empty = off, matching the paper's uncompressed byte accounting)")
		vclock  = flag.Bool("vclock", false, "run under the virtual clock: modeled delays advance logical clocks instead of sleeping, tables report modeled seconds")
		traceTo = flag.String("trace", "", "with -bench: record per-task spans, write Chrome trace JSON per engine (PATH.mr.json / PATH.hamr.json) and print each engine's critical path")
		jobs    = flag.Int("jobs", 0, "multi-job throughput mode: submit N concurrent jobs (default benchmark WordCount, override with -bench) and report jobs/sec and per-job slowdown vs solo")
	)
	flag.Parse()

	spec := bench.DefaultSpec()
	if *nodes > 0 {
		spec.Nodes = *nodes
	}
	if *workers > 0 {
		spec.WorkersPerNode = *workers
	}
	spec.HDFSCacheMB = *cacheMB
	spec.CompressCodec = *codec
	spec.VClock = *vclock
	var sc bench.Scale
	switch strings.ToLower(*scale) {
	case "tiny":
		sc = bench.TinyScale()
	case "small":
		sc = bench.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (want tiny or small)\n", *scale)
		os.Exit(2)
	}

	if *chaos {
		fmt.Printf("chaos recovery check (%d nodes, seed %d):\n", spec.Nodes, *seed)
		failed := false
		for _, v := range bench.ChaosCheck(spec.Nodes, *seed, *vclock) {
			fmt.Println(" ", v)
			if strings.HasPrefix(v, "[FAIL]") {
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	h := bench.NewHarness(spec, sc)
	if *jobs > 0 {
		b := bench.WordCount
		if *one != "" {
			var found bool
			for _, cand := range bench.AllBenchmarks {
				if strings.EqualFold(string(cand), *one) {
					b, found = cand, true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q; choices: %v\n", *one, bench.AllBenchmarks)
				os.Exit(2)
			}
		}
		rep, err := h.ConcurrentThroughput(b, *jobs)
		if err != nil {
			fatal(err)
		}
		bench.WriteConcurrentReport(os.Stdout, rep)
		return
	}
	if *traceTo != "" {
		if *one == "" {
			fmt.Fprintln(os.Stderr, "hamrbench: -trace requires -bench NAME (one benchmark per trace)")
			os.Exit(2)
		}
		h.Trace = true
	}

	if *one != "" {
		var found bool
		for _, b := range bench.AllBenchmarks {
			if strings.EqualFold(string(b), *one) {
				row, err := h.RunRow(b)
				if err != nil {
					fatal(err)
				}
				bench.WriteTable2(os.Stdout, []bench.Row{row})
				fmt.Println()
				bench.WriteTimeReport(os.Stdout, []bench.Row{row})
				fmt.Println()
				bench.WriteIOReport(os.Stdout, h.LastMR)
				if *traceTo != "" {
					if err := exportTrace(h.LastMRTrace, *traceTo, "mr"); err != nil {
						fatal(err)
					}
					if err := exportTrace(h.LastHAMRTrace, *traceTo, "hamr"); err != nil {
						fatal(err)
					}
				}
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q; choices: %v\n", *one, bench.AllBenchmarks)
			os.Exit(2)
		}
		return
	}

	wantTable := func(t string) bool { return *table == "" && *figure == "" || *table == t }
	wantFigure := func(f string) bool { return *table == "" && *figure == "" || *figure == f }

	if wantTable("1") {
		bench.WriteTable1(os.Stdout, spec)
		fmt.Println()
	}

	var rows []bench.Row
	needTable2 := wantTable("2") || wantFigure("3a") || wantFigure("3b")
	if needTable2 {
		var err error
		fmt.Fprintln(os.Stderr, "running Table 2 (8 benchmarks x 2 engines)...")
		rows, err = h.Table2()
		if err != nil {
			fatal(err)
		}
	}
	if wantTable("2") {
		bench.WriteTable2(os.Stdout, rows)
		fmt.Println()
		bench.WriteTimeReport(os.Stdout, rows)
		fmt.Println()
		if *check {
			for _, v := range bench.ShapeCheck(rows) {
				fmt.Println(" ", v)
			}
			fmt.Println()
		}
	}
	if wantTable("3") {
		fmt.Fprintln(os.Stderr, "running Table 3 (combiner ablation)...")
		rows3, err := h.Table3()
		if err != nil {
			fatal(err)
		}
		bench.WriteTable3(os.Stdout, rows3)
		fmt.Println()
	}
	if wantFigure("3a") {
		bench.WriteFigure3(os.Stdout, rows, "3a")
		fmt.Println()
	}
	if wantFigure("3b") {
		bench.WriteFigure3(os.Stdout, rows, "3b")
	}
}

// exportTrace writes one engine's Chrome trace JSON next to the -trace
// path (base.ENGINE.json) and prints its critical path.
func exportTrace(t *trace.Tracer, path, engine string) error {
	if t == nil {
		return nil
	}
	base := strings.TrimSuffix(path, ".json")
	name := fmt.Sprintf("%s.%s.json", base, engine)
	evs := t.Events()
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := trace.WriteJSON(f, evs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\n%s: %d trace events -> %s\ncritical path (%s):\n", engine, len(evs), name, engine)
	trace.WritePathTable(os.Stdout, trace.CriticalPath(evs))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hamrbench:", err)
	os.Exit(1)
}
