// Command cacheprobe is the invariance probe for the node-local HDFS block
// cache. It drives the two iterative chained-MR workloads the cache is
// aimed at — PageRank (two chained jobs per iteration, intermediates
// rereads) and K-Means (the whole input reread every iteration) — once
// with the cache disabled and once enabled, and prints the modeled-cost
// counters plus a SHA-256 of each run's output.
//
// Contract:
//
//   - the cache-off counter lines must be bit-identical to the pre-cache
//     baseline (the read path with HDFSCacheMB=0 is byte-identical code);
//   - the cache-on run must produce bit-identical output hashes while
//     showing hdfs.cache.hits > 0 and strictly fewer disk.read bytes.
//
// The probe exits non-zero if either assertion fails, so CI can run it.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/apps/mrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/vtime"
)

// vclock runs every probe cluster under a virtual clock. The probe's
// cost models are zero-delay, so the printed lines must stay identical
// either way — which is exactly what CI diffs.
var vclock = flag.Bool("vclock", false, "pay modeled delays on a virtual clock instead of sleeping")

// baselineCounters is the fixed list of pre-cache counters whose values
// must be identical between a cache-off run and the pre-PR baseline, in
// print order. Placement-sensitive counters are included deliberately:
// the probe's single-reduce jobs and oversized YARN memory make every
// container allocation deterministic.
var baselineCounters = []string{
	"mr.jobs", "mr.spills", "mr.spill.bytes", "mr.merge.passes",
	"mr.shuffle.bytes", "mr.reduce.disk.merges",
	"mr.map.local", "mr.map.remote", "mr.task.retries",
	"disk.read.ops", "disk.write.ops", "disk.read.bytes", "disk.write.bytes",
	"net.bytes", "net.msgs", "hdfs.failover.reads", "hdfs.write.replaced",
}

// newCluster builds the probe cluster: zero-delay cost-counting disks, a
// small block size so files span many blocks, and enough YARN memory that
// every task lands on its preferred node (placement determinism).
func newCluster(nodes, cacheMB int) *cluster.Cluster {
	opts := cluster.Options{
		NumNodes:      nodes,
		Core:          core.Config{},
		DiskModel:     &storage.CostModel{},
		HDFSBlockSize: 4 << 10,
		YarnMemMB:     1 << 20,
		HDFSCacheMB:   cacheMB,
	}
	if *vclock {
		opts.Clock = vtime.NewVirtual(nodes).SetRealHold(vtime.Startup, true)
	}
	c, err := cluster.New(opts)
	if err != nil {
		fatal(err)
	}
	return c
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cacheprobe:", err)
	os.Exit(1)
}

func hashOutput(c *cluster.Cluster, prefix string) string {
	h := sha256.New()
	for _, name := range c.FS().List(prefix) {
		data, err := c.FS().ReadFile(name, -1)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(h, "%s\n", name)
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

func counterLine(reg *metrics.Registry, names []string) string {
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, reg.Counter(n).Value()))
	}
	return strings.Join(parts, " ")
}

// runResult carries what the off/on comparison needs.
type runResult struct {
	outHash   string
	diskRead  int64
	cacheHits int64
}

// probePageRank runs the chained PageRank workload: 2 iterations = 4
// chained jobs, every boundary materialized in HDFS and reread by the
// next job's map phase.
func probePageRank(label string, cacheMB int) runResult {
	c := newCluster(3, cacheMB)
	defer c.Close()
	graph := datagen.WebGraph(datagen.WebGraphConfig{Seed: 7, Pages: 700})
	if err := c.FS().WriteFile("in/pagerank", graph, -1); err != nil {
		fatal(err)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 8 << 10,
		MergeFactor:     4,
		DefaultReduces:  1,
	})
	res, err := mrapps.RunPageRankMR(eng, c.FS(), "in/pagerank", "work", 2, 1)
	if err != nil {
		fatal(err)
	}
	reg := c.Metrics()
	fmt.Printf("%s: pages=%d ranks=%d\n", label, 700, len(res.Ranks))
	fmt.Printf("%s: %s\n", label, counterLine(reg, baselineCounters))
	out := runResult{
		outHash:   hashOutput(c, "work/iter01-rank/") + "/" + hashRanks(res.Ranks),
		diskRead:  reg.Counter("disk.read.bytes").Value(),
		cacheHits: reg.Counter("hdfs.cache.hits").Value(),
	}
	printCacheCounters(label, reg, cacheMB)
	fmt.Printf("%s: output=%s\n", label, out.outHash)
	return out
}

func hashRanks(ranks map[string]float64) string {
	keys := make([]string, 0, len(ranks))
	for k := range ranks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%.12g\n", k, ranks[k])
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// probeKMeans runs the iterative K-Means workload: each iteration is one
// MR job that rereads the full input file and writes back k centroids.
func probeKMeans(label string, cacheMB int) runResult {
	c := newCluster(3, cacheMB)
	defer c.Close()
	const k = 3
	movies := datagen.Movies(datagen.MoviesConfig{Seed: 9, Movies: 2500, Users: 40, Clusters: k})
	if err := c.FS().WriteFile("in/kmeans", movies, -1); err != nil {
		fatal(err)
	}
	centroids := datagen.InitialCentroids(movies, k)
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 16 << 10,
		MergeFactor:     4,
		DefaultReduces:  1,
	})
	var lastOut string
	for it := 0; it < 3; it++ {
		lastOut = fmt.Sprintf("kout/iter%02d", it)
		if _, err := eng.Run(mrapps.KMeansJob("in/kmeans", lastOut, centroids, 1)); err != nil {
			fatal(err)
		}
		// Parse the new centroids for the next iteration; clusters that
		// produced no medoid keep their previous centroid.
		for _, f := range c.FS().List(lastOut + "/") {
			data, err := c.FS().ReadFile(f, -1)
			if err != nil {
				fatal(err)
			}
			for _, line := range strings.Split(string(data), "\n") {
				tab := strings.IndexByte(line, '\t')
				if tab <= 0 {
					continue
				}
				idx, err := strconv.Atoi(line[:tab])
				if err != nil || idx < 0 || idx >= k {
					fatal(fmt.Errorf("bad centroid line %q", line))
				}
				cent, err := hamrapps.ParseCentroid(line[tab+1:])
				if err != nil {
					fatal(err)
				}
				centroids[idx] = cent
			}
		}
	}
	reg := c.Metrics()
	fmt.Printf("%s: %s\n", label, counterLine(reg, baselineCounters))
	out := runResult{
		outHash:   hashOutput(c, lastOut+"/"),
		diskRead:  reg.Counter("disk.read.bytes").Value(),
		cacheHits: reg.Counter("hdfs.cache.hits").Value(),
	}
	printCacheCounters(label, reg, cacheMB)
	fmt.Printf("%s: output=%s\n", label, out.outHash)
	return out
}

// printCacheCounters prints the cache-era counters on their own line so
// the baseline-compat line above stays diffable against pre-cache builds.
func printCacheCounters(label string, reg *metrics.Registry, cacheMB int) {
	if cacheMB <= 0 {
		return
	}
	fmt.Printf("%s: %s\n", label, counterLine(reg, []string{
		"hdfs.cache.hits", "hdfs.cache.misses", "hdfs.cache.bytes",
		"hdfs.cache.evictions", "hdfs.bytes.local", "hdfs.bytes.remote",
		"mr.map.cachehot",
	}))
}

func main() {
	flag.Parse()
	const cacheMB = 8 // enough for every probe working set: no evictions
	fail := false
	check := func(ok bool, format string, args ...any) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
			fail = true
		}
		fmt.Printf("[%s] %s\n", verdict, fmt.Sprintf(format, args...))
	}

	prOff := probePageRank("pagerank-nocache", 0)
	kmOff := probeKMeans("kmeans-nocache", 0)
	prOn := probePageRank("pagerank-cache", cacheMB)
	kmOn := probeKMeans("kmeans-cache", cacheMB)

	check(prOff.cacheHits == 0, "pagerank cache-off run never touches the cache")
	check(kmOff.cacheHits == 0, "kmeans cache-off run never touches the cache")
	check(prOn.outHash == prOff.outHash,
		"pagerank output bit-identical cache on/off (%s vs %s)", prOn.outHash, prOff.outHash)
	check(kmOn.outHash == kmOff.outHash,
		"kmeans output bit-identical cache on/off (%s vs %s)", kmOn.outHash, kmOff.outHash)
	check(prOn.cacheHits > 0, "pagerank cache-on run hits the cache (%d hits)", prOn.cacheHits)
	check(kmOn.cacheHits > 0, "kmeans cache-on run hits the cache (%d hits)", kmOn.cacheHits)
	check(prOn.diskRead < prOff.diskRead,
		"pagerank disk.read.bytes reduced (%d -> %d, -%d%%)",
		prOff.diskRead, prOn.diskRead, (prOff.diskRead-prOn.diskRead)*100/max1(prOff.diskRead))
	check(kmOn.diskRead < kmOff.diskRead,
		"kmeans disk.read.bytes reduced (%d -> %d, -%d%%)",
		kmOff.diskRead, kmOn.diskRead, (kmOff.diskRead-kmOn.diskRead)*100/max1(kmOff.diskRead))

	if fail {
		fmt.Println("cacheprobe: FAIL")
		os.Exit(1)
	}
	fmt.Println("cacheprobe: OK")
}

func max1(v int64) int64 {
	if v < 1 {
		return 1
	}
	return v
}
