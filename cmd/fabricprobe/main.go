// Command fabricprobe runs the shuffle-heavy WordCount benchmark on both
// engines and prints wall-clock plus the fabric invariants (net.bytes,
// shuffle.kvs) — used to verify transport changes keep modeled byte costs
// identical while reducing wall-clock.
package main

import (
	"fmt"
	"os"

	"github.com/hamr-go/hamr/internal/bench"
)

func main() {
	h := bench.NewHarness(bench.DefaultSpec(), bench.SmallScale())
	for i := 0; i < 3; i++ {
		hamr, err := h.RunHAMR(bench.WordCount)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// net.* are transport counters, accounted cluster-wide; the
		// shuffle/bin counters are the job's own deltas.
		cm := h.LastHAMRCluster
		m := h.LastHAMR.Metrics
		fmt.Printf("run %d: HAMR wordcount %.3fs net.bytes=%d net.msgs=%d shuffle.kvs=%d shuffle.bytes=%d bins.sent=%d\n",
			i, hamr.Seconds(), cm.Get("net.bytes"), cm.Get("net.msgs"),
			m.Get("shuffle.kvs"), m.Get("shuffle.bytes"), m.Get("bins.sent"))
		mr, err := h.RunMR(bench.WordCount)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("run %d: MR   wordcount %.3fs\n", i, mr.Seconds())
	}
}
