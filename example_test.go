package hamr_test

import (
	"fmt"
	"log"
	"sort"
	"strings"

	hamr "github.com/hamr-go/hamr"
)

type exampleSplit struct{}

func (exampleSplit) Map(kv hamr.KV, ctx hamr.Context) error {
	for _, w := range strings.Fields(kv.Value.(string)) {
		if err := ctx.Emit(hamr.KV{Key: w, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

// ExampleNewPipeline runs the canonical WordCount: loader, map, partial
// reduce, collected output.
func ExampleNewPipeline() {
	c, err := hamr.NewCluster(hamr.ClusterOptions{NumNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	loader := &hamr.SliceLoader{Chunks: [][]string{{"go gopher go"}, {"gopher"}}}
	g, sink, err := hamr.NewPipeline("wordcount", loader).
		Via(hamr.WithRouting(hamr.RouteLocal)).
		Map("split", exampleSplit{}).
		PartialReduce("count", hamr.SumInt64()).
		Collect()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Run(g); err != nil {
		log.Fatal(err)
	}
	for _, kv := range sink.Sorted() {
		fmt.Printf("%s=%d\n", kv.Key, kv.Value)
	}
	// Output:
	// go=2
	// gopher=2
}

// ExampleNewGraph builds a DAG by hand: one loader feeding two branches
// (the data-reuse pattern a single MapReduce job cannot express).
func ExampleNewGraph() {
	c, err := hamr.NewCluster(hamr.ClusterOptions{NumNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	g := hamr.NewGraph("fanout")
	sink := hamr.NewCollectSink()
	ld, _ := g.AddLoader("load", &hamr.SliceLoader{Chunks: [][]string{{"x y", "z"}}})
	words, _ := g.AddMap("words", exampleSplit{})
	lines, _ := g.AddMap("lines", hamr.MapFunc(func(kv hamr.KV, ctx hamr.Context) error {
		return ctx.Emit(hamr.KV{Key: "__lines__", Value: int64(1)})
	}))
	agg, _ := g.AddPartialReduce("count", hamr.SumInt64())
	sk, _ := g.AddSink("out", sink)
	g.Connect(ld, words)
	g.Connect(ld, lines)
	g.Connect(words, agg)
	g.Connect(lines, agg)
	g.Connect(agg, sk)

	if _, err := c.Run(g); err != nil {
		log.Fatal(err)
	}
	pairs := sink.Sorted()
	for _, kv := range pairs {
		fmt.Printf("%s=%d\n", kv.Key, kv.Value)
	}
	// Output:
	// __lines__=2
	// x=1
	// y=1
	// z=1
}

// ExampleNewSQLCatalog shows a GROUP BY query compiling onto the engine.
func ExampleNewSQLCatalog() {
	c, err := hamr.NewCluster(hamr.ClusterOptions{NumNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	rows := "east\t10\neast\t5\nwest\t40\n"
	files, err := hamr.DistributeLocalText(c, "sales", []byte(rows), 2)
	if err != nil {
		log.Fatal(err)
	}
	cat := hamr.NewSQLCatalog(c)
	if err := cat.Register(&hamr.SQLTable{
		Name:    "sales",
		Columns: []string{"region", "amount"},
		Loader:  &hamr.LocalTextLoader{Files: files},
	}); err != nil {
		log.Fatal(err)
	}
	res, err := cat.Query("SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY total DESC")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, " "))
	}
	// Output:
	// west 40
	// east 15
}

// ExampleFold builds a custom partial reducer (here: max) from plain
// functions.
func ExampleFold() {
	c, err := hamr.NewCluster(hamr.ClusterOptions{NumNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	max := hamr.Fold(func(key string, state, value any) (any, error) {
		v := value.(int64)
		if state == nil || v > state.(int64) {
			return v, nil
		}
		return state, nil
	}, nil)

	loader := &hamr.SliceLoader{Chunks: [][]string{{"7", "3", "9", "4"}}}
	g, sink, err := hamr.NewPipeline("max", loader).
		Map("parse", hamr.MapFunc(func(kv hamr.KV, ctx hamr.Context) error {
			var n int64
			fmt.Sscanf(kv.Value.(string), "%d", &n)
			return ctx.Emit(hamr.KV{Key: "max", Value: n})
		})).
		PartialReduce("fold", max).
		Collect()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Run(g); err != nil {
		log.Fatal(err)
	}
	pairs := sink.Pairs()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	fmt.Println(pairs[0].Key, pairs[0].Value)
	// Output:
	// max 9
}
