package hamr

import (
	"context"
	"fmt"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/core"
)

// Re-exported loaders for common input sources.
type (
	// LocalTextLoader reads text files from each node's local disk.
	LocalTextLoader = hamrapps.LocalTextLoader
	// HDFSTextLoader streams an HDFS file or prefix with block locality.
	HDFSTextLoader = hamrapps.HDFSTextLoader
)

// DistributeLocalText splits text data into per-node local files and
// returns the file map a LocalTextLoader consumes.
func DistributeLocalText(c *Cluster, name string, data []byte, parts int) (map[int][]string, error) {
	return hamrapps.DistributeLocalText(c, name, data, parts)
}

// Pipeline builds linear flowlet graphs fluently:
//
//	g, sink, err := hamr.NewPipeline("wordcount", loader).
//	    Map("split", splitWords{}).
//	    PartialReduce("count", sumCounts{}).
//	    Collect()
//
// Stages are connected in order with shuffle routing (overridable per
// stage with Via).
type Pipeline struct {
	g      *Graph
	prev   int
	nextRt []EdgeOption
	err    error
}

// NewPipeline starts a pipeline at a loader stage.
func NewPipeline(name string, loader Loader) *Pipeline {
	p := &Pipeline{g: NewGraph(name)}
	id, err := p.g.AddLoader("load", loader)
	p.prev, p.err = id, err
	return p
}

// Via sets edge options for the next connection only.
func (p *Pipeline) Via(opts ...EdgeOption) *Pipeline {
	p.nextRt = opts
	return p
}

func (p *Pipeline) connect(id int, err error) *Pipeline {
	if p.err != nil {
		return p
	}
	if err != nil {
		p.err = err
		return p
	}
	opts := p.nextRt
	p.nextRt = nil
	if err := p.g.Connect(p.prev, id, opts...); err != nil {
		p.err = err
		return p
	}
	p.prev = id
	return p
}

// Map appends a map stage.
func (p *Pipeline) Map(name string, m Mapper) *Pipeline {
	if p.err != nil {
		return p
	}
	id, err := p.g.AddMap(name, m)
	return p.connect(id, err)
}

// Filter appends a map stage that forwards only pairs keep returns true
// for.
func (p *Pipeline) Filter(name string, keep func(KV) bool) *Pipeline {
	return p.Map(name, MapFunc(func(kv KV, ctx Context) error {
		if !keep(kv) {
			return nil
		}
		return ctx.Emit(kv)
	}))
}

// FlatMap appends a map stage whose function may emit zero or more pairs
// per input pair through the emit callback.
func (p *Pipeline) FlatMap(name string, fn func(kv KV, emit func(KV) error) error) *Pipeline {
	return p.Map(name, MapFunc(func(kv KV, ctx Context) error {
		return fn(kv, ctx.Emit)
	}))
}

// Reduce appends a reduce stage.
func (p *Pipeline) Reduce(name string, r Reducer) *Pipeline {
	if p.err != nil {
		return p
	}
	id, err := p.g.AddReduce(name, r)
	return p.connect(id, err)
}

// PartialReduce appends a partial-reduce stage.
func (p *Pipeline) PartialReduce(name string, r PartialReducer) *Pipeline {
	if p.err != nil {
		return p
	}
	id, err := p.g.AddPartialReduce(name, r)
	return p.connect(id, err)
}

// Sink terminates the pipeline with a caller-provided sink and returns the
// finished graph.
func (p *Pipeline) Sink(name string, s Sink) (*Graph, error) {
	if p.err != nil {
		return nil, p.err
	}
	id, err := p.g.AddSink(name, s)
	if err != nil {
		return nil, err
	}
	if err := p.g.Connect(p.prev, id, p.nextRt...); err != nil {
		return nil, err
	}
	return p.g, nil
}

// Collect terminates the pipeline with a CollectSink.
func (p *Pipeline) Collect() (*Graph, *CollectSink, error) {
	sink := NewCollectSink()
	g, err := p.Sink("out", sink)
	if err != nil {
		return nil, nil, err
	}
	return g, sink, nil
}

// Run terminates the pipeline with a CollectSink and executes it on the
// cluster, honoring ctx cancellation — the one-call path from fluent
// builder to results:
//
//	res, sink, err := hamr.NewPipeline("wc", loader).
//	    FlatMap("split", splitLine).
//	    PartialReduce("count", hamr.SumInt64()).
//	    Run(ctx, c)
func (p *Pipeline) Run(ctx context.Context, c *Cluster) (*JobResult, *CollectSink, error) {
	g, sink, err := p.Collect()
	if err != nil {
		return nil, nil, err
	}
	res, err := c.RunContext(ctx, g)
	if err != nil {
		return res, sink, err
	}
	return res, sink, nil
}

// MapFunc adapts a function to Mapper.
type MapFunc func(kv KV, ctx Context) error

// Map implements Mapper.
func (f MapFunc) Map(kv KV, ctx Context) error { return f(kv, ctx) }

// ReduceFunc adapts a function to Reducer.
type ReduceFunc func(key string, values []any, ctx Context) error

// Reduce implements Reducer.
func (f ReduceFunc) Reduce(key string, values []any, ctx Context) error {
	return f(key, values, ctx)
}

// Fold builds a PartialReducer from an update function and an optional
// finish formatter (default: emit the final state under the key).
func Fold(update func(key string, state, value any) (any, error),
	finish func(key string, state any, ctx Context) error) PartialReducer {
	if finish == nil {
		finish = func(key string, state any, ctx Context) error {
			return ctx.Emit(KV{Key: key, Value: state})
		}
	}
	return foldReducer{update: update, finish: finish}
}

type foldReducer struct {
	update func(key string, state, value any) (any, error)
	finish func(key string, state any, ctx Context) error
}

func (f foldReducer) Update(key string, state, value any) (any, error) {
	return f.update(key, state, value)
}

func (f foldReducer) Finish(key string, state any, ctx Context) error {
	return f.finish(key, state, ctx)
}

// SumInt64 is a ready-made partial reducer summing int64 values.
func SumInt64() PartialReducer {
	return Fold(func(key string, state, value any) (any, error) {
		v, ok := value.(int64)
		if !ok {
			return nil, fmt.Errorf("hamr: SumInt64 got %T", value)
		}
		if state == nil {
			return v, nil
		}
		return state.(int64) + v, nil
	}, nil)
}

// SliceLoader is a convenience loader over in-memory string chunks; each
// chunk becomes one split and each string one ("", line) pair.
type SliceLoader struct {
	Chunks [][]string
}

// Plan implements Loader.
func (l *SliceLoader) Plan(env *Env) ([]Split, error) {
	if len(l.Chunks) == 0 {
		return nil, fmt.Errorf("hamr: SliceLoader has no chunks")
	}
	splits := make([]Split, len(l.Chunks))
	for i, c := range l.Chunks {
		splits[i] = Split{Payload: c, PreferredNode: -1, Size: int64(len(c))}
	}
	return splits, nil
}

// Load implements Loader.
func (l *SliceLoader) Load(sp Split, ctx Context) error {
	for _, line := range sp.Payload.([]string) {
		if err := ctx.Emit(KV{Key: "", Value: line}); err != nil {
			return err
		}
	}
	return nil
}

var _ core.Loader = (*SliceLoader)(nil)
