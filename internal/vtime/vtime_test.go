package vtime

import (
	"sync"
	"testing"
	"time"
)

// Two virtual runs issuing the same charges from racing goroutines must
// report identical modeled times: lane advances are sums of atomic
// adds, so scheduling order cannot leak into the result.
func TestVirtualDeterministicReplay(t *testing.T) {
	run := func() (time.Duration, [3]time.Duration) {
		v := NewVirtual(4)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					v.Charge(g%4, Disk, time.Duration(1+i%7)*time.Microsecond)
					v.Charge(g%4, Net, 500*time.Nanosecond)
					if i%50 == 0 {
						v.Charge(Driver, Startup, 20*time.Microsecond)
					}
				}
			}(g)
		}
		wg.Wait()
		return v.Elapsed(), [3]time.Duration{v.Busy(Disk), v.Busy(Net), v.Busy(Startup)}
	}
	e1, b1 := run()
	e2, b2 := run()
	if e1 != e2 {
		t.Fatalf("modeled elapsed differs across identical runs: %v vs %v", e1, e2)
	}
	if b1 != b2 {
		t.Fatalf("busy accounting differs across identical runs: %v vs %v", b1, b2)
	}
	if e1 == 0 || b1[0] == 0 || b1[1] == 0 || b1[2] == 0 {
		t.Fatalf("charges did not accumulate: elapsed %v busy %v", e1, b1)
	}
}

// Concurrent chargers under -race: totals must be exact, not
// approximately merged.
func TestConcurrentChargersExactTotals(t *testing.T) {
	const (
		nodes    = 3
		chargers = 16
		each     = 1000
		quantum  = time.Microsecond
	)
	v := NewVirtual(nodes)
	var wg sync.WaitGroup
	for g := 0; g < chargers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				v.Charge(g%nodes, Contention, quantum)
			}
		}(g)
	}
	wg.Wait()
	want := time.Duration(chargers*each) * quantum
	if got := v.Busy(Contention); got != want {
		t.Fatalf("busy(contention) = %v, want %v", got, want)
	}
	var lanes time.Duration
	for n := 0; n < nodes; n++ {
		lanes += v.NodeTime(n)
	}
	if lanes != want {
		t.Fatalf("summed node lanes = %v, want %v", lanes, want)
	}
	// chargers land on nodes round-robin, so the busiest lane carries
	// ceil(chargers/nodes) of them and elapsed = that lane's advance.
	busiest := time.Duration((chargers+nodes-1)/nodes*each) * quantum
	if got := v.Elapsed(); got != busiest {
		t.Fatalf("elapsed = %v, want %v", got, busiest)
	}
}

// The elapsed model: driver advance is serial with everything, node
// advance is the max over lanes, and Mark/Since measures intervals.
func TestElapsedModelAndMarks(t *testing.T) {
	v := NewVirtual(2)
	v.Charge(Driver, Startup, 10*time.Millisecond)
	v.Charge(0, Disk, 30*time.Millisecond)
	v.Charge(1, Disk, 40*time.Millisecond)
	if got, want := v.Elapsed(), 50*time.Millisecond; got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
	m := v.Mark()
	v.Charge(1, Net, 5*time.Millisecond)
	if got, want := v.Since(m), 5*time.Millisecond; got != want {
		t.Fatalf("since mark = %v, want %v", got, want)
	}
	if got, want := v.Elapsed(), 55*time.Millisecond; got != want {
		t.Fatalf("elapsed after mark = %v, want %v", got, want)
	}
}

// SetParallelism divides lane advance but not busy accounting.
func TestParallelismDividesLaneOnly(t *testing.T) {
	v := NewVirtual(1)
	v.SetParallelism(Disk, 2)
	v.Charge(0, Disk, 10*time.Millisecond)
	v.Charge(0, Disk, 10*time.Millisecond)
	if got, want := v.Elapsed(), 10*time.Millisecond; got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
	if got, want := v.Busy(Disk), 20*time.Millisecond; got != want {
		t.Fatalf("busy = %v, want %v", got, want)
	}
}

// A real hold blocks node-attributed charges for the charged duration
// but never driver-attributed ones.
func TestRealHoldBlocksNodeChargesOnly(t *testing.T) {
	v := NewVirtual(1)
	v.SetRealHold(Startup, true)
	const d = 20 * time.Millisecond
	start := time.Now()
	v.Charge(0, Startup, d)
	if held := time.Since(start); held < d {
		t.Fatalf("node-attributed held charge returned after %v, want >= %v", held, d)
	}
	start = time.Now()
	v.Charge(Driver, Startup, 500*time.Millisecond)
	if held := time.Since(start); held > 100*time.Millisecond {
		t.Fatalf("driver-attributed charge blocked for %v; holds must not apply to the driver lane", held)
	}
	if got, want := v.Busy(Startup), 520*time.Millisecond; got != want {
		t.Fatalf("busy(startup) = %v, want %v", got, want)
	}
}

// The virtual clock must not sleep on ordinary charges.
func TestVirtualChargeDoesNotSleep(t *testing.T) {
	v := NewVirtual(2)
	start := time.Now()
	v.Charge(0, Disk, 2*time.Second)
	v.Charge(Driver, Net, 2*time.Second)
	v.Sleep(2 * time.Second)
	if wall := time.Since(start); wall > 200*time.Millisecond {
		t.Fatalf("virtual charges took %v of wall time", wall)
	}
	if got, want := v.Elapsed(), 6*time.Second; got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

// RealClock.Charge sleeps like the pre-seam layers did.
func TestRealClockChargeSleeps(t *testing.T) {
	const d = 15 * time.Millisecond
	start := time.Now()
	Real().Charge(3, Disk, d)
	if got := time.Since(start); got < d {
		t.Fatalf("RealClock.Charge returned after %v, want >= %v", got, d)
	}
	// Non-positive durations return immediately.
	Real().Charge(0, Disk, -time.Second)
	Real().Sleep(-time.Second)
}

func TestResourceStrings(t *testing.T) {
	want := []string{"disk", "net", "cpu", "startup", "contention", "fault"}
	rs := Resources()
	if len(rs) != len(want) {
		t.Fatalf("Resources() has %d entries, want %d", len(rs), len(want))
	}
	for i, r := range rs {
		if r.String() != want[i] {
			t.Fatalf("resource %d = %q, want %q", i, r, want[i])
		}
	}
}
