// Package vtime is the clock seam under every modeled cost in the
// simulation. Disk throughput and seeks (storage.CostModel), network
// latency and bandwidth (transport.CostModel, cluster.ChargeNet),
// compression CPU, MapReduce job/task startup and injected fault delays
// all price a simulated action as a time.Duration; how that duration is
// *paid* is this package's concern.
//
// Two implementations are provided:
//
//   - RealClock (the default everywhere): a charge is paid by sleeping in
//     the charging goroutine, exactly as the layers did before the seam
//     existed. Runs are bit-identical to the pre-seam code.
//
//   - VirtualClock: a charge advances a per-node logical clock instead of
//     sleeping, with per-resource busy-time accounting on the side. Wall
//     time collapses to the real compute the run does, while modeled
//     elapsed seconds are still reported from the logical clocks — so the
//     Table 2 / Figure 3 shapes regenerate at memory speed without wall
//     benchmarking's sensitivity to host load.
//
// Charge attribution: node >= 0 names a worker node's lane; Driver (any
// negative node) names the serial job-coordinator lane. Modeled elapsed
// time over an interval is the driver lane's advance plus the maximum
// advance of any single node lane — driver work is serial with
// everything, node work overlaps across nodes. Within one node, charges
// add up; SetParallelism can divide a resource's lane advance to model a
// resource that serves several streams at once (the disk model's
// Parallel field).
package vtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Resource classifies what a charge models, for busy-time accounting.
type Resource uint8

// The modeled resources.
const (
	Disk       Resource = iota // local-disk seeks and throughput
	Net                        // fabric latency and bandwidth
	CPU                        // modeled compute (compression codec work)
	Startup                    // MapReduce job and task launch overhead
	Contention                 // contended shared-variable updates (§5.2)
	Fault                      // injected delays (stragglers, wire faults)
	numResources
)

var resourceNames = [numResources]string{"disk", "net", "cpu", "startup", "contention", "fault"}

// String implements fmt.Stringer.
func (r Resource) String() string {
	if int(r) < len(resourceNames) {
		return resourceNames[r]
	}
	return fmt.Sprintf("resource(%d)", int(r))
}

// Resources lists every resource, for reports.
func Resources() []Resource {
	out := make([]Resource, numResources)
	for i := range out {
		out[i] = Resource(i)
	}
	return out
}

// Driver is the node argument attributing a charge to the serial job
// coordinator rather than to any worker node.
const Driver = -1

// Clock is the seam every modeled delay is paid through.
type Clock interface {
	// Now returns the wall clock. Neither implementation virtualizes the
	// scheduler's notion of wall time — engines still timestamp and
	// measure their own overhead with it.
	Now() time.Time
	// Sleep pauses the calling goroutine. Under RealClock it is
	// time.Sleep; under VirtualClock it returns immediately after
	// advancing the driver lane (callers that need real pacing should
	// use time.Sleep directly).
	Sleep(d time.Duration)
	// Charge pays a modeled delay of d attributed to node's resource
	// res. node < 0 (Driver) attributes it to the serial driver lane.
	// RealClock sleeps for d; VirtualClock advances logical clocks.
	Charge(node int, res Resource, d time.Duration)
	// AfterFunc schedules f on a wall-clock timer. Both implementations
	// use real timers: the one user (the coalescer's age flush) is
	// liveness pacing for batching, not a modeled cost, and must keep
	// firing even when no time is being slept.
	AfterFunc(d time.Duration, f func()) *time.Timer
}

// RealClock pays charges with real sleeps — the default, bit-identical
// to the pre-seam behaviour of every layer.
type RealClock struct{}

// Real returns the shared real clock.
func Real() Clock { return RealClock{} }

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Charge implements Clock by sleeping in the caller's goroutine.
func (RealClock) Charge(_ int, _ Resource, d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// AfterFunc implements Clock.
func (RealClock) AfterFunc(d time.Duration, f func()) *time.Timer { return time.AfterFunc(d, f) }

// lane is one logical clock, padded to its own cache line so concurrent
// chargers on different nodes do not false-share.
type lane struct {
	ns atomic.Int64
	_  [56]byte
}

// VirtualClock advances per-node logical clocks instead of sleeping.
// Charges are atomic adds, so accumulated lane times are independent of
// goroutine scheduling order: two runs that issue the same charges
// report identical modeled times regardless of interleaving.
//
// Configure with SetParallelism / SetRealHold before the run starts;
// both are plain writes read concurrently afterwards.
type VirtualClock struct {
	lanes []lane // [0] = driver, [1+i] = node i
	busy  [numResources]atomic.Int64
	par   [numResources]int64
	hold  [numResources]bool
}

// NewVirtual creates a virtual clock for a cluster of nodes worker
// nodes (plus the implicit driver lane).
func NewVirtual(nodes int) *VirtualClock {
	if nodes < 0 {
		nodes = 0
	}
	v := &VirtualClock{lanes: make([]lane, nodes+1)}
	for i := range v.par {
		v.par[i] = 1
	}
	return v
}

// SetParallelism models a resource that serves n concurrent streams per
// node at full speed: each charge advances the node lane by d/n while
// busy-time accounting keeps the full d. The disk model's Parallel
// field maps here. n <= 1 restores serial accounting. Call before the
// run starts.
func (v *VirtualClock) SetParallelism(res Resource, n int) *VirtualClock {
	if n < 1 {
		n = 1
	}
	v.par[res] = int64(n)
	return v
}

// SetRealHold makes node-attributed charges of res also block the
// charging goroutine for their real duration. The one intended user is
// the MapReduce task-startup charge, which is issued while the task's
// YARN container is held: the hold time is what makes sibling
// allocations overlap and spread across nodes, a scheduling-structural
// effect a purely logical charge cannot reproduce. Driver-attributed
// charges never hold. Call before the run starts.
func (v *VirtualClock) SetRealHold(res Resource, on bool) *VirtualClock {
	v.hold[res] = on
	return v
}

// Now implements Clock.
func (v *VirtualClock) Now() time.Time { return time.Now() }

// Sleep implements Clock: the pause becomes a driver-lane CPU charge.
func (v *VirtualClock) Sleep(d time.Duration) { v.Charge(Driver, CPU, d) }

// Charge implements Clock by advancing logical clocks.
func (v *VirtualClock) Charge(node int, res Resource, d time.Duration) {
	if d <= 0 {
		return
	}
	li := 0
	if node >= 0 && node < len(v.lanes)-1 {
		li = node + 1
	}
	eff := int64(d)
	if p := v.par[res]; p > 1 {
		eff /= p
	}
	v.lanes[li].ns.Add(eff)
	v.busy[res].Add(int64(d))
	if v.hold[res] && node >= 0 {
		time.Sleep(d)
	}
}

// AfterFunc implements Clock with a real timer (see Clock.AfterFunc).
func (v *VirtualClock) AfterFunc(d time.Duration, f func()) *time.Timer { return time.AfterFunc(d, f) }

// AddBusy records busy time for res without advancing any lane. It is
// for callers that model their own overlap — work whose full cost should
// appear in the per-resource accounting while only a caller-computed
// serialized fraction advances a lane (via AdvanceLane). The contention
// model uses the pair: charges overlap across lock stripes, so the lane
// advance is the hot stripe's serialized time, not the stripe sum.
func (v *VirtualClock) AddBusy(res Resource, d time.Duration) {
	if d > 0 {
		v.busy[res].Add(int64(d))
	}
}

// AdvanceLane advances one lane without busy accounting or parallelism
// division — the companion to AddBusy for callers modeling their own
// overlap. node < 0 advances the driver lane.
func (v *VirtualClock) AdvanceLane(node int, d time.Duration) {
	if d <= 0 {
		return
	}
	li := 0
	if node >= 0 && node < len(v.lanes)-1 {
		li = node + 1
	}
	v.lanes[li].ns.Add(int64(d))
}

// Mark is a snapshot of every lane, for interval measurement.
type Mark struct{ lanes []int64 }

// Mark snapshots the clock so Since can measure a run's advance.
func (v *VirtualClock) Mark() Mark {
	m := Mark{lanes: make([]int64, len(v.lanes))}
	for i := range v.lanes {
		m.lanes[i] = v.lanes[i].ns.Load()
	}
	return m
}

// Since reports the modeled elapsed time since m: the driver lane's
// advance plus the maximum advance of any single node lane. Driver work
// (job startup, un-attributed transfers) is serial with everything;
// node work overlaps across nodes and the slowest node paces the run.
// Within a node charges accumulate, so intra-node overlap beyond
// SetParallelism is deliberately not modeled — see DESIGN.md "Virtual
// time and the cost model" for what that approximation preserves.
func (v *VirtualClock) Since(m Mark) time.Duration {
	at := func(i int) int64 {
		if i < len(m.lanes) {
			return m.lanes[i]
		}
		return 0
	}
	driver := v.lanes[0].ns.Load() - at(0)
	var maxNode int64
	for i := 1; i < len(v.lanes); i++ {
		if d := v.lanes[i].ns.Load() - at(i); d > maxNode {
			maxNode = d
		}
	}
	return time.Duration(driver + maxNode)
}

// Elapsed is Since the clock's creation.
func (v *VirtualClock) Elapsed() time.Duration { return v.Since(Mark{}) }

// Busy reports the total charged time of one resource across all nodes
// (undivided by parallelism) — the per-resource accounting that lets a
// report decompose modeled elapsed time into disk, net, startup and so
// on.
func (v *VirtualClock) Busy(res Resource) time.Duration {
	return time.Duration(v.busy[res].Load())
}

// NodeTime reports one lane's accumulated logical time (node < 0 for
// the driver lane).
func (v *VirtualClock) NodeTime(node int) time.Duration {
	li := 0
	if node >= 0 && node < len(v.lanes)-1 {
		li = node + 1
	}
	return time.Duration(v.lanes[li].ns.Load())
}

var (
	_ Clock = RealClock{}
	_ Clock = (*VirtualClock)(nil)
)
