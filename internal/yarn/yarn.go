// Package yarn simulates the YARN resource negotiator the paper's IDH 3.0
// baseline integrates (MRv2): compute containers are allocated to
// applications by available node *memory*, not cores (§3.1: "Instead of
// cores, YARN schedules the tasks based on available memory on nodes").
//
// Allocate blocks until capacity is available, which is how the container
// count per node bounds task parallelism in the MapReduce baseline.
package yarn

import (
	"errors"
	"fmt"
	"sync"

	"github.com/hamr-go/hamr/internal/trace"
)

// Container is one granted resource lease.
type Container struct {
	ID       int64
	Node     int
	MemoryMB int
	// revoked marks a container reclaimed by Revoke; guarded by the
	// scheduler's mutex so a revocation racing the normal Release cannot
	// return the memory twice.
	revoked bool
}

// Scheduler tracks per-node memory and grants containers.
type Scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	totalMB  []int
	usedMB   []int
	nextID   int64
	closed   bool
	granted  int64
	waited   int64
	released int64
	revoked  int64
	tr       *trace.Tracer
}

// ErrClosed is returned by Allocate after Close.
var ErrClosed = errors.New("yarn: scheduler closed")

// NewScheduler creates a scheduler for numNodes nodes with memMB megabytes
// of schedulable memory each.
func NewScheduler(numNodes, memMB int) *Scheduler {
	s := &Scheduler{
		totalMB: make([]int, numNodes),
		usedMB:  make([]int, numNodes),
	}
	for i := range s.totalMB {
		s.totalMB[i] = memMB
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// NumNodes returns the cluster size.
func (s *Scheduler) NumNodes() int { return len(s.totalMB) }

// SetTracer installs a span recorder for container grants, revocations
// and capacity waits (nil leaves the scheduler untraced).
func (s *Scheduler) SetTracer(t *trace.Tracer) {
	if t != nil {
		s.mu.Lock()
		s.tr = t
		s.mu.Unlock()
	}
}

// Allocate grants a container of memMB on the preferred node if it has
// room, otherwise on the node with the most free memory; it blocks until
// some node can host the request. preferred < 0 means no preference.
func (s *Scheduler) Allocate(memMB, preferred int) (*Container, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fits := false
	for _, t := range s.totalMB {
		if memMB <= t {
			fits = true
			break
		}
	}
	if !fits {
		return nil, fmt.Errorf("yarn: request of %d MB exceeds every node's capacity", memMB)
	}
	waitedOnce := false
	var waitSpan trace.Span
	for {
		if s.closed {
			return nil, ErrClosed
		}
		node := -1
		if preferred >= 0 && preferred < len(s.totalMB) &&
			s.usedMB[preferred]+memMB <= s.totalMB[preferred] {
			node = preferred
		} else {
			bestFree := -1
			for i := range s.totalMB {
				free := s.totalMB[i] - s.usedMB[i]
				if free >= memMB && free > bestFree {
					bestFree = free
					node = i
				}
			}
		}
		if node >= 0 {
			s.usedMB[node] += memMB
			s.nextID++
			s.granted++
			c := &Container{ID: s.nextID, Node: node, MemoryMB: memMB}
			if s.tr.Enabled() {
				// The wait span (if any) closes at grant; allocations that
				// never waited trace only the grant instant.
				waitSpan.End()
				s.tr.Instant(node, "",
					fmt.Sprintf("yarn:grant:ct%d:n%d", c.ID, node), "grant", int64(memMB)<<20)
			}
			return c, nil
		}
		if !waitedOnce {
			waitedOnce = true
			s.waited++
			if s.tr.Enabled() {
				waitSpan = s.tr.Start(-1, "",
					fmt.Sprintf("yarn:wait:%d", s.waited), "yarn-wait", "")
			}
		}
		s.cond.Wait()
	}
}

// Release returns a container's memory to its node. Releasing a revoked
// container is a no-op (its memory already went back).
func (s *Scheduler) Release(c *Container) {
	if c == nil {
		return
	}
	s.mu.Lock()
	if !c.revoked {
		s.free(c)
		s.released++
	}
	s.mu.Unlock()
}

// Revoke forcibly reclaims a granted container — the simulated node
// manager preempting or losing a task's container mid-run. The memory
// returns to the node immediately and the task's eventual Release becomes
// a no-op; the task itself learns about the revocation from its runner and
// must re-request a container to continue.
func (s *Scheduler) Revoke(c *Container) {
	if c == nil {
		return
	}
	s.mu.Lock()
	if !c.revoked {
		c.revoked = true
		s.free(c)
		s.revoked++
		if s.tr.Enabled() {
			s.tr.Instant(c.Node, "",
				fmt.Sprintf("yarn:revoke:ct%d:n%d", c.ID, c.Node), "revoke", int64(c.MemoryMB)<<20)
		}
	}
	s.mu.Unlock()
}

// free returns a container's memory; callers hold s.mu.
func (s *Scheduler) free(c *Container) {
	s.usedMB[c.Node] -= c.MemoryMB
	if s.usedMB[c.Node] < 0 {
		s.usedMB[c.Node] = 0
	}
	s.cond.Broadcast()
}

// FreeMB returns a node's free schedulable memory.
func (s *Scheduler) FreeMB(node int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalMB[node] - s.usedMB[node]
}

// Stats reports lifetime grant counters: granted containers, allocations
// that had to wait, and releases.
func (s *Scheduler) Stats() (granted, waited, released int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.granted, s.waited, s.released
}

// Revoked reports how many containers have been forcibly reclaimed.
func (s *Scheduler) Revoked() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revoked
}

// Close fails all pending and future allocations.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
