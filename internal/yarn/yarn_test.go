package yarn

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAllocatePreferred(t *testing.T) {
	s := NewScheduler(4, 1024)
	c, err := s.Allocate(512, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Node != 2 {
		t.Fatalf("allocated on node %d, want preferred 2", c.Node)
	}
	if s.FreeMB(2) != 512 {
		t.Fatalf("FreeMB(2) = %d", s.FreeMB(2))
	}
	s.Release(c)
	if s.FreeMB(2) != 1024 {
		t.Fatalf("FreeMB(2) after release = %d", s.FreeMB(2))
	}
}

func TestAllocateSpillsToFreestNode(t *testing.T) {
	s := NewScheduler(3, 1000)
	// Fill node 0.
	if _, err := s.Allocate(1000, 0); err != nil {
		t.Fatal(err)
	}
	c, err := s.Allocate(500, 0) // preferred is full
	if err != nil {
		t.Fatal(err)
	}
	if c.Node == 0 {
		t.Fatal("allocated on a full node")
	}
}

// waitForWaiters blocks until the scheduler's waited counter reaches n,
// proving that n allocations are (or were) parked on the condition
// variable — the deterministic replacement for "sleep and hope the
// goroutine got there".
func waitForWaiters(t *testing.T, s *Scheduler, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, waited, _ := s.Stats(); waited >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("waited counter never reached %d", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestAllocateBlocksUntilRelease(t *testing.T) {
	s := NewScheduler(1, 1000)
	first, _ := s.Allocate(800, -1)
	done := make(chan *Container)
	go func() {
		c, err := s.Allocate(800, -1)
		if err != nil {
			t.Error(err)
		}
		done <- c
	}()
	waitForWaiters(t, s, 1)
	select {
	case <-done:
		t.Fatal("second allocation did not block")
	default:
	}
	s.Release(first)
	select {
	case c := <-done:
		s.Release(c)
	case <-time.After(5 * time.Second):
		t.Fatal("allocation never granted after release")
	}
	_, waited, _ := s.Stats()
	if waited == 0 {
		t.Error("Stats did not record the wait")
	}
}

func TestAllocateImpossibleRequest(t *testing.T) {
	s := NewScheduler(2, 512)
	if _, err := s.Allocate(1024, -1); err == nil {
		t.Fatal("impossible request accepted")
	}
}

func TestMemoryBoundsParallelism(t *testing.T) {
	// 2 nodes x 1024 MB, 512 MB containers -> at most 4 concurrent.
	s := NewScheduler(2, 1024)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	// The first four grantees hold their containers until all four are
	// in flight at once: full closes when cur reaches capacity, release
	// then lets every holder proceed. That forces the peak to the memory
	// bound deterministically, where the old fixed sleep only made the
	// overlap likely.
	full := make(chan struct{})
	release := make(chan struct{})
	var fullOnce sync.Once
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := s.Allocate(512, -1)
			if err != nil {
				t.Error(err)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			if n == 4 {
				fullOnce.Do(func() { close(full) })
			}
			<-release
			cur.Add(-1)
			s.Release(c)
		}()
	}
	<-full // four containers are held concurrently
	close(release)
	wg.Wait()
	if p := peak.Load(); p != 4 {
		t.Fatalf("peak concurrency %d, memory allows exactly 4", p)
	}
	granted, _, released := s.Stats()
	if granted != 16 || released != 16 {
		t.Fatalf("granted %d released %d", granted, released)
	}
}

func TestCloseFailsWaiters(t *testing.T) {
	s := NewScheduler(1, 100)
	c, _ := s.Allocate(100, -1)
	errc := make(chan error, 1)
	go func() {
		_, err := s.Allocate(100, -1)
		errc <- err
	}()
	waitForWaiters(t, s, 1)
	s.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("waiter got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released by Close")
	}
	s.Release(c) // must not panic after close
	if _, err := s.Allocate(10, -1); err != ErrClosed {
		t.Fatalf("allocate after close = %v", err)
	}
}

func TestReleaseNil(t *testing.T) {
	s := NewScheduler(1, 100)
	s.Release(nil) // no panic
}

func TestRevokeFreesMemoryAndMakesReleaseNoOp(t *testing.T) {
	s := NewScheduler(2, 100)
	c, err := s.Allocate(60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if free := s.FreeMB(c.Node); free != 40 {
		t.Fatalf("free after allocate = %d", free)
	}
	s.Revoke(c)
	if free := s.FreeMB(c.Node); free != 100 {
		t.Fatalf("free after revoke = %d", free)
	}
	if s.Revoked() != 1 {
		t.Fatalf("Revoked() = %d", s.Revoked())
	}
	// The task's eventual Release must not return the memory a second
	// time, and must not count as a normal release.
	s.Release(c)
	if free := s.FreeMB(c.Node); free != 100 {
		t.Fatalf("free after release-of-revoked = %d (double free)", free)
	}
	_, _, released := s.Stats()
	if released != 0 {
		t.Fatalf("released = %d, revoked containers are not releases", released)
	}
	// Revoking twice is idempotent.
	s.Revoke(c)
	if s.Revoked() != 1 || s.FreeMB(c.Node) != 100 {
		t.Fatal("double revoke not idempotent")
	}
	s.Revoke(nil) // no panic
}

func TestRevokeUnblocksWaiters(t *testing.T) {
	s := NewScheduler(1, 100)
	c, _ := s.Allocate(100, -1)
	got := make(chan *Container, 1)
	go func() {
		c2, err := s.Allocate(100, -1)
		if err != nil {
			t.Error(err)
		}
		got <- c2
	}()
	waitForWaiters(t, s, 1)
	s.Revoke(c)
	select {
	case c2 := <-got:
		s.Release(c2)
	case <-time.After(5 * time.Second):
		t.Fatal("revoke did not wake the waiting allocation")
	}
}
