package extsort

import (
	"errors"
	"fmt"
	"testing"

	"github.com/hamr-go/hamr/internal/storage"
)

// denyAll is a Budget with no memory at all: every reservation is
// denied, so the builder spills before every add once it holds data.
type denyAll struct{ forced, released int64 }

func (d *denyAll) Reserve(int64) bool   { return false }
func (d *denyAll) ForceReserve(n int64) { d.forced += n }
func (d *denyAll) Release(n int64)      { d.released += n }

func testBuilder(disk storage.Disk, budget Budget, threshold int64) (*RunBuilder[testRec], *int) {
	spills := new(int)
	return NewRunBuilder(BuilderConfig[testRec]{
		Cmp:       testCmp,
		Format:    testFormat{},
		Disk:      disk,
		RunName:   func(i int) string { return fmt.Sprintf("spill/run-%04d", i) },
		Budget:    budget,
		Threshold: threshold,
		OnSpill:   func(int, int64) { *spills++ },
	}), spills
}

func TestBuilderZeroBudgetSpillsEveryAdd(t *testing.T) {
	disk := storage.NewMemDisk(0)
	budget := &denyAll{}
	b, spills := testBuilder(disk, budget, 0)
	const n = 20
	for i := 0; i < n; i++ {
		if err := b.Add(testRec{key: fmt.Sprintf("k%02d", i%5), seq: int64(i)}, 10); err != nil {
			t.Fatal(err)
		}
	}
	// Each add past the first finds a non-empty buffer and spills it:
	// n-1 single-record runs, one record still buffered.
	if *spills != n-1 {
		t.Fatalf("spills = %d, want %d", *spills, n-1)
	}
	if err := b.Spill(); err != nil {
		t.Fatal(err)
	}
	if got := len(b.Runs()); got != n {
		t.Fatalf("runs = %d, want %d", got, n)
	}
	if budget.forced != n*10 {
		t.Fatalf("forced reservations = %d, want %d", budget.forced, n*10)
	}
	if budget.released != n*10 {
		t.Fatalf("released = %d, want %d (every spilled buffer returned)", budget.released, n*10)
	}
	// All records survive the round trip, in order.
	var sources []Source[testRec]
	for _, name := range b.Runs() {
		rr, err := OpenRun(disk, name, testFormat{})
		if err != nil {
			t.Fatal(err)
		}
		defer rr.Close()
		sources = append(sources, rr)
	}
	count := 0
	var prev testRec
	err := Merge(sources, testCmp, func(r testRec, _ int) error {
		if count > 0 && testCmp(prev, r) > 0 {
			t.Fatalf("out of order: %+v before %+v", prev, r)
		}
		prev = r
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("merged %d records, want %d", count, n)
	}
}

func TestBuilderNoDiskError(t *testing.T) {
	b, _ := testBuilder(nil, &denyAll{}, 0)
	if err := b.Add(testRec{key: "a"}, 1); err != nil {
		t.Fatalf("first add (empty buffer, nothing to spill) errored: %v", err)
	}
	err := b.Add(testRec{key: "b"}, 1)
	if !errors.Is(err, ErrNoDisk) {
		t.Fatalf("add with exhausted budget and no disk = %v, want ErrNoDisk", err)
	}
}

func TestBuilderThresholdIncludesCrossingRecord(t *testing.T) {
	disk := storage.NewMemDisk(0)
	b, spills := testBuilder(disk, nil, 100)
	for i := 0; i < 9; i++ {
		if err := b.Add(testRec{seq: int64(i), key: "k"}, 10); err != nil {
			t.Fatal(err)
		}
	}
	if *spills != 0 {
		t.Fatalf("spilled below threshold: %d", *spills)
	}
	if err := b.Add(testRec{seq: 9, key: "k"}, 10); err != nil {
		t.Fatal(err)
	}
	if *spills != 1 {
		t.Fatalf("spills = %d, want 1 (10th add crosses 100 bytes)", *spills)
	}
	if b.BufferedBytes() != 0 {
		t.Fatalf("buffer not reset: %d bytes", b.BufferedBytes())
	}
	rr, err := OpenRun(disk, b.Runs()[0], testFormat{})
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	n := 0
	for {
		if _, err := rr.Next(); err != nil {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("run holds %d records, want 10 (crossing record included)", n)
	}
}

func TestBuilderTransform(t *testing.T) {
	disk := storage.NewMemDisk(0)
	var preCount int
	var preBytes int64
	b := NewRunBuilder(BuilderConfig[testRec]{
		Cmp:     testCmp,
		Format:  testFormat{},
		Disk:    disk,
		RunName: func(i int) string { return fmt.Sprintf("t/run-%04d", i) },
		// Collapse each key group to one record summing seqs (a combiner).
		Transform: func(sorted []testRec) ([]testRec, error) {
			var out []testRec
			for _, r := range sorted {
				if n := len(out); n > 0 && out[n-1].key == r.key {
					out[n-1].seq += r.seq
				} else {
					out = append(out, r)
				}
			}
			return out, nil
		},
		OnSpill: func(records int, bytes int64) { preCount, preBytes = records, bytes },
	})
	for i := 0; i < 6; i++ {
		if err := b.Add(testRec{key: fmt.Sprintf("k%d", i%2), seq: int64(i)}, 7); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Spill(); err != nil {
		t.Fatal(err)
	}
	if preCount != 6 || preBytes != 42 {
		t.Fatalf("OnSpill saw (%d, %d), want pre-transform (6, 42)", preCount, preBytes)
	}
	rr, err := OpenRun(disk, b.Runs()[0], testFormat{})
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	var recs []testRec
	for {
		r, err := rr.Next()
		if err != nil {
			break
		}
		recs = append(recs, r)
	}
	// k0 sums 0+2+4=6, k1 sums 1+3+5=9.
	if len(recs) != 2 || recs[0].seq != 6 || recs[1].seq != 9 {
		t.Fatalf("transformed run = %+v", recs)
	}
}

func TestBuilderDrainResetsButKeepsRunNumbering(t *testing.T) {
	disk := storage.NewMemDisk(0)
	b, _ := testBuilder(disk, nil, 15)
	for i := 0; i < 4; i++ { // 40 bytes: spills at 20 and 40
		if err := b.Add(testRec{key: fmt.Sprintf("k%d", i)}, 10); err != nil {
			t.Fatal(err)
		}
	}
	buf, bytes, runs := b.Drain()
	if len(buf) != 0 || bytes != 0 || len(runs) != 2 {
		t.Fatalf("Drain = (%d recs, %d bytes, %d runs)", len(buf), bytes, len(runs))
	}
	if b.Count() != 4 {
		t.Fatalf("Count reset by Drain: %d", b.Count())
	}
	// New spills continue the numbering instead of overwriting old runs.
	for i := 0; i < 2; i++ {
		if err := b.Add(testRec{key: "x"}, 10); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Runs(); len(got) != 1 || got[0] != "spill/run-0002" {
		t.Fatalf("post-drain runs = %v, want [spill/run-0002]", got)
	}
}

func TestMergeToFactorPassesAndCleanup(t *testing.T) {
	disk := storage.NewMemDisk(0)
	base := disk.Used()
	b, _ := testBuilder(disk, nil, 30)
	total := 0
	for i := 0; i < 70; i++ {
		if err := b.Add(testRec{key: fmt.Sprintf("k%02d", (i*7)%19), seq: int64(i)}, 10); err != nil {
			t.Fatal(err)
		}
		total++
	}
	if err := b.Spill(); err != nil {
		t.Fatal(err)
	}
	runs := b.Runs()
	if len(runs) != 24 { // 70 adds / 3-record spills, plus the final 1-record spill
		t.Fatalf("%d initial runs", len(runs))
	}
	passes := 0
	merged, err := MergeToFactor(disk, testFormat{}, testCmp, runs, 4,
		func(pass int) string { return fmt.Sprintf("interm-%04d", pass) },
		func() { passes++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) > 4 {
		t.Fatalf("%d runs remain, factor 4", len(merged))
	}
	// 24 runs at factor 4: each pass replaces 4 runs with 1 (net -3):
	// 24→21→18→15→12→9→6→3, seven passes.
	if passes != 7 {
		t.Fatalf("passes = %d, want 7", passes)
	}
	// Consumed inputs are removed: only the remaining runs occupy disk.
	var remaining int64
	for _, name := range merged {
		sz, err := disk.Size(name)
		if err != nil {
			t.Fatalf("remaining run %s: %v", name, err)
		}
		remaining += sz
	}
	if used := disk.Used(); used != base+remaining {
		t.Fatalf("disk.Used = %d, want %d (leaked intermediate runs)", used, base+remaining)
	}
	// All records survive, in order.
	var sources []Source[testRec]
	for _, name := range merged {
		rr, err := OpenRun(disk, name, testFormat{})
		if err != nil {
			t.Fatal(err)
		}
		defer rr.Close()
		sources = append(sources, rr)
	}
	count := 0
	var prev testRec
	err = Merge(sources, testCmp, func(r testRec, _ int) error {
		if count > 0 && testCmp(prev, r) > 0 {
			t.Fatalf("out of order after multi-pass merge")
		}
		prev = r
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != total {
		t.Fatalf("merged %d records, want %d", count, total)
	}
	// After the caller removes the final runs, disk returns to baseline.
	for _, name := range merged {
		if err := disk.Remove(name); err != nil {
			t.Fatal(err)
		}
	}
	if used := disk.Used(); used != base {
		t.Fatalf("disk.Used = %d after cleanup, want %d", used, base)
	}
}

func TestMergeToFactorNoOpWithinFactor(t *testing.T) {
	disk := storage.NewMemDisk(0)
	b, _ := testBuilder(disk, nil, 20)
	for i := 0; i < 6; i++ {
		if err := b.Add(testRec{key: fmt.Sprintf("k%d", i)}, 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Spill(); err != nil {
		t.Fatal(err)
	}
	runs := b.Runs()
	got, err := MergeToFactor(disk, testFormat{}, testCmp, runs, 10,
		func(int) string { return "interm" }, func() { t.Fatal("pass run under factor") })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(runs) {
		t.Fatalf("run list changed: %v", got)
	}
}

func TestSpillEmptyBufferIsNoOp(t *testing.T) {
	b, spills := testBuilder(storage.NewMemDisk(0), nil, 10)
	if err := b.Spill(); err != nil {
		t.Fatal(err)
	}
	if *spills != 0 || len(b.Runs()) != 0 {
		t.Fatal("empty spill produced a run")
	}
}
