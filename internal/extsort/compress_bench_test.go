package extsort

import (
	"fmt"
	"io"
	"testing"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/storage"
)

// The spill benchmarks measure the write-read cycle of one run file on
// the two byte shapes the paper's workloads spill: Zipfian text words
// (WordCount/NaiveBayes intermediates, highly repetitive) and
// TeraSort-style rows (hex keys plus fixed-width payloads, moderately
// compressible). See EXPERIMENTS.md "Compression microbenchmarks".

// zipfSpillRecs draws keys from the HiBench-style Zipfian vocabulary, the
// key distribution a WordCount map task spills.
func zipfSpillRecs(n int) []testRec {
	text := datagen.Text(datagen.TextConfig{Seed: 7, Vocabulary: 1000, WordsPerLine: 1, Lines: n})
	recs := make([]testRec, 0, n)
	var word []byte
	for _, b := range text {
		if b == '\n' {
			recs = append(recs, testRec{key: string(word), seq: int64(len(recs))})
			word = word[:0]
			continue
		}
		word = append(word, b)
	}
	SortStable(recs, testCmp)
	return recs
}

// teraSpillRecs builds TeraSort-style rows: a 10-hex-digit pseudo-random
// key per record (the same generator shape as cmd/sortprobe's teraLines).
func teraSpillRecs(n int) []testRec {
	recs := make([]testRec, n)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range recs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		recs[i] = testRec{key: fmt.Sprintf("%010x-payload", state&0xFFFFFFFFFF), seq: int64(i)}
	}
	SortStable(recs, testCmp)
	return recs
}

func benchSpill(b *testing.B, recs []testRec, cc compress.Config) {
	disk := storage.NewMemDisk(0)
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteRunC(disk, "bench-run", testFormat{}, recs, cc); err != nil {
			b.Fatal(err)
		}
		rr, err := OpenRunC(disk, "bench-run", testFormat{}, cc)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := rr.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		rr.Close()
		if n != len(recs) {
			b.Fatalf("read %d records, wrote %d", n, len(recs))
		}
		bytes, _ = disk.Size("bench-run")
	}
	b.ReportMetric(float64(bytes), "disk-bytes/run")
}

func BenchmarkSpillUncompressed(b *testing.B) {
	b.Run("zipf", func(b *testing.B) { benchSpill(b, zipfSpillRecs(20000), compress.Config{}) })
	b.Run("tera", func(b *testing.B) { benchSpill(b, teraSpillRecs(20000), compress.Config{}) })
}

func BenchmarkSpillCompressed(b *testing.B) {
	lz := compress.Config{Codec: compress.LZ{}}
	flate := compress.Config{Codec: compress.Flate{}}
	b.Run("zipf-lz", func(b *testing.B) { benchSpill(b, zipfSpillRecs(20000), lz) })
	b.Run("tera-lz", func(b *testing.B) { benchSpill(b, teraSpillRecs(20000), lz) })
	b.Run("zipf-flate", func(b *testing.B) { benchSpill(b, zipfSpillRecs(20000), flate) })
	b.Run("tera-flate", func(b *testing.B) { benchSpill(b, teraSpillRecs(20000), flate) })
}
