package extsort

import (
	"fmt"
	"io"
	"testing"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/storage"
)

// compressedSpillRecs builds repetitive word-shaped records — the byte
// shape spills actually have — so the LZ codec has something to find.
func compressedSpillRecs(n int) []testRec {
	words := []string{"hadoop", "shuffle", "dataflow", "spill", "merge", "combine"}
	recs := make([]testRec, n)
	for i := range recs {
		recs[i] = testRec{key: fmt.Sprintf("%s-%03d", words[i%len(words)], i%40), seq: int64(i)}
	}
	return recs
}

// TestCompressedRunRoundTrip: a run written with an enabled Config reads
// back record-identical through OpenRunC, and occupies fewer disk bytes
// than its uncompressed twin.
func TestCompressedRunRoundTrip(t *testing.T) {
	disk := storage.NewMemDisk(0)
	recs := compressedSpillRecs(4000)
	SortStable(recs, testCmp)

	cc := compress.Config{Codec: compress.LZ{}}
	if err := WriteRunC(disk, "plain", testFormat{}, recs, compress.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteRunC(disk, "lz", testFormat{}, recs, cc); err != nil {
		t.Fatal(err)
	}
	plainSize, _ := disk.Size("plain")
	lzSize, _ := disk.Size("lz")
	if lzSize >= plainSize {
		t.Fatalf("compressed run not smaller: %d vs %d", lzSize, plainSize)
	}
	t.Logf("run size %d -> %d (%.2fx)", plainSize, lzSize, float64(plainSize)/float64(lzSize))

	rr, err := OpenRunC(disk, "lz", testFormat{}, cc)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	for i := range recs {
		got, err := rr.Next()
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		if got != recs[i] {
			t.Fatalf("rec %d: got %+v want %+v", i, got, recs[i])
		}
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestCompressedBuilderAndMerge: spills from a builder with Compress set
// merge through MergeToFactorC into the same sequence an uncompressed
// pipeline produces, and OnSpill still reports pre-compression bytes.
func TestCompressedBuilderAndMerge(t *testing.T) {
	run := func(cc compress.Config) (recs []testRec, spillBytes int64, diskBytes int64) {
		disk := storage.NewMemDisk(0)
		b := NewRunBuilder(BuilderConfig[testRec]{
			Cmp:       testCmp,
			Format:    testFormat{},
			Disk:      disk,
			RunName:   func(i int) string { return fmt.Sprintf("run-%d", i) },
			Threshold: 4 << 10,
			OnSpill:   func(_ int, bytes int64) { spillBytes += bytes },
			Compress:  cc,
		})
		for _, r := range compressedSpillRecs(6000) {
			if err := b.Add(r, int64(len(r.key)+8)); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Spill(); err != nil {
			t.Fatal(err)
		}
		runs, err := MergeToFactorC(disk, testFormat{}, testCmp, b.Runs(), 3,
			func(pass int) string { return fmt.Sprintf("interm-%d", pass) }, nil, cc)
		if err != nil {
			t.Fatal(err)
		}
		sources := make([]Source[testRec], 0, len(runs))
		for _, name := range runs {
			rr, err := OpenRunC(disk, name, testFormat{}, cc)
			if err != nil {
				t.Fatal(err)
			}
			defer rr.Close()
			sources = append(sources, rr)
		}
		if err := Merge(sources, testCmp, func(r testRec, _ int) error {
			recs = append(recs, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return recs, spillBytes, disk.Used()
	}

	plain, plainSpill, plainDisk := run(compress.Config{})
	lz, lzSpill, lzDisk := run(compress.Config{Codec: compress.LZ{}})
	if len(plain) != len(lz) {
		t.Fatalf("record counts differ: %d vs %d", len(plain), len(lz))
	}
	for i := range plain {
		if plain[i] != lz[i] {
			t.Fatalf("rec %d differs: %+v vs %+v", i, plain[i], lz[i])
		}
	}
	if plainSpill != lzSpill {
		t.Fatalf("OnSpill bytes changed under compression: %d vs %d", plainSpill, lzSpill)
	}
	if lzDisk >= plainDisk {
		t.Fatalf("compressed pipeline used more disk: %d vs %d", lzDisk, plainDisk)
	}
	t.Logf("disk used %d -> %d (%.2fx), spill-accounted bytes %d (both)",
		plainDisk, lzDisk, float64(plainDisk)/float64(lzDisk), plainSpill)
}
