package extsort

import (
	"io"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/storage"
)

// loserTree selects the minimum head across k sources in O(log k)
// comparisons per record — replacing the O(k) linear scans and the
// container/heap merges the engines used before. Ties are broken by
// source index (lower wins), so records from earlier runs drain first
// and the merge is stable with respect to run order.
type loserTree[T any] struct {
	cmp  Compare[T]
	srcs []Source[T]
	cur  []T
	done []bool
	// node[1..k-1] hold the loser of the match played at each internal
	// node; node[0] holds the overall winner. Leaves are implicit at
	// indices k..2k-1 (leaf k+i is source i).
	node []int
	k    int
}

func newLoserTree[T any](sources []Source[T], cmp Compare[T]) (*loserTree[T], error) {
	k := len(sources)
	t := &loserTree[T]{
		cmp:  cmp,
		srcs: sources,
		cur:  make([]T, k),
		done: make([]bool, k),
		node: make([]int, k),
		k:    k,
	}
	for i, s := range sources {
		rec, err := s.Next()
		if err == io.EOF {
			t.done[i] = true
			continue
		}
		if err != nil {
			return nil, err
		}
		t.cur[i] = rec
	}
	// Play the tournament bottom-up: win[x] is the winner of the
	// subtree rooted at x; each internal node stores its loser.
	win := make([]int, 2*k)
	for i := 0; i < k; i++ {
		win[k+i] = i
	}
	for x := k - 1; x >= 1; x-- {
		a, b := win[2*x], win[2*x+1]
		if t.beats(b, a) {
			win[x], t.node[x] = b, a
		} else {
			win[x], t.node[x] = a, b
		}
	}
	t.node[0] = win[1]
	return t, nil
}

// beats reports whether source a's head orders strictly before source
// b's. Exhausted sources lose to everything.
func (t *loserTree[T]) beats(a, b int) bool {
	if t.done[a] {
		return false
	}
	if t.done[b] {
		return true
	}
	c := t.cmp(t.cur[a], t.cur[b])
	return c < 0 || (c == 0 && a < b)
}

// pop returns the winning source index, or -1 when all are exhausted.
// The caller consumes cur[w], advances source w, and calls fix(w).
func (t *loserTree[T]) pop() int {
	w := t.node[0]
	if t.done[w] {
		return -1
	}
	return w
}

// advance refills source w's head and replays its leaf-to-root path.
func (t *loserTree[T]) advance(w int) error {
	rec, err := t.srcs[w].Next()
	if err == io.EOF {
		t.done[w] = true
		var zero T
		t.cur[w] = zero
	} else if err != nil {
		return err
	} else {
		t.cur[w] = rec
	}
	for x := (t.k + w) / 2; x >= 1; x /= 2 {
		if t.beats(t.node[x], w) {
			t.node[x], w = w, t.node[x]
		}
	}
	t.node[0] = w
	return nil
}

// Merge streams records from the sorted sources in cmp order, calling
// emit with each record and the index of the source it came from. Ties
// break toward the lower source index. A single source streams straight
// through without building a tree.
func Merge[T any](sources []Source[T], cmp Compare[T], emit func(rec T, src int) error) error {
	switch len(sources) {
	case 0:
		return nil
	case 1:
		// Single-run fast path: no comparisons needed at all.
		for {
			rec, err := sources[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := emit(rec, 0); err != nil {
				return err
			}
		}
	}
	t, err := newLoserTree(sources, cmp)
	if err != nil {
		return err
	}
	for {
		w := t.pop()
		if w < 0 {
			return nil
		}
		if err := emit(t.cur[w], w); err != nil {
			return err
		}
		if err := t.advance(w); err != nil {
			return err
		}
	}
}

// MergeGrouped merges the sources and calls fn once per group of
// consecutive records for which sameGroup reports true against the
// group's first record (nil means cmp == 0). The group slice is reused
// between calls; fn must copy anything it retains.
func MergeGrouped[T any](sources []Source[T], cmp Compare[T], sameGroup func(a, b T) bool, fn func(group []T) error) error {
	if sameGroup == nil {
		sameGroup = func(a, b T) bool { return cmp(a, b) == 0 }
	}
	var group []T
	err := Merge(sources, cmp, func(rec T, _ int) error {
		if len(group) > 0 && !sameGroup(group[0], rec) {
			if err := fn(group); err != nil {
				return err
			}
			clear(group)
			group = group[:0]
		}
		group = append(group, rec)
		return nil
	})
	if err != nil {
		return err
	}
	if len(group) > 0 {
		return fn(group)
	}
	return nil
}

// MergeToFactor reduces a run list to at most factor runs by repeatedly
// merging the first factor runs into one intermediate run — Hadoop's
// io.sort.factor semantics, where every extra pass rereads and rewrites
// the intermediate data on disk. intermName names the pass-i
// intermediate run; onPass (may be nil) is invoked once per completed
// pass, which is where callers count merge passes. Input runs consumed
// by a pass are removed from disk; the returned list replaces them with
// the intermediates.
func MergeToFactor[T any](disk storage.Disk, f Format[T], cmp Compare[T], runs []string,
	factor int, intermName func(pass int) string, onPass func()) ([]string, error) {
	return MergeToFactorC(disk, f, cmp, runs, factor, intermName, onPass, compress.Config{})
}

// MergeToFactorC is MergeToFactor over compressed runs: input runs are
// opened and intermediates written with cc (zero Config = MergeToFactor).
// All runs in the list must share one enabled/disabled state.
func MergeToFactorC[T any](disk storage.Disk, f Format[T], cmp Compare[T], runs []string,
	factor int, intermName func(pass int) string, onPass func(), cc compress.Config) ([]string, error) {

	pass := 0
	for factor > 1 && len(runs) > factor {
		batch, rest := runs[:factor], runs[factor:]
		sources := make([]Source[T], 0, len(batch))
		readers := make([]*RunReader[T], 0, len(batch))
		closeAll := func() {
			for _, r := range readers {
				r.Close()
			}
		}
		for _, name := range batch {
			rr, err := OpenRunC(disk, name, f, cc)
			if err != nil {
				closeAll()
				return nil, err
			}
			readers = append(readers, rr)
			sources = append(sources, rr)
		}
		name := intermName(pass)
		pass++
		w, err := NewRunWriterC(disk, name, f, cc)
		if err != nil {
			closeAll()
			return nil, err
		}
		err = Merge(sources, cmp, func(rec T, _ int) error { return w.Write(rec) })
		closeAll()
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		for _, s := range batch {
			_ = disk.Remove(s)
		}
		runs = append([]string{name}, rest...)
		if onPass != nil {
			onPass()
		}
	}
	return runs, nil
}
