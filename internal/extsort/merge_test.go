package extsort

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/hamr-go/hamr/internal/storage"
)

// testRec is the record type the package tests merge: a key plus a
// sequence number that makes stability violations visible.
type testRec struct {
	key string
	seq int64
}

func testCmp(a, b testRec) int { return strings.Compare(a.key, b.key) }

// testFormat stores testRec as raw key bytes and a decimal seq value.
type testFormat struct{}

func (testFormat) AppendRecord(kbuf, vbuf []byte, r testRec) ([]byte, []byte, error) {
	kbuf = append(kbuf, r.key...)
	vbuf = fmt.Appendf(vbuf, "%d", r.seq)
	return kbuf, vbuf, nil
}

func (testFormat) DecodeRecord(key, value []byte) (testRec, error) {
	var seq int64
	if _, err := fmt.Sscanf(string(value), "%d", &seq); err != nil {
		return testRec{}, err
	}
	return testRec{key: string(key), seq: seq}, nil
}

// buildRuns deals raw bytes into numRuns sorted runs, deterministically.
func buildRuns(raw []byte, numRuns, vocab int) [][]testRec {
	runs := make([][]testRec, numRuns)
	for i, b := range raw {
		r := testRec{key: fmt.Sprintf("k%03d", int(b)%vocab), seq: int64(i)}
		runs[i%numRuns] = append(runs[i%numRuns], r)
	}
	for i := range runs {
		SortStable(runs[i], testCmp)
	}
	return runs
}

// referenceMerge is the specification the loser tree must match: the
// concatenation of all runs (in run order), stably sorted by (key, run
// index). Within one key, records from earlier runs come first, and
// within one run their original order is preserved.
func referenceMerge(runs [][]testRec) []testRec {
	type tagged struct {
		rec testRec
		src int
	}
	var all []tagged
	for s, run := range runs {
		for _, r := range run {
			all = append(all, tagged{r, s})
		}
	}
	SortStable(all, func(a, b tagged) int {
		if c := strings.Compare(a.rec.key, b.rec.key); c != 0 {
			return c
		}
		return a.src - b.src
	})
	out := make([]testRec, len(all))
	for i, t := range all {
		out[i] = t.rec
	}
	return out
}

// mergeAll collects the loser-tree merge of the given sources.
func mergeAll(t *testing.T, sources []Source[testRec]) []testRec {
	t.Helper()
	var got []testRec
	if err := Merge(sources, testCmp, func(r testRec, _ int) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestMergeMatchesReference(t *testing.T) {
	raw := make([]byte, 500)
	for i := range raw {
		raw[i] = byte((i*37 + 11) % 251)
	}
	for _, k := range []int{1, 2, 3, 5, 8, 13} {
		runs := buildRuns(raw, k, 17)
		want := referenceMerge(runs)
		sources := make([]Source[testRec], k)
		for i := range runs {
			sources[i] = SliceSource(runs[i])
		}
		got := mergeAll(t, sources)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d records, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: record %d = %+v, want %+v", k, i, got[i], want[i])
			}
		}
	}
}

func TestMergeMixedFileAndSliceSources(t *testing.T) {
	disk := storage.NewMemDisk(0)
	raw := make([]byte, 300)
	for i := range raw {
		raw[i] = byte((i*53 + 7) % 240)
	}
	runs := buildRuns(raw, 4, 11)
	want := referenceMerge(runs)
	sources := make([]Source[testRec], len(runs))
	for i, run := range runs {
		if i%2 == 0 {
			name := fmt.Sprintf("run-%d", i)
			if err := WriteRun(disk, name, testFormat{}, run); err != nil {
				t.Fatal(err)
			}
			rr, err := OpenRun(disk, name, testFormat{})
			if err != nil {
				t.Fatal(err)
			}
			defer rr.Close()
			sources[i] = rr
		} else {
			sources[i] = SliceSource(run)
		}
	}
	got := mergeAll(t, sources)
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeGroupedBoundaries(t *testing.T) {
	runs := [][]testRec{
		{{key: "a", seq: 0}, {key: "c", seq: 1}},
		{{key: "a", seq: 2}, {key: "b", seq: 3}},
		{{key: "a", seq: 4}},
	}
	sources := make([]Source[testRec], len(runs))
	for i := range runs {
		sources[i] = SliceSource(runs[i])
	}
	var groups [][]testRec
	err := MergeGrouped(sources, testCmp, nil, func(g []testRec) error {
		groups = append(groups, append([]testRec(nil), g...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("%d groups, want 3: %v", len(groups), groups)
	}
	wantSeqs := [][]int64{{0, 2, 4}, {3}, {1}}
	wantKeys := []string{"a", "b", "c"}
	for i, g := range groups {
		if g[0].key != wantKeys[i] {
			t.Errorf("group %d key %q, want %q", i, g[0].key, wantKeys[i])
		}
		for j, r := range g {
			if r.key != wantKeys[i] {
				t.Errorf("group %d mixes keys: %+v", i, g)
			}
			if r.seq != wantSeqs[i][j] {
				t.Errorf("group %d seqs %v, want %v (run-order stability)", i, g, wantSeqs[i])
			}
		}
	}
}

func TestMergeNoSources(t *testing.T) {
	if got := mergeAll(t, nil); len(got) != 0 {
		t.Fatalf("merge of nothing produced %v", got)
	}
	err := MergeGrouped(nil, testCmp, nil, func([]testRec) error {
		t.Fatal("group callback invoked with no sources")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmptySourcesAmongFull(t *testing.T) {
	sources := []Source[testRec]{
		SliceSource[testRec](nil),
		SliceSource([]testRec{{key: "b", seq: 1}}),
		SliceSource[testRec](nil),
		SliceSource([]testRec{{key: "a", seq: 2}}),
	}
	got := mergeAll(t, sources)
	if len(got) != 2 || got[0].key != "a" || got[1].key != "b" {
		t.Fatalf("merge = %v", got)
	}
}

// FuzzMerge checks the loser tree against the naive reference merge:
// global ordering, group-boundary correctness, and tie-break stability
// for arbitrary inputs dealt into an arbitrary number of runs.
func FuzzMerge(f *testing.F) {
	f.Add([]byte("hello world fuzzing the loser tree"), uint8(3))
	f.Add([]byte{0, 0, 0, 1, 1, 2, 255, 254, 9}, uint8(1))
	f.Add([]byte{5, 5, 5, 5, 5, 5, 5, 5}, uint8(7))
	f.Add([]byte{}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, runsRaw uint8) {
		numRuns := int(runsRaw)%9 + 1
		runs := buildRuns(raw, numRuns, 13)
		want := referenceMerge(runs)

		sources := make([]Source[testRec], numRuns)
		for i := range runs {
			sources[i] = SliceSource(runs[i])
		}
		var got []testRec
		var lastSrc = -1
		err := Merge(sources, testCmp, func(r testRec, src int) error {
			if len(got) > 0 {
				prev := got[len(got)-1]
				if c := testCmp(prev, r); c > 0 {
					t.Fatalf("out of order: %+v before %+v", prev, r)
				} else if c == 0 && src < lastSrc {
					t.Fatalf("tie-break instability: src %d after src %d for key %q", src, lastSrc, r.key)
				}
			}
			got = append(got, r)
			lastSrc = src
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
			}
		}

		// Group boundaries: every group uniform, strictly ascending keys,
		// concatenation identical to the flat merge.
		sources = make([]Source[testRec], numRuns)
		for i := range runs {
			sources[i] = SliceSource(runs[i])
		}
		var flat []testRec
		prevKey := ""
		first := true
		err = MergeGrouped(sources, testCmp, nil, func(g []testRec) error {
			if len(g) == 0 {
				t.Fatal("empty group")
			}
			for _, r := range g {
				if r.key != g[0].key {
					t.Fatalf("mixed group: %v", g)
				}
			}
			if !first && g[0].key <= prevKey {
				t.Fatalf("group key %q after %q", g[0].key, prevKey)
			}
			first, prevKey = false, g[0].key
			flat = append(flat, g...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(flat) != len(want) {
			t.Fatalf("grouped merge lost records: %d vs %d", len(flat), len(want))
		}
		for i := range want {
			if flat[i] != want[i] {
				t.Fatalf("grouped record %d = %+v, want %+v", i, flat[i], want[i])
			}
		}
	})
}

func TestRunReaderPropagatesCorruption(t *testing.T) {
	disk := storage.NewMemDisk(0)
	f, err := disk.Create("bad")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF}); err != nil { // truncated uvarint
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err := OpenRun(disk, "bad", testFormat{})
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if _, err := rr.Next(); err == nil || err == io.EOF {
		t.Fatalf("corrupt run read error = %v", err)
	}
}
