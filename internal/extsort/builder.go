package extsort

import (
	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/storage"
)

// BuilderConfig configures a RunBuilder. Cmp, Format, and RunName are
// required when the builder can spill; Disk may be nil for callers that
// only ever sort in memory (spilling then fails with ErrNoDisk).
type BuilderConfig[T any] struct {
	Cmp    Compare[T]
	Format Format[T]
	Disk   storage.Disk
	// RunName names the i-th spilled run (i counts from 0).
	RunName func(i int) string
	// Threshold, when > 0, spills after an Add brings buffered bytes to
	// Threshold or beyond — Hadoop's io.sort.mb semantics, where the
	// record that crossed the line is included in the spill.
	Threshold int64
	// Budget, when non-nil, is consulted before each Add; a denied
	// reservation spills the current buffer first and then forces the
	// reservation — the HAMR reduce-flowlet semantics (§2), where the
	// incoming record is NOT part of the spill. Bytes reserved for
	// buffered records are released on each spill; the caller releases
	// the final buffer's bytes when it is done iterating.
	Budget Budget
	// Transform, when non-nil, maps the sorted buffer to the records
	// actually written (the map-side combiner). Byte accounting (OnSpill,
	// Budget release) always uses the pre-transform buffer.
	Transform func(sorted []T) ([]T, error)
	// OnSpill observes each spill: the pre-transform record count and
	// byte total of the buffer just written. Callers attach their
	// spill counters and heap-accounting resets here. OnSpill always
	// reports pre-compression (accounted) bytes — Compress only changes
	// what hits the disk, never the spill accounting or Budget release.
	OnSpill func(records int, bytes int64)
	// Compress, when enabled, block-compresses each spilled run file.
	// Anyone merging this builder's runs must open them with OpenRunC and
	// the same enabled state.
	Compress compress.Config
}

// RunBuilder accumulates records in memory and spills them as sorted
// run files when its spill policy (byte threshold or memory budget)
// triggers. It is not safe for concurrent use; callers that share one
// builder across goroutines must serialize access.
type RunBuilder[T any] struct {
	cfg     BuilderConfig[T]
	buf     []T
	bytes   int64
	count   int64
	runs    []string
	nextRun int
}

// NewRunBuilder returns an empty builder.
func NewRunBuilder[T any](cfg BuilderConfig[T]) *RunBuilder[T] {
	return &RunBuilder[T]{cfg: cfg}
}

// Add ingests one record of the given accounted size, spilling first
// (Budget) or after (Threshold) according to the configured policy.
func (b *RunBuilder[T]) Add(rec T, size int64) error {
	if b.cfg.Budget != nil && !b.cfg.Budget.Reserve(size) {
		if len(b.buf) > 0 {
			if err := b.Spill(); err != nil {
				return err
			}
		}
		// After spilling (or when nothing could be spilled) the record
		// must be admitted regardless, or the job cannot progress.
		b.cfg.Budget.ForceReserve(size)
	}
	b.buf = append(b.buf, rec)
	b.bytes += size
	b.count++
	if b.cfg.Threshold > 0 && b.bytes >= b.cfg.Threshold {
		return b.Spill()
	}
	return nil
}

// Spill stably sorts the buffered records, applies the transform, and
// writes them as the next run file. An empty buffer is a no-op.
func (b *RunBuilder[T]) Spill() error {
	if len(b.buf) == 0 {
		return nil
	}
	if b.cfg.Disk == nil {
		return ErrNoDisk
	}
	SortStable(b.buf, b.cfg.Cmp)
	out := b.buf
	if b.cfg.Transform != nil {
		var err error
		if out, err = b.cfg.Transform(b.buf); err != nil {
			return err
		}
	}
	name := b.cfg.RunName(b.nextRun)
	if err := WriteRunC(b.cfg.Disk, name, b.cfg.Format, out, b.cfg.Compress); err != nil {
		return err
	}
	b.nextRun++
	b.runs = append(b.runs, name)
	if b.cfg.OnSpill != nil {
		b.cfg.OnSpill(len(b.buf), b.bytes)
	}
	if b.cfg.Budget != nil {
		b.cfg.Budget.Release(b.bytes)
	}
	clear(b.buf) // drop value references so spilled data is collectable
	b.buf = b.buf[:0]
	b.bytes = 0
	return nil
}

// Count returns the total records ingested since the builder was
// created (spilled and buffered).
func (b *RunBuilder[T]) Count() int64 { return b.count }

// BufferedBytes returns the accounted size of the in-memory buffer.
func (b *RunBuilder[T]) BufferedBytes() int64 { return b.bytes }

// Runs returns the names of the spilled run files, in spill order. The
// returned slice is owned by the builder.
func (b *RunBuilder[T]) Runs() []string { return b.runs }

// Drain detaches and returns the builder's state — the unsorted
// in-memory buffer, its accounted bytes, and the spilled run names —
// leaving the builder empty for further Adds. The caller owns the
// returned runs (including their eventual removal) and is responsible
// for releasing bytes to the Budget once done with the buffer.
func (b *RunBuilder[T]) Drain() (buf []T, bytes int64, runs []string) {
	buf, bytes, runs = b.buf, b.bytes, b.runs
	b.buf, b.bytes, b.runs = nil, 0, nil
	return buf, bytes, runs
}
