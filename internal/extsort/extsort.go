// Package extsort is the single external-sort substrate shared by both
// engines and the SQL layer: a budget-aware run builder that sorts
// in-memory buffers and spills them to a node-local disk as ordered run
// files, a loser-tree k-way merge that streams runs (on disk or in
// memory) back in global order, and a multi-pass merge honoring a merge
// factor (Hadoop's io.sort.factor).
//
// The substrate deliberately owns no cost model of its own: every byte
// it moves goes through the storage.Disk handed to it, so modeled disk
// charges (seek latency, throughput, capacity) attach exactly where
// they did when each engine carried its own spill code. Metrics are
// reported through explicit hooks (BuilderConfig.OnSpill, the onPass
// callback of MergeToFactor) so each caller keeps its own counter names
// and byte-accounting conventions — spill totals and merge pass counts
// are bit-identical to the pre-extsort implementations.
//
// Clients differ only in their record type, ordering and byte format:
//
//   - core's reduce accumulator: records are (key, value) pairs ordered
//     by key, spilling when the node MemoryManager denies a reservation;
//   - mapreduce's map task: records are (partition, key, value) ordered
//     by (partition, key), spilling past io.sort.mb, combined at spill
//     and merge time, multi-pass merged under io.sort.factor;
//   - sqlq's ORDER BY: in-memory SortStable with a row comparator.
package extsort

import (
	"errors"
	"io"
	"slices"
)

// Compare is a three-way comparator: negative when a orders before b,
// zero when equal, positive when after.
type Compare[T any] func(a, b T) int

// SortStable stably sorts s by cmp. Records that compare equal keep
// their arrival order, which is what makes run files preserve
// within-key ordering.
func SortStable[T any](s []T, cmp Compare[T]) { slices.SortStableFunc(s, cmp) }

// Source yields records in nondecreasing order; Next returns io.EOF
// when exhausted. Run files (RunReader) and sorted in-memory slices
// (SliceSource) are both sources, so one merge serves spilled and
// resident data alike.
type Source[T any] interface {
	Next() (T, error)
}

type sliceSource[T any] struct {
	recs []T
	i    int
}

func (s *sliceSource[T]) Next() (T, error) {
	if s.i >= len(s.recs) {
		var zero T
		return zero, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// SliceSource adapts an already-sorted slice to a merge Source.
func SliceSource[T any](recs []T) Source[T] { return &sliceSource[T]{recs: recs} }

// Budget is the memory-budget protocol consulted by a RunBuilder before
// admitting a record (core.MemoryManager implements it). A denied
// Reserve makes the builder spill its buffer first and then force the
// reservation — a single record larger than the whole budget must still
// be admitted or the job cannot progress.
type Budget interface {
	Reserve(n int64) bool
	ForceReserve(n int64)
	Release(n int64)
}

// ErrNoDisk is returned when a spill is required but the builder has no
// disk to spill to.
var ErrNoDisk = errors.New("extsort: memory exhausted and no spill disk configured")
