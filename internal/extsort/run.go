package extsort

import (
	"fmt"
	"io"
	"sync"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/storage"
)

// Format converts typed records to and from the raw key/value byte
// pairs stored in length-prefixed run files. Encoders append into
// caller-provided scratch (reused across records by RunWriter — the
// pooled codec session); decoders receive slices they must not retain.
type Format[T any] interface {
	// AppendRecord appends rec's key and value encodings to kbuf and
	// vbuf (either may be nil) and returns the extended slices.
	AppendRecord(kbuf, vbuf []byte, rec T) ([]byte, []byte, error)
	// DecodeRecord reconstructs a record from raw key/value bytes.
	DecodeRecord(key, value []byte) (T, error)
}

// scratch holds the reusable encode buffers of one writer session.
type scratch struct{ k, v []byte }

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// RunWriter writes one sorted run file. The caller is responsible for
// feeding records in run order; the writer only encodes and frames.
type RunWriter[T any] struct {
	w  *storage.RecordWriter
	f  Format[T]
	sc *scratch
}

// NewRunWriter creates the named run file on disk, uncompressed.
func NewRunWriter[T any](disk storage.Disk, name string, f Format[T]) (*RunWriter[T], error) {
	return NewRunWriterC(disk, name, f, compress.Config{})
}

// NewRunWriterC creates the named run file with optional compression:
// when cc has a codec, record framing is layered over a block-compressing
// writer (RecordWriter → compress.Writer → file) so runs hit the
// cost-modeled disk as compressed frames. The zero Config is byte-for-
// byte NewRunWriter. A run written with compression must be opened with
// OpenRunC and a matching enabled config.
func NewRunWriterC[T any](disk storage.Disk, name string, f Format[T], cc compress.Config) (*RunWriter[T], error) {
	file, err := disk.Create(name)
	if err != nil {
		return nil, fmt.Errorf("extsort: create run: %w", err)
	}
	var w io.Writer = file
	if cc.Enabled() {
		w = compress.NewWriter(file, cc, 0)
	}
	return &RunWriter[T]{
		w:  storage.NewRecordWriter(w),
		f:  f,
		sc: scratchPool.Get().(*scratch),
	}, nil
}

// Write appends one record.
func (w *RunWriter[T]) Write(rec T) error {
	k, v, err := w.f.AppendRecord(w.sc.k[:0], w.sc.v[:0], rec)
	if err != nil {
		return err
	}
	w.sc.k, w.sc.v = k, v
	if err := w.w.Write(k, v); err != nil {
		return fmt.Errorf("extsort: write run: %w", err)
	}
	return nil
}

// Close flushes and closes the file, returning the codec session to the
// pool. Close is not idempotent; call it exactly once.
func (w *RunWriter[T]) Close() error {
	scratchPool.Put(w.sc)
	w.sc = nil
	if err := w.w.Close(); err != nil {
		return fmt.Errorf("extsort: close run: %w", err)
	}
	return nil
}

// WriteRun writes an already-sorted slice of records as one run file.
func WriteRun[T any](disk storage.Disk, name string, f Format[T], recs []T) error {
	return WriteRunC(disk, name, f, recs, compress.Config{})
}

// WriteRunC is WriteRun with optional compression (see NewRunWriterC).
func WriteRunC[T any](disk storage.Disk, name string, f Format[T], recs []T, cc compress.Config) error {
	w, err := NewRunWriterC(disk, name, f, cc)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// RunReader streams one run file back as a merge Source.
type RunReader[T any] struct {
	r *storage.RecordReader
	f Format[T]
}

// OpenRun opens the named run file for reading, uncompressed.
func OpenRun[T any](disk storage.Disk, name string, f Format[T]) (*RunReader[T], error) {
	return OpenRunC(disk, name, f, compress.Config{})
}

// OpenRunC opens a run written by NewRunWriterC with the same
// enabled/disabled state. Decompression is frame-driven (the codec id is
// in each frame header); cc.Meter only charges the modeled decode CPU.
func OpenRunC[T any](disk storage.Disk, name string, f Format[T], cc compress.Config) (*RunReader[T], error) {
	file, err := disk.Open(name)
	if err != nil {
		return nil, fmt.Errorf("extsort: open run: %w", err)
	}
	var r io.Reader = file
	if cc.Enabled() {
		r = compress.NewReader(file, cc.Meter)
	}
	return &RunReader[T]{r: storage.NewRecordReader(r), f: f}, nil
}

// Next implements Source.
func (r *RunReader[T]) Next() (T, error) {
	rec, err := r.r.Next()
	if err != nil {
		var zero T
		if err == io.EOF {
			return zero, io.EOF
		}
		return zero, fmt.Errorf("extsort: read run: %w", err)
	}
	return r.f.DecodeRecord(rec.Key, rec.Value)
}

// Close closes the underlying file.
func (r *RunReader[T]) Close() error { return r.r.Close() }
