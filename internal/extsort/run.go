package extsort

import (
	"fmt"
	"io"
	"sync"

	"github.com/hamr-go/hamr/internal/storage"
)

// Format converts typed records to and from the raw key/value byte
// pairs stored in length-prefixed run files. Encoders append into
// caller-provided scratch (reused across records by RunWriter — the
// pooled codec session); decoders receive slices they must not retain.
type Format[T any] interface {
	// AppendRecord appends rec's key and value encodings to kbuf and
	// vbuf (either may be nil) and returns the extended slices.
	AppendRecord(kbuf, vbuf []byte, rec T) ([]byte, []byte, error)
	// DecodeRecord reconstructs a record from raw key/value bytes.
	DecodeRecord(key, value []byte) (T, error)
}

// scratch holds the reusable encode buffers of one writer session.
type scratch struct{ k, v []byte }

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// RunWriter writes one sorted run file. The caller is responsible for
// feeding records in run order; the writer only encodes and frames.
type RunWriter[T any] struct {
	w  *storage.RecordWriter
	f  Format[T]
	sc *scratch
}

// NewRunWriter creates the named run file on disk.
func NewRunWriter[T any](disk storage.Disk, name string, f Format[T]) (*RunWriter[T], error) {
	file, err := disk.Create(name)
	if err != nil {
		return nil, fmt.Errorf("extsort: create run: %w", err)
	}
	return &RunWriter[T]{
		w:  storage.NewRecordWriter(file),
		f:  f,
		sc: scratchPool.Get().(*scratch),
	}, nil
}

// Write appends one record.
func (w *RunWriter[T]) Write(rec T) error {
	k, v, err := w.f.AppendRecord(w.sc.k[:0], w.sc.v[:0], rec)
	if err != nil {
		return err
	}
	w.sc.k, w.sc.v = k, v
	if err := w.w.Write(k, v); err != nil {
		return fmt.Errorf("extsort: write run: %w", err)
	}
	return nil
}

// Close flushes and closes the file, returning the codec session to the
// pool. Close is not idempotent; call it exactly once.
func (w *RunWriter[T]) Close() error {
	scratchPool.Put(w.sc)
	w.sc = nil
	if err := w.w.Close(); err != nil {
		return fmt.Errorf("extsort: close run: %w", err)
	}
	return nil
}

// WriteRun writes an already-sorted slice of records as one run file.
func WriteRun[T any](disk storage.Disk, name string, f Format[T], recs []T) error {
	w, err := NewRunWriter(disk, name, f)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// RunReader streams one run file back as a merge Source.
type RunReader[T any] struct {
	r *storage.RecordReader
	f Format[T]
}

// OpenRun opens the named run file for reading.
func OpenRun[T any](disk storage.Disk, name string, f Format[T]) (*RunReader[T], error) {
	file, err := disk.Open(name)
	if err != nil {
		return nil, fmt.Errorf("extsort: open run: %w", err)
	}
	return &RunReader[T]{r: storage.NewRecordReader(file), f: f}, nil
}

// Next implements Source.
func (r *RunReader[T]) Next() (T, error) {
	rec, err := r.r.Next()
	if err != nil {
		var zero T
		if err == io.EOF {
			return zero, io.EOF
		}
		return zero, fmt.Errorf("extsort: read run: %w", err)
	}
	return r.f.DecodeRecord(rec.Key, rec.Value)
}

// Close closes the underlying file.
func (r *RunReader[T]) Close() error { return r.r.Close() }
