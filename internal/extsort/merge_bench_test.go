package extsort

import (
	"container/heap"
	"fmt"
	"testing"
)

// The two in-tree legacy baselines these benchmarks compare against are
// the merge algorithms the engines used before extsort existed:
//
//   - baselineLinearScan is mapreduce's old mergeRuns/mergeInMemory
//     selection: scan every source's head per emitted record, O(k).
//   - baselineHeap is core's old container/heap merge: O(log k) per
//     record but with interface boxing and heap churn per push/pop.
//
// See EXPERIMENTS.md "Merge microbenchmarks" for recorded numbers.

func benchData(k, perRun int) [][]testRec {
	raw := make([]byte, k*perRun)
	state := uint32(2463534242)
	for i := range raw {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		raw[i] = byte(state)
	}
	return buildRuns(raw, k, 101)
}

func baselineLinearScan(runs [][]testRec, emit func(r testRec)) {
	idx := make([]int, len(runs))
	for {
		best := -1
		for i, run := range runs {
			if idx[i] >= len(run) {
				continue
			}
			if best < 0 || testCmp(run[idx[i]], runs[best][idx[best]]) < 0 {
				best = i
			}
		}
		if best < 0 {
			return
		}
		emit(runs[best][idx[best]])
		idx[best]++
	}
}

type heapItem struct {
	rec testRec
	src int
}

type benchHeap []heapItem

func (h benchHeap) Len() int      { return len(h) }
func (h benchHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h benchHeap) Less(i, j int) bool {
	if c := testCmp(h[i].rec, h[j].rec); c != 0 {
		return c < 0
	}
	return h[i].src < h[j].src
}
func (h *benchHeap) Push(x any) { *h = append(*h, x.(heapItem)) }
func (h *benchHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func baselineHeap(runs [][]testRec, emit func(r testRec)) {
	idx := make([]int, len(runs))
	h := &benchHeap{}
	for i, run := range runs {
		if len(run) > 0 {
			heap.Push(h, heapItem{rec: run[0], src: i})
			idx[i] = 1
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		emit(it.rec)
		if idx[it.src] < len(runs[it.src]) {
			heap.Push(h, heapItem{rec: runs[it.src][idx[it.src]], src: it.src})
			idx[it.src]++
		}
	}
}

var benchSink int64

func benchKs(b *testing.B, run func(b *testing.B, runs [][]testRec)) {
	for _, k := range []int{2, 4, 8, 16, 32} {
		runs := benchData(k, 4096)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run(b, runs)
			}
		})
	}
}

func BenchmarkMergeLoserTree(b *testing.B) {
	benchKs(b, func(b *testing.B, runs [][]testRec) {
		sources := make([]Source[testRec], len(runs))
		for i := range runs {
			sources[i] = SliceSource(runs[i])
		}
		if err := Merge(sources, testCmp, func(r testRec, _ int) error {
			benchSink += r.seq
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkMergeLinearScan(b *testing.B) {
	benchKs(b, func(b *testing.B, runs [][]testRec) {
		baselineLinearScan(runs, func(r testRec) { benchSink += r.seq })
	})
}

func BenchmarkMergeHeap(b *testing.B) {
	benchKs(b, func(b *testing.B, runs [][]testRec) {
		baselineHeap(runs, func(r testRec) { benchSink += r.seq })
	})
}
