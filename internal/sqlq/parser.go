package sqlq

import (
	"fmt"
	"strconv"
	"strings"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String implements fmt.Stringer.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "NONE"
	}
}

// SelectItem is one projected column or aggregate.
type SelectItem struct {
	Agg   AggFunc
	Col   string // "*" only for COUNT(*)
	Alias string
}

// Name returns the output column name.
func (s SelectItem) Name() string {
	if s.Alias != "" {
		return s.Alias
	}
	if s.Agg == AggNone {
		return s.Col
	}
	return fmt.Sprintf("%s(%s)", strings.ToLower(s.Agg.String()), s.Col)
}

// CompareOp enumerates predicate operators.
type CompareOp string

// Predicate operators.
const (
	OpEq       CompareOp = "="
	OpNe       CompareOp = "!="
	OpLt       CompareOp = "<"
	OpLe       CompareOp = "<="
	OpGt       CompareOp = ">"
	OpGe       CompareOp = ">="
	OpContains CompareOp = "CONTAINS"
)

// Predicate is one WHERE conjunct: <col> <op> <literal>.
type Predicate struct {
	Col     string
	Op      CompareOp
	Literal string
	Number  float64
	IsNum   bool
}

// Query is a parsed statement.
type Query struct {
	Items     []SelectItem
	Table     string
	Where     []Predicate
	GroupBy   string
	OrderBy   string // an output column name
	OrderDesc bool
	Limit     int // -1 = none
}

// HasAggregates reports whether any select item aggregates.
func (q *Query) HasAggregates() bool {
	for _, it := range q.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses one SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlq: trailing input at %q", p.peek().text)
	}
	return q, nil
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokWord && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sqlq: expected %s near %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) symbol(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) word() (string, error) {
	t := p.peek()
	if t.kind != tokWord {
		return "", fmt.Errorf("sqlq: expected identifier near %q", t.text)
	}
	p.next()
	return t.text, nil
}

var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"order": true, "by": true, "limit": true, "and": true, "as": true,
	"desc": true, "asc": true, "contains": true,
}

func (p *parser) identifier() (string, error) {
	t := p.peek()
	if t.kind != tokWord || reserved[strings.ToLower(t.text)] {
		return "", fmt.Errorf("sqlq: expected column near %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseSelect() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	for {
		it, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, it)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.word()
	if err != nil {
		return nil, err
	}
	q.Table = table

	if p.keyword("WHERE") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if !p.keyword("AND") {
				break
			}
		}
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.identifier()
		if err != nil {
			return nil, err
		}
		q.GroupBy = col
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		// ORDER BY accepts an output column name or an aggregate spelling
		// like count(*) / sum(col).
		save := p.save()
		if it, err := p.parseItem(); err == nil && it.Agg != AggNone {
			q.OrderBy = it.Name()
		} else {
			p.restore(save)
			col, err := p.identifier()
			if err != nil {
				return nil, err
			}
			q.OrderBy = col
		}
		if p.keyword("DESC") {
			q.OrderDesc = true
		} else {
			p.keyword("ASC")
		}
	}
	if p.keyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlq: LIMIT needs a number, got %q", t.text)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlq: bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, p.validate(q)
}

func (p *parser) parseItem() (SelectItem, error) {
	t := p.peek()
	if t.kind != tokWord {
		return SelectItem{}, fmt.Errorf("sqlq: expected select item near %q", t.text)
	}
	var it SelectItem
	switch strings.ToUpper(t.text) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		fn := strings.ToUpper(t.text)
		save := p.save()
		p.next()
		if !p.symbol("(") {
			// A column that merely looks like a function name.
			p.restore(save)
			break
		}
		switch fn {
		case "COUNT":
			it.Agg = AggCount
		case "SUM":
			it.Agg = AggSum
		case "AVG":
			it.Agg = AggAvg
		case "MIN":
			it.Agg = AggMin
		case "MAX":
			it.Agg = AggMax
		}
		if p.symbol("*") {
			if it.Agg != AggCount {
				return SelectItem{}, fmt.Errorf("sqlq: %s(*) is not valid", fn)
			}
			it.Col = "*"
		} else {
			col, err := p.identifier()
			if err != nil {
				return SelectItem{}, err
			}
			it.Col = col
		}
		if !p.symbol(")") {
			return SelectItem{}, fmt.Errorf("sqlq: missing ) after %s", fn)
		}
	}
	if it.Agg == AggNone {
		col, err := p.identifier()
		if err != nil {
			return SelectItem{}, err
		}
		it.Col = col
	}
	if p.keyword("AS") {
		alias, err := p.identifier()
		if err != nil {
			return SelectItem{}, err
		}
		it.Alias = alias
	}
	return it, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	col, err := p.identifier()
	if err != nil {
		return Predicate{}, err
	}
	var op CompareOp
	t := p.peek()
	switch {
	case t.kind == tokSymbol && (t.text == "=" || t.text == "!=" || t.text == "<" ||
		t.text == "<=" || t.text == ">" || t.text == ">="):
		op = CompareOp(t.text)
		p.next()
	case t.kind == tokWord && strings.EqualFold(t.text, "CONTAINS"):
		op = OpContains
		p.next()
	default:
		return Predicate{}, fmt.Errorf("sqlq: expected operator near %q", t.text)
	}
	lit := p.peek()
	pred := Predicate{Col: col, Op: op}
	switch lit.kind {
	case tokString:
		pred.Literal = lit.text
	case tokNumber:
		pred.Literal = lit.text
		n, err := strconv.ParseFloat(lit.text, 64)
		if err != nil {
			return Predicate{}, fmt.Errorf("sqlq: bad number %q", lit.text)
		}
		pred.Number, pred.IsNum = n, true
	case tokWord:
		pred.Literal = lit.text // bareword literal
	default:
		return Predicate{}, fmt.Errorf("sqlq: expected literal near %q", lit.text)
	}
	p.next()
	return pred, nil
}

// validate applies the semantic rules a planner needs.
func (p *parser) validate(q *Query) error {
	if len(q.Items) == 0 {
		return fmt.Errorf("sqlq: empty select list")
	}
	hasAgg := q.HasAggregates()
	for _, it := range q.Items {
		if it.Agg == AggNone && hasAgg && it.Col != q.GroupBy {
			return fmt.Errorf("sqlq: column %q must appear in GROUP BY", it.Col)
		}
	}
	if q.GroupBy != "" && !hasAgg {
		return fmt.Errorf("sqlq: GROUP BY without aggregates")
	}
	if q.OrderBy != "" {
		found := false
		for _, it := range q.Items {
			if it.Name() == q.OrderBy || (it.Agg == AggNone && it.Col == q.OrderBy) {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("sqlq: ORDER BY column %q is not selected", q.OrderBy)
		}
	}
	return nil
}
