package sqlq

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/extsort"
)

// Table describes a schema-typed text source: each line is one row whose
// fields are separated by Sep (default tab).
type Table struct {
	Name    string
	Columns []string
	Sep     string
	// Loader supplies the raw lines (typically a LocalTextLoader or
	// HDFSTextLoader from the apps package).
	Loader core.Loader
}

func (t *Table) colIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if strings.EqualFold(c, name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sqlq: table %s has no column %q", t.Name, name)
}

// Catalog maps table names to definitions for one cluster.
type Catalog struct {
	c      *cluster.Cluster
	tables map[string]*Table
}

// NewCatalog creates an empty catalog bound to a cluster.
func NewCatalog(c *cluster.Cluster) *Catalog {
	return &Catalog{c: c, tables: make(map[string]*Table)}
}

// Register adds a table definition.
func (cat *Catalog) Register(t *Table) error {
	if t.Name == "" || len(t.Columns) == 0 || t.Loader == nil {
		return fmt.Errorf("sqlq: table needs a name, columns and a loader")
	}
	if t.Sep == "" {
		t.Sep = "\t"
	}
	cat.tables[strings.ToLower(t.Name)] = t
	return nil
}

// Result is a finished query: column names plus formatted rows.
type Result struct {
	Columns []string
	Rows    [][]string
}

// Query parses and runs one statement on the cluster.
func (cat *Catalog) Query(stmt string) (*Result, error) {
	q, err := Parse(stmt)
	if err != nil {
		return nil, err
	}
	table, ok := cat.tables[strings.ToLower(q.Table)]
	if !ok {
		return nil, fmt.Errorf("sqlq: unknown table %q", q.Table)
	}
	plan, err := buildPlan(q, table)
	if err != nil {
		return nil, err
	}
	g, sink, err := plan.graph()
	if err != nil {
		return nil, err
	}
	if _, err := cat.c.Run(g); err != nil {
		return nil, err
	}
	return plan.collect(sink)
}

// plan holds the resolved column indices for the flowlet stages.
type plan struct {
	q       *Query
	table   *Table
	whereIx []int // column index per predicate
	groupIx int   // -1 when not grouping
	// For aggregate queries: the column index feeding each aggregate (-1
	// for COUNT(*)). For plain selects: the projected column indices.
	itemIx []int
}

func buildPlan(q *Query, table *Table) (*plan, error) {
	p := &plan{q: q, table: table, groupIx: -1}
	for _, pred := range q.Where {
		ix, err := table.colIndex(pred.Col)
		if err != nil {
			return nil, err
		}
		p.whereIx = append(p.whereIx, ix)
	}
	if q.GroupBy != "" {
		ix, err := table.colIndex(q.GroupBy)
		if err != nil {
			return nil, err
		}
		p.groupIx = ix
	}
	for _, it := range q.Items {
		if it.Agg == AggNone {
			ix, err := table.colIndex(it.Col)
			if err != nil {
				return nil, err
			}
			p.itemIx = append(p.itemIx, ix)
			continue
		}
		if it.Col == "*" {
			p.itemIx = append(p.itemIx, -1)
			continue
		}
		ix, err := table.colIndex(it.Col)
		if err != nil {
			return nil, err
		}
		p.itemIx = append(p.itemIx, ix)
	}
	return p, nil
}

// rowScan is the map flowlet: parse, filter, project.
type rowScan struct {
	p *plan
}

// Map implements core.Mapper.
func (m rowScan) Map(kv core.KV, ctx core.Context) error {
	line := kv.Value.(string)
	if line == "" {
		return nil
	}
	fields := strings.Split(line, m.p.table.Sep)
	if len(fields) < len(m.p.table.Columns) {
		return fmt.Errorf("sqlq: row of %d fields for table %s (%d columns): %q",
			len(fields), m.p.table.Name, len(m.p.table.Columns), line)
	}
	for i, pred := range m.p.q.Where {
		if !pred.matches(fields[m.p.whereIx[i]]) {
			return nil
		}
	}
	if m.p.q.HasAggregates() {
		key := ""
		if m.p.groupIx >= 0 {
			key = fields[m.p.groupIx]
		}
		vals := make([]string, len(m.p.itemIx))
		for i, ix := range m.p.itemIx {
			if ix >= 0 {
				vals[i] = fields[ix]
			}
		}
		return ctx.Emit(core.KV{Key: key, Value: vals})
	}
	out := make([]string, len(m.p.itemIx))
	for i, ix := range m.p.itemIx {
		out[i] = fields[ix]
	}
	return ctx.Emit(core.KV{Key: "", Value: out})
}

func (pred Predicate) matches(cell string) bool {
	if pred.Op == OpContains {
		return strings.Contains(cell, pred.Literal)
	}
	if pred.IsNum {
		if n, err := strconv.ParseFloat(cell, 64); err == nil {
			switch pred.Op {
			case OpEq:
				return n == pred.Number
			case OpNe:
				return n != pred.Number
			case OpLt:
				return n < pred.Number
			case OpLe:
				return n <= pred.Number
			case OpGt:
				return n > pred.Number
			case OpGe:
				return n >= pred.Number
			}
		}
		return false
	}
	switch pred.Op {
	case OpEq:
		return cell == pred.Literal
	case OpNe:
		return cell != pred.Literal
	case OpLt:
		return cell < pred.Literal
	case OpLe:
		return cell <= pred.Literal
	case OpGt:
		return cell > pred.Literal
	case OpGe:
		return cell >= pred.Literal
	}
	return false
}

// aggFold is the partial reduce folding per-group aggregate state. State
// is a flat []float64: 4 slots per item (count, sum, min, max).
type aggFold struct {
	p *plan
}

// Update implements core.PartialReducer.
func (a aggFold) Update(key string, state, value any) (any, error) {
	vals, ok := value.([]string)
	if !ok {
		return nil, fmt.Errorf("sqlq: aggregate input was %T", value)
	}
	items := a.p.q.Items
	st, _ := state.([]float64)
	if st == nil {
		st = make([]float64, 4*len(items))
		for i := range items {
			st[4*i+2] = math.Inf(1)  // min
			st[4*i+3] = math.Inf(-1) // max
		}
	}
	for i, it := range items {
		if it.Agg == AggNone {
			continue
		}
		base := 4 * i
		if it.Agg == AggCount && it.Col == "*" {
			st[base]++
			continue
		}
		cell := vals[i]
		n, err := strconv.ParseFloat(cell, 64)
		numeric := err == nil
		st[base]++ // count of non-missing rows
		if numeric {
			st[base+1] += n
			if n < st[base+2] {
				st[base+2] = n
			}
			if n > st[base+3] {
				st[base+3] = n
			}
		} else if it.Agg != AggCount {
			return nil, fmt.Errorf("sqlq: %s(%s) over non-numeric value %q", it.Agg, it.Col, cell)
		}
	}
	return st, nil
}

// Finish implements core.PartialReducer.
func (a aggFold) Finish(key string, state any, ctx core.Context) error {
	return ctx.Emit(core.KV{Key: key, Value: state.([]float64)})
}

// graph compiles the plan into a flowlet graph.
func (p *plan) graph() (*core.Graph, *core.CollectSink, error) {
	g := core.NewGraph("sql:" + p.q.Table)
	sink := core.NewCollectSink()
	ld, err := g.AddLoader("scan", p.table.Loader)
	if err != nil {
		return nil, nil, err
	}
	mp, err := g.AddMap("filter-project", rowScan{p: p})
	if err != nil {
		return nil, nil, err
	}
	if err := g.Connect(ld, mp, core.WithRouting(core.RouteLocal)); err != nil {
		return nil, nil, err
	}
	last := mp
	if p.q.HasAggregates() {
		pr, err := g.AddPartialReduce("aggregate", aggFold{p: p})
		if err != nil {
			return nil, nil, err
		}
		if err := g.Connect(mp, pr); err != nil {
			return nil, nil, err
		}
		last = pr
	}
	sk, err := g.AddSink("out", sink)
	if err != nil {
		return nil, nil, err
	}
	if err := g.Connect(last, sk); err != nil {
		return nil, nil, err
	}
	return g, sink, nil
}

// row is one formatted output row plus its parsed ORDER BY cell.
type row struct {
	cells   []string
	sortKey string
	sortNum float64
	numeric bool
}

// rowCompare returns the output ordering: with an ORDER BY column
// (orderIx >= 0), rows compare numerically when both cells parse as
// numbers and lexically otherwise, negated for DESC; without one,
// rows compare by their full cell tuple so aggregate output is
// deterministic regardless of reduce arrival order.
func rowCompare(orderIx int, desc bool) extsort.Compare[row] {
	if orderIx < 0 {
		return func(a, b row) int {
			return strings.Compare(strings.Join(a.cells, "\x00"), strings.Join(b.cells, "\x00"))
		}
	}
	return func(a, b row) int {
		var c int
		if a.numeric && b.numeric {
			switch {
			case a.sortNum < b.sortNum:
				c = -1
			case b.sortNum < a.sortNum:
				c = 1
			}
		} else {
			c = strings.Compare(a.sortKey, b.sortKey)
		}
		if desc {
			return -c
		}
		return c
	}
}

// collect turns sink pairs into ordered, limited, formatted rows.
func (p *plan) collect(sink *core.CollectSink) (*Result, error) {
	res := &Result{}
	for _, it := range p.q.Items {
		res.Columns = append(res.Columns, it.Name())
	}
	var rows []row

	orderIx := -1
	if p.q.OrderBy != "" {
		for i, c := range res.Columns {
			if c == p.q.OrderBy {
				orderIx = i
			}
		}
	}

	addRow := func(cells []string) {
		r := row{cells: cells}
		if orderIx >= 0 {
			r.sortKey = cells[orderIx]
			if n, err := strconv.ParseFloat(r.sortKey, 64); err == nil {
				r.sortNum, r.numeric = n, true
			}
		}
		rows = append(rows, r)
	}

	if p.q.HasAggregates() {
		for _, kv := range sink.Pairs() {
			st := kv.Value.([]float64)
			cells := make([]string, len(p.q.Items))
			for i, it := range p.q.Items {
				base := 4 * i
				switch it.Agg {
				case AggNone:
					cells[i] = kv.Key
				case AggCount:
					cells[i] = strconv.FormatInt(int64(st[base]), 10)
				case AggSum:
					cells[i] = formatNum(st[base+1])
				case AggAvg:
					if st[base] == 0 {
						cells[i] = "NaN"
					} else {
						cells[i] = formatNum(st[base+1] / st[base])
					}
				case AggMin:
					cells[i] = formatNum(st[base+2])
				case AggMax:
					cells[i] = formatNum(st[base+3])
				}
			}
			addRow(cells)
		}
	} else {
		for _, kv := range sink.Pairs() {
			addRow(kv.Value.([]string))
		}
	}

	if orderIx >= 0 || p.q.HasAggregates() {
		extsort.SortStable(rows, rowCompare(orderIx, p.q.OrderDesc))
	}
	if p.q.Limit >= 0 && len(rows) > p.q.Limit {
		rows = rows[:p.q.Limit]
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, r.cells)
	}
	return res, nil
}

func formatNum(n float64) string {
	if math.IsInf(n, 0) {
		return "NaN"
	}
	if n == math.Trunc(n) && math.Abs(n) < 1e15 {
		return strconv.FormatInt(int64(n), 10)
	}
	return strconv.FormatFloat(n, 'g', 10, 64)
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}
