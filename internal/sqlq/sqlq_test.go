package sqlq

import (
	"reflect"
	"strings"
	"testing"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
)

// ---------------------------------------------------------------------------
// parser

func TestParseBasics(t *testing.T) {
	q, err := Parse("SELECT city, COUNT(*) AS n, AVG(amount) FROM sales WHERE amount > 10 AND city != 'NYC' GROUP BY city ORDER BY n DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "sales" || q.GroupBy != "city" || q.OrderBy != "n" || !q.OrderDesc || q.Limit != 5 {
		t.Fatalf("parsed %+v", q)
	}
	if len(q.Items) != 3 || q.Items[1].Agg != AggCount || q.Items[1].Alias != "n" ||
		q.Items[2].Agg != AggAvg || q.Items[2].Col != "amount" {
		t.Fatalf("items %+v", q.Items)
	}
	if len(q.Where) != 2 || q.Where[0].Op != OpGt || !q.Where[0].IsNum || q.Where[1].Literal != "NYC" {
		t.Fatalf("where %+v", q.Where)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select a from t"); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("SeLeCt Sum(x) FROM t"); err != nil {
		t.Fatal(err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse("SELECT a FROM t WHERE a = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Literal != "it's" {
		t.Fatalf("literal %q", q.Where[0].Literal)
	}
}

func TestParseContains(t *testing.T) {
	q, err := Parse("SELECT a FROM t WHERE a CONTAINS 'xyz'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Op != OpContains {
		t.Fatalf("op %v", q.Where[0].Op)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT FROM t",
		"SELECT a",                          // no FROM
		"SELECT a FROM t WHERE",             // dangling WHERE
		"SELECT a FROM t LIMIT x",           // non-numeric limit
		"SELECT SUM(*) FROM t",              // SUM(*)
		"SELECT a, COUNT(*) FROM t",         // a not grouped
		"SELECT a FROM t GROUP BY a",        // group without aggregate
		"SELECT a FROM t ORDER BY b",        // order by unselected column
		"SELECT a FROM t WHERE a ~ 3",       // bad operator
		"SELECT a FROM t trailing garbage!", // trailing input
		"SELECT a FROM t WHERE a = 'open",   // unterminated string
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestOrderByAggregateSpelling(t *testing.T) {
	q, err := Parse("SELECT city, COUNT(*) FROM t GROUP BY city ORDER BY count(*) DESC")
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderBy != "count(*)" {
		t.Fatalf("order by %q", q.OrderBy)
	}
}

// ---------------------------------------------------------------------------
// execution

func newCatalog(t testing.TB, rows []string, columns ...string) *Catalog {
	t.Helper()
	c, err := cluster.New(cluster.Options{NumNodes: 3, Core: core.Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	data := strings.Join(rows, "\n") + "\n"
	files, err := hamrapps.DistributeLocalText(c, "sales", []byte(data), 4)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(c)
	if err := cat.Register(&Table{
		Name:    "sales",
		Columns: columns,
		Loader:  &hamrapps.LocalTextLoader{Files: files},
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func salesCatalog(t testing.TB) *Catalog {
	return newCatalog(t, []string{
		"NYC\twidget\t12",
		"NYC\tgadget\t5",
		"SFO\twidget\t30",
		"SFO\twidget\t8",
		"LAX\tgadget\t7",
		"LAX\twidget\t3",
		"LAX\tgadget\t20",
	}, "city", "item", "amount")
}

func TestSelectWhere(t *testing.T) {
	cat := salesCatalog(t)
	res, err := cat.Query("SELECT city, amount FROM sales WHERE amount >= 12 ORDER BY amount DESC")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"SFO", "30"}, {"LAX", "20"}, {"NYC", "12"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !reflect.DeepEqual(res.Columns, []string{"city", "amount"}) {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestGroupByAggregates(t *testing.T) {
	cat := salesCatalog(t)
	res, err := cat.Query(
		"SELECT city, COUNT(*) AS n, SUM(amount) AS total, MIN(amount) AS lo, MAX(amount) AS hi, AVG(amount) AS mean " +
			"FROM sales GROUP BY city ORDER BY city")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"LAX", "3", "30", "3", "20", "10"},
		{"NYC", "2", "17", "5", "12", "8.5"},
		{"SFO", "2", "38", "8", "30", "19"},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestGlobalAggregate(t *testing.T) {
	cat := salesCatalog(t)
	res, err := cat.Query("SELECT COUNT(*), SUM(amount) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "7" || res.Rows[0][1] != "85" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestWhereStringAndContains(t *testing.T) {
	cat := salesCatalog(t)
	res, err := cat.Query("SELECT COUNT(*) FROM sales WHERE item = 'widget'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "4" {
		t.Fatalf("widget count = %v", res.Rows)
	}
	res, err = cat.Query("SELECT COUNT(*) FROM sales WHERE item CONTAINS 'dget'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "7" {
		t.Fatalf("contains count = %v", res.Rows)
	}
}

func TestLimit(t *testing.T) {
	cat := salesCatalog(t)
	res, err := cat.Query("SELECT city, COUNT(*) AS n FROM sales GROUP BY city ORDER BY n DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "LAX" {
		t.Fatalf("top city = %v", res.Rows)
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	cat := salesCatalog(t)
	if _, err := cat.Query("SELECT a FROM nope"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := cat.Query("SELECT nope FROM sales"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := cat.Query("SELECT SUM(item) FROM sales"); err == nil {
		t.Error("SUM over strings accepted")
	}
}

func TestResultFormat(t *testing.T) {
	cat := salesCatalog(t)
	res, err := cat.Query("SELECT city, SUM(amount) AS total FROM sales GROUP BY city ORDER BY total DESC")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	if !strings.Contains(out, "city") || !strings.Contains(out, "total") {
		t.Fatalf("format:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("format has %d lines:\n%s", len(lines), out)
	}
}

func TestRegisterValidation(t *testing.T) {
	cat := NewCatalog(nil)
	if err := cat.Register(&Table{}); err == nil {
		t.Error("empty table registered")
	}
}
