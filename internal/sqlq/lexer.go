// Package sqlq implements the "higher level interactive interface like
// SQL" the paper lists as the engine's next feature (§7): a small SQL
// dialect whose queries compile to flowlet graphs and run on the cluster.
//
// Supported grammar:
//
//	SELECT <item> [, <item>...]
//	FROM <table>
//	[WHERE <col> <op> <literal> [AND ...]]
//	[GROUP BY <col>]
//	[ORDER BY <expr> [DESC]]
//	[LIMIT <n>]
//
//	item: <col> | COUNT(*) | COUNT(col) | SUM(col) | AVG(col)
//	      | MIN(col) | MAX(col)   — each optionally "AS alias"
//	op:   = != < <= > >= CONTAINS
//
// Tables are schema-typed text files registered in a Catalog; aggregation
// queries become loader -> filter/project(map) -> partial-reduce graphs,
// so a GROUP BY aggregates in memory as rows arrive — the engine's
// defining behaviour surfaces directly in the query layer.
package sqlq

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokWord tokenKind = iota
	tokNumber
	tokString
	tokSymbol // ( ) , * = != < <= > >=
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits a query into tokens. Keywords are case-insensitive words;
// strings use single quotes with ” as the escape.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sqlq: unterminated string at offset %d", i)
				}
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c == '(' || c == ')' || c == ',' || c == '*':
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '=':
			toks = append(toks, token{kind: tokSymbol, text: "=", pos: i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: "!=", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sqlq: unexpected '!' at offset %d", i)
			}
		case c == '<' || c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: string(c) + "=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			}
		case c >= '0' && c <= '9' || c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			j := i + 1
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isWordStart(rune(c)):
			j := i + 1
			for j < n && isWordPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{kind: tokWord, text: input[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("sqlq: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isWordStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isWordPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
