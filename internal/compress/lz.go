package compress

import (
	"encoding/binary"
	"fmt"
)

// LZ is the hand-rolled LZ4-style LZ77 block codec: byte-aligned tokens,
// greedy matching through a 16K-entry hash table over 4-byte sequences,
// 2-byte little-endian match offsets (64 KiB window — exactly one stream
// block), no entropy stage. The shapes it is tuned for are the repo's
// intermediates: uvarint-framed KV records with repeated words (WordCount,
// PageRank adjacency), fixed-layout TeraSort lines, and gob batch frames
// whose type preambles repeat per batch. On those it trades a little ratio
// against flate for an order of magnitude less encode work, which matters
// because the simulation charges modeled CPU per compressed byte.
//
// Block format (a sequence of sequences, mirroring LZ4's):
//
//	token byte: high nibble = literal length, low nibble = match length - 4
//	  (nibble 15 extends with 255-continuation bytes: add each 0xFF byte,
//	  stop at the first byte < 0xFF and add it too)
//	literal bytes
//	2-byte LE offset (1..65535, distance back into already-decoded output)
//	— the final sequence is literals-only: token low nibble 0, no offset.
type LZ struct{}

// Name implements Codec.
func (LZ) Name() string { return "lz" }

const (
	lzHashBits = 14
	lzHashLen  = 1 << lzHashBits
	lzMinMatch = 4
	lzMaxDist  = 65535
)

// lzHash mixes a 4-byte little-endian load down to lzHashBits. The
// multiplier is the 32-bit Knuth constant; LZ4 uses the same trick.
func lzHash(v uint32) uint32 { return (v * 2654435761) >> (32 - lzHashBits) }

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// appendLen appends an LZ4-style extended length: base nibble already in
// the token, remainder as 255-continuation bytes.
func appendLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 0xFF)
		n -= 255
	}
	return append(dst, byte(n))
}

// Encode implements Codec. Output for incompressible input can exceed
// len(src) slightly (AppendFrame stores such blocks raw instead).
func (LZ) Encode(dst, src []byte) []byte {
	var table [lzHashLen]int32 // position+1 of last occurrence; 0 = empty

	n := len(src)
	litStart := 0 // start of pending literal run
	i := 0
	// Matches need 4 bytes to hash plus room to be worth the 3-byte
	// sequence overhead; the last few bytes always go out as literals.
	limit := n - lzMinMatch
	for i <= limit {
		h := lzHash(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > lzMaxDist || load32(src, cand) != load32(src, i) {
			i++
			continue
		}
		// Extend the match forward.
		mlen := lzMinMatch
		for i+mlen < n && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		// Emit sequence: pending literals + this match.
		lit := i - litStart
		token := byte(0)
		if lit < 15 {
			token = byte(lit) << 4
		} else {
			token = 15 << 4
		}
		mt := mlen - lzMinMatch
		if mt < 15 {
			token |= byte(mt)
		} else {
			token |= 15
		}
		dst = append(dst, token)
		if lit >= 15 {
			dst = appendLen(dst, lit-15)
		}
		dst = append(dst, src[litStart:i]...)
		dst = append(dst, byte(i-cand), byte((i-cand)>>8))
		if mt >= 15 {
			dst = appendLen(dst, mt-15)
		}
		// Seed the table inside the match so runs keep matching; hashing
		// every position is the main cost, every other position loses
		// little ratio on this data.
		end := i + mlen
		for j := i + 1; j < end-lzMinMatch && j <= limit; j += 2 {
			table[lzHash(load32(src, j))] = int32(j + 1)
		}
		i = end
		litStart = i
	}
	// Final literals-only sequence.
	lit := n - litStart
	if lit < 15 {
		dst = append(dst, byte(lit)<<4)
	} else {
		dst = append(dst, 15<<4)
		dst = appendLen(dst, lit-15)
	}
	return append(dst, src[litStart:]...)
}

// Decode implements Codec. Every offset and length is validated against
// the bytes actually decoded so far; dst never grows more than one
// allocStep past the bytes materialized, so a lying rawLen cannot force a
// large allocation.
func (LZ) Decode(dst, src []byte, rawLen int) ([]byte, error) {
	base := len(dst)
	corrupt := func(format string, args ...any) ([]byte, error) {
		return dst[:base], fmt.Errorf("%w: lz: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if rawLen < 0 {
		return corrupt("negative raw length")
	}
	if want := base + min(rawLen, allocStep); cap(dst) < want {
		grown := make([]byte, len(dst), want)
		copy(grown, dst)
		dst = grown
	}
	i := 0
	for i < len(src) {
		token := src[i]
		i++
		// Literals.
		lit := int(token >> 4)
		if lit == 15 {
			for {
				if i >= len(src) {
					return corrupt("truncated literal length")
				}
				b := src[i]
				i++
				lit += int(b)
				if b < 0xFF {
					break
				}
			}
		}
		if lit > len(src)-i {
			return corrupt("literal run past input end")
		}
		if len(dst)-base+lit > rawLen {
			return corrupt("output exceeds declared raw length")
		}
		dst = append(dst, src[i:i+lit]...)
		i += lit
		if i == len(src) {
			// Final literals-only sequence: match nibble must be 0, or the
			// stream ended where an offset belonged.
			if token&0x0F != 0 {
				return corrupt("stream ends mid-sequence")
			}
			break
		}
		// Match.
		if len(src)-i < 2 {
			return corrupt("truncated match offset")
		}
		dist := int(src[i]) | int(src[i+1])<<8
		i += 2
		if dist == 0 {
			return corrupt("zero match offset")
		}
		if dist > len(dst)-base {
			return corrupt("match offset %d before block start (%d decoded)", dist, len(dst)-base)
		}
		mlen := int(token&0x0F) + lzMinMatch
		if token&0x0F == 15 {
			for {
				if i >= len(src) {
					return corrupt("truncated match length")
				}
				b := src[i]
				i++
				mlen += int(b)
				if b < 0xFF {
					break
				}
			}
		}
		if len(dst)-base+mlen > rawLen {
			return corrupt("output exceeds declared raw length")
		}
		// Byte-at-a-time copy: overlapping matches (dist < mlen) are the
		// run-length case and must see freshly written bytes.
		pos := len(dst) - dist
		for k := 0; k < mlen; k++ {
			dst = append(dst, dst[pos+k])
		}
	}
	if len(dst)-base != rawLen {
		return corrupt("decoded %d bytes, header claims %d", len(dst)-base, rawLen)
	}
	return dst, nil
}
