package compress

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Stream layer: a Writer buffers raw bytes into fixed-size blocks and
// emits one self-describing frame per block; a Reader walks the frames
// back into a contiguous byte stream. Run files (internal/extsort) layer
// RecordWriter → compress.Writer → disk file, so record framing stays
// untouched and the codec sees whole 64 KiB blocks of records — enough
// context for LZ77 to find the cross-record repetition that single-record
// compression would miss.

// streamBufPool recycles the block-sized buffers of Writers and Readers.
var streamBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getStreamBuf(n int) *[]byte {
	bp := streamBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	*bp = (*bp)[:0]
	return bp
}

func putStreamBuf(bp *[]byte) {
	if bp != nil {
		streamBufPool.Put(bp)
	}
}

// Writer is an io.WriteCloser that compresses its input as a sequence of
// frames. Close flushes the final partial block and closes the underlying
// writer if it is an io.Closer (matching storage.RecordWriter's chaining
// contract, so the run-file stack tears down with one Close).
type Writer struct {
	w        io.Writer
	cfg      Config
	blockLen int
	raw      *[]byte // pending raw bytes, len < blockLen after Write
	frame    *[]byte // frame scratch
	err      error
}

// NewWriter wraps w. blockLen <= 0 selects DefaultBlockSize.
func NewWriter(w io.Writer, cfg Config, blockLen int) *Writer {
	if blockLen <= 0 {
		blockLen = DefaultBlockSize
	}
	return &Writer{
		w:        w,
		cfg:      cfg,
		blockLen: blockLen,
		raw:      getStreamBuf(blockLen),
		frame:    getStreamBuf(blockLen),
	}
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	total := len(p)
	for len(p) > 0 {
		room := w.blockLen - len(*w.raw)
		if room == 0 {
			if err := w.flushBlock(); err != nil {
				return total - len(p), err
			}
			room = w.blockLen
		}
		n := min(room, len(p))
		*w.raw = append(*w.raw, p[:n]...)
		p = p[n:]
	}
	return total, nil
}

func (w *Writer) flushBlock() error {
	if len(*w.raw) == 0 {
		return nil
	}
	*w.frame = AppendFrame(w.cfg.Codec, (*w.frame)[:0], *w.raw, w.cfg.MinBytes, w.cfg.Meter)
	*w.raw = (*w.raw)[:0]
	if _, err := w.w.Write(*w.frame); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Close flushes the final block and closes the underlying writer if it
// is an io.Closer. Double-Close is safe.
func (w *Writer) Close() error {
	if w.raw == nil {
		return nil
	}
	err := w.flushBlock()
	putStreamBuf(w.raw)
	putStreamBuf(w.frame)
	w.raw, w.frame = nil, nil
	if c, ok := w.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	if w.err == nil {
		w.err = errors.New("compress: writer closed")
	}
	return err
}

// Reader is an io.ReadCloser that decompresses a stream of frames
// written by Writer. It reads the underlying stream in frame-sized
// chunks; short reads from r are handled (frames straddle Read calls).
type Reader struct {
	r      io.Reader
	meter  *Meter
	in     *[]byte // compressed bytes not yet framed, in[inOff:]
	inOff  int
	out    *[]byte // decoded bytes not yet returned, out[outOff:]
	outOff int
	eof    bool
	err    error
}

// NewReader wraps r; meter may be nil. The reader does its own
// buffering — no bufio layer is needed underneath.
func NewReader(r io.Reader, meter *Meter) *Reader {
	return &Reader{r: r, meter: meter, in: getStreamBuf(DefaultBlockSize), out: getStreamBuf(DefaultBlockSize)}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.in == nil {
		return 0, r.err
	}
	for r.outOff == len(*r.out) {
		if r.err != nil {
			return 0, r.err
		}
		if err := r.nextFrame(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, (*r.out)[r.outOff:])
	r.outOff += n
	return n, nil
}

// nextFrame decodes one more frame into out, refilling in from the
// underlying reader as needed.
func (r *Reader) nextFrame() error {
	for {
		if r.inOff > 0 {
			// Compact consumed bytes so the buffer does not creep.
			*r.in = append((*r.in)[:0], (*r.in)[r.inOff:]...)
			r.inOff = 0
		}
		if len(*r.in) > 0 {
			out, rest, err := DecodeFrame((*r.out)[:0], *r.in, r.meter)
			if err == nil {
				*r.out = out
				r.outOff = 0
				r.inOff = len(*r.in) - len(rest)
				return nil
			}
			if !errors.Is(err, ErrTruncated) || r.eof {
				if r.eof && errors.Is(err, ErrTruncated) {
					return fmt.Errorf("%w: stream ends mid-frame", ErrTruncated)
				}
				return err
			}
			// Truncated but more input may arrive: fall through to refill.
		} else if r.eof {
			return io.EOF
		}
		if err := r.fill(); err != nil {
			return err
		}
	}
}

// fill reads more compressed bytes, growing in by block-sized steps.
func (r *Reader) fill() error {
	if r.eof {
		return nil
	}
	have := len(*r.in)
	want := have + DefaultBlockSize
	if cap(*r.in) < want {
		grown := make([]byte, have, want)
		copy(grown, *r.in)
		*r.in = grown
	}
	n, err := r.r.Read((*r.in)[have:want])
	*r.in = (*r.in)[:have+n]
	if err == io.EOF {
		r.eof = true
		return nil
	}
	return err
}

// Close releases buffers and closes the underlying reader if it is an
// io.Closer. Double-Close is safe.
func (r *Reader) Close() error {
	if r.in == nil {
		return nil
	}
	putStreamBuf(r.in)
	putStreamBuf(r.out)
	r.in, r.out = nil, nil
	r.err = errors.New("compress: reader closed")
	if c, ok := r.r.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
