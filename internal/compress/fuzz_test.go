package compress

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder. The
// invariant under fuzzing is the one the corrupt-frame suite checks by
// hand: hostile input yields a typed error — never a panic, and never an
// allocation driven by a lying raw-length header (the decoder grows its
// buffer in allocStep increments as real payload arrives, so a header
// claiming 256 MiB for a 10-byte frame cannot balloon memory).
func FuzzDecodeFrame(f *testing.F) {
	// Seed with well-formed frames of each codec and the classic corrupt
	// shapes, so coverage starts at the interesting boundaries.
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog "), 40)
	for _, c := range []Codec{nil, LZ{}, Flate{}} {
		f.Add(AppendFrame(c, nil, text, 0, nil))
		f.Add(AppendFrame(c, nil, []byte("x"), 0, nil))
		f.Add(AppendFrame(c, nil, nil, 0, nil))
	}
	f.Add([]byte{idLZ, 0xff, 0xff, 0xff, 0xff, 0x7f, 3, 1, 2, 3}) // lying rawLen
	f.Add([]byte{99, 4, 4, 'a', 'b', 'c', 'd'})                   // unknown codec id
	f.Add([]byte{idFlate, 10, 2, 0, 0})                           // truncated flate

	f.Fuzz(func(t *testing.T, frame []byte) {
		out, rest, err := DecodeFrame(nil, frame, nil)
		if err != nil {
			return
		}
		// A frame that decodes must round-trip through re-encoding: encode
		// the decoded payload with each codec and decode it back.
		for _, c := range []Codec{nil, LZ{}, Flate{}} {
			re := AppendFrame(c, nil, out, 0, nil)
			back, rest2, err2 := DecodeFrame(nil, re, nil)
			if err2 != nil {
				t.Fatalf("re-encoded frame failed to decode: %v", err2)
			}
			if len(rest2) != 0 {
				t.Fatalf("re-encoded frame left %d trailing bytes", len(rest2))
			}
			if !bytes.Equal(back, out) {
				t.Fatalf("codec %v round-trip mismatch: %d bytes vs %d", c, len(back), len(out))
			}
		}
		_ = rest // trailing bytes after a valid frame are legal (streams)
	})
}

// FuzzLZDecode drives the LZ token decoder directly with arbitrary
// payloads and claimed raw lengths: every return must be a typed error or
// a buffer of exactly rawLen bytes.
func FuzzLZDecode(f *testing.F) {
	text := bytes.Repeat([]byte("abcabcabcabc compressible payload "), 30)
	enc := LZ{}.Encode(nil, text)
	f.Add(enc, len(text))
	f.Add(enc[:len(enc)/2], len(text))
	f.Add([]byte{0x00}, 0)
	f.Add([]byte{0xf0, 1, 2, 3}, 4)

	f.Fuzz(func(t *testing.T, payload []byte, rawLen int) {
		if rawLen < 0 || rawLen > maxFrameRaw {
			return
		}
		out, err := LZ{}.Decode(nil, payload, rawLen)
		if err == nil && len(out) != rawLen {
			t.Fatalf("LZ decode returned %d bytes, claimed rawLen %d", len(out), rawLen)
		}
	})
}

// FuzzStreamReader feeds arbitrary byte streams to the block-stream
// reader: reads must terminate with either io.EOF (valid stream consumed)
// or a typed error, never a panic.
func FuzzStreamReader(f *testing.F) {
	var valid bytes.Buffer
	w := NewWriter(&valid, Config{Codec: LZ{}}, 512)
	for i := 0; i < 4; i++ {
		_, _ = w.Write(bytes.Repeat([]byte("streaming block payload "), 50))
	}
	_ = w.Close()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-3])
	f.Add([]byte{})
	f.Add([]byte{idLZ, 200, 200})

	f.Fuzz(func(t *testing.T, stream []byte) {
		r := NewReader(bytes.NewReader(stream), nil)
		buf := make([]byte, 4096)
		var total int
		for {
			n, err := r.Read(buf)
			total += n
			if err != nil {
				break
			}
			if total > 4*maxFrameRaw {
				t.Fatalf("reader produced %d bytes from a %d-byte stream", total, len(stream))
			}
		}
		_ = r.Close()
	})
}
