package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Flate wraps stdlib compress/flate as the high-ratio option: Huffman
// coding on top of LZ77 buys a better ratio than the LZ codec on text at
// several times the CPU. Writers are pooled and Reset between blocks so
// steady-state encoding reuses the (large) deflate state instead of
// reallocating it per block.
type Flate struct{}

// Name implements Codec.
func (Flate) Name() string { return "flate" }

// flateLevel trades a little ratio for speed; spill/shuffle blocks are
// re-encoded constantly, so BestSpeed's lazy-match-free path fits the
// same budget argument as the LZ codec.
const flateLevel = flate.BestSpeed

type flateEnc struct {
	w   *flate.Writer
	buf bytes.Buffer
}

var flateEncPool = sync.Pool{New: func() any {
	e := &flateEnc{}
	e.w, _ = flate.NewWriter(&e.buf, flateLevel) // level is valid: err impossible
	return e
}}

var flateDecPool = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// Encode implements Codec.
func (Flate) Encode(dst, src []byte) []byte {
	e := flateEncPool.Get().(*flateEnc)
	e.buf.Reset()
	e.w.Reset(&e.buf)
	e.w.Write(src) //nolint:errcheck // bytes.Buffer cannot fail
	e.w.Close()    //nolint:errcheck
	dst = append(dst, e.buf.Bytes()...)
	flateEncPool.Put(e)
	return dst
}

// Decode implements Codec.
func (Flate) Decode(dst, src []byte, rawLen int) ([]byte, error) {
	base := len(dst)
	if rawLen < 0 {
		return dst, fmt.Errorf("%w: flate: negative raw length", ErrCorrupt)
	}
	r := flateDecPool.Get().(io.ReadCloser)
	defer flateDecPool.Put(r)
	if err := r.(flate.Resetter).Reset(bytes.NewReader(src), nil); err != nil {
		return dst, fmt.Errorf("%w: flate: %v", ErrCorrupt, err)
	}
	// Read in bounded steps so a lying rawLen never drives allocation past
	// what the payload actually inflates to.
	for len(dst)-base < rawLen {
		step := min(rawLen-(len(dst)-base), allocStep)
		need := len(dst) + step
		if cap(dst) < need {
			grown := make([]byte, len(dst), need)
			copy(grown, dst)
			dst = grown
		}
		n, err := io.ReadFull(r, dst[len(dst):need])
		dst = dst[:len(dst)+n]
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return dst[:base], fmt.Errorf("%w: flate: %v", ErrCorrupt, err)
		}
	}
	// One extra byte probe detects a payload longer than the header claims.
	var probe [1]byte
	if n, _ := r.Read(probe[:]); n != 0 {
		return dst[:base], fmt.Errorf("%w: flate: payload longer than declared raw length", ErrCorrupt)
	}
	if len(dst)-base != rawLen {
		return dst[:base], fmt.Errorf("%w: flate: decoded %d bytes, header claims %d", ErrCorrupt, len(dst)-base, rawLen)
	}
	return dst, nil
}
