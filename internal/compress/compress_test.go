package compress

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"github.com/hamr-go/hamr/internal/metrics"
)

// corpora returns byte shapes matching what the repo actually compresses:
// repetitive word text, TeraSort-style fixed-layout lines, uvarint-framed
// KV records, plus adversarial shapes (random = incompressible, runs,
// empty-ish).
func corpora() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	words := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy",
		"dog", "hadoop", "hamr", "dataflow", "shuffle", "spill", "merge", "block", "codec"}
	var text bytes.Buffer
	for text.Len() < 200<<10 {
		fmt.Fprintf(&text, "%s ", words[rng.Intn(len(words))])
	}
	var tera bytes.Buffer
	for i := 0; tera.Len() < 150<<10; i++ {
		fmt.Fprintf(&tera, "%010x-%08d-payload-payload-payload\n", rng.Int63(), i)
	}
	randBytes := make([]byte, 64<<10)
	rng.Read(randBytes)
	return map[string][]byte{
		"text":  text.Bytes(),
		"tera":  tera.Bytes(),
		"runs":  bytes.Repeat([]byte("aaaaaaaabbbb"), 5000),
		"rand":  randBytes,
		"tiny":  []byte("x"),
		"empty": {},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, codec := range []Codec{LZ{}, Flate{}} {
		for name, data := range corpora() {
			t.Run(codec.Name()+"/"+name, func(t *testing.T) {
				enc := codec.Encode(nil, data)
				dec, err := codec.Decode(nil, enc, len(data))
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if !bytes.Equal(dec, data) {
					t.Fatalf("round trip mismatch: got %d bytes want %d", len(dec), len(data))
				}
				if name == "text" || name == "tera" || name == "runs" {
					if len(enc) >= len(data) {
						t.Errorf("no compression on %s: %d >= %d", name, len(enc), len(data))
					}
					t.Logf("%s/%s: %d -> %d (%.2fx)", codec.Name(), name, len(data), len(enc),
						float64(len(data))/float64(len(enc)))
				}
			})
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, codec := range []Codec{nil, LZ{}, Flate{}} {
		name := "none"
		if codec != nil {
			name = codec.Name()
		}
		for cname, data := range corpora() {
			t.Run(name+"/"+cname, func(t *testing.T) {
				frame := AppendFrame(codec, nil, data, 64, nil)
				dec, rest, err := DecodeFrame(nil, frame, nil)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if len(rest) != 0 {
					t.Fatalf("%d trailing bytes", len(rest))
				}
				if !bytes.Equal(dec, data) {
					t.Fatal("frame round trip mismatch")
				}
			})
		}
	}
}

// TestFrameStoredWhenIncompressible: random bytes must be stored raw, and
// under-min blocks skipped, with the skip counter advancing.
func TestFrameStoredWhenIncompressible(t *testing.T) {
	reg := metrics.NewRegistry()
	m := &Meter{In: reg.Counter("in"), Out: reg.Counter("out"), Skipped: reg.Counter("skip")}
	rnd := make([]byte, 4096)
	rand.New(rand.NewSource(7)).Read(rnd)
	frame := AppendFrame(LZ{}, nil, rnd, 0, m)
	if frame[0] != idRaw {
		t.Fatalf("incompressible block not stored raw (id %d)", frame[0])
	}
	if len(frame) > len(rnd)+8 {
		t.Fatalf("stored frame blew up: %d vs %d raw", len(frame), len(rnd))
	}
	small := []byte("hi")
	AppendFrame(LZ{}, nil, small, 64, m)
	if got := reg.Counter("skip").Value(); got != 2 {
		t.Fatalf("skipped = %d, want 2", got)
	}
	if got := reg.Counter("in").Value(); got != int64(len(rnd)+len(small)) {
		t.Fatalf("in.bytes = %d", got)
	}
}

// TestCorruptFrames is the corrupt-frame suite: truncations at every
// boundary, bad codec ids, and lying raw-length headers must return the
// matching typed error and never panic.
func TestCorruptFrames(t *testing.T) {
	data := []byte(strings.Repeat("compressible data ", 200))
	good := AppendFrame(LZ{}, nil, data, 0, nil)

	t.Run("empty", func(t *testing.T) {
		if _, _, err := DecodeFrame(nil, nil, nil); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("bad-codec-id", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[0] = 0x7F
		if _, _, err := DecodeFrame(nil, bad, nil); !errors.Is(err, ErrBadCodec) {
			t.Fatalf("err = %v, want ErrBadCodec", err)
		}
	})
	t.Run("truncated-everywhere", func(t *testing.T) {
		for cut := 0; cut < len(good); cut++ {
			_, _, err := DecodeFrame(nil, good[:cut], nil)
			if err == nil {
				t.Fatalf("cut at %d decoded successfully", cut)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut at %d: err = %v, want typed", cut, err)
			}
		}
	})
	t.Run("lying-raw-length", func(t *testing.T) {
		// Rebuild the header claiming double the raw length.
		body := good[headerLen(good):]
		lying := appendHeader(nil, good[0], uint64(len(data)*2), uint64(len(body)))
		lying = append(lying, body...)
		if _, _, err := DecodeFrame(nil, lying, nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("implausible-raw-length", func(t *testing.T) {
		lying := appendHeader(nil, good[0], 1<<40, 4)
		lying = append(lying, 1, 2, 3, 4)
		if _, _, err := DecodeFrame(nil, lying, nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("stored-length-mismatch", func(t *testing.T) {
		lying := appendHeader(nil, idRaw, 10, 4)
		lying = append(lying, 1, 2, 3, 4)
		if _, _, err := DecodeFrame(nil, lying, nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("garbage-lz-payload", func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 500; trial++ {
			garbage := make([]byte, rng.Intn(256))
			rng.Read(garbage)
			frame := appendHeader(nil, idLZ, uint64(rng.Intn(4096)), uint64(len(garbage)))
			frame = append(frame, garbage...)
			_, _, err := DecodeFrame(nil, frame, nil)
			// Any result is fine as long as errors are typed and no panic.
			if err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("untyped error: %v", err)
			}
		}
	})
}

func TestStreamRoundTrip(t *testing.T) {
	for _, codec := range []Codec{nil, LZ{}, Flate{}} {
		name := "none"
		if codec != nil {
			name = codec.Name()
		}
		for cname, data := range corpora() {
			t.Run(name+"/"+cname, func(t *testing.T) {
				var buf bytes.Buffer
				w := NewWriter(&buf, Config{Codec: codec}, 0)
				// Write in awkward chunk sizes to cross block boundaries.
				for off := 0; off < len(data); {
					n := min(777, len(data)-off)
					if _, err := w.Write(data[off : off+n]); err != nil {
						t.Fatal(err)
					}
					off += n
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				r := NewReader(bytes.NewReader(buf.Bytes()), nil)
				got, err := io.ReadAll(r)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("stream round trip mismatch: %d vs %d bytes", len(got), len(data))
				}
			})
		}
	}
}

// TestStreamTruncated: chopping a compressed stream mid-frame must be a
// typed error from the reader, not a hang or panic.
func TestStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Config{Codec: LZ{}}, 1<<10)
	w.Write(bytes.Repeat([]byte("spill data "), 2000)) //nolint:errcheck
	w.Close()                                          //nolint:errcheck
	full := buf.Bytes()
	r := NewReader(bytes.NewReader(full[:len(full)-5]), nil)
	_, err := io.ReadAll(r)
	if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want typed truncation", err)
	}
}

// TestStreamCloserChain: Writer.Close and Reader.Close must close an
// underlying io.Closer exactly once (the run-file teardown contract).
func TestStreamCloserChain(t *testing.T) {
	cc := &countingCloser{}
	w := NewWriter(cc, Config{}, 0)
	w.Write([]byte("abc")) //nolint:errcheck
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err) // double close is safe
	}
	if cc.closes != 1 {
		t.Fatalf("underlying closed %d times", cc.closes)
	}
}

type countingCloser struct {
	bytes.Buffer
	closes int
}

func (c *countingCloser) Close() error { c.closes++; return nil }

func TestLookup(t *testing.T) {
	for _, name := range []string{"", "none"} {
		if c, err := Lookup(name); err != nil || c != nil {
			t.Fatalf("Lookup(%q) = %v, %v", name, c, err)
		}
	}
	for _, name := range Names()[:2] {
		c, err := Lookup(name)
		if err != nil || c == nil || c.Name() != name {
			t.Fatalf("Lookup(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := Lookup("zstd"); err == nil {
		t.Fatal("Lookup(zstd) should fail")
	}
}

// headerLen parses how many bytes of frame are header.
func headerLen(frame []byte) int {
	p := frame[1:]
	_, n1 := uvarint(p)
	_, n2 := uvarint(p[n1:])
	return 1 + n1 + n2
}

func appendHeader(dst []byte, id byte, rawLen, encLen uint64) []byte {
	dst = append(dst, id)
	dst = appendUvarint(dst, rawLen)
	return appendUvarint(dst, encLen)
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func uvarint(p []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(p); i++ {
		v |= uint64(p[i]&0x7F) << (7 * i)
		if p[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}
