// Package compress is the dependency-free block-codec substrate behind
// every byte-moving layer of the simulated cluster: spill/merge run files
// (internal/extsort) and coalesced shuffle frames (internal/transport)
// optionally pass their payloads through a Codec before they hit the
// cost-modeled disk or fabric, so `disk.*.bytes` and `net.bytes` are
// charged on the bytes that would really move — the paper attributes most
// of Hadoop's cost to exactly those bytes (§3.1–§3.3), and real Hadoop
// deployments lean on mapred.compress.map.output for the same reason.
//
// Three codecs are provided: a hand-rolled LZ4-style LZ77 block codec
// (the default — byte-oriented, no entropy stage, tuned for the repo's
// repetitive KV shapes), a stdlib compress/flate wrapper for a
// high-ratio option, and a "none" passthrough. Frames are
// self-describing — codec id + uvarint raw length + uvarint payload
// length + payload — and incompressible blocks are stored raw, so a
// reader never needs out-of-band codec configuration and a pathological
// input costs at most the frame header. Scratch buffers are pooled; the
// hot path allocates nothing at steady state.
//
// Accounting is explicit: a Meter carries the codec counters
// (compress.in.bytes / compress.out.bytes / compress.skipped, plus a
// per-site output counter such as spill.compressed.bytes) and the
// modeled per-byte encode/decode CPU cost that keeps the simulation
// honest about the CPU-for-IO trade. A nil Meter is valid everywhere and
// costs nothing, mirroring the cache-off discipline of internal/hdfs.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
)

// Codec is a block codec: one Encode call compresses one self-contained
// block, one Decode call reverses it. Implementations append to the dst
// they are given (which may be nil) and return the extended slice; they
// must not retain src.
type Codec interface {
	// Encode appends the compressed form of src to dst.
	Encode(dst, src []byte) []byte
	// Decode appends the decompressed form of src to dst. rawLen is the
	// expected decoded size from the frame header; implementations use it
	// to bound work and MUST error (never panic or over-allocate) when
	// the payload disagrees with it.
	Decode(dst, src []byte, rawLen int) ([]byte, error)
	// Name is the codec's registry name ("lz", "flate", "none").
	Name() string
}

// Codec ids baked into frame headers. Stored frames (idRaw) are emitted
// whenever compression is skipped or does not pay, so every id below must
// decode bytes written by any build that knew it.
const (
	idRaw   = 0x00 // stored: payload is the raw block
	idLZ    = 0x01 // the LZ4-style LZ77 codec (lz.go)
	idFlate = 0x02 // stdlib compress/flate (flate.go)
)

// Typed frame errors. Callers match with errors.Is; all decode failures
// wrap one of these, so corrupt data is distinguishable from IO errors.
var (
	// ErrTruncated reports a frame shorter than its header promises.
	ErrTruncated = errors.New("compress: truncated frame")
	// ErrBadCodec reports an unknown codec id byte.
	ErrBadCodec = errors.New("compress: unknown codec id")
	// ErrCorrupt reports a payload that does not decode to the raw length
	// the header claims (lying headers included).
	ErrCorrupt = errors.New("compress: corrupt frame")
)

// maxFrameRaw is the sanity bound on a frame's claimed raw length: no
// layer in the repo frames blocks anywhere near this large, so a bigger
// claim is corruption, not data. It also bounds what a lying header can
// make Decode allocate.
const maxFrameRaw = 1 << 28 // 256 MiB

// allocStep caps how much DecodeFrame pre-grows dst ahead of decoded
// bytes actually materializing, so a lying raw-length header cannot turn
// into a huge allocation before the payload runs dry.
const allocStep = 1 << 20

// DefaultBlockSize is the raw-block granularity of the stream Writer:
// 64 KiB blocks keep LZ77 match offsets within the 2-byte window and
// align with the 64 KiB bufio layers above and below.
const DefaultBlockSize = 64 << 10

// codecs is the id-indexed registry used by frame decoding.
var codecs = [...]Codec{
	idRaw:   nil, // stored frames bypass the codec entirely
	idLZ:    LZ{},
	idFlate: Flate{},
}

// Lookup resolves a codec by registry name. The empty string and "none"
// both return a nil Codec (compression off) with no error, so option
// structs can pass user flags straight through.
func Lookup(name string) (Codec, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "lz":
		return LZ{}, nil
	case "flate":
		return Flate{}, nil
	}
	return nil, fmt.Errorf("compress: unknown codec %q (want lz, flate or none)", name)
}

// Names lists the codec names Lookup accepts, for flag help text.
func Names() []string { return []string{"lz", "flate", "none"} }

func idOf(c Codec) byte {
	switch c.(type) {
	case LZ:
		return idLZ
	case Flate:
		return idFlate
	}
	return idRaw
}

// Meter accounts for one compression site (spill files, shuffle frames).
// Every field may be zero/nil; a nil *Meter is valid and free. Counter
// semantics: In is raw bytes entering Encode, Out is frame bytes leaving
// it (header included), SiteOut is the same bytes on the site's own
// counter, Skipped counts frames stored raw (under the minimum size or
// incompressible). NsPerByte is the modeled CPU cost per raw byte, charged
// (and slept) on both encode and decode so the simulation prices the
// CPU-for-IO trade; Time accumulates those modeled charges.
type Meter struct {
	In, Out, Skipped, SiteOut *metrics.Counter
	Time                      *metrics.Timer
	NsPerByte                 float64
	Sleep                     func(time.Duration) // nil = time.Sleep
}

func (m *Meter) onEncode(rawLen, frameLen int, stored bool) {
	if stored {
		m.Skip()
	}
	m.Encoded(rawLen, frameLen)
}

// Encoded accounts one encoded frame: rawLen bytes in, frameLen bytes
// out, plus the modeled encode CPU. Exported for sites (the shuffle
// coalescer) that frame bytes themselves and decide afterward whether the
// compressed form goes on the wire.
func (m *Meter) Encoded(rawLen, frameLen int) {
	if m == nil {
		return
	}
	if m.In != nil {
		m.In.Add(int64(rawLen))
	}
	if m.Out != nil {
		m.Out.Add(int64(frameLen))
	}
	if m.SiteOut != nil {
		m.SiteOut.Add(int64(frameLen))
	}
	m.charge(rawLen)
}

// Skip counts one frame that went out uncompressed.
func (m *Meter) Skip() {
	if m != nil && m.Skipped != nil {
		m.Skipped.Inc()
	}
}

func (m *Meter) onDecode(rawLen int) {
	if m == nil {
		return
	}
	m.charge(rawLen)
}

// charge applies the modeled per-byte CPU cost: observed on the timer and
// slept in the caller's goroutine, the same shape as Cluster.ChargeNet.
func (m *Meter) charge(rawLen int) {
	if m.NsPerByte <= 0 || rawLen <= 0 {
		return
	}
	d := time.Duration(float64(rawLen) * m.NsPerByte)
	if d <= 0 {
		return
	}
	if m.Time != nil {
		m.Time.Observe(d)
	}
	if m.Sleep != nil {
		m.Sleep(d)
	} else {
		time.Sleep(d)
	}
}

// Config bundles a codec choice with its accounting for one site. The
// zero value means compression off: every consumer treats it as "do what
// you did before this package existed", bit for bit.
type Config struct {
	// Codec compresses each block/frame; nil disables compression.
	Codec Codec
	// MinBytes stores blocks smaller than this raw (counted as skipped):
	// tiny frames pay header plus codec overhead for nothing.
	MinBytes int
	// Meter carries the site's counters and modeled CPU cost (may be nil).
	Meter *Meter
}

// Enabled reports whether this config actually compresses.
func (c Config) Enabled() bool { return c.Codec != nil }

// scratchPool recycles encode scratch buffers across frames.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

// AppendFrame compresses src into one self-describing frame appended to
// dst. Frame layout:
//
//	codecID byte | uvarint(rawLen) | uvarint(encLen) | encLen payload bytes
//
// When codec is nil, src is under minBytes, or the codec output would not
// beat storing raw, the frame is stored (codecID 0, encLen == rawLen) and
// the meter counts a skip. The frame for empty src is the 3-byte header.
func AppendFrame(codec Codec, dst, src []byte, minBytes int, m *Meter) []byte {
	var enc []byte
	var sp *[]byte
	id := idRaw
	if codec != nil && len(src) >= minBytes && len(src) > 0 {
		sp = scratchPool.Get().(*[]byte)
		e := codec.Encode((*sp)[:0], src)
		*sp = e[:0:cap(e)] // keep grown capacity for the pool
		if len(e) < len(src) {
			enc = e
			id = int(idOf(codec))
		} // else incompressible: store raw
	}
	base := len(dst)
	stored := enc == nil
	body := enc
	if stored {
		body = src
	}
	var hdr [2*binary.MaxVarintLen64 + 1]byte
	hdr[0] = byte(id)
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(len(src)))
	n += binary.PutUvarint(hdr[n:], uint64(len(body)))
	dst = append(dst, hdr[:n]...)
	dst = append(dst, body...)
	if sp != nil {
		scratchPool.Put(sp)
	}
	m.onEncode(len(src), len(dst)-base, stored)
	return dst
}

// DecodeFrame decodes exactly one frame from the front of buf, appending
// the raw bytes to dst. It returns the extended dst and the remainder of
// buf after the frame. All failures wrap ErrTruncated, ErrBadCodec or
// ErrCorrupt; a lying raw-length header is detected without allocating
// more than the payload can actually produce (plus one allocStep).
func DecodeFrame(dst, buf []byte, m *Meter) (out, rest []byte, err error) {
	if len(buf) == 0 {
		return dst, buf, fmt.Errorf("%w: empty input", ErrTruncated)
	}
	id := buf[0]
	if int(id) >= len(codecs) || (id != idRaw && codecs[id] == nil) {
		return dst, buf, fmt.Errorf("%w: 0x%02x", ErrBadCodec, id)
	}
	p := buf[1:]
	rawLen, n := binary.Uvarint(p)
	if n <= 0 {
		return dst, buf, fmt.Errorf("%w: bad raw length", ErrTruncated)
	}
	p = p[n:]
	encLen, n := binary.Uvarint(p)
	if n <= 0 {
		return dst, buf, fmt.Errorf("%w: bad payload length", ErrTruncated)
	}
	p = p[n:]
	if rawLen > maxFrameRaw {
		return dst, buf, fmt.Errorf("%w: implausible raw length %d", ErrCorrupt, rawLen)
	}
	if encLen > uint64(len(p)) {
		return dst, buf, fmt.Errorf("%w: payload %d bytes, have %d", ErrTruncated, encLen, len(p))
	}
	body, rest := p[:encLen], p[encLen:]

	if id == idRaw {
		if uint64(len(body)) != rawLen {
			return dst, buf, fmt.Errorf("%w: stored frame %d bytes, header claims %d", ErrCorrupt, len(body), rawLen)
		}
		m.onDecode(int(rawLen))
		return append(dst, body...), rest, nil
	}
	out, err = codecs[id].Decode(dst, body, int(rawLen))
	if err != nil {
		return dst, buf, err
	}
	m.onDecode(int(rawLen))
	return out, rest, nil
}
