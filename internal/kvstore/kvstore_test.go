package kvstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/hamr-go/hamr/internal/transport"
)

func TestPutGetDelete(t *testing.T) {
	s := New(4, nil)
	tb := s.Table("t")
	tb.Put(0, "alpha", int64(1))
	tb.Put(1, "beta", "two")
	if v, ok := tb.Get(2, "alpha"); !ok || v.(int64) != 1 {
		t.Fatalf("Get(alpha) = %v, %v", v, ok)
	}
	if v, ok := tb.Get(0, "beta"); !ok || v.(string) != "two" {
		t.Fatalf("Get(beta) = %v, %v", v, ok)
	}
	if _, ok := tb.Get(0, "gamma"); ok {
		t.Fatal("Get(missing) succeeded")
	}
	tb.Delete(0, "alpha")
	if _, ok := tb.Get(0, "alpha"); ok {
		t.Fatal("deleted key still present")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestTablesAreIsolated(t *testing.T) {
	s := New(2, nil)
	s.Table("a").Put(0, "k", 1)
	if _, ok := s.Table("b").Get(0, "k"); ok {
		t.Fatal("key leaked across tables")
	}
	if got := s.Table("a"); got != s.Table("a") {
		t.Fatal("Table not stable")
	}
	s.Drop("a")
	if _, ok := s.Table("a").Get(0, "k"); ok {
		t.Fatal("dropped table retained data")
	}
}

func TestOwnerConsistentWithLocalShard(t *testing.T) {
	s := New(8, nil)
	tb := s.Table("t")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := tb.Owner(key)
		tb.Put(-1, key, i)
		if v, ok := tb.LocalGet(owner, key); !ok || v.(int) != i {
			t.Fatalf("key %q not in owner shard %d", key, owner)
		}
		for n := 0; n < 8; n++ {
			if n == owner {
				continue
			}
			if _, ok := tb.LocalGet(n, key); ok {
				t.Fatalf("key %q also in shard %d", key, n)
			}
		}
	}
}

func TestLocalPutBypassesHashing(t *testing.T) {
	s := New(4, nil)
	tb := s.Table("t")
	tb.LocalPut(3, "anything", "here")
	if _, ok := tb.LocalGet(3, "anything"); !ok {
		t.Fatal("LocalPut key missing from its node")
	}
	if keys := tb.LocalKeys(3); len(keys) != 1 || keys[0] != "anything" {
		t.Fatalf("LocalKeys(3) = %v", keys)
	}
	if tb.LocalLen(3) != 1 || tb.LocalLen(0) != 0 {
		t.Fatal("LocalLen wrong")
	}
}

func TestUpdateAtomicity(t *testing.T) {
	s := New(4, nil)
	tb := s.Table("counters")
	const goroutines, increments = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				tb.Update(g%4, "shared", func(old any) any {
					if old == nil {
						return int64(1)
					}
					return old.(int64) + 1
				})
			}
		}(g)
	}
	wg.Wait()
	v, _ := tb.Get(0, "shared")
	if v.(int64) != goroutines*increments {
		t.Fatalf("count = %d, want %d", v, goroutines*increments)
	}
}

func TestLocalUpdate(t *testing.T) {
	s := New(2, nil)
	tb := s.Table("t")
	got := tb.LocalUpdate(1, "k", func(old any) any {
		if old != nil {
			t.Errorf("old = %v on first update", old)
		}
		return 10
	})
	if got.(int) != 10 {
		t.Fatalf("LocalUpdate returned %v", got)
	}
	tb.LocalUpdate(1, "k", func(old any) any { return old.(int) + 5 })
	if v, _ := tb.LocalGet(1, "k"); v.(int) != 15 {
		t.Fatalf("after updates = %v", v)
	}
}

func TestRemoteChargeAccounting(t *testing.T) {
	var transfers int
	var bytes int64
	s := New(4, func(from, to transport.NodeID, n int64) {
		transfers++
		bytes += n
	})
	tb := s.Table("t")
	key := "somekey"
	owner := tb.Owner(key)
	local := owner
	remote := (owner + 1) % 4

	tb.Put(local, key, "value") // local: free
	if transfers != 0 {
		t.Fatalf("local put charged %d transfers", transfers)
	}
	tb.Put(remote, key, "value") // remote: charged
	if transfers != 1 || bytes == 0 {
		t.Fatalf("remote put: %d transfers, %d bytes", transfers, bytes)
	}
	transfers = 0
	if _, ok := tb.Get(remote, key); !ok {
		t.Fatal("get failed")
	}
	if transfers != 1 {
		t.Fatalf("remote get charged %d transfers", transfers)
	}
	transfers = 0
	tb.Get(local, key)
	if transfers != 0 {
		t.Fatalf("local get charged %d", transfers)
	}
	// Client access (-1) is never charged.
	transfers = 0
	tb.Put(-1, key, "v2")
	if transfers != 0 {
		t.Fatalf("client put charged %d", transfers)
	}
}

func TestClear(t *testing.T) {
	s := New(3, nil)
	tb := s.Table("t")
	for i := 0; i < 50; i++ {
		tb.Put(-1, fmt.Sprint(i), i)
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatalf("Len after Clear = %d", tb.Len())
	}
}

// Property: a Put followed by a Get from any node returns the value, and
// ownership is a pure function of the key.
func TestPutGetProperty(t *testing.T) {
	s := New(5, nil)
	tb := s.Table("prop")
	f := func(key string, val int64, fromA, fromB uint8) bool {
		a, b := int(fromA)%5, int(fromB)%5
		tb.Put(a, key, val)
		v, ok := tb.Get(b, key)
		if !ok || v.(int64) != val {
			return false
		}
		return tb.Owner(key) == tb.Owner(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroNodesClamped(t *testing.T) {
	s := New(0, nil)
	if s.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
	s.Table("t").Put(0, "k", 1)
	if v, ok := s.Table("t").Get(0, "k"); !ok || v.(int) != 1 {
		t.Fatal("single-shard store broken")
	}
}
