// Package kvstore implements the distributed in-memory key-value store the
// paper describes as the component generalizing K-Cliques' shared
// per-node graph memory ("this kind of distributed memory will be built
// into HAMR as a component called key-value store", §5.2).
//
// A Store is sharded across cluster nodes by key hash. Tables namespace
// keys. Access from the shard's own node is free; access from another node
// charges the cluster network model through the RemoteCharger callback,
// preserving the cost structure a real deployment would have.
package kvstore

import (
	"sync"

	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/transport"
)

// RemoteCharger accounts a cross-node transfer of approximately `bytes`
// bytes between two nodes.
type RemoteCharger func(from, to transport.NodeID, bytes int64)

// Store is a cluster-wide, node-sharded key-value store.
type Store struct {
	numNodes int
	charge   RemoteCharger
	mu       sync.Mutex
	tables   map[string]*Table
}

// New creates a store over numNodes shards. charge may be nil (free remote
// access, used in tests).
func New(numNodes int, charge RemoteCharger) *Store {
	if numNodes < 1 {
		numNodes = 1
	}
	return &Store{
		numNodes: numNodes,
		charge:   charge,
		tables:   make(map[string]*Table),
	}
}

// NumNodes returns the shard count.
func (s *Store) NumNodes() int { return s.numNodes }

// Table returns the named table, creating it on first use.
func (s *Store) Table(name string) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		t = newTable(s, name)
		s.tables[name] = t
	}
	return t
}

// Drop removes a table and its data.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	delete(s.tables, name)
	s.mu.Unlock()
}

// Table is one namespace of the store, sharded across nodes by key hash.
type Table struct {
	store  *Store
	name   string
	shards []shard
}

type shard struct {
	mu sync.RWMutex
	m  map[string]any
}

func newTable(s *Store, name string) *Table {
	t := &Table{store: s, name: name, shards: make([]shard, s.numNodes)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]any)
	}
	return t
}

// Owner returns the node owning a key.
func (t *Table) Owner(key string) int {
	return core.HashPartition(key, t.store.numNodes)
}

func (t *Table) chargeIfRemote(from, owner int, bytes int64) {
	if from >= 0 && from != owner && t.store.charge != nil {
		t.store.charge(transport.NodeID(from), transport.NodeID(owner), bytes)
	}
}

// Put stores value under key; `from` is the accessing node (-1 for a
// location-less client, which is never charged).
func (t *Table) Put(from int, key string, value any) {
	owner := t.Owner(key)
	t.chargeIfRemote(from, owner, int64(len(key))+core.ValueSize(value))
	sh := &t.shards[owner]
	sh.mu.Lock()
	sh.m[key] = value
	sh.mu.Unlock()
}

// Get fetches the value for key as observed from node `from`.
func (t *Table) Get(from int, key string) (any, bool) {
	owner := t.Owner(key)
	sh := &t.shards[owner]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		t.chargeIfRemote(from, owner, int64(len(key))+core.ValueSize(v))
	}
	return v, ok
}

// Delete removes key.
func (t *Table) Delete(from int, key string) {
	owner := t.Owner(key)
	sh := &t.shards[owner]
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// Update atomically applies fn to the current value of key (nil if absent)
// and stores the result. It returns the new value.
func (t *Table) Update(from int, key string, fn func(old any) any) any {
	owner := t.Owner(key)
	sh := &t.shards[owner]
	sh.mu.Lock()
	next := fn(sh.m[key])
	sh.m[key] = next
	sh.mu.Unlock()
	t.chargeIfRemote(from, owner, int64(len(key))+core.ValueSize(next))
	return next
}

// LocalPut stores a key in node's own shard regardless of hash ownership —
// node-local shared memory (the K-Cliques per-node graph, §5.2).
func (t *Table) LocalPut(node int, key string, value any) {
	sh := &t.shards[node]
	sh.mu.Lock()
	sh.m[key] = value
	sh.mu.Unlock()
}

// LocalGet reads a key from node's own shard only.
func (t *Table) LocalGet(node int, key string) (any, bool) {
	sh := &t.shards[node]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

// LocalUpdate atomically applies fn to a key in node's own shard.
func (t *Table) LocalUpdate(node int, key string, fn func(old any) any) any {
	sh := &t.shards[node]
	sh.mu.Lock()
	next := fn(sh.m[key])
	sh.m[key] = next
	sh.mu.Unlock()
	return next
}

// LocalKeys returns the keys stored in node's shard (unordered).
func (t *Table) LocalKeys(node int) []string {
	sh := &t.shards[node]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	keys := make([]string, 0, len(sh.m))
	for k := range sh.m {
		keys = append(keys, k)
	}
	return keys
}

// LocalLen returns the number of keys in node's shard.
func (t *Table) LocalLen(node int) int {
	sh := &t.shards[node]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.m)
}

// Len returns the total number of keys across shards.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.RLock()
		n += len(t.shards[i].m)
		t.shards[i].mu.RUnlock()
	}
	return n
}

// Clear removes every key in every shard.
func (t *Table) Clear() {
	for i := range t.shards {
		t.shards[i].mu.Lock()
		t.shards[i].m = make(map[string]any)
		t.shards[i].mu.Unlock()
	}
}
