// Package mapreduce implements a Hadoop-faithful MapReduce engine over the
// same simulated cluster substrate as the HAMR engine. It is the paper's
// comparison baseline (IDH 3.0) and deliberately reproduces the mechanisms
// §3 attributes Hadoop's behaviour to:
//
//   - input splits read from HDFS with block locality;
//   - a map-side sort buffer that spills sorted runs to local disk and
//     merges them into per-partition map output files (all on-disk);
//   - an optional combiner applied at spill and merge time;
//   - a barrier between the map and reduce phases — reduce computation
//     starts only after every map task finished;
//   - a shuffle in which reduce tasks fetch map output segments across the
//     network and merge them (externally, via local disk, when they exceed
//     the task heap);
//   - one "JVM" per task: tasks share nothing and carry an individual heap
//     limit, so a task whose working set exceeds its heap dies with an
//     out-of-memory error (§5.2, K-Cliques);
//   - per-job startup cost and HDFS materialization between chained jobs.
package mapreduce

import (
	"fmt"
	"time"

	"github.com/hamr-go/hamr/internal/core"
)

// Emitter receives pairs from mappers, combiners and reducers. Charge
// models allocation of user data structures against the task's heap;
// exceeding the heap fails the task with an *OOMError.
type Emitter interface {
	Emit(kv core.KV) error
	Charge(bytes int64) error
}

// Mapper transforms one input pair. For text input the key is empty and
// the value is one line. A fresh Mapper is created per task (the
// one-JVM-per-task model: no shared state between tasks).
type Mapper interface {
	Map(kv core.KV, out Emitter) error
}

// Reducer processes one key with all its values.
type Reducer interface {
	Reduce(key string, values []any, out Emitter) error
}

// Setupper is an optional Mapper/Reducer extension invoked once before the
// task's records (Hadoop's setup()).
type Setupper interface {
	Setup(out Emitter) error
}

// Cleanupper is an optional Mapper/Reducer extension invoked after the
// task's records (Hadoop's cleanup()).
type Cleanupper interface {
	Cleanup(out Emitter) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(kv core.KV, out Emitter) error

// Map implements Mapper.
func (f MapperFunc) Map(kv core.KV, out Emitter) error { return f(kv, out) }

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key string, values []any, out Emitter) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values []any, out Emitter) error {
	return f(key, values, out)
}

// Job describes one MapReduce job.
type Job struct {
	Name string
	// InputPrefixes are HDFS path prefixes; every matching file is split.
	InputPrefixes []string
	// Output is the HDFS prefix receiving part files.
	Output string
	// NewMapper creates one mapper per map task (required).
	NewMapper func() Mapper
	// NewReducer creates one reducer per reduce task; nil makes a map-only
	// job whose map output goes directly to HDFS.
	NewReducer func() Reducer
	// NewCombiner, if non-nil, is applied to map output at spill and merge
	// time (Hadoop's combiner).
	NewCombiner func() Reducer
	// NumReduces overrides the engine default.
	NumReduces int
	// Partitioner overrides hash partitioning of intermediate keys.
	Partitioner core.Partitioner
	// OutputFormat renders final pairs to text; default "key\tvalue\n".
	OutputFormat func(kv core.KV) string
	// MapHeapBytes / ReduceHeapBytes override the engine's per-task heap.
	MapHeapBytes    int64
	ReduceHeapBytes int64
}

// Config holds engine-wide defaults, scaled-down analogues of stock Hadoop
// settings.
type Config struct {
	// SortBufferBytes is the map-side sort buffer (io.sort.mb).
	SortBufferBytes int64
	// MergeFactor is the maximum number of runs merged in one pass
	// (io.sort.factor); more spills mean extra read+write passes over the
	// intermediate data.
	MergeFactor int
	// DefaultReduces is the reduce task count when a job does not say.
	DefaultReduces int
	// MapMemMB / ReduceMemMB are container sizes requested from YARN.
	MapMemMB    int
	ReduceMemMB int
	// MapHeapBytes / ReduceHeapBytes are per-task heap limits.
	MapHeapBytes    int64
	ReduceHeapBytes int64
	// JobStartup is charged once per job (JVM/AppMaster launch).
	JobStartup time.Duration
	// TaskStartup is charged once per task.
	TaskStartup time.Duration
	// TimeScale multiplies JobStartup and TaskStartup (0 treated as 1),
	// mirroring the disk/net cost models' TimeScale so startup overhead
	// can be scaled uniformly with every other modeled delay. Specs that
	// already state startup values in scaled units leave it unset.
	TimeScale float64
	// MaxTaskAttempts bounds how often a failed map/reduce task is re-run
	// before the job fails (mapreduce.task.maxattempts; default 4).
	// Container revocations do not consume attempts — like Hadoop, a
	// preempted task is rescheduled, not blamed — but are bounded
	// separately so a pathological injector cannot loop forever.
	MaxTaskAttempts int
	// Speculation enables Hadoop-style speculative execution: when the
	// cluster's fault injector declares a map task's first attempt a
	// straggler, a backup attempt races it and the first to finish wins
	// (mapreduce.map.speculative). Only jobs with reducers speculate —
	// map-only attempts publish HDFS files, which must stay single-writer.
	Speculation bool
}

// FillDefaults replaces zero fields.
func (c *Config) FillDefaults() {
	if c.SortBufferBytes <= 0 {
		c.SortBufferBytes = 1 << 20
	}
	if c.MergeFactor <= 0 {
		c.MergeFactor = 10
	}
	if c.DefaultReduces <= 0 {
		c.DefaultReduces = 4
	}
	if c.MapMemMB <= 0 {
		c.MapMemMB = 1024
	}
	if c.ReduceMemMB <= 0 {
		c.ReduceMemMB = 1024
	}
	if c.MapHeapBytes <= 0 {
		c.MapHeapBytes = 64 << 20
	}
	if c.ReduceHeapBytes <= 0 {
		c.ReduceHeapBytes = 64 << 20
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = 4
	}
}

// scaled applies the config's TimeScale to a startup delay.
func (c Config) scaled(d time.Duration) time.Duration {
	if c.TimeScale > 0 && c.TimeScale != 1 {
		return time.Duration(float64(d) * c.TimeScale)
	}
	return d
}

// OOMError reports a task exceeding its modeled heap.
type OOMError struct {
	Task string
	Need int64
	Heap int64
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("mapreduce: %s: java.lang.OutOfMemoryError (simulated): needs %d bytes, heap %d",
		e.Task, e.Need, e.Heap)
}

// Result reports a completed job (or chain).
type Result struct {
	Name         string
	Duration     time.Duration
	MapTasks     int
	ReduceTasks  int
	Spills       int64
	ShuffleBytes int64
	OutputFiles  []string
	// Jobs holds per-job results for a chain.
	Jobs []*Result
}
