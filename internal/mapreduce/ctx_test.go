package mapreduce

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/core"
)

// slowMapper signals its first record and then paces itself, giving the
// test a window to cancel while map tasks are genuinely in flight.
type slowMapper struct {
	started   chan struct{}
	startOnce *sync.Once
}

func (m slowMapper) Map(kv core.KV, out Emitter) error {
	m.startOnce.Do(func() { close(m.started) })
	time.Sleep(time.Millisecond)
	return out.Emit(core.KV{Key: "k", Value: int64(1)})
}

// TestRunContextCancelMidMap cancels the job context while map tasks are
// running: RunContext must return an error matching core.ErrJobCanceled in
// bounded time instead of finishing the job.
func TestRunContextCancelMidMap(t *testing.T) {
	c := newTestCluster(t, 3)
	writeCorpus(t, c, "in/corpus.txt", 600)
	started := make(chan struct{})
	once := &sync.Once{}
	job := Job{
		Name:          "cancel-mid-map",
		InputPrefixes: []string{"in/"},
		Output:        "out",
		NewMapper:     func() Mapper { return slowMapper{started: started, startOnce: once} },
		NewReducer:    func() Reducer { return wcReducer{} },
		NumReduces:    2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := NewEngine(c, Config{})

	type outcome struct {
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := e.RunContext(ctx, job)
		done <- outcome{err}
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("map phase never started")
	}
	cancel()
	select {
	case o := <-done:
		if !errors.Is(o.err, core.ErrJobCanceled) {
			t.Fatalf("RunContext after cancel = %v, want ErrJobCanceled", o.err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("canceled job did not return in bounded time")
	}
}

// TestRunContextBackgroundMatchesRun: Run is RunContext(Background) — a
// plain run through the context-first entry point still succeeds.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	c := newTestCluster(t, 2)
	want := writeCorpus(t, c, "in/corpus.txt", 120)
	e := NewEngine(c, Config{})
	if _, err := e.RunContext(context.Background(), wordCountJob(false)); err != nil {
		t.Fatal(err)
	}
	if got := parseCounts(t, c, "out"); len(got) != len(want) {
		t.Fatalf("output keys = %d, want %d", len(got), len(want))
	}
}
