package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
)

// sumMapper re-parses "word\tcount" lines from an upstream job's output;
// chained with wcReducer it re-aggregates the same totals.
type sumMapper struct{}

func (sumMapper) Map(kv core.KV, out Emitter) error {
	line := kv.Value.(string)
	tab := strings.IndexByte(line, '\t')
	if tab < 0 {
		return nil
	}
	n, err := strconv.ParseInt(line[tab+1:], 10, 64)
	if err != nil {
		return fmt.Errorf("parse %q: %w", line, err)
	}
	return out.Emit(core.KV{Key: line[:tab], Value: n})
}

func newCachedCluster(t testing.TB, nodes, cacheMB int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		NumNodes:      nodes,
		HDFSBlockSize: 4 << 10,
		HDFSCacheMB:   cacheMB,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// chainJobs is the iterative reread pattern the cache targets: wordcount
// materializes "mid" in HDFS, and the second job's map phase rereads it.
func chainJobs() []Job {
	j1 := wordCountJob(false)
	j1.Output = "mid"
	j2 := Job{
		Name:          "resum",
		InputPrefixes: []string{"mid/"},
		Output:        "out",
		NewMapper:     func() Mapper { return sumMapper{} },
		NewReducer:    func() Reducer { return wcReducer{} },
		NumReduces:    3,
	}
	return []Job{j1, j2}
}

// TestChainedJobsCacheInvariance runs the same two-job chain with the
// block cache off and on: outputs must match exactly, while the cached
// run shows cache hits and cache-hot map placement.
func TestChainedJobsCacheInvariance(t *testing.T) {
	run := func(cacheMB int) (map[string]int64, *cluster.Cluster) {
		c := newCachedCluster(t, 4, cacheMB)
		writeCorpus(t, c, "in/corpus.txt", 400)
		e := NewEngine(c, Config{})
		jobs := chainJobs()
		if _, err := e.RunChain(jobs[0], jobs[1]); err != nil {
			t.Fatal(err)
		}
		return parseCounts(t, c, "out/"), c
	}

	off, cOff := run(0)
	on, cOn := run(8)

	if len(off) == 0 {
		t.Fatal("no output")
	}
	if len(off) != len(on) {
		t.Fatalf("output cardinality differs: %d vs %d", len(off), len(on))
	}
	for w, n := range off {
		if on[w] != n {
			t.Errorf("count[%s] = %d cached vs %d uncached", w, on[w], n)
		}
	}
	snapOff, snapOn := cOff.Metrics().Snapshot(), cOn.Metrics().Snapshot()
	if v := snapOn.Get("hdfs.cache.hits"); v == 0 {
		t.Error("cached chain recorded no cache hits")
	}
	if v := snapOn.Get("mr.map.cachehot"); v == 0 {
		t.Error("cached chain placed no map task cache-hot")
	}
	if v := snapOff.Get("hdfs.cache.hits") + snapOff.Get("hdfs.cache.misses"); v != 0 {
		t.Errorf("cache-off chain touched the cache (%d)", v)
	}
	// The second job's input rereads (and OpenLines slack reads) come
	// from memory: strictly fewer bytes served by the hdfs read path.
	slowOff := snapOff.Get("hdfs.bytes.local") + snapOff.Get("hdfs.bytes.remote")
	slowOn := snapOn.Get("hdfs.bytes.local") + snapOn.Get("hdfs.bytes.remote")
	if slowOn >= slowOff {
		t.Errorf("cached chain served %d slow-path bytes, uncached %d; want a reduction", slowOn, slowOff)
	}
}

// BenchmarkIterativeChain measures the two-job chained run end to end;
// the Cache variant serves the intermediate rereads from the block cache.
func BenchmarkIterativeChain(b *testing.B) {
	for _, tc := range []struct {
		name    string
		cacheMB int
	}{{"NoCache", 0}, {"Cache", 8}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := newCachedCluster(b, 4, tc.cacheMB)
				writeCorpus(b, c, "in/corpus.txt", 400)
				e := NewEngine(c, Config{})
				jobs := chainJobs()
				b.StartTimer()
				if _, err := e.RunChain(jobs[0], jobs[1]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
