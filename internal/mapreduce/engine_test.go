package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
)

func newTestCluster(t testing.TB, nodes int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		NumNodes:      nodes,
		HDFSBlockSize: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

type wcMapper struct{}

func (wcMapper) Map(kv core.KV, out Emitter) error {
	for _, w := range strings.Fields(kv.Value.(string)) {
		if err := out.Emit(core.KV{Key: w, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

type wcReducer struct{}

func (wcReducer) Reduce(key string, values []any, out Emitter) error {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return out.Emit(core.KV{Key: key, Value: total})
}

func writeCorpus(t testing.TB, c *cluster.Cluster, path string, lines int) map[string]int64 {
	t.Helper()
	words := []string{"ant", "bee", "cat", "dog", "elk", "fox"}
	want := map[string]int64{}
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		for j := 0; j < 6; j++ {
			w := words[(i*13+j*5)%len(words)]
			want[w]++
			sb.WriteString(w)
			sb.WriteByte(' ')
		}
		sb.WriteByte('\n')
	}
	if err := c.FS().WriteFile(path, []byte(sb.String()), -1); err != nil {
		t.Fatal(err)
	}
	return want
}

func parseCounts(t testing.TB, c *cluster.Cluster, prefix string) map[string]int64 {
	t.Helper()
	got := map[string]int64{}
	for _, f := range c.FS().List(prefix) {
		data, err := c.FS().ReadFile(f, -1)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			parts := strings.SplitN(line, "\t", 2)
			n, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			got[parts[0]] += n
		}
	}
	return got
}

func wordCountJob(withCombiner bool) Job {
	j := Job{
		Name:          "wordcount",
		InputPrefixes: []string{"in/"},
		Output:        "out",
		NewMapper:     func() Mapper { return wcMapper{} },
		NewReducer:    func() Reducer { return wcReducer{} },
		NumReduces:    3,
	}
	if withCombiner {
		j.NewCombiner = func() Reducer { return wcReducer{} }
	}
	return j
}

func TestMapReduceWordCount(t *testing.T) {
	for _, tc := range []struct {
		name     string
		combiner bool
	}{{"plain", false}, {"combiner", true}} {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCluster(t, 4)
			want := writeCorpus(t, c, "in/corpus.txt", 400)
			e := NewEngine(c, Config{})
			res, err := e.Run(wordCountJob(tc.combiner))
			if err != nil {
				t.Fatal(err)
			}
			if res.MapTasks == 0 || res.ReduceTasks != 3 {
				t.Errorf("tasks: %d maps, %d reduces", res.MapTasks, res.ReduceTasks)
			}
			got := parseCounts(t, c, "out/")
			if len(got) != len(want) {
				t.Fatalf("%d distinct words, want %d", len(got), len(want))
			}
			for w, n := range want {
				if got[w] != n {
					t.Errorf("count[%q] = %d, want %d", w, got[w], n)
				}
			}
			if tc.combiner && res.ShuffleBytes == 0 {
				// With 4 nodes some segment always crosses nodes; the
				// combiner shrinks but does not eliminate shuffle.
				t.Log("no shuffle bytes recorded (all reduce tasks co-located)")
			}
		})
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	cPlain := newTestCluster(t, 4)
	writeCorpus(t, cPlain, "in/corpus.txt", 800)
	plain, err := NewEngine(cPlain, Config{}).Run(wordCountJob(false))
	if err != nil {
		t.Fatal(err)
	}
	cComb := newTestCluster(t, 4)
	writeCorpus(t, cComb, "in/corpus.txt", 800)
	comb, err := NewEngine(cComb, Config{}).Run(wordCountJob(true))
	if err != nil {
		t.Fatal(err)
	}
	if comb.ShuffleBytes >= plain.ShuffleBytes {
		t.Errorf("combiner did not shrink shuffle: %d >= %d", comb.ShuffleBytes, plain.ShuffleBytes)
	}
}

func TestMapSideSpill(t *testing.T) {
	c := newTestCluster(t, 2)
	writeCorpus(t, c, "in/corpus.txt", 600)
	e := NewEngine(c, Config{SortBufferBytes: 2 << 10})
	if _, err := e.Run(wordCountJob(false)); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Counter("mr.spills").Value(); got < 2 {
		t.Errorf("expected multiple spills with a 2KiB sort buffer, got %d", got)
	}
	got := parseCounts(t, c, "out/")
	if len(got) != 6 {
		t.Errorf("%d distinct words after spilling, want 6", len(got))
	}
}

func TestReduceOOM(t *testing.T) {
	c := newTestCluster(t, 2)
	writeCorpus(t, c, "in/corpus.txt", 400)
	e := NewEngine(c, Config{})
	job := wordCountJob(false)
	// Reducer that "builds a graph in memory" per task, like the paper's
	// K-Cliques reduce (§5.2) — exceeding the task heap must fail the job.
	job.NewReducer = func() Reducer {
		return ReducerFunc(func(key string, values []any, out Emitter) error {
			return out.Charge(1 << 20)
		})
	}
	job.ReduceHeapBytes = 1 << 10
	_, err := e.Run(job)
	if err == nil {
		t.Fatal("expected OOM, job succeeded")
	}
	if !strings.Contains(err.Error(), "OutOfMemoryError") {
		t.Fatalf("want OOM error, got %v", err)
	}
}

func TestMapOnlyJob(t *testing.T) {
	c := newTestCluster(t, 2)
	writeCorpus(t, c, "in/corpus.txt", 50)
	e := NewEngine(c, Config{})
	res, err := e.Run(Job{
		Name:          "upper",
		InputPrefixes: []string{"in/"},
		Output:        "out",
		NewMapper: func() Mapper {
			return MapperFunc(func(kv core.KV, out Emitter) error {
				return out.Emit(core.KV{Key: strings.ToUpper(kv.Value.(string)), Value: int64(1)})
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceTasks != 0 {
		t.Errorf("map-only job ran %d reduces", res.ReduceTasks)
	}
	if len(res.OutputFiles) == 0 {
		t.Error("map-only job produced no output files")
	}
}

func TestRunChain(t *testing.T) {
	// Job 1 counts words; job 2 inverts to (count, word) and groups.
	c := newTestCluster(t, 3)
	writeCorpus(t, c, "in/corpus.txt", 200)
	e := NewEngine(c, Config{})
	j1 := wordCountJob(true)
	j1.Output = "mid"
	j2 := Job{
		Name:          "invert",
		InputPrefixes: []string{"mid/"},
		Output:        "out",
		NewMapper: func() Mapper {
			return MapperFunc(func(kv core.KV, out Emitter) error {
				parts := strings.SplitN(kv.Value.(string), "\t", 2)
				return out.Emit(core.KV{Key: parts[1], Value: parts[0]})
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(key string, values []any, out Emitter) error {
				ws := make([]string, len(values))
				for i, v := range values {
					ws[i] = v.(string)
				}
				sort.Strings(ws)
				return out.Emit(core.KV{Key: key, Value: strings.Join(ws, ",")})
			})
		},
		NumReduces: 2,
	}
	res, err := e.RunChain(j1, j2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("chain ran %d jobs, want 2", len(res.Jobs))
	}
	var lines int
	for _, f := range c.FS().List("out/") {
		data, _ := c.FS().ReadFile(f, -1)
		lines += strings.Count(string(data), "\n")
	}
	if lines == 0 {
		t.Error("chained job produced no output")
	}
}

func TestLocalityPreferred(t *testing.T) {
	c := newTestCluster(t, 4)
	writeCorpus(t, c, "in/corpus.txt", 2000)
	e := NewEngine(c, Config{})
	if _, err := e.Run(wordCountJob(true)); err != nil {
		t.Fatal(err)
	}
	local := c.Metrics().Counter("mr.map.local").Value()
	remote := c.Metrics().Counter("mr.map.remote").Value()
	if local == 0 {
		t.Errorf("no data-local map tasks (local=%d remote=%d)", local, remote)
	}
	if local < remote {
		t.Errorf("locality scheduling worse than random: local=%d remote=%d", local, remote)
	}
}

func TestJobValidation(t *testing.T) {
	c := newTestCluster(t, 1)
	e := NewEngine(c, Config{})
	if _, err := e.Run(Job{Name: "x", Output: "o", NewMapper: func() Mapper { return wcMapper{} }}); err == nil {
		t.Error("job without input accepted")
	}
	if _, err := e.Run(Job{Name: "x", InputPrefixes: []string{"in/"}, NewMapper: func() Mapper { return wcMapper{} }}); err == nil {
		t.Error("job without output accepted")
	}
	if _, err := e.Run(Job{Name: "x", InputPrefixes: []string{"in/"}, Output: "o"}); err == nil {
		t.Error("job without mapper accepted")
	}
	if _, err := e.Run(Job{Name: "x", InputPrefixes: []string{"missing/"}, Output: "o",
		NewMapper: func() Mapper { return wcMapper{} }}); err == nil {
		t.Error("job with missing input accepted")
	}
}

func TestMapperFailurePropagates(t *testing.T) {
	c := newTestCluster(t, 2)
	writeCorpus(t, c, "in/corpus.txt", 50)
	e := NewEngine(c, Config{})
	job := wordCountJob(false)
	job.NewMapper = func() Mapper {
		return MapperFunc(func(kv core.KV, out Emitter) error {
			return fmt.Errorf("bad record")
		})
	}
	if _, err := e.Run(job); err == nil || !strings.Contains(err.Error(), "bad record") {
		t.Fatalf("mapper failure not propagated: %v", err)
	}
}
