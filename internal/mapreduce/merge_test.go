package mapreduce

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hamr-go/hamr/internal/extsort"
	"github.com/hamr-go/hamr/internal/storage"
)

func sortedRun(recs []rec) []rec {
	rs := append([]rec(nil), recs...)
	extsort.SortStable(rs, recCompare)
	return rs
}

func openRuns(t *testing.T, disk storage.Disk, names []string) ([]extsort.Source[rec], func()) {
	t.Helper()
	var readers []*extsort.RunReader[rec]
	var sources []extsort.Source[rec]
	for _, name := range names {
		rr, err := extsort.OpenRun(disk, name, runFormat{})
		if err != nil {
			t.Fatal(err)
		}
		readers = append(readers, rr)
		sources = append(sources, rr)
	}
	return sources, func() {
		for _, rr := range readers {
			rr.Close()
		}
	}
}

func TestWriteOpenRunRoundTrip(t *testing.T) {
	disk := storage.NewMemDisk(0)
	run := sortedRun([]rec{
		{part: 0, key: "a", value: int64(1)},
		{part: 0, key: "b", value: "str"},
		{part: 2, key: "a", value: 3.5},
	})
	if err := extsort.WriteRun(disk, "r", runFormat{}, run); err != nil {
		t.Fatal(err)
	}
	rr, err := extsort.OpenRun(disk, "r", runFormat{})
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	var got []rec
	for {
		r, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if len(got) != len(run) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range run {
		if got[i].part != run[i].part || got[i].key != run[i].key {
			t.Errorf("record %d: %+v != %+v", i, got[i], run[i])
		}
	}
	if got[1].value.(string) != "str" || got[2].value.(float64) != 3.5 {
		t.Error("values corrupted")
	}
}

func TestMergeRunsGroupsAcrossRuns(t *testing.T) {
	disk := storage.NewMemDisk(0)
	runs := [][]rec{
		{{part: 0, key: "a", value: int64(1)}, {part: 0, key: "c", value: int64(2)}},
		{{part: 0, key: "a", value: int64(3)}, {part: 1, key: "a", value: int64(4)}},
		{{part: 0, key: "b", value: int64(5)}},
	}
	var names []string
	for i, r := range runs {
		name := fmt.Sprintf("r%d", i)
		if err := extsort.WriteRun(disk, name, runFormat{}, sortedRun(r)); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	sources, closeAll := openRuns(t, disk, names)
	defer closeAll()
	type groupKey struct {
		part int
		key  string
	}
	got := map[groupKey]int{}
	var order []groupKey
	err := extsort.MergeGrouped(sources, recCompare, nil, func(group []rec) error {
		gk := groupKey{group[0].part, group[0].key}
		got[gk] = len(group)
		order = append(order, gk)
		for _, g := range group {
			if g.part != gk.part || g.key != gk.key {
				t.Errorf("mixed group: %+v", group)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[groupKey]int{
		{0, "a"}: 2, {0, "b"}: 1, {0, "c"}: 1, {1, "a"}: 1,
	}
	if len(got) != len(want) {
		t.Fatalf("groups = %v", got)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("group %v has %d values, want %d", k, got[k], n)
		}
	}
	// Groups must arrive in (part, key) order.
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if a.part > b.part || (a.part == b.part && a.key >= b.key) {
			t.Errorf("groups out of order: %v before %v", a, b)
		}
	}
}

// Property: merging K disk runs yields exactly the multiset of the inputs,
// grouped by (part, key), in sorted group order — for any input split.
func TestMergeRunsProperty(t *testing.T) {
	iter := 0
	f := func(raw []uint8, runsRaw uint8) bool {
		iter++
		disk := storage.NewMemDisk(0)
		numRuns := int(runsRaw)%4 + 1
		runs := make([][]rec, numRuns)
		want := map[string]int{}
		for i, b := range raw {
			r := rec{
				part:  int(b) % 3,
				key:   fmt.Sprintf("k%d", (int(b)/3)%7),
				value: int64(i),
			}
			runs[i%numRuns] = append(runs[i%numRuns], r)
			want[fmt.Sprintf("%d/%s", r.part, r.key)]++
		}
		var readers []*extsort.RunReader[rec]
		var sources []extsort.Source[rec]
		for i, r := range runs {
			if len(r) == 0 {
				continue
			}
			name := fmt.Sprintf("p%d-r%d", iter, i)
			if err := extsort.WriteRun(disk, name, runFormat{}, sortedRun(r)); err != nil {
				return false
			}
			rr, err := extsort.OpenRun(disk, name, runFormat{})
			if err != nil {
				return false
			}
			readers = append(readers, rr)
			sources = append(sources, rr)
		}
		got := map[string]int{}
		err := extsort.MergeGrouped(sources, recCompare, nil, func(group []rec) error {
			got[fmt.Sprintf("%d/%s", group[0].part, group[0].key)] += len(group)
			return nil
		})
		for _, rr := range readers {
			rr.Close()
		}
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for k, n := range want {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(61))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the in-memory reduce merge (slice sources through the same
// loser tree) yields every record in key order, like the old dedicated
// mergeInMemory helper did.
func TestMergeInMemoryMatchesSort(t *testing.T) {
	f := func(raw []uint8, segsRaw uint8) bool {
		numSegs := int(segsRaw)%5 + 1
		segs := make([][]rec, numSegs)
		var all []string
		for i, b := range raw {
			key := fmt.Sprintf("k%02d", int(b)%20)
			segs[i%numSegs] = append(segs[i%numSegs], rec{key: key, value: int64(i)})
			all = append(all, key)
		}
		sources := make([]extsort.Source[rec], numSegs)
		for i := range segs {
			extsort.SortStable(segs[i], recCompare)
			sources[i] = extsort.SliceSource(segs[i])
		}
		var merged []rec
		err := extsort.Merge(sources, recCompare, func(r rec, _ int) error {
			merged = append(merged, r)
			return nil
		})
		if err != nil {
			return false
		}
		if len(merged) != len(all) {
			return false
		}
		for i := 1; i < len(merged); i++ {
			if merged[i-1].key > merged[i].key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(67))}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFactorMultiPass(t *testing.T) {
	// With MergeFactor 2 and many spills, the map task must do extra
	// merge passes (visible in the mr.merge.passes counter) and still
	// produce correct results.
	c := newTestCluster(t, 2)
	want := writeCorpus(t, c, "in/corpus.txt", 600)
	e := NewEngine(c, Config{SortBufferBytes: 1 << 10, MergeFactor: 2})
	if _, err := e.Run(wordCountJob(false)); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Counter("mr.merge.passes").Value(); got == 0 {
		t.Error("no multi-pass merges with MergeFactor 2")
	}
	got := parseCounts(t, c, "out/")
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}
