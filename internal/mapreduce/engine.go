package mapreduce

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/extsort"
	"github.com/hamr-go/hamr/internal/faults"
	"github.com/hamr-go/hamr/internal/hdfs"
	"github.com/hamr-go/hamr/internal/par"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/trace"
	"github.com/hamr-go/hamr/internal/transport"
	"github.com/hamr-go/hamr/internal/vtime"
)

var jobSeq atomic.Int64

// Engine runs MapReduce jobs on a simulated cluster.
type Engine struct {
	c   *cluster.Cluster
	cfg Config
}

// NewEngine creates an engine over the cluster with the given defaults.
func NewEngine(c *cluster.Cluster, cfg Config) *Engine {
	cfg.FillDefaults()
	return &Engine{c: c, cfg: cfg}
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Run executes one job and blocks until it completes.
func (e *Engine) Run(job Job) (*Result, error) {
	return e.RunContext(context.Background(), job)
}

// RunContext executes one job, honoring ctx cancellation at task
// boundaries: before dispatching each map or reduce attempt, and between
// retry attempts. A canceled run returns an error matching
// core.ErrJobCanceled.
func (e *Engine) RunContext(ctx context.Context, job Job) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res, err := e.run(ctx, job)
	if res != nil {
		res.Duration = time.Since(start)
	}
	return res, err
}

// RunChain executes jobs sequentially — Hadoop's way of expressing
// multi-phase computations (§3.2): every boundary pays job startup and a
// full HDFS materialization of the intermediate data.
func (e *Engine) RunChain(jobs ...Job) (*Result, error) {
	return e.RunChainContext(context.Background(), jobs...)
}

// RunChainContext is RunChain honoring ctx cancellation; a canceled chain
// stops at the current job boundary.
func (e *Engine) RunChainContext(ctx context.Context, jobs ...Job) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	total := &Result{Name: "chain"}
	for i := range jobs {
		r, err := e.RunContext(ctx, jobs[i])
		if r != nil {
			total.Jobs = append(total.Jobs, r)
			total.MapTasks += r.MapTasks
			total.ReduceTasks += r.ReduceTasks
			total.Spills += r.Spills
			total.ShuffleBytes += r.ShuffleBytes
			total.OutputFiles = r.OutputFiles
		}
		if err != nil {
			total.Duration = time.Since(start)
			return total, fmt.Errorf("mapreduce: chain job %d (%s): %w", i, jobs[i].Name, err)
		}
	}
	total.Duration = time.Since(start)
	return total, nil
}

type segInfo struct {
	name string
	node int
	size int64
}

type mapResult struct {
	node     int
	segments []segInfo // one per reduce partition (nil entries allowed)
}

// canceled wraps a ctx expiry as this job's typed cancellation error.
func canceled(name string, ctx context.Context) error {
	return fmt.Errorf("mapreduce: job %q: %w: %v", name, core.ErrJobCanceled, context.Cause(ctx))
}

func (e *Engine) run(ctx context.Context, job Job) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, canceled(job.Name, ctx)
	}
	if job.NewMapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", job.Name)
	}
	if len(job.InputPrefixes) == 0 {
		return nil, fmt.Errorf("mapreduce: job %q has no input", job.Name)
	}
	if job.Output == "" {
		return nil, fmt.Errorf("mapreduce: job %q has no output", job.Name)
	}
	numReduces := job.NumReduces
	if numReduces <= 0 {
		numReduces = e.cfg.DefaultReduces
	}
	partition := job.Partitioner
	if partition == nil {
		partition = core.HashPartition
	}
	format := job.OutputFormat
	if format == nil {
		format = func(kv core.KV) string { return fmt.Sprintf("%s\t%v\n", kv.Key, kv.Value) }
	}
	mapHeap := job.MapHeapBytes
	if mapHeap <= 0 {
		mapHeap = e.cfg.MapHeapBytes
	}
	reduceHeap := job.ReduceHeapBytes
	if reduceHeap <= 0 {
		reduceHeap = e.cfg.ReduceHeapBytes
	}

	jobID := jobSeq.Add(1)
	reg := e.c.Metrics()
	reg.Inc("mr.jobs")

	// Job root span on the driver lane; task spans parent to it through
	// the per-run job tag.
	tr := e.c.Tracer()
	tag := tr.JobTag(jobID)
	jsp := tr.Start(-1, "", tag+"/job:"+job.Name, "job", "")
	defer jsp.End()

	// Per-job startup: AppMaster + JVM launch overhead (§3.2: "the
	// overhead of creating and starting new jobs"), charged on the
	// driver lane — job launch is serial with everything.
	if e.cfg.JobStartup > 0 {
		d := e.cfg.scaled(e.cfg.JobStartup)
		reg.Observe("mr.job.startup", d)
		var ssp trace.Span
		if tr.Enabled() {
			ssp = tr.Start(-1, tag+"/job:"+job.Name, tag+"/job-startup", "startup", "startup")
		}
		e.c.Clock().Charge(vtime.Driver, vtime.Startup, d)
		ssp.End()
	}

	var splits []hdfs.Split
	for _, p := range job.InputPrefixes {
		ss, err := e.c.FS().SplitsGlob(p)
		if err != nil {
			return nil, err
		}
		splits = append(splits, ss...)
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("mapreduce: job %q: no input files under %v", job.Name, job.InputPrefixes)
	}

	res := &Result{Name: job.Name, MapTasks: len(splits)}

	// ---- Map phase ----
	mapResults := make([]*mapResult, len(splits))
	// specWG tracks speculative loser attempts still draining; they must
	// finish (and their output be discarded) before the job returns.
	var specWG sync.WaitGroup
	defer specWG.Wait()
	g := par.NewGroup(0)
	for i := range splits {
		i := i
		g.Go(func() error {
			if ctx.Err() != nil {
				return canceled(job.Name, ctx)
			}
			mr, err := e.runMapAttempts(ctx, job, jobID, i, splits[i], numReduces, partition, format, mapHeap, &specWG)
			if err != nil {
				return err
			}
			mapResults[i] = mr
			return nil
		})
	}
	// The map/reduce barrier (§3.2): reduce computation starts only after
	// every map task has finished.
	if err := g.Wait(); err != nil {
		return res, err
	}

	if job.NewReducer == nil {
		// Map-only job: map output already in HDFS.
		res.OutputFiles = e.c.FS().List(job.Output + "/")
		res.Spills = reg.Counter("mr.spills").Value()
		return res, nil
	}

	// ---- Reduce phase ----
	res.ReduceTasks = numReduces
	rg := par.NewGroup(0)
	var shuffleBytes atomic.Int64
	for r := 0; r < numReduces; r++ {
		r := r
		rg.Go(func() error {
			if ctx.Err() != nil {
				return canceled(job.Name, ctx)
			}
			var n int64
			err := e.retryTask(ctx, job.Name, fmt.Sprintf("%s/retry:reduce-%05d", tag, r), 0, func(attempt int) error {
				nn, rerr := e.runReduceTask(job, jobID, r, attempt, mapResults, format, reduceHeap)
				n = nn
				return rerr
			})
			shuffleBytes.Add(n)
			return err
		})
	}
	if err := rg.Wait(); err != nil {
		return res, err
	}
	res.ShuffleBytes = shuffleBytes.Load()
	res.OutputFiles = e.c.FS().List(job.Output + "/")

	// Clean intermediate map outputs.
	for _, mr := range mapResults {
		e.removeSegments(mr)
	}
	return res, nil
}

// specAttemptBase numbers speculative backup attempts so their fault dice
// are independent of the primary's retries.
const specAttemptBase = 100

// revokeBudget bounds container-revocation reschedules per task runner.
const revokeBudget = 8

// retryTask drives one task's attempt sequence, starting at attempt base:
// any failure is retried until the MaxTaskAttempts budget is spent
// (mapreduce.task.maxattempts). A container revocation does not consume an
// attempt — like Hadoop, a preempted task is rescheduled, not blamed — but
// total reschedules are bounded by revokeBudget so the job cannot loop.
// A canceled ctx stops the sequence at the next attempt boundary.
func (e *Engine) retryTask(ctx context.Context, jobName, traceID string, base int, run func(attempt int) error) error {
	reg := e.c.Metrics()
	fails := 0
	for seq := 0; ; seq++ {
		if ctx.Err() != nil {
			return canceled(jobName, ctx)
		}
		err := run(base + seq)
		if err == nil {
			return nil
		}
		if faults.IsRevocation(err) {
			if seq+1 >= e.cfg.MaxTaskAttempts+revokeBudget {
				return err
			}
		} else {
			fails++
			if fails >= e.cfg.MaxTaskAttempts {
				return err
			}
		}
		reg.Inc("mr.task.retries")
		if tr := e.c.Tracer(); tr.Enabled() {
			tr.Instant(-1, "", fmt.Sprintf("%s:%d", traceID, base+seq), "retry", 0)
		}
	}
}

// runMapAttempts runs map task taskID to completion, retrying failures
// and — when the cluster's fault injector declares the first attempt a
// straggler and Speculation is on — racing a backup attempt against it,
// Hadoop's speculative execution. The first success wins; the loser keeps
// running and its output is discarded when it finishes (specWG lets the
// job wait for that drain).
func (e *Engine) runMapAttempts(ctx context.Context, job Job, jobID int64, taskID int, split hdfs.Split,
	numReduces int, partition core.Partitioner, format func(core.KV) string, heap int64,
	specWG *sync.WaitGroup) (*mapResult, error) {

	tr := e.c.Tracer()
	tag := tr.JobTag(jobID)
	run := func(base int) (*mapResult, error) {
		var mr *mapResult
		err := e.retryTask(ctx, job.Name, fmt.Sprintf("%s/retry:map-%05d", tag, taskID), base, func(attempt int) error {
			m, rerr := e.runMapTask(job, jobID, taskID, attempt, split, numReduces, partition, format, heap)
			mr = m
			return rerr
		})
		if err != nil {
			return nil, err
		}
		return mr, nil
	}

	inj := e.c.Faults()
	site := fmt.Sprintf("map-%05d", taskID)
	if !e.cfg.Speculation || job.NewReducer == nil || !inj.WouldStraggle(site) {
		return run(0)
	}

	reg := e.c.Metrics()
	reg.Inc("mr.speculative.launched")
	if tr.Enabled() {
		tr.Instant(-1, tag, fmt.Sprintf("%s/spec:launch:map-%05d", tag, taskID), "speculative", 0)
	}
	type specRes struct {
		mr     *mapResult
		err    error
		backup bool
	}
	ch := make(chan specRes, 2)
	go func() {
		m, err := run(0)
		ch <- specRes{mr: m, err: err}
	}()
	go func() {
		m, err := run(specAttemptBase)
		ch <- specRes{mr: m, err: err, backup: true}
	}()
	first := <-ch
	if first.err != nil {
		// The fast attempt failed outright; use whatever the other one
		// produces, or surface the first error.
		second := <-ch
		if second.err != nil {
			return nil, first.err
		}
		if second.backup {
			reg.Inc("mr.speculative.won")
			if tr.Enabled() {
				tr.Instant(-1, tag, fmt.Sprintf("%s/spec:won:map-%05d", tag, taskID), "speculative", 0)
			}
		}
		return second.mr, nil
	}
	if first.backup {
		reg.Inc("mr.speculative.won")
		if tr.Enabled() {
			tr.Instant(-1, tag, fmt.Sprintf("%s/spec:won:map-%05d", tag, taskID), "speculative", 0)
		}
	}
	specWG.Add(1)
	go func() {
		defer specWG.Done()
		if second := <-ch; second.err == nil {
			e.removeSegments(second.mr)
		}
	}()
	return first.mr, nil
}

// removeSegments drops a map attempt's output segments (job cleanup and
// speculative losers).
func (e *Engine) removeSegments(mr *mapResult) {
	if mr == nil {
		return
	}
	for _, seg := range mr.segments {
		if seg.name != "" {
			_ = e.c.Disk(seg.node).Remove(seg.name)
		}
	}
}

// ---------------------------------------------------------------------------
// map task

// rec is one intermediate record in the map-side sort buffer.
type rec struct {
	part  int
	key   string
	value any
}

// recCompare orders intermediate records by (partition, key) — the order
// spill runs are written in and merges consume them in.
func recCompare(a, b rec) int {
	if a.part != b.part {
		return a.part - b.part
	}
	return strings.Compare(a.key, b.key)
}

// runFormat stores recs in spill/intermediate/fetch run files: the record
// key embeds the partition as a 4-byte big-endian prefix so merging
// preserves (partition, key) order, the value is codec-encoded.
type runFormat struct{}

func (runFormat) AppendRecord(kbuf, vbuf []byte, r rec) ([]byte, []byte, error) {
	var pb [4]byte
	binary.BigEndian.PutUint32(pb[:], uint32(r.part))
	kbuf = append(kbuf, pb[:]...)
	kbuf = append(kbuf, r.key...)
	vbuf, err := core.EncodeValue(vbuf, r.value)
	return kbuf, vbuf, err
}

func (runFormat) DecodeRecord(key, value []byte) (rec, error) {
	if len(key) < 4 {
		return rec{}, fmt.Errorf("mapreduce: corrupt run record")
	}
	v, _, err := core.DecodeValue(value)
	if err != nil {
		return rec{}, err
	}
	return rec{
		part:  int(binary.BigEndian.Uint32(key[:4])),
		key:   string(key[4:]),
		value: v,
	}, nil
}

// segFormat stores recs in per-partition map output segments: the
// partition is implied by the file, so the key is stored raw.
type segFormat struct{ part int }

func (segFormat) AppendRecord(kbuf, vbuf []byte, r rec) ([]byte, []byte, error) {
	kbuf = append(kbuf, r.key...)
	vbuf, err := core.EncodeValue(vbuf, r.value)
	return kbuf, vbuf, err
}

func (f segFormat) DecodeRecord(key, value []byte) (rec, error) {
	v, _, err := core.DecodeValue(value)
	if err != nil {
		return rec{}, err
	}
	return rec{part: f.part, key: string(key), value: v}, nil
}

// taskEmitter is the Emitter implementation shared by all task kinds; sink
// receives emitted pairs, heap tracks modeled user allocations.
type taskEmitter struct {
	task string
	heap int64
	used int64
	sink func(kv core.KV) error
}

func (t *taskEmitter) Emit(kv core.KV) error { return t.sink(kv) }

func (t *taskEmitter) Charge(bytes int64) error {
	t.used += bytes
	if t.heap > 0 && t.used > t.heap {
		return &OOMError{Task: t.task, Need: t.used, Heap: t.heap}
	}
	return nil
}

func (e *Engine) runMapTask(job Job, jobID int64, taskID, attempt int, split hdfs.Split,
	numReduces int, partition core.Partitioner, format func(core.KV) string, heap int64) (mres *mapResult, rerr error) {

	reg := e.c.Metrics()
	inj := e.c.Faults()
	tr := e.c.Tracer()
	tag := tr.JobTag(jobID)
	site := fmt.Sprintf("map-%05d", taskID)
	// Cache-aware placement (HDFS centralized-cache-management style): a
	// node holding the split's block hot in its page cache beats a merely
	// disk-local replica holder; fall back to the replica list otherwise.
	pref := -1
	if len(split.CachedHosts) > 0 {
		pref = int(split.CachedHosts[0])
	} else if len(split.Hosts) > 0 {
		pref = int(split.Hosts[0])
	}
	ct, err := e.c.Yarn().Allocate(e.cfg.MapMemMB, pref)
	if err != nil {
		return nil, err
	}
	defer e.c.Yarn().Release(ct)

	// Attempt 0 keeps the historical name so fault-free runs are
	// bit-identical; retries and speculative attempts get their own
	// namespace so a straggling loser can never clobber the winner.
	// Trace IDs use tname — the job-relative task name — so two identical
	// runs produce identical timelines regardless of the process-global
	// job sequence (the tag already identifies the job).
	taskName := fmt.Sprintf("job%d/map-%05d", jobID, taskID)
	tname := fmt.Sprintf("map-%05d", taskID)
	if attempt > 0 {
		taskName = fmt.Sprintf("%s-a%d", taskName, attempt)
		tname = fmt.Sprintf("%s-a%d", tname, attempt)
	}
	var tsp trace.Span
	if tr.Enabled() {
		tsp = tr.Start(ct.Node, tag, tag+"/"+tname, "map", "cpu")
	}
	defer func() { tsp.EndBytes(split.Length) }()

	if e.cfg.TaskStartup > 0 {
		var ssp trace.Span
		if tr.Enabled() {
			ssp = tr.Start(ct.Node, tag+"/"+tname, tag+"/"+tname+"/startup", "startup", "startup")
		}
		e.c.Clock().Charge(ct.Node, vtime.Startup, e.cfg.scaled(e.cfg.TaskStartup))
		ssp.End()
	}
	// An injected straggler stalls only the original attempt; retries and
	// speculative backups run at full speed.
	if attempt == 0 {
		if d, ok := inj.Straggle(site); ok {
			if tr.Enabled() {
				tr.Instant(ct.Node, tag+"/"+tname, tag+"/"+tname+"/straggle", "fault", 0)
			}
			e.c.Clock().Charge(ct.Node, vtime.Fault, d)
		}
	}
	node := ct.Node
	local := false
	for _, h := range split.Hosts {
		if int(h) == node {
			local = true
			break
		}
	}
	if local {
		reg.Inc("mr.map.local")
	} else {
		reg.Inc("mr.map.remote")
	}
	for _, h := range split.CachedHosts {
		if int(h) == node {
			reg.Inc("mr.map.cachehot")
			break
		}
	}

	disk := e.c.Disk(node)

	mt := &mapTask{
		e:          e,
		job:        job,
		name:       taskName,
		node:       node,
		disk:       disk,
		numReduces: numReduces,
		partition:  partition,
		cc:         e.c.SpillCompression(),
		tr:         tr,
		tag:        tag,
		tname:      tname,
	}

	mapOnly := job.NewReducer == nil
	var hdfsOut *bufio.Writer
	var hdfsFile *hdfs.Writer
	if mapOnly {
		hdfsFile = e.c.FS().Create(fmt.Sprintf("%s/part-m-%05d", job.Output, taskID), transport.NodeID(node))
		hdfsOut = bufio.NewWriter(hdfsFile)
	}
	defer func() {
		if rerr == nil {
			return
		}
		// Failed attempt: roll back everything it wrote — spills, segments
		// and any unpublished HDFS output — so a retry starts clean and no
		// partial files leak.
		if hdfsFile != nil {
			hdfsFile.Abort()
		}
		for _, f := range disk.List(taskName + "/") {
			_ = disk.Remove(f)
		}
	}()

	em := &taskEmitter{task: taskName, heap: heap}
	em.sink = func(kv core.KV) error {
		if mapOnly {
			_, err := hdfsOut.WriteString(format(kv))
			return err
		}
		return mt.collect(kv, em)
	}

	// The map-side sort buffer: spills when it exceeds io.sort.mb, each
	// spill run combined (if configured) and released from the task heap.
	mt.sorter = extsort.NewRunBuilder(extsort.BuilderConfig[rec]{
		Cmp:       recCompare,
		Format:    runFormat{},
		Disk:      disk,
		RunName:   func(i int) string { return fmt.Sprintf("%s/spill-%04d", taskName, i) },
		Threshold: e.cfg.SortBufferBytes,
		Transform: mt.combineRun,
		OnSpill: func(i int, bytes int64) {
			reg.Inc("mr.spills")
			reg.Add("mr.spill.bytes", bytes)
			if tr.Enabled() {
				tr.Instant(node, tag+"/"+tname,
					fmt.Sprintf("%s/%s/spill-%04d", tag, tname, i), "spill", bytes)
			}
			em.Charge(-em.used) // buffer released
			em.used = 0
		},
		Compress: mt.cc,
	})

	mapper := job.NewMapper()
	if s, ok := mapper.(Setupper); ok {
		if err := s.Setup(em); err != nil {
			return nil, fmt.Errorf("%s setup: %w", taskName, err)
		}
	}
	it, err := e.c.FS().OpenLines(split, transport.NodeID(node), 0)
	if err != nil {
		return nil, fmt.Errorf("%s open split: %w", taskName, err)
	}
	for {
		line, off, ok := it.Next()
		if !ok {
			break
		}
		kv := core.KV{Key: fmt.Sprintf("%d", off), Value: line}
		if err := mapper.Map(kv, em); err != nil {
			return nil, fmt.Errorf("%s: %w", taskName, err)
		}
	}
	if c, ok := mapper.(Cleanupper); ok {
		if err := c.Cleanup(em); err != nil {
			return nil, fmt.Errorf("%s cleanup: %w", taskName, err)
		}
	}

	// Mid-task fault checkpoint: the attempt has done its work but
	// committed nothing a retry could not redo.
	if err := inj.KillMapTask(site, attempt); err != nil {
		return nil, err
	}
	if inj.Revoke(site, attempt) {
		e.c.Yarn().Revoke(ct)
		return nil, &faults.Error{Op: "yarn.revoke", Site: fmt.Sprintf("%s#%d", site, attempt)}
	}

	if mapOnly {
		if err := hdfsOut.Flush(); err != nil {
			return nil, err
		}
		if err := hdfsFile.Close(); err != nil {
			return nil, err
		}
		return &mapResult{node: node}, nil
	}

	segs, err := mt.finish()
	if err != nil {
		return nil, err
	}
	return &mapResult{node: node, segments: segs}, nil
}

// mapTask holds the map-side sort buffer and spill machinery.
type mapTask struct {
	e          *Engine
	job        Job
	name       string
	node       int
	disk       storage.Disk
	numReduces int
	partition  core.Partitioner
	// cc is the cluster's spill-site compression config (zero when off):
	// spill runs, intermediate merge runs and shuffle segments all share it,
	// so segment sizes — and the shuffle bytes charged from them — shrink
	// with compression on.
	cc compress.Config
	// tr/tag/tname carry the job's span recorder into spill and merge
	// callbacks (tr is nil with tracing off; tag is the per-run job label,
	// tname the job-relative task name trace IDs are built from).
	tr    *trace.Tracer
	tag   string
	tname string

	sorter *extsort.RunBuilder[rec]
}

// collect adds one intermediate pair to the sort buffer; the run builder
// spills when the buffer exceeds io.sort.mb.
func (mt *mapTask) collect(kv core.KV, em *taskEmitter) error {
	p := mt.partition(kv.Key, mt.numReduces)
	sz := kv.Size()
	if err := em.Charge(sz); err != nil {
		return err
	}
	return mt.sorter.Add(rec{part: p, key: kv.Key, value: kv.Value}, sz)
}

// combineRun applies the job's combiner to a sorted run, collapsing each
// (partition, key) group. It is the run builder's spill transform.
func (mt *mapTask) combineRun(in []rec) ([]rec, error) {
	if mt.job.NewCombiner == nil || len(in) == 0 {
		return in, nil
	}
	comb := mt.job.NewCombiner()
	var out []rec
	i := 0
	for i < len(in) {
		j := i
		for j < len(in) && in[j].part == in[i].part && in[j].key == in[i].key {
			j++
		}
		values := make([]any, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, in[k].value)
		}
		part := in[i].part
		ce := &taskEmitter{task: mt.name + "/combine", heap: 0}
		ce.sink = func(kv core.KV) error {
			out = append(out, rec{part: part, key: kv.Key, value: kv.Value})
			return nil
		}
		if err := comb.Reduce(in[i].key, values, ce); err != nil {
			return nil, err
		}
		i = j
	}
	mt.e.c.Metrics().Inc("mr.combines")
	return out, nil
}

// finish performs the final spill and merges all spills into one sorted
// per-partition segment file each, returning the segment list.
func (mt *mapTask) finish() ([]segInfo, error) {
	if err := mt.sorter.Spill(); err != nil {
		return nil, err
	}
	// The merge span covers every pass plus the final per-partition write;
	// its byte count is the summed segment output. Error paths leave the
	// span unended, which drops it from the recording.
	var msp trace.Span
	if mt.tr.Enabled() {
		msp = mt.tr.Start(mt.node, mt.tag+"/"+mt.tname, mt.tag+"/"+mt.tname+"/merge", "merge", "disk")
	}
	// Multi-pass merge: while more runs exist than the merge factor
	// allows, merge batches into intermediate runs — every extra pass
	// rereads and rewrites the intermediate data on disk, as Hadoop's
	// io.sort.factor does.
	reg := mt.e.c.Metrics()
	spills, err := extsort.MergeToFactorC(mt.disk, runFormat{}, recCompare,
		mt.sorter.Runs(), mt.e.cfg.MergeFactor,
		func(pass int) string { return fmt.Sprintf("%s/interm-%04d", mt.name, pass) },
		func() { reg.Inc("mr.merge.passes") }, mt.cc)
	if err != nil {
		return nil, err
	}
	// Final merge of the remaining runs (disk read) into per-partition
	// segments (disk write) — Hadoop's merge phase.
	sources := make([]extsort.Source[rec], 0, len(spills))
	readers := make([]*extsort.RunReader[rec], 0, len(spills))
	for _, s := range spills {
		rr, err := extsort.OpenRunC(mt.disk, s, runFormat{}, mt.cc)
		if err != nil {
			for _, r := range readers {
				r.Close()
			}
			return nil, err
		}
		readers = append(readers, rr)
		sources = append(sources, rr)
	}
	defer func() {
		for _, r := range readers {
			r.Close()
		}
		for _, s := range spills {
			_ = mt.disk.Remove(s)
		}
	}()

	segs := make([]segInfo, mt.numReduces)
	writers := make([]*extsort.RunWriter[rec], mt.numReduces)
	names := make([]string, mt.numReduces)
	defer func() {
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
	}()

	var comb Reducer
	if mt.job.NewCombiner != nil && len(readers) > 1 {
		comb = mt.job.NewCombiner()
	}
	write := func(r rec) error {
		w := writers[r.part]
		if w == nil {
			names[r.part] = fmt.Sprintf("%s/segment-%05d", mt.name, r.part)
			var err error
			w, err = extsort.NewRunWriterC(mt.disk, names[r.part], segFormat{part: r.part}, mt.cc)
			if err != nil {
				return err
			}
			writers[r.part] = w
		}
		return w.Write(r)
	}

	err = extsort.MergeGrouped(sources, recCompare, nil, func(group []rec) error {
		if comb != nil && len(group) > 1 {
			values := make([]any, len(group))
			for i, g := range group {
				values[i] = g.value
			}
			part := group[0].part
			ce := &taskEmitter{task: mt.name + "/merge-combine"}
			ce.sink = func(kv core.KV) error {
				return write(rec{part: part, key: kv.Key, value: kv.Value})
			}
			return comb.Reduce(group[0].key, values, ce)
		}
		for _, g := range group {
			if err := write(g); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var segBytes int64
	for p := 0; p < mt.numReduces; p++ {
		if writers[p] == nil {
			continue
		}
		if err := writers[p].Close(); err != nil {
			return nil, err
		}
		writers[p] = nil
		size, err := mt.disk.Size(names[p])
		if err != nil {
			return nil, err
		}
		segs[p] = segInfo{name: names[p], node: mt.node, size: size}
		segBytes += size
	}
	msp.EndBytes(segBytes)
	return segs, nil
}

// ---------------------------------------------------------------------------
// reduce task

func (e *Engine) runReduceTask(job Job, jobID int64, r, attempt int, maps []*mapResult,
	format func(core.KV) string, heap int64) (fetched int64, rerr error) {

	reg := e.c.Metrics()
	inj := e.c.Faults()
	cc := e.c.SpillCompression()
	tr := e.c.Tracer()
	tag := tr.JobTag(jobID)
	site := fmt.Sprintf("reduce-%05d", r)
	ct, err := e.c.Yarn().Allocate(e.cfg.ReduceMemMB, -1)
	if err != nil {
		return 0, err
	}
	defer e.c.Yarn().Release(ct)
	node := ct.Node
	taskName := fmt.Sprintf("job%d/reduce-%05d", jobID, r)
	// tname is the job-relative task name trace IDs are built from: two
	// identical runs then produce identical timelines regardless of the
	// process-global job sequence (the tag already identifies the job).
	tname := fmt.Sprintf("reduce-%05d", r)
	if attempt > 0 {
		taskName = fmt.Sprintf("%s-a%d", taskName, attempt)
		tname = fmt.Sprintf("%s-a%d", tname, attempt)
	}
	var tsp trace.Span
	if tr.Enabled() {
		tsp = tr.Start(node, tag, tag+"/"+tname, "reduce", "cpu")
	}
	defer func() { tsp.EndBytes(fetched) }()
	if e.cfg.TaskStartup > 0 {
		var ssp trace.Span
		if tr.Enabled() {
			ssp = tr.Start(node, tag+"/"+tname, tag+"/"+tname+"/startup", "startup", "startup")
		}
		e.c.Clock().Charge(ct.Node, vtime.Startup, e.cfg.scaled(e.cfg.TaskStartup))
		ssp.End()
	}
	disk := e.c.Disk(node)
	var out *hdfs.Writer
	defer func() {
		if rerr == nil {
			return
		}
		// Failed attempt: drop fetched shuffle runs and abort any partial
		// output so the retry re-fetches into a clean namespace.
		if out != nil {
			out.Abort()
		}
		for _, f := range disk.List(taskName + "/") {
			_ = disk.Remove(f)
		}
	}()

	// ---- shuffle fetch ----
	var local []string // local copies of segments (external merge path)
	var memSegs [][]rec
	var memBytes int64
	external := false

	// Transfers are charged per source node with the segment sizes summed
	// (one bulk fetch per map host, the way Hadoop's fetcher pulls all of
	// a host's map outputs over one connection) rather than per segment:
	// byte totals are identical, only the per-message latency count drops.
	remoteBytes := make(map[int]int64)

	for mi, mr := range maps {
		if mr == nil || len(mr.segments) <= r || mr.segments[r].name == "" {
			continue
		}
		seg := mr.segments[r]
		// Read the segment from the map node's disk (charges that disk),
		// then pay the network transfer to this node. With spill compression
		// on, segments are compressed run files: seg.size (the on-disk and
		// on-wire bytes below) is the compressed size, and the fetch pays
		// the modeled decode CPU here.
		var fsp trace.Span
		if tr.Enabled() {
			fsp = tr.Start(seg.node, tag+"/"+tname,
				fmt.Sprintf("%s/%s/fetch-%05d", tag, tname, mi), "fetch", "disk")
		}
		src, err := e.c.Disk(seg.node).Open(seg.name)
		if err != nil {
			return fetched, fmt.Errorf("%s fetch %s: %w", taskName, seg.name, err)
		}
		var segSrc io.Reader = src
		if cc.Enabled() {
			segSrc = compress.NewReader(src, cc.Meter)
		}
		rdr := storage.NewRecordReader(segSrc)
		var recs []rec
		var segBytes int64
		for {
			rc, err := rdr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				rdr.Close()
				return fetched, err
			}
			v, _, err := core.DecodeValue(rc.Value)
			if err != nil {
				rdr.Close()
				return fetched, err
			}
			recs = append(recs, rec{part: r, key: string(rc.Key), value: v})
			segBytes += int64(len(rc.Key)) + int64(len(rc.Value))
		}
		rdr.Close()
		fsp.EndBytes(seg.size)
		if seg.node != node {
			remoteBytes[seg.node] += seg.size
		}
		fetched += seg.size

		if !external && memBytes+segBytes > heap/2 {
			// Spill previously fetched in-memory segments and switch to
			// the external (on-disk) merge path, like Hadoop's
			// merge-to-disk when fetched data exceeds the in-memory
			// shuffle budget.
			external = true
			for i, ms := range memSegs {
				name := fmt.Sprintf("%s/fetch-%05d", taskName, i)
				if err := extsort.WriteRunC(disk, name, runFormat{}, ms, cc); err != nil {
					return fetched, err
				}
				local = append(local, name)
			}
			memSegs = nil
			memBytes = 0
		}
		if external {
			name := fmt.Sprintf("%s/fetch-%05d", taskName, len(local))
			if err := extsort.WriteRunC(disk, name, runFormat{}, recs, cc); err != nil {
				return fetched, err
			}
			local = append(local, name)
			reg.Inc("mr.reduce.disk.merges")
			if tr.Enabled() {
				tr.Instant(node, tag+"/"+tname,
					fmt.Sprintf("%s/%s/rspill-%05d", tag, tname, len(local)-1), "spill", segBytes)
			}
		} else {
			memSegs = append(memSegs, recs)
			memBytes += segBytes
		}
	}

	// Pay the grouped network transfers (sources in a fixed order so runs
	// are deterministic).
	sources := make([]int, 0, len(remoteBytes))
	for src := range remoteBytes {
		sources = append(sources, src)
	}
	slices.Sort(sources)
	for _, src := range sources {
		var ssp trace.Span
		if tr.Enabled() {
			ssp = tr.Start(node, tag+"/"+tname,
				fmt.Sprintf("%s/%s/shuffle:from%d", tag, tname, src), "shuffle", "net")
		}
		e.c.ChargeNet(transport.NodeID(src), transport.NodeID(node), remoteBytes[src])
		reg.Add("mr.shuffle.bytes", remoteBytes[src])
		ssp.EndBytes(remoteBytes[src])
	}

	// Mid-merge fault checkpoint: the shuffle is fetched but the merge has
	// not started; a retry re-fetches from the (still present) map output.
	if err := inj.KillReduceTask(site, attempt); err != nil {
		return fetched, err
	}
	if inj.Revoke(site, attempt) {
		e.c.Yarn().Revoke(ct)
		return fetched, &faults.Error{Op: "yarn.revoke", Site: fmt.Sprintf("%s#%d", site, attempt)}
	}

	// ---- merge + reduce ----
	out = e.c.FS().Create(fmt.Sprintf("%s/part-r-%05d", job.Output, r), transport.NodeID(node))
	w := bufio.NewWriter(out)
	em := &taskEmitter{task: taskName, heap: heap}
	em.sink = func(kv core.KV) error {
		_, err := w.WriteString(format(kv))
		return err
	}
	reducer := job.NewReducer()
	if s, ok := reducer.(Setupper); ok {
		if err := s.Setup(em); err != nil {
			return fetched, fmt.Errorf("%s setup: %w", taskName, err)
		}
	}

	reduceGroup := func(group []rec) error {
		values := make([]any, len(group))
		var groupBytes int64
		for i, g := range group {
			values[i] = g.value
			groupBytes += core.ValueSize(g.value)
		}
		if heap > 0 && groupBytes > heap {
			return &OOMError{Task: taskName, Need: groupBytes, Heap: heap}
		}
		return reducer.Reduce(group[0].key, values, em)
	}

	if external {
		mergeSrcs := make([]extsort.Source[rec], 0, len(local))
		readers := make([]*extsort.RunReader[rec], 0, len(local))
		for _, name := range local {
			rr, oerr := extsort.OpenRunC(disk, name, runFormat{}, cc)
			if oerr != nil {
				for _, r := range readers {
					r.Close()
				}
				return fetched, oerr
			}
			readers = append(readers, rr)
			mergeSrcs = append(mergeSrcs, rr)
		}
		err = extsort.MergeGrouped(mergeSrcs, recCompare, nil, reduceGroup)
		for _, rr := range readers {
			rr.Close()
		}
		for _, name := range local {
			_ = disk.Remove(name)
		}
		if err != nil {
			return fetched, fmt.Errorf("%s: %w", taskName, err)
		}
	} else {
		mergeSrcs := make([]extsort.Source[rec], len(memSegs))
		for i, ms := range memSegs {
			mergeSrcs[i] = extsort.SliceSource(ms)
		}
		if err := extsort.MergeGrouped(mergeSrcs, recCompare, nil, reduceGroup); err != nil {
			return fetched, fmt.Errorf("%s: %w", taskName, err)
		}
	}

	if c, ok := reducer.(Cleanupper); ok {
		if err := c.Cleanup(em); err != nil {
			return fetched, fmt.Errorf("%s cleanup: %w", taskName, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fetched, err
	}
	return fetched, out.Close()
}
