package hamrapps

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
)

func newCluster(t testing.TB, nodes int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		NumNodes:      nodes,
		HDFSBlockSize: 4 << 10,
		Core:          core.Config{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPositionRoundTripProperty(t *testing.T) {
	f := func(node uint8, file string, off int64) bool {
		if strings.ContainsAny(file, "|") {
			return true // '|' is the separator; files never contain it
		}
		if off < 0 {
			off = -off
		}
		p := Position{Node: int(node), File: file, Offset: off}
		got, err := ParsePosition(p.String())
		return err == nil && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "1|file", "x|f|1", "1|f|x"} {
		if _, err := ParsePosition(bad); err == nil {
			t.Errorf("ParsePosition(%q) accepted", bad)
		}
	}
}

func TestCentroidFormatRoundTripProperty(t *testing.T) {
	f := func(users []uint8, ratings []uint8) bool {
		c := make(Centroid)
		for i, u := range users {
			r := float64(1)
			if len(ratings) > 0 {
				r = float64(ratings[i%len(ratings)]%5) + 1
			}
			c[int(u)] = r
		}
		got, err := ParseCentroid(FormatCentroid(c))
		if err != nil || len(got) != len(c) {
			return false
		}
		for u, r := range c {
			if got[u] != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Fatal(err)
	}
	if c, err := ParseCentroid(""); err != nil || len(c) != 0 {
		t.Errorf("empty centroid: %v, %v", c, err)
	}
}

func TestLocalTextLoaderPositionsResolve(t *testing.T) {
	c := newCluster(t, 2)
	content := "alpha\nbeta\ngamma\n"
	if err := c.WriteLocalText(1, "input/f", []byte(content)); err != nil {
		t.Fatal(err)
	}
	g := core.NewGraph("positions")
	sink := core.NewCollectSink()
	ld, _ := g.AddLoader("load", &LocalTextLoader{
		Files:        map[int][]string{1: {"input/f"}},
		WithPosition: true,
	})
	sk, _ := g.AddSink("out", sink)
	g.Connect(ld, sk)
	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 3 {
		t.Fatalf("%d lines", sink.Len())
	}
	for _, kv := range sink.Pairs() {
		p, err := ParsePosition(kv.Key)
		if err != nil {
			t.Fatal(err)
		}
		if p.Node != 1 || p.File != "input/f" {
			t.Fatalf("position %v", p)
		}
		// Re-reading the line at the recorded offset must return the
		// original value — the K-Means locality contract.
		data, err := c.ReadLocalText(1, p.File)
		if err != nil {
			t.Fatal(err)
		}
		rest := string(data[p.Offset:])
		if line := rest[:strings.IndexByte(rest, '\n')]; line != kv.Value.(string) {
			t.Fatalf("offset %d holds %q, loader emitted %q", p.Offset, line, kv.Value)
		}
	}
}

func TestHDFSTextLoader(t *testing.T) {
	c := newCluster(t, 3)
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "row %d\n", i)
	}
	if err := c.FS().WriteFile("in/t.txt", []byte(sb.String()), -1); err != nil {
		t.Fatal(err)
	}
	g := core.NewGraph("hdfsload")
	sink := core.NewCountSink()
	ld, _ := g.AddLoader("load", &HDFSTextLoader{Prefix: "in/"})
	sk, _ := g.AddSink("out", sink)
	g.Connect(ld, sk)
	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != 200 {
		t.Fatalf("loaded %d lines", sink.Count())
	}
}

func TestLoaderErrors(t *testing.T) {
	if _, err := (&LocalTextLoader{}).Plan(&core.Env{NumNodes: 1}); err == nil {
		t.Error("empty LocalTextLoader planned")
	}
	if _, err := (&HDFSTextLoader{Prefix: "missing/"}).Plan(&core.Env{
		NumNodes: 1, Services: map[string]any{},
	}); err == nil {
		t.Error("HDFSTextLoader planned without hdfs service")
	}
}

func TestBestClusterDeterministic(t *testing.T) {
	rec := datagen.MovieRecord{ID: "m", Ratings: map[int]float64{1: 5, 2: 3}}
	cents := []Centroid{{1: 5, 2: 3}, {9: 1}}
	best, sim := BestCluster(rec, cents)
	if best != 0 || sim < 0.99 {
		t.Fatalf("BestCluster = %d, %v", best, sim)
	}
	// Ties break toward the lower index.
	same := []Centroid{{1: 1}, {1: 1}}
	if b, _ := BestCluster(rec, same); b != 0 {
		t.Fatalf("tie went to %d", b)
	}
}

func TestWordCountGraphShape(t *testing.T) {
	loader := &LocalTextLoader{Files: map[int][]string{0: {"f"}}}
	g, _, err := BuildWordCount(WordCountOptions{Loader: loader, Combiner: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, f := range g.Flowlets() {
		names[f.Name] = true
	}
	for _, want := range []string{"load", "split", "combine", "count", "out"} {
		if !names[want] {
			t.Errorf("flowlet %q missing with combiner", want)
		}
	}
	g2, _, _ := BuildWordCount(WordCountOptions{Loader: loader})
	if len(g2.Flowlets()) != len(g.Flowlets())-1 {
		t.Error("combiner did not add exactly one flowlet")
	}
}

func TestKCliquesGraphDepthMatchesK(t *testing.T) {
	loader := &LocalTextLoader{Files: map[int][]string{0: {"f"}}}
	for k := 2; k <= 6; k++ {
		g, _, err := BuildKCliques(k, loader)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		verifies := 0
		for _, f := range g.Flowlets() {
			if strings.HasPrefix(f.Name, "verify") {
				verifies++
			}
		}
		want := k - 1
		if k == 2 {
			want = 1 // verify2 exists but the seeder short-circuits to the sink
		}
		if verifies != want {
			t.Errorf("k=%d: %d verify stages, want %d", k, verifies, want)
		}
	}
	if _, _, err := BuildKCliques(1, loader); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestKCliquesOnKnownGraph(t *testing.T) {
	c := newCluster(t, 3)
	// A 5-clique plus a ring: C(5,3)=10 triangles, C(5,4)=5 four-cliques.
	data := datagen.CliqueTestGraph(5, 8)
	files, err := DistributeLocalText(c, "g", data, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[int]int{3: 10, 4: 5, 5: 1} {
		g, sink, err := BuildKCliques(k, &LocalTextLoader{Files: files})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if sink.Len() != want {
			t.Errorf("k=%d: found %d cliques, want %d", k, sink.Len(), want)
		}
	}
}

func TestPageRankHubDominates(t *testing.T) {
	c := newCluster(t, 3)
	var sb strings.Builder
	const pages = 30
	for i := 1; i < pages; i++ {
		fmt.Fprintf(&sb, "%d 0\n", i)       // everyone links to the hub
		fmt.Fprintf(&sb, "0 %d\n", i)       // hub links back
		fmt.Fprintf(&sb, "%d %d\n", i, i%5) // noise
	}
	files, err := DistributeLocalText(c, "pr", []byte(sb.String()), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPageRank(c, &LocalTextLoader{Files: files}, 1e-6, 15)
	if err != nil {
		t.Fatal(err)
	}
	hub := res.Ranks["0"]
	for page, r := range res.Ranks {
		if page != "0" && r >= hub {
			t.Errorf("page %s rank %.4f >= hub %.4f", page, r, hub)
		}
	}
	if res.Iterations < 2 {
		t.Errorf("converged suspiciously fast: %d iterations", res.Iterations)
	}
}

func TestNaiveBayesWeightsConsistent(t *testing.T) {
	c := newCluster(t, 3)
	data := datagen.Docs(datagen.DocsConfig{Seed: 41, Labels: 2, Vocabulary: 30, Docs: 120})
	files, err := DistributeLocalText(c, "nb", data, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, sink, err := BuildNaiveBayes(&LocalTextLoader{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	var labelTotal, featureTotal int64
	for _, kv := range sink.Pairs() {
		switch {
		case strings.HasPrefix(kv.Key, "labelweight|"):
			labelTotal += kv.Value.(int64)
		case strings.HasPrefix(kv.Key, "featureweight|"):
			featureTotal += kv.Value.(int64)
		default:
			t.Errorf("unexpected output key %q", kv.Key)
		}
	}
	// Both views sum the same underlying word occurrences.
	if labelTotal == 0 || labelTotal != featureTotal {
		t.Fatalf("label total %d != feature total %d", labelTotal, featureTotal)
	}
}

func TestHistogramMoviesBucketsValid(t *testing.T) {
	c := newCluster(t, 2)
	data := datagen.Movies(datagen.MoviesConfig{Seed: 43, Movies: 300, Users: 50})
	files, _ := DistributeLocalText(c, "hm", data, 4)
	g, sink, err := BuildHistogramMovies(HistogramOptions{Loader: &LocalTextLoader{Files: files}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, kv := range sink.Pairs() {
		var b float64
		if _, err := fmt.Sscanf(kv.Key, "%f", &b); err != nil || b < 1 || b > 5 {
			t.Errorf("bad bucket %q", kv.Key)
		}
		total += kv.Value.(int64)
	}
	if total != 300 {
		t.Fatalf("histogram covers %d movies, want 300", total)
	}
}
