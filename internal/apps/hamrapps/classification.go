package hamrapps

import (
	"fmt"

	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
)

// Classification (§4): like K-Means but with fixed centroids — assign each
// movie to its closest predetermined cluster. The flowlet version exploits
// data locality exactly as K-Means does: records are read from and results
// written to the local disk; only per-cluster counts are shuffled so the
// job has a (tiny) global output.
//
//	TextLoader -> Classify(map) -> assign sink (local)
//	                            -> count(partial reduce) -> sink

// Classify assigns movies to fixed centroids.
type Classify struct {
	Centroids []Centroid
	// Counts enables the optional per-cluster count emission.
	Counts bool
}

// Map implements core.Mapper.
func (m *Classify) Map(kv core.KV, ctx core.Context) error {
	rec, ok := datagen.ParseMovie(kv.Value.(string))
	if !ok || len(rec.Ratings) == 0 {
		return nil
	}
	best, _ := BestCluster(rec, m.Centroids)
	key := fmt.Sprintf("%d", best)
	if err := ctx.EmitTo("assign", core.KV{Key: key, Value: rec.ID}); err != nil {
		return err
	}
	if m.Counts {
		return ctx.EmitTo("count", core.KV{Key: key, Value: int64(1)})
	}
	return nil
}

// ClassificationOptions configures the benchmark.
type ClassificationOptions struct {
	Files     map[int][]string
	Centroids []Centroid
	// AssignmentSink overrides the local assignment output.
	AssignmentSink core.Sink
	// WithCounts adds a per-cluster count aggregation (used by the
	// differential tests for cross-engine comparison). The paper's
	// benchmark writes only the locally classified records, so the
	// harness leaves this off.
	WithCounts bool
}

// ClassificationSinks carries the outputs.
type ClassificationSinks struct {
	// Counts receives (clusterID, count) pairs.
	Counts *core.CollectSink
	// Assignments receives (clusterID, movieID) pairs; nil when overridden.
	Assignments *core.CollectSink
}

// BuildClassification constructs the Classification graph.
func BuildClassification(opts ClassificationOptions) (*core.Graph, *ClassificationSinks, error) {
	if len(opts.Centroids) == 0 {
		return nil, nil, fmt.Errorf("hamrapps: classification needs centroids")
	}
	g := core.NewGraph("classification")
	sinks := &ClassificationSinks{
		Counts:      core.NewCollectSink(),
		Assignments: core.NewCollectSink(),
	}
	var assignSink core.Sink = sinks.Assignments
	if opts.AssignmentSink != nil {
		assignSink = opts.AssignmentSink
		sinks.Assignments = nil
	}
	ld, err := g.AddLoader("load", &LocalTextLoader{Files: opts.Files})
	if err != nil {
		return nil, nil, err
	}
	cl, err := g.AddMap("classify", &Classify{Centroids: opts.Centroids, Counts: opts.WithCounts})
	if err != nil {
		return nil, nil, err
	}
	asn, err := g.AddSink("assign", assignSink)
	if err != nil {
		return nil, nil, err
	}
	if err := g.Connect(ld, cl, core.WithRouting(core.RouteLocal)); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(cl, asn); err != nil {
		return nil, nil, err
	}
	if opts.WithCounts {
		cnt, err := g.AddPartialReduce("count", SumCounts{})
		if err != nil {
			return nil, nil, err
		}
		sk, err := g.AddSink("out", sinks.Counts)
		if err != nil {
			return nil, nil, err
		}
		if err := g.Connect(cl, cnt); err != nil {
			return nil, nil, err
		}
		if err := g.Connect(cnt, sk); err != nil {
			return nil, nil, err
		}
	} else {
		sinks.Counts = nil
	}
	return g, sinks, nil
}
