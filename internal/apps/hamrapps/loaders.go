// Package hamrapps implements the paper's eight benchmarks in the flowlet
// model (Algorithms 1-4 and §4): K-Means, Classification, PageRank,
// K-Cliques, WordCount, HistogramMovies, HistogramRatings and NaiveBayes
// training. Each Build* function returns a ready-to-run flowlet graph plus
// the sinks needed to read results back.
package hamrapps

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/hdfs"
	"github.com/hamr-go/hamr/internal/kvstore"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
)

// Position encodes where a text line lives: node-local file + byte offset.
// K-Means ships positions instead of records (§3.3) and routes back to the
// node to re-read them.
type Position struct {
	Node   int
	File   string
	Offset int64
}

// String renders a position as "node|file|offset".
func (p Position) String() string { return fmt.Sprintf("%d|%s|%d", p.Node, p.File, p.Offset) }

// ParsePosition parses the String form.
func ParsePosition(s string) (Position, error) {
	parts := strings.SplitN(s, "|", 3)
	if len(parts) != 3 {
		return Position{}, fmt.Errorf("hamrapps: bad position %q", s)
	}
	node, err := strconv.Atoi(parts[0])
	if err != nil {
		return Position{}, fmt.Errorf("hamrapps: bad position node in %q", s)
	}
	off, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return Position{}, fmt.Errorf("hamrapps: bad position offset in %q", s)
	}
	return Position{Node: node, File: parts[1], Offset: off}, nil
}

// LocalTextLoader reads text files from each node's local disk — the
// paper's HAMR deployment ("input and output data is distributed between
// the local disks of each node", §5.1). Files maps node id -> file names
// on that node's disk. When WithPosition is set, each emitted pair carries
// the line's Position as its key; otherwise keys are empty.
type LocalTextLoader struct {
	Files        map[int][]string
	WithPosition bool
	// SplitLines caps lines per split so one file yields multiple
	// fine-grain loader tasks (0 = whole file per split).
	SplitLines int
}

type localTextSplit struct {
	node int
	file string
}

// Plan implements core.Loader: one split per (node, file).
func (l *LocalTextLoader) Plan(env *core.Env) ([]core.Split, error) {
	var splits []core.Split
	for node, files := range l.Files {
		for _, f := range files {
			splits = append(splits, core.Split{
				Payload:       localTextSplit{node: node, file: f},
				PreferredNode: node,
			})
		}
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("hamrapps: LocalTextLoader has no files")
	}
	return splits, nil
}

// Load implements core.Loader.
func (l *LocalTextLoader) Load(sp core.Split, ctx core.Context) error {
	s := sp.Payload.(localTextSplit)
	disk, ok := ctx.Service(cluster.ServiceDisk).(storage.Disk)
	if !ok {
		return fmt.Errorf("hamrapps: no disk service on node %d", ctx.Node())
	}
	f, err := disk.Open(s.file)
	if err != nil {
		return fmt.Errorf("hamrapps: open %s on node %d: %w", s.file, s.node, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var off int64
	for sc.Scan() {
		line := sc.Text()
		key := ""
		if l.WithPosition {
			key = Position{Node: ctx.Node(), File: s.file, Offset: off}.String()
		}
		off += int64(len(line)) + 1
		if line == "" {
			continue
		}
		if err := ctx.Emit(core.KV{Key: key, Value: line}); err != nil {
			return err
		}
	}
	return sc.Err()
}

// HDFSTextLoader streams an HDFS file (or prefix) split by block, emitting
// one pair per line with empty keys. Splits prefer the nodes that hold
// each block.
type HDFSTextLoader struct {
	Prefix string
}

// Plan implements core.Loader.
func (l *HDFSTextLoader) Plan(env *core.Env) ([]core.Split, error) {
	fs, ok := env.Service(cluster.ServiceHDFS).(*hdfs.FileSystem)
	if !ok {
		return nil, fmt.Errorf("hamrapps: no hdfs service")
	}
	splits, err := fs.SplitsGlob(l.Prefix)
	if err != nil {
		return nil, err
	}
	out := make([]core.Split, 0, len(splits))
	for _, sp := range splits {
		pref := -1
		if len(sp.Hosts) > 0 {
			pref = int(sp.Hosts[0])
		}
		out = append(out, core.Split{Payload: sp, PreferredNode: pref, Size: sp.Length})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hamrapps: no hdfs files under %q", l.Prefix)
	}
	return out, nil
}

// Load implements core.Loader.
func (l *HDFSTextLoader) Load(sp core.Split, ctx core.Context) error {
	fs, ok := ctx.Service(cluster.ServiceHDFS).(*hdfs.FileSystem)
	if !ok {
		return fmt.Errorf("hamrapps: no hdfs service on node %d", ctx.Node())
	}
	hs := sp.Payload.(hdfs.Split)
	it, err := fs.OpenLines(hs, transport.NodeID(ctx.Node()), 0)
	if err != nil {
		return err
	}
	for {
		line, _, ok := it.Next()
		if !ok {
			return nil
		}
		if line == "" {
			continue
		}
		if err := ctx.Emit(core.KV{Key: "", Value: line}); err != nil {
			return err
		}
	}
}

// Store fetches the cluster kv-store service from a flowlet context.
func Store(ctx core.Context) (*kvstore.Store, error) {
	s, ok := ctx.Service(cluster.ServiceKVStore).(*kvstore.Store)
	if !ok {
		return nil, fmt.Errorf("hamrapps: no kvstore service on node %d", ctx.Node())
	}
	return s, nil
}

// DistributeLocalText splits data line-preserving into one local file per
// node and returns the LocalTextLoader file map. parts defaults to the
// cluster size.
func DistributeLocalText(c *cluster.Cluster, name string, data []byte, parts int) (map[int][]string, error) {
	if parts <= 0 {
		parts = c.NumNodes()
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	per := (len(lines) + parts - 1) / parts
	files := make(map[int][]string)
	for p := 0; p < parts; p++ {
		lo := p * per
		if lo >= len(lines) {
			break
		}
		hi := lo + per
		if hi > len(lines) {
			hi = len(lines)
		}
		node := p % c.NumNodes()
		fname := fmt.Sprintf("input/%s-part-%04d", name, p)
		chunk := strings.Join(lines[lo:hi], "\n") + "\n"
		if err := c.WriteLocalText(node, fname, []byte(chunk)); err != nil {
			return nil, err
		}
		files[node] = append(files[node], fname)
	}
	return files, nil
}
