package hamrapps

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/storage"
)

// K-Means, Algorithm 1 — the flagship data-locality benchmark (§3.3).
// One clustering iteration:
//
//	TextLoader(position) -> ClusterGen(map)    assigns each movie to its
//	                                           most-similar centroid, writes
//	                                           the assignment to the local
//	                                           disk, and ships only
//	                                           (cluster, position|similarity)
//	                                           — never the rating vectors.
//	-> NewCentroidGen(reduce)                  picks each cluster's new
//	                                           representative and routes its
//	                                           *position* back to the node
//	                                           that holds the record.
//	-> NewCentroidInfoGet(map)                 re-reads the record locally
//	                                           and broadcasts the new
//	                                           centroid vector to all nodes.
//	-> CentroidUpdate(map)                     installs the centroid in the
//	                                           node-local kv-store and (on
//	                                           node 0) emits it as output.

// Centroid is a sparse rating vector.
type Centroid = map[int]float64

// FormatCentroid serializes a sparse centroid as "u:r,u:r" with sorted
// user ids (deterministic).
func FormatCentroid(c Centroid) string {
	users := make([]int, 0, len(c))
	for u := range c {
		users = append(users, u)
	}
	sort.Ints(users)
	parts := make([]string, len(users))
	for i, u := range users {
		parts[i] = fmt.Sprintf("%d:%g", u, c[u])
	}
	return strings.Join(parts, ",")
}

// ParseCentroid parses FormatCentroid's output.
func ParseCentroid(s string) (Centroid, error) {
	c := make(Centroid)
	if s == "" {
		return c, nil
	}
	for _, p := range strings.Split(s, ",") {
		i := strings.IndexByte(p, ':')
		if i <= 0 {
			return nil, fmt.Errorf("hamrapps: bad centroid entry %q", p)
		}
		u, err := strconv.Atoi(p[:i])
		if err != nil {
			return nil, err
		}
		r, err := strconv.ParseFloat(p[i+1:], 64)
		if err != nil {
			return nil, err
		}
		c[u] = r
	}
	return c, nil
}

// BestCluster returns the index of the centroid most similar to the movie
// (cosine similarity, ties to the lower index) and that similarity.
func BestCluster(rec datagen.MovieRecord, centroids []Centroid) (int, float64) {
	best, bestSim := 0, -1.0
	for i, c := range centroids {
		if sim := rec.Cosine(c); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	return best, bestSim
}

// ClusterGen assigns movies to centroids (Alg. 1 step 3).
type ClusterGen struct {
	Centroids []Centroid
}

// Map implements core.Mapper. kv.Key is the record's Position string.
func (m *ClusterGen) Map(kv core.KV, ctx core.Context) error {
	rec, ok := datagen.ParseMovie(kv.Value.(string))
	if !ok || len(rec.Ratings) == 0 {
		return nil
	}
	best, sim := BestCluster(rec, m.Centroids)
	// Data locality: write the full assignment locally...
	if err := ctx.EmitTo("assign", core.KV{
		Key:   fmt.Sprintf("%d", best),
		Value: rec.ID,
	}); err != nil {
		return err
	}
	// ...and ship only the location + similarity to the reducer.
	return ctx.EmitTo("newcentroid", core.KV{
		Key:   fmt.Sprintf("%d", best),
		Value: fmt.Sprintf("%s;%.12g;%s", kv.Key, sim, rec.ID),
	})
}

// NewCentroidGen picks each cluster's new representative — the
// median-similarity member, a medoid-style update that is robust to the
// seed itself being in the data — and routes its *position* to the node
// holding the record (Alg. 1 step 4). Ordering is deterministic:
// (similarity, movie id).
type NewCentroidGen struct{}

// simRec is one parsed "pos;sim;id" similarity record.
type simRec struct {
	pos string
	sim float64
	id  string
}

func parseSimRec(s string) (simRec, error) {
	parts := strings.Split(s, ";")
	if len(parts) != 3 {
		return simRec{}, fmt.Errorf("hamrapps: bad similarity record %q", s)
	}
	sim, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return simRec{}, err
	}
	return simRec{pos: parts[0], sim: sim, id: parts[2]}, nil
}

// MedianIndex returns the index of the median element of a sorted list of
// n items (n/2, the upper median).
func MedianIndex(n int) int { return n / 2 }

// Reduce implements core.Reducer.
func (NewCentroidGen) Reduce(key string, values []any, ctx core.Context) error {
	recs := make([]simRec, 0, len(values))
	for _, v := range values {
		r, err := parseSimRec(v.(string))
		if err != nil {
			return err
		}
		recs = append(recs, r)
	}
	if len(recs) == 0 {
		return nil
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].sim != recs[j].sim {
			return recs[i].sim < recs[j].sim
		}
		return recs[i].id < recs[j].id
	})
	chosen := recs[MedianIndex(len(recs))]
	p, err := ParsePosition(chosen.pos)
	if err != nil {
		return err
	}
	// Route back to the node where the record lives (§3.3: "go back to
	// the node which the data resides in").
	return ctx.EmitToNode("centroidinfo", p.Node, core.KV{Key: key, Value: chosen.pos})
}

// NewCentroidInfoGet re-reads the chosen record from the local disk by
// offset and broadcasts the new centroid vector (Alg. 1 step 5).
type NewCentroidInfoGet struct{}

// Map implements core.Mapper.
func (NewCentroidInfoGet) Map(kv core.KV, ctx core.Context) error {
	p, err := ParsePosition(kv.Value.(string))
	if err != nil {
		return err
	}
	disk, ok := ctx.Service(cluster.ServiceDisk).(storage.Disk)
	if !ok {
		return fmt.Errorf("hamrapps: no disk service")
	}
	f, err := disk.Open(p.File)
	if err != nil {
		return fmt.Errorf("hamrapps: reopen %s: %w", p.File, err)
	}
	defer f.Close()
	line, err := readLineAt(f, p.Offset)
	if err != nil {
		return err
	}
	rec, ok2 := datagen.ParseMovie(line)
	if !ok2 {
		return fmt.Errorf("hamrapps: position %s does not hold a movie record", kv.Value)
	}
	return ctx.EmitBroadcast("update", core.KV{Key: kv.Key, Value: FormatCentroid(rec.Ratings)})
}

// CentroidUpdate installs the new centroid locally on every node (Alg. 1
// step 6) and emits the result once (from node 0).
type CentroidUpdate struct {
	Table string
}

// Map implements core.Mapper.
func (m CentroidUpdate) Map(kv core.KV, ctx core.Context) error {
	st, err := Store(ctx)
	if err != nil {
		return err
	}
	table := m.Table
	if table == "" {
		table = "kmeans.centroids"
	}
	st.Table(table).LocalPut(ctx.Node(), kv.Key, kv.Value.(string))
	if ctx.Node() == 0 {
		return ctx.Emit(kv)
	}
	return nil
}

// KMeansOptions configures one K-Means iteration.
type KMeansOptions struct {
	Files     map[int][]string // node-local input files
	Centroids []Centroid
	// AssignmentSink overrides where (cluster, movie) assignments go;
	// the default CollectSink keeps them in memory. The edge into the
	// assignment sink is node-local either way (§3.3: output can happen
	// in map, on the local node).
	AssignmentSink core.Sink
}

// KMeansSinks carries the two outputs of a K-Means iteration.
type KMeansSinks struct {
	// Centroids receives (clusterID, centroid) pairs.
	Centroids *core.CollectSink
	// Assignments receives (clusterID, movieID) pairs on each node; nil
	// when an AssignmentSink override is installed.
	Assignments *core.CollectSink
}

// BuildKMeans constructs the Algorithm 1 graph for one iteration.
func BuildKMeans(opts KMeansOptions) (*core.Graph, *KMeansSinks, error) {
	if len(opts.Centroids) == 0 {
		return nil, nil, fmt.Errorf("hamrapps: kmeans needs initial centroids")
	}
	g := core.NewGraph("kmeans")
	sinks := &KMeansSinks{
		Centroids:   core.NewCollectSink(),
		Assignments: core.NewCollectSink(),
	}
	var assignSink core.Sink = sinks.Assignments
	if opts.AssignmentSink != nil {
		assignSink = opts.AssignmentSink
		sinks.Assignments = nil
	}
	ld, err := g.AddLoader("load", &LocalTextLoader{Files: opts.Files, WithPosition: true})
	if err != nil {
		return nil, nil, err
	}
	cg, err := g.AddMap("clustergen", &ClusterGen{Centroids: opts.Centroids})
	if err != nil {
		return nil, nil, err
	}
	asn, err := g.AddSink("assign", assignSink)
	if err != nil {
		return nil, nil, err
	}
	ncg, err := g.AddReduce("newcentroid", NewCentroidGen{})
	if err != nil {
		return nil, nil, err
	}
	nci, err := g.AddMap("centroidinfo", NewCentroidInfoGet{})
	if err != nil {
		return nil, nil, err
	}
	upd, err := g.AddMap("update", CentroidUpdate{})
	if err != nil {
		return nil, nil, err
	}
	sk, err := g.AddSink("out", sinks.Centroids)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range []struct {
		from, to int
		opts     []core.EdgeOption
	}{
		{ld, cg, []core.EdgeOption{core.WithRouting(core.RouteLocal)}},
		{cg, asn, nil},
		{cg, ncg, nil},
		{ncg, nci, nil}, // routed explicitly with EmitToNode
		{nci, upd, nil}, // routed explicitly with EmitBroadcast
		{upd, sk, nil},
	} {
		if err := g.Connect(e.from, e.to, e.opts...); err != nil {
			return nil, nil, err
		}
	}
	return g, sinks, nil
}

// readLineAt returns the line starting at byte offset off.
func readLineAt(f interface{ Read([]byte) (int, error) }, off int64) (string, error) {
	// Skip to the offset; MemDisk readers do not seek, so we discard.
	remaining := off
	buf := make([]byte, 32<<10)
	for remaining > 0 {
		n := int64(len(buf))
		if remaining < n {
			n = remaining
		}
		read, err := f.Read(buf[:n])
		if err != nil {
			return "", fmt.Errorf("hamrapps: seek to offset: %w", err)
		}
		remaining -= int64(read)
	}
	var sb strings.Builder
	one := make([]byte, 1)
	for {
		n, err := f.Read(one)
		if n > 0 {
			if one[0] == '\n' {
				break
			}
			sb.WriteByte(one[0])
		}
		if err != nil {
			break
		}
	}
	return sb.String(), nil
}
