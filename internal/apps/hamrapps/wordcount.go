package hamrapps

import (
	"strings"

	"github.com/hamr-go/hamr/internal/core"
)

// SplitWords is the WordCount map flowlet: line -> (word, 1).
type SplitWords struct{}

// Map implements core.Mapper.
func (SplitWords) Map(kv core.KV, ctx core.Context) error {
	for _, w := range strings.Fields(kv.Value.(string)) {
		if err := ctx.Emit(core.KV{Key: w, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

// SumCounts is a partial reduce folding int64 counts — WordCount "can
// apply partial reduce to increase the count as soon as the occurrence of
// the word" (§4). The operation is commutative and associative, the
// paper's requirement for partial reduce.
type SumCounts struct{}

// Update implements core.PartialReducer.
func (SumCounts) Update(key string, state, value any) (any, error) {
	if state == nil {
		return value.(int64), nil
	}
	return state.(int64) + value.(int64), nil
}

// Finish implements core.PartialReducer.
func (SumCounts) Finish(key string, state any, ctx core.Context) error {
	return ctx.Emit(core.KV{Key: key, Value: state.(int64)})
}

// WordCountOptions configures BuildWordCount.
type WordCountOptions struct {
	// Loader supplies the input lines.
	Loader core.Loader
	// Combiner inserts a node-local pre-aggregation flowlet before the
	// shuffle (Table 3's HAMR combiner).
	Combiner bool
}

// BuildWordCount constructs the WordCount flowlet graph:
//
//	loader -> split(map) -> [combine(local partial reduce) ->] count(partial reduce) -> sink
func BuildWordCount(opts WordCountOptions) (*core.Graph, *core.CollectSink, error) {
	g := core.NewGraph("wordcount")
	sink := core.NewCollectSink()
	ld, err := g.AddLoader("load", opts.Loader)
	if err != nil {
		return nil, nil, err
	}
	mp, err := g.AddMap("split", SplitWords{})
	if err != nil {
		return nil, nil, err
	}
	prev := mp
	prevRouting := core.RouteShuffle
	if opts.Combiner {
		cb, err := g.AddPartialReduce("combine", SumCounts{})
		if err != nil {
			return nil, nil, err
		}
		if err := g.Connect(mp, cb, core.WithRouting(core.RouteLocal)); err != nil {
			return nil, nil, err
		}
		prev = cb
	}
	cnt, err := g.AddPartialReduce("count", SumCounts{})
	if err != nil {
		return nil, nil, err
	}
	sk, err := g.AddSink("out", sink)
	if err != nil {
		return nil, nil, err
	}
	// The loader's lines carry no keys; mapping happens on the node that
	// holds the data (§3.3), so the edge is explicitly local.
	if err := g.Connect(ld, mp, core.WithRouting(core.RouteLocal)); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(prev, cnt, core.WithRouting(prevRouting)); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(cnt, sk); err != nil {
		return nil, nil, err
	}
	return g, sink, nil
}
