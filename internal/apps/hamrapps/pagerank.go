package hamrapps

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
)

// PageRank, Algorithm 2 — the multi-phase, in-memory iteration benchmark
// (§3.1/§3.2). Hadoop needs two chained jobs per iteration with HDFS
// materialization between them; HAMR keeps the adjacency lists and ranks
// distributed in memory (the kv-store) and runs each iteration as one job:
//
//	iteration 1:  EdgeFileLoader -> HashJoinRed(reduce) -> MergeRed(reduce) -> ContMap -> maxΔ -> sink
//	iteration i:  EdgeLoader (from memory)              -> MergeRed(reduce) -> ContMap -> maxΔ -> sink
//
// The damping follows the common formulation rank = 0.15 + 0.85·Σ
// contributions; pages keep rank 1 until they receive contributions.

const (
	prAdjTable  = "pagerank.adj"
	prRankTable = "pagerank.rank"
	// PRDamping is the damping factor.
	PRDamping = 0.85
)

// adjList is the stored adjacency value.
type adjList []int64

// SizeBytes implements core.Sizer.
func (a adjList) SizeBytes() int64 { return int64(len(a))*8 + 24 }

// EdgeFileLoader parses "src dst" lines into (src, dst) pairs.
type EdgeFileLoader struct {
	Inner core.Loader // supplies raw text lines
}

// Plan implements core.Loader.
func (l *EdgeFileLoader) Plan(env *core.Env) ([]core.Split, error) { return l.Inner.Plan(env) }

// Load implements core.Loader.
func (l *EdgeFileLoader) Load(sp core.Split, ctx core.Context) error {
	return l.Inner.Load(sp, &edgeParseCtx{Context: ctx})
}

// edgeParseCtx rewrites the inner loader's (“”, line) emissions into
// (src, dst) pairs before they enter the graph.
type edgeParseCtx struct {
	core.Context
}

// Emit implements core.Context.
func (c *edgeParseCtx) Emit(kv core.KV) error {
	line := strings.TrimSpace(kv.Value.(string))
	if line == "" {
		return nil
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return fmt.Errorf("hamrapps: bad edge line %q", line)
	}
	dst, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return err
	}
	return c.Context.Emit(core.KV{Key: fields[0], Value: dst})
}

// HashJoinRed (iteration 1) collects each page's destination list, stores
// it in node-local memory, seeds the page's rank, and sends the first
// round of contributions.
type HashJoinRed struct{}

// Reduce implements core.Reducer.
func (HashJoinRed) Reduce(key string, values []any, ctx core.Context) error {
	st, err := Store(ctx)
	if err != nil {
		return err
	}
	dsts := make(adjList, 0, len(values))
	for _, v := range values {
		dsts = append(dsts, v.(int64))
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	st.Table(prAdjTable).LocalPut(ctx.Node(), key, dsts)
	st.Table(prRankTable).LocalPut(ctx.Node(), key, 1.0)
	contrib := 1.0 / float64(len(dsts))
	for _, d := range dsts {
		if err := ctx.Emit(core.KV{Key: strconv.FormatInt(d, 10), Value: contrib}); err != nil {
			return err
		}
	}
	return nil
}

// EdgeLoader (iterations >= 2) replays contributions from the in-memory
// adjacency, one split per node.
type EdgeLoader struct{}

// Plan implements core.Loader.
func (EdgeLoader) Plan(env *core.Env) ([]core.Split, error) {
	splits := make([]core.Split, env.NumNodes)
	for n := range splits {
		splits[n] = core.Split{Payload: n, PreferredNode: n}
	}
	return splits, nil
}

// Load implements core.Loader.
func (EdgeLoader) Load(sp core.Split, ctx core.Context) error {
	node := sp.Payload.(int)
	if node != ctx.Node() {
		return fmt.Errorf("hamrapps: EdgeLoader split for node %d ran on node %d", node, ctx.Node())
	}
	st, err := Store(ctx)
	if err != nil {
		return err
	}
	adj := st.Table(prAdjTable)
	ranks := st.Table(prRankTable)
	keys := adj.LocalKeys(node)
	sort.Strings(keys)
	for _, src := range keys {
		v, _ := adj.LocalGet(node, src)
		dsts := v.(adjList)
		rank := 1.0
		if rv, ok := ranks.LocalGet(node, src); ok {
			rank = rv.(float64)
		}
		contrib := rank / float64(len(dsts))
		for _, d := range dsts {
			if err := ctx.Emit(core.KV{Key: strconv.FormatInt(d, 10), Value: contrib}); err != nil {
				return err
			}
		}
	}
	return nil
}

// MergeRed sums a page's incoming contributions, updates its rank in
// memory and emits the delta for convergence checking.
type MergeRed struct{}

// Reduce implements core.Reducer.
func (MergeRed) Reduce(key string, values []any, ctx core.Context) error {
	st, err := Store(ctx)
	if err != nil {
		return err
	}
	sum := 0.0
	for _, v := range values {
		sum += v.(float64)
	}
	newRank := (1 - PRDamping) + PRDamping*sum
	ranks := st.Table(prRankTable)
	old := 1.0
	if ov, ok := ranks.LocalGet(ctx.Node(), key); ok {
		old = ov.(float64)
	}
	ranks.LocalPut(ctx.Node(), key, newRank)
	delta := newRank - old
	if delta < 0 {
		delta = -delta
	}
	return ctx.Emit(core.KV{Key: "delta", Value: delta})
}

// ContMap forwards deltas to the max aggregation (Alg. 2 step 10).
type ContMap struct{}

// Map implements core.Mapper.
func (ContMap) Map(kv core.KV, ctx core.Context) error { return ctx.Emit(kv) }

// MaxFloat is a partial reduce keeping the maximum float64.
type MaxFloat struct{}

// Update implements core.PartialReducer.
func (MaxFloat) Update(key string, state, value any) (any, error) {
	v := value.(float64)
	if state == nil || v > state.(float64) {
		return v, nil
	}
	return state, nil
}

// Finish implements core.PartialReducer.
func (MaxFloat) Finish(key string, state any, ctx core.Context) error {
	return ctx.Emit(core.KV{Key: key, Value: state.(float64)})
}

// BuildPageRankIteration constructs the graph for one iteration. first
// selects the Algorithm 2 branch (edge file load + hash join vs in-memory
// edge replay). The sink receives ("delta", maxDelta).
func BuildPageRankIteration(first bool, edgeLoader core.Loader) (*core.Graph, *core.CollectSink, error) {
	g := core.NewGraph("pagerank-iter")
	sink := core.NewCollectSink()
	var prev int
	if first {
		ld, err := g.AddLoader("edges", &EdgeFileLoader{Inner: edgeLoader})
		if err != nil {
			return nil, nil, err
		}
		join, err := g.AddReduce("hashjoin", HashJoinRed{})
		if err != nil {
			return nil, nil, err
		}
		if err := g.Connect(ld, join); err != nil {
			return nil, nil, err
		}
		prev = join
	} else {
		ld, err := g.AddLoader("edges", EdgeLoader{})
		if err != nil {
			return nil, nil, err
		}
		prev = ld
	}
	merge, err := g.AddReduce("merge", MergeRed{})
	if err != nil {
		return nil, nil, err
	}
	cont, err := g.AddMap("cont", ContMap{})
	if err != nil {
		return nil, nil, err
	}
	mx, err := g.AddPartialReduce("maxdelta", MaxFloat{})
	if err != nil {
		return nil, nil, err
	}
	sk, err := g.AddSink("out", sink)
	if err != nil {
		return nil, nil, err
	}
	if err := g.Connect(prev, merge); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(merge, cont); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(cont, mx); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(mx, sk); err != nil {
		return nil, nil, err
	}
	return g, sink, nil
}

// PageRankResult holds a finished run.
type PageRankResult struct {
	Iterations int
	MaxDelta   float64
	Ranks      map[string]float64
}

// RunPageRank executes Algorithm 2's driver loop on a cluster: iterate
// until the max rank delta drops below epsilon or maxIters is reached,
// then collect the final ranks from the distributed memory.
func RunPageRank(c *cluster.Cluster, edgeLoader core.Loader, epsilon float64, maxIters int) (*PageRankResult, error) {
	if maxIters <= 0 {
		maxIters = 10
	}
	st := c.Store()
	st.Table(prAdjTable).Clear()
	st.Table(prRankTable).Clear()
	res := &PageRankResult{}
	for it := 0; it < maxIters; it++ {
		g, sink, err := BuildPageRankIteration(it == 0, edgeLoader)
		if err != nil {
			return nil, err
		}
		if _, err := c.Run(g); err != nil {
			return nil, fmt.Errorf("hamrapps: pagerank iteration %d: %w", it+1, err)
		}
		res.Iterations = it + 1
		res.MaxDelta = 0
		for _, kv := range sink.Pairs() {
			if d := kv.Value.(float64); d > res.MaxDelta {
				res.MaxDelta = d
			}
		}
		if res.MaxDelta < epsilon {
			break
		}
	}
	// Collect final ranks from every node's shard.
	res.Ranks = make(map[string]float64)
	ranks := st.Table(prRankTable)
	for n := 0; n < c.NumNodes(); n++ {
		for _, k := range ranks.LocalKeys(n) {
			if v, ok := ranks.LocalGet(n, k); ok {
				res.Ranks[k] = v.(float64)
			}
		}
	}
	return res, nil
}
