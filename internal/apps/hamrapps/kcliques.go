package hamrapps

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hamr-go/hamr/internal/core"
)

// K-Cliques, Algorithm 3: find all fully connected vertex sets of size K.
// The graph is built once into distributed memory (the kv-store — "this
// kind of distributed memory will be built into HAMR as a component called
// key-value store", §5.2) and candidate cliques stream through a chain of
// verify flowlets, one per clique size:
//
//	Loader -> GraphBuilder(reduce)  stores adj(v) at hash(v)'s node,
//	                                emits one token per vertex
//	-> CliqueSeeder(partial reduce) fires only after the whole graph is
//	                                resident (the Alg. 3 "when all data is
//	                                ready in memory" barrier), emits
//	                                2-cliques keyed by their larger vertex
//	-> Verify2 .. VerifyK (maps)    each stage runs where the candidate's
//	                                newest vertex's adjacency lives,
//	                                validates, and extends by one vertex
//	-> sink                         valid K-cliques as "v1,v2,...,vK"
//
// Candidates are generated in strictly ascending vertex order, so every
// clique is found exactly once.

const kcAdjTable = "kcliques.adj"

// neighborSet is the stored adjacency value.
type neighborSet map[int64]bool

// SizeBytes implements core.Sizer.
func (s neighborSet) SizeBytes() int64 { return int64(len(s))*16 + 48 }

// CliqueLoader parses undirected edge lines "u v" and emits both
// directions so every vertex's full neighborhood reaches its builder.
type CliqueLoader struct {
	Inner core.Loader
}

// Plan implements core.Loader.
func (l *CliqueLoader) Plan(env *core.Env) ([]core.Split, error) { return l.Inner.Plan(env) }

// Load implements core.Loader.
func (l *CliqueLoader) Load(sp core.Split, ctx core.Context) error {
	return l.Inner.Load(sp, &cliqueParseCtx{Context: ctx})
}

type cliqueParseCtx struct {
	core.Context
}

// Emit implements core.Context.
func (c *cliqueParseCtx) Emit(kv core.KV) error {
	line := strings.TrimSpace(kv.Value.(string))
	if line == "" {
		return nil
	}
	f := strings.Fields(line)
	if len(f) != 2 {
		return fmt.Errorf("hamrapps: bad edge line %q", line)
	}
	u, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return err
	}
	if u == v {
		return nil
	}
	if err := c.Context.Emit(core.KV{Key: f[0], Value: v}); err != nil {
		return err
	}
	return c.Context.Emit(core.KV{Key: f[1], Value: u})
}

// GraphBuilder stores each vertex's neighbor set in the local shard of the
// kv-store and emits one token so the seeder can fire after the barrier.
type GraphBuilder struct{}

// Reduce implements core.Reducer.
func (GraphBuilder) Reduce(key string, values []any, ctx core.Context) error {
	st, err := Store(ctx)
	if err != nil {
		return err
	}
	set := make(neighborSet, len(values))
	for _, v := range values {
		set[v.(int64)] = true
	}
	st.Table(kcAdjTable).LocalPut(ctx.Node(), key, set)
	return ctx.Emit(core.KV{Key: key, Value: int64(len(set))})
}

// CliqueSeeder generates 2-cliques once every GraphBuilder has completed
// (partial-reduce Finish runs only after all upstreams complete on all
// nodes — the Alg. 3 TwoCliquesGenerator barrier).
type CliqueSeeder struct {
	K int
}

// Update implements core.PartialReducer (the token's value is unused).
func (CliqueSeeder) Update(key string, state, value any) (any, error) { return value, nil }

// Finish implements core.PartialReducer: emit "u,v" candidates keyed by v
// for every neighbor v > u.
func (s CliqueSeeder) Finish(key string, state any, ctx core.Context) error {
	st, err := Store(ctx)
	if err != nil {
		return err
	}
	adjAny, ok := st.Table(kcAdjTable).LocalGet(ctx.Node(), key)
	if !ok {
		return fmt.Errorf("hamrapps: adjacency for %s missing on node %d", key, ctx.Node())
	}
	u, err := strconv.ParseInt(key, 10, 64)
	if err != nil {
		return err
	}
	adj := adjAny.(neighborSet)
	neighbors := make([]int64, 0, len(adj))
	for v := range adj {
		if v > u {
			neighbors = append(neighbors, v)
		}
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	for _, v := range neighbors {
		cand := fmt.Sprintf("%d,%d", u, v)
		if s.K == 2 {
			if err := ctx.EmitTo("out", core.KV{Key: cand, Value: int64(1)}); err != nil {
				return err
			}
			continue
		}
		if err := ctx.EmitTo("verify2", core.KV{Key: strconv.FormatInt(v, 10), Value: cand}); err != nil {
			return err
		}
	}
	return nil
}

// CliqueVerify is verify stage i (2 <= i <= K): it receives candidates of
// size i keyed by their newest vertex, so the stage runs on the node
// holding that vertex's adjacency. A validated K-clique goes to the sink;
// smaller validated cliques are extended by one vertex and sent to the
// next stage.
type CliqueVerify struct {
	Size int // i — the size of the candidate arriving here
	K    int
}

// Map implements core.Mapper.
func (cv CliqueVerify) Map(kv core.KV, ctx core.Context) error {
	st, err := Store(ctx)
	if err != nil {
		return err
	}
	newest, err := strconv.ParseInt(kv.Key, 10, 64)
	if err != nil {
		return err
	}
	members := strings.Split(kv.Value.(string), ",")
	if len(members) != cv.Size {
		return fmt.Errorf("hamrapps: stage %d got %d-clique %q", cv.Size, len(members), kv.Value)
	}
	adjAny, ok := st.Table(kcAdjTable).LocalGet(ctx.Node(), kv.Key)
	if !ok {
		return nil // newest vertex has no adjacency here: not a clique
	}
	adj := adjAny.(neighborSet)
	// Validate: every earlier member must neighbor the newest vertex. The
	// second-newest is guaranteed (the candidate was extended through its
	// adjacency), but checking all is cheap and robust.
	for _, m := range members[:len(members)-1] {
		mv, err := strconv.ParseInt(m, 10, 64)
		if err != nil {
			return err
		}
		if !adj[mv] {
			return nil
		}
	}
	if cv.Size == cv.K {
		return ctx.EmitTo("out", core.KV{Key: kv.Value.(string), Value: int64(1)})
	}
	// Extend by each neighbor greater than the newest vertex.
	next := make([]int64, 0, len(adj))
	for v := range adj {
		if v > newest {
			next = append(next, v)
		}
	}
	sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	stage := fmt.Sprintf("verify%d", cv.Size+1)
	for _, v := range next {
		cand := kv.Value.(string) + "," + strconv.FormatInt(v, 10)
		if err := ctx.EmitTo(stage, core.KV{Key: strconv.FormatInt(v, 10), Value: cand}); err != nil {
			return err
		}
	}
	return nil
}

// BuildKCliques constructs the Algorithm 3 graph for clique size K >= 2.
// The sink receives one ("v1,...,vK", 1) pair per clique.
func BuildKCliques(k int, edgeLoader core.Loader) (*core.Graph, *core.CollectSink, error) {
	if k < 2 {
		return nil, nil, fmt.Errorf("hamrapps: K must be >= 2, got %d", k)
	}
	g := core.NewGraph(fmt.Sprintf("%d-cliques", k))
	sink := core.NewCollectSink()
	ld, err := g.AddLoader("load", &CliqueLoader{Inner: edgeLoader})
	if err != nil {
		return nil, nil, err
	}
	gb, err := g.AddReduce("graphbuilder", GraphBuilder{})
	if err != nil {
		return nil, nil, err
	}
	seed, err := g.AddPartialReduce("seeder", CliqueSeeder{K: k})
	if err != nil {
		return nil, nil, err
	}
	sk, err := g.AddSink("out", sink)
	if err != nil {
		return nil, nil, err
	}
	if err := g.Connect(ld, gb); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(gb, seed); err != nil {
		return nil, nil, err
	}
	prev := seed
	for size := 2; size <= k; size++ {
		v, err := g.AddMap(fmt.Sprintf("verify%d", size), CliqueVerify{Size: size, K: k})
		if err != nil {
			return nil, nil, err
		}
		if err := g.Connect(prev, v); err != nil {
			return nil, nil, err
		}
		prev = v
	}
	// Candidate-emitting stages can also reach the sink directly ("out"):
	// the seeder for K == 2, the final verify stage otherwise.
	if err := g.Connect(prev, sk, core.WithRouting(core.RouteLocal)); err != nil {
		return nil, nil, err
	}
	return g, sink, nil
}
