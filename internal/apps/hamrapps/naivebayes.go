package hamrapps

import (
	"fmt"
	"strings"

	"github.com/hamr-go/hamr/internal/core"
)

// NaiveBayes training, Algorithm 4: one job with three flowlets replacing
// the two Hadoop jobs of the Mahout implementation.
//
//	TextLoader -> IndexInstances(map) -> VectorSum(partial reduce)
//	           -> WeightSum(partial reduce) -> sink
//
// Output keys: "labelweight|<label>" (total feature weight per label) and
// "featureweight|<feature>" (total weight per feature), the sufficient
// statistics the Mahout trainer materializes.

// wordVec is a sparse feature-count vector used as partial-reduce state.
type wordVec map[string]int64

// SizeBytes implements core.Sizer for memory accounting.
func (v wordVec) SizeBytes() int64 {
	n := int64(48)
	for k := range v {
		n += int64(len(k)) + 24
	}
	return n
}

// IndexInstances parses "label<TAB>w w w" lines into (label, words).
type IndexInstances struct{}

// Map implements core.Mapper.
func (IndexInstances) Map(kv core.KV, ctx core.Context) error {
	line := kv.Value.(string)
	tab := strings.IndexByte(line, '\t')
	if tab <= 0 {
		return nil
	}
	label := line[:tab]
	words := strings.Fields(line[tab+1:])
	if len(words) == 0 {
		return nil
	}
	return ctx.Emit(core.KV{Key: label, Value: words})
}

// VectorSum folds per-label word vectors; on finish it emits the per-label
// total weight and per-feature weights for the downstream weight sum.
type VectorSum struct{}

// UpdateWeight implements core.UpdateCoster: summing one document's vector
// writes many elements of the shared per-label accumulator, though under a
// single lock acquisition (hence the /8 amortization).
func (VectorSum) UpdateWeight(value any) int {
	if words, ok := value.([]string); ok {
		return 1 + len(words)/8
	}
	return 1
}

// Update implements core.PartialReducer.
func (VectorSum) Update(key string, state, value any) (any, error) {
	vec, _ := state.(wordVec)
	if vec == nil {
		vec = make(wordVec)
	}
	words, ok := value.([]string)
	if !ok {
		return nil, fmt.Errorf("hamrapps: VectorSum got %T, want []string", value)
	}
	for _, w := range words {
		vec[w]++
	}
	return vec, nil
}

// Finish implements core.PartialReducer.
func (VectorSum) Finish(label string, state any, ctx core.Context) error {
	vec := state.(wordVec)
	var total int64
	for w, n := range vec {
		total += n
		if err := ctx.EmitTo("weightsum", core.KV{Key: w, Value: n}); err != nil {
			return err
		}
	}
	return ctx.EmitTo("out", core.KV{Key: "labelweight|" + label, Value: total})
}

// WeightSum folds per-feature weights.
type WeightSum struct{}

// Update implements core.PartialReducer.
func (WeightSum) Update(key string, state, value any) (any, error) {
	if state == nil {
		return value.(int64), nil
	}
	return state.(int64) + value.(int64), nil
}

// Finish implements core.PartialReducer.
func (WeightSum) Finish(feature string, state any, ctx core.Context) error {
	return ctx.Emit(core.KV{Key: "featureweight|" + feature, Value: state.(int64)})
}

// BuildNaiveBayes constructs the Algorithm 4 graph.
func BuildNaiveBayes(loader core.Loader) (*core.Graph, *core.CollectSink, error) {
	g := core.NewGraph("naivebayes")
	sink := core.NewCollectSink()
	ld, err := g.AddLoader("load", loader)
	if err != nil {
		return nil, nil, err
	}
	idx, err := g.AddMap("index", IndexInstances{})
	if err != nil {
		return nil, nil, err
	}
	vs, err := g.AddPartialReduce("vectorsum", VectorSum{})
	if err != nil {
		return nil, nil, err
	}
	ws, err := g.AddPartialReduce("weightsum", WeightSum{})
	if err != nil {
		return nil, nil, err
	}
	sk, err := g.AddSink("out", sink)
	if err != nil {
		return nil, nil, err
	}
	// Documents are parsed on the node holding them (§3.3).
	if err := g.Connect(ld, idx, core.WithRouting(core.RouteLocal)); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(idx, vs); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(vs, ws); err != nil {
		return nil, nil, err
	}
	// VectorSum emits label weights straight to the sink (multi-output,
	// §3.2's "flexible input/output way").
	if err := g.Connect(vs, sk); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(ws, sk); err != nil {
		return nil, nil, err
	}
	return g, sink, nil
}
