package hamrapps

import (
	"fmt"
	"math"

	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
)

// MovieAvgBucket is the HistogramMovies map flowlet: parse a movie record,
// compute its average rating, and emit one count for the half-star bucket
// (1.0, 1.5, ..., 5.0) it falls in — 8 buckets, like the PUMA benchmark.
type MovieAvgBucket struct{}

// BucketKey renders a histogram bucket.
func BucketKey(b float64) string { return fmt.Sprintf("%.1f", b) }

// Map implements core.Mapper.
func (MovieAvgBucket) Map(kv core.KV, ctx core.Context) error {
	rec, ok := datagen.ParseMovie(kv.Value.(string))
	if !ok || len(rec.Ratings) == 0 {
		return nil
	}
	avg := rec.AvgRating()
	bucket := math.Round(avg*2) / 2
	if bucket < 1 {
		bucket = 1
	}
	if bucket > 5 {
		bucket = 5
	}
	return ctx.Emit(core.KV{Key: BucketKey(bucket), Value: int64(1)})
}

// RatingExplode is the HistogramRatings map flowlet: emit one count per
// individual user rating. The key space is exactly five values (1..5), the
// extreme skew behind the paper's 0.26x result (§5.2): the shuffle routes
// everything to at most five nodes and each hot node folds into a single
// shared variable.
type RatingExplode struct{}

// Map implements core.Mapper.
func (RatingExplode) Map(kv core.KV, ctx core.Context) error {
	rec, ok := datagen.ParseMovie(kv.Value.(string))
	if !ok {
		return nil
	}
	for _, r := range rec.Ratings {
		if err := ctx.Emit(core.KV{Key: fmt.Sprintf("%d", int(r)), Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

// HistogramOptions configures the two histogram benchmarks.
type HistogramOptions struct {
	Loader core.Loader
	// Combiner adds the node-local pre-aggregation of Table 3.
	Combiner bool
	// SerializeUpdates applies the paper's proposed fix for hot shared
	// variables: one updater at a time per node (§5.2).
	SerializeUpdates bool
}

func buildHistogram(name string, mapper core.Mapper, opts HistogramOptions) (*core.Graph, *core.CollectSink, error) {
	g := core.NewGraph(name)
	sink := core.NewCollectSink()
	ld, err := g.AddLoader("load", opts.Loader)
	if err != nil {
		return nil, nil, err
	}
	mp, err := g.AddMap("bucket", mapper)
	if err != nil {
		return nil, nil, err
	}
	prev := mp
	if opts.Combiner {
		cb, err := g.AddPartialReduce("combine", SumCounts{})
		if err != nil {
			return nil, nil, err
		}
		if err := g.Connect(mp, cb, core.WithRouting(core.RouteLocal)); err != nil {
			return nil, nil, err
		}
		prev = cb
	}
	cnt, err := g.AddPartialReduce("count", SumCounts{})
	if err != nil {
		return nil, nil, err
	}
	if opts.SerializeUpdates {
		g.Flowlets()[cnt].SerializeUpdates = true
	}
	sk, err := g.AddSink("out", sink)
	if err != nil {
		return nil, nil, err
	}
	// Records are parsed on the node holding them (§3.3).
	if err := g.Connect(ld, mp, core.WithRouting(core.RouteLocal)); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(prev, cnt); err != nil {
		return nil, nil, err
	}
	if err := g.Connect(cnt, sk); err != nil {
		return nil, nil, err
	}
	return g, sink, nil
}

// BuildHistogramMovies constructs the HistogramMovies graph:
//
//	loader -> avg+bucket(map) -> [combine ->] count(partial reduce) -> sink
func BuildHistogramMovies(opts HistogramOptions) (*core.Graph, *core.CollectSink, error) {
	return buildHistogram("histogram-movies", MovieAvgBucket{}, opts)
}

// BuildHistogramRatings constructs the HistogramRatings graph:
//
//	loader -> explode(map) -> [combine ->] count(partial reduce) -> sink
func BuildHistogramRatings(opts HistogramOptions) (*core.Graph, *core.CollectSink, error) {
	return buildHistogram("histogram-ratings", RatingExplode{}, opts)
}
