package apps_test

import (
	"strings"
	"testing"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/apps/mrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
)

// TestKCliquesMemoryBoundary reproduces the §5.2 observation: "because all
// of the clique information must fit into memory in reduce phase, Hadoop
// quickly runs out of memory for larger graphs. HAMR solves this problem
// by building the graph into memory distributedly."
//
// With a per-task heap too small for the graph's adjacency, the baseline's
// reduce tasks die with a (simulated) OutOfMemoryError, while the flowlet
// engine — whose per-node kv-store shards the graph across the cluster —
// completes the same input.
func TestKCliquesMemoryBoundary(t *testing.T) {
	data := datagen.RMAT(datagen.RMATConfig{Seed: 77, Scale: 7, Edges: 900})

	// Baseline with a tiny per-task heap: OOM.
	mrC, err := cluster.New(cluster.Options{NumNodes: 4, HDFSBlockSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer mrC.Close()
	if err := mrC.FS().WriteFile("in/graph", data, -1); err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(mrC, mapreduce.Config{ReduceHeapBytes: 2 << 10})
	_, err = mrapps.RunKCliquesMR(eng, mrC.FS(), "in/graph", "work", 3, 4)
	if err == nil {
		t.Fatal("baseline with 2KiB task heap completed; expected OOM")
	}
	if !strings.Contains(err.Error(), "OutOfMemoryError") {
		t.Fatalf("baseline failed with %v, want OOM", err)
	}

	// HAMR on an equally tight per-node budget (with spill space for its
	// reduce accumulation): completes.
	hamrC, err := cluster.New(cluster.Options{
		NumNodes: 4,
		Core:     core.Config{Workers: 2, MemoryBudget: 2 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hamrC.Close()
	files, err := hamrapps.DistributeLocalText(hamrC, "graph", data, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, sink, err := hamrapps.BuildKCliques(3, &hamrapps.LocalTextLoader{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hamrC.Run(g); err != nil {
		t.Fatalf("flowlet engine failed on the same input: %v", err)
	}
	if sink.Len() == 0 {
		t.Fatal("flowlet engine found no cliques")
	}
}

// TestDiskFullFailureSurfaces injects a disk-full failure during the
// baseline's map-side spill and checks the job fails cleanly rather than
// hanging or corrupting output.
func TestDiskFullFailureSurfaces(t *testing.T) {
	c, err := cluster.New(cluster.Options{
		NumNodes:      2,
		HDFSBlockSize: 4 << 10,
		DiskCapacity:  24 << 10, // input fits; intermediates do not
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := datagen.Text(datagen.TextConfig{Seed: 9, Vocabulary: 500, Lines: 400})
	if err := c.FS().WriteFile("in/words", data, -1); err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{SortBufferBytes: 1 << 10})
	_, err = eng.Run(mrapps.WordCountJob("in/words", "out", false, 2))
	if err == nil {
		t.Fatal("job succeeded with a disk too small for its spills")
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("failure was %v, want disk-full", err)
	}
}
