package mrapps

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/hdfs"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/transport"
)

// PageRank for the Hadoop baseline: two chained jobs per iteration (§4:
// "Hadoop version uses two jobs to implement one iteration"), with all
// intermediate state — adjacency lists and ranks — materialized in HDFS
// between jobs and between iterations. Damping matches the flowlet
// version: rank = 0.15 + 0.85·Σ contributions; pages keep rank 1.0 until
// they receive contributions.
//
// Line formats in intermediate files:
//
//	"src dst"            raw edge (iteration 1 input)
//	"page\tA:d1,d2,..."  adjacency carried between iterations
//	"page\tR:rank"       current rank
//	"page\tC:v"          one contribution (between job 1 and job 2)

// prJoinJob is job 1: join ranks with adjacency and emit contributions,
// passing the adjacency through.
func prJoinJob(input, output string, reduces int) mapreduce.Job {
	return mapreduce.Job{
		Name:          "pagerank-join",
		InputPrefixes: []string{input},
		Output:        output,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(kv core.KV, out mapreduce.Emitter) error {
				line := kv.Value.(string)
				if line == "" {
					return nil
				}
				if tab := strings.IndexByte(line, '\t'); tab > 0 {
					return out.Emit(core.KV{Key: line[:tab], Value: line[tab+1:]})
				}
				f := strings.Fields(line)
				if len(f) != 2 {
					return fmt.Errorf("mrapps: bad pagerank line %q", line)
				}
				return out.Emit(core.KV{Key: f[0], Value: "E:" + f[1]})
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(page string, values []any, out mapreduce.Emitter) error {
				rank := 1.0
				var dsts []string
				for _, v := range values {
					s := v.(string)
					switch {
					case strings.HasPrefix(s, "E:"):
						dsts = append(dsts, s[2:])
					case strings.HasPrefix(s, "A:"):
						if s != "A:" {
							dsts = append(dsts, strings.Split(s[2:], ",")...)
						}
					case strings.HasPrefix(s, "R:"):
						r, err := strconv.ParseFloat(s[2:], 64)
						if err != nil {
							return err
						}
						rank = r
					case strings.HasPrefix(s, "C:"):
						// Stray contribution from a malformed chain; ignore.
					default:
						return fmt.Errorf("mrapps: bad pagerank value %q", s)
					}
				}
				sort.Strings(dsts)
				dsts = dedupe(dsts)
				if err := out.Charge(int64(len(dsts) * 8)); err != nil {
					return err
				}
				// Carry the graph and the current rank forward.
				if err := out.Emit(core.KV{Key: page, Value: "A:" + strings.Join(dsts, ",")}); err != nil {
					return err
				}
				if err := out.Emit(core.KV{Key: page, Value: fmt.Sprintf("R:%g", rank)}); err != nil {
					return err
				}
				if len(dsts) == 0 {
					return nil
				}
				contrib := rank / float64(len(dsts))
				for _, d := range dsts {
					if err := out.Emit(core.KV{Key: d, Value: fmt.Sprintf("C:%g", contrib)}); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NumReduces: reduces,
	}
}

// prAggJob is job 2: sum contributions into new ranks, passing adjacency
// through for the next iteration.
func prAggJob(input, output string, reduces int) mapreduce.Job {
	return mapreduce.Job{
		Name:          "pagerank-agg",
		InputPrefixes: []string{input},
		Output:        output,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(kv core.KV, out mapreduce.Emitter) error {
				line := kv.Value.(string)
				tab := strings.IndexByte(line, '\t')
				if tab <= 0 {
					return nil
				}
				return out.Emit(core.KV{Key: line[:tab], Value: line[tab+1:]})
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(page string, values []any, out mapreduce.Emitter) error {
				var sum float64
				gotContrib := false
				oldRank := 1.0
				adj := ""
				hasAdj := false
				for _, v := range values {
					s := v.(string)
					switch {
					case strings.HasPrefix(s, "C:"):
						c, err := strconv.ParseFloat(s[2:], 64)
						if err != nil {
							return err
						}
						sum += c
						gotContrib = true
					case strings.HasPrefix(s, "R:"):
						r, err := strconv.ParseFloat(s[2:], 64)
						if err != nil {
							return err
						}
						oldRank = r
					case strings.HasPrefix(s, "A:"):
						adj = s
						hasAdj = true
					default:
						return fmt.Errorf("mrapps: bad pagerank value %q", s)
					}
				}
				rank := oldRank
				if gotContrib {
					rank = 0.15 + 0.85*sum
				}
				if hasAdj {
					if err := out.Emit(core.KV{Key: page, Value: adj}); err != nil {
						return err
					}
				}
				return out.Emit(core.KV{Key: page, Value: fmt.Sprintf("R:%g", rank)})
			})
		},
		NumReduces: reduces,
	}
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if s == "" {
			continue
		}
		if i > 0 && s == sorted[i-1] {
			continue
		}
		out = append(out, s)
	}
	return out
}

// PageRankMRResult is the outcome of the baseline PageRank driver.
type PageRankMRResult struct {
	Iterations int
	Ranks      map[string]float64
	Result     *mapreduce.Result
}

// RunPageRankMR executes `iters` PageRank iterations as 2·iters chained
// jobs, reading the edge file from `input` and leaving final state under
// `work/iter<N>`. It parses the final ranks from HDFS.
func RunPageRankMR(e *mapreduce.Engine, fs *hdfs.FileSystem, input, work string, iters, reduces int) (*PageRankMRResult, error) {
	if iters <= 0 {
		iters = 1
	}
	cur := input
	var jobs []mapreduce.Job
	var finalOut string
	for it := 0; it < iters; it++ {
		mid := fmt.Sprintf("%s/iter%02d-contrib", work, it)
		out := fmt.Sprintf("%s/iter%02d-rank", work, it)
		jobs = append(jobs, prJoinJob(cur, mid, reduces), prAggJob(mid+"/", out, reduces))
		cur = out + "/"
		finalOut = out
	}
	res, err := e.RunChain(jobs...)
	if err != nil {
		return nil, err
	}
	ranks := make(map[string]float64)
	for _, f := range fs.List(finalOut + "/") {
		data, err := fs.ReadFile(f, transport.NodeID(-1))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			tab := strings.IndexByte(line, '\t')
			if tab <= 0 || !strings.HasPrefix(line[tab+1:], "R:") {
				continue
			}
			r, err := strconv.ParseFloat(line[tab+3:], 64)
			if err != nil {
				return nil, err
			}
			ranks[line[:tab]] = r
		}
	}
	return &PageRankMRResult{Iterations: iters, Ranks: ranks, Result: res}, nil
}
