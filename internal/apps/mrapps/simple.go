// Package mrapps implements the paper's eight benchmarks for the Hadoop
// baseline engine, following the PUMA / HiBench implementations they were
// measured with (§4): WordCount, HistogramMovies, HistogramRatings,
// NaiveBayes (two chained jobs), K-Means (one job per iteration),
// Classification, PageRank (two chained jobs per iteration) and K-Cliques
// (one job per clique size).
package mrapps

import (
	"fmt"
	"math"
	"strings"

	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
)

// sumReducer adds int64 counts; it doubles as the combiner.
func sumReducer() mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values []any, out mapreduce.Emitter) error {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return out.Emit(core.KV{Key: key, Value: total})
	})
}

// WordCountJob builds the PUMA WordCount job. The combiner is what lets
// Hadoop stay within 1.2x of HAMR on this benchmark (§5.2).
func WordCountJob(input, output string, combiner bool, reduces int) mapreduce.Job {
	j := mapreduce.Job{
		Name:          "wordcount",
		InputPrefixes: []string{input},
		Output:        output,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(kv core.KV, out mapreduce.Emitter) error {
				for _, w := range strings.Fields(kv.Value.(string)) {
					if err := out.Emit(core.KV{Key: w, Value: int64(1)}); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NewReducer: sumReducer,
		NumReduces: reduces,
	}
	if combiner {
		j.NewCombiner = sumReducer
	}
	return j
}

// HistogramMoviesJob buckets movies by average rating (half stars 1..5).
func HistogramMoviesJob(input, output string, combiner bool, reduces int) mapreduce.Job {
	j := mapreduce.Job{
		Name:          "histogram-movies",
		InputPrefixes: []string{input},
		Output:        output,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(kv core.KV, out mapreduce.Emitter) error {
				rec, ok := datagen.ParseMovie(kv.Value.(string))
				if !ok || len(rec.Ratings) == 0 {
					return nil
				}
				b := math.Round(rec.AvgRating()*2) / 2
				if b < 1 {
					b = 1
				}
				if b > 5 {
					b = 5
				}
				return out.Emit(core.KV{Key: fmt.Sprintf("%.1f", b), Value: int64(1)})
			})
		},
		NewReducer: sumReducer,
		NumReduces: reduces,
	}
	if combiner {
		j.NewCombiner = sumReducer
	}
	return j
}

// HistogramRatingsJob counts individual ratings (five keys). PUMA's
// version runs with a combiner, which keeps Hadoop's shuffle tiny and is
// why it beats HAMR here (§5.2).
func HistogramRatingsJob(input, output string, combiner bool, reduces int) mapreduce.Job {
	j := mapreduce.Job{
		Name:          "histogram-ratings",
		InputPrefixes: []string{input},
		Output:        output,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(kv core.KV, out mapreduce.Emitter) error {
				rec, ok := datagen.ParseMovie(kv.Value.(string))
				if !ok {
					return nil
				}
				for _, r := range rec.Ratings {
					if err := out.Emit(core.KV{Key: fmt.Sprintf("%d", int(r)), Value: int64(1)}); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NewReducer: sumReducer,
		NumReduces: reduces,
	}
	if combiner {
		j.NewCombiner = sumReducer
	}
	return j
}

// NaiveBayesJobs builds the two chained Mahout-style training jobs
// (§4: "replace two jobs in Hadoop version"):
//
//	job 1: (label, words) -> per-label feature vectors; emits
//	       per-(label,feature) weights and per-label totals.
//	job 2: per-feature weight sums across labels.
//
// Final output keys match the HAMR implementation: "labelweight|<label>"
// and "featureweight|<feature>".
func NaiveBayesJobs(input, mid, output string, reduces int) []mapreduce.Job {
	job1 := mapreduce.Job{
		Name:          "nb-vectorsum",
		InputPrefixes: []string{input},
		Output:        mid,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(kv core.KV, out mapreduce.Emitter) error {
				line := kv.Value.(string)
				tab := strings.IndexByte(line, '\t')
				if tab <= 0 {
					return nil
				}
				label := line[:tab]
				for _, w := range strings.Fields(line[tab+1:]) {
					if err := out.Emit(core.KV{Key: label + "|" + w, Value: int64(1)}); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NewReducer:  sumReducer,
		NewCombiner: sumReducer,
		NumReduces:  reduces,
	}
	job2 := mapreduce.Job{
		Name:          "nb-weightsum",
		InputPrefixes: []string{mid + "/"},
		Output:        output,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(kv core.KV, out mapreduce.Emitter) error {
				// Input lines: "label|feature\tcount".
				line := kv.Value.(string)
				tab := strings.IndexByte(line, '\t')
				if tab <= 0 {
					return nil
				}
				lf := line[:tab]
				var n int64
				if _, err := fmt.Sscanf(line[tab+1:], "%d", &n); err != nil {
					return fmt.Errorf("mrapps: bad weight line %q: %w", line, err)
				}
				bar := strings.IndexByte(lf, '|')
				if bar <= 0 {
					return nil
				}
				label, feature := lf[:bar], lf[bar+1:]
				if err := out.Emit(core.KV{Key: "featureweight|" + feature, Value: n}); err != nil {
					return err
				}
				return out.Emit(core.KV{Key: "labelweight|" + label, Value: n})
			})
		},
		NewReducer:  sumReducer,
		NewCombiner: sumReducer,
		NumReduces:  reduces,
	}
	return []mapreduce.Job{job1, job2}
}
