package mrapps

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
)

// KMeansJob builds the PUMA single-iteration K-Means job. Unlike the
// flowlet version (which ships only positions, §3.3), the Hadoop version
// shuffles the *full movie records* to the reducers: map assigns each
// movie to its most-similar centroid and emits (cluster, "sim;record");
// reduce picks the most-representative record as the new centroid — the
// big intermediate data volume the paper attributes Hadoop's K-Means cost
// to (§4: "this process causes big disk IO and network overhead").
//
// Output lines: "<cluster>\t<centroid>" with hamrapps.FormatCentroid's
// encoding, so results are directly comparable with the flowlet version.
func KMeansJob(input, output string, centroids []hamrapps.Centroid, reduces int) mapreduce.Job {
	return mapreduce.Job{
		Name:          "kmeans",
		InputPrefixes: []string{input},
		Output:        output,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(kv core.KV, out mapreduce.Emitter) error {
				rec, ok := datagen.ParseMovie(kv.Value.(string))
				if !ok || len(rec.Ratings) == 0 {
					return nil
				}
				best, sim := hamrapps.BestCluster(rec, centroids)
				// The whole record crosses the shuffle.
				if err := out.Charge(kv.Size()); err != nil {
					return err
				}
				return out.Emit(core.KV{
					Key:   fmt.Sprintf("%d", best),
					Value: fmt.Sprintf("%.12g;%s", sim, kv.Value.(string)),
				})
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, out mapreduce.Emitter) error {
				type member struct {
					sim  float64
					id   string
					line string
				}
				recs := make([]member, 0, len(values))
				for _, v := range values {
					s := v.(string)
					i := strings.IndexByte(s, ';')
					if i < 0 {
						return fmt.Errorf("mrapps: bad kmeans record %q", s)
					}
					sim, err := strconv.ParseFloat(s[:i], 64)
					if err != nil {
						return err
					}
					line := s[i+1:]
					rec, ok := datagen.ParseMovie(line)
					if !ok {
						return fmt.Errorf("mrapps: unparsable member %q", line)
					}
					recs = append(recs, member{sim: sim, id: rec.ID, line: line})
				}
				if len(recs) == 0 {
					return nil
				}
				// Median-similarity medoid, ordered exactly like the
				// flowlet version: (similarity, movie id).
				sort.Slice(recs, func(i, j int) bool {
					if recs[i].sim != recs[j].sim {
						return recs[i].sim < recs[j].sim
					}
					return recs[i].id < recs[j].id
				})
				chosen := recs[hamrapps.MedianIndex(len(recs))]
				rec, _ := datagen.ParseMovie(chosen.line)
				return out.Emit(core.KV{Key: key, Value: hamrapps.FormatCentroid(rec.Ratings)})
			})
		},
		NumReduces: reduces,
	}
}

// ClassificationJob builds the PUMA Classification job: fixed centroids,
// map assigns each movie and emits (cluster, full record) — the whole
// dataset crosses the sort/spill path and the shuffle, exactly the cost
// the flowlet version's local identifier-passing avoids (§3.3). With
// materialize set the reducers write the grouped records to HDFS (the
// PUMA behaviour); otherwise they emit per-cluster counts (used by the
// differential tests for cross-engine comparison).
func ClassificationJob(input, output string, centroids []hamrapps.Centroid, reduces int, materialize bool) mapreduce.Job {
	return mapreduce.Job{
		Name:          "classification",
		InputPrefixes: []string{input},
		Output:        output,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(kv core.KV, out mapreduce.Emitter) error {
				rec, ok := datagen.ParseMovie(kv.Value.(string))
				if !ok || len(rec.Ratings) == 0 {
					return nil
				}
				best, _ := hamrapps.BestCluster(rec, centroids)
				if err := out.Charge(kv.Size()); err != nil {
					return err
				}
				return out.Emit(core.KV{Key: fmt.Sprintf("%d", best), Value: kv.Value})
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, out mapreduce.Emitter) error {
				if !materialize {
					return out.Emit(core.KV{Key: key, Value: int64(len(values))})
				}
				for _, v := range values {
					if err := out.Emit(core.KV{Key: key, Value: v}); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NumReduces: reduces,
	}
}
