package mrapps

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
)

func newEnv(t testing.TB, nodes int) (*cluster.Cluster, *mapreduce.Engine) {
	t.Helper()
	c, err := cluster.New(cluster.Options{NumNodes: nodes, HDFSBlockSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, mapreduce.NewEngine(c, mapreduce.Config{})
}

func writeInput(t testing.TB, c *cluster.Cluster, path string, data []byte) {
	t.Helper()
	if err := c.FS().WriteFile(path, data, -1); err != nil {
		t.Fatal(err)
	}
}

func readOutput(t testing.TB, c *cluster.Cluster, prefix string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, f := range c.FS().List(prefix) {
		data, err := c.FS().ReadFile(f, -1)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			parts := strings.SplitN(line, "\t", 2)
			if len(parts) == 2 {
				out[parts[0]] = parts[1]
			}
		}
	}
	return out
}

func TestWordCountJobCounts(t *testing.T) {
	c, e := newEnv(t, 3)
	writeInput(t, c, "in/w", []byte("a b a\nc a b\n"))
	if _, err := e.Run(WordCountJob("in/w", "out", true, 2)); err != nil {
		t.Fatal(err)
	}
	got := readOutput(t, c, "out/")
	if got["a"] != "3" || got["b"] != "2" || got["c"] != "1" {
		t.Fatalf("counts = %v", got)
	}
}

func TestHistogramJobsCoverInput(t *testing.T) {
	c, e := newEnv(t, 3)
	data := datagen.Movies(datagen.MoviesConfig{Seed: 51, Movies: 200, Users: 40})
	writeInput(t, c, "in/m", data)

	if _, err := e.Run(HistogramMoviesJob("in/m", "hm", true, 3)); err != nil {
		t.Fatal(err)
	}
	var movieTotal int64
	for bucket, v := range readOutput(t, c, "hm/") {
		b, err := strconv.ParseFloat(bucket, 64)
		if err != nil || b < 1 || b > 5 || b != math.Round(b*2)/2 {
			t.Errorf("bad bucket %q", bucket)
		}
		n, _ := strconv.ParseInt(v, 10, 64)
		movieTotal += n
	}
	if movieTotal != 200 {
		t.Fatalf("histogram covers %d movies", movieTotal)
	}

	if _, err := e.Run(HistogramRatingsJob("in/m", "hr", true, 5)); err != nil {
		t.Fatal(err)
	}
	ratings := readOutput(t, c, "hr/")
	if len(ratings) == 0 || len(ratings) > 5 {
		t.Fatalf("rating buckets = %v", ratings)
	}
	for r := range ratings {
		if n, err := strconv.Atoi(r); err != nil || n < 1 || n > 5 {
			t.Errorf("bad rating key %q", r)
		}
	}
}

func TestNaiveBayesJobsChainConsistency(t *testing.T) {
	c, e := newEnv(t, 3)
	data := datagen.Docs(datagen.DocsConfig{Seed: 53, Labels: 2, Vocabulary: 30, Docs: 100})
	writeInput(t, c, "in/d", data)
	res, err := e.RunChain(NaiveBayesJobs("in/d", "mid", "out", 2)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("%d jobs", len(res.Jobs))
	}
	var labelTotal, featureTotal int64
	for k, v := range readOutput(t, c, "out/") {
		n, _ := strconv.ParseInt(v, 10, 64)
		switch {
		case strings.HasPrefix(k, "labelweight|"):
			labelTotal += n
		case strings.HasPrefix(k, "featureweight|"):
			featureTotal += n
		default:
			t.Errorf("unexpected key %q", k)
		}
	}
	if labelTotal == 0 || labelTotal != featureTotal {
		t.Fatalf("label total %d != feature total %d", labelTotal, featureTotal)
	}
}

func TestKMeansJobPicksMedianMedoid(t *testing.T) {
	c, e := newEnv(t, 2)
	data := datagen.Movies(datagen.MoviesConfig{Seed: 55, Movies: 90, Users: 30, Clusters: 3})
	writeInput(t, c, "in/m", data)
	cents := datagen.InitialCentroids(data, 3)
	if _, err := e.Run(KMeansJob("in/m", "out", cents, 3)); err != nil {
		t.Fatal(err)
	}
	got := readOutput(t, c, "out/")
	if len(got) != 3 {
		t.Fatalf("%d centroids", len(got))
	}
	for k, v := range got {
		if _, err := strconv.Atoi(k); err != nil {
			t.Errorf("bad cluster key %q", k)
		}
		cent, err := hamrapps.ParseCentroid(v)
		if err != nil || len(cent) == 0 {
			t.Errorf("bad centroid %q: %v", v, err)
		}
	}
}

func TestClassificationJobModes(t *testing.T) {
	c, e := newEnv(t, 2)
	data := datagen.Movies(datagen.MoviesConfig{Seed: 57, Movies: 60, Users: 20, Clusters: 2})
	writeInput(t, c, "in/m", data)
	cents := datagen.InitialCentroids(data, 2)

	if _, err := e.Run(ClassificationJob("in/m", "counts", cents, 2, false)); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range readOutput(t, c, "counts/") {
		n, _ := strconv.ParseInt(v, 10, 64)
		total += n
	}
	if total != 60 {
		t.Fatalf("count mode covers %d movies", total)
	}

	if _, err := e.Run(ClassificationJob("in/m", "mat", cents, 2, true)); err != nil {
		t.Fatal(err)
	}
	records := 0
	for _, f := range c.FS().List("mat/") {
		d, _ := c.FS().ReadFile(f, -1)
		for _, line := range strings.Split(string(d), "\n") {
			if line == "" {
				continue
			}
			records++
			parts := strings.SplitN(line, "\t", 2)
			if _, ok := datagen.ParseMovie(parts[1]); !ok {
				t.Fatalf("materialized row is not a movie record: %q", line)
			}
		}
	}
	if records != 60 {
		t.Fatalf("materialize mode wrote %d records", records)
	}
}

func TestPageRankMRRanksSumStable(t *testing.T) {
	c, e := newEnv(t, 3)
	data := datagen.WebGraph(datagen.WebGraphConfig{Seed: 59, Pages: 120, OutLinks: 4})
	writeInput(t, c, "in/g", data)
	res, err := RunPageRankMR(e, c.FS(), "in/g", "work", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 || len(res.Ranks) == 0 {
		t.Fatalf("iterations=%d ranks=%d", res.Iterations, len(res.Ranks))
	}
	for page, r := range res.Ranks {
		if r <= 0 {
			t.Errorf("page %s rank %v", page, r)
		}
	}
}

func TestKCliquesMROnKnownGraph(t *testing.T) {
	c, e := newEnv(t, 3)
	data := datagen.CliqueTestGraph(4, 6) // C(4,3) = 4 triangles
	writeInput(t, c, "in/g", data)
	res, err := RunKCliquesMR(e, c.FS(), "in/g", "work", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0,1,2", "0,1,3", "0,2,3", "1,2,3"}
	sort.Strings(res.Cliques)
	if strings.Join(res.Cliques, " ") != strings.Join(want, " ") {
		t.Fatalf("cliques = %v, want %v", res.Cliques, want)
	}
	if _, err := RunKCliquesMR(e, c.FS(), "in/g", "w2", 2, 3); err == nil {
		t.Error("k=2 accepted")
	}
}

func TestDedupe(t *testing.T) {
	got := dedupe([]string{"", "a", "a", "b", "b", "b", "c"})
	if strings.Join(got, ",") != "a,b,c" {
		t.Fatalf("dedupe = %v", got)
	}
	if out := dedupe(nil); len(out) != 0 {
		t.Fatalf("dedupe(nil) = %v", out)
	}
}
