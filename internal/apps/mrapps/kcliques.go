package mrapps

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/hdfs"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/transport"
)

// K-Cliques for the Hadoop baseline: "an iterative map-reduce strategy"
// (§4). Each job extends candidate cliques by one vertex. Every job
// re-reads and re-shuffles the whole edge list alongside the candidate
// file, and every reduce task materializes the adjacency of its keys in
// memory (charged against the task heap — the paper's reason Hadoop "runs
// out of memory for larger graphs", §5.2).
//
// Candidates are canonical ascending vertex lists "v1,v2,...,vi" keyed by
// their largest vertex.

// kcJob builds the job that takes i-clique candidates to (i+1)-cliques
// (or, when i == k, validates and outputs final cliques).
//
// Inputs: the edge file plus (for i > 2) the previous candidate file.
// Map: edge "u v" -> (u, "E:v"), (v, "E:u"); for i == 2 also the seed
// candidates (max(u,v), "C:min,max"). Candidate line "v1,...,vi" ->
// (vi, "C:v1,...,vi").
func kcJob(name string, edgeInput, candInput, output string, i, k, reduces int) mapreduce.Job {
	inputs := []string{edgeInput}
	if candInput != "" {
		inputs = append(inputs, candInput)
	}
	return mapreduce.Job{
		Name:          name,
		InputPrefixes: inputs,
		Output:        output,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(kv core.KV, out mapreduce.Emitter) error {
				line := strings.TrimSpace(kv.Value.(string))
				if line == "" {
					return nil
				}
				if strings.ContainsRune(line, ',') || !strings.ContainsRune(line, ' ') {
					// Candidate line "v1,...,vi" (possibly via part file
					// "clique\t1" from the previous job's output).
					if tab := strings.IndexByte(line, '\t'); tab > 0 {
						line = line[:tab]
					}
					members := strings.Split(line, ",")
					return out.Emit(core.KV{Key: members[len(members)-1], Value: "C:" + line})
				}
				f := strings.Fields(line)
				if len(f) != 2 {
					return fmt.Errorf("mrapps: bad edge line %q", line)
				}
				u, err := strconv.ParseInt(f[0], 10, 64)
				if err != nil {
					return err
				}
				v, err := strconv.ParseInt(f[1], 10, 64)
				if err != nil {
					return err
				}
				if u == v {
					return nil
				}
				if err := out.Emit(core.KV{Key: f[0], Value: "E:" + f[1]}); err != nil {
					return err
				}
				if err := out.Emit(core.KV{Key: f[1], Value: "E:" + f[0]}); err != nil {
					return err
				}
				if i == 2 {
					lo, hi := u, v
					if lo > hi {
						lo, hi = hi, lo
					}
					return out.Emit(core.KV{
						Key:   strconv.FormatInt(hi, 10),
						Value: fmt.Sprintf("C:%d,%d", lo, hi),
					})
				}
				return nil
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(key string, values []any, out mapreduce.Emitter) error {
				newest, err := strconv.ParseInt(key, 10, 64)
				if err != nil {
					return err
				}
				// Build this vertex's adjacency in task memory — the heap
				// pressure point of the Hadoop implementation.
				adj := make(map[int64]bool)
				var cands []string
				for _, v := range values {
					s := v.(string)
					switch {
					case strings.HasPrefix(s, "E:"):
						n, err := strconv.ParseInt(s[2:], 10, 64)
						if err != nil {
							return err
						}
						if !adj[n] {
							adj[n] = true
							if err := out.Charge(16); err != nil {
								return err
							}
						}
					case strings.HasPrefix(s, "C:"):
						cands = append(cands, s[2:])
						if err := out.Charge(int64(len(s))); err != nil {
							return err
						}
					default:
						return fmt.Errorf("mrapps: bad kcliques value %q", s)
					}
				}
				sort.Strings(cands)
				for _, cand := range cands {
					members := strings.Split(cand, ",")
					valid := true
					for _, m := range members[:len(members)-1] {
						mv, err := strconv.ParseInt(m, 10, 64)
						if err != nil {
							return err
						}
						if !adj[mv] {
							valid = false
							break
						}
					}
					if !valid {
						continue
					}
					if i == k {
						if err := out.Emit(core.KV{Key: cand, Value: int64(1)}); err != nil {
							return err
						}
						continue
					}
					var exts []int64
					for n := range adj {
						if n > newest {
							exts = append(exts, n)
						}
					}
					sort.Slice(exts, func(a, b int) bool { return exts[a] < exts[b] })
					for _, n := range exts {
						next := cand + "," + strconv.FormatInt(n, 10)
						if err := out.Emit(core.KV{Key: next, Value: int64(1)}); err != nil {
							return err
						}
					}
				}
				return nil
			})
		},
		NumReduces: reduces,
		// Candidates in the next job are parsed from "clique\t1" lines.
		OutputFormat: func(kv core.KV) string { return fmt.Sprintf("%s\t%v\n", kv.Key, kv.Value) },
	}
}

// KCliquesMRResult is the outcome of the baseline K-Cliques driver.
type KCliquesMRResult struct {
	Cliques []string
	Result  *mapreduce.Result
}

// RunKCliquesMR finds all k-cliques (k >= 3) with k-2 chained jobs over
// the edge file at `input`, writing intermediates under `work`.
func RunKCliquesMR(e *mapreduce.Engine, fs *hdfs.FileSystem, input, work string, k, reduces int) (*KCliquesMRResult, error) {
	if k < 3 {
		return nil, fmt.Errorf("mrapps: k must be >= 3, got %d", k)
	}
	var jobs []mapreduce.Job
	cand := ""
	var finalOut string
	for i := 2; i < k; i++ {
		out := fmt.Sprintf("%s/cliques-%02d", work, i+1)
		// Job taking i-cliques to (i+1)-cliques; the last job (i == k-1)
		// emits validated k-cliques because extension + validation happen
		// in the same reduce for i+1 == k... extension happens at size i,
		// validation of the extended clique at size i+1, so we need one
		// final validation-only job.
		jobs = append(jobs, kcJob(fmt.Sprintf("kcliques-extend-%d", i), input, cand, out, i, k, reduces))
		cand = out + "/"
		finalOut = out
	}
	// Final validation job: candidates of size k, validate only.
	out := fmt.Sprintf("%s/cliques-final", work)
	jobs = append(jobs, kcJob("kcliques-validate", input, cand, out, k, k, reduces))
	finalOut = out

	res, err := e.RunChain(jobs...)
	if err != nil {
		return nil, err
	}
	var cliques []string
	for _, f := range fs.List(finalOut + "/") {
		data, err := fs.ReadFile(f, transport.NodeID(-1))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			if tab := strings.IndexByte(line, '\t'); tab > 0 {
				line = line[:tab]
			}
			cliques = append(cliques, line)
		}
	}
	sort.Strings(cliques)
	return &KCliquesMRResult{Cliques: cliques, Result: res}, nil
}
