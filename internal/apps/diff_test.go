// Package apps_test differentially tests the eight benchmarks: the flowlet
// implementation and the MapReduce implementation must compute identical
// results from identical inputs — the engines differ in *how* data moves,
// never in *what* is computed.
package apps_test

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/apps/mrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
)

const testNodes = 4

// env builds one cluster per engine (separate substrates, same geometry)
// plus shared input data written both to HDFS (baseline) and node-local
// disks (HAMR).
type env struct {
	hamr *cluster.Cluster
	mr   *cluster.Cluster
	eng  *mapreduce.Engine
}

func newEnv(t testing.TB) *env {
	t.Helper()
	mk := func() *cluster.Cluster {
		c, err := cluster.New(cluster.Options{
			NumNodes:      testNodes,
			HDFSBlockSize: 8 << 10,
			Core:          core.Config{Workers: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	e := &env{hamr: mk(), mr: mk()}
	e.eng = mapreduce.NewEngine(e.mr, mapreduce.Config{})
	return e
}

// feed writes data to the baseline's HDFS and distributes it across the
// HAMR cluster's local disks.
func (e *env) feed(t testing.TB, name string, data []byte) (hdfsPath string, files map[int][]string) {
	t.Helper()
	hdfsPath = "in/" + name
	if err := e.mr.FS().WriteFile(hdfsPath, data, -1); err != nil {
		t.Fatal(err)
	}
	files, err := hamrapps.DistributeLocalText(e.hamr, name, data, 2*testNodes)
	if err != nil {
		t.Fatal(err)
	}
	return hdfsPath, files
}

// mrCounts parses "key\tint" part files.
func mrCounts(t testing.TB, c *cluster.Cluster, prefix string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for _, f := range c.FS().List(prefix) {
		data, err := c.FS().ReadFile(f, -1)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			parts := strings.SplitN(line, "\t", 2)
			if len(parts) != 2 {
				t.Fatalf("bad output line %q", line)
			}
			n, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				t.Fatalf("bad count in %q: %v", line, err)
			}
			out[parts[0]] += n
		}
	}
	return out
}

func sinkCounts(s *core.CollectSink) map[string]int64 {
	out := map[string]int64{}
	for _, kv := range s.Pairs() {
		out[kv.Key] += kv.Value.(int64)
	}
	return out
}

func diffCounts(t *testing.T, name string, hamr, mr map[string]int64) {
	t.Helper()
	if len(hamr) == 0 {
		t.Fatalf("%s: flowlet output empty", name)
	}
	if len(hamr) != len(mr) {
		t.Errorf("%s: %d keys (flowlet) vs %d keys (mapreduce)", name, len(hamr), len(mr))
	}
	for k, v := range hamr {
		if mr[k] != v {
			t.Errorf("%s[%q]: flowlet %d, mapreduce %d", name, k, v, mr[k])
		}
	}
	for k := range mr {
		if _, ok := hamr[k]; !ok {
			t.Errorf("%s[%q]: only in mapreduce output", name, k)
		}
	}
}

func TestDiffWordCount(t *testing.T) {
	for _, combiner := range []bool{false, true} {
		t.Run(fmt.Sprintf("combiner=%v", combiner), func(t *testing.T) {
			e := newEnv(t)
			data := datagen.Text(datagen.TextConfig{Seed: 1, Vocabulary: 200, Lines: 400})
			hp, files := e.feed(t, "words.txt", data)

			g, sink, err := hamrapps.BuildWordCount(hamrapps.WordCountOptions{
				Loader:   &hamrapps.LocalTextLoader{Files: files},
				Combiner: combiner,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.hamr.Run(g); err != nil {
				t.Fatal(err)
			}
			if _, err := e.eng.Run(mrapps.WordCountJob(hp, "out", combiner, 3)); err != nil {
				t.Fatal(err)
			}
			diffCounts(t, "wordcount", sinkCounts(sink), mrCounts(t, e.mr, "out/"))
		})
	}
}

func TestDiffHistogramMovies(t *testing.T) {
	e := newEnv(t)
	data := datagen.Movies(datagen.MoviesConfig{Seed: 7, Movies: 400, Users: 80})
	hp, files := e.feed(t, "movies.txt", data)

	g, sink, err := hamrapps.BuildHistogramMovies(hamrapps.HistogramOptions{
		Loader: &hamrapps.LocalTextLoader{Files: files},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.hamr.Run(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.eng.Run(mrapps.HistogramMoviesJob(hp, "out", true, 3)); err != nil {
		t.Fatal(err)
	}
	diffCounts(t, "histogram-movies", sinkCounts(sink), mrCounts(t, e.mr, "out/"))
}

func TestDiffHistogramRatings(t *testing.T) {
	for _, opts := range []hamrapps.HistogramOptions{
		{},
		{Combiner: true},
		{SerializeUpdates: true},
	} {
		name := fmt.Sprintf("combiner=%v,serialize=%v", opts.Combiner, opts.SerializeUpdates)
		t.Run(name, func(t *testing.T) {
			e := newEnv(t)
			data := datagen.Movies(datagen.MoviesConfig{Seed: 11, Movies: 300, Users: 60})
			hp, files := e.feed(t, "movies.txt", data)
			o := opts
			o.Loader = &hamrapps.LocalTextLoader{Files: files}
			g, sink, err := hamrapps.BuildHistogramRatings(o)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.hamr.Run(g); err != nil {
				t.Fatal(err)
			}
			if _, err := e.eng.Run(mrapps.HistogramRatingsJob(hp, "out", true, 5)); err != nil {
				t.Fatal(err)
			}
			got := sinkCounts(sink)
			diffCounts(t, "histogram-ratings", got, mrCounts(t, e.mr, "out/"))
			if len(got) > 5 {
				t.Errorf("rating histogram has %d keys, want <= 5", len(got))
			}
		})
	}
}

func TestDiffNaiveBayes(t *testing.T) {
	e := newEnv(t)
	data := datagen.Docs(datagen.DocsConfig{Seed: 3, Labels: 3, Vocabulary: 120, Docs: 300})
	hp, files := e.feed(t, "docs.txt", data)

	g, sink, err := hamrapps.BuildNaiveBayes(&hamrapps.LocalTextLoader{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.hamr.Run(g); err != nil {
		t.Fatal(err)
	}
	jobs := mrapps.NaiveBayesJobs(hp, "mid", "out", 3)
	if _, err := e.eng.RunChain(jobs...); err != nil {
		t.Fatal(err)
	}
	diffCounts(t, "naivebayes", sinkCounts(sink), mrCounts(t, e.mr, "out/"))
}

func TestDiffKMeans(t *testing.T) {
	e := newEnv(t)
	data := datagen.Movies(datagen.MoviesConfig{Seed: 21, Movies: 300, Users: 60, Clusters: 4})
	hp, files := e.feed(t, "movies.txt", data)
	centroids := datagen.InitialCentroids(data, 4)
	if len(centroids) != 4 {
		t.Fatalf("got %d initial centroids", len(centroids))
	}

	g, sinks, err := hamrapps.BuildKMeans(hamrapps.KMeansOptions{Files: files, Centroids: centroids})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.hamr.Run(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.eng.Run(mrapps.KMeansJob(hp, "out", centroids, 4)); err != nil {
		t.Fatal(err)
	}

	hamrCent := map[string]string{}
	for _, kv := range sinks.Centroids.Pairs() {
		hamrCent[kv.Key] = kv.Value.(string)
	}
	mrCent := map[string]string{}
	for _, f := range e.mr.FS().List("out/") {
		d, _ := e.mr.FS().ReadFile(f, -1)
		for _, line := range strings.Split(string(d), "\n") {
			if line == "" {
				continue
			}
			parts := strings.SplitN(line, "\t", 2)
			mrCent[parts[0]] = parts[1]
		}
	}
	if len(hamrCent) == 0 {
		t.Fatal("flowlet kmeans produced no centroids")
	}
	if len(hamrCent) != len(mrCent) {
		t.Errorf("centroid counts differ: %d vs %d", len(hamrCent), len(mrCent))
	}
	for k, v := range hamrCent {
		if mrCent[k] != v {
			t.Errorf("centroid[%s] differs:\n flowlet   %s\n mapreduce %s", k, v, mrCent[k])
		}
	}
	// Assignment sink must have seen every parsable movie.
	if n := sinks.Assignments.Len(); n == 0 {
		t.Error("no assignments collected")
	}
	_ = hp
}

func TestDiffClassification(t *testing.T) {
	e := newEnv(t)
	data := datagen.Movies(datagen.MoviesConfig{Seed: 31, Movies: 300, Users: 50, Clusters: 3})
	hp, files := e.feed(t, "movies.txt", data)
	centroids := datagen.InitialCentroids(data, 3)

	g, sinks, err := hamrapps.BuildClassification(hamrapps.ClassificationOptions{
		Files: files, Centroids: centroids, WithCounts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.hamr.Run(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.eng.Run(mrapps.ClassificationJob(hp, "out", centroids, 3, false)); err != nil {
		t.Fatal(err)
	}
	diffCounts(t, "classification", sinkCounts(sinks.Counts), mrCounts(t, e.mr, "out/"))
}

func TestDiffPageRank(t *testing.T) {
	e := newEnv(t)
	data := datagen.WebGraph(datagen.WebGraphConfig{Seed: 5, Pages: 200, OutLinks: 5})
	hp, files := e.feed(t, "edges.txt", data)

	const iters = 3
	hamrRes, err := hamrapps.RunPageRank(e.hamr,
		&hamrapps.LocalTextLoader{Files: files}, 0, iters)
	if err != nil {
		t.Fatal(err)
	}
	if hamrRes.Iterations != iters {
		t.Fatalf("flowlet pagerank ran %d iterations, want %d", hamrRes.Iterations, iters)
	}
	mrRes, err := mrapps.RunPageRankMR(e.eng, e.mr.FS(), hp, "work", iters, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hamrRes.Ranks) == 0 {
		t.Fatal("flowlet pagerank produced no ranks")
	}
	// Compare every page's rank. MR emits ranks for every page seen;
	// HAMR stores ranks for pages with adjacency or contributions.
	for page, hr := range hamrRes.Ranks {
		mrRank, ok := mrRes.Ranks[page]
		if !ok {
			t.Errorf("page %s missing from mapreduce ranks", page)
			continue
		}
		if math.Abs(hr-mrRank) > 1e-9*math.Max(1, math.Abs(hr)) {
			t.Errorf("rank[%s]: flowlet %.12f, mapreduce %.12f", page, hr, mrRank)
		}
	}
}

func TestDiffKCliques(t *testing.T) {
	for _, k := range []int{3, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			e := newEnv(t)
			data := datagen.RMAT(datagen.RMATConfig{Seed: 9, Scale: 6, Edges: 300})
			hp, files := e.feed(t, "graph.txt", data)

			g, sink, err := hamrapps.BuildKCliques(k, &hamrapps.LocalTextLoader{Files: files})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.hamr.Run(g); err != nil {
				t.Fatal(err)
			}
			var hamrCliques []string
			for _, kv := range sink.Pairs() {
				hamrCliques = append(hamrCliques, kv.Key)
			}
			sort.Strings(hamrCliques)

			mrRes, err := mrapps.RunKCliquesMR(e.eng, e.mr.FS(), hp, "work", k, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(hamrCliques) == 0 {
				t.Logf("warning: graph has no %d-cliques; result comparison is trivial", k)
			}
			if !equalStrings(hamrCliques, mrRes.Cliques) {
				t.Errorf("clique sets differ: flowlet %d cliques, mapreduce %d\nflowlet: %v\nmapreduce: %v",
					len(hamrCliques), len(mrRes.Cliques), head(hamrCliques, 10), head(mrRes.Cliques, 10))
			}
			// Cross-check against a sequential brute-force enumeration.
			brute := bruteCliques(string(data), k)
			if !equalStrings(hamrCliques, brute) {
				t.Errorf("flowlet cliques disagree with brute force: %d vs %d",
					len(hamrCliques), len(brute))
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func head(s []string, n int) []string {
	if len(s) < n {
		return s
	}
	return s[:n]
}

// bruteCliques enumerates k-cliques directly from the edge list.
func bruteCliques(data string, k int) []string {
	adj := map[int64]map[int64]bool{}
	var verts []int64
	addV := func(v int64) {
		if adj[v] == nil {
			adj[v] = map[int64]bool{}
			verts = append(verts, v)
		}
	}
	for _, line := range strings.Split(data, "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			continue
		}
		u, _ := strconv.ParseInt(f[0], 10, 64)
		v, _ := strconv.ParseInt(f[1], 10, 64)
		if u == v {
			continue
		}
		addV(u)
		addV(v)
		adj[u][v] = true
		adj[v][u] = true
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	var out []string
	var extend func(clique []int64)
	extend = func(clique []int64) {
		if len(clique) == k {
			parts := make([]string, k)
			for i, v := range clique {
				parts[i] = strconv.FormatInt(v, 10)
			}
			out = append(out, strings.Join(parts, ","))
			return
		}
		last := clique[len(clique)-1]
		for n := range adj[last] {
			if n <= last {
				continue
			}
			ok := true
			for _, m := range clique {
				if !adj[n][m] {
					ok = false
					break
				}
			}
			if ok {
				extend(append(clique, n))
			}
		}
	}
	for _, v := range verts {
		extend([]int64{v})
	}
	sort.Strings(out)
	return out
}
