package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
)

var jobCounter atomic.Int64

// FlowletStat summarizes one flowlet's execution across the cluster: how
// many bins it consumed and when it reached Complete on the last node —
// the observable trace of the Dormant -> Ready -> Complete lifecycle.
type FlowletStat struct {
	Name string
	Kind Kind
	// BinsIn is the number of input bins delivered cluster-wide.
	BinsIn int64
	// LoaderSplits is the number of splits executed (loaders only).
	LoaderSplits int
	// CompletedAt is the offset from job start at which the flowlet
	// completed on the last node.
	CompletedAt time.Duration
}

// JobResult reports a completed job's outcome.
type JobResult struct {
	// Job is the engine-assigned job id.
	Job int64
	// Duration is wall-clock execution time (submission to completion).
	Duration time.Duration
	// Stalls counts flow-control stalls across all nodes and edges.
	Stalls int64
	// Gated counts bins whose scheduling was deferred by flow control.
	Gated int64
	// Metrics is the aggregated per-node metrics snapshot.
	Metrics metrics.Snapshot
	// SplitsPerNode records how many loader splits each node executed.
	SplitsPerNode []int
	// Flowlets holds per-flowlet execution statistics in graph order.
	Flowlets []FlowletStat
}

// Timeline renders the per-flowlet completion trace, one line per
// flowlet in graph order.
func (r *JobResult) Timeline() string {
	var sb strings.Builder
	for _, fs := range r.Flowlets {
		fmt.Fprintf(&sb, "%-20s %-14s bins=%-6d splits=%-4d complete@%v\n",
			fs.Name, fs.Kind, fs.BinsIn, fs.LoaderSplits, fs.CompletedAt.Round(time.Microsecond))
	}
	return sb.String()
}

// Run executes the graph on the given per-node runtimes and blocks until
// completion. The graph is deployed whole on every node; loader splits are
// planned on the driver and assigned preferring each split's local node
// (§3.3), falling back to least-loaded round-robin.
func Run(graph *Graph, nodes []*NodeRuntime, env *Env) (*JobResult, error) {
	if err := graph.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: no node runtimes")
	}
	numNodes := len(nodes)
	if env == nil {
		env = &Env{}
	}
	env.NumNodes = numNodes
	if env.Services == nil {
		env.Services = nodes[0].services
	}

	// Plan loader splits on the driver.
	assignment := make(map[int]map[int][]Split) // node -> flowlet -> splits
	for n := 0; n < numNodes; n++ {
		assignment[n] = make(map[int][]Split)
	}
	splitsPerNode := make([]int, numNodes)
	for _, spec := range graph.Flowlets() {
		if spec.Kind != KindLoader {
			continue
		}
		splits, err := spec.Loader.Plan(env)
		if err != nil {
			return nil, fmt.Errorf("core: plan loader %q: %w", spec.Name, err)
		}
		load := make([]int64, numNodes)
		for n := range load {
			load[n] = int64(splitsPerNode[n])
		}
		for _, sp := range splits {
			dest := -1
			if sp.PreferredNode >= 0 && sp.PreferredNode < numNodes {
				dest = sp.PreferredNode
			} else {
				// Least-loaded assignment keeps the workload balanced.
				for n := 0; n < numNodes; n++ {
					if dest < 0 || load[n] < load[dest] {
						dest = n
					}
				}
			}
			load[dest]++
			splitsPerNode[dest]++
			assignment[dest][spec.ID] = append(assignment[dest][spec.ID], sp)
		}
	}

	jobID := jobCounter.Add(1)
	jns := make([]*jobNode, numNodes)
	for n, rt := range nodes {
		jn := newJobNode(rt, graph, jobID, numNodes)
		if err := rt.registerJob(jn); err != nil {
			for i := 0; i < n; i++ {
				nodes[i].unregisterJob(jobID)
			}
			return nil, err
		}
		jns[n] = jn
	}

	// Job root span on the driver lane; every per-node span parents to it
	// through the tracer's per-run job tag.
	tr := nodes[0].cfg.Trace
	jsp := tr.Start(-1, "", tr.JobTag(jobID)+"/job:"+graph.Name, "job", "")

	start := time.Now()
	for _, jn := range jns {
		jn.started = start
	}
	for n, jn := range jns {
		jn.start(assignment[n])
	}

	var firstErr error
	for _, jn := range jns {
		<-jn.doneCh
		if err := jn.Error(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	dur := time.Since(start)
	jsp.End()

	res := &JobResult{
		Job:           jobID,
		Duration:      dur,
		SplitsPerNode: splitsPerNode,
	}
	agg := metrics.NewRegistry()
	for _, jn := range jns {
		res.Stalls += jn.totalStalls()
	}
	for _, spec := range graph.Flowlets() {
		stat := FlowletStat{Name: spec.Name, Kind: spec.Kind}
		for _, jn := range jns {
			fs := jn.flowlets[spec.ID]
			fs.mu.Lock()
			stat.BinsIn += fs.enqueued
			stat.LoaderSplits += fs.splitsDone
			if fs.finishedAt > stat.CompletedAt {
				stat.CompletedAt = fs.finishedAt
			}
			fs.mu.Unlock()
		}
		res.Flowlets = append(res.Flowlets, stat)
	}
	for _, rt := range nodes {
		agg.Merge(rt.reg)
		rt.unregisterJob(jobID)
	}
	res.Metrics = agg.Snapshot()
	res.Gated = res.Metrics.Get("flow.gated")
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}
