package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/par"
	"github.com/hamr-go/hamr/internal/trace"
)

var jobCounter atomic.Int64

// Typed job-path sentinels. Callers match them with errors.Is: the
// sentinels survive wrapping on the driver and — via the abort broadcast's
// failMsg — relaying across nodes.
var (
	// ErrJobCanceled reports a job stopped by JobHandle.Cancel or an
	// expired submission context rather than by its own code failing.
	ErrJobCanceled = errors.New("core: job canceled")
	// ErrNoNodes reports a run attempted over zero node runtimes.
	ErrNoNodes = errors.New("core: no node runtimes")
	// ErrGraphInvalid wraps graph validation failures (missing loader,
	// dangling flowlets, cycles, ...).
	ErrGraphInvalid = errors.New("core: invalid graph")
)

// FlowletStat summarizes one flowlet's execution across the cluster: how
// many bins it consumed and when it reached Complete on the last node —
// the observable trace of the Dormant -> Ready -> Complete lifecycle.
type FlowletStat struct {
	Name string
	Kind Kind
	// BinsIn is the number of input bins delivered cluster-wide.
	BinsIn int64
	// LoaderSplits is the number of splits executed (loaders only).
	LoaderSplits int
	// CompletedAt is the offset from job start at which the flowlet
	// completed on the last node.
	CompletedAt time.Duration
}

// JobResult reports a completed job's outcome.
type JobResult struct {
	// Job is the engine-assigned job id.
	Job int64
	// Duration is wall-clock execution time (submission to completion).
	Duration time.Duration
	// Stalls counts flow-control stalls across all nodes and edges.
	Stalls int64
	// Gated counts bins whose scheduling was deferred by flow control.
	Gated int64
	// Metrics is this job's own metric deltas, aggregated across nodes.
	// Concurrent jobs on one cluster do not contaminate each other here:
	// every jobNode accounts into a job-scoped registry that is merged
	// into the node registry (and into this snapshot) only at job end, so
	// cluster totals are unchanged while per-job figures stay exact.
	Metrics metrics.Snapshot
	// SplitsPerNode records how many loader splits each node executed.
	SplitsPerNode []int
	// Flowlets holds per-flowlet execution statistics in graph order.
	Flowlets []FlowletStat
}

// Timeline renders the per-flowlet completion trace, one line per
// flowlet in graph order.
func (r *JobResult) Timeline() string {
	var sb strings.Builder
	for _, fs := range r.Flowlets {
		fmt.Fprintf(&sb, "%-20s %-14s bins=%-6d splits=%-4d complete@%v\n",
			fs.Name, fs.Kind, fs.BinsIn, fs.LoaderSplits, fs.CompletedAt.Round(time.Microsecond))
	}
	return sb.String()
}

// Job is one planned execution of a graph across the node runtimes, the
// staged form of Run: NewJob validates the graph, plans loader splits and
// registers per-node state; Start kicks off execution; Wait blocks until
// completion; Abort stops a running (or not-yet-started) job through the
// engine's failure path. Run composes the stages for serial callers; the
// cluster's JobManager drives them individually so jobs can overlap.
type Job struct {
	id    int64
	graph *Graph
	nodes []*NodeRuntime
	jns   []*jobNode

	assignment    map[int]map[int][]Split
	splitsPerNode []int

	jsp     trace.Span
	startT  time.Time
	started atomic.Bool

	waitOnce sync.Once
	res      *JobResult
	err      error
}

// NewJob validates and plans a job without starting it. The graph is
// deployed whole on every node; loader splits are planned on the driver
// and assigned preferring each split's local node (§3.3), falling back to
// least-loaded round-robin.
func NewJob(graph *Graph, nodes []*NodeRuntime, env *Env) (*Job, error) {
	if err := graph.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrGraphInvalid, err)
	}
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	numNodes := len(nodes)
	if env == nil {
		env = &Env{}
	}
	env.NumNodes = numNodes
	if env.Services == nil {
		env.Services = nodes[0].services
	}

	// Plan loader splits on the driver.
	assignment := make(map[int]map[int][]Split) // node -> flowlet -> splits
	for n := 0; n < numNodes; n++ {
		assignment[n] = make(map[int][]Split)
	}
	splitsPerNode := make([]int, numNodes)
	for _, spec := range graph.Flowlets() {
		if spec.Kind != KindLoader {
			continue
		}
		splits, err := spec.Loader.Plan(env)
		if err != nil {
			return nil, fmt.Errorf("core: plan loader %q: %w", spec.Name, err)
		}
		load := make([]int64, numNodes)
		for n := range load {
			load[n] = int64(splitsPerNode[n])
		}
		for _, sp := range splits {
			dest := -1
			if sp.PreferredNode >= 0 && sp.PreferredNode < numNodes {
				dest = sp.PreferredNode
			} else {
				// Least-loaded assignment keeps the workload balanced.
				for n := 0; n < numNodes; n++ {
					if dest < 0 || load[n] < load[dest] {
						dest = n
					}
				}
			}
			load[dest]++
			splitsPerNode[dest]++
			assignment[dest][spec.ID] = append(assignment[dest][spec.ID], sp)
		}
	}

	jobID := jobCounter.Add(1)
	jns := make([]*jobNode, numNodes)
	for n, rt := range nodes {
		jn := newJobNode(rt, graph, jobID, numNodes)
		if err := rt.registerJob(jn); err != nil {
			for i := 0; i < n; i++ {
				nodes[i].unregisterJob(jobID)
			}
			return nil, err
		}
		jns[n] = jn
	}
	return &Job{
		id:            jobID,
		graph:         graph,
		nodes:         nodes,
		jns:           jns,
		assignment:    assignment,
		splitsPerNode: splitsPerNode,
	}, nil
}

// ID returns the engine-assigned job id.
func (j *Job) ID() int64 { return j.id }

// SetAdmission installs a fair-share gate bounding how many of this job's
// loader splits may run concurrently across the whole cluster. The node
// runtimes' own loader semaphores still cap per-node concurrency; the
// share is the multi-job arbiter on top (the paper's "decrease the number
// of concurrent loader tasks" valve, §2, applied between jobs). Must be
// called before Start; a nil gate leaves admission unlimited.
func (j *Job) SetAdmission(s *par.Share) {
	for _, jn := range j.jns {
		jn.admit = s
	}
}

// Start kicks off execution on every node. It is idempotent; only the
// first call has effect.
func (j *Job) Start() {
	if !j.started.CompareAndSwap(false, true) {
		return
	}
	// Job root span on the driver lane; every per-node span parents to it
	// through the tracer's per-run job tag.
	tr := j.nodes[0].cfg.Trace
	j.jsp = tr.Start(-1, "", tr.JobTag(j.id)+"/job:"+j.graph.Name, "job", "")
	start := time.Now()
	j.startT = start
	for _, jn := range j.jns {
		jn.started = start
	}
	for n, jn := range j.jns {
		jn.start(j.assignment[n])
	}
}

// Abort stops the job through the engine's failure path: the error is
// recorded on the driver node and broadcast to every other node, loaders
// and emits unwind at their next boundary, and Wait returns err. Aborting
// a job that was never started resolves it immediately.
func (j *Job) Abort(err error) {
	j.jns[0].fail(err)
}

// Wait blocks until every node finished (or the job aborted) and returns
// the aggregated result. It is safe to call from multiple goroutines; all
// callers observe the same result.
func (j *Job) Wait() (*JobResult, error) {
	j.waitOnce.Do(func() { j.res, j.err = j.wait() })
	return j.res, j.err
}

func (j *Job) wait() (*JobResult, error) {
	var firstErr error
	for _, jn := range j.jns {
		<-jn.doneCh
		if err := jn.Error(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	var dur time.Duration
	if j.started.Load() {
		dur = time.Since(j.startT)
	}
	j.jsp.End()

	res := &JobResult{
		Job:           j.id,
		Duration:      dur,
		SplitsPerNode: j.splitsPerNode,
	}
	agg := metrics.NewRegistry()
	for _, jn := range j.jns {
		res.Stalls += jn.totalStalls()
	}
	for _, spec := range j.graph.Flowlets() {
		stat := FlowletStat{Name: spec.Name, Kind: spec.Kind}
		for _, jn := range j.jns {
			fs := jn.flowlets[spec.ID]
			fs.mu.Lock()
			stat.BinsIn += fs.enqueued
			stat.LoaderSplits += fs.splitsDone
			if fs.finishedAt > stat.CompletedAt {
				stat.CompletedAt = fs.finishedAt
			}
			fs.mu.Unlock()
		}
		res.Flowlets = append(res.Flowlets, stat)
	}
	// Per-job isolation, settled here: each jobNode accounted into its
	// job-scoped registry; merge it into the long-lived node registry (so
	// cluster totals are identical to the shared-registry design) and into
	// the result aggregate (so res.Metrics is exactly this job's deltas).
	for _, jn := range j.jns {
		agg.Merge(jn.reg)
		jn.rt.reg.Merge(jn.reg)
		jn.rt.unregisterJob(j.id)
	}
	res.Metrics = agg.Snapshot()
	res.Gated = res.Metrics.Get("flow.gated")
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// Run executes the graph on the given per-node runtimes and blocks until
// completion — the serial composition of NewJob, Start and Wait.
func Run(graph *Graph, nodes []*NodeRuntime, env *Env) (*JobResult, error) {
	j, err := NewJob(graph, nodes, env)
	if err != nil {
		return nil, err
	}
	j.Start()
	return j.Wait()
}
