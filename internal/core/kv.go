// Package core implements the paper's primary contribution: the flowlet
// dataflow engine. A job is a DAG of flowlets (Loader, Map, Reduce,
// PartialReduce); every node in the cluster runs the whole graph (§2);
// key-value pairs move between flowlets packed into bins; the per-node
// runtime schedules flowlet tasks asynchronously over a worker pool as
// their input bins arrive; reduce flowlets form the only barriers; flow
// control suspends producers whose downstream cannot keep up.
package core

import (
	"fmt"
)

// KV is a key-value pair, the unit of data flowing through the graph.
// Values are kept as native Go values in memory; the codec (codec.go)
// defines their byte representation for spills and wire transfer.
type KV struct {
	Key   string
	Value any
}

// Sizer lets custom value types report their approximate in-memory size to
// the memory manager.
type Sizer interface {
	SizeBytes() int64
}

// ValueSize estimates the in-memory footprint of a value in bytes. The
// estimate feeds the memory manager's budget and the transport cost model,
// so it needs to be cheap and roughly proportional, not exact.
func ValueSize(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case bool, int8, uint8:
		return 1
	case int, int64, uint64, float64, uint, int32, uint32, float32:
		return 8
	case string:
		return int64(len(x)) + 16
	case []byte:
		return int64(len(x)) + 24
	case []float64:
		return int64(len(x))*8 + 24
	case []int64:
		return int64(len(x))*8 + 24
	case []int:
		return int64(len(x))*8 + 24
	case map[string]int64:
		n := int64(48)
		for k := range x {
			n += int64(len(k)) + 24
		}
		return n
	case []string:
		n := int64(24)
		for _, s := range x {
			n += int64(len(s)) + 16
		}
		return n
	case []any:
		n := int64(24)
		for _, e := range x {
			n += ValueSize(e) + 16
		}
		return n
	case Sizer:
		return x.SizeBytes()
	default:
		// Unknown types get a flat conservative charge; apps with large
		// custom values should implement Sizer.
		return 64
	}
}

// Size estimates the in-memory footprint of a KV in bytes.
func (kv KV) Size() int64 { return int64(len(kv.Key)) + 16 + ValueSize(kv.Value) }

// String renders the pair for debugging.
func (kv KV) String() string { return fmt.Sprintf("%s=%v", kv.Key, kv.Value) }

// FNV-1a, inlined so partitioning does not allocate.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashKey returns a stable 64-bit hash of the key.
func HashKey(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// Partitioner maps a key to one of n partitions (nodes). It must be a pure
// function of the key so that all nodes route a key identically.
type Partitioner func(key string, n int) int

// HashPartition is the default partitioner: FNV-1a modulo n. "Each node
// works on a portion of the whole key space" (§2).
func HashPartition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(HashKey(key) % uint64(n))
}
