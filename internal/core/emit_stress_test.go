package core

import (
	"fmt"
	"sync"
	"testing"
)

// These tests guard the sharded binBuffer rewrite: N workers emitting
// interleaved keys on one edge must lose and duplicate nothing. They are
// run under -race in CI.

// TestBinBufferConcurrentMultiset hammers one binBuffer from many
// goroutines and checks that the union of sealed and drained bins is
// exactly the input multiset.
func TestBinBufferConcurrentMultiset(t *testing.T) {
	const (
		workers = 8
		perW    = 5000
		nodes   = 4
	)
	buf := newBinBuffer(nodes, 16, 1<<30)
	var mu sync.Mutex
	got := make(map[string]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				kv := KV{Key: fmt.Sprintf("w%d-k%d", w, i), Value: int64(i)}
				// Interleave destinations so every slot sees every worker.
				sealed, _ := buf.add((w+i)%nodes, kv, kv.Size())
				if sealed != nil {
					mu.Lock()
					for _, s := range sealed {
						got[s.Key]++
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, d := range buf.drain() {
		for _, s := range d.KVs {
			got[s.Key]++
		}
	}
	if len(got) != workers*perW {
		t.Fatalf("distinct keys = %d, want %d", len(got), workers*perW)
	}
	for k, n := range got {
		if n != 1 {
			t.Fatalf("key %q seen %d times", k, n)
		}
	}
	if again := buf.drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d bins", len(again))
	}
}

// countingSink collects (key -> total) under a mutex.
type countingSink struct {
	mu     sync.Mutex
	counts map[string]int64
}

func (s *countingSink) Write(node int, kv KV) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counts == nil {
		s.counts = make(map[string]int64)
	}
	s.counts[kv.Key] += kv.Value.(int64)
	return nil
}

func (s *countingSink) Close(node int) error { return nil }

// TestConcurrentEmitStress drives the full emit→bin→shuffle→fold path
// with many concurrent producers: every loader split emits the same key
// space interleaved, a partial reduce folds the counts, and the sink
// total must equal the input multiset exactly.
func TestConcurrentEmitStress(t *testing.T) {
	const (
		numNodes = 3
		splits   = 24
		keys     = 97
		perSplit = 500
	)
	cfg := Config{
		Workers:           8,
		BinSize:           32,
		LoaderConcurrency: 8,
	}
	nodes, cleanup := newTestCluster(t, numNodes, cfg)
	defer cleanup()

	chunks := make([][]string, splits)
	for s := range chunks {
		lines := make([]string, perSplit)
		for i := range lines {
			lines[i] = fmt.Sprintf("key%03d", (s+i)%keys)
		}
		chunks[s] = lines
	}

	g := NewGraph("emit-stress")
	sink := &countingSink{}
	ld, err := g.AddLoader("load", &sliceLoader{chunks: chunks})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := g.AddMap("tag", keyMapper{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := g.AddPartialReduce("sum", sumPartial{})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := g.AddSink("out", sink)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int{{ld, mp}, {mp, pr}, {pr, sk}} {
		if err := g.Connect(c[0], c[1]); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := Run(g, nodes, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	var total int64
	for i := 0; i < keys; i++ {
		total += sink.counts[fmt.Sprintf("key%03d", i)]
	}
	if total != int64(splits*perSplit) {
		t.Fatalf("total count = %d, want %d", total, splits*perSplit)
	}
	// Every line of every split lands on exactly one key; recompute the
	// expected multiset and compare per key.
	expect := make(map[string]int64)
	for _, c := range chunks {
		for _, l := range c {
			expect[l]++
		}
	}
	for k, n := range expect {
		if sink.counts[k] != n {
			t.Fatalf("key %q count = %d, want %d", k, sink.counts[k], n)
		}
	}
	// bins.dropped is a runtime-teardown counter, accounted on the node
	// registries rather than the job's own deltas.
	var dropped int64
	for _, rt := range nodes {
		dropped += rt.Metrics().Snapshot().Get("bins.dropped")
	}
	if dropped != 0 {
		t.Fatalf("bins.dropped = %d on a clean run", dropped)
	}
}

// keyMapper re-emits each line as (line, 1).
type keyMapper struct{}

func (keyMapper) Map(kv KV, ctx Context) error {
	return ctx.Emit(KV{Key: kv.Value.(string), Value: int64(1)})
}
