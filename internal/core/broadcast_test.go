package core

import (
	"testing"
)

// broadcastLoader ships one record to every node via ctx.EmitBroadcast —
// the explicit-broadcast API K-Means uses for centroid distribution
// (Alg. 1 step 5).
type broadcastLoader struct{}

func (broadcastLoader) Plan(env *Env) ([]Split, error) {
	return []Split{{Payload: nil, PreferredNode: 0}}, nil
}

func (broadcastLoader) Load(sp Split, ctx Context) error {
	return ctx.EmitBroadcast("stamp", KV{Key: "cfg", Value: "v1"})
}

func TestEmitBroadcastReachesEveryNode(t *testing.T) {
	const numNodes = 5
	g := NewGraph("bcast-api")
	sink := NewCollectSink()
	ld, _ := g.AddLoader("load", broadcastLoader{})
	mp, _ := g.AddMap("stamp", nodeStamp{})
	sk, _ := g.AddSink("out", sink)
	g.Connect(ld, mp)
	g.Connect(mp, sk)
	nodes, cleanup := newTestCluster(t, numNodes, Config{Workers: 2})
	defer cleanup()
	if _, err := Run(g, nodes, nil); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, kv := range sink.Pairs() {
		seen[kv.Value.(string)] = true
	}
	if len(seen) != numNodes {
		t.Fatalf("broadcast reached %d nodes, want %d: %v", len(seen), numNodes, seen)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := NewGraph("topo")
	ld, _ := g.AddLoader("l", broadcastLoader{})
	a, _ := g.AddMap("a", nodeStamp{})
	b, _ := g.AddMap("b", nodeStamp{})
	sk, _ := g.AddSink("s", NewCollectSink())
	g.Connect(ld, a)
	g.Connect(a, b)
	g.Connect(b, sk)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[ld] < pos[a] && pos[a] < pos[b] && pos[b] < pos[sk]) {
		t.Fatalf("topological order %v violates edges", order)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := NewGraph("acc")
	ld, _ := g.AddLoader("l", broadcastLoader{})
	m, _ := g.AddMap("m", nodeStamp{})
	sk, _ := g.AddSink("s", NewCollectSink())
	g.Connect(ld, m)
	g.Connect(m, sk)
	if g.FlowletID("m") != m || g.FlowletID("nope") != -1 {
		t.Error("FlowletID wrong")
	}
	if ups := g.Upstream(m); len(ups) != 1 || ups[0] != ld {
		t.Errorf("Upstream(m) = %v", ups)
	}
	if downs := g.Downstream(m); len(downs) != 1 || downs[0].To != sk {
		t.Errorf("Downstream(m) = %v", downs)
	}
	if len(g.Edges()) != 2 || len(g.Flowlets()) != 3 {
		t.Error("Edges/Flowlets wrong")
	}
}
