package core

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/faults"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/par"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/trace"
	"github.com/hamr-go/hamr/internal/transport"
	"github.com/hamr-go/hamr/internal/vtime"
)

// Config controls the per-node runtime and the engine's scheduling
// granularity. The zero value is usable: FillDefaults supplies sensible
// settings.
type Config struct {
	// NumNodes is the cluster size.
	NumNodes int
	// Workers is the size of each node's thread pool (the paper's cluster
	// used 32 threads per node).
	Workers int
	// BinSize is the maximum number of pairs per bin, the engine's
	// scheduling quantum.
	BinSize int
	// BinBytes caps a bin's payload size in bytes.
	BinBytes int64
	// FlowControlWindow is the number of bins that may be outstanding per
	// edge per producing node before producers stall (§2). Zero disables
	// flow control (used by the ablation benchmark).
	FlowControlWindow int
	// MemoryBudget is each node's in-memory data budget in bytes; reduce
	// flowlets spill to local disk beyond it. Zero means unlimited.
	MemoryBudget int64
	// LoaderConcurrency bounds concurrently running loader splits per node
	// ("the number of concurrent loader tasks can be decreased to control
	// the amount of input data", §2).
	LoaderConcurrency int
	// ReduceTaskKeys is the number of key groups batched into one
	// fine-grain reduce task.
	ReduceTaskKeys int
	// PartialStripes is the number of lock stripes protecting
	// partial-reduce state. Few distinct keys concentrate on few stripes,
	// reproducing the shared-variable contention of §5.2.
	PartialStripes int
	// ContentionCost is the modeled cost of one contended shared-variable
	// update in a partial reduce (§5.2: "all threads atomically update
	// only one variable on each node... severe memory contention"). It is
	// charged per update *while holding the key's lock stripe*, so a key
	// space that collapses onto few stripes serializes into a real
	// bottleneck, while a wide key space overlaps across stripes and
	// barely notices. Flowlets with SerializeUpdates (the paper's
	// proposed fix) pay a tenth of it — a single writer does not fight
	// over the cache line. Zero disables the model.
	ContentionCost time.Duration
	// Faults, if non-nil, is the cluster's seeded fault injector. Fine-grain
	// flowlet tasks (loader splits, partial-reduce stripes, reduce batches)
	// consult it at their start — before any side effects — and a crashed
	// task is re-fired with the next attempt number.
	Faults *faults.Injector
	// MaxRefires bounds re-fires of one crashed flowlet task; once
	// exhausted the original injected error aborts the job through the
	// normal failure path (default 3).
	MaxRefires int
	// CoalesceBytes / CoalesceMsgs / CoalesceAge configure the node's
	// outbound transport.Coalescer, which packs small same-destination
	// messages (bin flushes, acks) into one framed wire message. Zero
	// fields take the transport defaults (16 KiB / 32 msgs / 500 µs);
	// CoalesceMsgs < 0 disables coalescing entirely (sends go straight to
	// the network, used by ablations and tests that count raw messages).
	CoalesceBytes int64
	CoalesceMsgs  int
	CoalesceAge   time.Duration
	// Clock pays the runtime's modeled delays (the contention model, the
	// coalescer's age timer). Nil defaults to the real clock — plain
	// sleeps, bit-identical to the pre-seam engine. The cluster threads
	// its own clock here so one knob switches every layer together.
	Clock vtime.Clock
	// SpillCompress, when enabled, block-compresses reduce-flowlet spill
	// runs on their way to local disk. The zero value leaves the spill
	// path byte-identical to a compression-less build.
	SpillCompress compress.Config
	// ShuffleCompress, when enabled, lets the node's outbound coalescer
	// compress batched shuffle traffic into KindBatchZ wire frames. It
	// has no effect when coalescing is disabled (CoalesceMsgs < 0).
	ShuffleCompress compress.Config
	// Trace, if non-nil, records per-flowlet-task spans (loader splits,
	// partial-reduce stripes, reduce batches), accumulate windows and
	// refire instants. Nil — the default, never filled by FillDefaults —
	// keeps every hot path untouched.
	Trace *trace.Tracer
}

// FillDefaults replaces zero fields with defaults.
func (c *Config) FillDefaults() {
	if c.NumNodes <= 0 {
		c.NumNodes = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.BinSize <= 0 {
		c.BinSize = 512
	}
	if c.BinBytes <= 0 {
		c.BinBytes = 128 << 10
	}
	if c.FlowControlWindow < 0 {
		c.FlowControlWindow = 0
	}
	if c.LoaderConcurrency <= 0 {
		c.LoaderConcurrency = 2
	}
	if c.ReduceTaskKeys <= 0 {
		c.ReduceTaskKeys = 64
	}
	if c.PartialStripes <= 0 {
		c.PartialStripes = 64
	}
	if c.MaxRefires <= 0 {
		c.MaxRefires = 3
	}
	if c.Clock == nil {
		c.Clock = vtime.Real()
	}
}

// Message kinds used on the transport.
const (
	msgBin      = "hamr.bin"
	msgAck      = "hamr.ack"
	msgComplete = "hamr.complete"
	msgFail     = "hamr.fail"
)

type ackMsg struct {
	Job  int64
	Edge int
}

type completeMsg struct {
	Job     int64
	Flowlet int
	Node    int
}

type failMsg struct {
	Job int64
	Err string
	// FaultOp/FaultSite carry the identity of an injected fault across the
	// fabric so the driver's error keeps its typed cause (errors.Is /
	// faults.IsInjected still match after the abort crossed nodes).
	FaultOp   string
	FaultSite string
	// Canceled marks an abort that originated from job cancellation
	// (JobHandle.Cancel or an expired context) so receivers reconstruct an
	// error matching ErrJobCanceled, the same cross-node typing the fault
	// fields provide.
	Canceled bool
}

func init() {
	transport.RegisterPayload(&Bin{})
	transport.RegisterPayload(ackMsg{})
	transport.RegisterPayload(completeMsg{})
	transport.RegisterPayload(failMsg{})
	transport.RegisterPayload(KV{})
}

// NodeRuntime is the long-lived flowlet runtime on one node (Fig. 2): a
// worker pool, a bin queue fed by the network, and the per-job flowlet
// state. One NodeRuntime exists per simulated node; jobs come and go.
type NodeRuntime struct {
	id       int
	cfg      Config
	net      transport.Network
	co       *transport.Coalescer // nil when coalescing is disabled
	disk     storage.Disk
	services map[string]any
	reg      *metrics.Registry

	pool      *par.Pool
	loaderSem par.Semaphore

	// binsDropped counts payloads the delivery handler could not route
	// (malformed payload type, or a data bin for a job this node no
	// longer knows). Resolved once: handle runs on the delivery goroutine.
	binsDropped *metrics.Counter

	mu   sync.Mutex
	jobs map[int64]*jobNode
}

// NewNodeRuntime creates the runtime for node id and registers it on the
// network. services are node-local handles exposed to flowlets via
// Context.Service (e.g. "hdfs", "disk", "kvstore").
func NewNodeRuntime(id int, cfg Config, net transport.Network, disk storage.Disk, services map[string]any, reg *metrics.Registry) (*NodeRuntime, error) {
	cfg.FillDefaults()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if services == nil {
		services = map[string]any{}
	}
	rt := &NodeRuntime{
		id:        id,
		cfg:       cfg,
		net:       net,
		disk:      disk,
		services:  services,
		reg:       reg,
		pool:      par.NewPool(cfg.Workers, cfg.Workers*64),
		loaderSem: par.NewSemaphore(cfg.LoaderConcurrency),

		binsDropped: reg.Counter("bins.dropped"),
	}
	if cfg.CoalesceMsgs >= 0 {
		rt.co = transport.NewCoalescer(net, transport.CoalescerConfig{
			MaxBytes: cfg.CoalesceBytes,
			MaxMsgs:  cfg.CoalesceMsgs,
			MaxAge:   cfg.CoalesceAge,
			Compress: cfg.ShuffleCompress,
			Clock:    cfg.Clock,
			Trace:    cfg.Trace,
		})
	}
	rt.jobs = make(map[int64]*jobNode)
	if err := net.Register(transport.NodeID(id), rt.handle); err != nil {
		return nil, err
	}
	return rt, nil
}

// send routes an outbound message through the node's coalescer when one
// is configured, else straight to the network.
func (rt *NodeRuntime) send(msg transport.Message) error {
	if rt.co != nil {
		return rt.co.Send(msg)
	}
	return rt.net.Send(msg)
}

// flushNet pushes any coalesced outbound messages to the network. Called
// at ordering barriers (e.g. before a completion broadcast) — though the
// coalescer already flushes on Broadcast, an explicit barrier keeps the
// protocol's ordering requirement visible at the call site.
func (rt *NodeRuntime) flushNet() {
	if rt.co != nil {
		_ = rt.co.Flush()
	}
}

// ID returns the node id.
func (rt *NodeRuntime) ID() int { return rt.id }

// Metrics returns the node's metrics registry.
func (rt *NodeRuntime) Metrics() *metrics.Registry { return rt.reg }

// Disk returns the node's local disk.
func (rt *NodeRuntime) Disk() storage.Disk { return rt.disk }

// Service returns a node-local service handle.
func (rt *NodeRuntime) Service(name string) any { return rt.services[name] }

// SetService installs a node-local service handle (used by the cluster at
// construction time).
func (rt *NodeRuntime) SetService(name string, v any) { rt.services[name] = v }

// Pool exposes the worker pool for utilization reporting.
func (rt *NodeRuntime) Pool() *par.Pool { return rt.pool }

// Close drains the worker pool and flushes the outbound coalescer. The
// runtime must not be used afterwards.
func (rt *NodeRuntime) Close() error {
	err := rt.pool.Close()
	if rt.co != nil {
		if cerr := rt.co.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (rt *NodeRuntime) job(id int64) *jobNode {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.jobs[id]
}

func (rt *NodeRuntime) registerJob(jn *jobNode) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.jobs[jn.jobID]; dup {
		return fmt.Errorf("core: job %d already registered on node %d", jn.jobID, rt.id)
	}
	rt.jobs[jn.jobID] = jn
	return nil
}

func (rt *NodeRuntime) unregisterJob(id int64) {
	rt.mu.Lock()
	delete(rt.jobs, id)
	rt.mu.Unlock()
}

// handle is the transport handler: it runs on the node's delivery
// goroutine, so it only does bookkeeping and task submission.
func (rt *NodeRuntime) handle(msg transport.Message) {
	switch msg.Kind {
	case msgBin:
		bin, ok := msg.Payload.(*Bin)
		if !ok {
			// TCP transport delivers by value after gob decoding.
			if b, ok2 := msg.Payload.(Bin); ok2 {
				bin = &b
			} else {
				rt.dropPayload(msg)
				return
			}
		}
		if jn := rt.job(bin.Job); jn != nil {
			jn.onBin(bin, false)
		} else {
			// A data bin for a job this node does not know means lost
			// data, not a benign protocol tail — make it visible.
			rt.binsDropped.Inc()
			log.Printf("core: node %d dropped bin for unknown job %d (flowlet %d, %d kvs, from node %d)",
				rt.id, bin.Job, bin.Flowlet, len(bin.KVs), bin.From)
		}
	case msgAck:
		ack, ok := msg.Payload.(ackMsg)
		if !ok {
			rt.dropPayload(msg)
			return
		}
		// Acks and completions for unknown jobs are normal teardown
		// stragglers (the job already finished or failed here); only a
		// malformed payload is worth counting.
		if jn := rt.job(ack.Job); jn != nil {
			jn.onAck(ack.Edge)
		}
	case msgComplete:
		cm, ok := msg.Payload.(completeMsg)
		if !ok {
			rt.dropPayload(msg)
			return
		}
		if jn := rt.job(cm.Job); jn != nil {
			jn.onComplete(cm.Flowlet, cm.Node)
		}
	case msgFail:
		fm, ok := msg.Payload.(failMsg)
		if !ok {
			rt.dropPayload(msg)
			return
		}
		if jn := rt.job(fm.Job); jn != nil {
			jn.onRemoteFail(fm)
		}
	}
}

// dropPayload counts and logs a message whose payload did not match its
// kind; these were previously discarded with no trace, which made
// transport-codec regressions look like hangs.
func (rt *NodeRuntime) dropPayload(msg transport.Message) {
	rt.binsDropped.Inc()
	log.Printf("core: node %d dropped malformed %s payload %T from node %d",
		rt.id, msg.Kind, msg.Payload, msg.From)
}
