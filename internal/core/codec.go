package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync"
)

// The codec turns KV values into bytes for reduce-side spills and for the
// TCP transport. Common scalar and slice types use a compact type-tagged
// encoding; everything else falls back to gob (types must be registered
// with RegisterValue).

type typeTag byte

const (
	tagNil typeTag = iota
	tagBool
	tagInt64
	tagFloat64
	tagString
	tagBytes
	tagFloat64Slice
	tagInt64Slice
	tagStringSlice
	tagGob
	tagIntSlice
	tagMapStringInt64
)

// codecSession holds the per-call scratch state of one gob fallback
// encode or decode. gob streams are stateful (type descriptors are sent
// once per stream), so each value gets a fresh Encoder/Decoder to stay
// self-contained — but the buffers they run over are pooled, and nothing
// is shared, so concurrent workers encode and decode fully independently.
// (An earlier revision funnelled every gob operation through one
// process-global mutex, serializing the spill and TCP paths.)
type codecSession struct {
	buf bytes.Buffer
	rd  bytes.Reader
}

var codecPool = sync.Pool{New: func() any { return new(codecSession) }}

// RegisterValue registers a custom value type for the gob fallback
// encoding. Safe to call from init functions of app packages and safe for
// concurrent use (gob's registry is internally synchronized).
func RegisterValue(v any) {
	gob.Register(v)
}

// EncodeValue appends the encoded form of v to dst and returns the result.
func EncodeValue(dst []byte, v any) ([]byte, error) {
	var scratch [8]byte
	putU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(scratch[:], x)
		dst = append(dst, scratch[:]...)
	}
	switch x := v.(type) {
	case nil:
		dst = append(dst, byte(tagNil))
	case bool:
		dst = append(dst, byte(tagBool))
		if x {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case int:
		dst = append(dst, byte(tagInt64))
		putU64(uint64(int64(x)))
	case int64:
		dst = append(dst, byte(tagInt64))
		putU64(uint64(x))
	case float64:
		dst = append(dst, byte(tagFloat64))
		putU64(math.Float64bits(x))
	case string:
		dst = append(dst, byte(tagString))
		putU64(uint64(len(x)))
		dst = append(dst, x...)
	case []byte:
		dst = append(dst, byte(tagBytes))
		putU64(uint64(len(x)))
		dst = append(dst, x...)
	case []float64:
		dst = append(dst, byte(tagFloat64Slice))
		putU64(uint64(len(x)))
		for _, f := range x {
			putU64(math.Float64bits(f))
		}
	case []int64:
		dst = append(dst, byte(tagInt64Slice))
		putU64(uint64(len(x)))
		for _, i := range x {
			putU64(uint64(i))
		}
	case []string:
		dst = append(dst, byte(tagStringSlice))
		putU64(uint64(len(x)))
		for _, s := range x {
			putU64(uint64(len(s)))
			dst = append(dst, s...)
		}
	case []int:
		dst = append(dst, byte(tagIntSlice))
		putU64(uint64(len(x)))
		for _, i := range x {
			putU64(uint64(int64(i)))
		}
	case map[string]int64:
		dst = append(dst, byte(tagMapStringInt64))
		putU64(uint64(len(x)))
		for k, i := range x {
			putU64(uint64(len(k)))
			dst = append(dst, k...)
			putU64(uint64(i))
		}
	default:
		sess := codecPool.Get().(*codecSession)
		sess.buf.Reset()
		err := gob.NewEncoder(&sess.buf).Encode(&v)
		if err != nil {
			codecPool.Put(sess)
			return nil, fmt.Errorf("core: gob-encode %T: %w", v, err)
		}
		dst = append(dst, byte(tagGob))
		putU64(uint64(sess.buf.Len()))
		dst = append(dst, sess.buf.Bytes()...)
		codecPool.Put(sess)
	}
	return dst, nil
}

// DecodeValue decodes one value from b, returning the value and the number
// of bytes consumed.
func DecodeValue(b []byte) (any, int, error) {
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("core: decode empty buffer")
	}
	tag := typeTag(b[0])
	p := 1
	getU64 := func() (uint64, error) {
		if len(b) < p+8 {
			return 0, fmt.Errorf("core: truncated value")
		}
		x := binary.LittleEndian.Uint64(b[p:])
		p += 8
		return x, nil
	}
	switch tag {
	case tagNil:
		return nil, p, nil
	case tagBool:
		if len(b) < p+1 {
			return nil, 0, fmt.Errorf("core: truncated bool")
		}
		v := b[p] != 0
		return v, p + 1, nil
	case tagInt64:
		x, err := getU64()
		if err != nil {
			return nil, 0, err
		}
		return int64(x), p, nil
	case tagFloat64:
		x, err := getU64()
		if err != nil {
			return nil, 0, err
		}
		return math.Float64frombits(x), p, nil
	case tagString:
		n, err := getU64()
		if err != nil {
			return nil, 0, err
		}
		if uint64(len(b)-p) < n {
			return nil, 0, fmt.Errorf("core: truncated string")
		}
		v := string(b[p : p+int(n)])
		return v, p + int(n), nil
	case tagBytes:
		n, err := getU64()
		if err != nil {
			return nil, 0, err
		}
		if uint64(len(b)-p) < n {
			return nil, 0, fmt.Errorf("core: truncated bytes")
		}
		v := append([]byte(nil), b[p:p+int(n)]...)
		return v, p + int(n), nil
	case tagFloat64Slice:
		n, err := getU64()
		if err != nil {
			return nil, 0, err
		}
		v := make([]float64, n)
		for i := range v {
			x, err := getU64()
			if err != nil {
				return nil, 0, err
			}
			v[i] = math.Float64frombits(x)
		}
		return v, p, nil
	case tagInt64Slice:
		n, err := getU64()
		if err != nil {
			return nil, 0, err
		}
		v := make([]int64, n)
		for i := range v {
			x, err := getU64()
			if err != nil {
				return nil, 0, err
			}
			v[i] = int64(x)
		}
		return v, p, nil
	case tagStringSlice:
		n, err := getU64()
		if err != nil {
			return nil, 0, err
		}
		v := make([]string, n)
		for i := range v {
			sl, err := getU64()
			if err != nil {
				return nil, 0, err
			}
			if uint64(len(b)-p) < sl {
				return nil, 0, fmt.Errorf("core: truncated string slice")
			}
			v[i] = string(b[p : p+int(sl)])
			p += int(sl)
		}
		return v, p, nil
	case tagIntSlice:
		n, err := getU64()
		if err != nil {
			return nil, 0, err
		}
		v := make([]int, n)
		for i := range v {
			x, err := getU64()
			if err != nil {
				return nil, 0, err
			}
			v[i] = int(int64(x))
		}
		return v, p, nil
	case tagMapStringInt64:
		n, err := getU64()
		if err != nil {
			return nil, 0, err
		}
		v := make(map[string]int64, n)
		for i := uint64(0); i < n; i++ {
			kl, err := getU64()
			if err != nil {
				return nil, 0, err
			}
			if uint64(len(b)-p) < kl {
				return nil, 0, fmt.Errorf("core: truncated map key")
			}
			k := string(b[p : p+int(kl)])
			p += int(kl)
			x, err := getU64()
			if err != nil {
				return nil, 0, err
			}
			v[k] = int64(x)
		}
		return v, p, nil
	case tagGob:
		n, err := getU64()
		if err != nil {
			return nil, 0, err
		}
		if uint64(len(b)-p) < n {
			return nil, 0, fmt.Errorf("core: truncated gob value")
		}
		var v any
		sess := codecPool.Get().(*codecSession)
		sess.rd.Reset(b[p : p+int(n)])
		err = gob.NewDecoder(&sess.rd).Decode(&v)
		codecPool.Put(sess)
		if err != nil {
			return nil, 0, fmt.Errorf("core: gob-decode: %w", err)
		}
		return v, p + int(n), nil
	default:
		return nil, 0, fmt.Errorf("core: unknown value tag %d", tag)
	}
}

// EncodeKV encodes a full pair (key then value) into dst.
func EncodeKV(dst []byte, kv KV) ([]byte, error) {
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(kv.Key)))
	dst = append(dst, scratch[:]...)
	dst = append(dst, kv.Key...)
	return EncodeValue(dst, kv.Value)
}

// DecodeKV decodes one pair from b, returning the pair and bytes consumed.
func DecodeKV(b []byte) (KV, int, error) {
	if len(b) < 8 {
		return KV{}, 0, fmt.Errorf("core: truncated kv")
	}
	klen := binary.LittleEndian.Uint64(b)
	p := 8
	if uint64(len(b)-p) < klen {
		return KV{}, 0, fmt.Errorf("core: truncated key")
	}
	key := string(b[p : p+int(klen)])
	p += int(klen)
	v, n, err := DecodeValue(b[p:])
	if err != nil {
		return KV{}, 0, err
	}
	return KV{Key: key, Value: v}, p + n, nil
}
