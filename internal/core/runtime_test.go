package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
)

// TestEngineOverTCP runs a full wordcount job with the data plane on real
// TCP sockets — the engine is transport-agnostic.
func TestEngineOverTCP(t *testing.T) {
	const numNodes = 3
	addrs := map[transport.NodeID]string{}
	for i := 0; i < numNodes; i++ {
		addrs[transport.NodeID(i)] = "127.0.0.1:0"
	}
	net := transport.NewTCPNetwork(addrs)
	defer net.Close()

	cfg := Config{NumNodes: numNodes, Workers: 2}
	nodes := make([]*NodeRuntime, numNodes)
	for i := 0; i < numNodes; i++ {
		rt, err := NewNodeRuntime(i, cfg, net, storage.NewMemDisk(0), nil, metrics.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = rt
		defer rt.Close()
	}

	chunks, want := wordChunks(8, 25)
	g, sink := buildWordCount(t, true, chunks)
	if _, err := Run(g, nodes, nil); err != nil {
		t.Fatalf("Run over TCP: %v", err)
	}
	got := map[string]int64{}
	for _, kv := range sink.Pairs() {
		got[kv.Key] += kv.Value.(int64)
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d (over TCP)", w, got[w], n)
		}
	}
}

// Property: partial reduce with a commutative+associative fold computes
// exactly what a full reduce computes, for any input multiset — the §2
// requirement that makes partial reduce safe.
func TestPartialEqualsReduceProperty(t *testing.T) {
	nodes, cleanup := newTestCluster(t, 3, Config{Workers: 2})
	defer cleanup()
	f := func(wordSel []uint8) bool {
		if len(wordSel) == 0 {
			return true
		}
		var lines []string
		for i, w := range wordSel {
			lines = append(lines, fmt.Sprintf("w%d w%d", w%7, (int(w)+i)%5))
		}
		chunks := [][]string{lines}
		run := func(partial bool) map[string]int64 {
			g, sink := buildWordCount(t, partial, chunks)
			if _, err := Run(g, nodes, nil); err != nil {
				t.Fatal(err)
			}
			out := map[string]int64{}
			for _, kv := range sink.Pairs() {
				out[kv.Key] += kv.Value.(int64)
			}
			return out
		}
		a, b := run(true), run(false)
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

// routeRecorder records which node each pair was observed on.
type routeRecorder struct{}

func (routeRecorder) Map(kv KV, ctx Context) error {
	return ctx.Emit(KV{Key: kv.Key, Value: int64(ctx.Node())})
}

// directLoader emits each (key, node) pair via EmitToNode.
type directLoader struct {
	targets map[string]int
}

func (l *directLoader) Plan(env *Env) ([]Split, error) {
	return []Split{{Payload: nil, PreferredNode: 0}}, nil
}

func (l *directLoader) Load(sp Split, ctx Context) error {
	for k, n := range l.targets {
		if err := ctx.EmitToNode("stamp", n, KV{Key: k, Value: int64(0)}); err != nil {
			return err
		}
	}
	return nil
}

func TestEmitToNodeRouting(t *testing.T) {
	const numNodes = 4
	targets := map[string]int{"a": 3, "b": 0, "c": 2, "d": 1}
	g := NewGraph("direct")
	sink := NewCollectSink()
	ld, _ := g.AddLoader("load", &directLoader{targets: targets})
	mp, _ := g.AddMap("stamp", routeRecorder{})
	sk, _ := g.AddSink("out", sink)
	g.Connect(ld, mp) // routing overridden per-pair by EmitToNode
	g.Connect(mp, sk)
	nodes, cleanup := newTestCluster(t, numNodes, Config{Workers: 2})
	defer cleanup()
	if _, err := Run(g, nodes, nil); err != nil {
		t.Fatal(err)
	}
	for _, kv := range sink.Pairs() {
		want := targets[kv.Key]
		if int(kv.Value.(int64)) != want {
			t.Errorf("key %q processed on node %d, want %d", kv.Key, kv.Value, want)
		}
	}
	if sink.Len() != len(targets) {
		t.Errorf("%d pairs, want %d", sink.Len(), len(targets))
	}
}

func TestEmitToUnknownFlowlet(t *testing.T) {
	g := NewGraph("bad")
	sink := NewCollectSink()
	ld, _ := g.AddLoader("load", &sliceLoader{chunks: [][]string{{"x"}}})
	mp, _ := g.AddMap("m", MapperFuncT(func(kv KV, ctx Context) error {
		return ctx.EmitTo("nonexistent", kv)
	}))
	sk, _ := g.AddSink("out", sink)
	g.Connect(ld, mp)
	g.Connect(mp, sk)
	nodes, cleanup := newTestCluster(t, 2, Config{Workers: 2})
	defer cleanup()
	_, err := Run(g, nodes, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown flowlet") {
		t.Fatalf("EmitTo(unknown) error = %v", err)
	}
}

// MapperFuncT adapts a function to Mapper for tests.
type MapperFuncT func(kv KV, ctx Context) error

// Map implements Mapper.
func (f MapperFuncT) Map(kv KV, ctx Context) error { return f(kv, ctx) }

func TestStatusLifecycle(t *testing.T) {
	// Build a job node directly and inspect flowlet status transitions.
	net := NewTestNetwork()
	defer net.Close()
	rt, err := NewNodeRuntime(0, Config{NumNodes: 1, Workers: 1}, net, storage.NewMemDisk(0), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	g := NewGraph("life")
	sink := NewCollectSink()
	ld, _ := g.AddLoader("load", &sliceLoader{chunks: [][]string{{"a b"}}})
	mp, _ := g.AddMap("split", wordSplit{})
	rd, _ := g.AddReduce("count", sumReduce{})
	sk, _ := g.AddSink("out", sink)
	g.Connect(ld, mp)
	g.Connect(mp, rd)
	g.Connect(rd, sk)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	jn := newJobNode(rt, g, 999999, 1)
	if got := jn.flowlets[ld].status(); got != StatusReady {
		t.Errorf("loader initial status %v, want ready (§2: initially only loader is ready)", got)
	}
	for _, id := range []int{mp, rd, sk} {
		if got := jn.flowlets[id].status(); got != StatusDormant {
			t.Errorf("flowlet %d initial status %v, want dormant", id, got)
		}
	}
	if err := rt.registerJob(jn); err != nil {
		t.Fatal(err)
	}
	jn.start(map[int][]Split{ld: {{Payload: []string{"a b a"}}}})
	select {
	case <-jn.doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("job hung")
	}
	rt.unregisterJob(jn.jobID)
	for id, fs := range jn.flowlets {
		if got := fs.status(); got != StatusComplete {
			t.Errorf("flowlet %d final status %v, want complete", id, got)
		}
	}
	if sink.Len() != 2 {
		t.Errorf("sink got %d pairs", sink.Len())
	}
	for _, s := range []Status{StatusDormant, StatusReady, StatusComplete, Status(99)} {
		if s.String() == "" {
			t.Errorf("Status(%d).String empty", s)
		}
	}
}

func TestContentionCostCharged(t *testing.T) {
	// With a contention cost configured, a skewed partial reduce must
	// record modeled contention time.
	chunks := [][]string{}
	for i := 0; i < 8; i++ {
		chunks = append(chunks, []string{strings.Repeat("hot ", 50)})
	}
	g, sink := buildWordCount(t, true, chunks)
	nodes, cleanup := newTestCluster(t, 2, Config{Workers: 2, ContentionCost: 10 * time.Microsecond})
	defer cleanup()
	res, err := Run(g, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Metrics.Timers["partial.contention"]; d <= 0 {
		t.Errorf("no contention charged: %v", res.Metrics.Timers)
	}
	got := map[string]int64{}
	for _, kv := range sink.Pairs() {
		got[kv.Key] += kv.Value.(int64)
	}
	if got["hot"] != 400 {
		t.Errorf("hot = %d, want 400", got["hot"])
	}
}

func TestSerializeUpdatesSingleStripe(t *testing.T) {
	g := NewGraph("ser")
	sink := NewCollectSink()
	ld, _ := g.AddLoader("load", &sliceLoader{chunks: [][]string{{"a a b b c"}}})
	mp, _ := g.AddMap("split", wordSplit{})
	pr, _ := g.AddPartialReduce("count", sumPartial{})
	g.Flowlets()[pr].SerializeUpdates = true
	sk, _ := g.AddSink("out", sink)
	g.Connect(ld, mp)
	g.Connect(mp, pr)
	g.Connect(pr, sk)
	nodes, cleanup := newTestCluster(t, 2, Config{Workers: 2})
	defer cleanup()
	if _, err := Run(g, nodes, nil); err != nil {
		t.Fatal(err)
	}
	got := sink.Map()
	if got["a"].(int64) != 2 || got["b"].(int64) != 2 || got["c"].(int64) != 1 {
		t.Errorf("serialized counts = %v", got)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	var c Config
	c.FillDefaults()
	if c.Workers <= 0 || c.BinSize <= 0 || c.BinBytes <= 0 ||
		c.LoaderConcurrency <= 0 || c.ReduceTaskKeys <= 0 || c.PartialStripes <= 0 {
		t.Errorf("defaults incomplete: %+v", c)
	}
	c2 := Config{Workers: 7, BinSize: 11}
	c2.FillDefaults()
	if c2.Workers != 7 || c2.BinSize != 11 {
		t.Error("FillDefaults clobbered explicit settings")
	}
}

func TestJobResultMetricsAggregated(t *testing.T) {
	chunks, _ := wordChunks(6, 10)
	g, _ := buildWordCount(t, true, chunks)
	nodes, cleanup := newTestCluster(t, 3, Config{Workers: 2})
	defer cleanup()
	res, err := Run(g, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Get("bins.sent") == 0 || res.Metrics.Get("bins.recv") == 0 {
		t.Errorf("bin counters empty: %v", res.Metrics.Counters)
	}
	if res.Metrics.Get("loader.splits") != 6 {
		t.Errorf("loader.splits = %d, want 6", res.Metrics.Get("loader.splits"))
	}
	if len(res.SplitsPerNode) != 3 {
		t.Errorf("SplitsPerNode = %v", res.SplitsPerNode)
	}
	total := 0
	for _, n := range res.SplitsPerNode {
		total += n
	}
	if total != 6 {
		t.Errorf("splits distributed = %d, want 6", total)
	}
}

func TestSplitAssignmentBalanced(t *testing.T) {
	// 12 splits with no preference over 4 nodes must land 3 per node.
	chunks, _ := wordChunks(12, 5)
	g, _ := buildWordCount(t, true, chunks)
	nodes, cleanup := newTestCluster(t, 4, Config{Workers: 2})
	defer cleanup()
	res, err := Run(g, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n, c := range res.SplitsPerNode {
		if c != 3 {
			t.Errorf("node %d got %d splits, want 3: %v", n, c, res.SplitsPerNode)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindLoader: "loader", KindMap: "map", KindReduce: "reduce",
		KindPartialReduce: "partial-reduce", KindSink: "sink", Kind(42): "kind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestFlowletStatsAndTimeline(t *testing.T) {
	chunks, _ := wordChunks(4, 10)
	g, _ := buildWordCount(t, true, chunks)
	nodes, cleanup := newTestCluster(t, 2, Config{Workers: 2})
	defer cleanup()
	res, err := Run(g, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flowlets) != 4 {
		t.Fatalf("%d flowlet stats, want 4", len(res.Flowlets))
	}
	byName := map[string]FlowletStat{}
	for _, fs := range res.Flowlets {
		byName[fs.Name] = fs
		if fs.CompletedAt <= 0 {
			t.Errorf("flowlet %q has no completion time", fs.Name)
		}
	}
	if byName["load"].LoaderSplits != 4 {
		t.Errorf("loader splits = %d", byName["load"].LoaderSplits)
	}
	if byName["split"].BinsIn == 0 || byName["count"].BinsIn == 0 {
		t.Error("downstream flowlets consumed no bins")
	}
	// Completion must respect topological order: loader before the
	// partial reduce, which waits for everything upstream.
	if byName["load"].CompletedAt > byName["count"].CompletedAt {
		t.Errorf("loader completed after the aggregation (%v > %v)",
			byName["load"].CompletedAt, byName["count"].CompletedAt)
	}
	out := res.Timeline()
	for _, want := range []string{"load", "split", "count", "out", "complete@"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}
