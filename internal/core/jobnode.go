package core

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hamr-go/hamr/internal/faults"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/par"
	"github.com/hamr-go/hamr/internal/trace"
	"github.com/hamr-go/hamr/internal/transport"
	"github.com/hamr-go/hamr/internal/vtime"
)

// ErrJobAborted is returned from emits once a job has failed; user code
// should propagate it.
var ErrJobAborted = errors.New("core: job aborted")

// jobNode is the per-node state of one running job: the whole flowlet
// graph is instantiated on every node (§2, unlike Dryad's subgraphs).
type jobNode struct {
	rt    *NodeRuntime
	graph *Graph
	jobID int64
	node  int
	nodes int

	// reg is the job-scoped metrics registry: everything this job does on
	// this node is accounted here and merged into the node registry only
	// at job end, so concurrent jobs cannot contaminate each other's
	// JobResult.Metrics while cluster totals stay identical to the old
	// shared-registry accounting.
	reg *metrics.Registry

	// admit, when non-nil, is the multi-job fair-share gate on loader
	// admission (set by Job.SetAdmission before start). Acquired before
	// the node's loader semaphore; closed by the job manager at job end so
	// blocked spawners always drain.
	admit *par.Share

	flowlets []*flowletState
	edges    []*edgeState
	outBy    [][]*edgeState // producer-side edges indexed by flowlet id

	mem *MemoryManager

	failed  atomic.Bool
	errOnce sync.Once
	err     error

	doneOnce  sync.Once
	doneCh    chan struct{}
	finishedN atomic.Int32 // flowlets finished on this node
	started   time.Time

	// tr/traceTag record per-task spans when tracing is on. traceTag is
	// the tracer's per-run job index ("j0", ...), empty when tr is nil.
	tr       *trace.Tracer
	traceTag string

	// Hot-path metric handles, resolved once at construction. The emit
	// and bin-delivery loops fire these per bin (or per KV batch); a
	// string-keyed registry lookup there costs a map access and string
	// hash per event, which profiles as real overhead at bin rates.
	mBinsSent     *metrics.Counter
	mBinsRecv     *metrics.Counter
	mFlowGated    *metrics.Counter
	mShuffleBytes *metrics.Counter
	mShuffleKVs   *metrics.Counter
	mRefires      *metrics.Counter
}

// edgeState is the per-node producer-side state of one graph edge.
type edgeState struct {
	idx  int
	edge Edge
	buf  *binBuffer
	cred *credit
}

type prStripe struct {
	mu    sync.Mutex
	state map[string]any
	// charged is this stripe's accumulated contention cost (under mu) —
	// the serialized time the stripe's lock would have imposed. Only the
	// virtual-clock overlap model reads it.
	charged time.Duration
}

// flowletState is the per-node state of one flowlet: lifecycle counters
// (Dormant -> Ready -> Complete), input accounting, the flow-control gate,
// and kind-specific accumulation.
type flowletState struct {
	spec *FlowletSpec
	jn   *jobNode

	upNeeded int // distinct upstream flowlets * numNodes

	mu         sync.Mutex
	upReceived int
	enqueued   int64
	processed  int64
	pending    []*Bin // bins gated by flow control
	finishing  bool
	finished   bool

	// loader
	splitsAssigned int
	splitsDone     int
	splitsSet      bool

	// partial reduce
	stripes    []prStripe
	contention *metrics.Timer // pre-resolved "partial.contention" handle
	// Virtual-clock overlap model for striped contention (see
	// chargeContention): total charged cost, the hottest stripe's total,
	// and how much has already advanced the node lane.
	prSum      atomic.Int64
	prHot      atomic.Int64
	prAdvanced atomic.Int64

	// reduce
	acc *accumulator
	// accOnce opens the traced accumulate window — the interval from the
	// first pair accumulated on this node to the start of the grouped
	// reduce — whose overlap with still-running loader spans is the
	// engine's shuffle/reduce overlap made visible. The last bin's
	// processor synchronizes with finishReduce through fs.mu, so reading
	// accSpan there is ordered after the Once completes.
	accOnce sync.Once
	accSpan trace.Span

	// sink
	sinkMu sync.Mutex

	finishedAt time.Duration // offset from job start when Complete was reached
}

// Status is the paper's three-state flowlet lifecycle.
type Status int

const (
	// StatusDormant means the flowlet has not yet received all required
	// data.
	StatusDormant Status = iota
	// StatusReady means the flowlet has data to process or is processing.
	StatusReady
	// StatusComplete means no more data will arrive from upstream and all
	// local work is done.
	StatusComplete
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusDormant:
		return "dormant"
	case StatusReady:
		return "ready"
	case StatusComplete:
		return "complete"
	default:
		return "unknown"
	}
}

// status derives the flowlet's lifecycle state on this node.
func (fs *flowletState) status() Status {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.finished {
		return StatusComplete
	}
	if fs.spec.Kind == KindLoader {
		return StatusReady // only loaders are ready when a job starts (§2)
	}
	if fs.spec.Kind == KindReduce {
		// A reduce runs its grouped work only once every upstream flowlet
		// has completed on every node (§2: "must wait until all its
		// upstream flowlets complete").
		if fs.upReceived >= fs.upNeeded {
			return StatusReady
		}
		return StatusDormant
	}
	if fs.enqueued > fs.processed || fs.upReceived >= fs.upNeeded {
		return StatusReady
	}
	return StatusDormant
}

func newJobNode(rt *NodeRuntime, graph *Graph, jobID int64, numNodes int) *jobNode {
	reg := metrics.NewRegistry()
	jn := &jobNode{
		rt:     rt,
		graph:  graph,
		jobID:  jobID,
		node:   rt.id,
		nodes:  numNodes,
		reg:    reg,
		mem:    NewMemoryManager(rt.cfg.MemoryBudget),
		doneCh: make(chan struct{}),

		mBinsSent:     reg.Counter("bins.sent"),
		mBinsRecv:     reg.Counter("bins.recv"),
		mFlowGated:    reg.Counter("flow.gated"),
		mShuffleBytes: reg.Counter("shuffle.bytes"),
		mShuffleKVs:   reg.Counter("shuffle.kvs"),
		mRefires:      reg.Counter("flowlet.refires"),

		tr: rt.cfg.Trace,
	}
	jn.traceTag = jn.tr.JobTag(jobID)
	jn.outBy = make([][]*edgeState, len(graph.Flowlets()))
	for i, e := range graph.Edges() {
		es := &edgeState{
			idx:  i,
			edge: e,
			buf:  newBinBuffer(numNodes, rt.cfg.BinSize, rt.cfg.BinBytes),
			cred: newCredit(rt.cfg.FlowControlWindow),
		}
		jn.edges = append(jn.edges, es)
		jn.outBy[e.From] = append(jn.outBy[e.From], es)
	}
	for _, spec := range graph.Flowlets() {
		fs := &flowletState{spec: spec, jn: jn}
		ups := map[int]bool{}
		for _, u := range graph.Upstream(spec.ID) {
			ups[u] = true
		}
		fs.upNeeded = len(ups) * numNodes
		switch spec.Kind {
		case KindPartialReduce:
			n := rt.cfg.PartialStripes
			if spec.SerializeUpdates {
				n = 1
			}
			fs.stripes = make([]prStripe, n)
			for i := range fs.stripes {
				fs.stripes[i].state = make(map[string]any)
			}
			fs.contention = reg.Timer("partial.contention")
		case KindReduce:
			prefix := fmt.Sprintf("job%d/reduce-%d", jobID, spec.ID)
			fs.acc = newAccumulator(jn.mem, rt.disk, prefix, reg, rt.cfg.SpillCompress)
		}
		jn.flowlets = append(jn.flowlets, fs)
	}
	return jn
}

// fireTask launches one fine-grain flowlet task under the fault injector.
// The injector may crash the task at its start — before fn has run, so
// before any side effects — in which case the task is re-fired with the
// next attempt number. Re-fires are bounded by MaxRefires; an exhausted
// task returns the injected error, which aborts the job through the normal
// failure path with the original cause intact. site must be a
// job-relative identity (flowlet name + node + task index) so the same
// seed crashes the same tasks on every run.
func (jn *jobNode) fireTask(site string, fn func() error) error {
	inj := jn.rt.cfg.Faults
	for attempt := 0; ; attempt++ {
		if err := inj.FlowletFire(site, attempt); err != nil {
			if attempt >= jn.rt.cfg.MaxRefires {
				return err
			}
			jn.mRefires.Inc()
			if jn.tr.Enabled() {
				jn.tr.Instant(jn.node, jn.traceTag,
					fmt.Sprintf("%s/refire:%s:%d", jn.traceTag, site, attempt), "retry", 0)
			}
			continue
		}
		return fn()
	}
}

// start assigns loader splits to this node and kicks off execution.
//
// Loader tasks run on dedicated goroutines admitted by the node's loader
// semaphore rather than on pool workers: loaders are the one task kind
// allowed to block on flow control (the paper's "decrease the number of
// concurrent loader tasks" valve, §2), and a blocked task must never be
// able to starve the worker pool that processes the bins whose acks would
// unblock it.
func (jn *jobNode) start(splits map[int][]Split) {
	for _, fs := range jn.flowlets {
		if fs.spec.Kind != KindLoader {
			continue
		}
		fs := fs
		ss := splits[fs.spec.ID]
		fs.mu.Lock()
		fs.splitsAssigned = len(ss)
		fs.splitsSet = true
		fs.mu.Unlock()
		if len(ss) == 0 {
			jn.maybeFinish(fs)
			continue
		}
		go func() {
			for i, sp := range ss {
				i, sp := i, sp
				// The job's fair-share gate is taken before the node's
				// loader semaphore: a job throttled down by the manager
				// queues here, on its own spawner goroutine, without
				// holding any node-wide resource. A closed gate (job over)
				// just marks the split done so the flowlet can finish.
				if jn.admit != nil && !jn.admit.Acquire() {
					jn.loaderSplitDone(fs)
					continue
				}
				jn.rt.loaderSem.Acquire()
				go func() {
					defer func() {
						jn.rt.loaderSem.Release()
						if jn.admit != nil {
							jn.admit.Release()
						}
					}()
					if !jn.failed.Load() {
						site := fmt.Sprintf("split:%s:%d:%d", fs.spec.Name, jn.node, i)
						var sp2 trace.Span
						if jn.tr.Enabled() {
							sp2 = jn.tr.Start(jn.node, jn.traceTag, jn.traceTag+"/"+site, "load", "disk")
						}
						err := jn.fireTask(site, func() error {
							ctx := &flowCtx{jn: jn, fs: fs}
							return fs.spec.Loader.Load(sp, ctx)
						})
						sp2.End()
						if err != nil && !errors.Is(err, ErrJobAborted) {
							jn.fail(fmt.Errorf("loader %q on node %d: %w", fs.spec.Name, jn.node, err))
						}
						jn.reg.Inc("loader.splits")
					}
					jn.loaderSplitDone(fs)
				}()
			}
		}()
	}
}

func (jn *jobNode) loaderSplitDone(fs *flowletState) {
	fs.mu.Lock()
	fs.splitsDone++
	fs.mu.Unlock()
	jn.maybeFinish(fs)
}

// outFull reports whether any of the flowlet's output windows is
// exhausted; such a flowlet is not scheduled for new input bins.
func (jn *jobNode) outFull(fs *flowletState) bool {
	for _, es := range jn.outBy[fs.spec.ID] {
		if es.cred.full() {
			return true
		}
	}
	return false
}

// waitOutBelow blocks (on a plain goroutine, never a pool worker) until
// every output window of fs has room. Returns false if the job aborted.
func (jn *jobNode) waitOutBelow(fs *flowletState) bool {
	for _, es := range jn.outBy[fs.spec.ID] {
		if !es.cred.waitBelow() {
			return false
		}
	}
	return true
}

// onBin receives a bin for a flowlet on this node. Local bins are
// processed inline by the emitting task (operator chaining); remote bins
// are gated by the destination flowlet's flow-control state and otherwise
// dispatched to the worker pool.
func (jn *jobNode) onBin(bin *Bin, local bool) {
	if bin.Flowlet < 0 || bin.Flowlet >= len(jn.flowlets) {
		jn.rt.binsDropped.Inc()
		log.Printf("core: node %d dropped bin for job %d with out-of-range flowlet %d (%d kvs, from node %d)",
			jn.node, bin.Job, bin.Flowlet, len(bin.KVs), bin.From)
		return
	}
	fs := jn.flowlets[bin.Flowlet]
	jn.mBinsRecv.Inc()
	if local {
		fs.mu.Lock()
		fs.enqueued++
		fs.mu.Unlock()
		jn.processBin(fs, bin, true)
		return
	}
	fs.mu.Lock()
	fs.enqueued++
	if !jn.failed.Load() && jn.outFull(fs) {
		// Flow control: stop scheduling this flowlet until its output
		// window drains (§2).
		fs.pending = append(fs.pending, bin)
		fs.mu.Unlock()
		jn.mFlowGated.Inc()
		return
	}
	fs.mu.Unlock()
	jn.rt.pool.Submit(func() { jn.processBin(fs, bin, false) })
}

// drainPending re-schedules bins that were gated by flow control once the
// flowlet's output windows have room again.
func (jn *jobNode) drainPending(fs *flowletState) {
	for {
		fs.mu.Lock()
		if len(fs.pending) == 0 || (jn.outFull(fs) && !jn.failed.Load()) {
			fs.mu.Unlock()
			return
		}
		bin := fs.pending[0]
		fs.pending = fs.pending[1:]
		fs.mu.Unlock()
		jn.rt.pool.Submit(func() { jn.processBin(fs, bin, false) })
	}
}

func (jn *jobNode) processBin(fs *flowletState, bin *Bin, local bool) {
	if !jn.failed.Load() {
		if err := jn.applyBin(fs, bin); err != nil && !errors.Is(err, ErrJobAborted) {
			jn.fail(fmt.Errorf("flowlet %q on node %d: %w", fs.spec.Name, jn.node, err))
		}
	}
	fs.mu.Lock()
	fs.processed++
	fs.mu.Unlock()
	if !local {
		// Ack frees the producer's flow-control credit.
		_ = jn.rt.send(transport.Message{
			From:    transport.NodeID(jn.node),
			To:      transport.NodeID(bin.From),
			Kind:    msgAck,
			Payload: ackMsg{Job: jn.jobID, Edge: bin.Edge},
			Size:    16,
		})
	}
	jn.maybeFinish(fs)
}

// applyBin runs the flowlet's user code over one bin of input.
func (jn *jobNode) applyBin(fs *flowletState, bin *Bin) error {
	switch fs.spec.Kind {
	case KindMap:
		ctx := &flowCtx{jn: jn, fs: fs}
		for _, kv := range bin.KVs {
			if err := fs.spec.Mapper.Map(kv, ctx); err != nil {
				return err
			}
		}
	case KindPartialReduce:
		return fs.applyPartialBin(bin)
	case KindReduce:
		if jn.tr.Enabled() {
			fs.accOnce.Do(func() {
				fs.accSpan = jn.tr.Start(jn.node, jn.traceTag,
					fmt.Sprintf("%s/acc:%s:%d", jn.traceTag, fs.spec.Name, jn.node), "accumulate", "cpu")
			})
		}
		for _, kv := range bin.KVs {
			if err := fs.acc.add(kv); err != nil {
				return err
			}
		}
	case KindSink:
		fs.sinkMu.Lock()
		defer fs.sinkMu.Unlock()
		for _, kv := range bin.KVs {
			if err := fs.spec.Sink.Write(jn.node, kv); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("core: bin delivered to %v flowlet", fs.spec.Kind)
	}
	return nil
}

// prScratch is the reusable working set for stripe-grouping one bin: a
// per-KV stripe index, per-stripe counts/offsets, and a stripe-ordered
// copy of the bin's pairs (a counting sort). Pooling it removes the
// map[int][]KV plus per-stripe slice allocations the fold used to make
// for every bin. Pool entries are not cleared between uses: at most a
// few are live at once (one per concurrently folding worker) and each
// holds at most one bin's worth of pairs.
type prScratch struct {
	idx    []int32
	counts []int32
	kvs    []KV
}

var prScratchPool = sync.Pool{New: func() any { return new(prScratch) }}

func (sc *prScratch) grow(nkvs, nstripes int) {
	if cap(sc.idx) < nkvs {
		sc.idx = make([]int32, nkvs)
		sc.kvs = make([]KV, nkvs)
	}
	sc.idx = sc.idx[:nkvs]
	sc.kvs = sc.kvs[:nkvs]
	if cap(sc.counts) < nstripes {
		sc.counts = make([]int32, nstripes)
	}
	sc.counts = sc.counts[:nstripes]
	for i := range sc.counts {
		sc.counts[i] = 0
	}
}

// applyPartialBin folds one bin into the partial-reduce state. Updates
// are grouped by lock stripe; each stripe batch is applied while holding
// that stripe's lock, charging the modeled contended-update cost there
// (§5.2). A skewed key space collapses onto few stripes and serializes;
// a wide key space spreads across stripes and overlaps.
func (fs *flowletState) applyPartialBin(bin *Bin) error {
	nstripes := len(fs.stripes)
	if nstripes == 1 {
		return fs.applyStripeBatch(&fs.stripes[0], bin.KVs)
	}
	sc := prScratchPool.Get().(*prScratch)
	sc.grow(len(bin.KVs), nstripes)
	for i, kv := range bin.KVs {
		idx := int32(HashKey(kv.Key) % uint64(nstripes))
		sc.idx[i] = idx
		sc.counts[idx]++
	}
	// counts -> start offsets, then scatter pairs into stripe order.
	var start int32
	for s, c := range sc.counts {
		sc.counts[s] = start
		start += c
	}
	for i, kv := range bin.KVs {
		pos := sc.counts[sc.idx[i]]
		sc.kvs[pos] = kv
		sc.counts[sc.idx[i]] = pos + 1
	}
	// After the scatter, counts[s] is the END offset of stripe s.
	var err error
	start = 0
	for s := 0; s < nstripes; s++ {
		end := sc.counts[s]
		if end > start {
			if err = fs.applyStripeBatch(&fs.stripes[s], sc.kvs[start:end]); err != nil {
				break
			}
		}
		start = end
	}
	prScratchPool.Put(sc)
	return err
}

// applyStripeBatch applies one stripe's batch of updates under that
// stripe's lock, charging the modeled contention cost there (§5.2). The
// model is deliberately preserved by the emit-path optimizations: the
// charge is real serialization on the stripe, only the harness's own
// allocations and lookups around it were engineered away.
func (fs *flowletState) applyStripeBatch(st *prStripe, kvs []KV) error {
	cost := fs.jn.rt.cfg.ContentionCost
	if fs.spec.SerializeUpdates {
		// The paper's fix (§5.2): a single writer per variable avoids the
		// cache-line fight; only the base update cost remains.
		cost /= 10
	}
	weight := len(kvs)
	if cost > 0 {
		if coster, ok := fs.spec.Partial.(UpdateCoster); ok {
			weight = 0
			for _, kv := range kvs {
				w := coster.UpdateWeight(kv.Value)
				if w < 1 {
					w = 1
				}
				weight += w
			}
		}
	}
	st.mu.Lock()
	if cost > 0 {
		d := cost * time.Duration(weight)
		fs.contention.Observe(d)
		fs.chargeContention(st, d)
	}
	for _, kv := range kvs {
		old, had := st.state[kv.Key]
		var oldSize int64
		if had {
			oldSize = ValueSize(old) + int64(len(kv.Key))
		}
		next, err := fs.spec.Partial.Update(kv.Key, old, kv.Value)
		if err != nil {
			st.mu.Unlock()
			return err
		}
		st.state[kv.Key] = next
		fs.jn.mem.ForceReserve(ValueSize(next) + int64(len(kv.Key)) - oldSize)
	}
	st.mu.Unlock()
	return nil
}

// chargeContention pays one stripe batch's modeled contention cost d,
// called with st.mu held. Under the real clock the charge sleeps right
// here, so the stripe lock serializes contenders — the mechanism the
// §5.2 model relies on: few hot stripes convoy, many stripes overlap.
//
// A virtual clock cannot reproduce that overlap by summing charges onto
// the node lane (that serializes everything, overcharging wide key
// spaces), so it models it explicitly: the node's contention elapsed is
// max(hottest stripe's total, node total / workers) — the hot stripe
// paces a skewed key space, the worker pool bounds overlap of a wide
// one. Full cost still lands in the Contention busy accounting. Both
// inputs are monotone sums of atomic adds, so the final lane advance is
// scheduling-independent and deterministic.
func (fs *flowletState) chargeContention(st *prStripe, d time.Duration) {
	clk := fs.jn.rt.cfg.Clock
	vc, ok := clk.(*vtime.VirtualClock)
	if !ok {
		clk.Charge(fs.jn.rt.id, vtime.Contention, d)
		return
	}
	vc.AddBusy(vtime.Contention, d)
	st.charged += d
	hot := fs.prHot.Load()
	for st.charged > time.Duration(hot) && !fs.prHot.CompareAndSwap(hot, int64(st.charged)) {
		hot = fs.prHot.Load()
	}
	sum := fs.prSum.Add(int64(d))
	workers := int64(fs.jn.rt.cfg.Workers)
	if workers < 1 {
		workers = 1
	}
	target := fs.prHot.Load()
	if s := sum / workers; s > target {
		target = s
	}
	for {
		cur := fs.prAdvanced.Load()
		if target <= cur {
			return
		}
		if fs.prAdvanced.CompareAndSwap(cur, target) {
			vc.AdvanceLane(fs.jn.rt.id, time.Duration(target-cur))
			return
		}
	}
}

// onAck releases one flow-control credit and reopens the producing
// flowlet's gate.
func (jn *jobNode) onAck(edge int) {
	if edge < 0 || edge >= len(jn.edges) {
		return
	}
	es := jn.edges[edge]
	es.cred.release()
	jn.drainPending(jn.flowlets[es.edge.From])
}

// onComplete records that flowlet `fl` finished on node `node` and checks
// every downstream flowlet for readiness to finish. Completion propagates
// from loaders downstream, node by node (§2).
func (jn *jobNode) onComplete(fl, node int) {
	seen := map[int]bool{}
	for _, e := range jn.graph.Downstream(fl) {
		if seen[e.To] {
			continue // two edges from the same upstream count once
		}
		seen[e.To] = true
		fs := jn.flowlets[e.To]
		fs.mu.Lock()
		fs.upReceived++
		fs.mu.Unlock()
		jn.maybeFinish(fs)
	}
}

// maybeFinish finishes the flowlet on this node when its dependencies are
// satisfied: upstream complete everywhere and all delivered bins processed
// (loaders: all assigned splits done).
func (jn *jobNode) maybeFinish(fs *flowletState) {
	fs.mu.Lock()
	ready := false
	if !fs.finished && !fs.finishing {
		if fs.spec.Kind == KindLoader {
			ready = fs.splitsSet && fs.splitsDone == fs.splitsAssigned
		} else {
			ready = fs.upReceived == fs.upNeeded && fs.enqueued == fs.processed
		}
		if jn.failed.Load() {
			ready = true
		}
	}
	if ready {
		fs.finishing = true
	}
	fs.mu.Unlock()
	if !ready {
		return
	}
	// Finishing work runs on its own goroutine: it may fan out fine-grain
	// tasks to the pool and wait for them, which must not occupy a pool
	// worker.
	go jn.finishFlowlet(fs)
}

func (jn *jobNode) finishFlowlet(fs *flowletState) {
	if !jn.failed.Load() {
		var err error
		switch fs.spec.Kind {
		case KindPartialReduce:
			err = jn.finishPartial(fs)
		case KindReduce:
			err = jn.finishReduce(fs)
		}
		if err != nil && !errors.Is(err, ErrJobAborted) {
			jn.fail(fmt.Errorf("finish %q on node %d: %w", fs.spec.Name, jn.node, err))
		}
	}
	// Flush partially filled output bins.
	if !jn.failed.Load() {
		for _, es := range jn.outBy[fs.spec.ID] {
			for _, d := range es.buf.drain() {
				if err := jn.sendBin(es, d.Dest, d.KVs, d.Bytes, true); err != nil && !errors.Is(err, ErrJobAborted) {
					jn.fail(err)
				}
			}
		}
	}
	if fs.spec.Kind == KindSink {
		if err := fs.spec.Sink.Close(jn.node); err != nil && !jn.failed.Load() {
			jn.fail(fmt.Errorf("sink %q close on node %d: %w", fs.spec.Name, jn.node, err))
		}
	}
	fs.mu.Lock()
	fs.finished = true
	fs.finishedAt = time.Since(jn.started)
	fs.mu.Unlock()
	if jn.tr.Enabled() {
		jn.tr.Instant(jn.node, jn.traceTag,
			fmt.Sprintf("%s/complete:%s:%d", jn.traceTag, fs.spec.Name, jn.node), "flowlet", 0)
	}

	// Propagate completion to every node (the broadcast includes
	// ourselves via the fabric's loopback delivery). The flush barrier
	// guarantees every bin this node sent has reached the fabric before
	// any receiver sees our completion marker — the completion protocol
	// requires per-receiver bins-before-complete ordering.
	jn.rt.flushNet()
	if !jn.failed.Load() {
		_ = jn.rt.send(transport.Message{
			From:    transport.NodeID(jn.node),
			To:      transport.Broadcast,
			Kind:    msgComplete,
			Payload: completeMsg{Job: jn.jobID, Flowlet: fs.spec.ID, Node: jn.node},
			Size:    16,
		})
	}
	if int(jn.finishedN.Add(1)) == len(jn.flowlets) {
		jn.signalDone()
	}
}

// finishPartial emits every key's folded state (partial reduce "does not
// output until the completion of its upstream flowlets", §2). Stripes are
// processed as fine-grain pool tasks; the finishing goroutine honours the
// flow-control window between stripes.
func (jn *jobNode) finishPartial(fs *flowletState) error {
	ctx := &flowCtx{jn: jn, fs: fs}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	inflight := par.NewSemaphore(jn.rt.cfg.Workers * 2)
	for i := range fs.stripes {
		st := &fs.stripes[i]
		if len(st.state) == 0 {
			continue
		}
		if !jn.waitOutBelow(fs) {
			break
		}
		site := fmt.Sprintf("pstripe:%s:%d:%d", fs.spec.Name, jn.node, i)
		wg.Add(1)
		inflight.Acquire()
		jn.rt.pool.Submit(func() {
			defer wg.Done()
			defer inflight.Release()
			var tsp trace.Span
			if jn.tr.Enabled() {
				tsp = jn.tr.Start(jn.node, jn.traceTag, jn.traceTag+"/"+site, "partial", "cpu")
				defer tsp.End()
			}
			err := jn.fireTask(site, func() error {
				for k, v := range st.state {
					if jn.failed.Load() {
						return nil
					}
					if err := fs.spec.Partial.Finish(k, v, ctx); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	return firstErr
}

// finishReduce iterates the accumulated groups (merging spills) and runs
// the user reducer over batches of keys as fine-grain pool tasks.
func (jn *jobNode) finishReduce(fs *flowletState) error {
	// The accumulate window closes where the grouped reduce begins: the
	// span [first pair accumulated, here] is this node's reduce-input
	// build-up, the interval that overlaps upstream work.
	fs.accSpan.End()
	var rsp trace.Span
	if jn.tr.Enabled() {
		rsp = jn.tr.Start(jn.node, jn.traceTag,
			fmt.Sprintf("%s/reduce:%s:%d", jn.traceTag, fs.spec.Name, jn.node), "reduce", "cpu")
		defer rsp.End()
	}
	ctx := &flowCtx{jn: jn, fs: fs}
	type group struct {
		key    string
		values []any
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	batch := make([]group, 0, jn.rt.cfg.ReduceTaskKeys)
	// Bound in-flight batches so a huge key space does not re-materialize
	// in memory while tasks queue.
	inflight := par.NewSemaphore(jn.rt.cfg.Workers * 2)
	batchIdx := 0
	submit := func(b []group) bool {
		if !jn.waitOutBelow(fs) {
			return false
		}
		site := fmt.Sprintf("rbatch:%s:%d:%d", fs.spec.Name, jn.node, batchIdx)
		batchIdx++
		wg.Add(1)
		inflight.Acquire()
		jn.rt.pool.Submit(func() {
			defer wg.Done()
			defer inflight.Release()
			var tsp trace.Span
			if jn.tr.Enabled() {
				tsp = jn.tr.Start(jn.node, jn.traceTag, jn.traceTag+"/"+site, "reduce", "cpu")
				defer tsp.End()
			}
			err := jn.fireTask(site, func() error {
				for _, g := range b {
					if jn.failed.Load() {
						return nil
					}
					if err := fs.spec.Reducer.Reduce(g.key, g.values, ctx); err != nil {
						return err
					}
				}
				jn.reg.Inc("reduce.tasks")
				return nil
			})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		})
		return true
	}
	err := fs.acc.iterate(func(key string, values []any) error {
		if jn.failed.Load() {
			return ErrJobAborted
		}
		batch = append(batch, group{key, values})
		if len(batch) >= jn.rt.cfg.ReduceTaskKeys {
			if !submit(batch) {
				return ErrJobAborted
			}
			batch = make([]group, 0, jn.rt.cfg.ReduceTaskKeys)
		}
		return nil
	})
	if len(batch) > 0 && err == nil && !submit(batch) {
		// The job aborted while the final batch waited on flow control;
		// without this the abort would be silently swallowed and the job
		// reported clean with the tail of the key space never reduced.
		err = ErrJobAborted
	}
	wg.Wait()
	if err != nil {
		return err
	}
	return firstErr
}

// sendBin ships one sealed bin to dest. Local destinations are processed
// inline (operator chaining) and bypass flow control; remote sends take a
// credit — blocking first if the caller runs on a plain goroutine or a
// loader task (blocking=true), overshooting otherwise.
func (jn *jobNode) sendBin(es *edgeState, dest int, kvs []KV, bytes int64, blocking bool) error {
	bin := &Bin{
		Job:     jn.jobID,
		Edge:    es.idx,
		Flowlet: es.edge.To,
		From:    jn.node,
		KVs:     kvs,
		Bytes:   bytes,
	}
	jn.mBinsSent.Inc()
	if dest == jn.node {
		jn.onBin(bin, true)
		return nil
	}
	if blocking {
		if !es.cred.waitBelow() {
			return ErrJobAborted
		}
	}
	if jn.failed.Load() {
		return ErrJobAborted
	}
	es.cred.take()
	jn.mShuffleBytes.Add(bytes)
	jn.mShuffleKVs.Add(int64(len(kvs)))
	return jn.rt.send(transport.Message{
		From:    transport.NodeID(jn.node),
		To:      transport.NodeID(dest),
		Kind:    msgBin,
		Payload: bin,
		Size:    bytes,
	})
}

// fail aborts the job on this node and notifies every other node.
func (jn *jobNode) fail(err error) {
	jn.errOnce.Do(func() {
		jn.err = err
		jn.failed.Store(true)
		for _, es := range jn.edges {
			es.cred.abort()
		}
		fm := failMsg{Job: jn.jobID, Err: err.Error(), Canceled: errors.Is(err, ErrJobCanceled)}
		var fe *faults.Error
		if errors.As(err, &fe) {
			fm.FaultOp, fm.FaultSite = fe.Op, fe.Site
		}
		_ = jn.rt.send(transport.Message{
			From:    transport.NodeID(jn.node),
			To:      transport.Broadcast,
			Kind:    msgFail,
			Payload: fm,
			Size:    int64(len(err.Error())),
		})
		jn.signalDone()
	})
}

// remoteError is a failure relayed from another node: the message is the
// remote error's full text, the cause (when the failure was an injected
// fault) keeps errors.Is matching across the fabric.
type remoteError struct {
	msg   string
	cause error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.cause }

func (jn *jobNode) onRemoteFail(fm failMsg) {
	jn.errOnce.Do(func() {
		switch {
		case fm.FaultOp != "":
			jn.err = &remoteError{msg: fm.Err, cause: &faults.Error{Op: fm.FaultOp, Site: fm.FaultSite}}
		case fm.Canceled:
			// A relayed cancellation keeps its typed cause, the same
			// contract FaultOp/FaultSite give injected faults: errors.Is
			// still matches ErrJobCanceled after the abort crossed nodes.
			jn.err = &remoteError{msg: fm.Err, cause: ErrJobCanceled}
		default:
			jn.err = errors.New(fm.Err)
		}
		jn.failed.Store(true)
		for _, es := range jn.edges {
			es.cred.abort()
		}
		jn.signalDone()
	})
}

func (jn *jobNode) signalDone() {
	jn.doneOnce.Do(func() { close(jn.doneCh) })
}

// Error returns the job error recorded on this node, if any.
func (jn *jobNode) Error() error {
	return jn.err
}

// totalStalls sums flow-control stalls across this node's edges.
func (jn *jobNode) totalStalls() int64 {
	var n int64
	for _, es := range jn.edges {
		n += es.cred.Stalls()
	}
	return n
}

// flowCtx implements Context for user code running a flowlet on a node.
type flowCtx struct {
	jn *jobNode
	fs *flowletState
}

func (c *flowCtx) Node() int     { return c.jn.node }
func (c *flowCtx) NumNodes() int { return c.jn.nodes }
func (c *flowCtx) Service(name string) any {
	return c.jn.rt.services[name]
}

// blocking reports whether emits from this flowlet may block on flow
// control: only loaders block (their input is unbounded); other flowlets
// rely on the scheduler gate and may overshoot within one task.
func (c *flowCtx) blocking() bool { return c.fs.spec.Kind == KindLoader }

// emitOn routes one pair down one edge. size is the caller-computed
// kv.Size(): a pair fanned out to several edges or broadcast to every
// node is sized exactly once instead of once per destination.
func (c *flowCtx) emitOn(es *edgeState, kv KV, size int64) error {
	if c.jn.failed.Load() {
		return ErrJobAborted
	}
	switch es.edge.Routing {
	case RouteLocal:
		return c.emitTo(es, c.jn.node, kv, size)
	case RouteBroadcast:
		for n := 0; n < c.jn.nodes; n++ {
			if err := c.emitTo(es, n, kv, size); err != nil {
				return err
			}
		}
		return nil
	default:
		p := es.edge.Partitioner
		if p == nil {
			p = HashPartition
		}
		return c.emitTo(es, p(kv.Key, c.jn.nodes), kv, size)
	}
}

func (c *flowCtx) emitTo(es *edgeState, dest int, kv KV, size int64) error {
	if dest < 0 || dest >= c.jn.nodes {
		return fmt.Errorf("core: emit to invalid node %d", dest)
	}
	sealed, bytes := es.buf.add(dest, kv, size)
	if sealed != nil {
		return c.jn.sendBin(es, dest, sealed, bytes, c.blocking())
	}
	return nil
}

// Emit implements Context.
func (c *flowCtx) Emit(kv KV) error {
	edges := c.jn.outBy[c.fs.spec.ID]
	if len(edges) == 0 {
		return fmt.Errorf("core: flowlet %q has no downstream edges", c.fs.spec.Name)
	}
	size := kv.Size()
	for _, es := range edges {
		if err := c.emitOn(es, kv, size); err != nil {
			return err
		}
	}
	return nil
}

func (c *flowCtx) findEdge(flowlet string) (*edgeState, error) {
	id := c.jn.graph.FlowletID(flowlet)
	if id < 0 {
		return nil, fmt.Errorf("core: unknown flowlet %q", flowlet)
	}
	for _, es := range c.jn.outBy[c.fs.spec.ID] {
		if es.edge.To == id {
			return es, nil
		}
	}
	return nil, fmt.Errorf("core: no edge %q -> %q", c.fs.spec.Name, flowlet)
}

// EmitTo implements Context.
func (c *flowCtx) EmitTo(flowlet string, kv KV) error {
	es, err := c.findEdge(flowlet)
	if err != nil {
		return err
	}
	return c.emitOn(es, kv, kv.Size())
}

// EmitToNode implements Context.
func (c *flowCtx) EmitToNode(flowlet string, node int, kv KV) error {
	es, err := c.findEdge(flowlet)
	if err != nil {
		return err
	}
	if c.jn.failed.Load() {
		return ErrJobAborted
	}
	return c.emitTo(es, node, kv, kv.Size())
}

// EmitBroadcast implements Context.
func (c *flowCtx) EmitBroadcast(flowlet string, kv KV) error {
	es, err := c.findEdge(flowlet)
	if err != nil {
		return err
	}
	if c.jn.failed.Load() {
		return ErrJobAborted
	}
	size := kv.Size()
	for n := 0; n < c.jn.nodes; n++ {
		if err := c.emitTo(es, n, kv, size); err != nil {
			return err
		}
	}
	return nil
}

var _ Context = (*flowCtx)(nil)
