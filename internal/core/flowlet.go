package core

import (
	"fmt"
)

// Kind enumerates the four flowlet kinds of §2 plus the internal sink kind
// used for job outputs.
type Kind int

const (
	// KindLoader flowlets pull data from sources; only loaders are ready
	// when a job starts.
	KindLoader Kind = iota
	// KindMap flowlets transform pairs one at a time and may connect to
	// any other flowlet kind.
	KindMap
	// KindReduce flowlets collect all pairs grouped by key and process
	// group by group after every upstream flowlet completes (an internal
	// barrier, like the MapReduce reducer).
	KindReduce
	// KindPartialReduce flowlets fold pairs into per-key state as soon as
	// they arrive (requires a commutative, associative operation) and emit
	// only when upstreams complete.
	KindPartialReduce
	// KindSink terminates the graph, writing pairs to a job output.
	KindSink
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLoader:
		return "loader"
	case KindMap:
		return "map"
	case KindReduce:
		return "reduce"
	case KindPartialReduce:
		return "partial-reduce"
	case KindSink:
		return "sink"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Split is one unit of loader input, planned on the driver and executed on
// one node. Payload is loader-specific (e.g. an hdfs.Split, a file name, a
// generator seed range).
type Split struct {
	Payload any
	// PreferredNode is the node that holds the data locally, or -1.
	PreferredNode int
	// Size is the approximate input bytes, used for balancing.
	Size int64
}

// Context is handed to user flowlet code. It routes emitted pairs to
// downstream flowlets and exposes the node environment.
type Context interface {
	// Emit sends kv to every downstream flowlet along each edge's routing
	// (shuffle by default).
	Emit(kv KV) error
	// EmitTo sends kv only to the named downstream flowlet.
	EmitTo(flowlet string, kv KV) error
	// EmitToNode sends kv to the named downstream flowlet on a specific
	// node, bypassing the partitioner (used for locality routing, §3.3).
	EmitToNode(flowlet string, node int, kv KV) error
	// EmitBroadcast sends kv to the named downstream flowlet on every node.
	EmitBroadcast(flowlet string, kv KV) error
	// Node returns this node's id in [0, NumNodes).
	Node() int
	// NumNodes returns the cluster size.
	NumNodes() int
	// Service returns a named node-local service installed by the cluster
	// (e.g. "hdfs", "disk", "kvstore"), or nil.
	Service(name string) any
}

// Loader pulls input data. Plan runs once on the driver; Load runs once per
// split on the node the split was assigned to.
type Loader interface {
	Plan(env *Env) ([]Split, error)
	Load(split Split, ctx Context) error
}

// Mapper transforms one pair at a time. Map may be called concurrently on
// the same node; implementations must be safe for concurrent use or
// stateless.
type Mapper interface {
	Map(kv KV, ctx Context) error
}

// Reducer processes one fully-grouped key. Values appear in arrival order.
type Reducer interface {
	Reduce(key string, values []any, ctx Context) error
}

// PartialReducer folds arriving values into per-key state immediately
// (§2: "processes the available data immediately instead of waiting for
// the whole data collection"). Update must not emit; all output happens in
// Finish after upstreams complete. Init creates the state for a key's
// first value.
type PartialReducer interface {
	// Update folds value into state for key and returns the new state.
	Update(key string, state any, value any) (any, error)
	// Finish is called once per key with the final state and may emit.
	Finish(key string, state any, ctx Context) error
}

// UpdateCoster is an optional PartialReducer extension: UpdateWeight
// reports how many shared-variable writes one Update(value) performs
// (e.g. the element count of a summed vector). The runtime multiplies the
// modeled contention cost (Config.ContentionCost) by this weight; without
// the interface every update counts as one write.
type UpdateCoster interface {
	UpdateWeight(value any) int
}

// Env is the driver-side environment handed to Loader.Plan.
type Env struct {
	NumNodes int
	Services map[string]any
}

// Service returns a named cluster service or nil.
func (e *Env) Service(name string) any { return e.Services[name] }

// Routing selects how an edge moves pairs between nodes.
type Routing int

const (
	// RouteShuffle partitions by key hash across all nodes (default).
	RouteShuffle Routing = iota
	// RouteLocal keeps pairs on the producing node (locality, §3.3).
	RouteLocal
	// RouteBroadcast copies every pair to all nodes.
	RouteBroadcast
)

// Edge is a connection between two flowlets in the graph.
type Edge struct {
	From, To    int // flowlet ids
	Routing     Routing
	Partitioner Partitioner
}

// FlowletSpec describes one flowlet in a job graph.
type FlowletSpec struct {
	ID   int
	Name string
	Kind Kind
	// Exactly one of the following is set, matching Kind.
	Loader  Loader
	Mapper  Mapper
	Reducer Reducer
	Partial PartialReducer
	Sink    Sink
	// SerializeUpdates forces partial-reduce updates on this flowlet to be
	// applied by a single goroutine at a time (the serialization fix the
	// paper proposes for hot shared variables, §5.2). Off by default;
	// striped locking is used instead.
	SerializeUpdates bool
}

// Graph is a DAG of flowlets built by the user and submitted as one job.
type Graph struct {
	Name     string
	flowlets []*FlowletSpec
	edges    []Edge
	byName   map[string]int
}

// NewGraph creates an empty job graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]int)}
}

func (g *Graph) add(name string, spec *FlowletSpec) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("core: flowlet name must not be empty")
	}
	if _, dup := g.byName[name]; dup {
		return 0, fmt.Errorf("core: duplicate flowlet name %q", name)
	}
	spec.ID = len(g.flowlets)
	spec.Name = name
	g.flowlets = append(g.flowlets, spec)
	g.byName[name] = spec.ID
	return spec.ID, nil
}

// AddLoader adds a loader flowlet and returns its id.
func (g *Graph) AddLoader(name string, l Loader) (int, error) {
	return g.add(name, &FlowletSpec{Kind: KindLoader, Loader: l})
}

// AddMap adds a map flowlet.
func (g *Graph) AddMap(name string, m Mapper) (int, error) {
	return g.add(name, &FlowletSpec{Kind: KindMap, Mapper: m})
}

// AddReduce adds a reduce flowlet.
func (g *Graph) AddReduce(name string, r Reducer) (int, error) {
	return g.add(name, &FlowletSpec{Kind: KindReduce, Reducer: r})
}

// AddPartialReduce adds a partial-reduce flowlet.
func (g *Graph) AddPartialReduce(name string, p PartialReducer) (int, error) {
	return g.add(name, &FlowletSpec{Kind: KindPartialReduce, Partial: p})
}

// AddSink adds a sink flowlet. Edges into sinks default to local routing:
// each node writes its own portion of the output.
func (g *Graph) AddSink(name string, s Sink) (int, error) {
	return g.add(name, &FlowletSpec{Kind: KindSink, Sink: s})
}

// EdgeOption configures a connection.
type EdgeOption func(*Edge)

// WithRouting overrides the edge routing.
func WithRouting(r Routing) EdgeOption { return func(e *Edge) { e.Routing = r } }

// WithPartitioner overrides the edge partitioner (shuffle routing only).
func WithPartitioner(p Partitioner) EdgeOption { return func(e *Edge) { e.Partitioner = p } }

// Connect adds an edge from flowlet id `from` to flowlet id `to`.
func (g *Graph) Connect(from, to int, opts ...EdgeOption) error {
	if from < 0 || from >= len(g.flowlets) || to < 0 || to >= len(g.flowlets) {
		return fmt.Errorf("core: connect: invalid flowlet id (%d -> %d)", from, to)
	}
	e := Edge{From: from, To: to, Routing: RouteShuffle, Partitioner: HashPartition}
	if g.flowlets[to].Kind == KindSink {
		e.Routing = RouteLocal
	}
	if g.flowlets[to].Kind == KindLoader {
		return fmt.Errorf("core: connect: loader %q cannot have upstream flowlets", g.flowlets[to].Name)
	}
	for _, opt := range opts {
		opt(&e)
	}
	g.edges = append(g.edges, e)
	return nil
}

// Flowlets returns the specs in id order.
func (g *Graph) Flowlets() []*FlowletSpec { return g.flowlets }

// Edges returns all edges.
func (g *Graph) Edges() []Edge { return g.edges }

// FlowletID resolves a flowlet name, returning -1 when unknown.
func (g *Graph) FlowletID(name string) int {
	id, ok := g.byName[name]
	if !ok {
		return -1
	}
	return id
}

// Upstream returns the ids of flowlets with an edge into id.
func (g *Graph) Upstream(id int) []int {
	var ups []int
	for _, e := range g.edges {
		if e.To == id {
			ups = append(ups, e.From)
		}
	}
	return ups
}

// Downstream returns the edges leaving id.
func (g *Graph) Downstream(id int) []Edge {
	var outs []Edge
	for _, e := range g.edges {
		if e.From == id {
			outs = append(outs, e)
		}
	}
	return outs
}

// Validate checks the graph is a well-formed DAG: non-empty, at least one
// loader, acyclic, every flowlet has the member matching its kind, every
// non-loader is reachable, and sinks have no downstream edges.
func (g *Graph) Validate() error {
	if len(g.flowlets) == 0 {
		return fmt.Errorf("core: graph %q has no flowlets", g.Name)
	}
	hasLoader := false
	for _, f := range g.flowlets {
		switch f.Kind {
		case KindLoader:
			hasLoader = true
			if f.Loader == nil {
				return fmt.Errorf("core: loader %q has no Loader", f.Name)
			}
		case KindMap:
			if f.Mapper == nil {
				return fmt.Errorf("core: map %q has no Mapper", f.Name)
			}
		case KindReduce:
			if f.Reducer == nil {
				return fmt.Errorf("core: reduce %q has no Reducer", f.Name)
			}
		case KindPartialReduce:
			if f.Partial == nil {
				return fmt.Errorf("core: partial-reduce %q has no PartialReducer", f.Name)
			}
		case KindSink:
			if f.Sink == nil {
				return fmt.Errorf("core: sink %q has no Sink", f.Name)
			}
			if len(g.Downstream(f.ID)) > 0 {
				return fmt.Errorf("core: sink %q has downstream edges", f.Name)
			}
		default:
			return fmt.Errorf("core: flowlet %q has unknown kind %v", f.Name, f.Kind)
		}
		if f.Kind != KindLoader && len(g.Upstream(f.ID)) == 0 {
			return fmt.Errorf("core: flowlet %q (%v) has no upstream edges", f.Name, f.Kind)
		}
		if f.Kind != KindSink && len(g.Downstream(f.ID)) == 0 {
			return fmt.Errorf("core: flowlet %q (%v) has no downstream edges; connect it to a sink", f.Name, f.Kind)
		}
	}
	if !hasLoader {
		return fmt.Errorf("core: graph %q has no loader", g.Name)
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological order of flowlet ids, or an error if the
// graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.flowlets)
	indeg := make([]int, n)
	for _, e := range g.edges {
		indeg[e.To]++
	}
	var order []int
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, e := range g.edges {
			if e.From == id {
				indeg[e.To]--
				if indeg[e.To] == 0 {
					queue = append(queue, e.To)
				}
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("core: graph %q contains a cycle", g.Name)
	}
	return order, nil
}
