package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

func wcChunks() [][]string {
	chunks := make([][]string, 4)
	for i := range chunks {
		for j := 0; j < 20; j++ {
			chunks[i] = append(chunks[i], fmt.Sprintf("w%d w%d w%d", j%5, (i+j)%7, j%3))
		}
	}
	return chunks
}

// TestStagedJobMatchesRun: NewJob/Start/Wait is the same execution as the
// one-shot Run — identical outputs and identical per-job counters.
func TestStagedJobMatchesRun(t *testing.T) {
	chunks := wcChunks()

	nodes, cleanup := newTestCluster(t, 3, Config{Workers: 2})
	g1, sink1 := buildWordCount(t, true, chunks)
	res1, err := Run(g1, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanup()

	nodes2, cleanup2 := newTestCluster(t, 3, Config{Workers: 2})
	defer cleanup2()
	g2, sink2 := buildWordCount(t, true, chunks)
	j, err := NewJob(g2, nodes2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() == 0 {
		t.Error("job has no id before Start")
	}
	j.Start()
	j.Start() // idempotent
	res2, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(res1.Metrics.Counters, res2.Metrics.Counters) {
		t.Errorf("staged counters differ from Run:\n run:    %v\n staged: %v",
			res1.Metrics.Counters, res2.Metrics.Counters)
	}
	count := func(s *CollectSink) map[string]int64 {
		m := map[string]int64{}
		for _, kv := range s.Pairs() {
			m[kv.Key] += kv.Value.(int64)
		}
		return m
	}
	if !reflect.DeepEqual(count(sink1), count(sink2)) {
		t.Error("staged output differs from Run")
	}
}

// TestJobAbortTyped: Abort surfaces through Wait as the given error, and a
// wrapped ErrJobCanceled matches with errors.Is.
func TestJobAbortTyped(t *testing.T) {
	nodes, cleanup := newTestCluster(t, 2, Config{Workers: 1})
	defer cleanup()
	g, _ := buildWordCount(t, true, wcChunks())
	j, err := NewJob(g, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	j.Abort(fmt.Errorf("caller stop: %w", ErrJobCanceled))
	done := make(chan error, 1)
	go func() { _, werr := j.Wait(); done <- werr }()
	select {
	case werr := <-done:
		if !errors.Is(werr, ErrJobCanceled) {
			t.Fatalf("Wait after Abort = %v, want ErrJobCanceled", werr)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("aborted job did not settle")
	}
}

// TestNewJobTypedErrors: planning failures come back as the exported
// sentinels so callers can branch with errors.Is.
func TestNewJobTypedErrors(t *testing.T) {
	nodes, cleanup := newTestCluster(t, 1, Config{Workers: 1})
	defer cleanup()
	g, _ := buildWordCount(t, true, wcChunks())
	if _, err := NewJob(g, nil, nil); !errors.Is(err, ErrNoNodes) {
		t.Errorf("no nodes: %v, want ErrNoNodes", err)
	}
	if _, err := NewJob(NewGraph("empty"), nodes, nil); !errors.Is(err, ErrGraphInvalid) {
		t.Errorf("empty graph: %v, want ErrGraphInvalid", err)
	}
}
