package core

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestCollectSink(t *testing.T) {
	s := NewCollectSink()
	var wg sync.WaitGroup
	for n := 0; n < 4; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s.Write(n, KV{Key: fmt.Sprintf("k%d", i), Value: int64(n)})
			}
		}(n)
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Key > sorted[i].Key {
			t.Fatal("Sorted not sorted")
		}
	}
	m := s.Map()
	if len(m) != 25 {
		t.Fatalf("Map has %d keys", len(m))
	}
	if err := s.Close(0); err != nil {
		t.Fatal(err)
	}
}

func TestCountSink(t *testing.T) {
	s := NewCountSink()
	for i := 0; i < 10; i++ {
		s.Write(0, KV{Key: "k", Value: int64(i)})
	}
	if s.Count() != 10 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Bytes() <= 0 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}

type closableBuffer struct {
	bytes.Buffer
	closed bool
}

func (b *closableBuffer) Close() error {
	b.closed = true
	return nil
}

func TestFileSink(t *testing.T) {
	bufs := map[int]*closableBuffer{}
	s := NewFileSink(func(node int) (io.WriteCloser, error) {
		b := &closableBuffer{}
		bufs[node] = b
		return b, nil
	}, nil)
	s.Write(0, KV{Key: "a", Value: int64(1)})
	s.Write(1, KV{Key: "b", Value: "x"})
	s.Write(0, KV{Key: "c", Value: int64(2)})
	if err := s.Close(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(1); err != nil {
		t.Fatal(err)
	}
	if got := bufs[0].String(); got != "a\t1\nc\t2\n" {
		t.Fatalf("node 0 file = %q", got)
	}
	if got := bufs[1].String(); got != "b\tx\n" {
		t.Fatalf("node 1 file = %q", got)
	}
	if !bufs[0].closed || !bufs[1].closed {
		t.Fatal("writers not closed")
	}
	// Closing a node that never wrote is a no-op.
	if err := s.Close(9); err != nil {
		t.Fatal(err)
	}
}

func TestFileSinkCustomFormat(t *testing.T) {
	var buf closableBuffer
	s := NewFileSink(
		func(node int) (io.WriteCloser, error) { return &buf, nil },
		func(kv KV) string { return fmt.Sprintf("%s=%v;", kv.Key, kv.Value) },
	)
	s.Write(0, KV{Key: "x", Value: int64(7)})
	s.Close(0)
	if buf.String() != "x=7;" {
		t.Fatalf("formatted = %q", buf.String())
	}
}

func TestFileSinkOpenError(t *testing.T) {
	s := NewFileSink(func(node int) (io.WriteCloser, error) {
		return nil, fmt.Errorf("disk gone")
	}, nil)
	if err := s.Write(0, KV{Key: "a"}); err == nil {
		t.Fatal("write with failing opener succeeded")
	}
}

func TestFuncSink(t *testing.T) {
	var got []KV
	s := FuncSink(func(node int, kv KV) error {
		got = append(got, kv)
		return nil
	})
	s.Write(0, KV{Key: "k"})
	if err := s.Close(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d", len(got))
	}
}
