package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Sink receives a job's output pairs. Write is called concurrently from
// different nodes but serially per node; Close(node) is called once when
// the sink's input completes on that node.
type Sink interface {
	Write(node int, kv KV) error
	Close(node int) error
}

// CollectSink gathers all output pairs in memory; used by tests, examples
// and result verification.
type CollectSink struct {
	mu  sync.Mutex
	kvs []KV
}

// NewCollectSink returns an empty collector.
func NewCollectSink() *CollectSink { return &CollectSink{} }

// Write implements Sink.
func (s *CollectSink) Write(node int, kv KV) error {
	s.mu.Lock()
	s.kvs = append(s.kvs, kv)
	s.mu.Unlock()
	return nil
}

// Close implements Sink.
func (s *CollectSink) Close(node int) error { return nil }

// Pairs returns a copy of all collected pairs.
func (s *CollectSink) Pairs() []KV {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]KV(nil), s.kvs...)
}

// Sorted returns all collected pairs sorted by key (ties broken by the
// formatted value) for deterministic comparison in tests.
func (s *CollectSink) Sorted() []KV {
	kvs := s.Pairs()
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Key != kvs[j].Key {
			return kvs[i].Key < kvs[j].Key
		}
		return fmt.Sprint(kvs[i].Value) < fmt.Sprint(kvs[j].Value)
	})
	return kvs
}

// Len returns the number of collected pairs.
func (s *CollectSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.kvs)
}

// Map returns the collected pairs as a map; duplicate keys keep the last
// written value.
func (s *CollectSink) Map() map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]any, len(s.kvs))
	for _, kv := range s.kvs {
		m[kv.Key] = kv.Value
	}
	return m
}

// CountSink counts output pairs without retaining them; used for large
// benchmark outputs.
type CountSink struct {
	mu    sync.Mutex
	count int64
	bytes int64
}

// NewCountSink returns a zeroed counting sink.
func NewCountSink() *CountSink { return &CountSink{} }

// Write implements Sink.
func (s *CountSink) Write(node int, kv KV) error {
	s.mu.Lock()
	s.count++
	s.bytes += kv.Size()
	s.mu.Unlock()
	return nil
}

// Close implements Sink.
func (s *CountSink) Close(node int) error { return nil }

// Count returns the number of pairs written.
func (s *CountSink) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Bytes returns the approximate bytes written.
func (s *CountSink) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// FileSink writes formatted pairs to one writer per node (e.g. part files
// on each node's local disk — the paper's "output can happen not only in
// reduce but also in map", §3.3).
type FileSink struct {
	open   func(node int) (io.WriteCloser, error)
	format func(kv KV) string
	mu     sync.Mutex
	files  map[int]io.WriteCloser
}

// NewFileSink creates a sink whose per-node writers come from open and
// whose record format is produced by format (default "key\tvalue\n").
func NewFileSink(open func(node int) (io.WriteCloser, error), format func(kv KV) string) *FileSink {
	if format == nil {
		format = func(kv KV) string { return fmt.Sprintf("%s\t%v\n", kv.Key, kv.Value) }
	}
	return &FileSink{open: open, format: format, files: make(map[int]io.WriteCloser)}
}

func (s *FileSink) writer(node int) (io.WriteCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok := s.files[node]; ok {
		return w, nil
	}
	w, err := s.open(node)
	if err != nil {
		return nil, err
	}
	s.files[node] = w
	return w, nil
}

// Write implements Sink.
func (s *FileSink) Write(node int, kv KV) error {
	w, err := s.writer(node)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, s.format(kv))
	return err
}

// Close implements Sink.
func (s *FileSink) Close(node int) error {
	s.mu.Lock()
	w, ok := s.files[node]
	delete(s.files, node)
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return w.Close()
}

// FuncSink adapts a function to the Sink interface; Close is a no-op.
type FuncSink func(node int, kv KV) error

// Write implements Sink.
func (f FuncSink) Write(node int, kv KV) error { return f(node, kv) }

// Close implements Sink.
func (f FuncSink) Close(node int) error { return nil }

var (
	_ Sink = (*CollectSink)(nil)
	_ Sink = (*CountSink)(nil)
	_ Sink = (*FileSink)(nil)
	_ Sink = (FuncSink)(nil)
)
