package core

import (
	"sync"
)

// Bin is the minimum unit of data that can enable a flowlet (§2): a batch
// of key-value pairs destined for one flowlet on one node. Bins are what
// the shuffle moves and what the bin queue stores.
type Bin struct {
	Job     int64
	Edge    int // index into the graph's edge list
	Flowlet int // destination flowlet id (redundant with Edge, kept for clarity)
	From    int // producing node
	KVs     []KV
	Bytes   int64
}

// credit implements the flow-control window for one edge on one producing
// node: it counts bins sent to remote nodes but not yet processed there.
//
// Following §2 ("the flowlet stops the current execution immediately and
// will be scheduled in a later time"), a full window does not block
// ordinary flowlet tasks; instead the scheduler stops dispatching new
// input bins to the producing flowlet until the window drains (see
// jobNode.onBin / drainPending). Loader tasks, whose input is unbounded,
// do block via waitBelow — they are the paper's "decrease the number of
// concurrent loader tasks" valve and are capped by the loader semaphore so
// they can never occupy the whole worker pool.
type credit struct {
	mu          sync.Mutex
	cond        *sync.Cond
	outstanding int
	window      int // <= 0 disables flow control
	stalls      int64
	aborted     bool
}

func newCredit(window int) *credit {
	c := &credit{window: window}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// take records one outstanding bin without blocking (window may overshoot
// by the emissions of tasks already running).
func (c *credit) take() {
	if c.window <= 0 {
		return
	}
	c.mu.Lock()
	c.outstanding++
	c.mu.Unlock()
}

// full reports whether the window is exhausted.
func (c *credit) full() bool {
	if c.window <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outstanding >= c.window
}

// waitBelow blocks until the window has room (or flow control is off),
// returning false if the job aborted while waiting.
func (c *credit) waitBelow() bool {
	if c.window <= 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	stalled := false
	for c.outstanding >= c.window && !c.aborted {
		if !stalled {
			stalled = true
			c.stalls++
		}
		c.cond.Wait()
	}
	return !c.aborted
}

// release frees one slot (called when the receiver acks the bin). Each
// ack frees exactly one window slot, so waking a single waiter suffices;
// Broadcast here caused a thundering herd of loaders that immediately
// re-slept. abort still Broadcasts because it releases every waiter.
func (c *credit) release() {
	if c.window <= 0 {
		return
	}
	c.mu.Lock()
	if c.outstanding > 0 {
		c.outstanding--
	}
	c.cond.Signal()
	c.mu.Unlock()
}

// abort wakes all waiters and makes future waits fail.
func (c *credit) abort() {
	c.mu.Lock()
	c.aborted = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Stalls returns how many times a producer stalled on this edge.
func (c *credit) Stalls() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stalls
}

// binBuffer accumulates output pairs for one edge, bucketed per
// destination node, sealing a bin when a slot reaches the configured
// size.
//
// Locking is sharded per destination slot: concurrent workers emitting on
// the same edge only contend when they target the same destination node,
// never on a whole-edge mutex (a single edge-wide lock serialized every
// mapper/loader on a node exactly where the engine is supposed to run
// them asynchronously). Slots are padded to separate cache lines so
// neighbouring destinations do not false-share.
type binBuffer struct {
	slots   []binSlot // one per destination node
	maxKVs  int
	maxByte int64
}

type binSlot struct {
	mu    sync.Mutex
	kvs   []KV
	bytes int64
	_     [64 - 8 - 24 - 8]byte // pad to one 64-byte cache line
}

// drained is one sealed batch returned by drain.
type drained struct {
	Dest  int
	KVs   []KV
	Bytes int64
}

func newBinBuffer(numNodes, maxKVs int, maxBytes int64) *binBuffer {
	if maxKVs <= 0 {
		maxKVs = 1024
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 10
	}
	return &binBuffer{
		slots:   make([]binSlot, numNodes),
		maxKVs:  maxKVs,
		maxByte: maxBytes,
	}
}

// add appends kv to the destination slot and returns a sealed batch when
// the slot fills, or nil. size is the caller-computed kv.Size(): emits
// that fan a pair out to several edges or destinations size it once.
func (b *binBuffer) add(dest int, kv KV, size int64) (sealed []KV, sealedBytes int64) {
	s := &b.slots[dest]
	s.mu.Lock()
	s.kvs = append(s.kvs, kv)
	s.bytes += size
	if len(s.kvs) >= b.maxKVs || s.bytes >= b.maxByte {
		sealed, sealedBytes = s.kvs, s.bytes
		s.kvs, s.bytes = nil, 0
	}
	s.mu.Unlock()
	return sealed, sealedBytes
}

// drain seals and returns every non-empty slot; called when the producing
// flowlet completes on this node. Slots are locked one at a time, so a
// drain does not stall emitters targeting other destinations.
func (b *binBuffer) drain() []drained {
	var out []drained
	for dest := range b.slots {
		s := &b.slots[dest]
		s.mu.Lock()
		if len(s.kvs) > 0 {
			out = append(out, drained{dest, s.kvs, s.bytes})
			s.kvs, s.bytes = nil, 0
		}
		s.mu.Unlock()
	}
	return out
}
