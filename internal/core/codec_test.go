package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func roundTripValue(t *testing.T, v any) any {
	t.Helper()
	buf, err := EncodeValue(nil, v)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	got, n, err := DecodeValue(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	if n != len(buf) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
	}
	return got
}

func TestCodecScalars(t *testing.T) {
	for _, v := range []any{
		nil, true, false,
		int64(0), int64(-5), int64(math.MaxInt64),
		float64(3.25), math.Inf(1), float64(-0.0),
		"", "hello", "unicode ✓ ☃",
		[]byte{}, []byte{0, 1, 2, 255},
		[]float64{}, []float64{1.5, -2.5},
		[]int64{7, -7},
		[]string{}, []string{"a", "", "ccc"},
		[]int{1, -2, 3},
		map[string]int64{}, map[string]int64{"a": 1, "bb": -2},
	} {
		got := roundTripValue(t, v)
		if !reflect.DeepEqual(got, normalize(v)) {
			t.Errorf("round trip %#v -> %#v", v, got)
		}
	}
}

// normalize maps encoder input types onto decoder output types (int ->
// int64 is the only lossy-but-defined conversion).
func normalize(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case []byte:
		if len(x) == 0 {
			return []byte(nil) // decoder yields a nil slice for empty bytes
		}
	case []float64:
		if len(x) == 0 {
			return []float64{}
		}
	case []int64:
		if len(x) == 0 {
			return []int64{}
		}
	case []string:
		if len(x) == 0 {
			return []string{}
		}
	case map[string]int64:
		if len(x) == 0 {
			return map[string]int64{}
		}
	}
	return v
}

func TestCodecIntBecomesInt64(t *testing.T) {
	if got := roundTripValue(t, int(42)); got.(int64) != 42 {
		t.Fatalf("int round trip = %v", got)
	}
}

type customValue struct {
	Name  string
	Count int64
}

func TestCodecGobFallback(t *testing.T) {
	RegisterValue(customValue{})
	v := customValue{Name: "x", Count: 9}
	got := roundTripValue(t, v)
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("gob round trip = %#v", got)
	}
}

// TestCodecConcurrentGob exercises the pooled codec sessions from many
// goroutines (the gob fallback used to funnel through one process-global
// mutex; pooled sessions must stay correct without it). Run under -race.
func TestCodecConcurrentGob(t *testing.T) {
	RegisterValue(customValue{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				want := customValue{Name: fmt.Sprintf("w%d-%d", w, i), Count: int64(i)}
				buf, err := EncodeValue(nil, want)
				if err != nil {
					t.Errorf("encode: %v", err)
					return
				}
				got, n, err := DecodeValue(buf)
				if err != nil || n != len(buf) {
					t.Errorf("decode: %v (n=%d of %d)", err, n, len(buf))
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("round trip %#v -> %#v", want, got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCodecKVRoundTrip(t *testing.T) {
	kv := KV{Key: "some/key", Value: []float64{1, 2, 3}}
	buf, err := EncodeKV(nil, kv)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeKV(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v (n=%d)", err, n)
	}
	if got.Key != kv.Key || !reflect.DeepEqual(got.Value, kv.Value) {
		t.Fatalf("round trip %v -> %v", kv, got)
	}
}

func TestCodecTruncatedInput(t *testing.T) {
	buf, _ := EncodeValue(nil, "a reasonably long string value")
	for cut := 1; cut < len(buf); cut += 3 {
		if _, _, err := DecodeValue(buf[:cut]); err == nil {
			t.Fatalf("decoding %d/%d bytes succeeded", cut, len(buf))
		}
	}
	if _, _, err := DecodeValue(nil); err == nil {
		t.Fatal("decoding empty buffer succeeded")
	}
}

// Property: KV pairs with string keys and mixed scalar values always
// round-trip exactly, and concatenated encodings decode in sequence.
func TestCodecStreamProperty(t *testing.T) {
	f := func(keys []string, ints []int64, strs []string) bool {
		var kvs []KV
		for i, k := range keys {
			var v any
			switch i % 3 {
			case 0:
				if len(ints) > 0 {
					v = ints[i%len(ints)]
				} else {
					v = int64(i)
				}
			case 1:
				if len(strs) > 0 {
					v = strs[i%len(strs)]
				} else {
					v = "s"
				}
			default:
				v = float64(i) * 1.5
			}
			kvs = append(kvs, KV{Key: k, Value: v})
		}
		var buf []byte
		var err error
		for _, kv := range kvs {
			buf, err = EncodeKV(buf, kv)
			if err != nil {
				return false
			}
		}
		p := 0
		for _, want := range kvs {
			got, n, err := DecodeKV(buf[p:])
			if err != nil {
				return false
			}
			p += n
			if got.Key != want.Key || !reflect.DeepEqual(got.Value, want.Value) {
				return false
			}
		}
		return p == len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestValueSize(t *testing.T) {
	cases := []struct {
		v   any
		min int64
	}{
		{nil, 0}, {int64(1), 8}, {"hello", 5}, {[]byte{1, 2, 3}, 3},
		{[]float64{1, 2}, 16}, {[]string{"ab", "cd"}, 4},
	}
	for _, c := range cases {
		if got := ValueSize(c.v); got < c.min {
			t.Errorf("ValueSize(%#v) = %d, want >= %d", c.v, got, c.min)
		}
	}
	// Sizer is honored.
	if got := ValueSize(sizedValue(123)); got != 123 {
		t.Errorf("Sizer value size = %d", got)
	}
	// Unknown types get a flat conservative charge.
	if got := ValueSize(struct{ X int }{}); got <= 0 {
		t.Errorf("unknown type size = %d", got)
	}
}

type sizedValue int64

func (s sizedValue) SizeBytes() int64 { return int64(s) }

func TestHashPartitionProperties(t *testing.T) {
	f := func(key string, n uint8) bool {
		nodes := int(n)%16 + 1
		p := HashPartition(key, nodes)
		if p < 0 || p >= nodes {
			return false
		}
		return p == HashPartition(key, nodes) // pure function of key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

func TestHashPartitionCoversAllNodes(t *testing.T) {
	const nodes = 8
	hit := make([]bool, nodes)
	for i := 0; i < 10000; i++ {
		hit[HashPartition(string(rune('a'+i%26))+string(rune(i)), nodes)] = true
	}
	for n, ok := range hit {
		if !ok {
			t.Errorf("partition %d never hit", n)
		}
	}
}
