package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
)

// newTestCluster builds n node runtimes over an in-memory network with no
// modeled costs.
func newTestCluster(t testing.TB, n int, cfg Config) ([]*NodeRuntime, func()) {
	t.Helper()
	cfg.NumNodes = n
	net := NewTestNetwork()
	nodes := make([]*NodeRuntime, n)
	for i := 0; i < n; i++ {
		disk := storage.NewMemDisk(0)
		rt, err := NewNodeRuntime(i, cfg, net, disk, nil, metrics.NewRegistry())
		if err != nil {
			t.Fatalf("NewNodeRuntime(%d): %v", i, err)
		}
		nodes[i] = rt
	}
	return nodes, func() {
		for _, rt := range nodes {
			rt.Close()
		}
		net.Close()
	}
}

// NewTestNetwork returns an in-memory network with zero modeled cost.
func NewTestNetwork() *transport.InMemNetwork {
	return transport.NewInMemNetwork(transport.CostModel{}, nil)
}

// sliceLoader plans one split per input slice and emits each element as a
// ("", line) pair.
type sliceLoader struct {
	chunks [][]string
}

func (l *sliceLoader) Plan(env *Env) ([]Split, error) {
	splits := make([]Split, len(l.chunks))
	for i, c := range l.chunks {
		splits[i] = Split{Payload: c, PreferredNode: -1, Size: int64(len(c))}
	}
	return splits, nil
}

func (l *sliceLoader) Load(sp Split, ctx Context) error {
	for _, line := range sp.Payload.([]string) {
		if err := ctx.Emit(KV{Key: "", Value: line}); err != nil {
			return err
		}
	}
	return nil
}

// wordSplit maps lines to (word, 1).
type wordSplit struct{}

func (wordSplit) Map(kv KV, ctx Context) error {
	for _, w := range strings.Fields(kv.Value.(string)) {
		if err := ctx.Emit(KV{Key: w, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

// sumPartial folds int64 counts.
type sumPartial struct{}

func (sumPartial) Update(key string, state, value any) (any, error) {
	if state == nil {
		return value.(int64), nil
	}
	return state.(int64) + value.(int64), nil
}

func (sumPartial) Finish(key string, state any, ctx Context) error {
	return ctx.Emit(KV{Key: key, Value: state.(int64)})
}

// sumReduce sums grouped int64 values.
type sumReduce struct{}

func (sumReduce) Reduce(key string, values []any, ctx Context) error {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return ctx.Emit(KV{Key: key, Value: total})
}

func buildWordCount(t testing.TB, usePartial bool, chunks [][]string) (*Graph, *CollectSink) {
	t.Helper()
	g := NewGraph("wordcount")
	sink := NewCollectSink()
	ld, err := g.AddLoader("load", &sliceLoader{chunks: chunks})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := g.AddMap("split", wordSplit{})
	if err != nil {
		t.Fatal(err)
	}
	var agg int
	if usePartial {
		agg, err = g.AddPartialReduce("count", sumPartial{})
	} else {
		agg, err = g.AddReduce("count", sumReduce{})
	}
	if err != nil {
		t.Fatal(err)
	}
	sk, err := g.AddSink("out", sink)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{ld, mp}, {mp, agg}, {agg, sk}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g, sink
}

func wordChunks(nChunks, linesPer int) ([][]string, map[string]int64) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	want := map[string]int64{}
	chunks := make([][]string, nChunks)
	for c := 0; c < nChunks; c++ {
		for l := 0; l < linesPer; l++ {
			var sb strings.Builder
			for w := 0; w < 5; w++ {
				word := words[(c*31+l*7+w)%len(words)]
				want[word]++
				sb.WriteString(word)
				sb.WriteByte(' ')
			}
			chunks[c] = append(chunks[c], sb.String())
		}
	}
	return chunks, want
}

func runWordCount(t *testing.T, numNodes int, cfg Config, usePartial bool) {
	t.Helper()
	chunks, want := wordChunks(12, 40)
	g, sink := buildWordCount(t, usePartial, chunks)
	nodes, cleanup := newTestCluster(t, numNodes, cfg)
	defer cleanup()
	res, err := Run(g, nodes, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := map[string]int64{}
	for _, kv := range sink.Pairs() {
		got[kv.Key] += kv.Value.(int64)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distinct words, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
	if res.Duration <= 0 {
		t.Errorf("non-positive duration %v", res.Duration)
	}
}

func TestWordCountPartialReduceSingleNode(t *testing.T) {
	runWordCount(t, 1, Config{Workers: 2}, true)
}

func TestWordCountPartialReduceMultiNode(t *testing.T) {
	runWordCount(t, 4, Config{Workers: 2}, true)
}

func TestWordCountReduceMultiNode(t *testing.T) {
	runWordCount(t, 4, Config{Workers: 2}, false)
}

func TestWordCountWithFlowControl(t *testing.T) {
	runWordCount(t, 3, Config{Workers: 2, FlowControlWindow: 2, BinSize: 8}, true)
}

func TestWordCountWithSpill(t *testing.T) {
	// A tiny memory budget forces the reduce accumulator to spill.
	chunks, want := wordChunks(8, 50)
	g, sink := buildWordCount(t, false, chunks)
	nodes, cleanup := newTestCluster(t, 2, Config{Workers: 2, MemoryBudget: 4 << 10})
	defer cleanup()
	res, err := Run(g, nodes, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Metrics.Get("reduce.spills") == 0 {
		t.Errorf("expected spills with a 4KiB budget, got none\n%v", res.Metrics.Counters)
	}
	got := map[string]int64{}
	for _, kv := range sink.Pairs() {
		got[kv.Key] += kv.Value.(int64)
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}

// errMapper fails on a specific word to test error propagation.
type errMapper struct{ bad string }

func (m errMapper) Map(kv KV, ctx Context) error {
	if strings.Contains(kv.Value.(string), m.bad) {
		return fmt.Errorf("poisoned record %q", m.bad)
	}
	return ctx.Emit(KV{Key: kv.Value.(string), Value: int64(1)})
}

func TestJobErrorPropagates(t *testing.T) {
	g := NewGraph("err")
	sink := NewCollectSink()
	ld, _ := g.AddLoader("load", &sliceLoader{chunks: [][]string{{"ok", "boom", "ok"}}})
	mp, _ := g.AddMap("map", errMapper{bad: "boom"})
	rd, _ := g.AddPartialReduce("agg", sumPartial{})
	sk, _ := g.AddSink("out", sink)
	for _, e := range [][2]int{{ld, mp}, {mp, rd}, {rd, sk}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	nodes, cleanup := newTestCluster(t, 3, Config{Workers: 2})
	defer cleanup()
	done := make(chan error, 1)
	go func() {
		_, err := Run(g, nodes, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "poisoned") {
			t.Fatalf("want poisoned-record error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job with failing mapper hung")
	}
}

func TestGraphValidation(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if err := NewGraph("g").Validate(); err == nil {
			t.Error("empty graph validated")
		}
	})
	t.Run("noLoader", func(t *testing.T) {
		g := NewGraph("g")
		mp, _ := g.AddMap("m", wordSplit{})
		sk, _ := g.AddSink("s", NewCollectSink())
		g.Connect(mp, sk)
		if err := g.Validate(); err == nil {
			t.Error("graph without loader validated")
		}
	})
	t.Run("cycleRejected", func(t *testing.T) {
		g := NewGraph("g")
		ld, _ := g.AddLoader("l", &sliceLoader{})
		m1, _ := g.AddMap("m1", wordSplit{})
		m2, _ := g.AddMap("m2", wordSplit{})
		sk, _ := g.AddSink("s", NewCollectSink())
		g.Connect(ld, m1)
		g.Connect(m1, m2)
		g.Connect(m2, m1)
		g.Connect(m2, sk)
		if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Errorf("cycle not rejected: %v", err)
		}
	})
	t.Run("edgeIntoLoader", func(t *testing.T) {
		g := NewGraph("g")
		ld, _ := g.AddLoader("l", &sliceLoader{})
		m1, _ := g.AddMap("m1", wordSplit{})
		if err := g.Connect(m1, ld); err == nil {
			t.Error("edge into loader accepted")
		}
	})
	t.Run("duplicateName", func(t *testing.T) {
		g := NewGraph("g")
		g.AddLoader("x", &sliceLoader{})
		if _, err := g.AddMap("x", wordSplit{}); err == nil {
			t.Error("duplicate name accepted")
		}
	})
	t.Run("danglingFlowlet", func(t *testing.T) {
		g := NewGraph("g")
		ld, _ := g.AddLoader("l", &sliceLoader{chunks: [][]string{{"a"}}})
		sk, _ := g.AddSink("s", NewCollectSink())
		g.Connect(ld, sk)
		g.AddMap("orphan", wordSplit{})
		if err := g.Validate(); err == nil {
			t.Error("orphan flowlet validated")
		}
	})
}

// locLoader emits one record per node id for routing tests.
type locLoader struct{ n int }

func (l *locLoader) Plan(env *Env) ([]Split, error) {
	return []Split{{Payload: l.n, PreferredNode: -1}}, nil
}

func (l *locLoader) Load(sp Split, ctx Context) error {
	for i := 0; i < sp.Payload.(int); i++ {
		if err := ctx.Emit(KV{Key: fmt.Sprint(i), Value: int64(i)}); err != nil {
			return err
		}
	}
	return nil
}

// nodeStamp tags each record with the node that processed it.
type nodeStamp struct{}

func (nodeStamp) Map(kv KV, ctx Context) error {
	return ctx.Emit(KV{Key: kv.Key, Value: fmt.Sprintf("node%d", ctx.Node())})
}

func TestBroadcastRouting(t *testing.T) {
	const numNodes = 3
	g := NewGraph("bcast")
	sink := NewCollectSink()
	ld, _ := g.AddLoader("l", &locLoader{n: 5})
	mp, _ := g.AddMap("stamp", nodeStamp{})
	sk, _ := g.AddSink("s", sink)
	if err := g.Connect(ld, mp, WithRouting(RouteBroadcast)); err != nil {
		t.Fatal(err)
	}
	g.Connect(mp, sk)
	nodes, cleanup := newTestCluster(t, numNodes, Config{Workers: 2})
	defer cleanup()
	if _, err := Run(g, nodes, nil); err != nil {
		t.Fatal(err)
	}
	// Every record should be observed once per node.
	perNode := map[string]int{}
	for _, kv := range sink.Pairs() {
		perNode[kv.Value.(string)]++
	}
	if len(perNode) != numNodes {
		t.Fatalf("records seen on %d nodes, want %d: %v", len(perNode), numNodes, perNode)
	}
	for n, c := range perNode {
		if c != 5 {
			t.Errorf("%s saw %d records, want 5", n, c)
		}
	}
}

func TestLocalRoutingStaysOnNode(t *testing.T) {
	// With local routing from loader to map, no shuffle bytes should move.
	g := NewGraph("local")
	sink := NewCollectSink()
	ld, _ := g.AddLoader("l", &locLoader{n: 100})
	mp, _ := g.AddMap("stamp", nodeStamp{})
	sk, _ := g.AddSink("s", sink)
	g.Connect(ld, mp, WithRouting(RouteLocal))
	g.Connect(mp, sk)
	nodes, cleanup := newTestCluster(t, 3, Config{Workers: 2})
	defer cleanup()
	res, err := Run(g, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.Get("shuffle.bytes"); got != 0 {
		t.Errorf("local routing shuffled %d bytes, want 0", got)
	}
	if sink.Len() != 100 {
		t.Errorf("sink got %d records, want 100", sink.Len())
	}
}

func TestRunConcurrentJobs(t *testing.T) {
	// Two jobs sharing the same runtimes must not interfere.
	nodes, cleanup := newTestCluster(t, 2, Config{Workers: 4})
	defer cleanup()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	sinks := make([]*CollectSink, 2)
	for i := 0; i < 2; i++ {
		chunks, _ := wordChunks(6, 20)
		g, sink := buildWordCount(t, true, chunks)
		sinks[i] = sink
		wg.Add(1)
		go func(i int, g *Graph) {
			defer wg.Done()
			_, errs[i] = Run(g, nodes, nil)
		}(i, g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if sinks[i].Len() == 0 {
			t.Errorf("job %d produced no output", i)
		}
	}
}
