package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"testing"
)

// Microbenchmarks for the two hottest engine loops (emit→bin and the
// partial-reduce fold) and the value codec. Each family carries a
// "-baseline" variant reproducing the pre-optimization implementation
// (whole-edge mutex, process-global gob lock, per-bin map grouping) so
// before/after is measured in one run; EXPERIMENTS.md records the
// numbers.

// emitBuffer abstracts the sharded binBuffer and the legacy single-mutex
// implementation for side-by-side benchmarking.
type emitBuffer interface {
	add(dest int, kv KV, size int64) ([]KV, int64)
	drain() []drained
}

// legacyBinBuffer is the pre-change implementation: one mutex guarding
// every destination slot of an edge, with kv.Size() recomputed inside
// the lock. Kept verbatim as the benchmark baseline.
type legacyBinBuffer struct {
	mu      sync.Mutex
	slots   []legacySlot
	maxKVs  int
	maxByte int64
}

type legacySlot struct {
	kvs   []KV
	bytes int64
}

func newLegacyBinBuffer(numNodes, maxKVs int, maxBytes int64) *legacyBinBuffer {
	return &legacyBinBuffer{slots: make([]legacySlot, numNodes), maxKVs: maxKVs, maxByte: maxBytes}
}

func (b *legacyBinBuffer) add(dest int, kv KV, _ int64) (sealed []KV, sealedBytes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.slots[dest]
	s.kvs = append(s.kvs, kv)
	s.bytes += kv.Size()
	if len(s.kvs) >= b.maxKVs || s.bytes >= b.maxByte {
		sealed, sealedBytes = s.kvs, s.bytes
		s.kvs, s.bytes = nil, 0
	}
	return sealed, sealedBytes
}

func (b *legacyBinBuffer) drain() []drained {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []drained
	for dest := range b.slots {
		s := &b.slots[dest]
		if len(s.kvs) == 0 {
			continue
		}
		out = append(out, drained{dest, s.kvs, s.bytes})
		s.kvs, s.bytes = nil, 0
	}
	return out
}

// benchEmit runs `workers` goroutines emitting interleaved keys on one
// edge buffer, the shape of a node's mappers all emitting concurrently.
func benchEmit(b *testing.B, workers, nodes int, mk func() emitBuffer) {
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	buf := mk()
	perW := b.N / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				kv := KV{Key: keys[(w+i)%len(keys)], Value: int64(i)}
				size := kv.Size()
				if sealed, _ := buf.add((w+i)%nodes, kv, size); sealed != nil {
					_ = sealed // a real emit would hand the bin to sendBin
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	buf.drain()
}

// BenchmarkEmitPath measures the per-edge output buffer under concurrent
// emitters — the lock every Emit crosses. Acceptance: sharded ≥ 1.5x the
// single-mutex baseline at 8 workers.
func BenchmarkEmitPath(b *testing.B) {
	const nodes = 8
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("sharded-%dw", workers), func(b *testing.B) {
			benchEmit(b, workers, nodes, func() emitBuffer { return newBinBuffer(nodes, 512, 128<<10) })
		})
		b.Run(fmt.Sprintf("single-mutex-baseline-%dw", workers), func(b *testing.B) {
			benchEmit(b, workers, nodes, func() emitBuffer { return newLegacyBinBuffer(nodes, 512, 128<<10) })
		})
	}
}

type benchGobValue struct {
	Name  string
	Count int64
	Pos   []float64
}

func init() { RegisterValue(benchGobValue{}) }

// legacy gob path: one process-global mutex around every encode and
// every decode, fresh bytes.Buffer per value — the pre-change
// implementation, round-tripped for a fair comparison with the pooled
// path.
var legacyGobMu sync.Mutex

func legacyGobRoundTrip(b *testing.B, v any) {
	var buf bytes.Buffer
	legacyGobMu.Lock()
	err := gob.NewEncoder(&buf).Encode(&v)
	legacyGobMu.Unlock()
	if err != nil {
		b.Fatal(err)
	}
	var out any
	legacyGobMu.Lock()
	err = gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out)
	legacyGobMu.Unlock()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCodec measures EncodeValue/DecodeValue for the shapes the
// benchmarks actually emit, plus the gob fallback — sequential and with 8
// concurrent encoders (where the old global mutex serialized).
func BenchmarkCodec(b *testing.B) {
	values := []struct {
		name string
		v    any
	}{
		{"int64", int64(123456)},
		{"string", "movie:the-dataflow-strikes-back"},
		{"float64-slice", []float64{1, 2, 3, 4, 5, 6, 7, 8}},
		{"int-slice", []int{9, 8, 7, 6, 5, 4, 3, 2, 1}},
		{"map-string-int64", map[string]int64{"a": 1, "bb": 2, "ccc": 3, "dddd": 4}},
		{"gob-fallback", benchGobValue{Name: "x", Count: 42, Pos: []float64{1, 2, 3}}},
	}
	for _, tc := range values {
		tc := tc
		b.Run("roundtrip/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var scratch []byte
			for i := 0; i < b.N; i++ {
				var err error
				scratch, err = EncodeValue(scratch[:0], tc.v)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := DecodeValue(scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	gobVal := benchGobValue{Name: "y", Count: 7, Pos: []float64{3, 1, 4, 1, 5}}
	b.Run("parallel-gob/pooled", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			var scratch []byte
			for pb.Next() {
				var err error
				scratch, err = EncodeValue(scratch[:0], gobVal)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := DecodeValue(scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("parallel-gob/global-mutex-baseline", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				legacyGobRoundTrip(b, gobVal)
			}
		})
	})
}

// benchPartialNode builds a single-node jobNode with a loader -> partial
// reduce graph so applyPartialBin runs against real flowlet state.
func benchPartialNode(b *testing.B, stripes int) (*flowletState, func()) {
	b.Helper()
	cfg := Config{Workers: 4, PartialStripes: stripes}
	nodes, cleanup := newTestCluster(b, 1, cfg)
	g := NewGraph("bench-partial")
	ld, err := g.AddLoader("load", &sliceLoader{})
	if err != nil {
		b.Fatal(err)
	}
	pr, err := g.AddPartialReduce("sum", sumPartial{})
	if err != nil {
		b.Fatal(err)
	}
	sk, err := g.AddSink("out", NewCollectSink())
	if err != nil {
		b.Fatal(err)
	}
	if err := g.Connect(ld, pr); err != nil {
		b.Fatal(err)
	}
	if err := g.Connect(pr, sk); err != nil {
		b.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		b.Fatal(err)
	}
	jn := newJobNode(nodes[0], g, 1, 1)
	return jn.flowlets[pr], cleanup
}

// legacyApplyPartialBin is the pre-change fold: a map[int][]KV allocated
// and grown per bin. Model costs are off in the benchmark, so the work
// measured is exactly the harness overhead the rewrite removes.
func legacyApplyPartialBin(fs *flowletState, bin *Bin) error {
	nstripes := len(fs.stripes)
	var batches map[int][]KV
	if nstripes == 1 {
		batches = map[int][]KV{0: bin.KVs}
	} else {
		batches = make(map[int][]KV)
		for _, kv := range bin.KVs {
			idx := int(HashKey(kv.Key) % uint64(nstripes))
			batches[idx] = append(batches[idx], kv)
		}
	}
	for idx, kvs := range batches {
		if err := fs.applyStripeBatch(&fs.stripes[idx], kvs); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkPartialReduceStripes measures folding bins into striped
// partial-reduce state, scratch-grouped vs the per-bin map baseline.
func BenchmarkPartialReduceStripes(b *testing.B) {
	mkBin := func(n int) *Bin {
		kvs := make([]KV, n)
		for i := range kvs {
			kvs[i] = KV{Key: fmt.Sprintf("key-%04d", i%997), Value: int64(1)}
		}
		return &Bin{KVs: kvs}
	}
	for _, impl := range []struct {
		name  string
		apply func(*flowletState, *Bin) error
	}{
		{"scratch", (*flowletState).applyPartialBin},
		{"map-baseline", legacyApplyPartialBin},
	} {
		impl := impl
		b.Run(impl.name, func(b *testing.B) {
			fs, cleanup := benchPartialNode(b, 64)
			defer cleanup()
			bin := mkBin(512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := impl.apply(fs, bin); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
