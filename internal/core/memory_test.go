package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/storage"
)

func TestMemoryManagerBudget(t *testing.T) {
	m := NewMemoryManager(100)
	if !m.Reserve(60) {
		t.Fatal("first reservation denied")
	}
	if m.Reserve(60) {
		t.Fatal("over-budget reservation granted")
	}
	m.Release(30)
	if !m.Reserve(60) {
		t.Fatal("reservation denied after release")
	}
	if m.Used() != 90 {
		t.Fatalf("Used = %d", m.Used())
	}
	m.ForceReserve(1000)
	if m.Used() != 1090 {
		t.Fatalf("Used after force = %d", m.Used())
	}
}

func TestMemoryManagerUnlimited(t *testing.T) {
	m := NewMemoryManager(0)
	for i := 0; i < 100; i++ {
		if !m.Reserve(1 << 30) {
			t.Fatal("unlimited manager denied reservation")
		}
	}
}

func TestMemoryManagerFirstReservationAlwaysGranted(t *testing.T) {
	// A single item larger than the whole budget must still be admitted
	// when nothing else is held (otherwise jobs with one huge record
	// would deadlock).
	m := NewMemoryManager(10)
	if !m.Reserve(100) {
		t.Fatal("oversized first reservation denied")
	}
}

func TestAccumulatorInMemory(t *testing.T) {
	acc := newAccumulator(nil, storage.NewMemDisk(0), "t", nil, compress.Config{})
	for i := 0; i < 100; i++ {
		acc.add(KV{Key: fmt.Sprintf("k%02d", i%10), Value: int64(i)})
	}
	if acc.Count() != 100 {
		t.Fatalf("Count = %d", acc.Count())
	}
	var keys []string
	total := 0
	err := acc.iterate(func(key string, values []any) error {
		keys = append(keys, key)
		total += len(values)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 100 || len(keys) != 10 {
		t.Fatalf("iterated %d values over %d keys", total, len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("keys not sorted: %v", keys)
	}
}

func TestAccumulatorSpillsAndMerges(t *testing.T) {
	disk := storage.NewMemDisk(0)
	mem := NewMemoryManager(512) // tiny: forces many spills
	acc := newAccumulator(mem, disk, "spill", nil, compress.Config{})
	want := map[string]int64{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%02d", i%17)
		if err := acc.add(KV{Key: k, Value: int64(i)}); err != nil {
			t.Fatal(err)
		}
		want[k]++
	}
	if len(disk.List("spill/")) == 0 {
		t.Fatal("no spill runs written")
	}
	got := map[string]int64{}
	var prev string
	first := true
	err := acc.iterate(func(key string, values []any) error {
		if !first && key <= prev {
			t.Fatalf("keys out of order: %q after %q", key, prev)
		}
		first, prev = false, key
		got[key] += int64(len(values))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("key %q: %d values, want %d", k, got[k], n)
		}
	}
	// Spill files are cleaned up after iteration.
	if left := disk.List("spill/"); len(left) != 0 {
		t.Errorf("spill runs not removed: %v", left)
	}
}

// Property: for any key/value sequence and any (tiny) budget, the
// accumulator groups exactly like an in-memory map.
func TestAccumulatorGroupingProperty(t *testing.T) {
	i := 0
	f := func(keys []uint8, budget uint16) bool {
		i++
		disk := storage.NewMemDisk(0)
		mem := NewMemoryManager(int64(budget%2000) + 64)
		acc := newAccumulator(mem, disk, fmt.Sprintf("p%d", i), nil, compress.Config{})
		want := map[string][]int64{}
		for j, kRaw := range keys {
			k := fmt.Sprintf("k%d", kRaw%13)
			v := int64(j)
			if err := acc.add(KV{Key: k, Value: v}); err != nil {
				return false
			}
			want[k] = append(want[k], v)
		}
		got := map[string][]int64{}
		err := acc.iterate(func(key string, values []any) error {
			for _, v := range values {
				got[key] = append(got[key], v.(int64))
			}
			return nil
		})
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for k, wv := range want {
			gv := got[k]
			if len(gv) != len(wv) {
				return false
			}
			// Order within a group may differ between the memory and
			// spill paths; compare as multisets.
			sort.Slice(gv, func(a, b int) bool { return gv[a] < gv[b] })
			sort.Slice(wv, func(a, b int) bool { return wv[a] < wv[b] })
			for x := range wv {
				if gv[x] != wv[x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorSpillWithoutDisk(t *testing.T) {
	mem := NewMemoryManager(32)
	acc := newAccumulator(mem, nil, "x", nil, compress.Config{})
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = acc.add(KV{Key: fmt.Sprintf("key%d", i), Value: int64(i)})
	}
	if err == nil {
		t.Fatal("budget exhaustion with no spill disk did not error")
	}
}

func TestCreditWindow(t *testing.T) {
	c := newCredit(2)
	c.take()
	c.take()
	if !c.full() {
		t.Fatal("window not full after 2 takes")
	}
	done := make(chan bool, 1)
	go func() { done <- c.waitBelow() }()
	// Give the waiter time to actually stall on the full window.
	deadline := time.After(2 * time.Second)
	for c.Stalls() == 0 {
		select {
		case <-done:
			t.Fatal("waitBelow returned while full")
		case <-deadline:
			t.Fatal("waiter never stalled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	c.release()
	if ok := <-done; !ok {
		t.Fatal("waitBelow failed")
	}
	if c.Stalls() != 1 {
		t.Errorf("Stalls = %d", c.Stalls())
	}
}

func TestCreditDisabled(t *testing.T) {
	c := newCredit(0)
	for i := 0; i < 100; i++ {
		c.take()
	}
	if c.full() {
		t.Fatal("disabled window reports full")
	}
	if !c.waitBelow() {
		t.Fatal("disabled window blocks")
	}
}

func TestCreditAbort(t *testing.T) {
	c := newCredit(1)
	c.take()
	done := make(chan bool, 1)
	go func() { done <- c.waitBelow() }()
	c.abort()
	if ok := <-done; ok {
		t.Fatal("waitBelow returned true after abort")
	}
}

func TestBinBufferSealing(t *testing.T) {
	b := newBinBuffer(3, 4, 1<<20)
	var sealed [][]KV
	for i := 0; i < 10; i++ {
		kv := KV{Key: fmt.Sprint(i), Value: int64(i)}
		kvs, _ := b.add(1, kv, kv.Size())
		if kvs != nil {
			sealed = append(sealed, kvs)
		}
	}
	if len(sealed) != 2 {
		t.Fatalf("%d bins sealed, want 2 (4+4, 2 left)", len(sealed))
	}
	rest := b.drain()
	if len(rest) != 1 || rest[0].Dest != 1 || len(rest[0].KVs) != 2 {
		t.Fatalf("drain = %+v", rest)
	}
	if again := b.drain(); len(again) != 0 {
		t.Fatal("second drain returned data")
	}
}

func TestBinBufferSealsByBytes(t *testing.T) {
	b := newBinBuffer(1, 1000, 64)
	kv := KV{Key: "k", Value: make([]byte, 100)}
	kvs, _ := b.add(0, kv, kv.Size())
	if kvs == nil {
		t.Fatal("oversized value did not seal the bin")
	}
}
