package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestDiamondDataReuse exercises §3.2's data-reuse claim: "If one data set
// requires two different operations, HAMR only needs to load data once and
// connect the loader to two flowlets." One loader fans out to two map
// flowlets whose results meet in a single sink.
func TestDiamondDataReuse(t *testing.T) {
	g := NewGraph("diamond")
	sink := NewCollectSink()
	chunks, _ := wordChunks(6, 10)
	ld, _ := g.AddLoader("load", &sliceLoader{chunks: chunks})
	left, _ := g.AddMap("lines", countLines{})
	right, _ := g.AddMap("words", wordSplit{})
	aggL, _ := g.AddPartialReduce("linecount", sumPartial{})
	aggR, _ := g.AddPartialReduce("wordcount", sumPartial{})
	sk, _ := g.AddSink("out", sink)
	for _, e := range [][2]int{{ld, left}, {ld, right}, {left, aggL}, {right, aggR}, {aggL, sk}, {aggR, sk}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	nodes, cleanup := newTestCluster(t, 3, Config{Workers: 2})
	defer cleanup()
	res, err := Run(g, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]int64{}
	for _, kv := range sink.Pairs() {
		m[kv.Key] += kv.Value.(int64)
	}
	if m["__lines__"] != 60 {
		t.Errorf("line count = %d, want 60", m["__lines__"])
	}
	var words int64
	for k, v := range m {
		if k != "__lines__" {
			words += v
		}
	}
	if words != 60*5 {
		t.Errorf("word count = %d, want 300", words)
	}
	// The loader ran its splits exactly once despite two consumers.
	if got := res.Metrics.Get("loader.splits"); got != 6 {
		t.Errorf("loader.splits = %d, want 6 (data loaded once)", got)
	}
}

type countLines struct{}

func (countLines) Map(kv KV, ctx Context) error {
	return ctx.Emit(KV{Key: "__lines__", Value: int64(1)})
}

// TestMultiUpstreamReduce checks the completion protocol with a reduce fed
// by two distinct upstream flowlets: it must wait for BOTH to complete on
// every node.
func TestMultiUpstreamReduce(t *testing.T) {
	g := NewGraph("join")
	sink := NewCollectSink()
	ld, _ := g.AddLoader("load", &sliceLoader{chunks: [][]string{{"k1 a", "k2 b"}, {"k1 c"}}})
	tagA, _ := g.AddMap("tagA", tagMapper{tag: "A"})
	tagB, _ := g.AddMap("tagB", tagMapper{tag: "B"})
	join, _ := g.AddReduce("join", joinReduce{})
	sk, _ := g.AddSink("out", sink)
	for _, e := range [][2]int{{ld, tagA}, {ld, tagB}, {tagA, join}, {tagB, join}, {join, sk}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	nodes, cleanup := newTestCluster(t, 3, Config{Workers: 2})
	defer cleanup()
	if _, err := Run(g, nodes, nil); err != nil {
		t.Fatal(err)
	}
	got := sink.Map()
	// Every key saw values from both branches.
	if got["k1"].(int64) != 4 { // 2 records x 2 tags
		t.Errorf("k1 joined %v values, want 4", got["k1"])
	}
	if got["k2"].(int64) != 2 {
		t.Errorf("k2 joined %v values, want 2", got["k2"])
	}
}

type tagMapper struct{ tag string }

func (m tagMapper) Map(kv KV, ctx Context) error {
	f := kv.Value.(string)
	key := f[:2]
	return ctx.Emit(KV{Key: key, Value: m.tag + f[3:]})
}

type joinReduce struct{}

func (joinReduce) Reduce(key string, values []any, ctx Context) error {
	return ctx.Emit(KV{Key: key, Value: int64(len(values))})
}

// slowSink delays every write, making the terminal stage the bottleneck.
type slowSink struct {
	wrote atomic.Int64
	delay time.Duration
}

func (s *slowSink) Write(node int, kv KV) error {
	time.Sleep(s.delay)
	s.wrote.Add(1)
	return nil
}

func (s *slowSink) Close(node int) error { return nil }

// TestFlowControlEngagesUnderPressure drives a fast loader into a slow
// consumer through a tiny window and checks that (a) the job completes,
// (b) flow control actually engaged (loader stalls or gated bins), and
// (c) nothing was lost.
func TestFlowControlEngagesUnderPressure(t *testing.T) {
	const records = 3000
	var lines []string
	for i := 0; i < records; i++ {
		lines = append(lines, fmt.Sprintf("r%d", i))
	}
	g := NewGraph("pressure")
	sink := &slowSink{delay: 40 * time.Microsecond}
	ld, _ := g.AddLoader("load", &sliceLoader{chunks: [][]string{lines[:1500], lines[1500:]}})
	mp, _ := g.AddMap("fwd", forwardMapper{})
	slow, _ := g.AddMap("slowzone", passThrough{})
	sk, _ := g.AddSink("out", sink)
	g.Connect(ld, mp)
	g.Connect(mp, slow)
	// The slow sink is reached through a shuffled edge so remote bins and
	// their acks exercise the credit machinery.
	g.Connect(slow, sk, WithRouting(RouteShuffle))
	nodes, cleanup := newTestCluster(t, 2, Config{
		Workers:           2,
		BinSize:           16,
		FlowControlWindow: 2,
		LoaderConcurrency: 1,
	})
	defer cleanup()
	done := make(chan error, 1)
	var res *JobResult
	go func() {
		var err error
		res, err = Run(g, nodes, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("flow-controlled job hung")
	}
	if sink.wrote.Load() != records {
		t.Fatalf("sink saw %d records, want %d", sink.wrote.Load(), records)
	}
	if res.Stalls == 0 && res.Gated == 0 {
		t.Errorf("flow control never engaged (stalls=%d gated=%d)", res.Stalls, res.Gated)
	}
}

type forwardMapper struct{}

func (forwardMapper) Map(kv KV, ctx Context) error {
	return ctx.Emit(KV{Key: kv.Value.(string), Value: int64(1)})
}

// TestReduceIntoReduce chains two reduce flowlets — two barriers in one
// graph — which Hadoop would need two jobs for (§3.2).
func TestReduceIntoReduce(t *testing.T) {
	g := NewGraph("double-reduce")
	sink := NewCollectSink()
	chunks, want := wordChunks(6, 15)
	ld, _ := g.AddLoader("load", &sliceLoader{chunks: chunks})
	mp, _ := g.AddMap("split", wordSplit{})
	r1, _ := g.AddReduce("count", sumReduce{})
	// Second reduce: group counts by their magnitude bucket.
	r2, _ := g.AddReduce("bucket", bucketReduce{})
	sk, _ := g.AddSink("out", sink)
	for _, e := range [][2]int{{ld, mp}, {mp, r1}, {r1, r2}, {r2, sk}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	nodes, cleanup := newTestCluster(t, 3, Config{Workers: 2})
	defer cleanup()
	if _, err := Run(g, nodes, nil); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, kv := range sink.Pairs() {
		total += kv.Value.(int64)
	}
	if int(total) != len(want) {
		t.Errorf("bucketed %d words, want %d", total, len(want))
	}
}

type bucketReduce struct{}

func (bucketReduce) Reduce(key string, values []any, ctx Context) error {
	// key = word, values = [count]; emit (bucket, 1) where bucket is the
	// count's decade.
	for _, v := range values {
		bucket := fmt.Sprintf("decade-%d", v.(int64)/10)
		if err := ctx.Emit(KV{Key: bucket, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

type passThrough struct{}

func (passThrough) Map(kv KV, ctx Context) error { return ctx.Emit(kv) }
