package core

import (
	"container/heap"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
)

// MemoryManager tracks a node's in-memory data budget. "Instead of cores,
// YARN schedules the tasks based on available memory on nodes" (§3.1);
// HAMR similarly associates memory with computation in a fine-grain way:
// buffered bins and reduce accumulations reserve bytes here, and reduce
// flowlets spill to local disk when the budget is exhausted (§2).
type MemoryManager struct {
	budget int64
	used   atomic.Int64
}

// NewMemoryManager returns a manager with the given byte budget; budget
// <= 0 means unlimited.
func NewMemoryManager(budget int64) *MemoryManager {
	return &MemoryManager{budget: budget}
}

// Reserve attempts to reserve n bytes, reporting whether the budget allows
// it. A false return signals the caller to spill (or stall) first; the
// reservation is not made.
func (m *MemoryManager) Reserve(n int64) bool {
	if m.budget <= 0 {
		m.used.Add(n)
		return true
	}
	for {
		cur := m.used.Load()
		if cur+n > m.budget && cur > 0 {
			return false
		}
		if m.used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// ForceReserve reserves n bytes even past the budget (a single group larger
// than the whole budget must still fit somewhere).
func (m *MemoryManager) ForceReserve(n int64) { m.used.Add(n) }

// Release returns n bytes to the budget.
func (m *MemoryManager) Release(n int64) { m.used.Add(-n) }

// Used returns current reserved bytes.
func (m *MemoryManager) Used() int64 { return m.used.Load() }

// Budget returns the configured budget (0 = unlimited).
func (m *MemoryManager) Budget() int64 { return m.budget }

// accumulator collects the grouped input of one reduce flowlet on one
// node. Pairs are held in memory until the memory manager denies a
// reservation, at which point the current contents are sorted by key and
// spilled to the node's local disk as a run file. Iterate merges the
// in-memory groups with all spilled runs in key order.
type accumulator struct {
	mu      sync.Mutex
	groups  map[string][]any
	bytes   int64
	mem     *MemoryManager
	disk    storage.Disk
	prefix  string
	runs    []string
	nextRun int
	reg     *metrics.Registry
	count   int64
}

func newAccumulator(mem *MemoryManager, disk storage.Disk, prefix string, reg *metrics.Registry) *accumulator {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &accumulator{
		groups: make(map[string][]any),
		mem:    mem,
		disk:   disk,
		prefix: prefix,
		reg:    reg,
	}
}

// add ingests one pair, spilling first if the budget is exhausted.
func (a *accumulator) add(kv KV) error {
	sz := kv.Size()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.mem != nil && !a.mem.Reserve(sz) {
		if len(a.groups) > 0 {
			if err := a.spillLocked(); err != nil {
				return err
			}
		}
		// After spilling (or when nothing could be spilled) the pair must
		// be admitted regardless, or the job cannot progress.
		a.mem.ForceReserve(sz)
	}
	a.groups[kv.Key] = append(a.groups[kv.Key], kv.Value)
	a.bytes += sz
	a.count++
	return nil
}

// spillLocked writes the current in-memory groups as one sorted run and
// clears them. Caller holds a.mu.
func (a *accumulator) spillLocked() error {
	if a.disk == nil {
		return fmt.Errorf("core: reduce memory budget exhausted and no spill disk configured")
	}
	keys := make([]string, 0, len(a.groups))
	for k := range a.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	name := fmt.Sprintf("%s/run-%04d", a.prefix, a.nextRun)
	a.nextRun++
	f, err := a.disk.Create(name)
	if err != nil {
		return fmt.Errorf("core: create spill run: %w", err)
	}
	w := storage.NewRecordWriter(f)
	var buf []byte
	for _, k := range keys {
		for _, v := range a.groups[k] {
			buf = buf[:0]
			buf, err = EncodeValue(buf, v)
			if err != nil {
				w.Close()
				return err
			}
			if err := w.Write([]byte(k), buf); err != nil {
				w.Close()
				return fmt.Errorf("core: write spill run: %w", err)
			}
		}
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("core: close spill run: %w", err)
	}
	a.runs = append(a.runs, name)
	a.reg.Inc("reduce.spills")
	a.reg.Add("reduce.spill.bytes", a.bytes)
	if a.mem != nil {
		a.mem.Release(a.bytes)
	}
	a.groups = make(map[string][]any)
	a.bytes = 0
	return nil
}

// Count returns the pairs ingested so far.
func (a *accumulator) Count() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count
}

// iterate calls fn once per key with all of that key's values (in arrival
// order within each run, runs in spill order then memory). It merges the
// spilled runs with the in-memory groups; after iteration the spill files
// are removed and the memory reservation is released.
func (a *accumulator) iterate(fn func(key string, values []any) error) error {
	a.mu.Lock()
	groups := a.groups
	bytes := a.bytes
	runs := a.runs
	a.groups = make(map[string][]any)
	a.bytes = 0
	a.runs = nil
	a.mu.Unlock()

	defer func() {
		if a.mem != nil {
			a.mem.Release(bytes)
		}
		for _, r := range runs {
			_ = a.disk.Remove(r)
		}
	}()

	if len(runs) == 0 {
		// Pure in-memory path: iterate in sorted key order for determinism.
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := fn(k, groups[k]); err != nil {
				return err
			}
		}
		return nil
	}

	// Merge spilled runs with the in-memory snapshot as one extra "run".
	var sources []mergeSource
	for _, name := range runs {
		f, err := a.disk.Open(name)
		if err != nil {
			return fmt.Errorf("core: open spill run: %w", err)
		}
		sources = append(sources, &fileRun{r: storage.NewRecordReader(f)})
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sources = append(sources, &memRun{keys: keys, groups: groups})

	defer func() {
		for _, s := range sources {
			s.close()
		}
	}()

	h := &mergeHeap{}
	for i, s := range sources {
		key, vals, err := s.next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return err
		}
		heap.Push(h, mergeItem{key: key, values: vals, src: i})
	}
	var curKey string
	var curVals []any
	first := true
	flush := func() error {
		if first {
			return nil
		}
		return fn(curKey, curVals)
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(mergeItem)
		if first || it.key != curKey {
			if err := flush(); err != nil {
				return err
			}
			curKey = it.key
			curVals = append([]any(nil), it.values...)
			first = false
		} else {
			curVals = append(curVals, it.values...)
		}
		key, vals, err := sources[it.src].next()
		if err == nil {
			heap.Push(h, mergeItem{key: key, values: vals, src: it.src})
		} else if err != io.EOF {
			return err
		}
	}
	return flush()
}

// mergeSource yields (key, values) groups in nondecreasing key order.
type mergeSource interface {
	next() (string, []any, error)
	close()
}

// fileRun reads one spilled run, grouping consecutive records that share a
// key (runs are written sorted, so groups are contiguous).
type fileRun struct {
	r       *storage.RecordReader
	pending *storage.Record
}

func (f *fileRun) next() (string, []any, error) {
	var rec storage.Record
	if f.pending != nil {
		rec, f.pending = *f.pending, nil
	} else {
		var err error
		rec, err = f.r.Next()
		if err != nil {
			return "", nil, err
		}
	}
	key := string(rec.Key)
	v, _, err := DecodeValue(rec.Value)
	if err != nil {
		return "", nil, err
	}
	values := []any{v}
	for {
		nxt, err := f.r.Next()
		if err == io.EOF {
			return key, values, nil
		}
		if err != nil {
			return "", nil, err
		}
		if string(nxt.Key) != key {
			f.pending = &nxt
			return key, values, nil
		}
		v, _, err := DecodeValue(nxt.Value)
		if err != nil {
			return "", nil, err
		}
		values = append(values, v)
	}
}

func (f *fileRun) close() { f.r.Close() }

// memRun iterates the in-memory snapshot in sorted key order.
type memRun struct {
	keys   []string
	groups map[string][]any
	idx    int
}

func (m *memRun) next() (string, []any, error) {
	if m.idx >= len(m.keys) {
		return "", nil, io.EOF
	}
	k := m.keys[m.idx]
	m.idx++
	return k, m.groups[k], nil
}

func (m *memRun) close() {}

type mergeItem struct {
	key    string
	values []any
	src    int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int      { return len(h) }
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].src < h[j].src
}
func (h *mergeHeap) Push(x any) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
