package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/extsort"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
)

// MemoryManager tracks a node's in-memory data budget. "Instead of cores,
// YARN schedules the tasks based on available memory on nodes" (§3.1);
// HAMR similarly associates memory with computation in a fine-grain way:
// buffered bins and reduce accumulations reserve bytes here, and reduce
// flowlets spill to local disk when the budget is exhausted (§2).
type MemoryManager struct {
	budget int64
	used   atomic.Int64
}

// MemoryManager is the budget protocol the extsort run builder consults.
var _ extsort.Budget = (*MemoryManager)(nil)

// NewMemoryManager returns a manager with the given byte budget; budget
// <= 0 means unlimited.
func NewMemoryManager(budget int64) *MemoryManager {
	return &MemoryManager{budget: budget}
}

// Reserve attempts to reserve n bytes, reporting whether the budget allows
// it. A false return signals the caller to spill (or stall) first; the
// reservation is not made.
func (m *MemoryManager) Reserve(n int64) bool {
	if m.budget <= 0 {
		m.used.Add(n)
		return true
	}
	for {
		cur := m.used.Load()
		if cur+n > m.budget && cur > 0 {
			return false
		}
		if m.used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// ForceReserve reserves n bytes even past the budget (a single group larger
// than the whole budget must still fit somewhere).
func (m *MemoryManager) ForceReserve(n int64) { m.used.Add(n) }

// Release returns n bytes to the budget.
func (m *MemoryManager) Release(n int64) { m.used.Add(-n) }

// Used returns current reserved bytes.
func (m *MemoryManager) Used() int64 { return m.used.Load() }

// Budget returns the configured budget (0 = unlimited).
func (m *MemoryManager) Budget() int64 { return m.budget }

// kvRec is one buffered reduce input pair. Runs hold them sorted by key,
// stable in arrival order, so a key's values reassemble in the order they
// arrived within each run.
type kvRec struct {
	key   string
	value any
}

func kvRecCompare(a, b kvRec) int { return strings.Compare(a.key, b.key) }

// kvFormat stores kvRec in run files as raw key bytes plus the
// codec-encoded value.
type kvFormat struct{}

func (kvFormat) AppendRecord(kbuf, vbuf []byte, r kvRec) ([]byte, []byte, error) {
	kbuf = append(kbuf, r.key...)
	vbuf, err := EncodeValue(vbuf, r.value)
	return kbuf, vbuf, err
}

func (kvFormat) DecodeRecord(key, value []byte) (kvRec, error) {
	v, _, err := DecodeValue(value)
	if err != nil {
		return kvRec{}, err
	}
	return kvRec{key: string(key), value: v}, nil
}

// accumulator collects the grouped input of one reduce flowlet on one
// node. Pairs buffer in an extsort run builder until the memory manager
// denies a reservation, at which point the buffered pairs are sorted by
// key and spilled to the node's local disk as a run file. Iterate merges
// the in-memory pairs with all spilled runs in key order.
type accumulator struct {
	mu   sync.Mutex
	b    *extsort.RunBuilder[kvRec]
	mem  *MemoryManager
	disk storage.Disk
	cc   compress.Config
}

func newAccumulator(mem *MemoryManager, disk storage.Disk, prefix string, reg *metrics.Registry, cc compress.Config) *accumulator {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	var budget extsort.Budget
	if mem != nil {
		budget = mem
	}
	return &accumulator{
		mem:  mem,
		disk: disk,
		cc:   cc,
		b: extsort.NewRunBuilder(extsort.BuilderConfig[kvRec]{
			Cmp:     kvRecCompare,
			Format:  kvFormat{},
			Disk:    disk,
			RunName: func(i int) string { return fmt.Sprintf("%s/run-%04d", prefix, i) },
			Budget:  budget,
			// OnSpill bytes are the accounted (pre-compression) buffer
			// size: reduce.spill.bytes and the Budget release are invariant
			// under compression; only disk.write.bytes shrinks.
			OnSpill: func(_ int, bytes int64) {
				reg.Inc("reduce.spills")
				reg.Add("reduce.spill.bytes", bytes)
			},
			Compress: cc,
		}),
	}
}

// add ingests one pair, spilling first if the budget is exhausted.
func (a *accumulator) add(kv KV) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	err := a.b.Add(kvRec{key: kv.Key, value: kv.Value}, kv.Size())
	if errors.Is(err, extsort.ErrNoDisk) {
		return fmt.Errorf("core: reduce memory budget exhausted and no spill disk configured")
	}
	return err
}

// Count returns the pairs ingested so far.
func (a *accumulator) Count() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.b.Count()
}

// iterate calls fn once per key with all of that key's values (in arrival
// order within each run, runs in spill order then memory). It merges the
// spilled runs with the in-memory pairs; after iteration the spill files
// are removed and the memory reservation is released.
func (a *accumulator) iterate(fn func(key string, values []any) error) error {
	a.mu.Lock()
	buf, bytes, runs := a.b.Drain()
	a.mu.Unlock()

	defer func() {
		if a.mem != nil {
			a.mem.Release(bytes)
		}
		for _, r := range runs {
			_ = a.disk.Remove(r)
		}
	}()

	// Stable sort keeps each key's values in arrival order.
	extsort.SortStable(buf, kvRecCompare)
	emit := func(group []kvRec) error {
		// Copy out of the merge's reused group buffer: reduce tasks hold
		// the values slice beyond this callback.
		values := make([]any, len(group))
		for i, g := range group {
			values[i] = g.value
		}
		return fn(group[0].key, values)
	}

	if len(runs) == 0 {
		// Pure in-memory path: no run files to open.
		return extsort.MergeGrouped(
			[]extsort.Source[kvRec]{extsort.SliceSource(buf)}, kvRecCompare, nil, emit)
	}

	// Merge spilled runs with the in-memory snapshot as one extra "run":
	// on key ties, earlier spills drain first, memory last.
	sources := make([]extsort.Source[kvRec], 0, len(runs)+1)
	readers := make([]*extsort.RunReader[kvRec], 0, len(runs))
	defer func() {
		for _, r := range readers {
			r.Close()
		}
	}()
	for _, name := range runs {
		rr, err := extsort.OpenRunC(a.disk, name, kvFormat{}, a.cc)
		if err != nil {
			return fmt.Errorf("core: open spill run: %w", err)
		}
		readers = append(readers, rr)
		sources = append(sources, rr)
	}
	sources = append(sources, extsort.SliceSource(buf))
	return extsort.MergeGrouped(sources, kvRecCompare, nil, emit)
}
