package stream

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
)

func newCluster(t testing.TB) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Options{NumNodes: 3, Core: core.Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestSourceBuffering(t *testing.T) {
	s := NewSource()
	for i := 0; i < 5; i++ {
		if err := s.PushLine(fmt.Sprintf("e%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 5 || s.Total() != 5 {
		t.Fatalf("Pending=%d Total=%d", s.Pending(), s.Total())
	}
	recs := s.Drain()
	if len(recs) != 5 || s.Pending() != 0 {
		t.Fatalf("drained %d, pending %d", len(recs), s.Pending())
	}
	if s.Total() != 5 {
		t.Fatal("Total changed by drain")
	}
	s.Close()
	if err := s.PushLine("late"); err != ErrClosed {
		t.Fatalf("push after close = %v", err)
	}
	if !s.Closed() {
		t.Fatal("Closed() false")
	}
}

func TestWindowKeyRoundTrip(t *testing.T) {
	w := time.Unix(1_700_000_123, 0)
	key := WindowKey(w, "click")
	got, k, err := SplitWindowKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w) || k != "click" {
		t.Fatalf("round trip = %v, %q", got, k)
	}
	if _, _, err := SplitWindowKey("garbage"); err == nil {
		t.Fatal("garbage window key parsed")
	}
	// Keys containing the separator still round-trip (first ~ wins).
	key2 := WindowKey(w, "a~b")
	_, k2, err := SplitWindowKey(key2)
	if err != nil || k2 != "a~b" {
		t.Fatalf("separator-in-key round trip = %q, %v", k2, err)
	}
}

func TestWindowOf(t *testing.T) {
	base := time.Unix(1000, 500)
	w := WindowOf(base, time.Second)
	if w.Unix() != 1000 || w.Nanosecond() != 0 {
		t.Fatalf("WindowOf = %v", w)
	}
}

func TestExecutorEpochsAccumulate(t *testing.T) {
	c := newCluster(t)
	src := NewSource()
	const table = "totals.test"
	build := func(epoch int, loader core.Loader) (*core.Graph, error) {
		g := core.NewGraph(fmt.Sprintf("epoch%d", epoch))
		ld, err := g.AddLoader("load", loader)
		if err != nil {
			return nil, err
		}
		mp, err := g.AddMap("window", WindowAssign{
			Width: time.Second,
			Keys: func(line string) []core.KV {
				return []core.KV{{Key: strings.Fields(line)[0], Value: int64(1)}}
			},
		})
		if err != nil {
			return nil, err
		}
		pr, err := g.AddPartialReduce("count", Accumulate{Table: table})
		if err != nil {
			return nil, err
		}
		sk, err := g.AddSink("out", core.NewCountSink())
		if err != nil {
			return nil, err
		}
		g.Connect(ld, mp, core.WithRouting(core.RouteLocal))
		g.Connect(mp, pr)
		g.Connect(pr, sk)
		return g, nil
	}
	exec := NewExecutor(c, src, build)

	base := time.Unix(1_700_000_000, 0)
	push := func(epoch int, verb string, n int) {
		for i := 0; i < n; i++ {
			src.Push(Record{
				Time:  base.Add(time.Duration(epoch) * time.Second),
				Value: verb + " payload",
			})
		}
	}
	// Epoch 1: 10 clicks. Epoch 2: 5 clicks + 3 views (same window as
	// epoch 1's? different: shifted a second).
	push(0, "click", 10)
	if n, err := exec.Epoch(); err != nil || n != 10 {
		t.Fatalf("epoch 1: n=%d err=%v", n, err)
	}
	push(1, "click", 5)
	push(1, "view", 3)
	if n, err := exec.Epoch(); err != nil || n != 8 {
		t.Fatalf("epoch 2: n=%d err=%v", n, err)
	}
	if exec.Epochs() != 2 || exec.Records() != 18 {
		t.Fatalf("Epochs=%d Records=%d", exec.Epochs(), exec.Records())
	}

	totals := ReadTotals(c.Store().Table(table), c.NumNodes())
	perVerb := map[string]int64{}
	for wk, n := range totals {
		_, verb, err := SplitWindowKey(wk)
		if err != nil {
			t.Fatal(err)
		}
		perVerb[verb] += n
	}
	if perVerb["click"] != 15 || perVerb["view"] != 3 {
		t.Fatalf("totals = %v", perVerb)
	}
	// Two distinct windows for click (epoch time differs by 1s).
	clickWindows := 0
	for wk := range totals {
		if strings.HasSuffix(wk, "~click") {
			clickWindows++
		}
	}
	if clickWindows != 2 {
		t.Fatalf("click windows = %d, want 2", clickWindows)
	}
}

func TestEmptyEpochRuns(t *testing.T) {
	c := newCluster(t)
	src := NewSource()
	build := func(epoch int, loader core.Loader) (*core.Graph, error) {
		g := core.NewGraph("empty")
		ld, _ := g.AddLoader("load", loader)
		mp, _ := g.AddMap("id", idMapper{})
		sk, _ := g.AddSink("out", core.NewCountSink())
		g.Connect(ld, mp, core.WithRouting(core.RouteLocal))
		g.Connect(mp, sk)
		return g, nil
	}
	exec := NewExecutor(c, src, build)
	if n, err := exec.Epoch(); err != nil || n != 0 {
		t.Fatalf("empty epoch: n=%d err=%v", n, err)
	}
}

type idMapper struct{}

func (idMapper) Map(kv core.KV, ctx core.Context) error { return ctx.Emit(kv) }

func TestBatchLoaderSplitsByNode(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{Time: time.Unix(int64(i), 0), Value: fmt.Sprint(i)}
	}
	l := &batchLoader{records: recs}
	splits, err := l.Plan(&core.Env{NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("%d splits", len(splits))
	}
	total := 0
	for _, sp := range splits {
		total += len(sp.Payload.([]Record))
		if sp.PreferredNode < 0 || sp.PreferredNode > 2 {
			t.Errorf("split preferred node %d", sp.PreferredNode)
		}
	}
	if total != 10 {
		t.Fatalf("splits cover %d records", total)
	}
}
