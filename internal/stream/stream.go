// Package stream adds streaming processing on top of the flowlet engine —
// the paper's claim that one engine and one programming model serve both
// layers of the Lambda architecture (§1, Fig. 1).
//
// The model is micro-batching: an unbounded Source buffers arriving
// records; an Executor drains it every epoch and submits the *same*
// flowlet graph the batch job would use, seeded with that epoch's records.
// Partial-reduce state that must persist across epochs (running counts,
// windows still open) lives in the cluster's kv-store via the Accumulate
// helper.
package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
)

// Record is one stream element: an event timestamp plus a payload line.
type Record struct {
	Time  time.Time
	Value string
}

// Source is an unbounded, thread-safe buffer of records fed by producers
// and drained by the executor once per epoch.
type Source struct {
	mu     sync.Mutex
	buf    []Record
	closed bool
	total  int64
}

// NewSource returns an empty source.
func NewSource() *Source { return &Source{} }

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("stream: source closed")

// Push appends one record.
func (s *Source) Push(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.buf = append(s.buf, r)
	s.total++
	return nil
}

// PushLine appends a record stamped with the current time.
func (s *Source) PushLine(line string) error {
	return s.Push(Record{Time: time.Now(), Value: line})
}

// Drain removes and returns all buffered records.
func (s *Source) Drain() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.buf
	s.buf = nil
	return out
}

// Close marks the stream finished; Pending records remain drainable.
func (s *Source) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Closed reports whether Close was called.
func (s *Source) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Pending returns the number of undrained records.
func (s *Source) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Total returns the number of records ever pushed.
func (s *Source) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// batchLoader feeds one epoch's records into a graph, splitting them
// round-robin across nodes.
type batchLoader struct {
	records []Record
	nodes   int
}

// Plan implements core.Loader.
func (l *batchLoader) Plan(env *core.Env) ([]core.Split, error) {
	n := env.NumNodes
	if n <= 0 {
		n = 1
	}
	chunks := make([][]Record, n)
	for i, r := range l.records {
		chunks[i%n] = append(chunks[i%n], r)
	}
	var splits []core.Split
	for node, c := range chunks {
		if len(c) == 0 {
			continue
		}
		splits = append(splits, core.Split{Payload: c, PreferredNode: node, Size: int64(len(c))})
	}
	if len(splits) == 0 {
		// The engine requires at least one split; an empty epoch still
		// runs the graph (e.g. to age out windows).
		splits = append(splits, core.Split{Payload: []Record(nil), PreferredNode: -1})
	}
	return splits, nil
}

// Load implements core.Loader. Each record is emitted with its event time
// encoded in the key as unix nanoseconds.
func (l *batchLoader) Load(sp core.Split, ctx core.Context) error {
	for _, r := range sp.Payload.([]Record) {
		kv := core.KV{Key: fmt.Sprintf("%d", r.Time.UnixNano()), Value: r.Value}
		if err := ctx.Emit(kv); err != nil {
			return err
		}
	}
	return nil
}

// GraphBuilder constructs the per-epoch graph given the epoch's loader.
// The same builder typically also serves the batch path with a file
// loader — one programming model for both (§1).
type GraphBuilder func(epoch int, loader core.Loader) (*core.Graph, error)

// Executor runs a streaming query as a sequence of micro-batch jobs.
type Executor struct {
	c       *cluster.Cluster
	src     *Source
	build   GraphBuilder
	epoch   int
	records int64
}

// NewExecutor creates an executor over a cluster, source and graph
// builder.
func NewExecutor(c *cluster.Cluster, src *Source, build GraphBuilder) *Executor {
	return &Executor{c: c, src: src, build: build}
}

// Epoch drains the source and runs one micro-batch job. It reports the
// number of records processed.
func (e *Executor) Epoch() (int, error) {
	recs := e.src.Drain()
	g, err := e.build(e.epoch, &batchLoader{records: recs})
	if err != nil {
		return 0, err
	}
	if _, err := e.c.Run(g); err != nil {
		return 0, fmt.Errorf("stream: epoch %d: %w", e.epoch, err)
	}
	e.epoch++
	e.records += int64(len(recs))
	return len(recs), nil
}

// RunUntilClosed keeps executing epochs every interval until the source is
// closed and fully drained.
func (e *Executor) RunUntilClosed(interval time.Duration) error {
	for {
		n, err := e.Epoch()
		if err != nil {
			return err
		}
		if e.src.Closed() && e.src.Pending() == 0 && n >= 0 {
			if e.src.Pending() == 0 && n == 0 {
				return nil
			}
			if e.src.Pending() == 0 {
				// One final empty epoch flushed everything.
				continue
			}
		}
		time.Sleep(interval)
	}
}

// Epochs returns how many epochs have run.
func (e *Executor) Epochs() int { return e.epoch }

// Records returns how many records have been processed.
func (e *Executor) Records() int64 { return e.records }
