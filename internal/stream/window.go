package stream

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/kvstore"
)

// Tumbling windows over event time. WindowKey composes (windowStart, key)
// into one flowlet key so ordinary partial reduces aggregate per window;
// Accumulate persists running aggregates across micro-batch epochs in the
// cluster kv-store.

// WindowOf truncates an event time to its tumbling window start.
func WindowOf(t time.Time, width time.Duration) time.Time {
	return t.Truncate(width)
}

// WindowKey renders a (window, key) pair as "unixnano~key".
func WindowKey(window time.Time, key string) string {
	return fmt.Sprintf("%d~%s", window.UnixNano(), key)
}

// SplitWindowKey parses WindowKey's output.
func SplitWindowKey(s string) (time.Time, string, error) {
	i := strings.IndexByte(s, '~')
	if i <= 0 {
		return time.Time{}, "", fmt.Errorf("stream: bad window key %q", s)
	}
	ns, err := strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return time.Time{}, "", err
	}
	return time.Unix(0, ns), s[i+1:], nil
}

// WindowAssign wraps a per-record key extractor into a Mapper that
// re-keys records by (tumbling window, extracted key). The incoming key
// must be the event time in unix nanoseconds (as batchLoader emits).
type WindowAssign struct {
	Width time.Duration
	// Keys extracts zero or more (key, value) pairs from a record line.
	Keys func(line string) []core.KV
}

// Map implements core.Mapper.
func (w WindowAssign) Map(kv core.KV, ctx core.Context) error {
	ns, err := strconv.ParseInt(kv.Key, 10, 64)
	if err != nil {
		return fmt.Errorf("stream: record key %q is not an event time", kv.Key)
	}
	win := WindowOf(time.Unix(0, ns), w.Width)
	for _, out := range w.Keys(kv.Value.(string)) {
		out.Key = WindowKey(win, out.Key)
		if err := ctx.Emit(out); err != nil {
			return err
		}
	}
	return nil
}

// Accumulate is a partial reduce that folds int64 counts into the cluster
// kv-store so aggregates survive across micro-batch epochs; each epoch it
// emits the updated running total for every touched key.
type Accumulate struct {
	Table string
}

// Update implements core.PartialReducer.
func (Accumulate) Update(key string, state, value any) (any, error) {
	v, ok := value.(int64)
	if !ok {
		return nil, fmt.Errorf("stream: Accumulate got %T", value)
	}
	if state == nil {
		return v, nil
	}
	return state.(int64) + v, nil
}

// Finish implements core.PartialReducer: merge the epoch's delta into the
// persistent running total and emit the new total.
func (a Accumulate) Finish(key string, state any, ctx core.Context) error {
	st, err := hamrapps.Store(ctx)
	if err != nil {
		return err
	}
	table := a.Table
	if table == "" {
		table = "stream.totals"
	}
	total := st.Table(table).LocalUpdate(ctx.Node(), key, func(old any) any {
		if old == nil {
			return state.(int64)
		}
		return old.(int64) + state.(int64)
	})
	return ctx.Emit(core.KV{Key: key, Value: total.(int64)})
}

// ReadTotals reads every accumulated total from a kv-store table
// (driver-side helper for tests and examples).
func ReadTotals(t *kvstore.Table, nodes int) map[string]int64 {
	out := make(map[string]int64)
	for n := 0; n < nodes; n++ {
		for _, k := range t.LocalKeys(n) {
			if v, ok := t.LocalGet(n, k); ok {
				out[k] = v.(int64)
			}
		}
	}
	return out
}
