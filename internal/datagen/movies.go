package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// MoviesConfig controls PUMA-style movie data generation. Each line is
//
//	movie<ID>:u<user>_<rating>,u<user>_<rating>,...
//
// with integer ratings 1..5 — the record format of the PUMA K-Means /
// Classification / Histogram inputs. Movies are generated around K latent
// taste clusters so K-Means has real structure to find, and the per-movie
// rating count varies (popular movies get more ratings).
type MoviesConfig struct {
	Seed           int64
	Movies         int
	Users          int
	Clusters       int // latent clusters used to synthesize ratings
	MinRatings     int
	MaxRatings     int
	RatingSkew     float64 // Zipf exponent over users (who rates a lot)
	PopularitySkew float64 // Zipf exponent over rating-count distribution
}

// FillDefaults replaces zero fields.
func (c *MoviesConfig) FillDefaults() {
	if c.Movies <= 0 {
		c.Movies = 1000
	}
	if c.Users <= 0 {
		c.Users = 200
	}
	if c.Clusters <= 0 {
		c.Clusters = 4
	}
	if c.MinRatings <= 0 {
		c.MinRatings = 5
	}
	if c.MaxRatings <= 0 {
		c.MaxRatings = 30
	}
	if c.MaxRatings < c.MinRatings {
		c.MaxRatings = c.MinRatings
	}
	if c.RatingSkew <= 0 {
		c.RatingSkew = 0.8
	}
	if c.PopularitySkew <= 0 {
		c.PopularitySkew = 1.0
	}
}

// MovieID returns the i-th movie identifier.
func MovieID(i int) string { return fmt.Sprintf("movie%06d", i) }

// Movies generates the dataset as newline-separated records.
func Movies(cfg MoviesConfig) []byte {
	cfg.FillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	userZipf := NewZipf(rng, cfg.Users, cfg.RatingSkew)

	// Latent cluster profiles: each cluster has a preferred mean rating
	// per user block, so movies from the same cluster look similar.
	profiles := make([][]float64, cfg.Clusters)
	for c := range profiles {
		profiles[c] = make([]float64, cfg.Users)
		for u := range profiles[c] {
			profiles[c][u] = 1 + 4*rng.Float64()
		}
	}

	var sb strings.Builder
	for m := 0; m < cfg.Movies; m++ {
		cluster := m % cfg.Clusters
		n := cfg.MinRatings
		if cfg.MaxRatings > cfg.MinRatings {
			n += rng.Intn(cfg.MaxRatings - cfg.MinRatings + 1)
		}
		sb.WriteString(MovieID(m))
		sb.WriteByte(':')
		seen := make(map[int]bool, n)
		wrote := 0
		for wrote < n {
			u := userZipf.Next()
			if seen[u] {
				u = rng.Intn(cfg.Users)
				if seen[u] {
					break // dense movie; accept fewer ratings
				}
			}
			seen[u] = true
			mean := profiles[cluster][u]
			r := int(math.Round(mean + rng.NormFloat64()*0.7))
			if r < 1 {
				r = 1
			}
			if r > 5 {
				r = 5
			}
			if wrote > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "u%d_%d", u, r)
			wrote++
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// MovieRecord is one parsed movie line.
type MovieRecord struct {
	ID      string
	Ratings map[int]float64 // user -> rating
}

// ParseMovie parses one movie line; it returns ok=false for blank or
// malformed lines.
func ParseMovie(line string) (MovieRecord, bool) {
	colon := strings.IndexByte(line, ':')
	if colon <= 0 {
		return MovieRecord{}, false
	}
	rec := MovieRecord{ID: line[:colon], Ratings: make(map[int]float64)}
	body := line[colon+1:]
	if body == "" {
		return rec, true
	}
	for _, ent := range strings.Split(body, ",") {
		us := strings.IndexByte(ent, '_')
		if us <= 1 || ent[0] != 'u' {
			return MovieRecord{}, false
		}
		uid, err := strconv.Atoi(ent[1:us])
		if err != nil {
			return MovieRecord{}, false
		}
		r, err := strconv.Atoi(ent[us+1:])
		if err != nil {
			return MovieRecord{}, false
		}
		rec.Ratings[uid] = float64(r)
	}
	return rec, true
}

// AvgRating returns a movie's mean rating (0 for no ratings).
func (m MovieRecord) AvgRating() float64 {
	if len(m.Ratings) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range m.Ratings {
		sum += r
	}
	return sum / float64(len(m.Ratings))
}

// Cosine returns the cosine similarity of the movie's sparse rating vector
// with a centroid vector.
func (m MovieRecord) Cosine(centroid map[int]float64) float64 {
	var dot, nm, nc float64
	for u, r := range m.Ratings {
		nm += r * r
		if c, ok := centroid[u]; ok {
			dot += r * c
		}
	}
	for _, c := range centroid {
		nc += c * c
	}
	if nm == 0 || nc == 0 {
		return 0
	}
	return dot / (math.Sqrt(nm) * math.Sqrt(nc))
}

// InitialCentroids deterministically picks k centroid vectors from the
// dataset (every (movies/k)-th record), the usual PUMA seeding.
func InitialCentroids(data []byte, k int) []map[int]float64 {
	lines := strings.Split(string(data), "\n")
	var recs []MovieRecord
	for _, l := range lines {
		if rec, ok := ParseMovie(l); ok && len(rec.Ratings) > 0 {
			recs = append(recs, rec)
		}
	}
	if k <= 0 || len(recs) == 0 {
		return nil
	}
	cents := make([]map[int]float64, 0, k)
	step := len(recs) / k
	if step == 0 {
		step = 1
	}
	for i := 0; i < k && i*step < len(recs); i++ {
		cents = append(cents, recs[i*step].Ratings)
	}
	return cents
}
