// Package datagen generates the paper's benchmark inputs, scaled down but
// with the same formats and statistical shapes: PUMA-style movie/rating
// data (K-Means, Classification, HistogramMovies, HistogramRatings),
// HiBench-style Zipfian text (WordCount, NaiveBayes) and Zipfian-linked
// web graphs (PageRank), and R-MAT graphs (K-Cliques).
//
// All generators are deterministic functions of their seed.
package datagen

import (
	"math"
	"math/rand"
)

// Zipf draws integers in [0, n) with P(k) proportional to 1/(k+1)^s,
// deterministic under its seed. It is a small rejection-free inverse-CDF
// sampler (the stdlib rand.Zipf needs s > 1; the benchmarks commonly use
// s values at or below 1, so we build our own table).
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf creates a sampler over n items with exponent s (> 0).
func NewZipf(rng *rand.Rand, n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1.0 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next draws one sample.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the sampler's domain size.
func (z *Zipf) N() int { return len(z.cdf) }
