package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// TextConfig controls Zipfian text generation (HiBench RandomTextWriter
// analogue): words are drawn from a synthetic vocabulary with Zipfian
// frequency, the distribution the paper's WordCount and NaiveBayes inputs
// follow.
type TextConfig struct {
	Seed         int64
	Vocabulary   int     // distinct words
	WordsPerLine int     // words per line
	Lines        int     // lines to generate
	Skew         float64 // Zipf exponent (1.0 ≈ natural language)
}

// FillDefaults replaces zero fields.
func (c *TextConfig) FillDefaults() {
	if c.Vocabulary <= 0 {
		c.Vocabulary = 1000
	}
	if c.WordsPerLine <= 0 {
		c.WordsPerLine = 10
	}
	if c.Lines <= 0 {
		c.Lines = 1000
	}
	if c.Skew <= 0 {
		c.Skew = 1.0
	}
}

// Word returns the k-th vocabulary word.
func Word(k int) string { return fmt.Sprintf("w%05d", k) }

// Text generates the whole corpus as one byte slice of newline-separated
// lines.
func Text(cfg TextConfig) []byte {
	cfg.FillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := NewZipf(rng, cfg.Vocabulary, cfg.Skew)
	var sb strings.Builder
	sb.Grow(cfg.Lines * cfg.WordsPerLine * 7)
	for l := 0; l < cfg.Lines; l++ {
		for w := 0; w < cfg.WordsPerLine; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(Word(z.Next()))
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// DocsConfig controls labeled-document generation for NaiveBayes training
// (the HiBench generator draws document words from a Zipfian distribution
// and assigns class labels).
type DocsConfig struct {
	Seed        int64
	Labels      int
	Vocabulary  int
	WordsPerDoc int
	Docs        int
	Skew        float64
}

// FillDefaults replaces zero fields.
func (c *DocsConfig) FillDefaults() {
	if c.Labels <= 0 {
		c.Labels = 4
	}
	if c.Vocabulary <= 0 {
		c.Vocabulary = 500
	}
	if c.WordsPerDoc <= 0 {
		c.WordsPerDoc = 20
	}
	if c.Docs <= 0 {
		c.Docs = 500
	}
	if c.Skew <= 0 {
		c.Skew = 1.0
	}
}

// Label returns the i-th class label.
func Label(i int) string { return fmt.Sprintf("class%02d", i) }

// Docs generates labeled documents, one per line: "label<TAB>w w w ...".
// Each label biases its word distribution by a per-label offset so the
// classes are actually separable.
func Docs(cfg DocsConfig) []byte {
	cfg.FillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := NewZipf(rng, cfg.Vocabulary, cfg.Skew)
	var sb strings.Builder
	for d := 0; d < cfg.Docs; d++ {
		label := rng.Intn(cfg.Labels)
		sb.WriteString(Label(label))
		sb.WriteByte('\t')
		for w := 0; w < cfg.WordsPerDoc; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			// Shift the Zipf draw by a label-specific offset.
			word := (z.Next() + label*37) % cfg.Vocabulary
			sb.WriteString(Word(word))
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}
