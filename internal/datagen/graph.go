package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// WebGraphConfig controls hyperlink-graph generation for PageRank. Link
// targets follow a Zipfian distribution (the paper: "automatically
// generated Web data whose hyperlinks follow the Zipfian distribution",
// HiBench's PageRank generator).
type WebGraphConfig struct {
	Seed     int64
	Pages    int
	OutLinks int     // average out-degree
	Skew     float64 // Zipf exponent over target popularity
}

// FillDefaults replaces zero fields.
func (c *WebGraphConfig) FillDefaults() {
	if c.Pages <= 0 {
		c.Pages = 1000
	}
	if c.OutLinks <= 0 {
		c.OutLinks = 8
	}
	if c.Skew <= 0 {
		c.Skew = 0.9
	}
}

// WebGraph generates an edge list, one "src dst" pair per line. Every page
// has at least one out-link (no dangling pages), duplicate edges are
// suppressed per source.
func WebGraph(cfg WebGraphConfig) []byte {
	cfg.FillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := NewZipf(rng, cfg.Pages, cfg.Skew)
	var sb strings.Builder
	for src := 0; src < cfg.Pages; src++ {
		n := 1 + rng.Intn(cfg.OutLinks*2-1) // mean ≈ OutLinks
		seen := make(map[int]bool, n)
		for i := 0; i < n; i++ {
			dst := z.Next()
			if dst == src || seen[dst] {
				continue
			}
			seen[dst] = true
			fmt.Fprintf(&sb, "%d %d\n", src, dst)
		}
		if len(seen) == 0 {
			dst := (src + 1) % cfg.Pages
			fmt.Fprintf(&sb, "%d %d\n", src, dst)
		}
	}
	return []byte(sb.String())
}

// RMATConfig controls R-MAT graph generation (the generator package the
// paper uses for the K-Cliques input). The defaults are the conventional
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05).
type RMATConfig struct {
	Seed       int64
	Scale      int // 2^Scale vertices
	Edges      int
	A, B, C, D float64
}

// FillDefaults replaces zero fields.
func (c *RMATConfig) FillDefaults() {
	if c.Scale <= 0 {
		c.Scale = 10
	}
	if c.Edges <= 0 {
		c.Edges = 8 << c.Scale
	}
	if c.A == 0 && c.B == 0 && c.C == 0 && c.D == 0 {
		c.A, c.B, c.C, c.D = 0.57, 0.19, 0.19, 0.05
	}
}

// RMAT generates an undirected edge list ("u v" per line, u < v,
// deduplicated, no self loops). The requested edge count is an upper
// bound; collisions shrink it slightly, as in the reference generator.
func RMAT(cfg RMATConfig) []byte {
	cfg.FillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 1 << cfg.Scale
	type edge struct{ u, v int }
	seen := make(map[edge]bool, cfg.Edges)
	var sb strings.Builder
	for i := 0; i < cfg.Edges; i++ {
		u, v := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// upper-left: neither bit set
			case r < cfg.A+cfg.B:
				v |= bit
			case r < cfg.A+cfg.B+cfg.C:
				u |= bit
			default:
				u |= bit
				v |= bit
			}
		}
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := edge{u, v}
		if seen[e] {
			continue
		}
		seen[e] = true
		fmt.Fprintf(&sb, "%d %d\n", u, v)
	}
	return []byte(sb.String())
}

// CliqueTestGraph builds a small deterministic graph with known cliques
// for correctness tests: a clique of size k on vertices [0,k) plus a
// sparse ring over the rest.
func CliqueTestGraph(k, extra int) []byte {
	var sb strings.Builder
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			fmt.Fprintf(&sb, "%d %d\n", i, j)
		}
	}
	for i := 0; i < extra; i++ {
		a := k + i
		b := k + (i+1)%extra
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		fmt.Fprintf(&sb, "%d %d\n", a, b)
	}
	return []byte(sb.String())
}
