package datagen

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestZipfDeterministicAndInRange(t *testing.T) {
	mk := func() *Zipf { return NewZipf(rand.New(rand.NewSource(7)), 100, 1.0) }
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("sample %d: %d != %d under same seed", i, va, vb)
		}
		if va < 0 || va >= 100 {
			t.Fatalf("sample out of range: %d", va)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 1000, 1.0)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank-0 frequency should be about 1/H(1000) ~ 13%, and clearly above
	// rank 9 which should be ~10x rarer.
	if counts[0] < n/20 {
		t.Errorf("rank 0 drawn %d times of %d, too uniform", counts[0], n)
	}
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Errorf("rank0/rank9 ratio %.1f, want ~10 for s=1", ratio)
	}
}

// Property: any (n, s) gives in-range samples and the sampler is a pure
// function of its seed.
func TestZipfProperty(t *testing.T) {
	f := func(nRaw uint16, sRaw uint8, seed int64) bool {
		n := int(nRaw)%500 + 1
		s := float64(sRaw%30)/10 + 0.1
		a := NewZipf(rand.New(rand.NewSource(seed)), n, s)
		b := NewZipf(rand.New(rand.NewSource(seed)), n, s)
		for i := 0; i < 50; i++ {
			va, vb := a.Next(), b.Next()
			if va != vb || va < 0 || va >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestTextShape(t *testing.T) {
	cfg := TextConfig{Seed: 1, Vocabulary: 50, WordsPerLine: 7, Lines: 200}
	data := Text(cfg)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 200 {
		t.Fatalf("%d lines", len(lines))
	}
	for i, l := range lines {
		words := strings.Fields(l)
		if len(words) != 7 {
			t.Fatalf("line %d has %d words", i, len(words))
		}
		for _, w := range words {
			if !strings.HasPrefix(w, "w") {
				t.Fatalf("bad word %q", w)
			}
			k, err := strconv.Atoi(w[1:])
			if err != nil || k < 0 || k >= 50 {
				t.Fatalf("word %q out of vocabulary", w)
			}
		}
	}
	if !bytes.Equal(data, Text(cfg)) {
		t.Fatal("Text not deterministic")
	}
}

func TestDocsShape(t *testing.T) {
	cfg := DocsConfig{Seed: 2, Labels: 3, Vocabulary: 40, WordsPerDoc: 9, Docs: 100}
	data := Docs(cfg)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 100 {
		t.Fatalf("%d docs", len(lines))
	}
	labels := map[string]bool{}
	for _, l := range lines {
		tab := strings.IndexByte(l, '\t')
		if tab <= 0 {
			t.Fatalf("doc without label: %q", l)
		}
		labels[l[:tab]] = true
		if n := len(strings.Fields(l[tab+1:])); n != 9 {
			t.Fatalf("doc has %d words", n)
		}
	}
	if len(labels) != 3 {
		t.Fatalf("%d distinct labels, want 3", len(labels))
	}
}

func TestMoviesParseRoundTrip(t *testing.T) {
	cfg := MoviesConfig{Seed: 3, Movies: 150, Users: 40, MinRatings: 3, MaxRatings: 12}
	data := Movies(cfg)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 150 {
		t.Fatalf("%d movies", len(lines))
	}
	ids := map[string]bool{}
	for _, l := range lines {
		rec, ok := ParseMovie(l)
		if !ok {
			t.Fatalf("unparsable record %q", l)
		}
		if ids[rec.ID] {
			t.Fatalf("duplicate movie id %s", rec.ID)
		}
		ids[rec.ID] = true
		if len(rec.Ratings) == 0 {
			t.Fatalf("movie %s has no ratings", rec.ID)
		}
		for u, r := range rec.Ratings {
			if u < 0 || u >= 40 {
				t.Fatalf("user %d out of range", u)
			}
			if r < 1 || r > 5 {
				t.Fatalf("rating %v out of range", r)
			}
		}
		avg := rec.AvgRating()
		if avg < 1 || avg > 5 {
			t.Fatalf("avg %v out of range", avg)
		}
	}
	if !bytes.Equal(data, Movies(cfg)) {
		t.Fatal("Movies not deterministic")
	}
}

func TestParseMovieRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "noseparator", ":u1_5", "m1:x1_5", "m1:u1-5", "m1:u1_x"} {
		if _, ok := ParseMovie(bad); ok && bad != ":u1_5" {
			if bad == "" || bad == "noseparator" || strings.HasPrefix(bad, "m1:") {
				t.Errorf("ParseMovie(%q) accepted", bad)
			}
		}
	}
	if _, ok := ParseMovie("movie1:"); !ok {
		t.Error("movie with zero ratings should parse")
	}
}

func TestCosine(t *testing.T) {
	rec := MovieRecord{ID: "m", Ratings: map[int]float64{1: 3, 2: 4}}
	if got := rec.Cosine(rec.Ratings); math.Abs(got-1) > 1e-12 {
		t.Errorf("self cosine = %v", got)
	}
	if got := rec.Cosine(map[int]float64{3: 5}); got != 0 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := rec.Cosine(nil); got != 0 {
		t.Errorf("empty centroid cosine = %v", got)
	}
}

func TestInitialCentroids(t *testing.T) {
	data := Movies(MoviesConfig{Seed: 5, Movies: 100, Users: 30})
	cents := InitialCentroids(data, 4)
	if len(cents) != 4 {
		t.Fatalf("%d centroids", len(cents))
	}
	for i, c := range cents {
		if len(c) == 0 {
			t.Errorf("centroid %d empty", i)
		}
	}
	if got := InitialCentroids(nil, 4); got != nil {
		t.Errorf("centroids from no data: %v", got)
	}
}

func TestWebGraphShape(t *testing.T) {
	cfg := WebGraphConfig{Seed: 6, Pages: 200, OutLinks: 5}
	data := WebGraph(cfg)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	outdeg := map[int]int{}
	indeg := map[int]int{}
	type edge struct{ s, d int }
	seen := map[edge]bool{}
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) != 2 {
			t.Fatalf("bad edge %q", l)
		}
		s, _ := strconv.Atoi(f[0])
		d, _ := strconv.Atoi(f[1])
		if s < 0 || s >= 200 || d < 0 || d >= 200 || s == d {
			t.Fatalf("edge out of range or self loop: %q", l)
		}
		if seen[edge{s, d}] {
			t.Fatalf("duplicate edge %q", l)
		}
		seen[edge{s, d}] = true
		outdeg[s]++
		indeg[d]++
	}
	if len(outdeg) != 200 {
		t.Fatalf("%d pages have out-links, want all 200", len(outdeg))
	}
	// Zipfian in-degree: page 0 should have far more in-links than the
	// median page.
	if indeg[0] < 20 {
		t.Errorf("page 0 in-degree %d, want heavy head", indeg[0])
	}
	if !bytes.Equal(data, WebGraph(cfg)) {
		t.Fatal("WebGraph not deterministic")
	}
}

func TestRMATShape(t *testing.T) {
	cfg := RMATConfig{Seed: 7, Scale: 7, Edges: 500}
	data := RMAT(cfg)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || len(lines) > 500 {
		t.Fatalf("%d edges", len(lines))
	}
	type edge struct{ u, v int }
	seen := map[edge]bool{}
	for _, l := range lines {
		f := strings.Fields(l)
		u, _ := strconv.Atoi(f[0])
		v, _ := strconv.Atoi(f[1])
		if u >= v {
			t.Fatalf("edge not canonical: %q", l)
		}
		if u < 0 || v >= 128 {
			t.Fatalf("vertex out of range: %q", l)
		}
		if seen[edge{u, v}] {
			t.Fatalf("duplicate edge %q", l)
		}
		seen[edge{u, v}] = true
	}
	if !bytes.Equal(data, RMAT(cfg)) {
		t.Fatal("RMAT not deterministic")
	}
}

func TestCliqueTestGraph(t *testing.T) {
	data := CliqueTestGraph(4, 6)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	// K(4) has 6 edges, ring over 6 has 6 edges (5 unique after i==j skip).
	if len(lines) < 10 {
		t.Fatalf("%d edges", len(lines))
	}
	adj := map[int]map[int]bool{}
	for _, l := range lines {
		f := strings.Fields(l)
		u, _ := strconv.Atoi(f[0])
		v, _ := strconv.Atoi(f[1])
		if adj[u] == nil {
			adj[u] = map[int]bool{}
		}
		if adj[v] == nil {
			adj[v] = map[int]bool{}
		}
		adj[u][v], adj[v][u] = true, true
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && !adj[i][j] {
				t.Fatalf("clique edge %d-%d missing", i, j)
			}
		}
	}
}
