package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/hdfs"
	"github.com/hamr-go/hamr/internal/kvstore"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
	"github.com/hamr-go/hamr/internal/yarn"
)

func TestNewWiresServices(t *testing.T) {
	c, err := New(Options{NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.NumNodes() != 3 || len(c.Nodes()) != 3 || len(c.Disks()) != 3 {
		t.Fatal("geometry wrong")
	}
	for i, rt := range c.Nodes() {
		if _, ok := rt.Service(ServiceHDFS).(*hdfs.FileSystem); !ok {
			t.Errorf("node %d missing hdfs service", i)
		}
		if _, ok := rt.Service(ServiceKVStore).(*kvstore.Store); !ok {
			t.Errorf("node %d missing kvstore service", i)
		}
		if d, ok := rt.Service(ServiceDisk).(storage.Disk); !ok || d != c.Disk(i) {
			t.Errorf("node %d disk service wrong", i)
		}
	}
	if c.Yarn() == nil || c.Store() == nil || c.FS() == nil || c.Metrics() == nil {
		t.Fatal("cluster handles missing")
	}
}

func TestLocalTextRoundTrip(t *testing.T) {
	c, err := New(Options{NumNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteLocalText(1, "f.txt", []byte("on node one")); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadLocalText(1, "f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "on node one" {
		t.Fatalf("read %q", data)
	}
	if _, err := c.ReadLocalText(0, "f.txt"); err == nil {
		t.Fatal("file visible from the wrong node's disk")
	}
}

func TestChargeNetSerializesPerReceiver(t *testing.T) {
	model := transport.CostModel{BytesPerSec: 10 << 20} // 10 MB/s
	c, err := New(Options{NumNodes: 3, NetModel: &model})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Two concurrent 512KiB transfers to the SAME receiver must serialize
	// (>= ~100ms); to different receivers they overlap (< ~100ms).
	elapsed := func(to1, to2 transport.NodeID) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for _, to := range []transport.NodeID{to1, to2} {
			wg.Add(1)
			go func(to transport.NodeID) {
				defer wg.Done()
				c.ChargeNet(2, to, 512<<10)
			}(to)
		}
		wg.Wait()
		return time.Since(start)
	}
	same := elapsed(0, 0)
	diff := elapsed(0, 1)
	if same < 90*time.Millisecond {
		t.Errorf("same-receiver transfers took %v, want >= ~100ms", same)
	}
	if diff > same {
		t.Errorf("different receivers (%v) slower than same receiver (%v)", diff, same)
	}
}

func TestChargeNetSelfIsFree(t *testing.T) {
	model := transport.CostModel{BytesPerSec: 1} // absurdly slow
	c, err := New(Options{NumNodes: 2, NetModel: &model})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.ChargeNet(1, 1, 1<<30)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("self transfer charged")
	}
}

func TestRunJobOnCluster(t *testing.T) {
	c, err := New(Options{NumNodes: 4, Core: core.Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Store input in HDFS, run a job whose loader reads it back via the
	// hdfs service — exercises the full service wiring.
	content := "red green blue\nred blue\nblue\n"
	if err := c.FS().WriteFile("in/colors.txt", []byte(content), -1); err != nil {
		t.Fatal(err)
	}

	g := core.NewGraph("colors")
	sink := core.NewCollectSink()
	ld, _ := g.AddLoader("load", &hdfsLoader{prefix: "in/"})
	mp, _ := g.AddMap("split", splitter{})
	pr, _ := g.AddPartialReduce("count", summer{})
	sk, _ := g.AddSink("out", sink)
	g.Connect(ld, mp)
	g.Connect(mp, pr)
	g.Connect(pr, sk)

	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, kv := range sink.Pairs() {
		got[kv.Key] += kv.Value.(int64)
	}
	if got["blue"] != 3 || got["red"] != 2 || got["green"] != 1 {
		t.Fatalf("counts = %v", got)
	}
}

func TestYarnIntegration(t *testing.T) {
	c, err := New(Options{NumNodes: 2, YarnMemMB: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ct, err := c.Yarn().Allocate(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Node != 0 {
		t.Errorf("container on node %d", ct.Node)
	}
	c.Yarn().Release(ct)
	if _, err := c.Yarn().Allocate(101, -1); err == nil {
		t.Error("oversized container granted")
	}
	var ye *yarn.Scheduler = c.Yarn()
	_ = ye
}

// hdfsLoader reads lines of all files under a prefix.
type hdfsLoader struct{ prefix string }

func (l *hdfsLoader) Plan(env *core.Env) ([]core.Split, error) {
	fs := env.Service(ServiceHDFS).(*hdfs.FileSystem)
	splits, err := fs.SplitsGlob(l.prefix)
	if err != nil {
		return nil, err
	}
	out := make([]core.Split, len(splits))
	for i, sp := range splits {
		pref := -1
		if len(sp.Hosts) > 0 {
			pref = int(sp.Hosts[0])
		}
		out[i] = core.Split{Payload: sp, PreferredNode: pref}
	}
	return out, nil
}

func (l *hdfsLoader) Load(sp core.Split, ctx core.Context) error {
	fs := ctx.Service(ServiceHDFS).(*hdfs.FileSystem)
	it, err := fs.OpenLines(sp.Payload.(hdfs.Split), transport.NodeID(ctx.Node()), 0)
	if err != nil {
		return err
	}
	for {
		line, _, ok := it.Next()
		if !ok {
			return nil
		}
		if err := ctx.Emit(core.KV{Value: line}); err != nil {
			return err
		}
	}
}

type splitter struct{}

func (splitter) Map(kv core.KV, ctx core.Context) error {
	for _, w := range strings.Fields(kv.Value.(string)) {
		if err := ctx.Emit(core.KV{Key: w, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

type summer struct{}

func (summer) Update(key string, state, value any) (any, error) {
	if state == nil {
		return value, nil
	}
	return state.(int64) + value.(int64), nil
}

func (summer) Finish(key string, state any, ctx core.Context) error {
	return ctx.Emit(core.KV{Key: key, Value: state})
}

func TestHDFSCacheWiring(t *testing.T) {
	// HDFSCacheMB > 0 enables the block cache: a read-after-write hits.
	c, err := New(Options{NumNodes: 2, HDFSBlockSize: 64, HDFSCacheMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := []byte(strings.Repeat("cache wiring ", 20))
	if err := c.FS().WriteFile("f", data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FS().ReadFile("f", 0); err != nil {
		t.Fatal(err)
	}
	if v := c.Metrics().Counter("hdfs.cache.hits").Value(); v == 0 {
		t.Error("HDFSCacheMB=1 cluster recorded no cache hits")
	}

	// HDFSCacheMB < 0 sizes the budget from node memory (YarnMemMB/4):
	// the cache must be on.
	auto, err := New(Options{NumNodes: 2, HDFSBlockSize: 64, HDFSCacheMB: -1, YarnMemMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	if err := auto.FS().WriteFile("f", data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := auto.FS().ReadFile("f", 0); err != nil {
		t.Fatal(err)
	}
	if v := auto.Metrics().Counter("hdfs.cache.hits").Value(); v == 0 {
		t.Error("HDFSCacheMB=-1 (auto) cluster recorded no cache hits")
	}

	// The default (0) keeps the cache off and creates no cache counters.
	off, err := New(Options{NumNodes: 2, HDFSBlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if err := off.FS().WriteFile("f", data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := off.FS().ReadFile("f", 0); err != nil {
		t.Fatal(err)
	}
	for name := range off.Metrics().Snapshot().Counters {
		if strings.HasPrefix(name, "hdfs.cache.") {
			t.Errorf("cache-off cluster created counter %s", name)
		}
	}
}
