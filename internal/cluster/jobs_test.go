package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/core"
)

// linesLoader plans a fixed number of splits and deals the lines across
// them round-robin, so the emitted corpus is deterministic regardless of
// which node runs which split.
type linesLoader struct {
	lines  []string
	splits int
}

func (l *linesLoader) Plan(env *core.Env) ([]core.Split, error) {
	out := make([]core.Split, l.splits)
	for i := range out {
		out[i] = core.Split{Payload: i, PreferredNode: i % env.NumNodes}
	}
	return out, nil
}

func (l *linesLoader) Load(sp core.Split, ctx core.Context) error {
	idx := sp.Payload.(int)
	for j := idx; j < len(l.lines); j += l.splits {
		if err := ctx.Emit(core.KV{Value: l.lines[j]}); err != nil {
			return err
		}
	}
	return nil
}

// testCorpus is word-count input with a deterministic shape.
func testCorpus(lines int) []string {
	words := []string{"ant", "bee", "cat", "dog", "elk", "fox"}
	out := make([]string, lines)
	for i := range out {
		out[i] = words[i%len(words)] + " " + words[(i*7+3)%len(words)] + " " + words[(i*3+1)%len(words)]
	}
	return out
}

// wordGraph builds a loader→map→partial-reduce→sink word count over the
// given corpus. Every call builds a fresh graph (sinks are per-job).
func wordGraph(t testing.TB, corpus []string, splits int) (*core.Graph, *core.CollectSink) {
	t.Helper()
	g := core.NewGraph("wc")
	sink := core.NewCollectSink()
	ld, err := g.AddLoader("load", &linesLoader{lines: corpus, splits: splits})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := g.AddMap("split", splitter{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := g.AddPartialReduce("count", summer{})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := g.AddSink("out", sink)
	if err != nil {
		t.Fatal(err)
	}
	g.Connect(ld, mp)
	g.Connect(mp, pr)
	g.Connect(pr, sk)
	return g, sink
}

func sinkCounts(sink *core.CollectSink) map[string]int64 {
	got := map[string]int64{}
	for _, kv := range sink.Pairs() {
		got[kv.Key] += kv.Value.(int64)
	}
	return got
}

// TestConcurrentJobsIsolatedMetrics is the headline isolation check: four
// identical jobs overlapping on one cluster each report exactly the
// per-job metric deltas a solo run reports, and identical outputs.
func TestConcurrentJobsIsolatedMetrics(t *testing.T) {
	corpus := testCorpus(200)
	const jobs = 4

	solo, err := New(Options{NumNodes: 3, Core: core.Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	g, sink := wordGraph(t, corpus, 6)
	soloRes, err := solo.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	soloCounters := soloRes.Metrics.Counters
	soloCounts := sinkCounts(sink)
	solo.Close()
	if len(soloCounters) == 0 {
		t.Fatal("solo run reported no per-job counters")
	}

	c, err := New(Options{
		NumNodes:          3,
		MaxConcurrentJobs: jobs,
		JobQueueDepth:     jobs,
		Core:              core.Config{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	handles := make([]*JobHandle, jobs)
	sinks := make([]*core.CollectSink, jobs)
	for i := range handles {
		gi, si := wordGraph(t, corpus, 6)
		sinks[i] = si
		h, err := c.Submit(context.Background(), gi)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !reflect.DeepEqual(res.Metrics.Counters, soloCounters) {
			t.Errorf("job %d counters diverge from solo:\n solo: %v\n job:  %v",
				i, soloCounters, res.Metrics.Counters)
		}
		if got := sinkCounts(sinks[i]); !reflect.DeepEqual(got, soloCounts) {
			t.Errorf("job %d output differs from solo", i)
		}
		if h.Status() != JobDone {
			t.Errorf("job %d status after Wait = %v", i, h.Status())
		}
	}
	st := c.Jobs().Stats()
	if st.Submitted != jobs || st.Completed != jobs || st.Canceled != 0 || st.Rejected != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// slowLoader emits pairs until canceled, signaling once the first emit
// landed so the test can cancel genuinely mid-load.
type slowLoader struct {
	started   chan struct{}
	startOnce sync.Once
}

func (l *slowLoader) Plan(env *core.Env) ([]core.Split, error) {
	out := make([]core.Split, env.NumNodes)
	for i := range out {
		out[i] = core.Split{Payload: i, PreferredNode: i}
	}
	return out, nil
}

func (l *slowLoader) Load(sp core.Split, ctx core.Context) error {
	for i := 0; i < 20000; i++ {
		if err := ctx.Emit(core.KV{Key: fmt.Sprintf("k%d", i%32), Value: int64(1)}); err != nil {
			return err
		}
		l.startOnce.Do(func() { close(l.started) })
		time.Sleep(time.Millisecond)
	}
	return nil
}

func slowGraph(t testing.TB, ld *slowLoader) *core.Graph {
	t.Helper()
	g := core.NewGraph("slow")
	l, err := g.AddLoader("load", ld)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := g.AddPartialReduce("count", summer{})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := g.AddSink("out", core.NewCollectSink())
	if err != nil {
		t.Fatal(err)
	}
	g.Connect(l, pr)
	g.Connect(pr, sk)
	return g
}

// TestCancelMidRunReleasesContainers cancels a job mid-load and checks the
// three cancellation contracts: Wait returns a typed error in bounded
// time, the YARN ledger balances (granted == released + revoked), and the
// manager counts the job as canceled.
func TestCancelMidRunReleasesContainers(t *testing.T) {
	c, err := New(Options{
		NumNodes:          2,
		YarnMemMB:         1024,
		MaxConcurrentJobs: 2,
		JobQueueDepth:     4,
		JobMemMB:          256,
		Core:              core.Config{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ld := &slowLoader{started: make(chan struct{})}
	h, err := c.Submit(context.Background(), slowGraph(t, ld))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ld.started:
	case <-time.After(10 * time.Second):
		t.Fatal("loader never started")
	}
	h.Cancel()

	select {
	case <-h.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("canceled job did not settle in bounded time")
	}
	if _, err := h.Wait(); !errors.Is(err, core.ErrJobCanceled) {
		t.Fatalf("Wait after Cancel = %v, want ErrJobCanceled", err)
	}
	if _, err := h.Result(); !errors.Is(err, core.ErrJobCanceled) {
		t.Fatalf("Result after Cancel: err = %v, want ErrJobCanceled", err)
	}

	granted, _, released := c.Yarn().Stats()
	revoked := c.Yarn().Revoked()
	if granted == 0 {
		t.Fatal("JobMemMB set but no containers granted")
	}
	if granted != released+revoked {
		t.Fatalf("container leak: granted %d, released %d, revoked %d", granted, released, revoked)
	}
	if st := c.Jobs().Stats(); st.Canceled != 1 {
		t.Errorf("stats = %+v, want Canceled=1", st)
	}
}

// gateLoader blocks every split on a shared gate, so a test can hold a job
// "running" deterministically.
type gateLoader struct {
	gate    chan struct{}
	running chan struct{}
	once    sync.Once
}

func (l *gateLoader) Plan(env *core.Env) ([]core.Split, error) {
	return []core.Split{{PreferredNode: 0}}, nil
}

func (l *gateLoader) Load(sp core.Split, ctx core.Context) error {
	l.once.Do(func() { close(l.running) })
	<-l.gate
	return ctx.Emit(core.KV{Key: "done", Value: int64(1)})
}

func gateGraph(t testing.TB, ld *gateLoader) *core.Graph {
	t.Helper()
	g := core.NewGraph("gated")
	l, err := g.AddLoader("load", ld)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := g.AddSink("out", core.NewCollectSink())
	if err != nil {
		t.Fatal(err)
	}
	g.Connect(l, sk)
	return g
}

// TestSubmitQueueFull fills the admission queue and checks the overflow
// submission is rejected with ErrQueueFull without deadlocking anything.
func TestSubmitQueueFull(t *testing.T) {
	c, err := New(Options{
		NumNodes:          1,
		MaxConcurrentJobs: 1,
		JobQueueDepth:     1,
		Core:              core.Config{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gate := make(chan struct{})
	ld1 := &gateLoader{gate: gate, running: make(chan struct{})}
	h1, err := c.Submit(context.Background(), gateGraph(t, ld1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ld1.running:
	case <-time.After(10 * time.Second):
		t.Fatal("first job never started")
	}

	ld2 := &gateLoader{gate: gate, running: make(chan struct{})}
	h2, err := c.Submit(context.Background(), gateGraph(t, ld2))
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.Status(); got != JobQueued {
		t.Fatalf("second job status = %v, want queued", got)
	}

	ld3 := &gateLoader{gate: gate, running: make(chan struct{})}
	if _, err := c.Submit(context.Background(), gateGraph(t, ld3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit = %v, want ErrQueueFull", err)
	}
	if st := c.Jobs().Stats(); st.Rejected != 1 {
		t.Errorf("stats = %+v, want Rejected=1", st)
	}

	close(gate)
	for i, h := range []*JobHandle{h1, h2} {
		if _, err := h.Wait(); err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}

// TestSubmitContextCancel cancels the submission context of a queued job
// and checks the handle settles with ErrJobCanceled.
func TestSubmitContextCancel(t *testing.T) {
	c, err := New(Options{
		NumNodes:          1,
		MaxConcurrentJobs: 1,
		JobQueueDepth:     2,
		Core:              core.Config{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gate := make(chan struct{})
	ld1 := &gateLoader{gate: gate, running: make(chan struct{})}
	h1, err := c.Submit(context.Background(), gateGraph(t, ld1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ld1.running:
	case <-time.After(10 * time.Second):
		t.Fatal("first job never started")
	}

	ctx, cancel := context.WithCancel(context.Background())
	ld2 := &gateLoader{gate: gate, running: make(chan struct{})}
	h2, err := c.Submit(ctx, gateGraph(t, ld2))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-h2.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("ctx-canceled queued job did not settle")
	}
	if _, err := h2.Wait(); !errors.Is(err, core.ErrJobCanceled) {
		t.Fatalf("Wait = %v, want ErrJobCanceled", err)
	}

	close(gate)
	if _, err := h1.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSerialRunMatchesSubmitWait: Run is a thin Submit+Wait, so both paths
// on the same cluster report identical outputs and per-job counters.
func TestSerialRunMatchesSubmitWait(t *testing.T) {
	c, err := New(Options{NumNodes: 2, Core: core.Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	corpus := testCorpus(120)

	g1, s1 := wordGraph(t, corpus, 4)
	res1, err := c.Run(g1)
	if err != nil {
		t.Fatal(err)
	}
	g2, s2 := wordGraph(t, corpus, 4)
	h, err := c.Submit(context.Background(), g2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Metrics.Counters, res2.Metrics.Counters) {
		t.Errorf("Run and Submit+Wait counters differ:\n run:    %v\n submit: %v",
			res1.Metrics.Counters, res2.Metrics.Counters)
	}
	if !reflect.DeepEqual(sinkCounts(s1), sinkCounts(s2)) {
		t.Error("Run and Submit+Wait outputs differ")
	}
}

// TestSubmitRejectsInvalidGraph: malformed graphs fail the Submit call
// itself with ErrGraphInvalid, not a handle the caller must Wait on.
func TestSubmitRejectsInvalidGraph(t *testing.T) {
	c, err := New(Options{NumNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(context.Background(), nil); !errors.Is(err, core.ErrGraphInvalid) {
		t.Errorf("nil graph: %v, want ErrGraphInvalid", err)
	}
	if _, err := c.Submit(context.Background(), core.NewGraph("empty")); !errors.Is(err, core.ErrGraphInvalid) {
		t.Errorf("empty graph: %v, want ErrGraphInvalid", err)
	}
}
