// Package cluster assembles the simulated commodity cluster the paper's
// evaluation ran on (Table 1): N nodes, each with a flowlet runtime, a
// worker pool, and a cost-modeled local disk, joined by a cost-modeled
// network fabric, with a simulated HDFS, a YARN scheduler and the
// distributed key-value store deployed on top.
//
// Both engines run over the same Cluster: the HAMR engine through Run, the
// MapReduce baseline through the handles exposed by FS, Disks, Yarn and
// ChargeNet — so a comparison between them reflects engine design, not
// substrate differences.
package cluster

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/faults"
	"github.com/hamr-go/hamr/internal/hdfs"
	"github.com/hamr-go/hamr/internal/kvstore"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/trace"
	"github.com/hamr-go/hamr/internal/transport"
	"github.com/hamr-go/hamr/internal/vtime"
	"github.com/hamr-go/hamr/internal/yarn"
)

// Service names installed on every node runtime.
const (
	ServiceHDFS    = "hdfs"
	ServiceDisk    = "disk"
	ServiceKVStore = "kvstore"
	ServiceCluster = "cluster"
)

// Options configures a simulated cluster.
type Options struct {
	// NumNodes is the number of worker nodes (the paper used 15 workers).
	NumNodes int
	// Core configures the per-node flowlet runtime.
	Core core.Config
	// DiskModel, if non-nil, charges modeled delays for local disk IO.
	DiskModel *storage.CostModel
	// NetModel, if non-nil, charges modeled delays for network transfer.
	NetModel *transport.CostModel
	// DiskCapacity bounds each local disk in bytes (0 = unlimited).
	DiskCapacity int64
	// HDFSBlockSize and HDFSReplication configure the simulated HDFS.
	HDFSBlockSize   int64
	HDFSReplication int
	// YarnMemMB is each node's schedulable memory for the YARN scheduler.
	YarnMemMB int
	// HDFSCacheMB is the per-node HDFS block cache budget modeling the
	// datanode page cache. 0 (the default) disables the cache — the read
	// path and every counter stay bit-identical to a cache-less build. A
	// negative value sizes the cache automatically from node memory as
	// YarnMemMB/4 (the slice of RAM the OS would realistically keep for
	// the page cache next to container heaps).
	HDFSCacheMB int
	// Faults, if non-nil, installs a seeded fault injector across every
	// substrate layer: local disks, HDFS replica reads, the message fabric
	// and (via the engines) task execution. A nil Faults leaves every hot
	// path untouched — no wrapper disks, no fabric hook.
	Faults *faults.Config
	// CompressSpill enables block compression of sort/reduce spill runs and
	// shuffle segments on their way to local disk; CompressShuffle enables
	// compression of coalesced shuffle batches on the fabric. Both default
	// off: as with HDFSCacheMB == 0, the disabled paths — and every
	// counter — stay bit-identical to a compression-less build.
	CompressSpill   bool
	CompressShuffle bool
	// CompressCodec names the block codec ("lz", "flate", "none"); empty
	// defaults to "lz". "none" turns both sites back off.
	CompressCodec string
	// CompressMinBytes stores blocks smaller than this raw instead of
	// compressing them (0 = compress everything framed).
	CompressMinBytes int
	// CompressNsPerByte is the modeled CPU cost per raw byte charged (and
	// slept) on both encode and decode, pricing the CPU-for-IO trade. Zero
	// picks a default of 0.5 ns/byte (scaled by NetModel.TimeScale like
	// every other data-proportional delay); negative disables the model.
	CompressNsPerByte float64
	// Clock pays every modeled delay in the cluster — disk, network,
	// compression CPU, contention — and is threaded to both engines (the
	// MapReduce baseline reads it via Cluster.Clock for its startup and
	// straggler charges). Nil defaults to vtime.Real(): plain sleeps,
	// bit-identical to the pre-seam substrate. Install a
	// *vtime.VirtualClock to run the same workload without wall sleeps
	// while modeled elapsed time accrues on per-node logical clocks.
	Clock vtime.Clock
	// Trace, if non-nil, records per-task spans and instant events across
	// every instrumented layer (engines, transport, HDFS, YARN). Nil — the
	// default — leaves every hot path untouched: all recorder methods are
	// nil-safe no-ops and no IDs are built, the HDFSCacheMB discipline.
	Trace *trace.Tracer
	// MaxConcurrentJobs bounds how many submitted jobs may execute at
	// once; further admitted jobs wait in the FIFO queue. <= 0 (the
	// default) means 1 — Submit still works but jobs serialize, and a
	// serial Run stays bit-identical to the pre-manager engine.
	MaxConcurrentJobs int
	// JobQueueDepth bounds the admission queue; Submit on a full queue
	// fails fast with ErrQueueFull instead of blocking. <= 0 defaults
	// to 16.
	JobQueueDepth int
	// JobMemMB, when > 0, makes every dispatched job hold one YARN
	// container of this size on each node for its lifetime, so job
	// admission competes with the MapReduce baseline for the same
	// schedulable memory. 0 (the default) skips the grant — with tracing
	// on, YARN grants emit instant events, so the default keeps serial
	// trace output bit-identical to the pre-manager engine.
	JobMemMB int
}

// Cluster is a running simulated cluster.
type Cluster struct {
	opts  Options
	reg   *metrics.Registry
	net   *transport.InMemNetwork
	disks []storage.Disk
	fs    *hdfs.FileSystem
	store *kvstore.Store
	sched *yarn.Scheduler
	nodes []*core.NodeRuntime
	inj   *faults.Injector
	model transport.CostModel
	clk   vtime.Clock
	// spillCC is the spill-site compression config threaded to both engines
	// (the HAMR runtime via core.Config, the MapReduce baseline via
	// SpillCompression). Zero when compression is off.
	spillCC compress.Config
	// rxMu serializes modeled ChargeNet delays per receiving node, so a
	// node's ingress bandwidth is a real bottleneck for the baseline's
	// shuffle fetches and HDFS remote reads (the fabric's own deliveries
	// are already serialized per receiver by the transport).
	rxMu []sync.Mutex

	// jobs is the lazily-built multi-job manager behind Submit; jobsMu
	// guards its creation and the handoff to Close.
	jobsMu sync.Mutex
	jobs   *JobManager

	// ChargeNet handles, resolved once: shuffle fetches and HDFS remote
	// reads charge the model at block rates, where a string-keyed registry
	// lookup per charge is measurable (same pattern as the jobNode's
	// pre-resolved counters).
	mNetBytes *metrics.Counter
	mNetMsgs  *metrics.Counter
	tNetTime  *metrics.Timer
}

// New builds and starts a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.NumNodes <= 0 {
		opts.NumNodes = 1
	}
	if opts.YarnMemMB <= 0 {
		opts.YarnMemMB = 4096
	}
	opts.Core.NumNodes = opts.NumNodes
	// Resolve the clock before Core.FillDefaults, which would otherwise
	// fill the nil Core.Clock with the real clock and cut the engine's
	// contention charges off from a virtual clock installed here.
	if opts.Clock == nil {
		opts.Clock = vtime.Real()
	}
	if opts.Core.Clock == nil {
		opts.Core.Clock = opts.Clock
	}
	opts.Core.Trace = opts.Trace
	opts.Core.FillDefaults()

	c := &Cluster{opts: opts, reg: metrics.NewRegistry()}
	c.clk = opts.Clock
	c.mNetBytes = c.reg.Counter("net.bytes")
	c.mNetMsgs = c.reg.Counter("net.msgs")
	c.tNetTime = c.reg.Timer("net.time")
	var netModel transport.CostModel
	if opts.NetModel != nil {
		netModel = *opts.NetModel
	}
	c.model = netModel
	c.net = transport.NewInMemNetwork(netModel, c.reg)
	c.net.SetClock(c.clk)
	c.net.SetTrace(opts.Trace)

	if opts.Faults != nil {
		c.inj = faults.New(*opts.Faults, opts.NumNodes, c.reg)
		opts.Core.Faults = c.inj
		c.net.SetFaults(c.inj)
	}

	if opts.CompressSpill || opts.CompressShuffle {
		name := opts.CompressCodec
		if name == "" {
			name = "lz"
		}
		codec, err := compress.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		if codec != nil {
			// Counters exist only when a codec is on — with compression off
			// the registry (and every report built from it) is bit-identical
			// to a compression-less build, the HDFSCacheMB discipline.
			nsPerByte := opts.CompressNsPerByte
			if nsPerByte == 0 {
				nsPerByte = 0.5
			}
			if s := netModel.TimeScale; s != 0 && s != 1 && nsPerByte > 0 {
				nsPerByte *= s
			}
			cin := c.reg.Counter("compress.in.bytes")
			cout := c.reg.Counter("compress.out.bytes")
			cskip := c.reg.Counter("compress.skipped")
			ctime := c.reg.Timer("compress.time")
			if opts.CompressSpill {
				c.spillCC = compress.Config{
					Codec:    codec,
					MinBytes: opts.CompressMinBytes,
					Meter: &compress.Meter{
						In: cin, Out: cout, Skipped: cskip,
						SiteOut:   c.reg.Counter("spill.compressed.bytes"),
						Time:      ctime,
						NsPerByte: nsPerByte,
						Sleep:     c.cpuCharge,
					},
				}
				opts.Core.SpillCompress = c.spillCC
			}
			if opts.CompressShuffle {
				opts.Core.ShuffleCompress = compress.Config{
					Codec:    codec,
					MinBytes: opts.CompressMinBytes,
					Meter: &compress.Meter{
						In: cin, Out: cout, Skipped: cskip,
						SiteOut:   c.reg.Counter("net.compressed.bytes"),
						Time:      ctime,
						NsPerByte: nsPerByte,
						Sleep:     c.cpuCharge,
					},
				}
				// Inbound KindBatchZ frames charge decode CPU only — byte
				// counters already accounted on the sending side.
				c.net.SetDecodeMeter(&compress.Meter{Time: ctime, NsPerByte: nsPerByte, Sleep: c.cpuCharge})
			}
		}
	}

	c.disks = make([]storage.Disk, opts.NumNodes)
	for i := range c.disks {
		var d storage.Disk = storage.NewMemDisk(opts.DiskCapacity)
		d = c.inj.WrapDisk(i, d)
		if opts.DiskModel != nil {
			cd := storage.NewCostDisk(d, *opts.DiskModel, c.reg)
			cd.SetClock(c.clk, i)
			d = cd
		}
		c.disks[i] = d
	}

	cacheMB := opts.HDFSCacheMB
	if cacheMB < 0 {
		cacheMB = opts.YarnMemMB / 4
	}
	fs, err := hdfs.New(c.disks, hdfs.Config{
		BlockSize:   opts.HDFSBlockSize,
		Replication: opts.HDFSReplication,
		Remote:      c.ChargeNet,
		Faults:      c.inj,
		Metrics:     c.reg,
		CacheBytes:  int64(cacheMB) << 20,
		Trace:       opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	c.fs = fs
	c.store = kvstore.New(opts.NumNodes, c.ChargeNet)
	c.sched = yarn.NewScheduler(opts.NumNodes, opts.YarnMemMB)
	c.sched.SetTracer(opts.Trace)
	c.rxMu = make([]sync.Mutex, opts.NumNodes)

	c.nodes = make([]*core.NodeRuntime, opts.NumNodes)
	for i := 0; i < opts.NumNodes; i++ {
		services := map[string]any{
			ServiceHDFS:    c.fs,
			ServiceDisk:    c.disks[i],
			ServiceKVStore: c.store,
			ServiceCluster: c,
		}
		rt, err := core.NewNodeRuntime(i, opts.Core, c.net, c.disks[i], services, c.reg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes[i] = rt
	}
	return c, nil
}

// NumNodes returns the cluster size.
func (c *Cluster) NumNodes() int { return c.opts.NumNodes }

// FS returns the simulated HDFS.
func (c *Cluster) FS() *hdfs.FileSystem { return c.fs }

// Store returns the distributed key-value store.
func (c *Cluster) Store() *kvstore.Store { return c.store }

// Yarn returns the YARN-style container scheduler.
func (c *Cluster) Yarn() *yarn.Scheduler { return c.sched }

// Disks returns the per-node local disks.
func (c *Cluster) Disks() []storage.Disk { return c.disks }

// Disk returns one node's local disk.
func (c *Cluster) Disk(node int) storage.Disk { return c.disks[node] }

// Nodes returns the per-node flowlet runtimes.
func (c *Cluster) Nodes() []*core.NodeRuntime { return c.nodes }

// Metrics returns the shared cluster metrics registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// Faults returns the cluster's fault injector, or nil when the cluster was
// built without one. Every injector method is nil-safe, so callers may use
// the result unconditionally.
func (c *Cluster) Faults() *faults.Injector { return c.inj }

// Tracer returns the span recorder installed via Options.Trace, or nil
// when tracing is off. Every recorder method is nil-safe, so callers may
// use the result unconditionally.
func (c *Cluster) Tracer() *trace.Tracer { return c.opts.Trace }

// Clock returns the clock every modeled delay is paid through — the real
// clock unless Options.Clock installed a virtual one. Engines charge
// their own modeled costs (job/task startup, stragglers) here so one
// knob switches the whole stack between sleeping and logical time.
func (c *Cluster) Clock() vtime.Clock { return c.clk }

// SpillCompression returns the spill-site compression config (zero when
// CompressSpill is off). The MapReduce baseline applies it to sort runs,
// shuffle segments and fetched reduce runs, so both engines pay — and
// save — the same bytes on the disk path.
func (c *Cluster) SpillCompression() compress.Config { return c.spillCC }

// cpuCharge pays modeled compression CPU through the cluster clock (the
// Meter callback carries no node identity, so charges land on the driver
// lane; under the real clock this is exactly the time.Sleep the meter
// would have done itself).
func (c *Cluster) cpuCharge(d time.Duration) { c.clk.Charge(vtime.Driver, vtime.CPU, d) }

// ChargeNet charges the network cost model for a point-to-point transfer,
// sleeping the modeled delay in the caller's goroutine. It is used by the
// substrates whose transfers do not flow through the message fabric (HDFS
// remote reads, kv-store remote access, the baseline's shuffle fetch).
func (c *Cluster) ChargeNet(from, to transport.NodeID, bytes int64) {
	if from == to {
		return
	}
	c.mNetBytes.Add(bytes)
	c.mNetMsgs.Inc()
	d := c.model.Latency
	if c.model.BytesPerSec > 0 {
		d += time.Duration(float64(bytes) / float64(c.model.BytesPerSec) * float64(time.Second))
	}
	if s := c.model.TimeScale; s != 0 && s != 1 {
		d = time.Duration(float64(d) * s)
	}
	if d > 0 {
		c.tNetTime.Observe(d)
		if int(to) >= 0 && int(to) < len(c.rxMu) {
			mu := &c.rxMu[to]
			mu.Lock()
			c.clk.Charge(int(to), vtime.Net, d)
			mu.Unlock()
		} else {
			c.clk.Charge(vtime.Driver, vtime.Net, d)
		}
	}
}

// jobEnv builds the execution environment handed to every job.
func (c *Cluster) jobEnv() *core.Env {
	return &core.Env{
		NumNodes: c.opts.NumNodes,
		Services: map[string]any{
			ServiceHDFS:    c.fs,
			ServiceKVStore: c.store,
			ServiceCluster: c,
		},
	}
}

// Jobs returns the cluster's job manager, creating it on first use. Most
// callers go through Submit/RunContext/Run instead; the manager is exposed
// for its Stats.
func (c *Cluster) Jobs() *JobManager {
	c.jobsMu.Lock()
	defer c.jobsMu.Unlock()
	if c.jobs == nil {
		c.jobs = newJobManager(c)
	}
	return c.jobs
}

// Submit admits a flowlet graph for execution and returns immediately with
// a handle. Admission is non-blocking: a full queue fails with ErrQueueFull.
// Up to MaxConcurrentJobs admitted jobs run concurrently, arbitrated by
// YARN memory (JobMemMB) and a fair share of the cluster's loader slots.
// Canceling ctx — or calling JobHandle.Cancel — stops the job wherever it
// is; Wait then returns an error matching core.ErrJobCanceled.
func (c *Cluster) Submit(ctx context.Context, g *core.Graph) (*JobHandle, error) {
	return c.Jobs().Submit(ctx, g)
}

// RunContext executes a flowlet graph through the job manager and blocks
// until completion, honoring ctx cancellation.
func (c *Cluster) RunContext(ctx context.Context, g *core.Graph) (*core.JobResult, error) {
	h, err := c.Submit(ctx, g)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}

// Run executes a flowlet graph on the cluster and waits for completion —
// RunContext with a background context. With the default Options (serial
// admission), its behavior and metrics are identical to running the graph
// directly on the engine.
func (c *Cluster) Run(g *core.Graph) (*core.JobResult, error) {
	return c.RunContext(context.Background(), g)
}

// WriteLocalText writes a text file onto one node's local disk (the
// paper's HAMR deployment reads input "distributed between the local disks
// of each node", §5.1).
func (c *Cluster) WriteLocalText(node int, name string, data []byte) error {
	f, err := c.disks[node].Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLocalText reads a whole file from one node's local disk.
func (c *Cluster) ReadLocalText(node int, name string) ([]byte, error) {
	f, err := c.disks[node].Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Close shuts down the job manager, the runtimes and the fabric. Queued
// jobs are canceled; running jobs are aborted and waited for before the
// substrate below them goes away.
func (c *Cluster) Close() {
	c.jobsMu.Lock()
	m := c.jobs
	c.jobsMu.Unlock()
	if m != nil {
		m.Close()
	}
	for _, rt := range c.nodes {
		if rt != nil {
			rt.Close()
		}
	}
	if c.sched != nil {
		c.sched.Close()
	}
	if c.net != nil {
		c.net.Close()
	}
}
