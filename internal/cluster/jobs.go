package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/par"
	"github.com/hamr-go/hamr/internal/yarn"
)

// Job-admission sentinels. Match with errors.Is.
var (
	// ErrQueueFull is returned by Submit when the bounded admission queue
	// is at JobQueueDepth — admission is non-blocking by design, so a
	// saturated cluster pushes back at submit time instead of buffering
	// unboundedly.
	ErrQueueFull = errors.New("cluster: job queue full")
	// ErrManagerClosed is returned by Submit after the cluster (or its job
	// manager) was closed.
	ErrManagerClosed = errors.New("cluster: job manager closed")
)

// JobStatus is the lifecycle of a submitted job.
type JobStatus int

const (
	// JobQueued means the job is admitted but not yet dispatched.
	JobQueued JobStatus = iota
	// JobRunning means the job is executing on the node runtimes.
	JobRunning
	// JobDone means the job finished: succeeded, failed or canceled.
	JobDone
)

// String implements fmt.Stringer.
func (s JobStatus) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	default:
		return "unknown"
	}
}

// JobHandle tracks one submitted job through the manager's queue and
// execution. All methods are safe for concurrent use.
type JobHandle struct {
	mgr   *JobManager
	graph *core.Graph
	share *par.Share

	mu         sync.Mutex
	status     JobStatus
	job        *core.Job // non-nil once dispatched
	res        *core.JobResult
	err        error
	cancelErr  error // first cancellation reason, set before the job ends
	containers []*yarn.Container
	ctxStop    func() bool // detaches the submission-context watcher

	done chan struct{}
}

// Done returns a channel closed when the job finishes (in any state).
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Status reports the job's current lifecycle state.
func (h *JobHandle) Status() JobStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.status
}

// Wait blocks until the job finishes and returns its outcome. Canceled
// jobs return an error matching core.ErrJobCanceled.
func (h *JobHandle) Wait() (*core.JobResult, error) {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, h.err
}

// Result returns the job's outcome without blocking: (nil, nil) while the
// job is still queued or running.
func (h *JobHandle) Result() (*core.JobResult, error) {
	select {
	case <-h.done:
	default:
		return nil, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, h.err
}

// Cancel asks the job to stop: a queued job is removed from the queue, a
// running job is aborted through the engine's cross-node failure path.
// Wait then returns an error matching core.ErrJobCanceled. Cancel is
// idempotent and safe at any point in the job's life.
func (h *JobHandle) Cancel() {
	h.cancel(fmt.Errorf("cluster: job %q: %w", h.graph.Name, core.ErrJobCanceled))
}

// cancel records the first cancellation reason and routes it to wherever
// the job currently lives (queue or engine). The launch path re-checks
// cancelErr around dispatch, closing the race where a cancel lands while
// the job is leaving the queue.
func (h *JobHandle) cancel(reason error) {
	h.mu.Lock()
	if h.status == JobDone || h.cancelErr != nil {
		h.mu.Unlock()
		return
	}
	h.cancelErr = reason
	job := h.job
	h.mu.Unlock()
	if job != nil {
		job.Abort(reason)
		return
	}
	h.mgr.dequeue(h)
}

// resolve finishes the handle exactly once.
func (h *JobHandle) resolve(res *core.JobResult, err error) {
	h.mu.Lock()
	if h.status == JobDone {
		h.mu.Unlock()
		return
	}
	h.status = JobDone
	h.res, h.err = res, err
	stop := h.ctxStop
	h.ctxStop = nil
	h.mu.Unlock()
	if stop != nil {
		stop()
	}
	close(h.done)
}

// JobStats is a point-in-time view of the manager's lifetime counters.
// They live on the manager — not in the metrics registry — so a cluster
// that never runs concurrent jobs keeps a bit-identical counter name set.
type JobStats struct {
	// Submitted counts jobs admitted into the queue.
	Submitted int64
	// Completed counts jobs that ran to an outcome (success or failure).
	Completed int64
	// Canceled counts jobs that ended by cancellation (queued or running).
	Canceled int64
	// Rejected counts submissions refused with ErrQueueFull.
	Rejected int64
	// Queued and Running are current occupancy.
	Queued, Running int
}

// JobManager runs jobs concurrently over one cluster: Submit admits into a
// bounded FIFO queue, a dispatcher starts up to MaxConcurrentJobs of them,
// and two arbiters keep running jobs fair — a per-job YARN memory grant
// (JobMemMB per node, held for the job's lifetime) and a per-job
// fair-share gate over the cluster's loader slots, re-divided whenever the
// running set changes.
type JobManager struct {
	c             *Cluster
	maxConcurrent int
	queueDepth    int
	jobMemMB      int
	loaderSlots   int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*JobHandle
	running map[*JobHandle]struct{}
	closed  bool

	submitted, completed, canceled, rejected int64

	wg sync.WaitGroup // dispatcher + per-job waiters
}

func newJobManager(c *Cluster) *JobManager {
	opts := c.opts
	maxConc := opts.MaxConcurrentJobs
	if maxConc <= 0 {
		maxConc = 1
	}
	depth := opts.JobQueueDepth
	if depth <= 0 {
		depth = 16
	}
	m := &JobManager{
		c:             c,
		maxConcurrent: maxConc,
		queueDepth:    depth,
		jobMemMB:      opts.JobMemMB,
		loaderSlots:   opts.Core.LoaderConcurrency * opts.NumNodes,
		running:       make(map[*JobHandle]struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(1)
	go m.dispatch()
	return m
}

// Submit validates the graph and admits it into the queue without
// blocking. A full queue returns ErrQueueFull; a canceled or expired ctx
// cancels the job wherever it is (queued or running) with an error
// matching core.ErrJobCanceled.
func (m *JobManager) Submit(ctx context.Context, g *core.Graph) (*JobHandle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", core.ErrGraphInvalid)
	}
	// Validate at the API boundary so a malformed graph fails the Submit
	// call itself, not a handle the caller must Wait on.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrGraphInvalid, err)
	}
	h := &JobHandle{
		mgr:   m,
		graph: g,
		share: par.NewShare(m.loaderSlots),
		done:  make(chan struct{}),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	if len(m.queue) >= m.queueDepth {
		m.rejected++
		m.mu.Unlock()
		return nil, fmt.Errorf("cluster: job %q: %w (depth %d)", g.Name, ErrQueueFull, m.queueDepth)
	}
	m.submitted++
	m.queue = append(m.queue, h)
	m.cond.Broadcast()
	m.mu.Unlock()
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			h.cancel(fmt.Errorf("cluster: job %q: %w: %v", g.Name, core.ErrJobCanceled, context.Cause(ctx)))
		})
		h.mu.Lock()
		if h.status == JobDone {
			// Finished before the watcher registered: detach it now, since
			// resolve already ran and will not.
			h.mu.Unlock()
			stop()
		} else {
			h.ctxStop = stop
			h.mu.Unlock()
		}
	}
	return h, nil
}

// Stats reports the manager's lifetime counters and current occupancy.
func (m *JobManager) Stats() JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return JobStats{
		Submitted: m.submitted,
		Completed: m.completed,
		Canceled:  m.canceled,
		Rejected:  m.rejected,
		Queued:    len(m.queue),
		Running:   len(m.running),
	}
}

// dispatch is the manager's single scheduling loop: strict FIFO over the
// queue, at most maxConcurrent jobs running. Head-of-line blocking on the
// YARN grant (inside launch) is deliberate — FIFO admission means a big
// job waits for memory rather than being overtaken forever.
func (m *JobManager) dispatch() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.closed && (len(m.queue) == 0 || len(m.running) >= m.maxConcurrent) {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		h := m.queue[0]
		m.queue = m.queue[1:]
		m.running[h] = struct{}{}
		m.rebalanceLocked()
		m.mu.Unlock()
		m.launch(h)
	}
}

// launch takes one job from queued to running: YARN admission grant, plan,
// start, and a waiter goroutine that settles the handle.
func (m *JobManager) launch(h *JobHandle) {
	h.mu.Lock()
	if cerr := h.cancelErr; cerr != nil {
		h.mu.Unlock()
		m.finish(h, nil, cerr)
		return
	}
	h.mu.Unlock()

	// Memory arbitration: one container of JobMemMB on every node, held
	// for the job's lifetime. 0 (the default) skips the grant entirely so
	// serial clusters see no YARN traffic they did not see before.
	var containers []*yarn.Container
	if m.jobMemMB > 0 {
		for n := 0; n < m.c.NumNodes(); n++ {
			ct, err := m.c.Yarn().Allocate(m.jobMemMB, n)
			if err != nil {
				for _, held := range containers {
					m.c.Yarn().Release(held)
				}
				m.finish(h, nil, fmt.Errorf("cluster: job %q admission: %w", h.graph.Name, err))
				return
			}
			containers = append(containers, ct)
		}
	}

	j, err := core.NewJob(h.graph, m.c.nodes, m.c.jobEnv())
	if err != nil {
		for _, held := range containers {
			m.c.Yarn().Release(held)
		}
		m.finish(h, nil, err)
		return
	}
	j.SetAdmission(h.share)

	h.mu.Lock()
	h.job = j
	h.containers = containers
	h.status = JobRunning
	cerr := h.cancelErr
	h.mu.Unlock()

	j.Start()
	if cerr != nil {
		// Canceled while dispatching (after the queue removal raced past
		// it): abort immediately; the waiter below settles the handle.
		j.Abort(cerr)
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		res, werr := j.Wait()
		m.finish(h, res, werr)
	}()
}

// finish releases the job's grants, updates the running set and settles
// the handle. It is the single exit for every dispatched job, so
// granted == released + revoked holds whatever path ended the job.
func (m *JobManager) finish(h *JobHandle, res *core.JobResult, err error) {
	h.mu.Lock()
	containers := h.containers
	h.containers = nil
	h.mu.Unlock()
	for _, ct := range containers {
		m.c.Yarn().Release(ct)
	}
	// Closing the share drains loader spawners still blocked on admission
	// (their Acquire returns false and the split is skipped).
	h.share.Close()

	m.mu.Lock()
	delete(m.running, h)
	if err != nil && errors.Is(err, core.ErrJobCanceled) {
		m.canceled++
	} else {
		m.completed++
	}
	idle := len(m.running) == 0 && len(m.queue) == 0
	m.rebalanceLocked()
	m.cond.Broadcast()
	m.mu.Unlock()

	// When this was the last job in the system, drain the message fabric
	// before settling the handle: delivery runs on per-inbox goroutines, so
	// the job's trailing end-of-run broadcasts may still be charging modeled
	// network time to receiver lanes. Waiting here makes a serial caller's
	// Wait a true barrier — virtual-clock readings taken after Run return
	// the same modeled time on every run instead of depending on whether a
	// straggler delivery won its race with the reader. With other jobs still
	// running the fabric never goes quiet, so the drain is skipped; overlap
	// measurements are wall-clock and do not need it.
	if idle {
		m.c.net.Quiesce()
	}

	h.resolve(res, err)
}

// dequeue removes a canceled handle from the queue, settling it if found.
// Not finding it is fine: the dispatcher already took it, and launch
// re-checks cancelErr.
func (m *JobManager) dequeue(h *JobHandle) {
	m.mu.Lock()
	found := false
	for i, q := range m.queue {
		if q == h {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			found = true
			break
		}
	}
	if found {
		m.canceled++
	}
	m.mu.Unlock()
	if !found {
		return
	}
	h.mu.Lock()
	cerr := h.cancelErr
	h.mu.Unlock()
	h.share.Close()
	h.resolve(nil, cerr)
}

// rebalanceLocked re-divides the cluster's loader slots across the running
// jobs (callers hold m.mu): every job gets an equal share, never below one
// slot, so a newly admitted job starts loading immediately while the
// incumbents throttle down at their next split boundary.
func (m *JobManager) rebalanceLocked() {
	n := len(m.running)
	if n == 0 {
		return
	}
	per := m.loaderSlots / n
	if per < 1 {
		per = 1
	}
	for h := range m.running {
		h.share.SetCapacity(per)
	}
}

// Close stops admission, cancels every queued job, aborts every running
// job and waits for all of them to settle. Idempotent.
func (m *JobManager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	queued := m.queue
	m.queue = nil
	m.canceled += int64(len(queued))
	running := make([]*JobHandle, 0, len(m.running))
	for h := range m.running {
		running = append(running, h)
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	for _, h := range queued {
		h.mu.Lock()
		if h.cancelErr == nil {
			h.cancelErr = fmt.Errorf("%w: %v", core.ErrJobCanceled, ErrManagerClosed)
		}
		cerr := h.cancelErr
		h.mu.Unlock()
		h.share.Close()
		h.resolve(nil, cerr)
	}
	for _, h := range running {
		h.cancel(fmt.Errorf("%w: %v", core.ErrJobCanceled, ErrManagerClosed))
	}
	m.wg.Wait()
}
