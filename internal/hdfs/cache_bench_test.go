package hdfs

import (
	"strings"
	"testing"
)

// benchFS builds a 1-node filesystem holding one 16-block file, with or
// without the block cache.
func benchFS(b *testing.B, cacheBytes int64) *FileSystem {
	b.Helper()
	fs, _, _ := cachedFS(b, 1, Config{BlockSize: 4 << 10, CacheBytes: cacheBytes})
	data := []byte(strings.Repeat("0123456789abcdef", 4096)) // 64 KiB = 16 blocks
	if err := fs.WriteFile("f", data, 0); err != nil {
		b.Fatal(err)
	}
	return fs
}

// BenchmarkCachedBlockRead measures the hot-reread path with the page
// cache on: every block is served from the node's cache (write-through
// made it hot), so the loop never opens the disk.
func BenchmarkCachedBlockRead(b *testing.B) {
	fs := benchFS(b, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile("f", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUncachedBlockRead is the in-tree no-cache baseline: the same
// reread pays a disk open + copy per block every iteration.
func BenchmarkUncachedBlockRead(b *testing.B) {
	fs := benchFS(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile("f", 0); err != nil {
			b.Fatal(err)
		}
	}
}
