package hdfs

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
)

func newFS(t testing.TB, nodes int, cfg Config) (*FileSystem, []storage.Disk) {
	t.Helper()
	disks := make([]storage.Disk, nodes)
	for i := range disks {
		disks[i] = storage.NewMemDisk(0)
	}
	fs, err := New(disks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs, disks
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs, _ := newFS(t, 3, Config{BlockSize: 64})
	data := []byte(strings.Repeat("0123456789\n", 50)) // spans many blocks
	if err := fs.WriteFile("dir/f.txt", data, -1); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("dir/f.txt", -1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
	}
	if n, _ := fs.Size("dir/f.txt"); n != int64(len(data)) {
		t.Errorf("Size = %d", n)
	}
	if !fs.Exists("dir/f.txt") || fs.Exists("dir/other") {
		t.Error("Exists wrong")
	}
}

func TestStreamingReader(t *testing.T) {
	fs, _ := newFS(t, 2, Config{BlockSize: 32})
	data := []byte(strings.Repeat("abcdefgh", 100))
	fs.WriteFile("f", data, -1)
	r, err := fs.Open("f", -1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("streaming read mismatch")
	}
}

func TestBlockLayoutAndReplication(t *testing.T) {
	fs, disks := newFS(t, 4, Config{BlockSize: 100, Replication: 2})
	data := make([]byte, 250) // 3 blocks: 100+100+50
	fs.WriteFile("f", data, -1)
	blocks, err := fs.Blocks("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("%d blocks, want 3", len(blocks))
	}
	wantSizes := []int64{100, 100, 50}
	var off int64
	for i, b := range blocks {
		if b.Size != wantSizes[i] {
			t.Errorf("block %d size %d, want %d", i, b.Size, wantSizes[i])
		}
		if b.Offset != off {
			t.Errorf("block %d offset %d, want %d", i, b.Offset, off)
		}
		off += b.Size
		if len(b.Replicas) != 2 {
			t.Errorf("block %d has %d replicas", i, len(b.Replicas))
		}
		if b.Replicas[0] == b.Replicas[1] {
			t.Errorf("block %d replicas on same node", i)
		}
		// Each replica actually exists on the datanode's disk.
		for _, node := range b.Replicas {
			if _, err := disks[node].Size("hdfs/" + b.ID); err != nil {
				t.Errorf("block %s missing on node %d: %v", b.ID, node, err)
			}
		}
	}
}

func TestPreferredPlacement(t *testing.T) {
	fs, _ := newFS(t, 4, Config{BlockSize: 64, Replication: 2})
	fs.WriteFile("f", make([]byte, 300), 2)
	blocks, _ := fs.Blocks("f")
	for i, b := range blocks {
		if b.Replicas[0] != 2 {
			t.Errorf("block %d first replica on node %d, want preferred node 2", i, b.Replicas[0])
		}
	}
}

func TestRemoteReadCharges(t *testing.T) {
	var charges int
	var chargedBytes int64
	fs, _ := newFS(t, 3, Config{
		BlockSize: 64,
		Remote: func(from, to transport.NodeID, n int64) {
			charges++
			chargedBytes += n
		},
	})
	data := make([]byte, 200)
	fs.WriteFile("f", data, 0) // all blocks on node 0 (replication 1)

	charges, chargedBytes = 0, 0
	if _, err := fs.ReadFile("f", 0); err != nil { // local
		t.Fatal(err)
	}
	if charges != 0 {
		t.Errorf("local read charged %d transfers", charges)
	}
	if _, err := fs.ReadFile("f", 1); err != nil { // remote
		t.Fatal(err)
	}
	if charges == 0 || chargedBytes != 200 {
		t.Errorf("remote read charged %d transfers / %d bytes, want all 200 bytes", charges, chargedBytes)
	}
}

func TestRemoveDeletesBlocks(t *testing.T) {
	fs, disks := newFS(t, 2, Config{BlockSize: 32})
	fs.WriteFile("f", make([]byte, 100), -1)
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("f") {
		t.Error("file still exists")
	}
	for i, d := range disks {
		if names := d.List("hdfs/"); len(names) != 0 {
			t.Errorf("node %d still stores %v", i, names)
		}
	}
	if err := fs.Remove("f"); err == nil {
		t.Error("double remove succeeded")
	}
}

func TestListPrefix(t *testing.T) {
	fs, _ := newFS(t, 1, Config{})
	for _, n := range []string{"in/a", "in/b", "out/c"} {
		fs.WriteFile(n, []byte("x"), -1)
	}
	if got := fs.List("in/"); len(got) != 2 || got[0] != "in/a" {
		t.Errorf("List(in/) = %v", got)
	}
}

func TestSplitsAndLineIterator(t *testing.T) {
	fs, _ := newFS(t, 3, Config{BlockSize: 37}) // awkward size: lines straddle blocks
	var sb strings.Builder
	var want []string
	for i := 0; i < 100; i++ {
		line := fmt.Sprintf("line-%04d with some payload %d", i, i*i)
		want = append(want, line)
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	fs.WriteFile("f", []byte(sb.String()), -1)

	splits, err := fs.Splits("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 2 {
		t.Fatalf("only %d splits", len(splits))
	}
	var got []string
	offsets := map[int64]bool{}
	for _, sp := range splits {
		it, err := fs.OpenLines(sp, -1, 0)
		if err != nil {
			t.Fatal(err)
		}
		for {
			line, off, ok := it.Next()
			if !ok {
				break
			}
			if offsets[off] {
				t.Fatalf("offset %d yielded twice", off)
			}
			offsets[off] = true
			got = append(got, line)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d lines, want %d", len(got), len(want))
	}
	seen := map[string]bool{}
	for _, l := range got {
		seen[l] = true
	}
	for _, l := range want {
		if !seen[l] {
			t.Errorf("line %q lost", l)
		}
	}
}

// Property: for any line lengths and block size, iterating all splits
// yields every line exactly once — Hadoop's split-boundary rule.
func TestSplitLinePropertyQuick(t *testing.T) {
	f := func(lineLens []uint8, blockSize uint8) bool {
		if len(lineLens) == 0 {
			return true
		}
		bs := int64(blockSize)%200 + 10
		fs, _ := newFS(t, 2, Config{BlockSize: bs})
		var sb strings.Builder
		var want []string
		for i, ll := range lineLens {
			n := int(ll) % 60
			line := fmt.Sprintf("%02d:%s", i%100, strings.Repeat("x", n))
			want = append(want, line)
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
		if err := fs.WriteFile("f", []byte(sb.String()), -1); err != nil {
			return false
		}
		splits, err := fs.Splits("f")
		if err != nil {
			return false
		}
		var got []string
		for _, sp := range splits {
			it, err := fs.OpenLines(sp, -1, 0)
			if err != nil {
				return false
			}
			for {
				line, _, ok := it.Next()
				if !ok {
					break
				}
				got = append(got, line)
			}
		}
		if len(got) != len(want) {
			return false
		}
		counts := map[string]int{}
		for _, l := range want {
			counts[l]++
		}
		for _, l := range got {
			counts[l]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestReadLineAt(t *testing.T) {
	fs, _ := newFS(t, 2, Config{BlockSize: 16})
	content := "first line\nsecond line\nthird\n"
	fs.WriteFile("f", []byte(content), -1)
	line, err := fs.ReadLineAt("f", 11, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if line != "second line" {
		t.Fatalf("ReadLineAt(11) = %q", line)
	}
	if line, _ := fs.ReadLineAt("f", 0, -1, 0); line != "first line" {
		t.Fatalf("ReadLineAt(0) = %q", line)
	}
}

func TestSplitsGlob(t *testing.T) {
	fs, _ := newFS(t, 2, Config{BlockSize: 32})
	fs.WriteFile("in/a", make([]byte, 70), -1)
	fs.WriteFile("in/b", make([]byte, 40), -1)
	splits, err := fs.SplitsGlob("in/")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3+2 {
		t.Fatalf("%d splits, want 5", len(splits))
	}
}

func TestWriterAfterClose(t *testing.T) {
	fs, _ := newFS(t, 1, Config{})
	w := fs.Create("f", -1)
	w.Write([]byte("x"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("y")); err == nil {
		t.Error("write after close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestEmptyFile(t *testing.T) {
	fs, _ := newFS(t, 2, Config{})
	if err := fs.WriteFile("empty", nil, -1); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("empty", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("empty file read %d bytes", len(data))
	}
	splits, err := fs.Splits("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 0 {
		t.Errorf("empty file has %d splits", len(splits))
	}
}
