package hdfs

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/faults"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
)

// countingDisk wraps a Disk and counts Open calls, optionally stalling
// each one; the single-flight tests use it to prove a cache miss storm
// collapses to one disk read.
type countingDisk struct {
	storage.Disk
	opens atomic.Int64
	stall time.Duration
}

func (d *countingDisk) Open(name string) (io.ReadCloser, error) {
	d.opens.Add(1)
	if d.stall > 0 {
		time.Sleep(d.stall)
	}
	return d.Disk.Open(name)
}

// cachedFS builds a filesystem over counting disks with the cache enabled
// (budget in bytes; 0 disables).
func cachedFS(t testing.TB, nodes int, cfg Config) (*FileSystem, []*countingDisk, *metrics.Registry) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	counting := make([]*countingDisk, nodes)
	disks := make([]storage.Disk, nodes)
	for i := range disks {
		counting[i] = &countingDisk{Disk: storage.NewMemDisk(0)}
		disks[i] = counting[i]
	}
	fs, err := New(disks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs, counting, cfg.Metrics
}

func totalOpens(disks []*countingDisk) int64 {
	var n int64
	for _, d := range disks {
		n += d.opens.Load()
	}
	return n
}

func TestCacheWriteThroughServesWithoutDisk(t *testing.T) {
	fs, disks, reg := cachedFS(t, 3, Config{BlockSize: 64, CacheBytes: 1 << 20})
	data := []byte(strings.Repeat("write-through!", 32))
	if err := fs.WriteFile("f", data, 0); err != nil {
		t.Fatal(err)
	}
	// A just-written file is hot at its replica holder: reading it back
	// from node 0 must not open the disk at all.
	before := totalOpens(disks)
	got, err := fs.ReadFile("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	if n := totalOpens(disks) - before; n != 0 {
		t.Errorf("read after write opened the disk %d times, want 0", n)
	}
	if v := reg.Counter("hdfs.cache.hits").Value(); v == 0 {
		t.Error("expected cache hits")
	}
	if v := reg.Counter("hdfs.cache.misses").Value(); v != 0 {
		t.Errorf("expected no misses, got %d", v)
	}
}

func TestCacheRemoteFetchPopulatesReader(t *testing.T) {
	var charges atomic.Int64
	reg := metrics.NewRegistry()
	fs, _, _ := cachedFS(t, 2, Config{
		BlockSize:  64,
		CacheBytes: 1 << 20,
		Metrics:    reg,
		Remote: func(from, to transport.NodeID, n int64) {
			charges.Add(1)
		},
	})
	data := []byte(strings.Repeat("remote block ", 20))
	// All replicas on node 0 (replication 1, preferred 0); node 1 reads
	// remotely.
	if err := fs.WriteFile("f", data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("f", 1); err != nil {
		t.Fatal(err)
	}
	first := charges.Load()
	if first == 0 {
		t.Fatal("first remote read should charge the network")
	}
	// The fetched blocks are now hot at node 1: the second read is free
	// and uncharged.
	if _, err := fs.ReadFile("f", 1); err != nil {
		t.Fatal(err)
	}
	if again := charges.Load(); again != first {
		t.Errorf("second remote read charged the network (%d -> %d)", first, again)
	}
	if v := reg.Counter("hdfs.bytes.remote").Value(); v != int64(len(data)) {
		t.Errorf("hdfs.bytes.remote = %d, want %d (one cold pass)", v, len(data))
	}
}

func TestCacheSingleFlight(t *testing.T) {
	fs, disks, reg := cachedFS(t, 1, Config{BlockSize: 1 << 20, CacheBytes: 1 << 20})
	disks[0].stall = 20 * time.Millisecond
	data := []byte(strings.Repeat("single flight ", 100))
	if err := fs.WriteFile("f", data, -1); err != nil {
		t.Fatal(err)
	}
	// Write-through already populated node 0; invalidate by dropping via
	// a fresh cache state: remove + rewrite would change the block ID, so
	// instead read as 16 concurrent node-0 readers of a cold block — use
	// a second file written via a -1 client then evicted... Simplest cold
	// start: clear by removing and rewriting.
	fs.cache.invalidate(mustBlocks(t, fs, "f")[0].ID)

	start := totalOpens(disks)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := fs.ReadFile("f", 0)
			if err == nil && !bytes.Equal(got, data) {
				err = fmt.Errorf("content mismatch")
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := totalOpens(disks) - start; n != 1 {
		t.Errorf("16 concurrent cold readers opened the disk %d times, want 1", n)
	}
	if h, m := reg.Counter("hdfs.cache.hits").Value(), reg.Counter("hdfs.cache.misses").Value(); h+m < 16 || m != 1 {
		t.Errorf("hits=%d misses=%d, want 15/1 split over 16 reads", h, m)
	}
}

func mustBlocks(t *testing.T, fs *FileSystem, name string) []Block {
	t.Helper()
	bs, err := fs.Blocks(name)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func TestCacheLRUEviction(t *testing.T) {
	// Budget of exactly two 64-byte blocks on one node.
	fs, _, reg := cachedFS(t, 1, Config{BlockSize: 64, CacheBytes: 128})
	blk := func(c byte) []byte { return bytes.Repeat([]byte{c}, 64) }
	for _, n := range []string{"a", "b"} {
		if err := fs.WriteFile(n, blk(n[0]), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim, then write "c".
	if _, err := fs.ReadFile("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("c", blk('c'), 0); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("hdfs.cache.evictions").Value(); v != 1 {
		t.Fatalf("evictions = %d, want 1", v)
	}
	if v := reg.Counter("hdfs.cache.bytes").Value(); v != 128 {
		t.Fatalf("cache.bytes = %d, want 128", v)
	}
	misses := reg.Counter("hdfs.cache.misses").Value()
	if _, err := fs.ReadFile("a", 0); err != nil { // still hot
		t.Fatal(err)
	}
	if v := reg.Counter("hdfs.cache.misses").Value(); v != misses {
		t.Error("read of retained entry missed")
	}
	if _, err := fs.ReadFile("b", 0); err != nil { // evicted: must miss
		t.Fatal(err)
	}
	if v := reg.Counter("hdfs.cache.misses").Value(); v != misses+1 {
		t.Error("read of evicted entry did not miss")
	}
}

func TestCacheInvalidateOnRemoveAndRewrite(t *testing.T) {
	fs, _, reg := cachedFS(t, 2, Config{BlockSize: 64, CacheBytes: 1 << 20})
	if err := fs.WriteFile("f", bytes.Repeat([]byte("old"), 40), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("hdfs.cache.bytes").Value(); v != 0 {
		t.Fatalf("cache.bytes = %d after Remove, want 0", v)
	}
	want := bytes.Repeat([]byte("new"), 40)
	if err := fs.WriteFile("f", want, 0); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("rewrite served stale content")
	}
}

func TestCacheAbortedWriterLeavesNothing(t *testing.T) {
	fs, _, reg := cachedFS(t, 2, Config{BlockSize: 64, CacheBytes: 1 << 20})
	w := fs.Create("f", 0)
	if _, err := w.Write(bytes.Repeat([]byte("x"), 200)); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if v := reg.Counter("hdfs.cache.bytes").Value(); v != 0 {
		t.Fatalf("cache.bytes = %d after Abort, want 0", v)
	}
}

func TestCacheDisabledIsIdentical(t *testing.T) {
	// CacheBytes == 0: no cache, and no hdfs.cache.* counters may appear
	// in the registry (metric-set invariance for cache-off runs).
	reg := metrics.NewRegistry()
	fs, _, _ := cachedFS(t, 2, Config{BlockSize: 64, Metrics: reg})
	if fs.cache != nil {
		t.Fatal("cache built despite CacheBytes == 0")
	}
	data := []byte(strings.Repeat("plain ", 64))
	if err := fs.WriteFile("f", data, 0); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	for name := range reg.Snapshot().Counters {
		if strings.HasPrefix(name, "hdfs.cache.") {
			t.Errorf("cache-off run created counter %s", name)
		}
	}
}

func TestCachedHostsReportedAndOrdered(t *testing.T) {
	fs, _, _ := cachedFS(t, 3, Config{BlockSize: 64, Replication: 1, CacheBytes: 1 << 20})
	data := bytes.Repeat([]byte("z"), 64)
	if err := fs.WriteFile("f", data, 1); err != nil {
		t.Fatal(err)
	}
	// Write-through: hot at replica holder 1. A remote read from node 2
	// makes it hot there too; replica holders must sort first.
	if _, err := fs.ReadFile("f", 2); err != nil {
		t.Fatal(err)
	}
	sp, err := fs.Splits("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 1 {
		t.Fatalf("splits = %d, want 1", len(sp))
	}
	want := []transport.NodeID{1, 2}
	if len(sp[0].CachedHosts) != 2 || sp[0].CachedHosts[0] != want[0] || sp[0].CachedHosts[1] != want[1] {
		t.Errorf("CachedHosts = %v, want %v", sp[0].CachedHosts, want)
	}
}

func TestCacheDeadReplicaNotResurrected(t *testing.T) {
	// A block cached on a node whose storage the injector declares dead
	// must not be served from cache once faults are armed: the entry is
	// dropped and the read fails over to a live replica.
	reg := metrics.NewRegistry()
	seed := int64(0)
	var inj *faults.Injector
	var dead int
	// Find a seed whose dead set is node 0 so the test is explicit about
	// which replica dies (DeadNodes draws from the seed).
	for s := int64(1); s < 64; s++ {
		probe := faults.New(faults.Config{Seed: s, DeadNodes: 1}, 3, metrics.NewRegistry())
		if set := probe.DeadNodeSet(); len(set) == 1 {
			seed, dead = s, set[0]
			break
		}
	}
	inj = faults.New(faults.Config{Seed: seed, DeadNodes: 1}, 3, reg)

	counting := make([]*countingDisk, 3)
	disks := make([]storage.Disk, 3)
	for i := range disks {
		counting[i] = &countingDisk{Disk: storage.NewMemDisk(0)}
		disks[i] = counting[i]
	}
	fs, err := New(disks, Config{
		BlockSize: 64, Replication: 2,
		CacheBytes: 1 << 20, Faults: inj, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("dead replica "), 30)
	// Disarmed during setup: the write lands a replica on the doomed node
	// and write-through caches it there.
	if err := fs.WriteFile("f", data, transport.NodeID(dead)); err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	got, err := fs.ReadFile("f", transport.NodeID(dead))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read returned wrong content")
	}
	if v := reg.Counter("hdfs.failover.reads").Value(); v == 0 {
		t.Error("expected failover reads once the cached replica died")
	}
	// Deterministic under the fixed seed: a second run of the same read
	// takes the same path.
	if _, err := fs.ReadFile("f", transport.NodeID(dead)); err != nil {
		t.Fatal(err)
	}
}

func TestCacheConcurrentStress(t *testing.T) {
	// Race-hunting stress: readers hammer Open/ReadFile of shared blocks
	// while a writer loop removes and rewrites one of the files. Reads
	// racing a Remove may fail with not-exist; successful reads must
	// return one of the known generations' content.
	fs, _, _ := cachedFS(t, 3, Config{BlockSize: 64, Replication: 2, CacheBytes: 256})
	stable := []byte(strings.Repeat("stable ", 64))
	if err := fs.WriteFile("stable", stable, 0); err != nil {
		t.Fatal(err)
	}
	gen := func(g int) []byte { return bytes.Repeat([]byte{byte('a' + g%26)}, 300) }
	if err := fs.WriteFile("churn", gen(0), 1); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			at := transport.NodeID(r % 3)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				got, err := fs.ReadFile("stable", at)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, stable) {
					errs <- fmt.Errorf("stable file corrupted")
					return
				}
				data, err := fs.ReadFile("churn", at)
				if err != nil {
					continue // raced a Remove
				}
				if len(data) != 300 {
					errs <- fmt.Errorf("churn read %d bytes", len(data))
					return
				}
				for _, b := range data {
					if b != data[0] {
						errs <- fmt.Errorf("churn read mixed generations")
						return
					}
				}
				if rc, err := fs.Open("stable", at); err == nil {
					if _, err := io.ReadAll(rc); err != nil {
						errs <- err
						return
					}
					rc.Close()
				}
			}
		}(r)
	}
	for g := 1; g <= 40; g++ {
		if err := fs.Remove("churn"); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("churn", gen(g), transport.NodeID(g%3)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
