package hdfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/hamr-go/hamr/internal/faults"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
)

// faultFS builds a filesystem over plain MemDisks with a fault injector
// attached, returning the raw disks for leak accounting.
func faultFS(t testing.TB, nodes int, cfg Config, fcfg faults.Config, reg *metrics.Registry) (*FileSystem, []*storage.MemDisk, *faults.Injector) {
	t.Helper()
	mems := make([]*storage.MemDisk, nodes)
	disks := make([]storage.Disk, nodes)
	inj := faults.New(fcfg, nodes, reg)
	for i := range disks {
		mems[i] = storage.NewMemDisk(0)
		disks[i] = inj.WrapDisk(i, mems[i])
	}
	cfg.Faults = inj
	cfg.Metrics = reg
	fs, err := New(disks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs, mems, inj
}

func totalUsed(mems []*storage.MemDisk) int64 {
	var n int64
	for _, d := range mems {
		n += d.Used()
	}
	return n
}

func TestReadFailsOverToLiveReplica(t *testing.T) {
	reg := metrics.NewRegistry()
	fs, _, inj := faultFS(t, 4, Config{BlockSize: 64, Replication: 2},
		faults.Config{Seed: 11, DeadNodes: 1}, reg)

	data := bytes.Repeat([]byte("failover payload "), 40)
	if err := fs.WriteFile("f", data, 0); err != nil {
		t.Fatal(err)
	}
	dead := inj.DeadNodeSet()[0]
	inj.Arm()
	defer inj.Disarm()

	// Read the file as observed from the dead node itself: its local
	// replica is always the first candidate, so every block it holds must
	// fail over to the other replica.
	got, err := fs.ReadFile("f", transport.NodeID(dead))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("failover read corrupted: %d bytes vs %d", len(got), len(data))
	}
	// Expected failover count: one per block whose first candidate (the
	// dead node's local replica) is unreadable.
	blocks, _ := fs.Blocks("f")
	var want int64
	for _, b := range blocks {
		for _, r := range b.Replicas {
			if int(r) == dead {
				want++
			}
		}
	}
	if want == 0 {
		t.Fatalf("seed 11 placed no replica on dead node %d; pick another seed", dead)
	}
	if got := reg.Counter("hdfs.failover.reads").Value(); got != want {
		t.Fatalf("hdfs.failover.reads = %d, want %d", got, want)
	}
}

func TestWritePlacementAvoidsDeadNodes(t *testing.T) {
	reg := metrics.NewRegistry()
	fs, _, inj := faultFS(t, 4, Config{BlockSize: 64, Replication: 2},
		faults.Config{Seed: 3, DeadNodes: 2}, reg)
	inj.Arm()
	defer inj.Disarm()

	data := bytes.Repeat([]byte("x"), 500)
	if err := fs.WriteFile("f", data, -1); err != nil {
		t.Fatal(err)
	}
	deadSet := map[int]bool{}
	for _, n := range inj.DeadNodeSet() {
		deadSet[n] = true
	}
	blocks, _ := fs.Blocks("f")
	for _, b := range blocks {
		if len(b.Replicas) != 2 {
			t.Fatalf("block %s has %d replicas", b.ID, len(b.Replicas))
		}
		for _, r := range b.Replicas {
			if deadSet[int(r)] {
				t.Fatalf("block %s placed on dead node %d", b.ID, r)
			}
		}
	}
	got, err := fs.ReadFile("f", -1)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back: %v", err)
	}
}

func TestWriteRePlacesReplicaOffFailingDisk(t *testing.T) {
	// A mid-write disk fault on one replica triggers Hadoop-style pipeline
	// recovery: the replica moves to another node and no partial block file
	// is left behind.
	reg := metrics.NewRegistry()
	fs, mems, inj := faultFS(t, 4, Config{BlockSize: 256, Replication: 2},
		faults.Config{Seed: 1, DiskWrite: 0.15}, reg)
	inj.Arm()

	data := bytes.Repeat([]byte("pipeline recovery "), 200)
	err := fs.WriteFile("f", data, -1)
	inj.Disarm()
	if err != nil {
		t.Fatalf("write with pipeline recovery failed: %v", err)
	}
	if got := reg.Counter("hdfs.write.replaced").Value(); got != 3 {
		t.Fatalf("hdfs.write.replaced = %d, want 3 for seed 1", got)
	}
	got, rerr := fs.ReadFile("f", -1)
	if rerr != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back after re-placement: %v", rerr)
	}
	// Exactly the published blocks' bytes are on disk: no partial files.
	var want int64
	blocks, _ := fs.Blocks("f")
	for _, b := range blocks {
		want += b.Size * int64(len(b.Replicas))
	}
	if used := totalUsed(mems); used != want {
		t.Fatalf("disks hold %d bytes, published blocks account for %d", used, want)
	}
}

func TestFailedWriterLeaksNoBlocks(t *testing.T) {
	// Regression: appendBlock/Close error paths used to leave partially
	// written block files on the datanodes (Close on a MemDisk commits the
	// buffered partial data). After a failed write, disk usage must return
	// to baseline.
	reg := metrics.NewRegistry()
	fs, mems, inj := faultFS(t, 3, Config{BlockSize: 128, Replication: 3},
		faults.Config{Seed: 2, DiskWrite: 1}, reg)

	if err := fs.WriteFile("keep", bytes.Repeat([]byte("k"), 300), -1); err != nil {
		t.Fatal(err)
	}
	baseline := totalUsed(mems)
	if baseline == 0 {
		t.Fatal("baseline file stored no bytes")
	}

	inj.Arm()
	// Every disk write fails, replication == nodes, so there is no live
	// replacement: the write must fail and clean up after itself.
	err := fs.WriteFile("doomed", bytes.Repeat([]byte("d"), 1000), -1)
	inj.Disarm()
	if err == nil {
		t.Fatal("write with all disks failing succeeded")
	}
	if !faults.IsInjected(err) {
		t.Fatalf("error should carry the injected cause: %v", err)
	}
	if used := totalUsed(mems); used != baseline {
		t.Fatalf("failed write leaked %d bytes (baseline %d, now %d)",
			used-baseline, baseline, used)
	}
	if fs.Exists("doomed") {
		t.Fatal("failed file was published")
	}
	// The surviving file is untouched.
	if got, err := fs.ReadFile("keep", -1); err != nil || int64(len(got)) != 300 {
		t.Fatalf("baseline file damaged: %d bytes, %v", len(got), err)
	}
}

func TestWriterAbortRollsBackFlushedBlocks(t *testing.T) {
	fs, mems, _ := faultFS(t, 3, Config{BlockSize: 64, Replication: 2},
		faults.Config{}, nil)
	w := fs.Create("partial", -1)
	if _, err := w.Write(bytes.Repeat([]byte("a"), 200)); err != nil {
		t.Fatal(err)
	}
	if totalUsed(mems) == 0 {
		t.Fatal("expected flushed blocks before abort")
	}
	w.Abort()
	if used := totalUsed(mems); used != 0 {
		t.Fatalf("abort leaked %d bytes", used)
	}
	if fs.Exists("partial") {
		t.Fatal("aborted file was published")
	}
	// Abort after a successful Close is a no-op.
	if err := fs.WriteFile("done", []byte("data"), -1); err != nil {
		t.Fatal(err)
	}
	w2 := fs.Create("done2", -1)
	w2.Write([]byte("more"))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w2.Abort()
	if got, err := fs.ReadFile("done2", -1); err != nil || string(got) != "more" {
		t.Fatalf("abort-after-close damaged file: %q, %v", got, err)
	}
}

func TestReaderFailoverMidStream(t *testing.T) {
	// A per-replica fault on a middle block must fail over transparently
	// inside the streaming reader.
	reg := metrics.NewRegistry()
	fs, _, inj := faultFS(t, 3, Config{BlockSize: 32, Replication: 2},
		faults.Config{Seed: 1, DeadReplica: 0.2}, reg)
	var data []byte
	for i := 0; i < 20; i++ {
		data = append(data, []byte(fmt.Sprintf("line %02d of the stream\n", i))...)
	}
	if err := fs.WriteFile("s", data, 1); err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	defer inj.Disarm()
	r, err := fs.Open("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatalf("stream with failover failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("stream corrupted: %d vs %d bytes", len(got), len(data))
	}
	if n := reg.Counter("hdfs.failover.reads").Value(); n != 3 {
		t.Fatalf("hdfs.failover.reads = %d, want 3 for seed 1", n)
	}
}

func TestNoReadableReplicaSurfacesInjectedError(t *testing.T) {
	fs, _, inj := faultFS(t, 2, Config{BlockSize: 64, Replication: 2},
		faults.Config{Seed: 1, DeadNodes: 2}, nil)
	if err := fs.WriteFile("f", []byte("unreachable"), -1); err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	defer inj.Disarm()
	_, err := fs.ReadFile("f", -1)
	if err == nil {
		t.Fatal("read with every replica dead succeeded")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error should wrap the injected cause: %v", err)
	}
	if !strings.Contains(err.Error(), "no readable replica") {
		t.Fatalf("unexpected error: %v", err)
	}
}
