package hdfs

import (
	"container/list"
	"sync"

	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/transport"
)

// blockCache models the per-datanode OS page cache: each node holds a
// byte-budgeted LRU of recently read or written block payloads. A hit
// serves the block from memory — no disk open, no network charge — which
// is what a faithful Hadoop comparator does for the chained-job reread
// pattern (a just-written intermediate is hot in the writer's page cache).
//
// Ownership rule for cached slices: the cache and its readers share one
// backing array and never mutate it. readBlock reports shared=true for any
// slice the cache may reference; callers that hand bytes to mutating
// consumers (ReadFile's single-block fast path) clone first.
//
// Eviction counts only budget-pressure removals; invalidation (Remove,
// aborted writers, fault-killed replicas) is not an eviction.
type blockCache struct {
	budget int64 // per-node byte budget

	mHits      *metrics.Counter // hdfs.cache.hits
	mMisses    *metrics.Counter // hdfs.cache.misses
	mEvictions *metrics.Counter // hdfs.cache.evictions
	mBytes     *metrics.Counter // hdfs.cache.bytes (current, cluster-wide)

	nodes []nodeCache

	// flights dedups concurrent misses of the same (node, block): the
	// first reader does the disk/network work, later arrivals wait on the
	// flight and share the result (single-flight).
	fmu     sync.Mutex
	flights map[flightKey]*flight
}

type nodeCache struct {
	mu      sync.Mutex
	used    int64
	entries map[string]*list.Element // block ID -> element in lru
	lru     list.List                // front = most recently used
}

type cacheEntry struct {
	id   string
	data []byte
}

type flightKey struct {
	node transport.NodeID
	id   string
}

// flight is one in-progress read; done is closed once data/err are set.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

func newBlockCache(numNodes int, budget int64, reg *metrics.Registry) *blockCache {
	c := &blockCache{
		budget:     budget,
		mHits:      reg.Counter("hdfs.cache.hits"),
		mMisses:    reg.Counter("hdfs.cache.misses"),
		mEvictions: reg.Counter("hdfs.cache.evictions"),
		mBytes:     reg.Counter("hdfs.cache.bytes"),
		nodes:      make([]nodeCache, numNodes),
		flights:    make(map[flightKey]*flight),
	}
	for i := range c.nodes {
		c.nodes[i].entries = make(map[string]*list.Element)
	}
	return c
}

// get returns the cached payload of a block on a node, refreshing its
// recency. The returned slice is shared with the cache — read-only.
func (c *blockCache) get(node transport.NodeID, id string) ([]byte, bool) {
	nc := &c.nodes[node]
	nc.mu.Lock()
	defer nc.mu.Unlock()
	el, ok := nc.entries[id]
	if !ok {
		return nil, false
	}
	nc.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// has reports residency without refreshing recency; locality queries
// (Blocks/Splits) must not perturb eviction order.
func (c *blockCache) has(node transport.NodeID, id string) bool {
	nc := &c.nodes[node]
	nc.mu.Lock()
	defer nc.mu.Unlock()
	_, ok := nc.entries[id]
	return ok
}

// insert caches a block payload on a node, evicting LRU entries until the
// budget holds. The cache takes a shared read-only reference to data — the
// caller must not mutate it afterwards. Oversized payloads are not cached.
func (c *blockCache) insert(node transport.NodeID, id string, data []byte) {
	size := int64(len(data))
	if size > c.budget {
		return
	}
	nc := &c.nodes[node]
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if el, ok := nc.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		nc.used += size - int64(len(e.data))
		c.mBytes.Add(size - int64(len(e.data)))
		e.data = data
		nc.lru.MoveToFront(el)
	} else {
		nc.entries[id] = nc.lru.PushFront(&cacheEntry{id: id, data: data})
		nc.used += size
		c.mBytes.Add(size)
	}
	for nc.used > c.budget {
		tail := nc.lru.Back()
		if tail == nil {
			break
		}
		c.removeLocked(nc, tail)
		c.mEvictions.Inc()
	}
}

// removeLocked unlinks one entry; callers hold nc.mu.
func (c *blockCache) removeLocked(nc *nodeCache, el *list.Element) {
	e := el.Value.(*cacheEntry)
	nc.lru.Remove(el)
	delete(nc.entries, e.id)
	nc.used -= int64(len(e.data))
	c.mBytes.Add(-int64(len(e.data)))
}

// drop invalidates one block on one node (no eviction accounting).
func (c *blockCache) drop(node transport.NodeID, id string) {
	nc := &c.nodes[node]
	nc.mu.Lock()
	if el, ok := nc.entries[id]; ok {
		c.removeLocked(nc, el)
	}
	nc.mu.Unlock()
}

// invalidate drops a block from every node's cache. Remote-fetch
// population caches blocks at non-replica readers, so invalidation cannot
// stop at the replica set.
func (c *blockCache) invalidate(id string) {
	for i := range c.nodes {
		c.drop(transport.NodeID(i), id)
	}
}

// holders returns the nodes holding a block hot: cached replicas first in
// replica order (disk-local AND hot), then cached non-replica nodes in
// ascending node order (hot via an earlier remote fetch). The order is the
// scheduler's preference order.
func (c *blockCache) holders(b Block) []transport.NodeID {
	var out []transport.NodeID
	replica := make(map[transport.NodeID]bool, len(b.Replicas))
	for _, r := range b.Replicas {
		replica[r] = true
		if c.has(r, b.ID) {
			out = append(out, r)
		}
	}
	for i := range c.nodes {
		n := transport.NodeID(i)
		if !replica[n] && c.has(n, b.ID) {
			out = append(out, n)
		}
	}
	return out
}

// join registers interest in a (node, block) read. The first caller
// becomes the leader (does the real read, then finish); followers receive
// the existing flight to wait on.
func (c *blockCache) join(node transport.NodeID, id string) (*flight, bool) {
	k := flightKey{node: node, id: id}
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if f, ok := c.flights[k]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	return f, true
}

// finish publishes a leader's result to its followers and retires the
// flight so the next miss starts fresh.
func (c *blockCache) finish(node transport.NodeID, id string, f *flight) {
	c.fmu.Lock()
	delete(c.flights, flightKey{node: node, id: id})
	c.fmu.Unlock()
	close(f.done)
}
