package hdfs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"github.com/hamr-go/hamr/internal/transport"
)

// Split is a contiguous byte range of a file processed by one task, with
// the nodes that hold it locally. Splits are block-aligned, like Hadoop's
// FileInputFormat.
type Split struct {
	File   string
	Offset int64
	Length int64
	Hosts  []transport.NodeID
	// CachedHosts lists the nodes holding the split's block hot in their
	// page cache at split time (empty with the cache disabled); schedulers
	// prefer these over merely disk-local Hosts.
	CachedHosts []transport.NodeID
}

// Splits returns one split per block of the file.
func (fs *FileSystem) Splits(name string) ([]Split, error) {
	blocks, err := fs.Blocks(name)
	if err != nil {
		return nil, err
	}
	splits := make([]Split, 0, len(blocks))
	for _, b := range blocks {
		splits = append(splits, Split{
			File:        name,
			Offset:      b.Offset,
			Length:      b.Size,
			Hosts:       append([]transport.NodeID(nil), b.Replicas...),
			CachedHosts: append([]transport.NodeID(nil), b.Cached...),
		})
	}
	return splits, nil
}

// SplitsGlob returns the splits of every file matching the prefix.
func (fs *FileSystem) SplitsGlob(prefix string) ([]Split, error) {
	var all []Split
	for _, name := range fs.List(prefix) {
		s, err := fs.Splits(name)
		if err != nil {
			return nil, err
		}
		all = append(all, s...)
	}
	return all, nil
}

// readRange reads file bytes [off, off+length) as observed from node at.
func (fs *FileSystem) readRange(name string, off, length int64, at transport.NodeID) ([]byte, error) {
	meta, err := fs.lookup(name)
	if err != nil {
		return nil, err
	}
	if off < 0 || off > meta.size {
		return nil, fmt.Errorf("hdfs: offset %d out of range for %q (size %d)", off, name, meta.size)
	}
	if off+length > meta.size {
		length = meta.size - off
	}
	var out bytes.Buffer
	for _, b := range meta.blocks {
		if b.Offset+b.Size <= off || b.Offset >= off+length {
			continue
		}
		data, _, err := fs.readBlock(b, at)
		if err != nil {
			return nil, err
		}
		start := int64(0)
		if off > b.Offset {
			start = off - b.Offset
		}
		end := b.Size
		if off+length < b.Offset+b.Size {
			end = off + length - b.Offset
		}
		out.Write(data[start:end])
	}
	return out.Bytes(), nil
}

// LineIterator yields the lines belonging to a split using Hadoop's rule:
// a line belongs to the split in which it starts. The iterator therefore
// skips a leading partial line (unless the split starts at offset 0) and
// reads one line past the end of the split when the final line straddles
// the boundary.
type LineIterator struct {
	r        *bufio.Reader
	consumed int64 // bytes consumed relative to split start
	limit    int64 // split length (stop once consumed > limit at line start)
	offset   int64 // absolute file offset of the next line
	done     bool
}

// OpenLines returns a line iterator over the split as observed from node
// at. The slack read past the split end is bounded by maxLine bytes.
func (fs *FileSystem) OpenLines(sp Split, at transport.NodeID, maxLine int64) (*LineIterator, error) {
	if maxLine <= 0 {
		maxLine = 1 << 20
	}
	data, err := fs.readRange(sp.File, sp.Offset, sp.Length+maxLine, at)
	if err != nil {
		return nil, err
	}
	it := &LineIterator{
		r:      bufio.NewReader(bytes.NewReader(data)),
		limit:  sp.Length,
		offset: sp.Offset,
	}
	if sp.Offset > 0 {
		// Skip the partial line carried over from the previous split.
		skipped, err := it.r.ReadString('\n')
		if err == io.EOF {
			it.done = true
		} else if err != nil {
			return nil, err
		}
		it.consumed += int64(len(skipped))
		it.offset += int64(len(skipped))
	}
	return it, nil
}

// Next returns the next line (without the trailing newline) and its
// absolute byte offset in the file. ok is false at the end of the split.
//
// The boundary rule mirrors Hadoop's LineRecordReader: a split keeps
// reading while the next line starts at or before the split end
// (consumed <= limit), because the following split unconditionally skips
// its first line — including a line that starts exactly on the boundary.
func (it *LineIterator) Next() (line string, offset int64, ok bool) {
	if it.done || it.consumed > it.limit {
		return "", 0, false
	}
	s, err := it.r.ReadString('\n')
	if err == io.EOF && s == "" {
		it.done = true
		return "", 0, false
	}
	offset = it.offset
	it.consumed += int64(len(s))
	it.offset += int64(len(s))
	if n := len(s); n > 0 && s[n-1] == '\n' {
		s = s[:n-1]
	}
	return s, offset, true
}

// ReadLineAt returns the line starting at the given absolute offset of the
// file, as observed from node at. It is used by the K-Means flowlets that
// re-read a record by its location (Alg. 1, steps 4-5).
func (fs *FileSystem) ReadLineAt(name string, off int64, at transport.NodeID, maxLine int64) (string, error) {
	if maxLine <= 0 {
		maxLine = 1 << 20
	}
	data, err := fs.readRange(name, off, maxLine, at)
	if err != nil {
		return "", err
	}
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	return string(data), nil
}
