// Package hdfs simulates the Hadoop Distributed File System closely enough
// for the paper's evaluation: files are split into fixed-size blocks,
// blocks are replicated across datanodes (one datanode per cluster node,
// each backed by that node's modeled local disk), and readers can ask for
// block locations so schedulers can place computation near data (the
// locality behaviour §3.3 contrasts with).
//
// Reads from a node that holds a replica hit only the local disk; remote
// reads additionally charge the cluster network model via the RemoteCharger
// callback.
package hdfs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/hamr-go/hamr/internal/faults"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/trace"
	"github.com/hamr-go/hamr/internal/transport"
)

// DefaultBlockSize is the scaled-down stand-in for HDFS's 64/128 MB blocks.
const DefaultBlockSize = 1 << 20

// RemoteCharger accounts for a remote block transfer of the given size from
// the node holding the replica to the reading node.
type RemoteCharger func(from, to transport.NodeID, bytes int64)

// Block describes one stored block of a file.
type Block struct {
	ID       string
	Offset   int64 // offset of the block within the file
	Size     int64
	Replicas []transport.NodeID
	// Cached lists the nodes holding the block in their page cache at
	// lookup time (empty when the cache is disabled): cached replicas
	// first in replica order, then cached non-replica nodes.
	Cached []transport.NodeID
}

type fileMeta struct {
	name   string
	blocks []Block
	size   int64
}

// FileSystem is the namenode plus the set of datanodes.
type FileSystem struct {
	mu          sync.Mutex
	blockSize   int64
	replication int
	disks       []storage.Disk // indexed by NodeID
	files       map[string]*fileMeta
	nextBlock   int
	nextNode    int // round-robin placement cursor
	charge      RemoteCharger
	faults      *faults.Injector
	cache       *blockCache // nil when CacheBytes == 0 (page cache off)
	tr          *trace.Tracer
	readSeq     atomic.Int64 // numbers traced block reads for span IDs

	mFailover    *metrics.Counter // hdfs.failover.reads
	mReplaced    *metrics.Counter // hdfs.write.replaced
	mLocalBytes  *metrics.Counter // hdfs.bytes.local
	mRemoteBytes *metrics.Counter // hdfs.bytes.remote
}

// Config controls filesystem geometry.
type Config struct {
	BlockSize   int64
	Replication int
	// Remote is invoked for every remote block read; nil means free remote
	// reads (tests).
	Remote RemoteCharger
	// Faults is the cluster's fault injector (nil for none): reads fail
	// over past dead replicas and writes re-place blocks off dead nodes.
	Faults *faults.Injector
	// Metrics receives hdfs.failover.reads / hdfs.write.replaced (nil for
	// a private registry).
	Metrics *metrics.Registry
	// CacheBytes is the per-node block cache budget modeling the datanode
	// page cache; 0 disables the cache entirely (read path identical to a
	// cache-less build, and no hdfs.cache.* counters are created).
	CacheBytes int64
	// Trace, if non-nil, records block-read spans and (with the cache on)
	// cache hit/miss instants. Nil leaves the read path untouched.
	Trace *trace.Tracer
}

// New creates a filesystem over the given per-node disks.
func New(disks []storage.Disk, cfg Config) (*FileSystem, error) {
	if len(disks) == 0 {
		return nil, fmt.Errorf("hdfs: need at least one datanode")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(disks) {
		cfg.Replication = len(disks)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	fs := &FileSystem{
		blockSize:    cfg.BlockSize,
		replication:  cfg.Replication,
		disks:        disks,
		files:        make(map[string]*fileMeta),
		charge:       cfg.Remote,
		faults:       cfg.Faults,
		tr:           cfg.Trace,
		mFailover:    reg.Counter("hdfs.failover.reads"),
		mReplaced:    reg.Counter("hdfs.write.replaced"),
		mLocalBytes:  reg.Counter("hdfs.bytes.local"),
		mRemoteBytes: reg.Counter("hdfs.bytes.remote"),
	}
	if cfg.CacheBytes > 0 {
		fs.cache = newBlockCache(len(disks), cfg.CacheBytes, reg)
	}
	return fs, nil
}

// BlockSize returns the filesystem block size.
func (fs *FileSystem) BlockSize() int64 { return fs.blockSize }

// NumNodes returns the number of datanodes.
func (fs *FileSystem) NumNodes() int { return len(fs.disks) }

func blockName(id string) string { return "hdfs/" + id }

// placeBlock chooses replica nodes: the preferred node first (if valid and
// its storage is alive), then round-robin over the remaining live nodes.
// The scan is bounded so a mostly-dead cluster returns a short replica set
// instead of spinning; the caller decides whether that is fatal.
func (fs *FileSystem) placeBlock(preferred transport.NodeID) []transport.NodeID {
	n := len(fs.disks)
	replicas := make([]transport.NodeID, 0, fs.replication)
	seen := make(map[transport.NodeID]bool)
	if preferred >= 0 && int(preferred) < n && !fs.faults.NodeDown(int(preferred)) {
		replicas = append(replicas, preferred)
		seen[preferred] = true
	}
	for scanned := 0; len(replicas) < fs.replication && scanned < n; scanned++ {
		cand := transport.NodeID(fs.nextNode % n)
		fs.nextNode++
		if !seen[cand] && !fs.faults.NodeDown(int(cand)) {
			replicas = append(replicas, cand)
			seen[cand] = true
		}
	}
	return replicas
}

// Writer streams data into a new file, cutting blocks at the block size.
type Writer struct {
	fs        *FileSystem
	meta      *fileMeta
	preferred transport.NodeID
	buf       bytes.Buffer
	closed    bool
	published bool
	err       error
}

// Create starts writing a new file. preferred is the "client" node whose
// local disk receives the first replica of every block (use -1 for pure
// round-robin placement). An existing file with the same name is replaced
// on Close.
func (fs *FileSystem) Create(name string, preferred transport.NodeID) *Writer {
	return &Writer{
		fs:        fs,
		meta:      &fileMeta{name: name},
		preferred: preferred,
	}
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("hdfs: write to closed file %q", w.meta.name)
	}
	if w.err != nil {
		return 0, w.err
	}
	w.buf.Write(p)
	for int64(w.buf.Len()) >= w.fs.blockSize {
		if err := w.flushBlock(w.fs.blockSize); err != nil {
			w.err = err
			return 0, err
		}
	}
	return len(p), nil
}

func (w *Writer) flushBlock(n int64) error {
	data := make([]byte, n)
	if _, err := io.ReadFull(&w.buf, data); err != nil {
		return err
	}
	return w.fs.appendBlock(w.meta, w.preferred, data)
}

// writeReplica stores one replica of a block, removing any partially
// written file on failure (Close on an in-memory disk commits whatever was
// buffered, so a failed write would otherwise leak a partial block).
func (fs *FileSystem) writeReplica(node transport.NodeID, id string, data []byte) error {
	f, err := fs.disks[node].Create(blockName(id))
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = fs.disks[node].Remove(blockName(id))
		return werr
	}
	return nil
}

// replacementNode picks a live node outside tried for pipeline recovery.
func (fs *FileSystem) replacementNode(tried map[transport.NodeID]bool) (transport.NodeID, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := len(fs.disks)
	for scanned := 0; scanned < n; scanned++ {
		cand := transport.NodeID(fs.nextNode % n)
		fs.nextNode++
		if !tried[cand] && !fs.faults.NodeDown(int(cand)) {
			return cand, true
		}
	}
	return -1, false
}

func (fs *FileSystem) appendBlock(meta *fileMeta, preferred transport.NodeID, data []byte) error {
	fs.mu.Lock()
	id := fmt.Sprintf("blk_%06d", fs.nextBlock)
	fs.nextBlock++
	replicas := fs.placeBlock(preferred)
	fs.mu.Unlock()
	if len(replicas) == 0 {
		return fmt.Errorf("hdfs: no live datanode for block %s", id)
	}

	written := make([]transport.NodeID, 0, len(replicas))
	tried := make(map[transport.NodeID]bool, len(replicas))
	for _, r := range replicas {
		tried[r] = true
	}
	for i := 0; i < len(replicas); i++ {
		node := replicas[i]
		err := fs.writeReplica(node, id, data)
		if err == nil {
			written = append(written, node)
			continue
		}
		// Datanode failed mid-write: re-place this replica on another live
		// node (Hadoop write-pipeline recovery).
		if alt, ok := fs.replacementNode(tried); ok {
			tried[alt] = true
			replicas[i] = alt
			fs.mReplaced.Inc()
			i--
			continue
		}
		for _, w := range written {
			_ = fs.disks[w].Remove(blockName(id))
		}
		return fmt.Errorf("hdfs: write block on node %d: %w", node, err)
	}
	// Write-through population: a just-flushed block is hot in every
	// replica node's page cache (all entries share the writer's buffer,
	// which is never mutated after flush).
	if fs.cache != nil {
		for _, node := range replicas {
			fs.cache.insert(node, id, data)
		}
	}
	meta.blocks = append(meta.blocks, Block{
		ID:       id,
		Offset:   meta.size,
		Size:     int64(len(data)),
		Replicas: replicas,
	})
	meta.size += int64(len(data))
	return nil
}

// Close flushes the final partial block and publishes the file. On error
// — whether from an earlier Write or the final flush — blocks already
// stored are removed from their replicas, so a failed write never leaks
// datanode space.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		w.discardBlocks()
		return w.err
	}
	if w.buf.Len() > 0 {
		if err := w.flushBlock(int64(w.buf.Len())); err != nil {
			w.err = err
			w.discardBlocks()
			return err
		}
	}
	w.fs.mu.Lock()
	w.fs.files[w.meta.name] = w.meta
	w.fs.mu.Unlock()
	w.published = true
	return nil
}

// Abort discards the file without publishing it, removing any blocks
// already flushed. It is a no-op after a successful Close. Failed task
// attempts use it to roll back partial output.
func (w *Writer) Abort() {
	if w.published {
		return
	}
	if w.closed && w.err == nil {
		return
	}
	w.closed = true
	if w.err == nil {
		w.err = fmt.Errorf("hdfs: file %q aborted", w.meta.name)
	}
	w.discardBlocks()
}

// discardBlocks removes every block flushed so far from its replicas and
// from every node's cache (write-through made them hot).
func (w *Writer) discardBlocks() {
	for _, b := range w.meta.blocks {
		if w.fs.cache != nil {
			w.fs.cache.invalidate(b.ID)
		}
		for _, node := range b.Replicas {
			_ = w.fs.disks[node].Remove(blockName(b.ID))
		}
	}
	w.meta.blocks = nil
	w.meta.size = 0
}

// WriteFile writes data as a complete file.
func (fs *FileSystem) WriteFile(name string, data []byte, preferred transport.NodeID) error {
	w := fs.Create(name, preferred)
	if _, err := w.Write(data); err != nil {
		_ = w.Close()
		return err
	}
	return w.Close()
}

func (fs *FileSystem) lookup(name string) (*fileMeta, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		return nil, &storage.ErrNotExist{Name: name}
	}
	return meta, nil
}

// Size returns a file's length in bytes.
func (fs *FileSystem) Size(name string) (int64, error) {
	meta, err := fs.lookup(name)
	if err != nil {
		return 0, err
	}
	return meta.size, nil
}

// Exists reports whether a file exists.
func (fs *FileSystem) Exists(name string) bool {
	_, err := fs.lookup(name)
	return err == nil
}

// List returns all file names with the given prefix, sorted.
func (fs *FileSystem) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var names []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Remove deletes a file and its blocks from all replicas.
func (fs *FileSystem) Remove(name string) error {
	fs.mu.Lock()
	meta, ok := fs.files[name]
	if ok {
		delete(fs.files, name)
	}
	fs.mu.Unlock()
	if !ok {
		return &storage.ErrNotExist{Name: name}
	}
	for _, b := range meta.blocks {
		if fs.cache != nil {
			fs.cache.invalidate(b.ID)
		}
		for _, node := range b.Replicas {
			_ = fs.disks[node].Remove(blockName(b.ID))
		}
	}
	return nil
}

// Blocks returns the block layout of a file. With the cache enabled each
// block also reports the nodes currently holding it hot (Cached), in the
// scheduler's preference order.
func (fs *FileSystem) Blocks(name string) ([]Block, error) {
	meta, err := fs.lookup(name)
	if err != nil {
		return nil, err
	}
	out := append([]Block(nil), meta.blocks...)
	if fs.cache != nil {
		for i := range out {
			out[i].Cached = fs.cache.holders(out[i])
		}
	}
	return out, nil
}

// readReplica reads one replica of a block, validating its length (a
// truncated block is as bad as a missing one).
func (fs *FileSystem) readReplica(src transport.NodeID, b Block) ([]byte, error) {
	f, err := fs.disks[src].Open(blockName(b.ID))
	if err != nil {
		return nil, fmt.Errorf("hdfs: open block %s on node %d: %w", b.ID, src, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("hdfs: read block %s on node %d: %w", b.ID, src, err)
	}
	if int64(len(data)) != b.Size {
		return nil, fmt.Errorf("hdfs: block %s on node %d truncated: %d of %d bytes",
			b.ID, src, len(data), b.Size)
	}
	return data, nil
}

// readBlock reads a block's bytes as observed from reader node `at`. With
// the cache enabled it checks the node's page cache first, dedups
// concurrent misses through a single flight, and populates the cache from
// the slow read (including remote fetches — the bytes land in the
// reader's cache, so the second remote read is free and uncharged).
//
// shared reports that the returned slice may also be referenced by the
// cache: the caller must treat it as read-only, cloning before any
// mutation. With the cache off (or for location-less clients, at < 0) the
// path is identical to a cache-less build: shared is false and the slice
// is caller-owned.
func (fs *FileSystem) readBlock(b Block, at transport.NodeID) (data []byte, shared bool, err error) {
	c := fs.cache
	if c == nil || at < 0 {
		data, err = fs.readBlockSlow(b, at)
		return data, false, err
	}
	if data, ok := fs.cacheLookup(at, b); ok {
		c.mHits.Inc()
		fs.traceCache("hit", b, at)
		return data, true, nil
	}
	f, leader := c.join(at, b.ID)
	if !leader {
		<-f.done
		if f.err == nil {
			c.mHits.Inc()
			fs.traceCache("hit", b, at)
			return f.data, true, nil
		}
		// The leader failed; retry independently so one injected fault
		// cannot fan out to every waiting reader.
		data, err = fs.readBlockSlow(b, at)
		return data, false, err
	}
	// Leader: re-check the cache (another flight may have populated it
	// between our lookup and join), then do the real read.
	if cached, ok := fs.cacheLookup(at, b); ok {
		c.mHits.Inc()
		fs.traceCache("hit", b, at)
		f.data = cached
		c.finish(at, b.ID, f)
		return cached, true, nil
	}
	c.mMisses.Inc()
	fs.traceCache("miss", b, at)
	data, err = fs.readBlockSlow(b, at)
	if err == nil {
		c.insert(at, b.ID, data)
		f.data = data
	}
	f.err = err
	c.finish(at, b.ID, f)
	return data, err == nil, err
}

// traceCache records a cache hit/miss instant; only reachable with the
// cache enabled, so cache-off runs trace no cache events at all.
func (fs *FileSystem) traceCache(what string, b Block, at transport.NodeID) {
	if fs.tr.Enabled() {
		fs.tr.Instant(int(at), "",
			fmt.Sprintf("hdfs:%s:%s:at%d:%d", what, b.ID, at, fs.readSeq.Add(1)), "cache-"+what, b.Size)
	}
}

// cacheLookup returns a block's cached payload at a node, first consulting
// the fault injector: a cached copy of a replica the injector has declared
// dead must not be served (the cache cannot resurrect a killed block), so
// the entry is dropped and the read falls through to failover.
func (fs *FileSystem) cacheLookup(at transport.NodeID, b Block) ([]byte, bool) {
	data, ok := fs.cache.get(at, b.ID)
	if !ok {
		return nil, false
	}
	if fs.faults.Armed() && fs.faults.WouldReplicaDown(int(at), b.ID) {
		fs.cache.drop(at, b.ID)
		return nil, false
	}
	return data, true
}

// readBlockSlow is the disk/network read path, byte-identical to the
// pre-cache readBlock: candidates are tried in order — the local replica
// first, then the declared replica list — and a dead or failing replica
// fails over to the next one (hdfs.failover.reads counts reads that did
// not succeed on their first choice). Remote reads charge the network.
// hdfs.bytes.local / hdfs.bytes.remote account where the bytes were
// served from, as observed by a node-resident reader.
func (fs *FileSystem) readBlockSlow(b Block, at transport.NodeID) ([]byte, error) {
	if fs.tr.Enabled() {
		sp := fs.tr.Start(int(at), "",
			fmt.Sprintf("hdfs:%s:at%d:%d", b.ID, at, fs.readSeq.Add(1)), "hdfs-read", "disk")
		data, err := fs.readBlockSlowInner(b, at)
		sp.EndBytes(int64(len(data)))
		return data, err
	}
	return fs.readBlockSlowInner(b, at)
}

func (fs *FileSystem) readBlockSlowInner(b Block, at transport.NodeID) ([]byte, error) {
	// The replica list is already in candidate order unless `at` holds a
	// replica that is not listed first; skip the reorder allocation in the
	// common single-replica and local-first cases.
	cands := b.Replicas
	for i, r := range b.Replicas {
		if r == at && i > 0 {
			reordered := make([]transport.NodeID, 0, len(b.Replicas))
			reordered = append(reordered, at)
			for _, o := range b.Replicas {
				if o != at {
					reordered = append(reordered, o)
				}
			}
			cands = reordered
			break
		}
	}
	var lastErr error
	for i, src := range cands {
		if err := fs.faults.ReplicaDown(int(src), b.ID); err != nil {
			lastErr = err
			continue
		}
		data, err := fs.readReplica(src, b)
		if err != nil {
			lastErr = err
			continue
		}
		if i > 0 {
			fs.mFailover.Inc()
		}
		if src == at {
			fs.mLocalBytes.Add(int64(len(data)))
		} else if at >= 0 {
			fs.mRemoteBytes.Add(int64(len(data)))
		}
		if src != at && at >= 0 && fs.charge != nil {
			fs.charge(src, at, int64(len(data)))
		}
		return data, nil
	}
	return nil, fmt.Errorf("hdfs: block %s: no readable replica: %w", b.ID, lastErr)
}

// ReadFile reads the whole file as observed from node at (-1 for a
// location-less client). The returned slice is caller-owned.
func (fs *FileSystem) ReadFile(name string, at transport.NodeID) ([]byte, error) {
	meta, err := fs.lookup(name)
	if err != nil {
		return nil, err
	}
	// Single-block fast path: hand the block's bytes back directly
	// instead of copying them through a bytes.Buffer. A cache-shared
	// slice is cloned to preserve caller ownership.
	if len(meta.blocks) == 1 {
		data, shared, err := fs.readBlock(meta.blocks[0], at)
		if err != nil {
			return nil, err
		}
		if shared {
			data = append([]byte(nil), data...)
		}
		return data, nil
	}
	var out bytes.Buffer
	out.Grow(int(meta.size))
	for _, b := range meta.blocks {
		data, _, err := fs.readBlock(b, at)
		if err != nil {
			return nil, err
		}
		out.Write(data)
	}
	return out.Bytes(), nil
}

// Open returns a streaming reader for the file as observed from node at.
func (fs *FileSystem) Open(name string, at transport.NodeID) (io.ReadCloser, error) {
	meta, err := fs.lookup(name)
	if err != nil {
		return nil, err
	}
	return &fileReader{fs: fs, blocks: meta.blocks, at: at}, nil
}

type fileReader struct {
	fs     *FileSystem
	blocks []Block
	at     transport.NodeID
	cur    io.Reader
	idx    int
}

func (r *fileReader) Read(p []byte) (int, error) {
	for {
		if r.cur != nil {
			n, err := r.cur.Read(p)
			if err == io.EOF {
				r.cur = nil
				if n > 0 {
					return n, nil
				}
				continue
			}
			return n, err
		}
		if r.idx >= len(r.blocks) {
			return 0, io.EOF
		}
		data, _, err := r.fs.readBlock(r.blocks[r.idx], r.at)
		if err != nil {
			return 0, err
		}
		r.idx++
		r.cur = bytes.NewReader(data)
	}
}

func (r *fileReader) Close() error { return nil }
