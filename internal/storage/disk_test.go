package storage

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// diskContract runs the behavioural contract every Disk implementation
// must satisfy.
func diskContract(t *testing.T, mk func(t *testing.T) Disk) {
	t.Run("createReadRoundTrip", func(t *testing.T) {
		d := mk(t)
		w, err := d.Create("a/b.txt")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte("hello ")); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte("world")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := d.Open("a/b.txt")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
		if string(data) != "hello world" {
			t.Fatalf("read %q", data)
		}
		if n, err := d.Size("a/b.txt"); err != nil || n != 11 {
			t.Fatalf("Size = %d, %v", n, err)
		}
	})
	t.Run("missingFile", func(t *testing.T) {
		d := mk(t)
		var notExist *ErrNotExist
		if _, err := d.Open("nope"); !errors.As(err, &notExist) {
			t.Errorf("Open(missing) = %v, want ErrNotExist", err)
		}
		if _, err := d.Size("nope"); !errors.As(err, &notExist) {
			t.Errorf("Size(missing) = %v, want ErrNotExist", err)
		}
		if err := d.Remove("nope"); !errors.As(err, &notExist) {
			t.Errorf("Remove(missing) = %v, want ErrNotExist", err)
		}
	})
	t.Run("overwrite", func(t *testing.T) {
		d := mk(t)
		for _, content := range []string{"first version", "v2"} {
			w, _ := d.Create("f")
			io.WriteString(w, content)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}
		r, _ := d.Open("f")
		data, _ := io.ReadAll(r)
		r.Close()
		if string(data) != "v2" {
			t.Fatalf("after overwrite read %q", data)
		}
	})
	t.Run("removeThenList", func(t *testing.T) {
		d := mk(t)
		for _, name := range []string{"x/1", "x/2", "y/1"} {
			w, _ := d.Create(name)
			io.WriteString(w, name)
			w.Close()
		}
		if err := d.Remove("x/1"); err != nil {
			t.Fatal(err)
		}
		got := d.List("x/")
		if len(got) != 1 || got[0] != "x/2" {
			t.Fatalf("List(x/) = %v", got)
		}
		if all := d.List(""); len(all) != 2 {
			t.Fatalf("List(\"\") = %v", all)
		}
	})
	t.Run("concurrentFiles", func(t *testing.T) {
		d := mk(t)
		var wg sync.WaitGroup
		errs := make([]error, 8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				name := fmt.Sprintf("c/%d", i)
				w, err := d.Create(name)
				if err != nil {
					errs[i] = err
					return
				}
				fmt.Fprintf(w, "data-%d", i)
				if err := w.Close(); err != nil {
					errs[i] = err
					return
				}
				r, err := d.Open(name)
				if err != nil {
					errs[i] = err
					return
				}
				data, _ := io.ReadAll(r)
				r.Close()
				if string(data) != fmt.Sprintf("data-%d", i) {
					errs[i] = fmt.Errorf("read %q", data)
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}
	})
}

func TestMemDisk(t *testing.T) {
	diskContract(t, func(t *testing.T) Disk { return NewMemDisk(0) })
}

func TestOSDisk(t *testing.T) {
	diskContract(t, func(t *testing.T) Disk {
		d, err := NewOSDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
}

func TestCostDiskPassthrough(t *testing.T) {
	diskContract(t, func(t *testing.T) Disk {
		cd := NewCostDisk(NewMemDisk(0), CostModel{}, nil)
		return cd
	})
}

func TestMemDiskCapacity(t *testing.T) {
	d := NewMemDisk(10)
	w, _ := d.Create("f")
	if _, err := w.Write([]byte("12345")); err != nil {
		t.Fatal(err)
	}
	var full *ErrDiskFull
	if _, err := w.Write([]byte("6789012345")); !errors.As(err, &full) {
		t.Fatalf("overfull write = %v, want ErrDiskFull", err)
	}
	// A small file still fits.
	w2, _ := d.Create("g")
	w2.Write([]byte("ok"))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 2 {
		t.Errorf("Used = %d, want 2", d.Used())
	}
}

func TestMemDiskUsedAccounting(t *testing.T) {
	d := NewMemDisk(0)
	w, _ := d.Create("a")
	w.Write(make([]byte, 100))
	w.Close()
	if d.Used() != 100 {
		t.Fatalf("Used = %d", d.Used())
	}
	// Overwrite with smaller content shrinks usage.
	w, _ = d.Create("a")
	w.Write(make([]byte, 40))
	w.Close()
	if d.Used() != 40 {
		t.Fatalf("Used after overwrite = %d", d.Used())
	}
	d.Remove("a")
	if d.Used() != 0 {
		t.Fatalf("Used after remove = %d", d.Used())
	}
}

func TestCostDiskChargesModeledTime(t *testing.T) {
	var charged time.Duration
	cd := NewCostDisk(NewMemDisk(0), CostModel{
		SeekLatency:      time.Millisecond,
		ReadBytesPerSec:  1 << 20,
		WriteBytesPerSec: 1 << 20,
	}, nil)
	cd.SetSleep(func(d time.Duration) { charged += d })

	w, _ := cd.Create("f") // seek
	w.Write(make([]byte, 1<<20))
	w.Close()
	if charged < time.Millisecond+900*time.Millisecond {
		t.Errorf("write charge %v, want >= ~1s", charged)
	}
	charged = 0
	r, _ := cd.Open("f") // seek
	io.ReadAll(r)
	r.Close()
	if charged < time.Millisecond+900*time.Millisecond {
		t.Errorf("read charge %v, want >= ~1s", charged)
	}
}

func TestCostDiskTimeScale(t *testing.T) {
	var base, scaled time.Duration
	mk := func(scale float64, out *time.Duration) *CostDisk {
		cd := NewCostDisk(NewMemDisk(0), CostModel{
			WriteBytesPerSec: 1 << 20, TimeScale: scale,
		}, nil)
		cd.SetSleep(func(d time.Duration) { *out += d })
		return cd
	}
	for _, c := range []struct {
		scale float64
		out   *time.Duration
	}{{1, &base}, {10, &scaled}} {
		cd := mk(c.scale, c.out)
		w, _ := cd.Create("f")
		w.Write(make([]byte, 512<<10))
		w.Close()
	}
	ratio := float64(scaled) / float64(base)
	if ratio < 9.5 || ratio > 10.5 {
		t.Errorf("TimeScale 10 changed charge by %.2fx, want ~10x", ratio)
	}
}

func TestCostDiskParallelSerialization(t *testing.T) {
	// With Parallel=1, two concurrent writers' modeled delays must
	// serialize: total wall >= sum of delays.
	cd := NewCostDisk(NewMemDisk(0), CostModel{
		WriteBytesPerSec: 10 << 20, // 10 MB/s
		Parallel:         1,
	}, nil)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, _ := cd.Create(fmt.Sprintf("f%d", i))
			w.Write(make([]byte, 512<<10)) // 50ms each
			w.Close()
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("two 50ms writes on Parallel=1 disk finished in %v, want >= ~100ms", elapsed)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	d := NewMemDisk(0)
	recs := []Record{
		{Key: []byte("alpha"), Value: []byte("1")},
		{Key: []byte(""), Value: []byte("empty key")},
		{Key: []byte("gamma"), Value: nil},
		{Key: make([]byte, 3000), Value: make([]byte, 70000)},
	}
	n, err := WriteRecords(d, "runs/r0", recs)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(recs)) {
		t.Fatalf("wrote %d records, want %d", n, len(recs))
	}
	got, err := ReadRecords(d, "runs/r0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if string(got[i].Key) != string(recs[i].Key) || string(got[i].Value) != string(recs[i].Value) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

// TestRecordRoundTripProperty: any sequence of key/value byte pairs
// survives a write/read cycle exactly.
func TestRecordRoundTripProperty(t *testing.T) {
	d := NewMemDisk(0)
	i := 0
	f := func(pairs [][2][]byte) bool {
		i++
		name := fmt.Sprintf("prop/%d", i)
		recs := make([]Record, len(pairs))
		for j, p := range pairs {
			recs[j] = Record{Key: p[0], Value: p[1]}
		}
		if _, err := WriteRecords(d, name, recs); err != nil {
			return false
		}
		got, err := ReadRecords(d, name)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for j := range recs {
			if string(got[j].Key) != string(recs[j].Key) ||
				string(got[j].Value) != string(recs[j].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordReaderTruncated(t *testing.T) {
	d := NewMemDisk(0)
	if _, err := WriteRecords(d, "r", []Record{{Key: []byte("k"), Value: []byte("a long enough value")}}); err != nil {
		t.Fatal(err)
	}
	// Corrupt: rewrite with only a prefix of the bytes.
	r, _ := d.Open("r")
	data, _ := io.ReadAll(r)
	r.Close()
	w, _ := d.Create("r")
	w.Write(data[:len(data)-5])
	w.Close()

	f, _ := d.Open("r")
	rr := NewRecordReader(f)
	_, err := rr.Next()
	rr.Close()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated record read: err = %v, want corruption error", err)
	}
}

func TestRecordWriterCounters(t *testing.T) {
	d := NewMemDisk(0)
	f, _ := d.Create("r")
	w := NewRecordWriter(f)
	for i := 0; i < 10; i++ {
		if err := w.Write([]byte("key"), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 10 {
		t.Errorf("Count = %d", w.Count())
	}
	if w.Bytes() != 10*8 {
		t.Errorf("Bytes = %d, want 80", w.Bytes())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSATA3Preset(t *testing.T) {
	m := SATA3()
	if m.ReadBytesPerSec <= 0 || m.WriteBytesPerSec <= 0 || m.SeekLatency <= 0 {
		t.Errorf("SATA3 preset incomplete: %+v", m)
	}
	if m.ReadBytesPerSec < m.WriteBytesPerSec {
		t.Errorf("SATA read should be at least as fast as write")
	}
}
