package storage

import "io"

// FaultPolicy decides injected IO failures for a FaultyDisk. The policy is
// consulted once per Create/Open; a non-nil error arms a fault on the
// returned handle. failAfter is the number of bytes the handle accepts
// (writes) or serves (reads) before every subsequent call returns err; the
// armed error is also surfaced from Close on a writer that never reached
// the threshold, so an armed fault always fires exactly once per handle.
//
// Implementations must be safe for concurrent use; storage deliberately
// knows nothing about how decisions are made (see internal/faults).
type FaultPolicy interface {
	CreateFault(name string) (failAfter int64, err error)
	OpenFault(name string) (failAfter int64, err error)
}

// FaultyDisk wraps a backing Disk and injects read/write errors according
// to a FaultPolicy. Metadata operations (Remove/Size/List) pass through
// untouched. With a nil policy the wrapper is transparent.
type FaultyDisk struct {
	backing Disk
	policy  FaultPolicy
}

// NewFaultyDisk wraps backing with the given policy.
func NewFaultyDisk(backing Disk, policy FaultPolicy) *FaultyDisk {
	return &FaultyDisk{backing: backing, policy: policy}
}

// Backing returns the wrapped disk (tests reach through to MemDisk.Used).
func (d *FaultyDisk) Backing() Disk { return d.backing }

type faultyWriter struct {
	io.WriteCloser
	remain int64
	err    error
	fired  bool
}

func (w *faultyWriter) Write(p []byte) (int, error) {
	if w.err == nil {
		return w.WriteCloser.Write(p)
	}
	if w.remain <= 0 {
		w.fired = true
		return 0, w.err
	}
	if int64(len(p)) > w.remain {
		n, err := w.WriteCloser.Write(p[:w.remain])
		w.remain -= int64(n)
		if err == nil {
			w.fired = true
			err = w.err
		}
		return n, err
	}
	n, err := w.WriteCloser.Write(p)
	w.remain -= int64(n)
	return n, err
}

func (w *faultyWriter) Close() error {
	cerr := w.WriteCloser.Close()
	if w.err != nil && !w.fired {
		// The armed fault never hit a Write (short file); surface it from
		// Close so the failure cannot be silently skipped.
		w.fired = true
		return w.err
	}
	return cerr
}

type faultyReader struct {
	io.ReadCloser
	remain int64
	err    error
}

func (r *faultyReader) Read(p []byte) (int, error) {
	if r.err == nil {
		return r.ReadCloser.Read(p)
	}
	if r.remain <= 0 {
		return 0, r.err
	}
	if int64(len(p)) > r.remain {
		p = p[:r.remain]
	}
	n, err := r.ReadCloser.Read(p)
	r.remain -= int64(n)
	return n, err
}

// Create implements Disk.
func (d *FaultyDisk) Create(name string) (io.WriteCloser, error) {
	w, err := d.backing.Create(name)
	if err != nil || d.policy == nil {
		return w, err
	}
	failAfter, ferr := d.policy.CreateFault(name)
	if ferr == nil {
		return w, nil
	}
	return &faultyWriter{WriteCloser: w, remain: failAfter, err: ferr}, nil
}

// Open implements Disk.
func (d *FaultyDisk) Open(name string) (io.ReadCloser, error) {
	r, err := d.backing.Open(name)
	if err != nil || d.policy == nil {
		return r, err
	}
	failAfter, ferr := d.policy.OpenFault(name)
	if ferr == nil {
		return r, nil
	}
	return &faultyReader{ReadCloser: r, remain: failAfter, err: ferr}, nil
}

// Remove implements Disk.
func (d *FaultyDisk) Remove(name string) error { return d.backing.Remove(name) }

// Size implements Disk.
func (d *FaultyDisk) Size(name string) (int64, error) { return d.backing.Size(name) }

// List implements Disk.
func (d *FaultyDisk) List(prefix string) []string { return d.backing.List(prefix) }

var _ Disk = (*FaultyDisk)(nil)
