package storage

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// scriptPolicy arms faults for names containing "bad", failing after a
// fixed byte threshold.
type scriptPolicy struct {
	failAfter int64
	err       error
}

func (p *scriptPolicy) CreateFault(name string) (int64, error) {
	if strings.Contains(name, "bad") {
		return p.failAfter, p.err
	}
	return -1, nil
}

func (p *scriptPolicy) OpenFault(name string) (int64, error) {
	return p.CreateFault(name)
}

func TestFaultyDiskTransparentWithoutFault(t *testing.T) {
	mem := NewMemDisk(0)
	errBoom := errors.New("boom")
	d := NewFaultyDisk(mem, &scriptPolicy{failAfter: 4, err: errBoom})
	if d.Backing() != Disk(mem) {
		t.Fatal("Backing should return the wrapped disk")
	}
	f, err := d.Create("ok/file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := d.Open("ok/file")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("read %q, %v", data, err)
	}
	r.Close()
	if n, err := d.Size("ok/file"); err != nil || n != 11 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if got := d.List("ok/"); len(got) != 1 {
		t.Fatalf("List = %v", got)
	}
}

func TestFaultyDiskWriteFailsAfterThreshold(t *testing.T) {
	mem := NewMemDisk(0)
	errBoom := errors.New("boom")
	d := NewFaultyDisk(mem, &scriptPolicy{failAfter: 4, err: errBoom})
	f, err := d.Create("bad/file")
	if err != nil {
		t.Fatal(err)
	}
	// First 4 bytes are accepted, the rest fails with the armed error.
	n, err := f.Write([]byte("123456"))
	if n != 4 || !errors.Is(err, errBoom) {
		t.Fatalf("Write = %d, %v; want 4, boom", n, err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, errBoom) {
		t.Fatalf("second Write = %v; want boom", err)
	}
	f.Close()
}

func TestFaultyDiskShortWriteFailsOnClose(t *testing.T) {
	mem := NewMemDisk(0)
	errBoom := errors.New("boom")
	d := NewFaultyDisk(mem, &scriptPolicy{failAfter: 1 << 20, err: errBoom})
	f, err := d.Create("bad/short")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("tiny")); err != nil {
		t.Fatal(err)
	}
	// The file never reached the threshold; the armed fault must still
	// fire exactly once, from Close.
	if err := f.Close(); !errors.Is(err, errBoom) {
		t.Fatalf("Close = %v; want boom", err)
	}
}

func TestFaultyDiskReadFailsAfterThreshold(t *testing.T) {
	mem := NewMemDisk(0)
	errBoom := errors.New("boom")
	d := NewFaultyDisk(mem, &scriptPolicy{failAfter: 3, err: errBoom})
	// Store via the backing disk so the write is clean.
	f, _ := mem.Create("bad/file")
	f.Write([]byte("abcdef"))
	f.Close()

	r, err := d.Open("bad/file")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if !errors.Is(err, errBoom) {
		t.Fatalf("ReadAll err = %v; want boom", err)
	}
	if string(data) != "abc" {
		t.Fatalf("read %q before fault; want \"abc\"", data)
	}
}

func TestFaultyDiskNilPolicyPassthrough(t *testing.T) {
	mem := NewMemDisk(0)
	d := NewFaultyDisk(mem, nil)
	f, err := d.Create("bad/file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
