package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Record is a raw key/value byte pair, the unit stored in spill files,
// shuffle segments and HDFS block payloads. Higher layers define how
// typed values map to bytes.
type Record struct {
	Key   []byte
	Value []byte
}

// RecordWriter writes length-prefixed records to an underlying writer.
// Format per record: uvarint(keyLen) keyBytes uvarint(valueLen) valueBytes.
type RecordWriter struct {
	w       *bufio.Writer
	c       io.Closer
	scratch [binary.MaxVarintLen64]byte
	bytes   int64
	count   int64
}

// NewRecordWriter wraps w. If w is also an io.Closer, Close closes it.
func NewRecordWriter(w io.Writer) *RecordWriter {
	rw := &RecordWriter{w: bufio.NewWriterSize(w, 64<<10)}
	if c, ok := w.(io.Closer); ok {
		rw.c = c
	}
	return rw
}

// Write appends one record.
func (w *RecordWriter) Write(key, value []byte) error {
	n := binary.PutUvarint(w.scratch[:], uint64(len(key)))
	if _, err := w.w.Write(w.scratch[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(key); err != nil {
		return err
	}
	n = binary.PutUvarint(w.scratch[:], uint64(len(value)))
	if _, err := w.w.Write(w.scratch[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(value); err != nil {
		return err
	}
	w.bytes += int64(len(key) + len(value))
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *RecordWriter) Count() int64 { return w.count }

// Bytes returns the payload bytes written (keys+values, excluding framing).
func (w *RecordWriter) Bytes() int64 { return w.bytes }

// Close flushes buffered data and closes the underlying writer if it is a
// Closer.
func (w *RecordWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		if w.c != nil {
			w.c.Close()
		}
		return err
	}
	if w.c != nil {
		return w.c.Close()
	}
	return nil
}

// RecordReader reads records written by RecordWriter.
type RecordReader struct {
	r *bufio.Reader
	c io.Closer
}

// NewRecordReader wraps r. If r is also an io.Closer, Close closes it.
func NewRecordReader(r io.Reader) *RecordReader {
	rr := &RecordReader{r: bufio.NewReaderSize(r, 64<<10)}
	if c, ok := r.(io.Closer); ok {
		rr.c = c
	}
	return rr
}

const maxRecordSide = 1 << 30 // sanity bound on one key or value

// Next returns the next record, or io.EOF at end of stream. The returned
// slices are freshly allocated and owned by the caller.
func (r *RecordReader) Next() (Record, error) {
	klen, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("storage: truncated record: %w", err)
		}
		return Record{}, err
	}
	if klen > maxRecordSide {
		return Record{}, fmt.Errorf("storage: implausible key length %d", klen)
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(r.r, key); err != nil {
		return Record{}, fmt.Errorf("storage: truncated key: %w", err)
	}
	vlen, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("storage: truncated value length: %w", err)
	}
	if vlen > maxRecordSide {
		return Record{}, fmt.Errorf("storage: implausible value length %d", vlen)
	}
	value := make([]byte, vlen)
	if _, err := io.ReadFull(r.r, value); err != nil {
		return Record{}, fmt.Errorf("storage: truncated value: %w", err)
	}
	return Record{Key: key, Value: value}, nil
}

// Close closes the underlying reader if it is a Closer.
func (r *RecordReader) Close() error {
	if r.c != nil {
		return r.c.Close()
	}
	return nil
}

// WriteRecords writes all records to a named file on disk and returns the
// record count.
func WriteRecords(d Disk, name string, recs []Record) (int64, error) {
	f, err := d.Create(name)
	if err != nil {
		return 0, err
	}
	w := NewRecordWriter(f)
	for _, rec := range recs {
		if err := w.Write(rec.Key, rec.Value); err != nil {
			w.Close()
			return 0, err
		}
	}
	return w.Count(), w.Close()
}

// ReadRecords reads every record from a named file.
func ReadRecords(d Disk, name string) ([]Record, error) {
	f, err := d.Open(name)
	if err != nil {
		return nil, err
	}
	r := NewRecordReader(f)
	defer r.Close()
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}
