// Package storage provides the local-disk substrate used by both engines:
// an in-memory disk for tests, a real-filesystem disk, and a cost-model
// disk that charges seek latency and throughput-proportional delays so a
// scaled-down single-machine run preserves the relative cost of disk IO on
// a commodity cluster (SATA-III in the paper's Table 1).
//
// The package also provides length-prefixed record files used for map-side
// spills, shuffle segments and HDFS block payloads.
package storage

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/vtime"
)

// Disk abstracts a node-local disk. Implementations must be safe for
// concurrent use by multiple tasks on the same node.
type Disk interface {
	// Create opens a new file for writing, truncating any existing file
	// with the same name.
	Create(name string) (io.WriteCloser, error)
	// Open opens an existing file for reading.
	Open(name string) (io.ReadCloser, error)
	// Remove deletes a file. Removing a missing file is an error.
	Remove(name string) error
	// Size returns the byte size of a file.
	Size(name string) (int64, error)
	// List returns the names of all files with the given prefix, sorted.
	List(prefix string) []string
}

// ErrNotExist is returned when a named file is missing.
type ErrNotExist struct{ Name string }

func (e *ErrNotExist) Error() string { return "storage: file does not exist: " + e.Name }

// ErrDiskFull is returned by writes that exceed a disk's capacity.
type ErrDiskFull struct{ Name string }

func (e *ErrDiskFull) Error() string { return "storage: disk full writing " + e.Name }

// MemDisk is an in-memory Disk. The zero value is not usable; use
// NewMemDisk. Capacity limits (bytes) support disk-full failure injection;
// capacity <= 0 means unlimited.
type MemDisk struct {
	mu       sync.Mutex
	files    map[string][]byte
	used     int64
	capacity int64
}

// NewMemDisk returns an empty in-memory disk with the given byte capacity
// (<= 0 for unlimited).
func NewMemDisk(capacity int64) *MemDisk {
	return &MemDisk{files: make(map[string][]byte), capacity: capacity}
}

// Used returns the number of bytes currently stored.
func (d *MemDisk) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

type memWriter struct {
	d      *MemDisk
	name   string
	buf    bytes.Buffer
	closed bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("storage: write to closed file %q", w.name)
	}
	w.d.mu.Lock()
	cap, used := w.d.capacity, w.d.used
	w.d.mu.Unlock()
	if cap > 0 && used+int64(w.buf.Len()+len(p)) > cap {
		return 0, &ErrDiskFull{Name: w.name}
	}
	return w.buf.Write(p)
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	if old, ok := w.d.files[w.name]; ok {
		w.d.used -= int64(len(old))
	}
	data := append([]byte(nil), w.buf.Bytes()...)
	if w.d.capacity > 0 && w.d.used+int64(len(data)) > w.d.capacity {
		return &ErrDiskFull{Name: w.name}
	}
	w.d.files[w.name] = data
	w.d.used += int64(len(data))
	return nil
}

// Create implements Disk.
func (d *MemDisk) Create(name string) (io.WriteCloser, error) {
	return &memWriter{d: d, name: name}, nil
}

// Open implements Disk.
func (d *MemDisk) Open(name string) (io.ReadCloser, error) {
	d.mu.Lock()
	data, ok := d.files[name]
	d.mu.Unlock()
	if !ok {
		return nil, &ErrNotExist{Name: name}
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// Remove implements Disk.
func (d *MemDisk) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, ok := d.files[name]
	if !ok {
		return &ErrNotExist{Name: name}
	}
	d.used -= int64(len(data))
	delete(d.files, name)
	return nil
}

// Size implements Disk.
func (d *MemDisk) Size(name string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, ok := d.files[name]
	if !ok {
		return 0, &ErrNotExist{Name: name}
	}
	return int64(len(data)), nil
}

// List implements Disk.
func (d *MemDisk) List(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var names []string
	for name := range d.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// OSDisk stores files under a root directory on the real filesystem. File
// names may contain '/' which map to subdirectories.
type OSDisk struct {
	root string
}

// NewOSDisk returns a Disk rooted at dir, creating it if needed.
func NewOSDisk(dir string) (*OSDisk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create root: %w", err)
	}
	return &OSDisk{root: dir}, nil
}

func (d *OSDisk) path(name string) string { return filepath.Join(d.root, filepath.FromSlash(name)) }

// Create implements Disk.
func (d *OSDisk) Create(name string) (io.WriteCloser, error) {
	p := d.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	return os.Create(p)
}

// Open implements Disk.
func (d *OSDisk) Open(name string) (io.ReadCloser, error) {
	f, err := os.Open(d.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &ErrNotExist{Name: name}
		}
		return nil, err
	}
	return f, nil
}

// Remove implements Disk.
func (d *OSDisk) Remove(name string) error {
	err := os.Remove(d.path(name))
	if os.IsNotExist(err) {
		return &ErrNotExist{Name: name}
	}
	return err
}

// Size implements Disk.
func (d *OSDisk) Size(name string) (int64, error) {
	fi, err := os.Stat(d.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, &ErrNotExist{Name: name}
		}
		return 0, err
	}
	return fi.Size(), nil
}

// List implements Disk.
func (d *OSDisk) List(prefix string) []string {
	var names []string
	_ = filepath.Walk(d.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return nil
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	sort.Strings(names)
	return names
}

// CostModel describes the performance of a modeled disk. A scaled-down
// run uses TimeScale < 1 to compress modeled delays while preserving
// their ratio to compute time.
type CostModel struct {
	// SeekLatency is charged once per Create/Open/Remove.
	SeekLatency time.Duration
	// ReadBytesPerSec and WriteBytesPerSec are streaming throughputs.
	ReadBytesPerSec  int64
	WriteBytesPerSec int64
	// TimeScale multiplies every modeled delay (0 treated as 1).
	TimeScale float64
	// Parallel is the number of concurrent IO streams the node's storage
	// sustains at full throughput (the paper's nodes had 5 local disks).
	// Further concurrent accessors queue, which is what makes heavy
	// spill/shuffle traffic expensive. 0 is treated as 1.
	Parallel int
}

// SATA3 is a cost model resembling the paper's SATA-III local disks.
func SATA3() CostModel {
	return CostModel{
		SeekLatency:      8 * time.Millisecond,
		ReadBytesPerSec:  150 << 20,
		WriteBytesPerSec: 120 << 20,
		TimeScale:        1,
	}
}

func (m CostModel) scale(d time.Duration) time.Duration {
	s := m.TimeScale
	if s == 0 {
		s = 1
	}
	return time.Duration(float64(d) * s)
}

func (m CostModel) readDelay(n int) time.Duration {
	if m.ReadBytesPerSec <= 0 {
		return 0
	}
	return m.scale(time.Duration(float64(n) / float64(m.ReadBytesPerSec) * float64(time.Second)))
}

func (m CostModel) writeDelay(n int) time.Duration {
	if m.WriteBytesPerSec <= 0 {
		return 0
	}
	return m.scale(time.Duration(float64(n) / float64(m.WriteBytesPerSec) * float64(time.Second)))
}

// CostDisk wraps a backing Disk and charges modeled delays plus metrics for
// every operation. Metrics recorded: disk.read.bytes, disk.write.bytes,
// disk.read.ops, disk.write.ops, disk.time (timer).
type CostDisk struct {
	backing Disk
	model   CostModel
	reg     *metrics.Registry
	// slots serializes modeled delays so aggregate throughput cannot
	// exceed Parallel concurrent streams.
	slots chan struct{}
	// sleep, when non-nil, replaces the clock for tests (SetSleep).
	sleep func(time.Duration)
	// clock pays modeled delays; node attributes them (vtime.Driver when
	// the disk is not part of a cluster).
	clock vtime.Clock
	node  int
}

// NewCostDisk wraps backing with the given model, recording into reg
// (which may be nil for no metrics).
func NewCostDisk(backing Disk, model CostModel, reg *metrics.Registry) *CostDisk {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	par := model.Parallel
	if par <= 0 {
		par = 1
	}
	return &CostDisk{
		backing: backing,
		model:   model,
		reg:     reg,
		slots:   make(chan struct{}, par),
		clock:   vtime.Real(),
		node:    vtime.Driver,
	}
}

// SetSleep replaces the delay function; tests use this to capture modeled
// time without real sleeping. It overrides the clock.
func (d *CostDisk) SetSleep(fn func(time.Duration)) { d.sleep = fn }

// SetClock routes modeled delays through clk, attributed to node's disk
// lane. The cluster wires every node disk here; the default is the real
// clock (plain sleeps).
func (d *CostDisk) SetClock(clk vtime.Clock, node int) {
	if clk != nil {
		d.clock, d.node = clk, node
	}
}

func (d *CostDisk) charge(dur time.Duration) {
	if dur <= 0 {
		return
	}
	d.reg.Observe("disk.time", dur)
	d.slots <- struct{}{}
	if d.sleep != nil {
		d.sleep(dur)
	} else {
		d.clock.Charge(d.node, vtime.Disk, dur)
	}
	<-d.slots
}

type costWriter struct {
	io.WriteCloser
	d *CostDisk
}

func (w *costWriter) Write(p []byte) (int, error) {
	n, err := w.WriteCloser.Write(p)
	if n > 0 {
		w.d.reg.Add("disk.write.bytes", int64(n))
		w.d.charge(w.d.model.writeDelay(n))
	}
	return n, err
}

type costReader struct {
	io.ReadCloser
	d *CostDisk
}

func (r *costReader) Read(p []byte) (int, error) {
	n, err := r.ReadCloser.Read(p)
	if n > 0 {
		r.d.reg.Add("disk.read.bytes", int64(n))
		r.d.charge(r.d.model.readDelay(n))
	}
	return n, err
}

// Create implements Disk.
func (d *CostDisk) Create(name string) (io.WriteCloser, error) {
	d.reg.Inc("disk.write.ops")
	d.charge(d.model.scale(d.model.SeekLatency))
	w, err := d.backing.Create(name)
	if err != nil {
		return nil, err
	}
	return &costWriter{WriteCloser: w, d: d}, nil
}

// Open implements Disk.
func (d *CostDisk) Open(name string) (io.ReadCloser, error) {
	d.reg.Inc("disk.read.ops")
	d.charge(d.model.scale(d.model.SeekLatency))
	r, err := d.backing.Open(name)
	if err != nil {
		return nil, err
	}
	return &costReader{ReadCloser: r, d: d}, nil
}

// Remove implements Disk.
func (d *CostDisk) Remove(name string) error {
	d.charge(d.model.scale(d.model.SeekLatency))
	return d.backing.Remove(name)
}

// Size implements Disk.
func (d *CostDisk) Size(name string) (int64, error) { return d.backing.Size(name) }

// List implements Disk.
func (d *CostDisk) List(prefix string) []string { return d.backing.List(prefix) }

var (
	_ Disk = (*MemDisk)(nil)
	_ Disk = (*OSDisk)(nil)
	_ Disk = (*CostDisk)(nil)
)
