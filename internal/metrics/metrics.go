// Package metrics provides lightweight counters, gauges and timers used by
// the HAMR runtime, the MapReduce baseline and the benchmark harness to
// account for work performed (bytes moved, bins scheduled, spills, worker
// busy time, ...).
//
// All operations are safe for concurrent use. A Registry is a flat,
// name-addressed collection; names are dotted paths by convention, e.g.
// "shuffle.bytes" or "disk.read.bytes".
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta. Negative deltas are permitted so
// gauges-on-counters (e.g. queue depth) can reuse the type, but most
// callers only ever add positive values.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Timer accumulates elapsed durations, e.g. total worker busy time.
type Timer struct {
	ns    atomic.Int64
	count atomic.Int64
	maxNS atomic.Int64
}

// Observe records one elapsed duration.
func (t *Timer) Observe(d time.Duration) {
	ns := int64(d)
	t.ns.Add(ns)
	t.count.Add(1)
	for {
		cur := t.maxNS.Load()
		if ns <= cur || t.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// ObserveN records one aggregate observation covering n underlying events:
// total is added to the accumulated duration, count advances by n, and the
// max tracks the aggregate observation. Batched consumers (e.g. the
// network delivery loop) use it to charge a whole drained batch with a
// single timer update instead of one per message; Total and Mean are
// unchanged versus n individual Observe calls with the same sum.
func (t *Timer) ObserveN(total time.Duration, n int64) {
	if n <= 0 {
		return
	}
	ns := int64(total)
	t.ns.Add(ns)
	t.count.Add(n)
	for {
		cur := t.maxNS.Load()
		if ns <= cur || t.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Time runs fn and records its wall-clock duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// Total returns the accumulated duration across all observations.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Max returns the largest single observation.
func (t *Timer) Max() time.Duration { return time.Duration(t.maxNS.Load()) }

// Mean returns the mean observation, or zero if none were recorded.
func (t *Timer) Mean() time.Duration {
	n := t.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(t.ns.Load() / n)
}

// Registry is a named collection of counters and timers.
//
// Lookups take a read lock only, so occasional name-keyed access scales;
// hot paths should still resolve their *Counter / *Timer handle once and
// hold onto it — the handles themselves are lock-free atomics, and a map
// lookup plus string hash per event is measurable overhead at bin/KV
// rates (the flowlet runtime resolves its handles at job construction).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Timer returns the timer with the given name, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[name]; ok {
		return t
	}
	t = &Timer{}
	r.timers[name] = t
	return t
}

// Add is shorthand for Counter(name).Add(delta).
func (r *Registry) Add(name string, delta int64) { r.Counter(name).Add(delta) }

// Inc is shorthand for Counter(name).Inc().
func (r *Registry) Inc(name string) { r.Counter(name).Inc() }

// Observe is shorthand for Timer(name).Observe(d).
func (r *Registry) Observe(name string, d time.Duration) { r.Timer(name).Observe(d) }

// Snapshot is a point-in-time copy of a registry's values.
type Snapshot struct {
	Counters map[string]int64
	Timers   map[string]time.Duration
}

// Snapshot copies out all current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Timers:   make(map[string]time.Duration, len(r.timers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.Total()
	}
	return s
}

// Merge adds every counter and timer total from other into r. It is used to
// aggregate per-node registries into a cluster-wide view.
func (r *Registry) Merge(other *Registry) {
	snap := other.Snapshot()
	for name, v := range snap.Counters {
		r.Counter(name).Add(v)
	}
	for name, d := range snap.Timers {
		r.Timer(name).Observe(d)
	}
}

// String renders the snapshot sorted by name, one entry per line.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s.Counters)+len(s.Timers))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Timers {
		names = append(names, n+" (timer)")
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		if strings.HasSuffix(n, " (timer)") {
			base := strings.TrimSuffix(n, " (timer)")
			fmt.Fprintf(&b, "%s: %s\n", n, s.Timers[base])
		} else {
			fmt.Fprintf(&b, "%s: %d\n", n, s.Counters[n])
		}
	}
	return b.String()
}

// Get returns a counter value from the snapshot (zero if absent).
func (s Snapshot) Get(name string) int64 { return s.Counters[name] }
