package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc("hits")
				r.Add("bytes", 3)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("hits = %d", got)
	}
	if got := r.Counter("bytes").Value(); got != 24000 {
		t.Fatalf("bytes = %d", got)
	}
}

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not stable per name")
	}
	if r.Counter("x") == r.Counter("y") {
		t.Fatal("distinct names share a counter")
	}
}

func TestTimerStats(t *testing.T) {
	var tm Timer
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	tm.Observe(20 * time.Millisecond)
	if tm.Count() != 3 {
		t.Errorf("Count = %d", tm.Count())
	}
	if tm.Total() != 60*time.Millisecond {
		t.Errorf("Total = %v", tm.Total())
	}
	if tm.Max() != 30*time.Millisecond {
		t.Errorf("Max = %v", tm.Max())
	}
	if tm.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v", tm.Mean())
	}
}

func TestTimerZero(t *testing.T) {
	var tm Timer
	if tm.Mean() != 0 || tm.Max() != 0 || tm.Total() != 0 {
		t.Fatal("zero timer not zero")
	}
}

func TestTimerTime(t *testing.T) {
	var tm Timer
	tm.Time(func() { time.Sleep(5 * time.Millisecond) })
	if tm.Total() < 4*time.Millisecond {
		t.Errorf("Time recorded %v", tm.Total())
	}
}

func TestSnapshotAndMerge(t *testing.T) {
	a := NewRegistry()
	a.Add("n", 5)
	a.Observe("t", time.Second)
	b := NewRegistry()
	b.Add("n", 7)
	b.Add("only-b", 1)
	b.Observe("t", 2*time.Second)

	a.Merge(b)
	s := a.Snapshot()
	if s.Get("n") != 12 {
		t.Errorf("merged n = %d", s.Get("n"))
	}
	if s.Get("only-b") != 1 {
		t.Errorf("merged only-b = %d", s.Get("only-b"))
	}
	if s.Timers["t"] != 3*time.Second {
		t.Errorf("merged t = %v", s.Timers["t"])
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	r.Add("n", 1)
	s := r.Snapshot()
	r.Add("n", 10)
	if s.Get("n") != 1 {
		t.Fatal("snapshot mutated after the fact")
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Add("zebra", 1)
	r.Add("alpha", 2)
	r.Observe("middle", time.Second)
	out := r.Snapshot().String()
	ia, iz := strings.Index(out, "alpha"), strings.Index(out, "zebra")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("String not sorted:\n%s", out)
	}
	if !strings.Contains(out, "middle (timer): 1s") {
		t.Fatalf("timer missing:\n%s", out)
	}
}
