package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestMergeWhileSnapshotting merges several per-node registries into one
// cluster registry while another goroutine snapshots it continuously —
// the aggregation pattern the harness uses at job end. Run under -race
// in CI. No count may be lost, no snapshot may run backwards or overshoot
// the final total.
func TestMergeWhileSnapshotting(t *testing.T) {
	const nodes = 4
	const perNode = 1000

	dst := NewRegistry()
	srcs := make([]*Registry, nodes)
	for i := range srcs {
		srcs[i] = NewRegistry()
		srcs[i].Add("events", perNode)
		srcs[i].Timer("busy").Observe(time.Second)
	}

	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := dst.Snapshot().Get("events")
			if v < last {
				t.Errorf("snapshot went backwards: %d -> %d", last, v)
				return
			}
			if v > nodes*perNode {
				t.Errorf("snapshot overshot the total: %d", v)
				return
			}
			last = v
		}
	}()

	var mergeWG sync.WaitGroup
	for _, src := range srcs {
		mergeWG.Add(1)
		go func(src *Registry) {
			defer mergeWG.Done()
			dst.Merge(src)
		}(src)
	}
	mergeWG.Wait()
	close(stop)
	snapWG.Wait()

	if got := dst.Snapshot().Get("events"); got != nodes*perNode {
		t.Errorf("merged counter = %d, want %d", got, nodes*perNode)
	}
	if got := dst.Timer("busy").Total(); got != nodes*time.Second {
		t.Errorf("merged timer total = %v, want %v", got, nodes*time.Second)
	}
	if got := dst.Timer("busy").Count(); got != nodes {
		t.Errorf("merged timer count = %d, want %d", got, nodes)
	}
}

// TestObserveNZeroCount pins the batched-observation edge cases: n <= 0
// must leave the timer untouched (no phantom observations, Mean stays
// defined), and a normal aggregate observation must match n individual
// ones in Total and Count.
func TestObserveNZeroCount(t *testing.T) {
	var tm Timer
	tm.ObserveN(5*time.Second, 0)
	tm.ObserveN(3*time.Second, -7)
	if tm.Count() != 0 || tm.Total() != 0 || tm.Max() != 0 {
		t.Errorf("n<=0 mutated the timer: count=%d total=%v max=%v",
			tm.Count(), tm.Total(), tm.Max())
	}
	if tm.Mean() != 0 {
		t.Errorf("Mean with zero observations = %v, want 0", tm.Mean())
	}

	tm.ObserveN(90*time.Millisecond, 3)
	if tm.Count() != 3 || tm.Total() != 90*time.Millisecond {
		t.Errorf("aggregate observation: count=%d total=%v, want 3/90ms",
			tm.Count(), tm.Total())
	}
	if tm.Mean() != 30*time.Millisecond {
		t.Errorf("Mean = %v, want 30ms", tm.Mean())
	}
	// The max tracks the aggregate, matching ObserveN's documentation.
	if tm.Max() != 90*time.Millisecond {
		t.Errorf("Max = %v, want 90ms", tm.Max())
	}

	var individual Timer
	for i := 0; i < 3; i++ {
		individual.Observe(30 * time.Millisecond)
	}
	if individual.Total() != tm.Total() || individual.Count() != tm.Count() {
		t.Errorf("aggregate (total=%v count=%d) != individual (total=%v count=%d)",
			tm.Total(), tm.Count(), individual.Total(), individual.Count())
	}
}
