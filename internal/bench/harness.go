package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/apps/mrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/trace"
	"github.com/hamr-go/hamr/internal/vtime"
)

// Harness generates the benchmark inputs once and runs each benchmark on
// either engine over a fresh cluster built from the spec.
type Harness struct {
	Spec  ClusterSpec
	Scale Scale

	// Trace attaches a span recorder to every cluster the harness builds;
	// the recorder of the most recent run on each engine is kept in
	// LastMRTrace / LastHAMRTrace for export and critical-path analysis.
	// Off by default — the engines' hot paths stay untouched.
	Trace         bool
	LastMRTrace   *trace.Tracer
	LastHAMRTrace *trace.Tracer

	// LastHAMR is the JobResult of the most recent HAMR job run by the
	// harness (the last job if a benchmark chains several). It exposes
	// the engine's hot-path health counters — flow.gated, stalls,
	// bins.dropped — so callers can verify a measurement was not
	// distorted by harness overhead or silent data loss.
	LastHAMR *core.JobResult

	// LastMR is the metrics snapshot of the most recent baseline run's
	// cluster, captured before the cluster is torn down; WriteIOReport
	// renders its HDFS read-path and cache counters.
	LastMR metrics.Snapshot

	// LastHAMRCluster is the cluster-wide metrics snapshot of the most
	// recent HAMR run, captured before teardown. JobResult.Metrics carries
	// only the job's own deltas; substrate counters accounted outside any
	// job — the fabric's net.bytes/net.msgs, bins.dropped — live here.
	LastHAMRCluster metrics.Snapshot

	// LastWall / LastModeled record the most recent run's wall-clock cost
	// and modeled duration. In real-clock mode they are equal; under
	// Spec.VClock the modeled figure comes from the virtual clock's
	// logical lanes and is what RunHAMR/RunMR return.
	LastWall    time.Duration
	LastModeled time.Duration

	// LastBusy decomposes the most recent run's modeled time by resource
	// (virtual-clock runs only; nil in real mode). Busy time is summed
	// across nodes, undivided by parallelism.
	LastBusy map[vtime.Resource]time.Duration

	movies300 []byte // "300GB" movies (K-Means / Classification)
	movies30  []byte // "30GB" movies (Histograms)
	text      []byte
	docs      []byte
	webgraph  []byte
	rmat      []byte
	centroids []hamrapps.Centroid
}

// NewHarness prepares a harness with deterministic datasets.
func NewHarness(spec ClusterSpec, scale Scale) *Harness {
	h := &Harness{Spec: spec, Scale: scale}
	h.movies300 = datagen.Movies(datagen.MoviesConfig{
		Seed: 1001, Movies: scale.KMeansMovies, Users: scale.KMeansUsers,
		Clusters: scale.KClusters,
	})
	h.movies30 = datagen.Movies(datagen.MoviesConfig{
		Seed: 1002, Movies: scale.HistogramMovies, Users: scale.HistogramUsers,
	})
	h.text = datagen.Text(datagen.TextConfig{
		Seed: 1003, Vocabulary: scale.WordCountVocab, Lines: scale.WordCountLines,
	})
	h.docs = datagen.Docs(datagen.DocsConfig{
		Seed: 1004, Docs: scale.NaiveBayesDocs,
	})
	h.webgraph = datagen.WebGraph(datagen.WebGraphConfig{
		Seed: 1005, Pages: scale.PageRankPages,
	})
	h.rmat = datagen.RMAT(datagen.RMATConfig{
		Seed: 1006, Scale: scale.KCliquesScale, Edges: scale.KCliquesEdges,
	})
	h.centroids = datagen.InitialCentroids(h.movies300, scale.KClusters)
	return h
}

// newClock builds the per-run virtual clock when the spec asks for one
// (nil means real clock). Task-startup charges keep a real hold: they
// are issued while the task's YARN container is held, and that hold is
// what spreads sibling allocations across nodes — a scheduling effect a
// purely logical charge cannot reproduce.
//
// Disk charges are deliberately NOT divided by the disk model's stream
// parallelism (vtime.SetParallelism would do it): with more workers
// than disk slots the slot pool runs saturated and queue wait pushes
// real per-node disk wall time toward the serialized sum, which the
// undivided lane matches far better across Table 2.
func (h *Harness) newClock() *vtime.VirtualClock {
	if !h.Spec.VClock {
		return nil
	}
	vc := vtime.NewVirtual(h.Spec.Nodes)
	vc.SetRealHold(vtime.Startup, true)
	return vc
}

// traceClock picks the clock new tracers stamp from: the run's virtual
// clock when there is one, the real clock otherwise.
func (h *Harness) traceClock(vc *vtime.VirtualClock) vtime.Clock {
	if vc != nil {
		return vc
	}
	return vtime.Real()
}

// measure starts a wall+modeled interval and returns the stop function
// recording both in the harness; the returned duration is the one the
// tables report (modeled under VClock, wall otherwise).
func (h *Harness) measure(vc *vtime.VirtualClock) func() time.Duration {
	start := time.Now()
	var mark vtime.Mark
	if vc != nil {
		mark = vc.Mark()
	}
	return func() time.Duration {
		h.LastWall = time.Since(start)
		h.LastModeled = h.LastWall
		if vc != nil {
			h.LastModeled = vc.Since(mark)
			h.LastBusy = map[vtime.Resource]time.Duration{}
			for _, r := range vtime.Resources() {
				h.LastBusy[r] = vc.Busy(r)
			}
		}
		return h.LastModeled
	}
}

func (h *Harness) data(b Benchmark) []byte {
	switch b {
	case KMeans, Classification:
		return h.movies300
	case HistogramMovies, HistogramRatings:
		return h.movies30
	case WordCount:
		return h.text
	case NaiveBayes:
		return h.docs
	case PageRank:
		return h.webgraph
	case KCliques:
		return h.rmat
	}
	return nil
}

// newHAMRCluster builds a fresh HAMR-side cluster with the spec's cost
// models and distributes the benchmark's input over the node-local disks.
func (h *Harness) newHAMRCluster(b Benchmark) (*cluster.Cluster, map[int][]string, *vtime.VirtualClock, error) {
	return h.newHAMRClusterWith(b, nil)
}

// newHAMRClusterWith is newHAMRCluster with an options hook, letting the
// concurrency mode raise MaxConcurrentJobs before the cluster is built.
func (h *Harness) newHAMRClusterWith(b Benchmark, mutate func(*cluster.Options)) (*cluster.Cluster, map[int][]string, *vtime.VirtualClock, error) {
	disk := h.Spec.Disk
	net := h.Spec.Net
	vc := h.newClock()
	opts := cluster.Options{
		NumNodes:        h.Spec.Nodes,
		Core:            h.Spec.CoreConfig(),
		DiskModel:       &disk,
		NetModel:        &net,
		CompressSpill:   h.Spec.CompressCodec != "",
		CompressShuffle: h.Spec.CompressCodec != "",
		CompressCodec:   h.Spec.CompressCodec,
	}
	if vc != nil {
		opts.Clock = vc
	}
	if h.Trace {
		h.LastHAMRTrace = trace.New(h.Spec.Nodes, h.traceClock(vc))
		opts.Trace = h.LastHAMRTrace
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := cluster.New(opts)
	if err != nil {
		return nil, nil, nil, err
	}
	files, err := hamrapps.DistributeLocalText(c, string(b), h.data(b), 2*h.Spec.Nodes)
	if err != nil {
		c.Close()
		return nil, nil, nil, err
	}
	return c, files, vc, nil
}

// newMRCluster builds a fresh baseline cluster with the same cost models
// and writes the benchmark's input into HDFS.
func (h *Harness) newMRCluster(b Benchmark) (*cluster.Cluster, *mapreduce.Engine, string, *vtime.VirtualClock, error) {
	disk := h.Spec.Disk
	net := h.Spec.Net
	vc := h.newClock()
	opts := cluster.Options{
		NumNodes:        h.Spec.Nodes,
		Core:            h.Spec.CoreConfig(),
		DiskModel:       &disk,
		NetModel:        &net,
		HDFSBlockSize:   h.Spec.HDFSBlockSize,
		HDFSCacheMB:     h.Spec.HDFSCacheMB,
		CompressSpill:   h.Spec.CompressCodec != "",
		CompressShuffle: h.Spec.CompressCodec != "",
		CompressCodec:   h.Spec.CompressCodec,
	}
	if vc != nil {
		opts.Clock = vc
	}
	if h.Trace {
		h.LastMRTrace = trace.New(h.Spec.Nodes, h.traceClock(vc))
		opts.Trace = h.LastMRTrace
	}
	c, err := cluster.New(opts)
	if err != nil {
		return nil, nil, "", nil, err
	}
	path := "in/" + string(b)
	if err := c.FS().WriteFile(path, h.data(b), -1); err != nil {
		c.Close()
		return nil, nil, "", nil, err
	}
	return c, mapreduce.NewEngine(c, h.Spec.MapReduce), path, vc, nil
}

// RunHAMR executes one benchmark on the HAMR engine and returns its
// wall-clock duration.
func (h *Harness) RunHAMR(b Benchmark) (time.Duration, error) {
	return h.runHAMR(b, false)
}

// RunHAMRCombiner executes the Table 3 variant (HAMR with combiner);
// it only differs for the histogram benchmarks.
func (h *Harness) RunHAMRCombiner(b Benchmark) (time.Duration, error) {
	return h.runHAMR(b, true)
}

func (h *Harness) runHAMR(b Benchmark, combiner bool) (time.Duration, error) {
	c, files, vc, err := h.newHAMRCluster(b)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	loader := &hamrapps.LocalTextLoader{Files: files}

	var graphs []*core.Graph
	stop := h.measure(vc)
	switch b {
	case WordCount:
		g, _, err := hamrapps.BuildWordCount(hamrapps.WordCountOptions{Loader: loader, Combiner: combiner})
		if err != nil {
			return 0, err
		}
		graphs = append(graphs, g)
	case HistogramMovies:
		g, _, err := hamrapps.BuildHistogramMovies(hamrapps.HistogramOptions{Loader: loader, Combiner: combiner})
		if err != nil {
			return 0, err
		}
		graphs = append(graphs, g)
	case HistogramRatings:
		g, _, err := hamrapps.BuildHistogramRatings(hamrapps.HistogramOptions{Loader: loader, Combiner: combiner})
		if err != nil {
			return 0, err
		}
		graphs = append(graphs, g)
	case NaiveBayes:
		g, _, err := hamrapps.BuildNaiveBayes(loader)
		if err != nil {
			return 0, err
		}
		graphs = append(graphs, g)
	case KMeans:
		g, _, err := hamrapps.BuildKMeans(hamrapps.KMeansOptions{
			Files: files, Centroids: h.centroids, AssignmentSink: localAssignSink(c, "out/kmeans-assign"),
		})
		if err != nil {
			return 0, err
		}
		graphs = append(graphs, g)
	case Classification:
		g, _, err := hamrapps.BuildClassification(hamrapps.ClassificationOptions{
			Files: files, Centroids: h.centroids, AssignmentSink: localAssignSink(c, "out/classify-assign"),
		})
		if err != nil {
			return 0, err
		}
		graphs = append(graphs, g)
	case PageRank:
		if _, err := hamrapps.RunPageRank(c, loader, 0, h.Scale.PageRankIters); err != nil {
			return 0, err
		}
		elapsed := stop()
		h.LastHAMRCluster = c.Metrics().Snapshot()
		return elapsed, nil
	case KCliques:
		g, _, err := hamrapps.BuildKCliques(h.Scale.KCliquesK, loader)
		if err != nil {
			return 0, err
		}
		graphs = append(graphs, g)
	default:
		return 0, fmt.Errorf("bench: unknown benchmark %q", b)
	}
	for _, g := range graphs {
		res, err := c.Run(g)
		if err != nil {
			return 0, fmt.Errorf("bench: %s on hamr: %w", b, err)
		}
		h.LastHAMR = res
	}
	elapsed := stop()
	h.LastHAMRCluster = c.Metrics().Snapshot()
	return elapsed, nil
}

// localAssignSink writes assignment output to each node's own local disk
// ("output can happen not only in reduce ... but also in map", §3.3) so
// the HAMR side pays the same output-materialization the paper's
// deployment did.
func localAssignSink(c *cluster.Cluster, name string) core.Sink {
	return core.NewFileSink(func(node int) (io.WriteCloser, error) {
		return c.Disk(node).Create(fmt.Sprintf("%s-%02d", name, node))
	}, nil)
}

// RunMR executes one benchmark on the MapReduce baseline (IDH stand-in)
// and returns its wall-clock duration. The histogram and wordcount jobs
// use combiners, as the PUMA implementations do.
func (h *Harness) RunMR(b Benchmark) (time.Duration, error) {
	c, eng, input, vc, err := h.newMRCluster(b)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	r := h.Scale.Reduces

	stop := h.measure(vc)
	switch b {
	case WordCount:
		_, err = eng.Run(mrapps.WordCountJob(input, "out", true, r))
	case HistogramMovies:
		_, err = eng.Run(mrapps.HistogramMoviesJob(input, "out", true, r))
	case HistogramRatings:
		_, err = eng.Run(mrapps.HistogramRatingsJob(input, "out", true, r))
	case NaiveBayes:
		_, err = eng.RunChain(mrapps.NaiveBayesJobs(input, "mid", "out", r)...)
	case KMeans:
		_, err = eng.Run(mrapps.KMeansJob(input, "out", h.centroids, r))
	case Classification:
		_, err = eng.Run(mrapps.ClassificationJob(input, "out", h.centroids, r, true))
	case PageRank:
		_, err = mrapps.RunPageRankMR(eng, c.FS(), input, "work", h.Scale.PageRankIters, r)
	case KCliques:
		_, err = mrapps.RunKCliquesMR(eng, c.FS(), input, "work", h.Scale.KCliquesK, r)
	default:
		err = fmt.Errorf("bench: unknown benchmark %q", b)
	}
	if err != nil {
		return 0, fmt.Errorf("bench: %s on mapreduce: %w", b, err)
	}
	elapsed := stop()
	h.LastMR = c.Metrics().Snapshot()
	return elapsed, nil
}

// RunRow measures one Table 2 row (both engines).
func (h *Harness) RunRow(b Benchmark) (Row, error) {
	idh, err := h.RunMR(b)
	if err != nil {
		return Row{}, err
	}
	idhWall := h.LastWall
	hamr, err := h.RunHAMR(b)
	if err != nil {
		return Row{}, err
	}
	paper := PaperTable2[b]
	return Row{
		Benchmark: b,
		DataSize:  paper.DataSize,
		IDH:       idh,
		HAMR:      hamr,
		Speedup:   idh.Seconds() / hamr.Seconds(),
		Paper:     paper,
		IDHWall:   idhWall,
		HAMRWall:  h.LastWall,
		Modeled:   h.Spec.VClock,
	}, nil
}

// Table2 measures every row.
func (h *Harness) Table2() ([]Row, error) {
	rows := make([]Row, 0, len(AllBenchmarks))
	for _, b := range AllBenchmarks {
		row, err := h.RunRow(b)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table3 measures the combiner ablation (HAMR with combiner vs the same
// IDH baseline).
func (h *Harness) Table3() ([]Row, error) {
	var rows []Row
	for _, b := range []Benchmark{HistogramMovies, HistogramRatings} {
		idh, err := h.RunMR(b)
		if err != nil {
			return rows, err
		}
		idhWall := h.LastWall
		hamr, err := h.RunHAMRCombiner(b)
		if err != nil {
			return rows, err
		}
		paper := PaperTable3[b]
		rows = append(rows, Row{
			Benchmark: b,
			DataSize:  paper.DataSize,
			IDH:       idh,
			HAMR:      hamr,
			Speedup:   idh.Seconds() / hamr.Seconds(),
			Paper:     paper,
			IDHWall:   idhWall,
			HAMRWall:  h.LastWall,
			Modeled:   h.Spec.VClock,
		})
	}
	return rows, nil
}

// Figure3 selects the subset of rows for one of the two speedup figures.
func Figure3(rows []Row, panel string) []Row {
	var want []Benchmark
	switch panel {
	case "3a", "a":
		want = Figure3aBenchmarks
	default:
		want = Figure3bBenchmarks
	}
	var out []Row
	for _, b := range want {
		for _, r := range rows {
			if r.Benchmark == b {
				out = append(out, r)
			}
		}
	}
	return out
}
