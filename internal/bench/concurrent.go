package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
)

// ConcurrentReport summarizes one multi-job throughput measurement: n
// identical jobs submitted at once against one cluster, compared with a
// solo run of the same job on the same cluster.
type ConcurrentReport struct {
	// Benchmark is the workload every job ran.
	Benchmark Benchmark
	// Jobs is the number of concurrent jobs.
	Jobs int
	// Solo is the wall-clock duration of the solo warm-up run.
	Solo time.Duration
	// Makespan is submission of the first job to completion of the last.
	Makespan time.Duration
	// JobsPerSec is Jobs / Makespan.
	JobsPerSec float64
	// PerJob is each job's own wall-clock duration, submission order.
	PerJob []time.Duration
	// Slowdown is mean(PerJob) / Solo — how much sharing the cluster
	// stretched each job relative to running alone.
	Slowdown float64
}

// concurrentGraph builds a fresh graph for one submission of the
// benchmark; every job needs its own graph (sinks hold per-job output).
func concurrentGraph(b Benchmark, files map[int][]string) (*core.Graph, error) {
	loader := &hamrapps.LocalTextLoader{Files: files}
	switch b {
	case WordCount:
		g, _, err := hamrapps.BuildWordCount(hamrapps.WordCountOptions{Loader: loader})
		return g, err
	case HistogramMovies:
		g, _, err := hamrapps.BuildHistogramMovies(hamrapps.HistogramOptions{Loader: loader})
		return g, err
	case HistogramRatings:
		g, _, err := hamrapps.BuildHistogramRatings(hamrapps.HistogramOptions{Loader: loader})
		return g, err
	case NaiveBayes:
		g, _, err := hamrapps.BuildNaiveBayes(loader)
		return g, err
	default:
		return nil, fmt.Errorf("bench: benchmark %q not supported in -jobs mode", b)
	}
}

// ConcurrentThroughput measures multi-job throughput: one solo run for the
// baseline, then n identical jobs submitted together through the cluster's
// job manager, which divides loader slots and YARN memory between them.
// Durations are wall-clock — overlapping jobs are exactly what virtual
// per-lane time cannot attribute, so this mode ignores Spec.VClock.
func (h *Harness) ConcurrentThroughput(b Benchmark, n int) (*ConcurrentReport, error) {
	if n < 1 {
		n = 1
	}
	c, files, _, err := h.newHAMRClusterWith(b, func(o *cluster.Options) {
		o.MaxConcurrentJobs = n
		o.JobQueueDepth = n + 1
		// Split each node's schedulable memory across the n jobs so YARN
		// admission is a real (but satisfiable) constraint.
		if o.YarnMemMB <= 0 {
			o.YarnMemMB = 4096
		}
		o.JobMemMB = o.YarnMemMB / n
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	solo, err := concurrentGraph(b, files)
	if err != nil {
		return nil, err
	}
	soloRes, err := c.Run(solo)
	if err != nil {
		return nil, fmt.Errorf("bench: %s solo: %w", b, err)
	}

	handles := make([]*cluster.JobHandle, n)
	start := time.Now()
	for i := range handles {
		g, err := concurrentGraph(b, files)
		if err != nil {
			return nil, err
		}
		hnd, err := c.Submit(context.Background(), g)
		if err != nil {
			return nil, fmt.Errorf("bench: %s submit %d: %w", b, i, err)
		}
		handles[i] = hnd
	}
	rep := &ConcurrentReport{Benchmark: b, Jobs: n, Solo: soloRes.Duration}
	var sum time.Duration
	for i, hnd := range handles {
		res, err := hnd.Wait()
		if err != nil {
			return nil, fmt.Errorf("bench: %s job %d: %w", b, i, err)
		}
		rep.PerJob = append(rep.PerJob, res.Duration)
		sum += res.Duration
	}
	rep.Makespan = time.Since(start)
	if s := rep.Makespan.Seconds(); s > 0 {
		rep.JobsPerSec = float64(n) / s
	}
	if rep.Solo > 0 && n > 0 {
		rep.Slowdown = (sum.Seconds() / float64(n)) / rep.Solo.Seconds()
	}
	h.LastHAMRCluster = c.Metrics().Snapshot()
	return rep, nil
}

// WriteConcurrentReport renders a ConcurrentReport.
func WriteConcurrentReport(w io.Writer, r *ConcurrentReport) {
	fmt.Fprintf(w, "Concurrent jobs — %s, %d jobs sharing one cluster\n", r.Benchmark, r.Jobs)
	fmt.Fprintf(w, "  solo       %12v\n", r.Solo.Round(time.Millisecond))
	fmt.Fprintf(w, "  makespan   %12v   (%.2f jobs/sec)\n", r.Makespan.Round(time.Millisecond), r.JobsPerSec)
	fmt.Fprintf(w, "  slowdown   %12.2fx  mean per-job vs solo\n", r.Slowdown)
	for i, d := range r.PerJob {
		fmt.Fprintf(w, "  job %-2d     %12v\n", i, d.Round(time.Millisecond))
	}
}
