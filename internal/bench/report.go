package bench

import (
	"fmt"
	"io"
	"strings"
)

// Reporting: render measured rows in the layout of the paper's tables and
// figures, side by side with the published numbers so shape agreement is
// visible at a glance.

// WriteTable1 prints the cluster specification (scaled Table 1).
func WriteTable1(w io.Writer, spec ClusterSpec) {
	fmt.Fprintln(w, "Table 1: Cluster Information (scaled simulation)")
	fmt.Fprintf(w, "  %-28s %v (paper: 16, 1 master + 15 workers)\n", "# of compute nodes", spec.Nodes)
	fmt.Fprintf(w, "  %-28s %v (paper: 32 threads)\n", "workers per node", spec.WorkersPerNode)
	fmt.Fprintf(w, "  %-28s %v MB (paper: 32 GB)\n", "memory budget per node", spec.MemoryBudget>>20)
	fmt.Fprintf(w, "  %-28s seek %v, read %v MB/s, write %v MB/s (paper: SATA-III)\n",
		"local disk model", spec.Disk.SeekLatency,
		spec.Disk.ReadBytesPerSec>>20, spec.Disk.WriteBytesPerSec>>20)
	fmt.Fprintf(w, "  %-28s latency %v, %v MB/s per receiver (paper: 4x FDR InfiniBand)\n",
		"network model", spec.Net.Latency, spec.Net.BytesPerSec>>20)
	fmt.Fprintf(w, "  %-28s %v\n", "baseline job startup", spec.MapReduce.JobStartup)
}

// WriteTable2 prints measured vs published Table 2.
func WriteTable2(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Table 2: Performance comparison between IDH 3.0 (baseline engine) and HAMR")
	fmt.Fprintf(w, "  %-18s %-9s %12s %12s %9s | %9s\n",
		"Benchmark", "Data", "IDH", "HAMR", "Speedup", "Paper")
	fmt.Fprintln(w, "  "+strings.Repeat("-", 78))
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %-9s %12s %12s %8.2fx | %8.2fx\n",
			r.Benchmark, r.DataSize,
			fmtDur(r.IDH), fmtDur(r.HAMR), r.Speedup, r.Paper.Speedup)
	}
}

// WriteTable3 prints the combiner ablation.
func WriteTable3(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Table 3: Performance of HAMR using Combiner")
	fmt.Fprintf(w, "  %-18s %-9s %12s %9s | %9s\n",
		"Benchmark", "Data", "HAMR", "Speedup", "Paper")
	fmt.Fprintln(w, "  "+strings.Repeat("-", 64))
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %-9s %12s %8.2fx | %8.2fx\n",
			r.Benchmark, r.DataSize, fmtDur(r.HAMR), r.Speedup, r.Paper.Speedup)
	}
}

// WriteFigure3 prints an ASCII bar chart of speedups like Figure 3's
// panels (baseline = 1).
func WriteFigure3(w io.Writer, rows []Row, panel string) {
	title := "Figure 3(a): speedup on feature-exploiting benchmarks"
	if panel != "3a" && panel != "a" {
		title = "Figure 3(b): speedup on IO-intensive benchmarks"
	}
	fmt.Fprintln(w, title)
	rows = Figure3(rows, panel)
	maxSpeedup := 1.0
	for _, r := range rows {
		if r.Speedup > maxSpeedup {
			maxSpeedup = r.Speedup
		}
		if r.Paper.Speedup > maxSpeedup {
			maxSpeedup = r.Paper.Speedup
		}
	}
	const width = 40
	bar := func(v float64) string {
		n := int(v / maxSpeedup * width)
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		return strings.Repeat("#", n)
	}
	fmt.Fprintf(w, "  %-18s %8s  %s\n", "Baseline", "1.00x", bar(1))
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %7.2fx  %s\n", r.Benchmark, r.Speedup, bar(r.Speedup))
		fmt.Fprintf(w, "  %-18s %7.2fx  %s\n", "  (paper)", r.Paper.Speedup, bar(r.Paper.Speedup))
	}
}

// WriteIOReport renders the baseline's HDFS read-path accounting from a
// cluster metrics snapshot: where the bytes came from (local disk, remote
// replica, page cache) and what the cache did. Cache lines are printed
// only when the run had the cache enabled (the counters exist).
func WriteIOReport(w io.Writer, snap interface{ Get(string) int64 }) {
	fmt.Fprintln(w, "HDFS IO report (baseline engine)")
	fmt.Fprintf(w, "  %-24s %d\n", "disk.read.bytes", snap.Get("disk.read.bytes"))
	fmt.Fprintf(w, "  %-24s %d\n", "disk.write.bytes", snap.Get("disk.write.bytes"))
	fmt.Fprintf(w, "  %-24s %d\n", "hdfs.bytes.local", snap.Get("hdfs.bytes.local"))
	fmt.Fprintf(w, "  %-24s %d\n", "hdfs.bytes.remote", snap.Get("hdfs.bytes.remote"))
	fmt.Fprintf(w, "  %-24s %d\n", "net.bytes", snap.Get("net.bytes"))
	hits, misses := snap.Get("hdfs.cache.hits"), snap.Get("hdfs.cache.misses")
	if hits+misses > 0 {
		fmt.Fprintf(w, "  %-24s %d\n", "hdfs.cache.hits", hits)
		fmt.Fprintf(w, "  %-24s %d\n", "hdfs.cache.misses", misses)
		fmt.Fprintf(w, "  %-24s %d\n", "hdfs.cache.bytes", snap.Get("hdfs.cache.bytes"))
		fmt.Fprintf(w, "  %-24s %d\n", "hdfs.cache.evictions", snap.Get("hdfs.cache.evictions"))
		fmt.Fprintf(w, "  %-24s %d\n", "mr.map.cachehot", snap.Get("mr.map.cachehot"))
		fmt.Fprintf(w, "  %-24s %.1f%%\n", "cache hit rate", 100*float64(hits)/float64(hits+misses))
	}
	// Compression lines appear only when a codec ran (the counters are
	// created lazily with the codec, the same discipline as the cache).
	cin, cskip := snap.Get("compress.in.bytes"), snap.Get("compress.skipped")
	if cin+cskip > 0 {
		cout := snap.Get("compress.out.bytes")
		fmt.Fprintf(w, "  %-24s %d\n", "compress.in.bytes", cin)
		fmt.Fprintf(w, "  %-24s %d\n", "compress.out.bytes", cout)
		fmt.Fprintf(w, "  %-24s %d\n", "compress.skipped", cskip)
		fmt.Fprintf(w, "  %-24s %d\n", "spill.compressed.bytes", snap.Get("spill.compressed.bytes"))
		fmt.Fprintf(w, "  %-24s %d\n", "net.compressed.bytes", snap.Get("net.compressed.bytes"))
		if cout > 0 {
			fmt.Fprintf(w, "  %-24s %.2fx\n", "compression ratio", float64(cin)/float64(cout))
		}
	}
}

// WriteTimeReport prints wall vs modeled seconds side by side for every
// measured row: "wall" is what producing the row actually cost, the
// plain column is what the tables report. In real-clock mode the pairs
// are equal; under -vclock the wall columns show the suite speedup the
// virtual clock buys.
func WriteTimeReport(w io.Writer, rows []Row) {
	mode := "real clock (wall == modeled)"
	if len(rows) > 0 && rows[0].Modeled {
		mode = "virtual clock"
	}
	fmt.Fprintf(w, "Time report: wall vs modeled seconds per row (%s)\n", mode)
	fmt.Fprintf(w, "  %-18s %12s %12s %12s %12s\n",
		"Benchmark", "IDH wall", "IDH", "HAMR wall", "HAMR")
	fmt.Fprintln(w, "  "+strings.Repeat("-", 72))
	var wall, modeled float64
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %12s %12s %12s %12s\n",
			r.Benchmark, fmtDur(r.IDHWall), fmtDur(r.IDH),
			fmtDur(r.HAMRWall), fmtDur(r.HAMR))
		wall += r.IDHWall.Seconds() + r.HAMRWall.Seconds()
		modeled += r.IDH.Seconds() + r.HAMR.Seconds()
	}
	fmt.Fprintf(w, "  %-18s %12s %12s\n", "total",
		fmt.Sprintf("%.3fs", wall), fmt.Sprintf("%.3fs", modeled))
	if wall > 0 && modeled > wall {
		fmt.Fprintf(w, "  modeled/wall ratio: %.1fx (suite wall-time reduction)\n", modeled/wall)
	}
}

// ShapeCheck compares a measured Table 2 against the paper's expectations
// at the level the reproduction targets: direction of the win and rough
// grouping, not absolute seconds. It returns human-readable verdicts.
func ShapeCheck(rows []Row) []string {
	var out []string
	check := func(ok bool, format string, args ...any) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		out = append(out, fmt.Sprintf("[%s] %s", verdict, fmt.Sprintf(format, args...)))
	}
	byName := map[Benchmark]Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	for _, b := range Figure3aBenchmarks {
		r, ok := byName[b]
		if !ok {
			continue
		}
		check(r.Speedup >= 3.5, "%s: HAMR wins decisively (measured %.2fx, paper %.2fx, expect >= 3.5x)",
			b, r.Speedup, r.Paper.Speedup)
	}
	for _, b := range []Benchmark{WordCount, HistogramMovies, NaiveBayes} {
		r, ok := byName[b]
		if !ok {
			continue
		}
		check(r.Speedup >= 0.85 && r.Speedup <= 5.0,
			"%s: modest difference (measured %.2fx, paper %.2fx, expect 0.85x-5x)",
			b, r.Speedup, r.Paper.Speedup)
	}
	if r, ok := byName[HistogramRatings]; ok {
		check(r.Speedup < 1, "HistogramRatings: inversion — baseline wins (measured %.2fx, paper %.2fx)",
			r.Speedup, r.Paper.Speedup)
	}
	if a, ok := byName[KMeans]; ok {
		if b, ok2 := byName[WordCount]; ok2 {
			check(a.Speedup > b.Speedup,
				"ordering: iterative K-Means gains more than WordCount (%.2fx > %.2fx)",
				a.Speedup, b.Speedup)
		}
	}
	return out
}

func fmtDur(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
