package bench

import (
	"fmt"
	"reflect"
	"time"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/apps/mrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/faults"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/vtime"
)

// ChaosCheck runs a short WordCount on both engines twice — fault-free,
// then with a seeded fault injector killing tasks, revoking containers,
// crashing flowlet fires and perturbing messages — and verifies that
// recovery masks every injected fault: the outputs are identical and the
// recovery counters moved. It returns PASS/FAIL verdict lines in the same
// format as ShapeCheck. vclock runs every cluster under a fresh virtual
// clock, so injected delay faults advance logical clocks instead of
// sleeping; recovery must still mask every fault.
func ChaosCheck(nodes int, seed int64, vclock bool) []string {
	var out []string
	check := func(ok bool, format string, args ...any) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		out = append(out, fmt.Sprintf("[%s] %s", verdict, fmt.Sprintf(format, args...)))
	}
	input := datagen.Text(datagen.TextConfig{Seed: 17, Vocabulary: 120, Lines: 600})

	// MapReduce side: task kills and container revocations.
	mrOut := func(fcfg *faults.Config) (map[string]int64, *cluster.Cluster, error) {
		opts := cluster.Options{
			NumNodes:        nodes,
			HDFSBlockSize:   4 << 10,
			HDFSReplication: 2,
			Faults:          fcfg,
		}
		if vclock {
			opts.Clock = vtime.NewVirtual(nodes)
		}
		c, err := cluster.New(opts)
		if err != nil {
			return nil, nil, err
		}
		if err := c.FS().WriteFile("in/words", input, -1); err != nil {
			c.Close()
			return nil, nil, err
		}
		eng := mapreduce.NewEngine(c, mapreduce.Config{})
		c.Faults().Arm()
		_, err = eng.Run(mrapps.WordCountJob("in/words", "out", true, 3))
		c.Faults().Disarm()
		if err != nil {
			c.Close()
			return nil, nil, err
		}
		counts := map[string]int64{}
		for _, f := range c.FS().List("out/") {
			data, err := c.FS().ReadFile(f, -1)
			if err != nil {
				c.Close()
				return nil, nil, err
			}
			for _, kv := range parseTSV(data) {
				counts[kv.k] = kv.v
			}
		}
		return counts, c, nil
	}
	base, bc, err := mrOut(nil)
	if err != nil {
		check(false, "mapreduce baseline run: %v", err)
		return out
	}
	bc.Close()
	faulted, fc, err := mrOut(&faults.Config{Seed: seed, KillMap: 0.3, Revoke: 0.2})
	if err != nil {
		check(false, "mapreduce chaos run (seed %d): %v", seed, err)
	} else {
		injected := fc.Metrics().Counter("faults.injected").Value()
		retries := fc.Metrics().Counter("mr.task.retries").Value()
		check(injected > 0, "mapreduce chaos: faults fired (seed %d, %d injected)", seed, injected)
		check(retries > 0, "mapreduce chaos: tasks retried (%d retries)", retries)
		check(reflect.DeepEqual(faulted, base),
			"mapreduce chaos: recovered output identical (%d keys)", len(base))
		fc.Close()
	}

	// HAMR side: flowlet crashes plus message drop/dup/delay.
	hamrOut := func(fcfg *faults.Config) ([]core.KV, *cluster.Cluster, error) {
		opts := cluster.Options{
			NumNodes: nodes,
			Core:     core.Config{Workers: 2, CoalesceMsgs: -1},
			Faults:   fcfg,
		}
		if vclock {
			opts.Clock = vtime.NewVirtual(nodes)
		}
		c, err := cluster.New(opts)
		if err != nil {
			return nil, nil, err
		}
		files, err := hamrapps.DistributeLocalText(c, "words", input, 2*nodes)
		if err != nil {
			c.Close()
			return nil, nil, err
		}
		g, sink, err := hamrapps.BuildWordCount(hamrapps.WordCountOptions{
			Loader:   &hamrapps.LocalTextLoader{Files: files},
			Combiner: true,
		})
		if err != nil {
			c.Close()
			return nil, nil, err
		}
		c.Faults().Arm()
		_, err = c.Run(g)
		c.Faults().Disarm()
		if err != nil {
			c.Close()
			return nil, nil, err
		}
		return sink.Sorted(), c, nil
	}
	hBase, hbc, err := hamrOut(nil)
	if err != nil {
		check(false, "hamr baseline run: %v", err)
		return out
	}
	hbc.Close()
	hFaulted, hfc, err := hamrOut(&faults.Config{
		Seed: seed, FlowletFire: 0.1, MsgDrop: 0.03, MsgDup: 0.02,
		MsgDelay: 0.03, MsgDelayDur: 100 * time.Microsecond,
	})
	if err != nil {
		check(false, "hamr chaos run (seed %d): %v", seed, err)
	} else {
		injected := hfc.Metrics().Counter("faults.injected").Value()
		check(injected > 0, "hamr chaos: faults fired (seed %d, %d injected)", seed, injected)
		check(reflect.DeepEqual(hFaulted, hBase),
			"hamr chaos: recovered output identical (%d pairs)", len(hBase))
		hfc.Close()
	}
	return out
}

type tsvKV struct {
	k string
	v int64
}

func parseTSV(data []byte) []tsvKV {
	var kvs []tsvKV
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			line := data[start:i]
			start = i + 1
			for j := 0; j < len(line); j++ {
				if line[j] == '\t' {
					var v int64
					for _, d := range line[j+1:] {
						if d >= '0' && d <= '9' {
							v = v*10 + int64(d-'0')
						}
					}
					kvs = append(kvs, tsvKV{k: string(line[:j]), v: v})
					break
				}
			}
		}
	}
	return kvs
}
