package bench

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/trace"
	"github.com/hamr-go/hamr/internal/vtime"
)

// Traces recorded on the virtual clock must be deterministic: two -vclock
// runs of the same placement-pinned workload have to produce byte-identical
// Chrome trace JSON, and a real-clock run must produce the same span tree
// (ids, phases, parents, nodes, byte counts) with only the timestamps
// differing. The configurations here pin every scheduling decision: one
// input block on node 0, a single reduce task, one worker per node, no
// message coalescing, and (for the flowlet engine) no network cost model so
// delivery timing cannot mint extra spans.

type traceRun struct {
	json []byte
	tree string
}

func captureTrace(t *testing.T, tr *trace.Tracer) traceRun {
	t.Helper()
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no trace events recorded")
	}
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, evs); err != nil {
		t.Fatal(err)
	}
	return traceRun{json: buf.Bytes(), tree: trace.Tree(evs)}
}

// runMRTimeline runs a pinned WordCount on the baseline engine under the
// given clock (nil = real) and returns its recorded timeline.
func runMRTimeline(t *testing.T, vc *vtime.VirtualClock) traceRun {
	t.Helper()
	diskM, netM := invariantModels()
	opts := cluster.Options{
		NumNodes:      2,
		DiskModel:     diskM,
		NetModel:      netM,
		HDFSBlockSize: 1 << 20, // one block -> one split -> one serial map task
		YarnMemMB:     1 << 20,
	}
	clk := vtime.Clock(vtime.Real())
	if vc != nil {
		opts.Clock = vc
		clk = vc
	}
	tr := trace.New(opts.NumNodes, clk)
	opts.Trace = tr
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	input := datagen.Text(datagen.TextConfig{Seed: 29, Vocabulary: 120, Lines: 400})
	if err := c.FS().WriteFile("in/words", input, 0); err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 2 << 10,
		MergeFactor:     2,
	})
	if _, err := eng.Run(mapreduce.Job{
		Name:          "tracewc",
		InputPrefixes: []string{"in/"},
		Output:        "out",
		NumReduces:    1,
		NewMapper:     func() mapreduce.Mapper { return wcInvMapper{} },
		NewReducer:    func() mapreduce.Reducer { return sumInvReducer{} },
	}); err != nil {
		t.Fatal(err)
	}
	return captureTrace(t, tr)
}

// runHAMRTimeline runs a pinned WordCount on the flowlet engine under the
// given clock and returns its recorded timeline. Every loader file lives on
// node 0 so split placement and worker order cannot vary between runs.
func runHAMRTimeline(t *testing.T, vc *vtime.VirtualClock) traceRun {
	t.Helper()
	diskM, _ := invariantModels()
	opts := cluster.Options{
		NumNodes:  2,
		DiskModel: diskM,
		Core: core.Config{
			Workers:      1,
			MemoryBudget: 1 << 30,
			CoalesceMsgs: -1,
		},
	}
	clk := vtime.Clock(vtime.Real())
	if vc != nil {
		opts.Clock = vc
		clk = vc
	}
	tr := trace.New(opts.NumNodes, clk)
	opts.Trace = tr
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	input := datagen.Text(datagen.TextConfig{Seed: 29, Vocabulary: 120, Lines: 400})
	// A single loader file on node 0: with several splits the lone worker
	// picks them up in scheduler order, which would shuffle their
	// virtual-lane timestamps between runs.
	if err := c.WriteLocalText(0, "input/tracewc-part-0000", input); err != nil {
		t.Fatal(err)
	}
	g, _, err := hamrapps.BuildWordCount(hamrapps.WordCountOptions{
		Loader: &hamrapps.LocalTextLoader{
			Files: map[int][]string{0: {"input/tracewc-part-0000"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	return captureTrace(t, tr)
}

// TestTraceDeterministicTimelineMR: two virtual-clock runs of the pinned
// baseline WordCount are byte-identical down to the exported JSON, and a
// real-clock run records the same span tree modulo timestamps.
func TestTraceDeterministicTimelineMR(t *testing.T) {
	v1 := runMRTimeline(t, vtime.NewVirtual(2))
	v2 := runMRTimeline(t, vtime.NewVirtual(2))
	if !bytes.Equal(v1.json, v2.json) {
		t.Errorf("virtual-clock trace JSON differs across runs:\n--- run 1\n%s\n--- run 2\n%s", v1.json, v2.json)
	}
	real := runMRTimeline(t, nil)
	if real.tree != v1.tree {
		t.Errorf("real-clock span tree differs from virtual:\n--- real\n%s\n--- virtual\n%s", real.tree, v1.tree)
	}
}

// TestTraceDeterministicTimelineHAMR: flowlet-engine counterpart.
func TestTraceDeterministicTimelineHAMR(t *testing.T) {
	v1 := runHAMRTimeline(t, vtime.NewVirtual(2))
	v2 := runHAMRTimeline(t, vtime.NewVirtual(2))
	if !bytes.Equal(v1.json, v2.json) {
		t.Errorf("virtual-clock trace JSON differs across runs:\n--- run 1\n%s\n--- run 2\n%s", v1.json, v2.json)
	}
	real := runHAMRTimeline(t, nil)
	if real.tree != v1.tree {
		t.Errorf("real-clock span tree differs from virtual:\n--- real\n%s\n--- virtual\n%s", real.tree, v1.tree)
	}
}

// ---- overlap regression (the paper's core scheduling claim) ----

// teraTestLines generates n sortable lines from a fixed xorshift stream.
func teraTestLines(n int) []byte {
	var buf bytes.Buffer
	x := uint64(0x2545F4914F6CDD1D)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		fmt.Fprintf(&buf, "%016x%012d\n", x, i)
	}
	return buf.Bytes()
}

type teraCutMapper struct{}

func (teraCutMapper) Map(kv core.KV, out mapreduce.Emitter) error {
	line := kv.Value.(string)
	k := line
	if len(k) > 10 {
		k = k[:10]
	}
	return out.Emit(core.KV{Key: k, Value: line})
}

type teraIdentityReducer struct{}

func (teraIdentityReducer) Reduce(key string, values []any, out mapreduce.Emitter) error {
	for _, v := range values {
		if err := out.Emit(core.KV{Key: key, Value: v}); err != nil {
			return err
		}
	}
	return nil
}

// teraCutFlowlet is the flowlet-engine TeraSort mapper: cut the sort key.
type teraCutFlowlet struct{}

func (teraCutFlowlet) Map(kv core.KV, ctx core.Context) error {
	line := kv.Value.(string)
	k := line
	if len(k) > 10 {
		k = k[:10]
	}
	return ctx.Emit(core.KV{Key: k, Value: line})
}

// teraOrderReducer is the flowlet-engine TeraSort reduce: a full
// (accumulating) reduce, so ordering falls out of the engine's key-ordered
// reduce and the timeline records accumulate windows — the overlap the
// paper claims for the flowlet design.
type teraOrderReducer struct{}

func (teraOrderReducer) Reduce(key string, values []any, ctx core.Context) error {
	for _, v := range values {
		if err := ctx.Emit(core.KV{Key: key, Value: v}); err != nil {
			return err
		}
	}
	return nil
}

// TestTraceOverlapRegression records TeraSort on both engines with the real
// clock and mild cost models, then checks the paper's scheduling claim in
// the timelines themselves: the flowlet engine's reduce-side work overlaps
// its load phase strictly more than the baseline's reduce side overlaps its
// map phase, and the baseline's timeline contains a map->reduce barrier
// that the flowlet timeline lacks.
func TestTraceOverlapRegression(t *testing.T) {
	diskM, netM := invariantModels()

	// ---- baseline engine ----
	mrOpts := cluster.Options{
		NumNodes:      3,
		DiskModel:     diskM,
		NetModel:      netM,
		HDFSBlockSize: 4 << 10,
		YarnMemMB:     1 << 20,
	}
	mtr := trace.New(mrOpts.NumNodes, vtime.Real())
	mrOpts.Trace = mtr
	mc, err := cluster.New(mrOpts)
	if err != nil {
		t.Fatal(err)
	}
	input := teraTestLines(3000)
	if err := mc.FS().WriteFile("in/tera", input, -1); err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(mc, mapreduce.Config{
		SortBufferBytes: 4 << 10,
		MergeFactor:     2,
	})
	if _, err := eng.Run(mapreduce.Job{
		Name:          "tracetera",
		InputPrefixes: []string{"in/"},
		Output:        "out",
		NumReduces:    3,
		NewMapper:     func() mapreduce.Mapper { return teraCutMapper{} },
		NewReducer:    func() mapreduce.Reducer { return teraIdentityReducer{} },
	}); err != nil {
		t.Fatal(err)
	}
	mrEvs := mtr.Events()
	mc.Close()

	mapSide := []string{"map", "spill", "merge"}
	reduceSide := []string{"reduce", "fetch", "shuffle"}
	mrOverlap := trace.OverlapFraction(mrEvs, mapSide, reduceSide)
	if gap, ok := trace.BarrierGap(mrEvs, mapSide, reduceSide); !ok {
		t.Errorf("MR timeline lacks the map->reduce barrier (gap=%v ok=%v)", gap, ok)
	}

	// ---- flowlet engine ----
	hOpts := cluster.Options{
		NumNodes:  3,
		DiskModel: diskM,
		NetModel:  netM,
		Core: core.Config{
			// More workers than load splits per node, and bins small
			// enough to flush mid-load: the spare workers apply shuffled
			// bins while the loaders are still running, which is exactly
			// the overlap this test measures.
			Workers:      4,
			BinSize:      64,
			MemoryBudget: 1 << 30,
			CoalesceMsgs: -1,
		},
	}
	htr := trace.New(hOpts.NumNodes, vtime.Real())
	hOpts.Trace = htr
	hc, err := cluster.New(hOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	files, err := hamrapps.DistributeLocalText(hc, "tracetera", input, 6)
	if err != nil {
		t.Fatal(err)
	}
	g := core.NewGraph("tracetera")
	sink := core.NewCollectSink()
	ld, err := g.AddLoader("load", &hamrapps.LocalTextLoader{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := g.AddMap("cut", teraCutFlowlet{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := g.AddReduce("order", teraOrderReducer{})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := g.AddSink("out", sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(ld, mp, core.WithRouting(core.RouteLocal)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(mp, rd, core.WithRouting(core.RouteShuffle)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(rd, sk); err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Run(g); err != nil {
		t.Fatal(err)
	}
	hEvs := htr.Events()

	loadSide := []string{"load"}
	accSide := []string{"accumulate", "reduce"}
	hOverlap := trace.OverlapFraction(hEvs, loadSide, accSide)
	if hOverlap <= mrOverlap {
		t.Errorf("flowlet overlap %.3f does not exceed baseline overlap %.3f", hOverlap, mrOverlap)
	}
	if gap, ok := trace.BarrierGap(hEvs, loadSide, accSide); ok {
		t.Errorf("flowlet timeline shows a load->accumulate barrier (gap=%v); reduce-side work should begin while loaders run", gap)
	}
}
