// Package bench defines and runs the paper's evaluation (§5): the cluster
// specification of Table 1, the eight-benchmark comparison of Table 2 /
// Figure 3, and the combiner ablation of Table 3 — both engines running
// over identical simulated substrates, with inputs scaled down but
// generated with the same distributions the paper used.
package bench

import (
	"time"

	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
)

// ClusterSpec is the scaled analogue of Table 1. The paper ran 16 Xeon
// E5-2620 nodes (1 master + 15 workers, 32 hardware threads each, 32 GB
// RAM, SATA-III disks, 4x FDR InfiniBand). A single-machine simulation
// cannot host 15×32 real workers, so the spec scales the node count and
// worker count down while the cost models keep the *relative* price of
// disk, network and job startup at commodity-cluster levels.
type ClusterSpec struct {
	// Workers nodes execute the job (the paper's 15 DataNode/NodeManager
	// machines; the master is implicit in the driver).
	Nodes int
	// WorkersPerNode is the per-node thread pool size (paper: 32).
	WorkersPerNode int
	// MemoryBudget is the per-node in-memory data budget for the HAMR
	// engine (paper: 32 GB per node).
	MemoryBudget int64
	// Disk and Net are the substrate cost models (paper: SATA-III, FDR).
	Disk storage.CostModel
	Net  transport.CostModel
	// HDFSBlockSize is the scaled block size for the baseline's input.
	HDFSBlockSize int64
	// HDFSCacheMB is the per-node HDFS block cache budget (the modeled
	// datanode page cache) for the baseline's cluster. The default spec
	// keeps it 0 — cache off — so Table 2 numbers stay comparable with
	// the paper's cold-read accounting; set it to model a warm page
	// cache (hamrbench -hdfs-cache).
	HDFSCacheMB int
	// CompressCodec enables block compression of spills and shuffle
	// traffic on both engines ("lz" or "flate"). The default spec keeps
	// it "" — compression off — so the byte accounting stays identical
	// to the paper's uncompressed runs; set it to trade modeled CPU for
	// disk and network bytes (hamrbench -codec).
	CompressCodec string
	// MapReduce holds the baseline engine's overhead model.
	MapReduce mapreduce.Config
	// FlowControlWindow is the HAMR flow-control window in bins.
	FlowControlWindow int
	// BinSize is the HAMR scheduling quantum in pairs.
	BinSize int
	// ContentionCost is the modeled contended shared-variable update cost
	// for partial reduces (core.Config.ContentionCost).
	ContentionCost time.Duration
	// VClock runs every benchmark under a virtual clock (internal/vtime):
	// modeled delays advance per-node logical clocks instead of sleeping,
	// so reported IDH/HAMR times are modeled seconds while the suite's
	// wall time collapses to the real compute it does. The default is
	// off — real sleeps, bit-identical to the pre-seam harness.
	VClock bool
}

// DefaultSpec returns the scaled Table 1 configuration used by the
// harness: 8 worker nodes, 4 workers each. The cost models keep Table 1's
// component ratios — SATA-III disks (~150 MB/s per stream, a few streams
// per node) are ~30x slower than the FDR InfiniBand fabric (~4 GB/s per
// receiver) — and TimeScale inflates every data-proportional delay by 30x
// so that MB-scale inputs exercise the same disk-vs-compute balance the
// paper's GB-scale inputs did. ContentionCost is the modeled price of one
// contended shared-variable update (§5.2), calibrated so the
// HistogramRatings inversion appears at this input scale.
func DefaultSpec() ClusterSpec {
	const timeScale = 30.0
	return ClusterSpec{
		Nodes:          8,
		WorkersPerNode: 4,
		MemoryBudget:   256 << 20,
		Disk: storage.CostModel{
			SeekLatency:      100 * time.Microsecond,
			ReadBytesPerSec:  150 << 20,
			WriteBytesPerSec: 120 << 20,
			TimeScale:        timeScale,
			Parallel:         2,
		},
		Net: transport.CostModel{
			Latency:     2 * time.Microsecond,
			BytesPerSec: 4 << 30,
			TimeScale:   timeScale,
		},
		HDFSBlockSize: 256 << 10,
		MapReduce: mapreduce.Config{
			SortBufferBytes: 1 << 20,
			DefaultReduces:  8,
			MapMemMB:        512,
			ReduceMemMB:     512,
			ReduceHeapBytes: 4 << 20,
			JobStartup:      80 * time.Millisecond,
			TaskStartup:     3 * time.Millisecond,
		},
		FlowControlWindow: 32,
		BinSize:           512,
		ContentionCost:    12 * time.Microsecond,
	}
}

// CoreConfig derives the HAMR engine configuration from the spec.
func (s ClusterSpec) CoreConfig() core.Config {
	return core.Config{
		Workers:           s.WorkersPerNode,
		MemoryBudget:      s.MemoryBudget,
		FlowControlWindow: s.FlowControlWindow,
		BinSize:           s.BinSize,
		ContentionCost:    s.ContentionCost,
	}
}

// Scale fixes the benchmark input sizes. The Paper column of each row
// records the original size for the reports.
type Scale struct {
	// Movies datasets (K-Means / Classification at "300GB",
	// HistogramMovies / HistogramRatings at "30GB").
	KMeansMovies    int
	KMeansUsers     int
	HistogramMovies int
	HistogramUsers  int
	// WordCount ("16GB") text.
	WordCountLines int
	WordCountVocab int
	// NaiveBayes ("10GB") documents.
	NaiveBayesDocs int
	// PageRank ("20GB") web graph.
	PageRankPages int
	PageRankIters int
	// K-Cliques ("168MB", 2^18 vertices / 7.6M edges in the paper).
	KCliquesScale int // 2^Scale vertices
	KCliquesEdges int
	KCliquesK     int
	// Clusters for K-Means / Classification.
	KClusters int
	// Reduces for the baseline.
	Reduces int
}

// SmallScale finishes the whole Table 2 in roughly a minute on one
// machine; shapes (who wins, by what factor) already hold at this size.
func SmallScale() Scale {
	return Scale{
		// Sizes keep the paper's rough proportions: K-Means/Classification
		// at "300GB" are the largest, histograms at "30GB" next, WordCount
		// "16GB", NaiveBayes "10GB", PageRank "20GB" of web graph, and the
		// deliberately small "168MB" K-Cliques graph.
		KMeansMovies:    60000,
		KMeansUsers:     150,
		HistogramMovies: 40000,
		HistogramUsers:  150,
		WordCountLines:  60000,
		WordCountVocab:  4000,
		NaiveBayesDocs:  20000,
		PageRankPages:   1500,
		PageRankIters:   3,
		KCliquesScale:   8,
		KCliquesEdges:   1200,
		KCliquesK:       3,
		KClusters:       4,
		Reduces:         8,
	}
}

// TinyScale is for tests: seconds, not minutes.
func TinyScale() Scale {
	s := SmallScale()
	s.KMeansMovies = 400
	s.HistogramMovies = 600
	s.WordCountLines = 1200
	s.NaiveBayesDocs = 400
	s.PageRankPages = 250
	s.PageRankIters = 2
	s.KCliquesScale = 6
	s.KCliquesEdges = 300
	return s
}

// Benchmark identifies one Table 2 row.
type Benchmark string

// The eight benchmarks of §4, in Table 2 order.
const (
	KMeans           Benchmark = "K-Means"
	Classification   Benchmark = "Classification"
	PageRank         Benchmark = "PageRank"
	KCliques         Benchmark = "KCliques"
	WordCount        Benchmark = "WordCount"
	HistogramMovies  Benchmark = "HistogramMovies"
	HistogramRatings Benchmark = "HistogramRatings"
	NaiveBayes       Benchmark = "NaiveBayes"
)

// AllBenchmarks lists Table 2's rows in order.
var AllBenchmarks = []Benchmark{
	KMeans, Classification, PageRank, KCliques,
	WordCount, HistogramMovies, HistogramRatings, NaiveBayes,
}

// Figure3a holds the feature-exploiting benchmarks (iterative and
// multi-phase); Figure3b the IO-intensive ones.
var (
	Figure3aBenchmarks = []Benchmark{KMeans, Classification, PageRank, KCliques}
	Figure3bBenchmarks = []Benchmark{WordCount, HistogramMovies, HistogramRatings, NaiveBayes}
)

// PaperRow is the published Table 2 entry for a benchmark.
type PaperRow struct {
	DataSize string
	IDH      float64 // seconds
	HAMR     float64 // seconds
	Speedup  float64
}

// PaperTable2 reproduces the numbers printed in Table 2.
var PaperTable2 = map[Benchmark]PaperRow{
	KMeans:           {"300GB", 5215.079, 505.685, 10.31},
	Classification:   {"300GB", 2773.660, 212.815, 13.03},
	PageRank:         {"20GB", 2162.102, 158.853, 13.61},
	KCliques:         {"168MB", 1161.246, 100.945, 11.50},
	WordCount:        {"16GB", 89.904, 75.078, 1.20},
	HistogramMovies:  {"30GB", 59.522, 34.542, 1.72},
	HistogramRatings: {"30GB", 66.694, 252.198, 0.26},
	NaiveBayes:       {"10GB", 263.078, 108.29, 2.43},
}

// PaperTable3 reproduces Table 3 (HAMR with combiner).
var PaperTable3 = map[Benchmark]PaperRow{
	HistogramMovies:  {"30GB", 59.522, 33.234, 1.79},
	HistogramRatings: {"30GB", 66.694, 215.911, 0.31},
}

// Row is one measured Table 2 / Table 3 entry.
type Row struct {
	Benchmark Benchmark
	DataSize  string // the paper's size label
	IDH       time.Duration
	HAMR      time.Duration
	Speedup   float64
	Paper     PaperRow
	// IDHWall / HAMRWall are the wall-clock costs of producing the row.
	// In real-clock mode they equal IDH / HAMR; under -vclock IDH/HAMR
	// are modeled seconds from the logical clocks and the wall columns
	// show what the run actually took.
	IDHWall  time.Duration
	HAMRWall time.Duration
	// Modeled marks rows measured under the virtual clock.
	Modeled bool
}
