package bench

import (
	"strings"
	"testing"
	"time"
)

// fastSpec strips the cost models so harness tests run in milliseconds;
// shape calibration is exercised by cmd/hamrbench and bench_test.go at the
// repo root, not here.
func fastSpec() ClusterSpec {
	s := DefaultSpec()
	s.Disk = DefaultSpec().Disk
	s.Disk.TimeScale = 0.01
	s.Net.TimeScale = 0.01
	s.MapReduce.JobStartup = time.Millisecond
	s.MapReduce.TaskStartup = 0
	s.ContentionCost = 0
	return s
}

func TestHarnessRunsEveryBenchmarkOnBothEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness pass")
	}
	h := NewHarness(fastSpec(), TinyScale())
	for _, b := range AllBenchmarks {
		b := b
		t.Run(string(b), func(t *testing.T) {
			if d, err := h.RunHAMR(b); err != nil || d <= 0 {
				t.Fatalf("HAMR: %v (%v)", err, d)
			}
			if d, err := h.RunMR(b); err != nil || d <= 0 {
				t.Fatalf("MR: %v (%v)", err, d)
			}
		})
	}
}

// TestHarnessHotPathClean runs one HAMR benchmark and checks the
// engine's hot-path health counters: a clean run must shuffle data
// (bins.sent > 0) and must not silently drop any payloads — a
// regression in the sharded emit buffers or the codec would surface
// here as bins.dropped > 0 or missing shuffle traffic.
func TestHarnessHotPathClean(t *testing.T) {
	h := NewHarness(fastSpec(), TinyScale())
	if _, err := h.RunHAMR(WordCount); err != nil {
		t.Fatalf("wordcount: %v", err)
	}
	res := h.LastHAMR
	if res == nil {
		t.Fatal("LastHAMR not recorded")
	}
	if got := res.Metrics.Get("bins.sent"); got == 0 {
		t.Error("bins.sent = 0, expected shuffle traffic")
	}
	if got := res.Metrics.Get("shuffle.kvs"); got == 0 {
		t.Error("shuffle.kvs = 0, expected remote shuffle traffic")
	}
	// bins.dropped and net.dropped are substrate counters (runtime
	// teardown, fabric delivery), accounted cluster-wide rather than in
	// the job's own deltas.
	if got := h.LastHAMRCluster.Get("bins.dropped"); got != 0 {
		t.Errorf("bins.dropped = %d on a clean run", got)
	}
	// The fabric only skips deliveries (best-effort broadcast to a closed
	// inbox) during teardown races; a clean run must deliver everything.
	if got := h.LastHAMRCluster.Get("net.dropped"); got != 0 {
		t.Errorf("net.dropped = %d on a clean run", got)
	}
}

func TestHarnessCombinerVariant(t *testing.T) {
	h := NewHarness(fastSpec(), TinyScale())
	for _, b := range []Benchmark{HistogramMovies, HistogramRatings} {
		if _, err := h.RunHAMRCombiner(b); err != nil {
			t.Fatalf("%s with combiner: %v", b, err)
		}
	}
	// Combiner variant is identical to plain for non-histogram benchmarks.
	if _, err := h.RunHAMRCombiner(WordCount); err != nil {
		t.Fatalf("wordcount with combiner: %v", err)
	}
}

func TestPaperTablesComplete(t *testing.T) {
	for _, b := range AllBenchmarks {
		row, ok := PaperTable2[b]
		if !ok {
			t.Errorf("PaperTable2 missing %s", b)
			continue
		}
		want := row.IDH / row.HAMR
		if diff := want - row.Speedup; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: published speedup %.2f inconsistent with times (%.2f)", b, row.Speedup, want)
		}
	}
	if len(Figure3aBenchmarks)+len(Figure3bBenchmarks) != len(AllBenchmarks) {
		t.Error("figure panels do not cover Table 2")
	}
}

func TestShapeCheckAgainstPaperNumbers(t *testing.T) {
	// Feeding the paper's own numbers through the shape check must pass
	// every assertion.
	var rows []Row
	for _, b := range AllBenchmarks {
		p := PaperTable2[b]
		rows = append(rows, Row{
			Benchmark: b,
			DataSize:  p.DataSize,
			IDH:       time.Duration(p.IDH * float64(time.Second)),
			HAMR:      time.Duration(p.HAMR * float64(time.Second)),
			Speedup:   p.Speedup,
			Paper:     p,
		})
	}
	for _, v := range ShapeCheck(rows) {
		if strings.HasPrefix(v, "[FAIL]") {
			t.Errorf("paper numbers fail their own shape check: %s", v)
		}
	}
}

func TestShapeCheckCatchesInversionLoss(t *testing.T) {
	rows := []Row{{
		Benchmark: HistogramRatings,
		Speedup:   1.5, // wrong direction
		Paper:     PaperTable2[HistogramRatings],
	}}
	failed := false
	for _, v := range ShapeCheck(rows) {
		if strings.HasPrefix(v, "[FAIL]") {
			failed = true
		}
	}
	if !failed {
		t.Error("shape check accepted a lost inversion")
	}
}

func TestReportsRender(t *testing.T) {
	var rows []Row
	for _, b := range AllBenchmarks {
		p := PaperTable2[b]
		rows = append(rows, Row{
			Benchmark: b, DataSize: p.DataSize,
			IDH:  2 * time.Second,
			HAMR: time.Second, Speedup: 2, Paper: p,
		})
	}
	var sb strings.Builder
	WriteTable1(&sb, DefaultSpec())
	WriteTable2(&sb, rows)
	WriteTable3(&sb, rows[:2])
	WriteFigure3(&sb, rows, "3a")
	WriteFigure3(&sb, rows, "3b")
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Figure 3(a)", "Figure 3(b)",
		"K-Means", "HistogramRatings", "Baseline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFigure3Selection(t *testing.T) {
	var rows []Row
	for _, b := range AllBenchmarks {
		rows = append(rows, Row{Benchmark: b})
	}
	a := Figure3(rows, "3a")
	if len(a) != 4 || a[0].Benchmark != KMeans {
		t.Errorf("Figure3(3a) = %v", a)
	}
	b := Figure3(rows, "3b")
	if len(b) != 4 || b[0].Benchmark != WordCount {
		t.Errorf("Figure3(3b) = %v", b)
	}
}

func TestScalesProportioned(t *testing.T) {
	s := SmallScale()
	// K-Means ("300GB") must be the biggest movies dataset; histograms
	// ("30GB") bigger than nothing else uses movies.
	if s.KMeansMovies <= s.HistogramMovies {
		t.Errorf("K-Means dataset (%d) should exceed histogram dataset (%d), as 300GB > 30GB",
			s.KMeansMovies, s.HistogramMovies)
	}
	tiny := TinyScale()
	if tiny.KMeansMovies >= s.KMeansMovies {
		t.Error("tiny scale not smaller than small scale")
	}
}
