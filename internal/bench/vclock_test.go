package bench

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/mapreduce"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
	"github.com/hamr-go/hamr/internal/transport"
	"github.com/hamr-go/hamr/internal/vtime"
)

// The virtual clock must change how modeled delays are *paid*, never
// what the engines *do*: outputs and byte counters have to be identical
// between a real-clock and a virtual-clock run of the same workload.
// The configurations here are placement-deterministic (single reduce
// task, oversized YARN memory, one worker per node, no coalescing) so
// the comparison is exact, the cacheprobe discipline.

// invariantCounters are the byte/op counters whose values must not
// depend on which clock paid the modeled delays.
var invariantCounters = []string{
	"mr.jobs", "mr.spills", "mr.spill.bytes", "mr.merge.passes",
	"mr.shuffle.bytes", "mr.reduce.disk.merges",
	"disk.read.bytes", "disk.write.bytes", "net.bytes",
}

func counterValues(reg *metrics.Registry, names []string) string {
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, reg.Counter(n).Value()))
	}
	return strings.Join(parts, " ")
}

// invariantModels returns mild but non-zero cost models, so the real
// run actually sleeps and the virtual run actually charges.
func invariantModels() (*storage.CostModel, *transport.CostModel) {
	return &storage.CostModel{
			SeekLatency:      20 * time.Microsecond,
			ReadBytesPerSec:  150 << 20,
			WriteBytesPerSec: 120 << 20,
			TimeScale:        1,
		}, &transport.CostModel{
			Latency:     2 * time.Microsecond,
			BytesPerSec: 4 << 30,
			TimeScale:   1,
		}
}

// runMRInvariant runs a spill-heavy WordCount on the baseline engine
// under the given clock (nil = real) and returns the output hash, the
// counter line and the modeled elapsed time.
func runMRInvariant(t *testing.T, vc *vtime.VirtualClock) (string, string, time.Duration) {
	t.Helper()
	diskM, netM := invariantModels()
	opts := cluster.Options{
		NumNodes:      3,
		DiskModel:     diskM,
		NetModel:      netM,
		HDFSBlockSize: 4 << 10,
		YarnMemMB:     1 << 20,
	}
	if vc != nil {
		opts.Clock = vc
	}
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	input := datagen.Text(datagen.TextConfig{Seed: 23, Vocabulary: 150, Lines: 700})
	if err := c.FS().WriteFile("in/words", input, -1); err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(c, mapreduce.Config{
		SortBufferBytes: 2 << 10,
		MergeFactor:     2,
		JobStartup:      5 * time.Millisecond,
		TaskStartup:     500 * time.Microsecond,
	})
	var mark vtime.Mark
	if vc != nil {
		mark = vc.Mark()
	}
	if _, err := eng.Run(mapreduce.Job{
		Name:          "wc",
		InputPrefixes: []string{"in/"},
		Output:        "out",
		NumReduces:    1,
		NewMapper:     func() mapreduce.Mapper { return wcInvMapper{} },
		NewReducer:    func() mapreduce.Reducer { return sumInvReducer{} },
	}); err != nil {
		t.Fatal(err)
	}
	var modeled time.Duration
	if vc != nil {
		modeled = vc.Since(mark)
	}
	h := sha256.New()
	for _, name := range c.FS().List("out/") {
		data, err := c.FS().ReadFile(name, -1)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s\n", name)
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), counterValues(c.Metrics(), invariantCounters), modeled
}

type wcInvMapper struct{}

func (wcInvMapper) Map(kv core.KV, out mapreduce.Emitter) error {
	for _, w := range strings.Fields(kv.Value.(string)) {
		if err := out.Emit(core.KV{Key: w, Value: int64(1)}); err != nil {
			return err
		}
	}
	return nil
}

type sumInvReducer struct{}

func (sumInvReducer) Reduce(key string, values []any, out mapreduce.Emitter) error {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return out.Emit(core.KV{Key: key, Value: total})
}

// runHAMRInvariant runs a spill-heavy WordCount on the flowlet engine
// (one worker per node, coalescing off, contention model on) under the
// given clock and returns the output hash, counter line and modeled
// elapsed time.
func runHAMRInvariant(t *testing.T, vc *vtime.VirtualClock) (string, string, time.Duration) {
	t.Helper()
	diskM, netM := invariantModels()
	opts := cluster.Options{
		NumNodes:  3,
		DiskModel: diskM,
		NetModel:  netM,
		Core: core.Config{
			Workers:        1,
			MemoryBudget:   4 << 10,
			CoalesceMsgs:   -1,
			ContentionCost: 5 * time.Microsecond,
		},
	}
	if vc != nil {
		opts.Clock = vc
	}
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	input := datagen.Text(datagen.TextConfig{Seed: 23, Vocabulary: 150, Lines: 700})
	files, err := hamrapps.DistributeLocalText(c, "wc", input, 6)
	if err != nil {
		t.Fatal(err)
	}
	g, sink, err := hamrapps.BuildWordCount(hamrapps.WordCountOptions{
		Loader: &hamrapps.LocalTextLoader{Files: files},
	})
	if err != nil {
		t.Fatal(err)
	}
	var mark vtime.Mark
	if vc != nil {
		mark = vc.Mark()
	}
	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	var modeled time.Duration
	if vc != nil {
		modeled = vc.Since(mark)
	}
	h := sha256.New()
	for _, kv := range sink.Sorted() {
		fmt.Fprintf(h, "%s=%v\n", kv.Key, kv.Value)
	}
	counters := counterValues(c.Metrics(), []string{
		"reduce.spills", "reduce.spill.bytes",
		"disk.read.bytes", "disk.write.bytes", "net.bytes",
	})
	return fmt.Sprintf("%x", h.Sum(nil)), counters, modeled
}

// TestMRInvariantRealVsVirtual: same outputs and byte counters under
// either clock, and identical modeled times across two virtual runs.
func TestMRInvariantRealVsVirtual(t *testing.T) {
	realHash, realCounters, _ := runMRInvariant(t, nil)
	v1Hash, v1Counters, v1Modeled := runMRInvariant(t, vtime.NewVirtual(3))
	if v1Hash != realHash {
		t.Errorf("output hash differs: real %s virtual %s", realHash[:16], v1Hash[:16])
	}
	if v1Counters != realCounters {
		t.Errorf("counters differ:\n real:    %s\n virtual: %s", realCounters, v1Counters)
	}
	if v1Modeled <= 0 {
		t.Errorf("virtual run reported no modeled time")
	}
	_, _, v2Modeled := runMRInvariant(t, vtime.NewVirtual(3))
	if v1Modeled != v2Modeled {
		t.Errorf("modeled time differs across virtual runs: %v vs %v", v1Modeled, v2Modeled)
	}
}

// TestHAMRInvariantRealVsVirtual: flowlet-engine counterpart, including
// the striped-contention overlap model.
func TestHAMRInvariantRealVsVirtual(t *testing.T) {
	realHash, realCounters, _ := runHAMRInvariant(t, nil)
	v1Hash, v1Counters, v1Modeled := runHAMRInvariant(t, vtime.NewVirtual(3))
	if v1Hash != realHash {
		t.Errorf("output hash differs: real %s virtual %s", realHash[:16], v1Hash[:16])
	}
	if v1Counters != realCounters {
		t.Errorf("counters differ:\n real:    %s\n virtual: %s", realCounters, v1Counters)
	}
	if v1Modeled <= 0 {
		t.Errorf("virtual run reported no modeled time")
	}
	_, _, v2Modeled := runHAMRInvariant(t, vtime.NewVirtual(3))
	if v1Modeled != v2Modeled {
		t.Errorf("modeled time differs across virtual runs: %v vs %v", v1Modeled, v2Modeled)
	}
}
