package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
)

// TestInMemBroadcastBestEffort: a closed inbox mid-broadcast must not
// abort the fan-out — remaining nodes still get the message and the skip
// is counted in net.dropped. (The pre-ring implementation returned an
// error after some nodes had already received the broadcast.)
func TestInMemBroadcastBestEffort(t *testing.T) {
	reg := metrics.NewRegistry()
	n := NewInMemNetwork(CostModel{}, reg)
	defer n.Close()

	var got [3]atomic.Int64
	recv := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		if err := n.Register(NodeID(i), func(Message) {
			got[i].Add(1)
			recv <- i
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Force the mid-broadcast race deterministically: close node 1's inbox
	// while it is still present in the routing snapshot (white-box — via
	// the public API the window only opens between a snapshot load in Send
	// and a concurrent Unregister).
	ib := n.routes.Load().lookup(1)
	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
	<-ib.done

	if err := n.Send(Message{From: 0, To: Broadcast, Kind: "b", Size: 10}); err != nil {
		t.Fatalf("best-effort broadcast returned error: %v", err)
	}
	for j := 0; j < 2; j++ { // one delivery each to the two open nodes
		select {
		case <-recv:
		case <-time.After(5 * time.Second):
			t.Fatal("broadcast never reached both open nodes")
		}
	}
	if got[0].Load() != 1 || got[2].Load() != 1 {
		t.Fatalf("open nodes got %d/%d broadcasts, want 1/1", got[0].Load(), got[2].Load())
	}
	if got[1].Load() != 0 {
		t.Fatalf("closed node got %d broadcasts, want 0", got[1].Load())
	}
	if d := reg.Counter("net.dropped").Value(); d != 1 {
		t.Fatalf("net.dropped = %d, want 1", d)
	}
	// Only the two delivered copies are accounted.
	if b := reg.Counter("net.bytes").Value(); b != 20 {
		t.Fatalf("net.bytes = %d, want 20", b)
	}
}

// TestInMemUnregister: queued messages drain, then unicast sends fail and
// broadcasts skip the node without error.
func TestInMemUnregister(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	var delivered atomic.Int64
	if err := n.Register(0, func(Message) { delivered.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(1, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := n.Send(Message{From: 1, To: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Unregister(0); err != nil {
		t.Fatal(err)
	}
	if delivered.Load() != 10 {
		t.Fatalf("delivered %d queued messages across Unregister, want 10", delivered.Load())
	}
	if err := n.Send(Message{From: 1, To: 0}); err == nil {
		t.Fatal("unicast to unregistered node succeeded")
	}
	if err := n.Send(Message{From: 1, To: Broadcast}); err != nil {
		t.Fatalf("broadcast after unregister: %v", err)
	}
	if err := n.Unregister(0); err == nil {
		t.Fatal("double unregister succeeded")
	}
}

// TestInMemRingCapacityBounded: sustained send/drain traffic must not grow
// the inbox ring — the old queue = queue[1:] slice leaked its head and
// grew its backing array without bound.
func TestInMemRingCapacityBounded(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	block := make(chan struct{}, 1)
	ack := make(chan struct{}, 8)
	if err := n.Register(0, func(Message) { <-block; ack <- struct{}{} }); err != nil {
		t.Fatal(err)
	}
	const rounds, perRound = 200, 8
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			if err := n.Send(Message{From: 1, To: 0, Payload: make([]byte, 64)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < perRound; i++ {
			block <- struct{}{}
		}
		for i := 0; i < perRound; i++ { // every send of the round delivered
			select {
			case <-ack:
			case <-time.After(5 * time.Second):
				t.Fatalf("round %d: delivery %d never arrived", r, i)
			}
		}
	}
	// High-water mark per round is perRound messages; the ring's minimum
	// allocation is 16. Anything bigger means the queue retained slack
	// across rounds.
	if c := n.queueCap(0); c > 16 {
		t.Fatalf("ring capacity grew to %d after %d send/drain rounds (high-water %d)", c, rounds, perRound)
	}
}

// TestInMemConcurrentStress exercises Send/Register/Unregister/QueueDepth
// concurrently; run under -race in CI. All successfully sent unicasts must
// be delivered exactly once before Close returns.
func TestInMemConcurrentStress(t *testing.T) {
	reg := metrics.NewRegistry()
	n := NewInMemNetwork(CostModel{}, reg)

	const stable = 4 // nodes that live for the whole test
	var delivered atomic.Int64
	for i := 0; i < stable; i++ {
		if err := n.Register(NodeID(i), func(Message) { delivered.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}

	var sent atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := n.Send(Message{From: NodeID(g), To: NodeID(i % stable), Size: 1}); err == nil {
					sent.Add(1)
				}
			}
		}(g)
	}
	// Churn extra nodes through Register/Unregister while sends fly. The
	// churn's 200 rounds, not a wall-clock sleep, set the stress duration:
	// the senders run exactly as long as there is churn to race against.
	churnDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(churnDone)
		for i := 0; i < 200; i++ {
			id := NodeID(stable + i%8)
			if err := n.Register(id, func(Message) {}); err != nil {
				t.Errorf("register %d: %v", id, err)
				return
			}
			_ = n.Send(Message{From: 0, To: id})
			if err := n.Unregister(id); err != nil {
				t.Errorf("unregister %d: %v", id, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for i := 0; i < stable; i++ {
					_ = n.QueueDepth(NodeID(i))
				}
			}
		}
	}()

	<-churnDone
	close(stop)
	wg.Wait()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if delivered.Load() != sent.Load() {
		t.Fatalf("delivered %d of %d successfully sent messages", delivered.Load(), sent.Load())
	}
}

// TestCoalescerBytesInvariant: coalescing must not change net.bytes —
// the batch frame's modeled size is the sum of its members — while the
// frame count must actually drop.
func TestCoalescerBytesInvariant(t *testing.T) {
	reg := metrics.NewRegistry()
	n := NewInMemNetwork(CostModel{}, reg)
	defer n.Close()
	co := NewCoalescer(n, CoalescerConfig{MaxBytes: 1 << 20, MaxMsgs: 8, MaxAge: time.Hour})
	defer co.Close()

	const msgs = 100
	var order []int64
	var mu sync.Mutex
	allIn := make(chan struct{})
	if err := co.Register(0, func(m Message) {
		mu.Lock()
		order = append(order, m.Size)
		if len(order) == msgs {
			close(allIn)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	var want int64
	for i := 0; i < msgs; i++ {
		sz := int64(i + 1)
		want += sz
		if err := co.Send(Message{From: 1, To: 0, Kind: "kv", Size: sz}); err != nil {
			t.Fatal(err)
		}
	}
	if err := co.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-allIn:
	case <-time.After(5 * time.Second):
		t.Fatal("coalesced stream never fully delivered")
	}

	if got := reg.Counter("net.bytes").Value(); got != want {
		t.Fatalf("net.bytes = %d after coalescing, want %d (invariant: framing never changes byte totals)", got, want)
	}
	if frames := reg.Counter("net.msgs").Value(); frames >= msgs || frames < msgs/8 {
		t.Fatalf("net.msgs = %d frames for %d messages with MaxMsgs=8", frames, msgs)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != msgs {
		t.Fatalf("handler saw %d messages, want %d", len(order), msgs)
	}
	for i, sz := range order {
		if sz != int64(i+1) {
			t.Fatalf("message %d arrived with size %d: coalescing reordered the stream", i, sz)
		}
	}
}

// TestCoalescerBarriers: a large message and a broadcast must both flush
// pending traffic ahead of themselves so per-receiver order is preserved.
func TestCoalescerBarriers(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	co := NewCoalescer(n, CoalescerConfig{MaxBytes: 1 << 10, MaxMsgs: 1 << 20, MaxAge: time.Hour})
	defer co.Close()

	var mu sync.Mutex
	var kinds []string
	allIn := make(chan struct{})
	for i := 0; i < 2; i++ {
		node := i // broadcasts arrive with To == Broadcast; key by receiver
		if err := co.Register(NodeID(node), func(m Message) {
			mu.Lock()
			kinds = append(kinds, fmt.Sprintf("%d:%s", node, m.Kind))
			if len(kinds) == 5 {
				close(allIn)
			}
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Small message buffers; oversized message must arrive after it.
	if err := co.Send(Message{From: 1, To: 0, Kind: "small", Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := co.Send(Message{From: 1, To: 0, Kind: "big", Size: 4 << 10}); err != nil {
		t.Fatal(err)
	}
	// Buffered small to node 1, then broadcast: flush-before-broadcast.
	if err := co.Send(Message{From: 1, To: 1, Kind: "small", Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := co.Send(Message{From: 1, To: Broadcast, Kind: "done", Size: 4}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-allIn:
	case <-time.After(5 * time.Second):
		t.Fatal("barrier deliveries incomplete")
	}

	mu.Lock()
	defer mu.Unlock()
	pos := map[string]int{}
	for i, k := range kinds {
		pos[k] = i
	}
	if len(kinds) != 5 {
		t.Fatalf("got %d deliveries %v, want 5", len(kinds), kinds)
	}
	if pos["0:small"] > pos["0:big"] {
		t.Errorf("large-message barrier broken: %v", kinds)
	}
	if pos["0:small"] > pos["0:done"] || pos["1:small"] > pos["1:done"] {
		t.Errorf("broadcast barrier broken: %v", kinds)
	}
}

// TestCoalescerAgeFlush: without reaching any size threshold, buffered
// messages must still go out within ~MaxAge.
func TestCoalescerAgeFlush(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	co := NewCoalescer(n, CoalescerConfig{MaxBytes: 1 << 20, MaxMsgs: 1 << 20, MaxAge: 2 * time.Millisecond})
	defer co.Close()
	got := make(chan Message, 4)
	if err := co.Register(0, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	if err := co.Send(Message{From: 1, To: 0, Kind: "lonely", Size: 8}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Kind != "lonely" {
			t.Fatalf("got kind %q", m.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("age flush never fired")
	}
	// The timer re-arms for later sends, too.
	if err := co.Send(Message{From: 1, To: 0, Kind: "second", Size: 8}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Kind != "second" {
			t.Fatalf("got kind %q", m.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("age flush did not re-arm")
	}
}

// TestTCPLargePayload: multi-MB payloads must round-trip intact through
// the framed stream.
func TestTCPLargePayload(t *testing.T) {
	RegisterPayload([]byte(nil))
	addrs := map[NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	n := NewTCPNetwork(addrs)
	defer n.Close()

	got := make(chan Message, 1)
	if err := n.Register(0, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(1, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 3<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := n.Send(Message{From: 0, To: 1, Kind: "blob", Payload: payload, Size: int64(len(payload))}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		b, ok := m.Payload.([]byte)
		if !ok {
			t.Fatalf("payload type %T", m.Payload)
		}
		if len(b) != len(payload) {
			t.Fatalf("payload length %d, want %d", len(b), len(payload))
		}
		for i := range b {
			if b[i] != payload[i] {
				t.Fatalf("payload corrupted at byte %d", i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout waiting for 3MB payload")
	}
}

// TestTCPCoalescedFrames: a Coalescer over TCPNetwork delivers batch
// frames that unpack transparently, in order, on the receiving side.
func TestTCPCoalescedFrames(t *testing.T) {
	RegisterPayload("")
	addrs := map[NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	tcp := NewTCPNetwork(addrs)
	defer tcp.Close()
	co := NewCoalescer(tcp, CoalescerConfig{MaxBytes: 1 << 20, MaxMsgs: 16, MaxAge: time.Hour})
	defer co.Close()

	const msgs = 64
	got := make(chan Message, msgs)
	if err := co.Register(0, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	if err := co.Register(1, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < msgs; i++ {
		if err := co.Send(Message{From: 0, To: 1, Kind: "kv", Payload: fmt.Sprintf("m%03d", i), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := co.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < msgs; i++ {
		select {
		case m := <-got:
			if want := fmt.Sprintf("m%03d", i); m.Payload.(string) != want {
				t.Fatalf("message %d: payload %v, want %q (batch unpack must preserve order)", i, m.Payload, want)
			}
			if m.Kind != "kv" {
				t.Fatalf("message %d: kind %q leaked framing", i, m.Kind)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout: received %d of %d coalesced messages", i, msgs)
		}
	}
}
