// Package transport provides the inter-node message fabric used by the
// HAMR runtime and the MapReduce baseline's shuffle.
//
// Two implementations are provided:
//
//   - InMemNetwork: an in-process network for the simulated cluster. Each
//     destination node has a delivery queue drained by a dedicated
//     goroutine, which charges a configurable latency + bandwidth cost per
//     message before invoking the destination handler. Per-node ingress is
//     therefore serialized, which models the hot-receiver bottleneck the
//     paper observes for skewed key spaces (§5.2, HistogramRatings).
//
//   - TCPNetwork: a real TCP transport (gob framing) demonstrating that the
//     engine runs over the operating system network stack; used by tests
//     and the multi-process mode of cmd/hamr.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
)

// NodeID identifies a node in the cluster, in [0, N).
type NodeID int

// Broadcast may be used as Message.To to deliver to every registered node
// (including the sender).
const Broadcast NodeID = -1

// Message is one unit of communication. Size is the modeled wire size in
// bytes used by cost models; senders should set it to the approximate
// serialized size of Payload.
type Message struct {
	From    NodeID
	To      NodeID
	Kind    string
	Payload any
	Size    int64
}

// Handler consumes delivered messages. Handlers run on the network's
// delivery goroutine for the destination node and must not block for long.
type Handler func(msg Message)

// Network is the fabric interface shared by all implementations.
type Network interface {
	// Register installs the handler for a node. Must be called before any
	// message is sent to that node.
	Register(node NodeID, h Handler) error
	// Send delivers msg asynchronously to msg.To's handler.
	Send(msg Message) error
	// Close shuts the network down, waiting for queued deliveries.
	Close() error
}

// CostModel describes modeled link performance.
type CostModel struct {
	// Latency is charged once per message.
	Latency time.Duration
	// BytesPerSec is the per-receiver ingress bandwidth.
	BytesPerSec int64
	// TimeScale multiplies every modeled delay (0 treated as 1).
	TimeScale float64
}

// FDRInfiniBand resembles the paper's 4x FDR fabric (about 54 Gb/s per
// link; we model effective per-receiver ingress of ~4 GB/s with microsecond
// latency).
func FDRInfiniBand() CostModel {
	return CostModel{Latency: 2 * time.Microsecond, BytesPerSec: 4 << 30, TimeScale: 1}
}

// GigabitEthernet resembles a commodity 1 GbE fabric.
func GigabitEthernet() CostModel {
	return CostModel{Latency: 100 * time.Microsecond, BytesPerSec: 115 << 20, TimeScale: 1}
}

func (m CostModel) delay(size int64) time.Duration {
	d := m.Latency
	if m.BytesPerSec > 0 {
		d += time.Duration(float64(size) / float64(m.BytesPerSec) * float64(time.Second))
	}
	s := m.TimeScale
	if s == 0 {
		s = 1
	}
	return time.Duration(float64(d) * s)
}

type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Message
	closed  bool
	handler Handler
	done    chan struct{}
}

// InMemNetwork is the in-process Network used by the simulated cluster.
type InMemNetwork struct {
	mu     sync.Mutex
	nodes  map[NodeID]*inbox
	model  CostModel
	reg    *metrics.Registry
	sleep  func(time.Duration)
	closed bool
}

// NewInMemNetwork creates a network with the given cost model, recording
// metrics into reg (nil allowed).
func NewInMemNetwork(model CostModel, reg *metrics.Registry) *InMemNetwork {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &InMemNetwork{
		nodes: make(map[NodeID]*inbox),
		model: model,
		reg:   reg,
		sleep: time.Sleep,
	}
}

// SetSleep replaces the delay function (tests).
func (n *InMemNetwork) SetSleep(fn func(time.Duration)) { n.sleep = fn }

// Register implements Network.
func (n *InMemNetwork) Register(node NodeID, h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("transport: register on closed network")
	}
	if _, dup := n.nodes[node]; dup {
		return fmt.Errorf("transport: node %d already registered", node)
	}
	ib := &inbox{handler: h, done: make(chan struct{})}
	ib.cond = sync.NewCond(&ib.mu)
	n.nodes[node] = ib
	go n.deliver(ib)
	return nil
}

func (n *InMemNetwork) deliver(ib *inbox) {
	defer close(ib.done)
	for {
		ib.mu.Lock()
		for len(ib.queue) == 0 && !ib.closed {
			ib.cond.Wait()
		}
		if len(ib.queue) == 0 && ib.closed {
			ib.mu.Unlock()
			return
		}
		msg := ib.queue[0]
		ib.queue = ib.queue[1:]
		ib.mu.Unlock()

		if d := n.model.delay(msg.Size); d > 0 {
			n.reg.Observe("net.time", d)
			n.sleep(d)
		}
		ib.handler(msg)
	}
}

// Send implements Network. Sends to an unregistered node fail.
func (n *InMemNetwork) Send(msg Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("transport: send on closed network")
	}
	var targets []*inbox
	if msg.To == Broadcast {
		targets = make([]*inbox, 0, len(n.nodes))
		for _, ib := range n.nodes {
			targets = append(targets, ib)
		}
	} else {
		ib, ok := n.nodes[msg.To]
		if !ok {
			n.mu.Unlock()
			return fmt.Errorf("transport: unknown node %d", msg.To)
		}
		targets = []*inbox{ib}
	}
	n.mu.Unlock()

	n.reg.Add("net.msgs", int64(len(targets)))
	n.reg.Add("net.bytes", msg.Size*int64(len(targets)))
	for _, ib := range targets {
		ib.mu.Lock()
		if ib.closed {
			ib.mu.Unlock()
			return errors.New("transport: send to closed node")
		}
		ib.queue = append(ib.queue, msg)
		ib.cond.Signal()
		ib.mu.Unlock()
	}
	return nil
}

// QueueDepth returns the number of undelivered messages for a node; used by
// tests and by flow-control diagnostics.
func (n *InMemNetwork) QueueDepth(node NodeID) int {
	n.mu.Lock()
	ib, ok := n.nodes[node]
	n.mu.Unlock()
	if !ok {
		return 0
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return len(ib.queue)
}

// Close implements Network. It waits for all queued messages to be
// delivered.
func (n *InMemNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	nodes := make([]*inbox, 0, len(n.nodes))
	for _, ib := range n.nodes {
		nodes = append(nodes, ib)
	}
	n.mu.Unlock()
	for _, ib := range nodes {
		ib.mu.Lock()
		ib.closed = true
		ib.cond.Broadcast()
		ib.mu.Unlock()
		<-ib.done
	}
	return nil
}

var _ Network = (*InMemNetwork)(nil)
