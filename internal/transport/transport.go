// Package transport provides the inter-node message fabric used by the
// HAMR runtime and the MapReduce baseline's shuffle.
//
// Two implementations are provided:
//
//   - InMemNetwork: an in-process network for the simulated cluster. Each
//     destination node has a delivery queue drained by a dedicated
//     goroutine, which charges a configurable latency + bandwidth cost
//     before invoking the destination handler. Per-node ingress is
//     therefore serialized, which models the hot-receiver bottleneck the
//     paper observes for skewed key spaces (§5.2, HistogramRatings).
//
//   - TCPNetwork: a real TCP transport (gob framing) demonstrating that the
//     engine runs over the operating system network stack; used by tests
//     and the multi-process mode of cmd/hamr.
//
// A Coalescer (coalesce.go) can wrap either network to aggregate small
// same-destination messages into one framed batch; both networks unpack
// batch frames transparently before invoking handlers.
//
// Fabric engineering vs modeled cost: the send path is lock-free beyond
// the destination inbox (an atomically swapped immutable routing snapshot
// serves lookups), the inbox is a ring queue that does not retain its
// backing array the way a queue = queue[1:] slice did, and the delivery
// goroutine drains whole batches, charging the summed modeled delay in a
// single sleep. The modeled per-message byte and latency charges are
// computed with the exact same formula as one-at-a-time delivery, so
// total modeled cost is bit-identical — only the engine's own overhead
// (lock acquisitions, wakeups, registry lookups, sleep syscalls) is
// amortized. See DESIGN.md §6 "Fabric: modeled vs engineered cost".
package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/trace"
	"github.com/hamr-go/hamr/internal/vtime"
)

// NodeID identifies a node in the cluster, in [0, N).
type NodeID int

// Broadcast may be used as Message.To to deliver to every registered node
// (including the sender).
//
// Broadcast delivery is best-effort: nodes whose inbox has been closed
// (network shutdown or Unregister racing the send) are skipped rather than
// aborting the fan-out partway — a partial abort previously left some
// nodes with the message and some without, with no trace. Skipped
// deliveries are counted in the "net.dropped" counter.
const Broadcast NodeID = -1

// Message is one unit of communication. Size is the modeled wire size in
// bytes used by cost models; senders should set it to the approximate
// serialized size of Payload.
type Message struct {
	From    NodeID
	To      NodeID
	Kind    string
	Payload any
	Size    int64
}

// Handler consumes delivered messages. Handlers run on the network's
// delivery goroutine for the destination node and must not block for long.
type Handler func(msg Message)

// FaultHook lets a fault injector perturb delivery (see internal/faults).
// It is consulted once per wire message (a coalesced batch frame counts as
// one) arriving at a node and returns the simulated mishaps: retrans
// counts dropped-then-retransmitted copies, dups counts duplicates the
// fabric dedups by sequence number, extra is added latency. The fabric
// stays reliable — every message is still delivered exactly once — so the
// faults cost modeled time without perturbing application state.
type FaultHook interface {
	DeliveryFault(node int, size int64) (retrans, dups int, extra time.Duration)
}

// Network is the fabric interface shared by all implementations.
type Network interface {
	// Register installs the handler for a node. Must be called before any
	// message is sent to that node.
	Register(node NodeID, h Handler) error
	// Send delivers msg asynchronously to msg.To's handler.
	Send(msg Message) error
	// Close shuts the network down, waiting for queued deliveries.
	Close() error
}

// CostModel describes modeled link performance.
type CostModel struct {
	// Latency is charged once per message.
	Latency time.Duration
	// BytesPerSec is the per-receiver ingress bandwidth.
	BytesPerSec int64
	// TimeScale multiplies every modeled delay (0 treated as 1).
	TimeScale float64
}

// FDRInfiniBand resembles the paper's 4x FDR fabric (about 54 Gb/s per
// link; we model effective per-receiver ingress of ~4 GB/s with microsecond
// latency).
func FDRInfiniBand() CostModel {
	return CostModel{Latency: 2 * time.Microsecond, BytesPerSec: 4 << 30, TimeScale: 1}
}

// GigabitEthernet resembles a commodity 1 GbE fabric.
func GigabitEthernet() CostModel {
	return CostModel{Latency: 100 * time.Microsecond, BytesPerSec: 115 << 20, TimeScale: 1}
}

func (m CostModel) delay(size int64) time.Duration {
	d := m.Latency
	if m.BytesPerSec > 0 {
		d += time.Duration(float64(size) / float64(m.BytesPerSec) * float64(time.Second))
	}
	s := m.TimeScale
	if s == 0 {
		s = 1
	}
	return time.Duration(float64(d) * s)
}

// dispatch invokes h once per application message: coalesced batch frames
// are unpacked in order, compressed batch frames are decompressed first
// (dm charges the modeled decode CPU; nil is free), everything else
// passes straight through. Both network implementations route deliveries
// through it, so receivers never see the framing.
func dispatch(h Handler, msg Message, dm *compress.Meter) {
	switch msg.Kind {
	case KindBatch:
		switch bp := msg.Payload.(type) {
		case *BatchPayload:
			for i := range bp.Msgs {
				h(bp.Msgs[i])
			}
			return
		case BatchPayload: // the TCP transport decodes payloads by value
			for i := range bp.Msgs {
				h(bp.Msgs[i])
			}
			return
		}
	case KindBatchZ:
		var frame []byte
		switch zp := msg.Payload.(type) {
		case *BatchZPayload:
			frame = zp.Frame
		case BatchZPayload:
			frame = zp.Frame
		}
		if frame != nil {
			// The fabric is reliable and the frame was built by our own
			// coalescer, so a decode failure is a programming bug, not a
			// recoverable condition — failing loudly beats silently losing
			// a batch and deadlocking flow control.
			raw, _, err := compress.DecodeFrame(nil, frame, dm)
			if err != nil {
				panic(fmt.Sprintf("transport: corrupt compressed batch frame: %v", err))
			}
			var bp BatchPayload
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&bp); err != nil {
				panic(fmt.Sprintf("transport: undecodable compressed batch: %v", err))
			}
			for i := range bp.Msgs {
				h(bp.Msgs[i])
			}
			return
		}
	}
	h(msg)
}

// msgRing is a growable circular queue of messages. Unlike the previous
// queue = queue[1:] slice, popping never strands the backing array's head,
// and drained slots are zeroed so delivered payloads are released to the
// GC. Capacity stays at the high-water mark of queued-but-undelivered
// messages; sustained send/drain traffic does not grow it. Capacity is
// always a power of two so indexing is a mask, not a modulo.
type msgRing struct {
	buf  []Message
	head int
	n    int
}

func (r *msgRing) push(m Message) {
	if r.n == len(r.buf) {
		grown := make([]Message, max(16, 2*len(r.buf)))
		mask := len(r.buf) - 1
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)&mask]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = m
	r.n++
}

// drainInto appends every queued message to dst, zeroes the vacated slots
// and empties the ring.
func (r *msgRing) drainInto(dst []Message) []Message {
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		idx := (r.head + i) & mask
		dst = append(dst, r.buf[idx])
		r.buf[idx] = Message{}
	}
	r.head, r.n = 0, 0
	return dst
}

type inbox struct {
	id      NodeID
	mu      sync.Mutex
	cond    *sync.Cond
	q       msgRing
	closed  bool
	handler Handler
	done    chan struct{}
	// inflight counts messages drained from the queue but not yet handed
	// to the handler, so QueueDepth reports undelivered messages even
	// while the delivery goroutine works through a batch.
	inflight atomic.Int64
	// deliveries numbers charged delivery batches for trace span IDs; only
	// the delivery goroutine touches it.
	deliveries int64
}

// enqueue appends msg to the inbox queue, reporting false if the inbox is
// closed. The delivery goroutine only waits when the queue is empty, so a
// wakeup is needed only on the empty -> non-empty transition.
func (ib *inbox) enqueue(msg Message) bool {
	ib.mu.Lock()
	if ib.closed {
		ib.mu.Unlock()
		return false
	}
	wasEmpty := ib.q.n == 0
	ib.q.push(msg)
	if wasEmpty {
		ib.cond.Signal()
	}
	ib.mu.Unlock()
	return true
}

// routeTable is an immutable routing snapshot. Send loads it with one
// atomic read and touches no lock shared with other senders; Register,
// Unregister and Close copy-on-write a new table (RCU-style) under regMu.
// Dense non-negative node ids — the only ids the simulated cluster uses —
// resolve through a direct slice index; anything else falls back to a map.
type routeTable struct {
	dense  []*inbox          // index = NodeID for 0 <= id < len(dense), nil holes
	sparse map[NodeID]*inbox // ids outside the dense range
	list   []*inbox          // every registered inbox, for Broadcast
}

// maxDenseNodeID bounds the dense slice so a stray huge id cannot make
// Register allocate gigabytes.
const maxDenseNodeID = 1 << 16

func (rt *routeTable) lookup(id NodeID) *inbox {
	if id >= 0 && int(id) < len(rt.dense) {
		return rt.dense[id]
	}
	if rt.sparse == nil {
		return nil
	}
	return rt.sparse[id]
}

// clone copies the table so one entry can be added or removed.
func (rt *routeTable) clone(extraDense int) *routeTable {
	next := &routeTable{
		dense: make([]*inbox, max(len(rt.dense), extraDense)),
		list:  make([]*inbox, len(rt.list)),
	}
	copy(next.dense, rt.dense)
	copy(next.list, rt.list)
	if len(rt.sparse) > 0 {
		next.sparse = make(map[NodeID]*inbox, len(rt.sparse))
		for id, ib := range rt.sparse {
			next.sparse[id] = ib
		}
	}
	return next
}

// InMemNetwork is the in-process Network used by the simulated cluster.
//
// Send is lock-free up to the destination inbox: the routing snapshot is
// read with a single atomic load, and the only mutex taken is the
// destination's own queue lock. Metric handles are resolved once at
// construction, so the per-send cost is two atomic counter adds rather
// than two string-keyed registry lookups.
type InMemNetwork struct {
	routes atomic.Pointer[routeTable]
	regMu  sync.Mutex // serializes Register / Unregister / Close
	model  CostModel
	reg    *metrics.Registry
	sleep  func(time.Duration) // test override; nil = clock
	clock  vtime.Clock
	closed atomic.Bool
	hook   atomic.Value                   // FaultHook, set via SetFaults
	decm   atomic.Pointer[compress.Meter] // decode meter, set via SetDecodeMeter
	tr     atomic.Pointer[trace.Tracer]   // span recorder, set via SetTrace

	mMsgs    *metrics.Counter
	mBytes   *metrics.Counter
	mDropped *metrics.Counter
	tTime    *metrics.Timer

	// pending counts accepted messages whose delivery (modeled delay
	// charge + handler dispatch) has not yet completed. It is raised
	// before the inbox enqueue so that no observer downstream of a
	// delivered copy can see the count exclude a sibling copy of the
	// same send. quiCond is signaled on the transition to zero.
	pending atomic.Int64
	quiMu   sync.Mutex
	quiCond *sync.Cond
}

// NewInMemNetwork creates a network with the given cost model, recording
// metrics into reg (nil allowed).
func NewInMemNetwork(model CostModel, reg *metrics.Registry) *InMemNetwork {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	n := &InMemNetwork{
		model: model,
		reg:   reg,
		clock: vtime.Real(),

		mMsgs:    reg.Counter("net.msgs"),
		mBytes:   reg.Counter("net.bytes"),
		mDropped: reg.Counter("net.dropped"),
		tTime:    reg.Timer("net.time"),
	}
	n.routes.Store(&routeTable{})
	n.quiCond = sync.NewCond(&n.quiMu)
	return n
}

// decPending retires delivered (or rejected) messages from the pending
// count, waking Quiesce waiters when the network drains.
func (n *InMemNetwork) decPending(k int64) {
	if k > 0 && n.pending.Add(-k) == 0 {
		n.quiMu.Lock()
		n.quiCond.Broadcast()
		n.quiMu.Unlock()
	}
}

// Quiesce blocks until every message accepted so far has been fully
// delivered: its modeled delay charged and its handler returned. It is
// the barrier a caller needs before reading a virtual clock — delivery
// runs on per-inbox goroutines, so without it a trailing end-of-job
// broadcast can still be charging receiver lanes after the job's own
// completion signal (itself one copy of that broadcast) was observed.
// Quiesce reports a quiet instant, not a quiet network: messages sent
// after it returns are not covered, so it is only meaningful once the
// workload that generates traffic has finished.
func (n *InMemNetwork) Quiesce() {
	n.quiMu.Lock()
	for n.pending.Load() != 0 {
		n.quiCond.Wait()
	}
	n.quiMu.Unlock()
}

// SetSleep replaces the delay function (tests). It overrides the clock.
func (n *InMemNetwork) SetSleep(fn func(time.Duration)) { n.sleep = fn }

// SetClock routes modeled delivery delays through clk; charges are
// attributed to the receiving node's lane. The default is the real
// clock (plain sleeps).
func (n *InMemNetwork) SetClock(clk vtime.Clock) {
	if clk != nil {
		n.clock = clk
	}
}

// SetFaults installs a fault hook (nil is ignored). Install before
// traffic starts; a hook installed mid-flight applies from the next
// delivery batch.
func (n *InMemNetwork) SetFaults(h FaultHook) {
	if h != nil {
		n.hook.Store(h)
	}
}

// faultHook returns the installed hook, if any.
func (n *InMemNetwork) faultHook() FaultHook {
	h, _ := n.hook.Load().(FaultHook)
	return h
}

// SetDecodeMeter installs the meter charged for decompressing KindBatchZ
// frames at delivery (nil is ignored; decompression itself is
// frame-driven and needs no configuration).
func (n *InMemNetwork) SetDecodeMeter(m *compress.Meter) {
	if m != nil {
		n.decm.Store(m)
	}
}

// SetTrace installs a span recorder for delivery batches (nil is
// ignored). Spans are recorded only for batches with a positive modeled
// delay, so zero-cost fabrics trace nothing and stay schedule-identical.
func (n *InMemNetwork) SetTrace(t *trace.Tracer) {
	if t != nil {
		n.tr.Store(t)
	}
}

// Register implements Network.
func (n *InMemNetwork) Register(node NodeID, h Handler) error {
	n.regMu.Lock()
	defer n.regMu.Unlock()
	if n.closed.Load() {
		return errors.New("transport: register on closed network")
	}
	cur := n.routes.Load()
	if cur.lookup(node) != nil {
		return fmt.Errorf("transport: node %d already registered", node)
	}
	ib := &inbox{id: node, handler: h, done: make(chan struct{})}
	ib.cond = sync.NewCond(&ib.mu)

	var next *routeTable
	if node >= 0 && node < maxDenseNodeID {
		next = cur.clone(int(node) + 1)
		next.dense[node] = ib
	} else {
		next = cur.clone(0)
		if next.sparse == nil {
			next.sparse = make(map[NodeID]*inbox, 1)
		}
		next.sparse[node] = ib
	}
	next.list = append(next.list, ib)
	n.routes.Store(next)
	go n.deliver(ib)
	return nil
}

// Unregister removes a node from the network: queued messages are still
// delivered, then the inbox closes and its delivery goroutine exits.
// Subsequent unicast sends to the node fail; broadcasts skip it (counted
// in net.dropped).
func (n *InMemNetwork) Unregister(node NodeID) error {
	n.regMu.Lock()
	cur := n.routes.Load()
	ib := cur.lookup(node)
	if ib == nil {
		n.regMu.Unlock()
		return fmt.Errorf("transport: unregister unknown node %d", node)
	}
	next := cur.clone(0)
	if node >= 0 && int(node) < len(next.dense) {
		next.dense[node] = nil
	} else if next.sparse != nil {
		delete(next.sparse, node)
	}
	for i, other := range next.list {
		if other == ib {
			next.list = append(next.list[:i], next.list[i+1:]...)
			break
		}
	}
	n.routes.Store(next)
	n.regMu.Unlock()

	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
	<-ib.done
	return nil
}

// deliver drains one node's inbox. The whole pending batch is taken in a
// single critical section; the summed modeled delay of the batch — each
// message priced with the identical per-message formula — is charged with
// one sleep and one net.time observation covering the batch.
func (n *InMemNetwork) deliver(ib *inbox) {
	defer close(ib.done)
	var batch []Message
	for {
		ib.mu.Lock()
		for ib.q.n == 0 && !ib.closed {
			ib.cond.Wait()
		}
		if ib.q.n == 0 { // closed and drained
			ib.mu.Unlock()
			return
		}
		batch = ib.q.drainInto(batch[:0])
		ib.inflight.Store(int64(len(batch)))
		ib.mu.Unlock()

		hook := n.faultHook()
		var total time.Duration
		for i := range batch {
			d := n.model.delay(batch[i].Size)
			if hook != nil {
				// Injected wire faults: each retransmitted or duplicated
				// copy costs one more transfer of the same message, plus
				// any extra injected latency. Delivery still happens
				// exactly once below.
				retrans, dups, extra := hook.DeliveryFault(int(ib.id), batch[i].Size)
				d += time.Duration(retrans+dups)*d + extra
			}
			total += d
		}
		if total > 0 {
			n.tTime.ObserveN(total, int64(len(batch)))
			if t := n.tr.Load(); t != nil {
				ib.deliveries++
				var bytes int64
				for i := range batch {
					bytes += batch[i].Size
				}
				sp := t.Start(int(ib.id), "",
					fmt.Sprintf("net:rx%d:%d", ib.id, ib.deliveries), "deliver", "net")
				if n.sleep != nil {
					n.sleep(total)
				} else {
					n.clock.Charge(int(ib.id), vtime.Net, total)
				}
				sp.EndBytes(bytes)
			} else if n.sleep != nil {
				n.sleep(total)
			} else {
				n.clock.Charge(int(ib.id), vtime.Net, total)
			}
		}
		dm := n.decm.Load()
		for i := range batch {
			dispatch(ib.handler, batch[i], dm)
			batch[i] = Message{} // release payload before the next wait
		}
		ib.inflight.Store(0)
		n.decPending(int64(len(batch)))
	}
}

// Send implements Network. Sends to an unregistered node fail; a unicast
// to a node whose inbox closed mid-flight fails too. Broadcast is
// best-effort (see Broadcast).
func (n *InMemNetwork) Send(msg Message) error {
	if n.closed.Load() {
		return errors.New("transport: send on closed network")
	}
	rt := n.routes.Load()
	if msg.To == Broadcast {
		// Raise pending for every copy before enqueuing any, so a
		// recipient acting on its copy cannot observe a count that
		// misses a sibling copy still waiting in another inbox.
		n.pending.Add(int64(len(rt.list)))
		var delivered int64
		for _, ib := range rt.list {
			if ib.enqueue(msg) {
				delivered++
			} else {
				n.mDropped.Inc()
				n.decPending(1)
			}
		}
		n.mMsgs.Add(delivered)
		n.mBytes.Add(msg.Size * delivered)
		return nil
	}
	ib := rt.lookup(msg.To)
	if ib == nil {
		return fmt.Errorf("transport: unknown node %d", msg.To)
	}
	n.pending.Add(1)
	if !ib.enqueue(msg) {
		n.decPending(1)
		return errors.New("transport: send to closed node")
	}
	n.mMsgs.Inc()
	n.mBytes.Add(msg.Size)
	return nil
}

// QueueDepth returns the number of undelivered messages for a node
// (queued plus drained-but-not-yet-handled); used by tests and by
// flow-control diagnostics. Coalesced batches count as one queued frame,
// matching what the delivery goroutine sees.
func (n *InMemNetwork) QueueDepth(node NodeID) int {
	ib := n.routes.Load().lookup(node)
	if ib == nil {
		return 0
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.q.n + int(ib.inflight.Load())
}

// queueCap reports the inbox ring's backing capacity (tests: the ring must
// not grow without bound under sustained send/drain).
func (n *InMemNetwork) queueCap(node NodeID) int {
	ib := n.routes.Load().lookup(node)
	if ib == nil {
		return 0
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return len(ib.q.buf)
}

// Close implements Network. It waits for all queued messages to be
// delivered.
func (n *InMemNetwork) Close() error {
	n.regMu.Lock()
	if n.closed.Swap(true) {
		n.regMu.Unlock()
		return nil
	}
	rt := n.routes.Load()
	n.regMu.Unlock()
	for _, ib := range rt.list {
		ib.mu.Lock()
		ib.closed = true
		ib.cond.Broadcast()
		ib.mu.Unlock()
		<-ib.done
	}
	return nil
}

var _ Network = (*InMemNetwork)(nil)

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
