package transport

import (
	"sync/atomic"
	"testing"
	"time"
)

// countingHook is a FaultHook that marks every 3rd message dropped (one
// retransmission) and adds a fixed extra delay to every 5th.
type countingHook struct {
	calls atomic.Int64
	extra time.Duration
}

func (h *countingHook) DeliveryFault(node int, size int64) (int, int, time.Duration) {
	n := h.calls.Add(1)
	var retrans int
	var extra time.Duration
	if n%3 == 0 {
		retrans = 1
	}
	if n%5 == 0 {
		extra = h.extra
	}
	return retrans, 0, extra
}

func TestInMemFaultHookChargesWithoutDroppingDelivery(t *testing.T) {
	// Per-message latency 1ms so a retransmission is visible as extra
	// charged (not slept: the sleep function is stubbed) delay.
	n := NewInMemNetwork(CostModel{Latency: time.Millisecond}, nil)
	defer n.Close()
	var charged atomic.Int64
	n.SetSleep(func(d time.Duration) { charged.Add(int64(d)) })
	hook := &countingHook{extra: 10 * time.Millisecond}
	n.SetFaults(hook)

	const total = 30
	var got atomic.Int64
	allIn := make(chan struct{})
	if err := n.Register(1, func(m Message) {
		if got.Add(1) == total {
			close(allIn)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := n.Send(Message{From: 0, To: 1, Kind: "k", Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-allIn:
	case <-time.After(5 * time.Second):
		t.Fatalf("delivered %d of %d messages", got.Load(), total)
	}
	if hook.calls.Load() != total {
		t.Fatalf("hook consulted %d times, want once per message", hook.calls.Load())
	}
	// 30 transfers + 10 retransmissions at 1ms, + 6 extra delays of 10ms.
	want := int64(40*time.Millisecond + 6*10*time.Millisecond)
	if charged.Load() != want {
		t.Fatalf("charged %v, want %v", time.Duration(charged.Load()), time.Duration(want))
	}
}

func TestInMemNilHookIgnored(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	n.SetFaults(nil) // must not install a typed-nil hook
	done := make(chan struct{})
	if err := n.Register(1, func(m Message) { close(done) }); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: 0, To: 1, Kind: "k", Size: 8}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestTCPFaultHookDelaysInboundFrames(t *testing.T) {
	RegisterPayload("")
	n := NewTCPNetwork(map[NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"})
	defer n.Close()
	hook := &countingHook{extra: time.Millisecond}
	n.SetFaults(hook)

	recv := make(chan Message, 4)
	if err := n.Register(0, func(m Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(1, func(m Message) { recv <- m }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := n.Send(Message{From: 0, To: 1, Kind: "k", Payload: "p", Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		select {
		case <-recv:
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d not delivered", i)
		}
	}
	if hook.calls.Load() != 4 {
		t.Fatalf("hook consulted %d times, want 4", hook.calls.Load())
	}
}
