package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/vtime"
)

// wireMessage is the on-the-wire form of Message for the TCP transport.
// Payload types must be registered with RegisterPayload before use.
type wireMessage struct {
	From    NodeID
	To      NodeID
	Kind    string
	Payload any
	Size    int64
}

// RegisterPayload registers a payload type for gob encoding on the TCP
// transport. It must be called (typically from an init function) for every
// concrete payload type sent across TCPNetwork.
func RegisterPayload(v any) { gob.Register(v) }

// ioBufSize is the buffered reader/writer size per connection; large
// enough that a coalesced batch frame of small messages goes out in one
// write syscall.
const ioBufSize = 64 << 10

// writerPool / readerPool recycle the per-connection bufio buffers, so
// short-lived connections (tests, one-shot jobs) don't each pay a 64 KiB
// allocation.
var writerPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, ioBufSize) },
}

var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(bytes.NewReader(nil), ioBufSize) },
}

// TCPNetwork is a Network whose nodes live in (possibly) different
// processes and communicate over TCP. Each node runs a listener;
// connections are established lazily per destination and reused.
//
// Wire format: a stream of frames, each a uvarint byte length followed by
// that many bytes of a persistent per-connection gob stream. Messages are
// gob-encoded into a scratch buffer and framed, so one Send is one
// buffered write plus one flush — a single syscall even for a coalesced
// batch of many small messages — and the receiver can account whole
// frames without decoding them first. Coalesced KindBatch frames are
// unpacked before the handler runs (see dispatch).
//
// TCPNetwork exists to demonstrate the engine over the real network stack;
// the simulated-cluster benchmarks use InMemNetwork.
type TCPNetwork struct {
	mu        sync.Mutex
	addrs     map[NodeID]string
	listeners map[NodeID]net.Listener
	conns     map[connKey]*tcpConn
	handlers  map[NodeID]Handler
	wg        sync.WaitGroup
	closed    bool
	hook      atomic.Value                   // FaultHook, set via SetFaults
	decm      atomic.Pointer[compress.Meter] // decode meter, set via SetDecodeMeter
	clock     atomic.Value                   // vtime.Clock, set via SetClock
}

// SetClock routes injected inbound delays through clk (nil is ignored);
// the default real clock sleeps them. Install before Register.
func (n *TCPNetwork) SetClock(clk vtime.Clock) {
	if clk != nil {
		n.clock.Store(clk)
	}
}

// clk returns the installed clock or the real default.
func (n *TCPNetwork) clk() vtime.Clock {
	if c, ok := n.clock.Load().(vtime.Clock); ok {
		return c
	}
	return vtime.Real()
}

// SetFaults installs a fault hook (nil is ignored) applied to every
// inbound frame: injected extra delay is slept for real — this transport
// has no cost model — while drop/duplicate decisions only tick the
// injector's counters, since TCP itself already retransmits and dedups.
// Install before Register to cover all connections.
func (n *TCPNetwork) SetFaults(h FaultHook) {
	if h != nil {
		n.hook.Store(h)
	}
}

func (n *TCPNetwork) faultHook() FaultHook {
	h, _ := n.hook.Load().(FaultHook)
	return h
}

// SetDecodeMeter installs the meter charged for decompressing inbound
// KindBatchZ frames (nil is ignored).
func (n *TCPNetwork) SetDecodeMeter(m *compress.Meter) {
	if m != nil {
		n.decm.Store(m)
	}
}

type connKey struct {
	from, to NodeID
}

type tcpConn struct {
	mu      sync.Mutex
	c       net.Conn
	bw      *bufio.Writer
	enc     *gob.Encoder // encodes into scratch, never directly to the conn
	scratch bytes.Buffer
	lenBuf  [binary.MaxVarintLen64]byte
}

// send gob-encodes msg into the connection's persistent encoder stream and
// writes it as one length-prefixed frame.
func (tc *tcpConn) send(msg Message) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.scratch.Reset()
	if err := tc.enc.Encode(wireMessage(msg)); err != nil {
		return err
	}
	n := binary.PutUvarint(tc.lenBuf[:], uint64(tc.scratch.Len()))
	if _, err := tc.bw.Write(tc.lenBuf[:n]); err != nil {
		return err
	}
	if _, err := tc.bw.Write(tc.scratch.Bytes()); err != nil {
		return err
	}
	return tc.bw.Flush()
}

// frameReader adapts the framed stream back into the continuous byte
// stream the gob decoder expects, stripping the uvarint length prefixes.
type frameReader struct {
	r         *bufio.Reader
	remaining int64
}

func (f *frameReader) Read(p []byte) (int, error) {
	for f.remaining == 0 {
		n, err := binary.ReadUvarint(f.r)
		if err != nil {
			return 0, err
		}
		f.remaining = int64(n)
	}
	if int64(len(p)) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.r.Read(p)
	f.remaining -= int64(n)
	return n, err
}

// NewTCPNetwork creates a TCP network given the address of every node
// (host:port). Only nodes registered locally (via Register) will listen;
// remote nodes are reached by dialing their address.
func NewTCPNetwork(addrs map[NodeID]string) *TCPNetwork {
	cp := make(map[NodeID]string, len(addrs))
	for id, a := range addrs {
		cp[id] = a
	}
	return &TCPNetwork{
		addrs:     cp,
		listeners: make(map[NodeID]net.Listener),
		conns:     make(map[connKey]*tcpConn),
		handlers:  make(map[NodeID]Handler),
	}
}

// Register implements Network: it starts a listener on the node's address
// and serves inbound messages to the handler.
func (n *TCPNetwork) Register(node NodeID, h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("transport: register on closed network")
	}
	addr, ok := n.addrs[node]
	if !ok {
		return fmt.Errorf("transport: no address for node %d", node)
	}
	if _, dup := n.handlers[node]; dup {
		return fmt.Errorf("transport: node %d already registered", node)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	// The listener may have been given port 0; record the concrete address
	// so other local nodes can dial it.
	n.addrs[node] = ln.Addr().String()
	n.listeners[node] = ln
	n.handlers[node] = h
	n.wg.Add(1)
	go n.serve(ln, h, node)
	return nil
}

// Addr returns the concrete listen address for a registered node.
func (n *TCPNetwork) Addr(node NodeID) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addrs[node]
}

func (n *TCPNetwork) serve(ln net.Listener, h Handler, node NodeID) {
	defer n.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer c.Close()
			br := readerPool.Get().(*bufio.Reader)
			br.Reset(c)
			defer func() {
				br.Reset(bytes.NewReader(nil))
				readerPool.Put(br)
			}()
			dec := gob.NewDecoder(&frameReader{r: br})
			for {
				var wm wireMessage
				if err := dec.Decode(&wm); err != nil {
					return
				}
				if hook := n.faultHook(); hook != nil {
					if _, _, extra := hook.DeliveryFault(int(node), wm.Size); extra > 0 {
						n.clk().Charge(int(node), vtime.Fault, extra)
					}
				}
				dispatch(h, Message(wm), n.decm.Load())
			}
		}()
	}
}

func (n *TCPNetwork) conn(from, to NodeID) (*tcpConn, error) {
	key := connKey{from, to}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errors.New("transport: send on closed network")
	}
	if tc, ok := n.conns[key]; ok {
		n.mu.Unlock()
		return tc, nil
	}
	addr, ok := n.addrs[to]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: no address for node %d", to)
	}
	n.mu.Unlock()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %d at %s: %w", to, addr, err)
	}
	tc := &tcpConn{c: c}
	tc.bw = writerPool.Get().(*bufio.Writer)
	tc.bw.Reset(c)
	tc.enc = gob.NewEncoder(&tc.scratch)
	n.mu.Lock()
	if existing, ok := n.conns[key]; ok {
		n.mu.Unlock()
		c.Close()
		tc.bw.Reset(io.Discard)
		writerPool.Put(tc.bw)
		return existing, nil
	}
	n.conns[key] = tc
	n.mu.Unlock()
	return tc, nil
}

// Send implements Network. Broadcast expands to a unicast per known node.
func (n *TCPNetwork) Send(msg Message) error {
	if msg.To == Broadcast {
		n.mu.Lock()
		ids := make([]NodeID, 0, len(n.addrs))
		for id := range n.addrs {
			ids = append(ids, id)
		}
		n.mu.Unlock()
		for _, id := range ids {
			m := msg
			m.To = id
			if err := n.Send(m); err != nil {
				return err
			}
		}
		return nil
	}
	tc, err := n.conn(msg.From, msg.To)
	if err != nil {
		return err
	}
	if err := tc.send(msg); err != nil {
		return fmt.Errorf("transport: encode to node %d: %w", msg.To, err)
	}
	return nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for _, ln := range n.listeners {
		ln.Close()
	}
	conns := make([]*tcpConn, 0, len(n.conns))
	for _, tc := range n.conns {
		conns = append(conns, tc)
	}
	n.mu.Unlock()
	for _, tc := range conns {
		tc.c.Close()
		// Best-effort buffer recycling: skip any connection with a Send
		// still in flight rather than racing it for the writer.
		if tc.mu.TryLock() {
			tc.bw.Reset(io.Discard)
			writerPool.Put(tc.bw)
			tc.bw = bufio.NewWriterSize(io.Discard, 0)
			tc.mu.Unlock()
		}
	}
	n.wg.Wait()
	return nil
}

var _ Network = (*TCPNetwork)(nil)
