package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
)

func TestInMemDelivery(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	var got atomic.Int64
	done := make(chan Message, 1)
	if err := n.Register(0, func(m Message) {
		got.Add(1)
		done <- m
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: 1, To: 0, Kind: "x", Payload: "hello", Size: 5}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-done:
		if m.Payload.(string) != "hello" || m.From != 1 {
			t.Fatalf("delivered %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestInMemUnknownNode(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	if err := n.Send(Message{From: 0, To: 42}); err == nil {
		t.Fatal("send to unregistered node succeeded")
	}
}

func TestInMemDuplicateRegister(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	h := func(Message) {}
	if err := n.Register(0, h); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(0, h); err == nil {
		t.Fatal("duplicate register succeeded")
	}
}

func TestInMemFIFOPerReceiver(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	var mu sync.Mutex
	var order []int
	doneCh := make(chan struct{})
	n.Register(0, func(m Message) {
		mu.Lock()
		order = append(order, m.Payload.(int))
		if len(order) == 100 {
			close(doneCh)
		}
		mu.Unlock()
	})
	for i := 0; i < 100; i++ {
		if err := n.Send(Message{From: 1, To: 0, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("not all messages delivered")
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("message %d delivered out of order (got %d)", i, v)
		}
	}
}

func TestInMemBroadcast(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	const nodes = 5
	var wg sync.WaitGroup
	wg.Add(nodes)
	counts := make([]atomic.Int64, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		n.Register(NodeID(i), func(m Message) {
			counts[i].Add(1)
			wg.Done()
		})
	}
	if err := n.Send(Message{From: 0, To: Broadcast, Kind: "b"}); err != nil {
		t.Fatal(err)
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast incomplete")
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Errorf("node %d received %d copies", i, counts[i].Load())
		}
	}
}

func TestInMemCloseWaitsForQueue(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	var delivered atomic.Int64
	// The gate holds the first delivery inside the handler so Close
	// provably has pending work to wait for, instead of slowing the
	// handler with a sleep and hoping Close races in before the drain.
	gate := make(chan struct{})
	entered := make(chan struct{}, 20)
	n.Register(0, func(Message) {
		entered <- struct{}{}
		<-gate
		delivered.Add(1)
	})
	for i := 0; i < 20; i++ {
		n.Send(Message{From: 1, To: 0})
	}
	<-entered // a delivery is blocked in the handler
	closed := make(chan struct{})
	go func() { n.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned with deliveries still pending")
	default:
	}
	close(gate)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never finished draining the queue")
	}
	if delivered.Load() != 20 {
		t.Fatalf("Close returned with %d/20 delivered", delivered.Load())
	}
	if err := n.Send(Message{From: 1, To: 0}); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestInMemCostModelCharges(t *testing.T) {
	reg := metrics.NewRegistry()
	n := NewInMemNetwork(CostModel{Latency: time.Millisecond, BytesPerSec: 1 << 20}, reg)
	var charged atomic.Int64
	n.SetSleep(func(d time.Duration) { charged.Add(int64(d)) })
	done := make(chan struct{})
	n.Register(0, func(Message) { close(done) })
	n.Send(Message{From: 1, To: 0, Size: 1 << 20})
	<-done
	n.Close()
	if got := time.Duration(charged.Load()); got < time.Second {
		t.Errorf("charged %v for 1MiB at 1MiB/s + 1ms, want >= ~1s", got)
	}
	if reg.Counter("net.bytes").Value() != 1<<20 {
		t.Errorf("net.bytes = %d", reg.Counter("net.bytes").Value())
	}
}

func TestInMemQueueDepth(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	block := make(chan struct{})
	entered := make(chan struct{}, 5)
	n.Register(0, func(Message) {
		entered <- struct{}{}
		<-block
	})
	for i := 0; i < 5; i++ {
		n.Send(Message{From: 1, To: 0})
	}
	// Once the first delivery is blocked in the handler nothing else can
	// complete, and QueueDepth counts queued plus drained-but-unhandled
	// messages — so the depth is exactly the five undelivered sends.
	<-entered
	if d := n.QueueDepth(0); d != 5 {
		t.Errorf("QueueDepth = %d, want 5", d)
	}
	close(block)
}

func TestTCPNetworkRoundTrip(t *testing.T) {
	RegisterPayload("")
	addrs := map[NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	n := NewTCPNetwork(addrs)
	defer n.Close()

	got := make(chan Message, 10)
	if err := n.Register(0, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(1, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: 0, To: 1, Kind: "ping", Payload: "over tcp", Size: 8}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Kind != "ping" || m.Payload.(string) != "over tcp" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tcp message not delivered")
	}

	// Reply over the reverse connection.
	if err := n.Send(Message{From: 1, To: 0, Kind: "pong", Payload: "back"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Kind != "pong" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tcp reply not delivered")
	}
}

func TestTCPBroadcast(t *testing.T) {
	RegisterPayload("")
	addrs := map[NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	n := NewTCPNetwork(addrs)
	defer n.Close()
	var wg sync.WaitGroup
	wg.Add(3)
	for i := 0; i < 3; i++ {
		if err := n.Register(NodeID(i), func(m Message) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Send(Message{From: 0, To: Broadcast, Kind: "b", Payload: "x"}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tcp broadcast incomplete")
	}
}

func TestTCPUnknownNode(t *testing.T) {
	n := NewTCPNetwork(map[NodeID]string{0: "127.0.0.1:0"})
	defer n.Close()
	n.Register(0, func(Message) {})
	if err := n.Send(Message{From: 0, To: 9}); err == nil {
		t.Fatal("send to unknown tcp node succeeded")
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	type payload struct{ N int }
	RegisterPayload(payload{})
	addrs := map[NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	n := NewTCPNetwork(addrs)
	defer n.Close()
	var sum atomic.Int64
	var count atomic.Int64
	done := make(chan struct{})
	n.Register(0, func(m Message) {
		sum.Add(int64(m.Payload.(payload).N))
		if count.Add(1) == 200 {
			close(done)
		}
	})
	n.Register(1, func(Message) {})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := n.Send(Message{From: 1, To: 0, Payload: payload{N: 1}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/200 messages arrived", count.Load())
	}
	if sum.Load() != 200 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestCostModelPresets(t *testing.T) {
	for name, m := range map[string]CostModel{
		"FDR": FDRInfiniBand(), "GbE": GigabitEthernet(),
	} {
		if m.BytesPerSec <= 0 || m.Latency <= 0 {
			t.Errorf("%s preset incomplete: %+v", name, m)
		}
	}
	if FDRInfiniBand().BytesPerSec <= GigabitEthernet().BytesPerSec {
		t.Error("InfiniBand should be faster than GbE")
	}
}
