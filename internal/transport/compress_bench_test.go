package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/metrics"
)

// benchShuffleCompress pushes b.N word-shaped shuffle messages through a
// coalescer (compressed or not) and reports the wire bytes the fabric
// charged, so the benchmark shows the CPU cost and the byte saving of
// KindBatchZ side by side. See EXPERIMENTS.md "Compression
// microbenchmarks".
func benchShuffleCompress(b *testing.B, cc compress.Config) {
	reg := metrics.NewRegistry()
	inner := NewInMemNetwork(CostModel{}, reg)
	if cc.Enabled() {
		inner.SetDecodeMeter(&compress.Meter{})
	}
	co := NewCoalescer(inner, CoalescerConfig{
		MaxBytes: 16 << 10, MaxMsgs: 64, MaxAge: 500 * time.Microsecond, Compress: cc,
	})
	var delivered atomic.Int64
	done := make(chan struct{})
	target := int64(b.N)
	if err := co.Register(0, func(Message) {
		if delivered.Add(1) == target {
			close(done)
		}
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := co.Send(shuffleMsg(i, 0)); err != nil {
			b.Fatal(err)
		}
	}
	if err := co.Flush(); err != nil {
		b.Fatal(err)
	}
	<-done
	b.StopTimer()
	if n := b.N; n > 0 {
		b.ReportMetric(float64(reg.Counter("net.bytes").Value())/float64(n), "wire-B/msg")
	}
	co.Close()
	inner.Close()
}

func BenchmarkShuffleCompressed(b *testing.B) {
	b.Run("lz", func(b *testing.B) {
		benchShuffleCompress(b, compress.Config{Codec: compress.LZ{}, MinBytes: 64})
	})
	b.Run("flate", func(b *testing.B) {
		benchShuffleCompress(b, compress.Config{Codec: compress.Flate{}, MinBytes: 64})
	})
	b.Run("off", func(b *testing.B) {
		benchShuffleCompress(b, compress.Config{})
	})
}
