package transport

import (
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/metrics"
)

// shufflePayload mimics a shuffle bin: a compressible word payload.
type shufflePayload struct {
	Words []string
}

func init() { gob.Register(&shufflePayload{}) }

func shuffleMsg(i int, to NodeID) Message {
	words := make([]string, 12)
	for j := range words {
		words[j] = fmt.Sprintf("word-%03d", (i+j)%50)
	}
	return Message{From: 1, To: to, Kind: "kv", Payload: &shufflePayload{Words: words}, Size: 12 * 9}
}

// TestCoalescerCompression: with a codec enabled, batches arrive intact
// and in order while net.bytes (charged on wire frames) drops below the
// raw modeled total.
func TestCoalescerCompression(t *testing.T) {
	reg := metrics.NewRegistry()
	n := NewInMemNetwork(CostModel{}, reg)
	defer n.Close()
	n.SetDecodeMeter(&compress.Meter{})
	meter := &compress.Meter{
		In:      reg.Counter("compress.in.bytes"),
		Out:     reg.Counter("compress.out.bytes"),
		Skipped: reg.Counter("compress.skipped"),
		SiteOut: reg.Counter("net.compressed.bytes"),
	}
	co := NewCoalescer(n, CoalescerConfig{
		MaxBytes: 4 << 10, MaxMsgs: 16, MaxAge: time.Hour,
		Compress: compress.Config{Codec: compress.LZ{}, MinBytes: 64, Meter: meter},
	})
	defer co.Close()

	const msgs = 200
	var got []Message
	var mu sync.Mutex
	allIn := make(chan struct{})
	if err := co.Register(0, func(m Message) {
		mu.Lock()
		got = append(got, m)
		if len(got) == msgs {
			close(allIn)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	var raw int64
	for i := 0; i < msgs; i++ {
		m := shuffleMsg(i, 0)
		raw += m.Size
		if err := co.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := co.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-allIn:
	case <-time.After(5 * time.Second):
		t.Fatal("compressed stream never fully delivered")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != msgs {
		t.Fatalf("handler saw %d messages, want %d", len(got), msgs)
	}
	for i, m := range got {
		want := shuffleMsg(i, 0)
		p, ok := m.Payload.(*shufflePayload)
		if !ok {
			t.Fatalf("message %d payload type %T", i, m.Payload)
		}
		for j, w := range p.Words {
			if w != want.Payload.(*shufflePayload).Words[j] {
				t.Fatalf("message %d word %d = %q", i, j, w)
			}
		}
	}
	wire := reg.Counter("net.bytes").Value()
	if wire >= raw {
		t.Fatalf("net.bytes = %d with compression, raw total %d: no reduction", wire, raw)
	}
	if out := reg.Counter("net.compressed.bytes").Value(); out == 0 || out > wire {
		t.Fatalf("net.compressed.bytes = %d (wire %d)", out, wire)
	}
	if in := reg.Counter("compress.in.bytes").Value(); in == 0 {
		t.Fatal("compress.in.bytes not counted")
	}
	t.Logf("raw %d -> wire %d (%.2fx), skipped %d", raw, wire,
		float64(raw)/float64(wire), reg.Counter("compress.skipped").Value())
}

// TestCoalescerCompressedFlushThreshold is the satellite fix: with
// compression on, a batch whose estimated wire size is under MaxBytes
// keeps coalescing past the raw threshold instead of flushing early, so
// fewer (larger) frames hit the network for the same traffic.
func TestCoalescerCompressedFlushThreshold(t *testing.T) {
	run := func(cc compress.Config) int64 {
		reg := metrics.NewRegistry()
		n := NewInMemNetwork(CostModel{}, reg)
		defer n.Close()
		co := NewCoalescer(n, CoalescerConfig{
			MaxBytes: 2 << 10, MaxMsgs: 1 << 20, MaxAge: time.Hour, Compress: cc,
		})
		defer co.Close()
		const msgs = 400
		var seen atomic.Int64
		allIn := make(chan struct{})
		if err := co.Register(0, func(Message) {
			if seen.Add(1) == msgs {
				close(allIn)
			}
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < msgs; i++ {
			if err := co.Send(shuffleMsg(i, 0)); err != nil {
				t.Fatal(err)
			}
		}
		if err := co.Flush(); err != nil {
			t.Fatal(err)
		}
		select {
		case <-allIn:
		case <-time.After(5 * time.Second):
			t.Fatal("coalesced frames never fully delivered")
		}
		return reg.Counter("net.msgs").Value()
	}

	plain := run(compress.Config{})
	compressed := run(compress.Config{Codec: compress.LZ{}, MinBytes: 64})
	if compressed >= plain {
		t.Fatalf("compressed run sent %d frames, plain %d: post-compression threshold not in effect", compressed, plain)
	}
	t.Logf("frames: plain %d, compressed %d", plain, compressed)
}

// TestCoalescerCompressionRawCap: even if data compresses extremely well,
// buffered raw bytes must stay bounded by rawCapFactor×MaxBytes.
func TestCoalescerCompressionRawCap(t *testing.T) {
	reg := metrics.NewRegistry()
	n := NewInMemNetwork(CostModel{}, reg)
	defer n.Close()
	const maxBytes = 1 << 10
	co := NewCoalescer(n, CoalescerConfig{
		MaxBytes: maxBytes, MaxMsgs: 1 << 20, MaxAge: time.Hour,
		Compress: compress.Config{Codec: compress.LZ{}, MinBytes: 1},
	})
	defer co.Close()
	if err := co.Register(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	// All-identical payloads compress to nearly nothing; without the cap
	// the buffer would grow until Flush.
	for i := 0; i < 10000; i++ {
		if err := co.Send(Message{From: 1, To: 0, Kind: "kv",
			Payload: &shufflePayload{Words: []string{"same", "same"}}, Size: 64}); err != nil {
			t.Fatal(err)
		}
		d := co.dest(0)
		d.mu.Lock()
		buffered := d.bytes
		d.mu.Unlock()
		if buffered > rawCapFactor*maxBytes {
			t.Fatalf("buffered %d raw bytes, cap %d", buffered, rawCapFactor*maxBytes)
		}
	}
	if err := co.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPCompressedBatch: a KindBatchZ frame crosses the real TCP
// transport and unpacks into the original messages.
func TestTCPCompressedBatch(t *testing.T) {
	net := NewTCPNetwork(map[NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"})
	defer net.Close()
	net.SetDecodeMeter(&compress.Meter{})

	var got []Message
	var mu sync.Mutex
	done := make(chan struct{})
	if err := net.Register(0, func(m Message) {
		mu.Lock()
		got = append(got, m)
		if len(got) == 50 {
			close(done)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Register(1, func(Message) {}); err != nil {
		t.Fatal(err)
	}

	co := NewCoalescer(net, CoalescerConfig{
		MaxBytes: 64 << 10, MaxMsgs: 50, MaxAge: time.Hour,
		Compress: compress.Config{Codec: compress.LZ{}, MinBytes: 64},
	})
	defer co.Close()
	for i := 0; i < 50; i++ {
		if err := co.Send(shuffleMsg(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("timeout: %d of 50 messages arrived", len(got))
	}
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		p, ok := m.Payload.(*shufflePayload)
		if !ok || p.Words[0] != fmt.Sprintf("word-%03d", i%50) {
			t.Fatalf("message %d corrupted: %T %+v", i, m.Payload, m.Payload)
		}
	}
}
