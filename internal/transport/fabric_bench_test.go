package transport

// Before/after microbenchmarks for the fabric rebuild. As with
// internal/core/hotpath_bench_test.go, the pre-optimization implementation
// is kept in-tree (legacyInMemNetwork below, verbatim from the original
// transport.go modulo renames) so a single `go test -bench` run measures
// both sides on the same host:
//
//	BenchmarkNetSendPath          — lock-free snapshot routing + ring inbox
//	BenchmarkNetSendPathBaseline  — global mutex + map + queue[1:] slice
//	BenchmarkCoalescedShuffle     — small messages through a Coalescer
//	BenchmarkCoalescedShuffleDirect — the same messages sent one frame each
//
// The send-path benchmarks exercise exactly the per-message work the
// jobNode's shuffle does: a unicast Send with a modeled size, zero-cost
// model (the modeled sleep is identical on both sides and would drown the
// engineering difference being measured).

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
)

// ---------------------------------------------------------------------------
// legacy implementation (pre-optimization), kept for baseline benchmarks

type legacyInbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Message
	closed  bool
	handler Handler
	done    chan struct{}
}

type legacyInMemNetwork struct {
	mu     sync.Mutex
	nodes  map[NodeID]*legacyInbox
	model  CostModel
	reg    *metrics.Registry
	sleep  func(time.Duration)
	closed bool
}

func newLegacyInMemNetwork(model CostModel, reg *metrics.Registry) *legacyInMemNetwork {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &legacyInMemNetwork{
		nodes: make(map[NodeID]*legacyInbox),
		model: model,
		reg:   reg,
		sleep: time.Sleep,
	}
}

func (n *legacyInMemNetwork) Register(node NodeID, h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("transport: register on closed network")
	}
	if _, dup := n.nodes[node]; dup {
		return fmt.Errorf("transport: node %d already registered", node)
	}
	ib := &legacyInbox{handler: h, done: make(chan struct{})}
	ib.cond = sync.NewCond(&ib.mu)
	n.nodes[node] = ib
	go n.deliver(ib)
	return nil
}

func (n *legacyInMemNetwork) deliver(ib *legacyInbox) {
	defer close(ib.done)
	for {
		ib.mu.Lock()
		for len(ib.queue) == 0 && !ib.closed {
			ib.cond.Wait()
		}
		if len(ib.queue) == 0 && ib.closed {
			ib.mu.Unlock()
			return
		}
		msg := ib.queue[0]
		ib.queue = ib.queue[1:]
		ib.mu.Unlock()

		if d := n.model.delay(msg.Size); d > 0 {
			n.reg.Observe("net.time", d)
			n.sleep(d)
		}
		ib.handler(msg)
	}
}

func (n *legacyInMemNetwork) Send(msg Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("transport: send on closed network")
	}
	var targets []*legacyInbox
	if msg.To == Broadcast {
		targets = make([]*legacyInbox, 0, len(n.nodes))
		for _, ib := range n.nodes {
			targets = append(targets, ib)
		}
	} else {
		ib, ok := n.nodes[msg.To]
		if !ok {
			n.mu.Unlock()
			return fmt.Errorf("transport: unknown node %d", msg.To)
		}
		targets = []*legacyInbox{ib}
	}
	n.mu.Unlock()

	n.reg.Add("net.msgs", int64(len(targets)))
	n.reg.Add("net.bytes", msg.Size*int64(len(targets)))
	for _, ib := range targets {
		ib.mu.Lock()
		if ib.closed {
			ib.mu.Unlock()
			return errors.New("transport: send to closed node")
		}
		ib.queue = append(ib.queue, msg)
		ib.cond.Signal()
		ib.mu.Unlock()
	}
	return nil
}

func (n *legacyInMemNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	nodes := n.nodes
	n.mu.Unlock()
	for _, ib := range nodes {
		ib.mu.Lock()
		ib.closed = true
		ib.cond.Broadcast()
		ib.mu.Unlock()
		<-ib.done
	}
	return nil
}

var _ Network = (*legacyInMemNetwork)(nil)

// ---------------------------------------------------------------------------
// send path

const benchNodes = 8

func benchSendPath(b *testing.B, net Network) {
	var delivered atomic.Int64
	for i := 0; i < benchNodes; i++ {
		if err := net.Register(NodeID(i), func(Message) { delivered.Add(1) }); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := net.Send(Message{From: 0, To: NodeID(i % benchNodes), Kind: "kv", Size: 16}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	if err := net.Close(); err != nil { // waits for queued deliveries
		b.Fatal(err)
	}
	if delivered.Load() != int64(b.N) {
		b.Fatalf("delivered %d of %d", delivered.Load(), b.N)
	}
}

func BenchmarkNetSendPath(b *testing.B) {
	benchSendPath(b, NewInMemNetwork(CostModel{}, nil))
}

func BenchmarkNetSendPathBaseline(b *testing.B) {
	benchSendPath(b, newLegacyInMemNetwork(CostModel{}, nil))
}

// ---------------------------------------------------------------------------
// coalesced shuffle

// benchShuffleFanout measures end-to-end delivery of b.N small messages
// fanned out over benchNodes destinations — the ack/small-bin traffic
// shape of the flowlet shuffle.
func benchShuffleFanout(b *testing.B, coalesce bool) {
	inner := NewInMemNetwork(CostModel{}, nil)
	var net Network = inner
	var co *Coalescer
	if coalesce {
		co = NewCoalescer(inner, CoalescerConfig{MaxBytes: 16 << 10, MaxMsgs: 32, MaxAge: 500 * time.Microsecond})
		net = co
	}
	var delivered atomic.Int64
	done := make(chan struct{})
	target := int64(b.N)
	for i := 0; i < benchNodes; i++ {
		if err := net.Register(NodeID(i), func(Message) {
			if delivered.Add(1) == target {
				close(done)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Send(Message{From: 0, To: NodeID(i % benchNodes), Kind: "ack", Size: 16}); err != nil {
			b.Fatal(err)
		}
	}
	if co != nil {
		if err := co.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	<-done
	b.StopTimer()
	if co != nil {
		co.Close()
	}
	inner.Close()
}

func BenchmarkCoalescedShuffle(b *testing.B) {
	benchShuffleFanout(b, true)
}

func BenchmarkCoalescedShuffleDirect(b *testing.B) {
	benchShuffleFanout(b, false)
}
