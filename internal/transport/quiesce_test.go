package transport

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestQuiesceIdleReturnsImmediately: an empty network is already quiet.
func TestQuiesceIdleReturnsImmediately(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	done := make(chan struct{})
	go func() { n.Quiesce(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce blocked on an idle network")
	}
}

// TestQuiesceWaitsForDelivery: Quiesce returns only after every accepted
// message — unicast and broadcast copies alike — has been handed to its
// handler, even when delivery is slowed by a modeled delay.
func TestQuiesceWaitsForDelivery(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	n.SetSleep(func(time.Duration) { time.Sleep(2 * time.Millisecond) })

	const nodes = 3
	var handled atomic.Int64
	for i := 0; i < nodes; i++ {
		if err := n.Register(NodeID(i), func(Message) { handled.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	const unicasts = 20
	for i := 0; i < unicasts; i++ {
		if err := n.Send(Message{From: 0, To: NodeID(i % nodes), Kind: "x", Size: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Send(Message{From: 0, To: Broadcast, Kind: "x", Size: 64}); err != nil {
		t.Fatal(err)
	}
	n.Quiesce()
	if got := handled.Load(); got != unicasts+nodes {
		t.Fatalf("handled %d messages after Quiesce, want %d", got, unicasts+nodes)
	}
}

// TestQuiesceAfterRejectedSend: a send to an unregistering node must not
// strand the pending count and hang later Quiesce calls.
func TestQuiesceAfterRejectedSend(t *testing.T) {
	n := NewInMemNetwork(CostModel{}, nil)
	defer n.Close()
	if err := n.Register(0, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.Unregister(0); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: 1, To: 0, Kind: "x"}); err == nil {
		t.Fatal("send to unregistered node succeeded")
	}
	done := make(chan struct{})
	go func() { n.Quiesce(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce hung after a rejected send")
	}
}
