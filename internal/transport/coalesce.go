package transport

import (
	"bytes"
	"encoding/gob"
	"sync"
	"time"

	"fmt"

	"github.com/hamr-go/hamr/internal/compress"
	"github.com/hamr-go/hamr/internal/trace"
	"github.com/hamr-go/hamr/internal/vtime"
)

// KindBatch marks a coalesced frame carrying several application messages
// to one destination. Both Network implementations unpack batch frames
// (see dispatch) before invoking the destination handler, so receivers
// never observe the framing.
const KindBatch = "transport.batch"

// KindBatchZ marks a compressed coalesced frame: the payload is one
// compress frame wrapping the gob encoding of a BatchPayload. The
// message's modeled Size is the wire frame length, so net.bytes and the
// delivery delay are charged on the bytes that would actually cross the
// fabric. Both Network implementations decompress in dispatch.
const KindBatchZ = "transport.batchz"

// BatchPayload is the payload of a KindBatch frame: the coalesced
// messages, in send order.
type BatchPayload struct {
	Msgs []Message
}

// BatchZPayload is the payload of a KindBatchZ frame.
type BatchZPayload struct {
	Frame []byte
}

func init() {
	gob.Register(&BatchPayload{})
	gob.Register(&BatchZPayload{})
}

// CoalescerConfig bounds how long and how large a pending batch may grow.
type CoalescerConfig struct {
	// MaxBytes flushes a destination once its pending modeled bytes reach
	// this threshold; messages at least this large bypass coalescing
	// entirely (after flushing what's queued ahead of them, preserving
	// per-destination order).
	MaxBytes int64
	// MaxMsgs flushes a destination once this many messages are pending.
	MaxMsgs int
	// MaxAge bounds how long a pending message may wait before a
	// background flush pushes it out; this caps the latency added to
	// credit acks and stragglers.
	MaxAge time.Duration
	// Compress, when enabled, gob-encodes each batch and compresses it
	// into one KindBatchZ frame, provided the modeled batch bytes reach
	// Compress.MinBytes AND the wire frame beats the raw modeled size —
	// otherwise the plain KindBatch goes out (counted as skipped), so
	// net.bytes can only shrink. With compression on, the MaxBytes flush
	// threshold tracks the estimated post-compression frame size (an EWMA
	// of the achieved ratio per destination), bounded by a hard raw-byte
	// cap so memory stays bounded when data stops compressing.
	Compress compress.Config
	// Clock supplies the MaxAge timer (nil = real clock). Both clock
	// implementations schedule it on wall time: the age flush is
	// liveness pacing for batching — it must keep firing when a virtual
	// clock has removed every modeled sleep — not a modeled cost.
	Clock vtime.Clock
	// Trace, if non-nil, records an instant event per multi-message batch
	// flush (single-message pass-throughs are not flushes and trace
	// nothing, so uncoalesced traffic stays event-free).
	Trace *trace.Tracer
}

// DefaultCoalescerConfig matches the runtime defaults: one batch per
// flow-control window of acks (32), 16 KiB of small bin flushes, and a
// half-millisecond age bound.
func DefaultCoalescerConfig() CoalescerConfig {
	return CoalescerConfig{MaxBytes: 16 << 10, MaxMsgs: 32, MaxAge: 500 * time.Microsecond}
}

func (c *CoalescerConfig) fillDefaults() {
	d := DefaultCoalescerConfig()
	if c.MaxBytes <= 0 {
		c.MaxBytes = d.MaxBytes
	}
	if c.MaxMsgs <= 0 {
		c.MaxMsgs = d.MaxMsgs
	}
	if c.MaxAge <= 0 {
		c.MaxAge = d.MaxAge
	}
	if c.Clock == nil {
		c.Clock = vtime.Real()
	}
}

// destBuffer holds the pending messages for one destination.
//
// sendMu serializes every send toward the destination (batch frames and
// pass-throughs alike); the pending batch is only taken while holding it,
// so once any Flush/flush path returns, every message that was pending at
// entry has been handed to the wrapped network — nothing can land on the
// wire after a later message sent under the same sendMu. That is the
// ordering barrier seal/complete broadcasts rely on.
type destBuffer struct {
	sendMu sync.Mutex // serializes sends to this destination
	mu     sync.Mutex // guards msgs/bytes/ratio
	msgs   []Message
	bytes  int64
	// ratio is the EWMA of achieved wire-frame/raw-bytes per compressed
	// flush toward this destination; 0 = no sample yet (treated as 1).
	ratio float64
}

// estRatio returns the flush-threshold compression estimate. Caller
// holds d.mu.
func (d *destBuffer) estRatio() float64 {
	if d.ratio <= 0 || d.ratio > 1 {
		return 1
	}
	return d.ratio
}

// observeRatio folds one flush's achieved ratio into the EWMA. Caller
// must NOT hold d.mu.
func (d *destBuffer) observeRatio(r float64) {
	d.mu.Lock()
	if d.ratio <= 0 {
		d.ratio = r
	} else {
		d.ratio = 0.75*d.ratio + 0.25*r
	}
	d.mu.Unlock()
}

// rawCapFactor bounds how many raw bytes may accumulate while the
// estimated compressed size stays under MaxBytes: even at a wildly
// optimistic ratio estimate, a destination buffer never holds more than
// rawCapFactor×MaxBytes of raw payload.
const rawCapFactor = 8

// Coalescer wraps a Network and aggregates small same-destination
// messages into single KindBatch frames under size/count/age thresholds.
// The batch frame's modeled Size is the sum of the inner message sizes,
// so net.bytes totals are unchanged by coalescing; only the message
// (frame) count drops, reflecting real wire framing.
//
// Coalescer itself implements Network. Close flushes all pending messages
// and stops the age timer but does NOT close the wrapped network (the
// caller owns it).
type Coalescer struct {
	net Network
	cfg CoalescerConfig

	mu    sync.RWMutex // guards dests
	dests map[NodeID]*destBuffer

	// flushes numbers traced batch flushes; shared across destinations,
	// so it needs its own mutex rather than riding a destBuffer's sendMu.
	flushMu sync.Mutex
	flushes int64

	timerMu sync.Mutex
	timer   *time.Timer
	armed   bool
	closed  bool
}

// NewCoalescer wraps net with a coalescing send path. Zero config fields
// take the defaults from DefaultCoalescerConfig.
func NewCoalescer(net Network, cfg CoalescerConfig) *Coalescer {
	cfg.fillDefaults()
	return &Coalescer{net: net, cfg: cfg, dests: make(map[NodeID]*destBuffer)}
}

// Register passes through to the wrapped network.
func (c *Coalescer) Register(node NodeID, h Handler) error { return c.net.Register(node, h) }

func (c *Coalescer) dest(id NodeID) *destBuffer {
	c.mu.RLock()
	d := c.dests[id]
	c.mu.RUnlock()
	if d != nil {
		return d
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d = c.dests[id]; d == nil {
		d = &destBuffer{}
		c.dests[id] = d
	}
	return d
}

// Send implements Network. Broadcasts and large messages flush the
// pending traffic ordered ahead of them, then pass straight through;
// small unicasts are buffered until a size, count, or age threshold
// flushes the destination.
func (c *Coalescer) Send(msg Message) error {
	if msg.To == Broadcast {
		// Flush every destination first so each receiver sees this
		// sender's earlier unicasts (e.g. its bins) before the broadcast
		// (e.g. its completion marker).
		if err := c.Flush(); err != nil {
			return err
		}
		return c.net.Send(msg)
	}
	d := c.dest(msg.To)
	if msg.Size >= c.cfg.MaxBytes {
		// Too big to benefit from framing: take sendMu, push out what's
		// queued ahead, then pass the message through under the same lock
		// so nothing reorders around it.
		d.sendMu.Lock()
		defer d.sendMu.Unlock()
		if err := c.sendPendingLocked(d, msg.To); err != nil {
			return err
		}
		return c.net.Send(msg)
	}

	d.mu.Lock()
	d.msgs = append(d.msgs, msg)
	d.bytes += msg.Size
	var full bool
	if c.cfg.Compress.Enabled() {
		// Satellite fix: a compressed batch under MaxBytes on the wire
		// should keep coalescing rather than flush early on raw size. The
		// post-compression size is estimated from this destination's
		// achieved ratio; the raw cap bounds buffered memory regardless.
		est := int64(float64(d.bytes) * d.estRatio())
		full = len(d.msgs) >= c.cfg.MaxMsgs || est >= c.cfg.MaxBytes ||
			d.bytes >= rawCapFactor*c.cfg.MaxBytes
	} else {
		full = len(d.msgs) >= c.cfg.MaxMsgs || d.bytes >= c.cfg.MaxBytes
	}
	d.mu.Unlock()

	if full {
		return c.flushDest(d, msg.To)
	}
	c.arm()
	return nil
}

// sendPendingLocked takes the pending batch and hands it to the wrapped
// network. Caller holds d.sendMu.
func (c *Coalescer) sendPendingLocked(d *destBuffer, to NodeID) error {
	d.mu.Lock()
	msgs := d.msgs
	bytes := d.bytes
	d.msgs = nil
	d.bytes = 0
	d.mu.Unlock()
	switch len(msgs) {
	case 0:
		return nil
	case 1:
		return c.net.Send(msgs[0])
	}
	if t := c.cfg.Trace; t != nil {
		c.flushMu.Lock()
		c.flushes++
		seq := c.flushes
		c.flushMu.Unlock()
		t.Instant(int(msgs[0].From), "",
			fmt.Sprintf("coalesce:n%d:to%d:%d", msgs[0].From, to, seq), "flush", bytes)
	}
	if zmsg, ok := c.compressBatch(msgs, to, bytes); ok {
		if err := c.net.Send(zmsg); err != nil {
			return err
		}
		d.observeRatio(float64(zmsg.Size) / float64(bytes))
		return nil
	}
	return c.net.Send(Message{
		From:    msgs[0].From,
		To:      to,
		Kind:    KindBatch,
		Payload: &BatchPayload{Msgs: msgs},
		Size:    bytes,
	})
}

// batchEncPool recycles the gob-encode and frame scratch of one
// compressed flush.
type batchEnc struct {
	buf   bytes.Buffer
	frame []byte
}

var batchEncPool = sync.Pool{New: func() any { return new(batchEnc) }}

// compressBatch tries to turn a pending batch into one KindBatchZ wire
// frame. It reports false — plain KindBatch must go out — when
// compression is off, the batch is under the minimum, a payload type is
// not gob-registered, or the wire frame would not beat the raw modeled
// bytes (net.bytes must never grow from compression).
func (c *Coalescer) compressBatch(msgs []Message, to NodeID, raw int64) (Message, bool) {
	cc := c.cfg.Compress
	if !cc.Enabled() || raw < int64(cc.MinBytes) {
		return Message{}, false
	}
	e := batchEncPool.Get().(*batchEnc)
	defer batchEncPool.Put(e)
	e.buf.Reset()
	// Each frame is self-contained, so each flush gets a fresh gob stream
	// (type descriptors included; the codec squeezes the repetition out).
	if err := gob.NewEncoder(&e.buf).Encode(&BatchPayload{Msgs: msgs}); err != nil {
		// An unregistered payload type cannot cross as a compressed frame;
		// the plain in-process batch still works.
		cc.Meter.Skip()
		return Message{}, false
	}
	e.frame = compress.AppendFrame(cc.Codec, e.frame[:0], e.buf.Bytes(), cc.MinBytes, nil)
	if int64(len(e.frame)) >= raw {
		cc.Meter.Skip()
		return Message{}, false
	}
	cc.Meter.Encoded(int(raw), len(e.frame))
	return Message{
		From:    msgs[0].From,
		To:      to,
		Kind:    KindBatchZ,
		Payload: &BatchZPayload{Frame: append([]byte(nil), e.frame...)},
		Size:    int64(len(e.frame)),
	}, true
}

func (c *Coalescer) flushDest(d *destBuffer, to NodeID) error {
	d.sendMu.Lock()
	defer d.sendMu.Unlock()
	return c.sendPendingLocked(d, to)
}

// Flush pushes every pending message out to the wrapped network. It is
// the barrier used at seal/completion points: when it returns, every
// message accepted by Send before the call has been handed to the wrapped
// network in order.
func (c *Coalescer) Flush() error {
	c.mu.RLock()
	ids := make([]NodeID, 0, len(c.dests))
	for id := range c.dests {
		ids = append(ids, id)
	}
	c.mu.RUnlock()
	var firstErr error
	for _, id := range ids {
		if err := c.flushDest(c.dest(id), id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// arm schedules the age-bound background flush if one isn't already
// pending. The timer is re-armed on demand rather than ticking
// continuously, so an idle coalescer costs nothing.
func (c *Coalescer) arm() {
	c.timerMu.Lock()
	defer c.timerMu.Unlock()
	if c.armed || c.closed {
		return
	}
	c.armed = true
	if c.timer == nil {
		c.timer = c.cfg.Clock.AfterFunc(c.cfg.MaxAge, c.onTimer)
	} else {
		c.timer.Reset(c.cfg.MaxAge)
	}
}

func (c *Coalescer) onTimer() {
	c.timerMu.Lock()
	// Clear armed BEFORE flushing: an append racing this flush re-arms
	// the timer instead of being stranded until the next send.
	c.armed = false
	closed := c.closed
	c.timerMu.Unlock()
	if closed {
		return
	}
	// Best-effort: a node that unregistered while its ack sat in the
	// buffer is not an error worth surfacing from a timer goroutine.
	_ = c.Flush()
}

// Close flushes pending messages and stops the age timer. The wrapped
// network is left open.
func (c *Coalescer) Close() error {
	c.timerMu.Lock()
	alreadyClosed := c.closed
	c.closed = true
	if c.timer != nil {
		c.timer.Stop()
	}
	c.timerMu.Unlock()
	if alreadyClosed {
		return nil
	}
	return c.Flush()
}

var _ Network = (*Coalescer)(nil)
