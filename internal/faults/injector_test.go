package faults

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
)

func TestNilInjectorIsSafeAndInert(t *testing.T) {
	var in *Injector
	in.Arm()
	in.Disarm()
	if in.Armed() {
		t.Fatal("nil injector reports armed")
	}
	if in.Seed() != 0 || in.Injected() != 0 || in.Sites() != nil || in.DeadNodeSet() != nil {
		t.Fatal("nil injector reports state")
	}
	if err := in.KillMapTask("map-00000", 0); err != nil {
		t.Fatal(err)
	}
	if err := in.KillReduceTask("reduce-00000", 0); err != nil {
		t.Fatal(err)
	}
	if in.WouldKillMap("map-00000", 0) || in.WouldKillReduce("reduce-00000", 0) {
		t.Fatal("nil injector predicts kills")
	}
	if in.Revoke("map-00000", 0) || in.WouldRevoke("map-00000", 0) {
		t.Fatal("nil injector revokes")
	}
	if _, ok := in.Straggle("map-00000"); ok || in.WouldStraggle("map-00000") {
		t.Fatal("nil injector straggles")
	}
	if err := in.FlowletFire("split:x:0:0", 0); err != nil || in.WouldFlowletFire("split:x:0:0", 0) {
		t.Fatal("nil injector fires")
	}
	if in.NodeDown(0) || in.WouldReplicaDown(0, "blk_0") {
		t.Fatal("nil injector declares nodes down")
	}
	if err := in.ReplicaDown(0, "blk_0"); err != nil {
		t.Fatal(err)
	}
	if r, d, e := in.DeliveryFault(0, 100); r != 0 || d != 0 || e != 0 {
		t.Fatal("nil injector injects delivery faults")
	}
	mem := storage.NewMemDisk(0)
	if got := in.WrapDisk(0, mem); got != storage.Disk(mem) {
		t.Fatal("nil injector should not wrap disks")
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 7, Armed: true}, 4, nil)
	for i := 0; i < 100; i++ {
		if err := in.KillMapTask("map-00000", i); err != nil {
			t.Fatal(err)
		}
		if r, d, e := in.DeliveryFault(i%4, 100); r != 0 || d != 0 || e != 0 {
			t.Fatal("zero config injected a delivery fault")
		}
	}
	if in.Injected() != 0 {
		t.Fatalf("injected = %d", in.Injected())
	}
}

func TestDecisionsArePureFunctionsOfSeed(t *testing.T) {
	cfg := Config{
		Seed: 42, KillMap: 0.4, KillReduce: 0.4, Revoke: 0.3,
		Straggle: 0.3, FlowletFire: 0.3, DeadReplica: 0.3, DeadNodes: 2,
	}
	a := New(cfg, 8, nil)
	b := New(cfg, 8, nil)
	a.Arm()
	b.Arm()
	if !reflect.DeepEqual(a.DeadNodeSet(), b.DeadNodeSet()) {
		t.Fatalf("dead sets differ: %v vs %v", a.DeadNodeSet(), b.DeadNodeSet())
	}
	if len(a.DeadNodeSet()) != 2 {
		t.Fatalf("dead set = %v", a.DeadNodeSet())
	}
	sites := []string{"map-00000", "map-00001", "map-00017", "reduce-00003"}
	for _, s := range sites {
		for att := 0; att < 6; att++ {
			if a.WouldKillMap(s, att) != b.WouldKillMap(s, att) ||
				a.WouldKillReduce(s, att) != b.WouldKillReduce(s, att) ||
				a.WouldRevoke(s, att) != b.WouldRevoke(s, att) ||
				a.WouldFlowletFire(s, att) != b.WouldFlowletFire(s, att) {
				t.Fatalf("same-seed decisions diverge at %s#%d", s, att)
			}
		}
		if a.WouldStraggle(s) != b.WouldStraggle(s) {
			t.Fatalf("straggle decision diverges at %s", s)
		}
	}
	for node := 0; node < 8; node++ {
		for blk := 0; blk < 10; blk++ {
			id := blockID(blk)
			if a.WouldReplicaDown(node, id) != b.WouldReplicaDown(node, id) {
				t.Fatalf("replica decision diverges at %s@%d", id, node)
			}
		}
	}

	// A different seed flips at least one decision across a modest grid.
	other := New(Config{Seed: 43, KillMap: 0.4}, 8, nil)
	diverged := false
	for i := 0; i < 64 && !diverged; i++ {
		s := taskSite(i)
		diverged = a.WouldKillMap(s, 0) != other.WouldKillMap(s, 0)
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 agree on every kill decision")
	}
}

func blockID(n int) string  { return "blk_" + string(rune('a'+n)) }
func taskSite(n int) string { return "map-" + string(rune('a'+n%26)) + string(rune('a'+n/26)) }

func TestArmGateAndSequenceStability(t *testing.T) {
	cfg := Config{Seed: 5, KillMap: 1, MsgDrop: 0.5}
	in := New(cfg, 2, nil)
	// Disarmed: certain kills do not fire and delivery sequences do not
	// advance.
	if err := in.KillMapTask("map-00000", 0); err != nil {
		t.Fatalf("disarmed kill fired: %v", err)
	}
	for i := 0; i < 10; i++ {
		if r, _, _ := in.DeliveryFault(0, 64); r != 0 {
			t.Fatal("disarmed delivery fault fired")
		}
	}
	in.Arm()
	err := in.KillMapTask("map-00000", 0)
	if err == nil || !IsInjected(err) {
		t.Fatalf("armed certain kill = %v", err)
	}
	// The armed delivery sequence must match a fresh injector's: the
	// disarmed calls above may not have consumed sequence numbers.
	fresh := New(cfg, 2, nil)
	fresh.Arm()
	for i := 0; i < 50; i++ {
		r1, d1, e1 := in.DeliveryFault(0, 64)
		r2, d2, e2 := fresh.DeliveryFault(0, 64)
		if r1 != r2 || d1 != d2 || e1 != e2 {
			t.Fatalf("delivery decision %d shifted by disarmed calls", i)
		}
	}
}

func TestSitesReplayIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 9, KillMap: 0.5, Revoke: 0.3, MsgDrop: 0.4, Armed: true}
	run := func(seed int64) []string {
		c := cfg
		c.Seed = seed
		in := New(c, 4, nil)
		for i := 0; i < 16; i++ {
			_ = in.KillMapTask(taskSite(i), 0)
			in.Revoke(taskSite(i), 1)
			in.DeliveryFault(i%4, 128)
		}
		return in.Sites()
	}
	a, b := run(9), run(9)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different sites:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no faults fired; probabilities too low for this test")
	}
	if reflect.DeepEqual(a, run(10)) {
		t.Fatal("different seeds produced identical fault sites")
	}
}

func TestNormalizeSiteStripsJobPrefix(t *testing.T) {
	cases := map[string]string{
		"job12/map-00000/spill-3": "map-00000/spill-3",
		"job7/reduce-1/run":       "reduce-1/run",
		"jobless/name":            "jobless/name", // "job" not followed by digits+slash
		"job/x":                   "job/x",
		"plain":                   "plain",
		"job99":                   "job99", // digits but no slash
	}
	for in, want := range cases {
		if got := normalizeSite(in); got != want {
			t.Errorf("normalizeSite(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestErrorMatchingHelpers(t *testing.T) {
	kill := &Error{Op: "mr.map.kill", Site: "map-00000#0"}
	revoke := &Error{Op: "yarn.revoke", Site: "map-00000#0"}
	if !IsInjected(kill) || !IsInjected(revoke) {
		t.Fatal("injected errors not recognised")
	}
	if !errors.Is(kill, ErrInjected) {
		t.Fatal("errors.Is fails on injected error")
	}
	if IsRevocation(kill) || !IsRevocation(revoke) {
		t.Fatal("revocation classification wrong")
	}
	if IsInjected(errors.New("real failure")) {
		t.Fatal("real error classified as injected")
	}
}

func TestInjectedFaultsAreCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	in := New(Config{Seed: 1, KillMap: 1, Armed: true}, 2, reg)
	_ = in.KillMapTask("map-00000", 0)
	_ = in.KillMapTask("map-00001", 0)
	if got := reg.Counter("faults.injected").Value(); got != 2 {
		t.Fatalf("faults.injected = %d", got)
	}
	if got := reg.Counter("faults.mr.map.kill").Value(); got != 2 {
		t.Fatalf("faults.mr.map.kill = %d", got)
	}
	if in.Injected() != 2 {
		t.Fatalf("Injected() = %d", in.Injected())
	}
}

func TestStraggleReturnsConfiguredDelay(t *testing.T) {
	in := New(Config{Seed: 3, Straggle: 1, StraggleDelay: 5 * time.Millisecond, Armed: true}, 2, nil)
	d, ok := in.Straggle("map-00000")
	if !ok || d != 5*time.Millisecond {
		t.Fatalf("Straggle = %v, %v", d, ok)
	}
}
