// Package faults is a seeded, deterministic fault injector for the
// simulated cluster. Every injection decision is a pure hash of
// (seed, op, site, n): the same seed always kills the same task, declares
// the same replica dead and drops the same messages, regardless of
// goroutine scheduling. Sites are identity keys (task name + attempt,
// block id + node, file name + open sequence), so retries of the same work
// re-roll deterministically and a chaos run can be replayed bit-for-bit.
//
// The injector is nil-safe and starts disarmed: callers thread one
// *Injector through every layer and Arm() it only around the job under
// test, which keeps cluster setup (input loads) and test verification
// (output reads) fault-free. With a nil or disarmed injector every
// injection point is a single atomic load, and all modeled counters and
// output hashes stay bit-identical to a build without the injector.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hamr-go/hamr/internal/metrics"
	"github.com/hamr-go/hamr/internal/storage"
)

// ErrInjected matches (via errors.Is) every error produced by the
// injector, letting recovery code distinguish simulated faults from real
// bugs when deciding what is retryable.
var ErrInjected = errors.New("faults: injected failure")

// Error is an injected failure, carrying the operation and site it fired
// at. It matches ErrInjected under errors.Is.
type Error struct {
	Op   string // e.g. "disk.write", "hdfs.replica", "mr.map.kill"
	Site string // identity key of the faulted work, e.g. "map-00003#1"
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("faults: injected %s at %s", e.Op, e.Site) }

// Is implements errors.Is against ErrInjected.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// IsInjected reports whether err originates from an injector.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// IsRevocation reports whether err is an injected container revocation,
// which recovery treats as infrastructure churn rather than a task
// failure (it does not consume a task attempt).
func IsRevocation(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Op == "yarn.revoke"
}

// Config selects fault probabilities. All probabilities are per decision
// site in [0, 1]; zero disables that fault class. The zero Config injects
// nothing even when armed.
type Config struct {
	// Seed keys every decision; two injectors with the same Config fire at
	// identical sites.
	Seed int64

	// DiskRead / DiskWrite fail local-disk handles (per Create/Open).
	DiskRead  float64
	DiskWrite float64

	// DeadNodes marks that many datanodes (chosen by seed) as having dead
	// storage: reads of their replicas fail over and writes place blocks
	// elsewhere. Compute on those nodes is unaffected.
	DeadNodes int
	// DeadReplica additionally fails individual (block, node) replicas.
	DeadReplica float64

	// MsgDrop simulates a dropped fabric message. The reliable layer
	// retransmits, so delivery still happens; the message is charged one
	// extra transfer of modeled latency. MsgDup delivers a duplicate that
	// the sequence-numbered fabric dedups (again costing one transfer);
	// MsgDelay adds MsgDelayDur of extra latency.
	MsgDrop     float64
	MsgDup      float64
	MsgDelay    float64
	MsgDelayDur time.Duration

	// KillMap / KillReduce fail a task attempt at its mid-task checkpoint.
	KillMap    float64
	KillReduce float64

	// Straggle makes a map task's first attempt sleep StraggleDelay,
	// triggering speculative re-execution when enabled.
	Straggle      float64
	StraggleDelay time.Duration

	// Revoke reclaims a task's container mid-task (simulated preemption).
	Revoke float64

	// FlowletFire fails a HAMR fine-grain task (loader split, partial
	// stripe, reduce batch) at its start, before any side effects.
	FlowletFire float64

	// Armed starts the injector armed instead of waiting for Arm().
	Armed bool
}

// Injector makes seeded fault decisions and records what fired. All
// methods are safe on a nil receiver (no faults) and for concurrent use.
type Injector struct {
	cfg   Config
	nodes int
	dead  map[int]bool
	armed atomic.Bool

	reg       *metrics.Registry
	mInjected *metrics.Counter

	mu    sync.Mutex
	seq   map[string]uint64
	sites map[string]int
}

// New builds an injector for a cluster of numNodes nodes, recording fired
// faults into reg (nil for a private registry). The DeadNodes set is drawn
// from the seed at construction.
func New(cfg Config, numNodes int, reg *metrics.Registry) *Injector {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	in := &Injector{
		cfg:       cfg,
		nodes:     numNodes,
		dead:      make(map[int]bool),
		reg:       reg,
		mInjected: reg.Counter("faults.injected"),
		seq:       make(map[string]uint64),
		sites:     make(map[string]int),
	}
	if cfg.DeadNodes > 0 && numNodes > 0 {
		n := cfg.DeadNodes
		if n > numNodes {
			n = numNodes
		}
		perm := rand.New(rand.NewSource(cfg.Seed)).Perm(numNodes)
		for _, node := range perm[:n] {
			in.dead[node] = true
		}
	}
	in.armed.Store(cfg.Armed)
	return in
}

// Arm enables fault injection.
func (in *Injector) Arm() {
	if in != nil {
		in.armed.Store(true)
	}
}

// Disarm disables fault injection; decisions return "no fault" until the
// next Arm. The per-site sequence counters keep advancing only while
// armed, so a disarm/arm cycle does not shift later decisions.
func (in *Injector) Disarm() {
	if in != nil {
		in.armed.Store(false)
	}
}

// Armed reports whether faults are currently being injected.
func (in *Injector) Armed() bool { return in != nil && in.armed.Load() }

// Seed returns the configured seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.cfg.Seed
}

// Injected returns the total number of faults fired so far.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.mInjected.Value()
}

// Sites returns the multiset of fired fault sites as sorted "op:site=n"
// strings. Two runs with the same seed produce identical slices.
func (in *Injector) Sites() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	out := make([]string, 0, len(in.sites))
	for k, n := range in.sites {
		out = append(out, fmt.Sprintf("%s=%d", k, n))
	}
	in.mu.Unlock()
	sort.Strings(out)
	return out
}

// DeadNodeSet returns the sorted datanode ids whose storage is dead.
func (in *Injector) DeadNodeSet() []int {
	if in == nil {
		return nil
	}
	out := make([]int, 0, len(in.dead))
	for n := range in.dead {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// --- decision machinery ---

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// siteHash is a pure function of (seed, op, site, n): FNV-1a over the
// fields followed by a splitmix64 finalize.
func siteHash(seed int64, op, site string, n uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	step := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	for i := 0; i < 8; i++ {
		step(byte(uint64(seed) >> (8 * i)))
	}
	for i := 0; i < len(op); i++ {
		step(op[i])
	}
	step(0)
	for i := 0; i < len(site); i++ {
		step(site[i])
	}
	step(0)
	for i := 0; i < 8; i++ {
		step(byte(n >> (8 * i)))
	}
	return mix64(h)
}

// chance is the pure decision: true with probability p for this identity.
func (in *Injector) chance(op, site string, n uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(siteHash(in.cfg.Seed, op, site, n)>>11)/(1<<53) < p
}

// record notes a fired fault.
func (in *Injector) record(op, site string) {
	in.mInjected.Inc()
	in.reg.Inc("faults." + op)
	in.mu.Lock()
	in.sites[op+":"+site]++
	in.mu.Unlock()
}

// nextSeq advances the auto-sequence for a key. Sequences only advance
// while armed (callers check Armed first), so the k-th armed event at a
// site always rolls the same dice.
func (in *Injector) nextSeq(key string) uint64 {
	in.mu.Lock()
	n := in.seq[key]
	in.seq[key] = n + 1
	in.mu.Unlock()
	return n
}

// normalizeSite strips a leading "job<digits>/" from a name. Job ids come
// from a process-global counter, so leaving them in site keys would make
// the second run of a seed roll different dice than the first.
func normalizeSite(name string) string {
	if len(name) < 4 || name[0] != 'j' || name[1] != 'o' || name[2] != 'b' {
		return name
	}
	i := 3
	for i < len(name) && name[i] >= '0' && name[i] <= '9' {
		i++
	}
	if i == 3 || i >= len(name) || name[i] != '/' {
		return name
	}
	return name[i+1:]
}

// --- task-level faults (MapReduce) ---

// killProb maps a kill op to its probability.
func (in *Injector) killProb(op string) float64 {
	if op == "mr.reduce.kill" {
		return in.cfg.KillReduce
	}
	return in.cfg.KillMap
}

func (in *Injector) killTask(op, site string, attempt int) error {
	if !in.Armed() || !in.chance(op, site, uint64(attempt), in.killProb(op)) {
		return nil
	}
	full := fmt.Sprintf("%s#%d", site, attempt)
	in.record(op, full)
	return &Error{Op: op, Site: full}
}

// KillMapTask fails the given map attempt if the dice say so. site must be
// job-relative (e.g. "map-00003").
func (in *Injector) KillMapTask(site string, attempt int) error {
	if in == nil {
		return nil
	}
	return in.killTask("mr.map.kill", site, attempt)
}

// KillReduceTask is KillMapTask for reduce attempts.
func (in *Injector) KillReduceTask(site string, attempt int) error {
	if in == nil {
		return nil
	}
	return in.killTask("mr.reduce.kill", site, attempt)
}

// WouldKillMap is the pure decision behind KillMapTask: no recording, no
// armed check. Tests use it to compute exact expected retry counts.
func (in *Injector) WouldKillMap(site string, attempt int) bool {
	return in != nil && in.chance("mr.map.kill", site, uint64(attempt), in.cfg.KillMap)
}

// WouldKillReduce is the pure decision behind KillReduceTask.
func (in *Injector) WouldKillReduce(site string, attempt int) bool {
	return in != nil && in.chance("mr.reduce.kill", site, uint64(attempt), in.cfg.KillReduce)
}

// Revoke decides whether the container running (site, attempt) is revoked
// mid-task.
func (in *Injector) Revoke(site string, attempt int) bool {
	if !in.Armed() || !in.chance("yarn.revoke", site, uint64(attempt), in.cfg.Revoke) {
		return false
	}
	in.record("yarn.revoke", fmt.Sprintf("%s#%d", site, attempt))
	return true
}

// WouldRevoke is the pure decision behind Revoke.
func (in *Injector) WouldRevoke(site string, attempt int) bool {
	return in != nil && in.chance("yarn.revoke", site, uint64(attempt), in.cfg.Revoke)
}

// Straggle reports whether the first attempt of site is a straggler and
// how long it stalls, recording the fault.
func (in *Injector) Straggle(site string) (time.Duration, bool) {
	if !in.Armed() || !in.chance("mr.straggle", site, 0, in.cfg.Straggle) {
		return 0, false
	}
	in.record("mr.straggle", site)
	return in.cfg.StraggleDelay, true
}

// WouldStraggle is the pure decision behind Straggle; the scheduler uses
// it to launch a speculative attempt without charging a fault.
func (in *Injector) WouldStraggle(site string) bool {
	return in.Armed() && in.chance("mr.straggle", site, 0, in.cfg.Straggle)
}

// --- flowlet faults (HAMR) ---

// FlowletFire fails a fine-grain flowlet task at its start (crash before
// side effects, so a re-fire never duplicates emitted data).
func (in *Injector) FlowletFire(site string, attempt int) error {
	if !in.Armed() || !in.chance("flowlet.fire", site, uint64(attempt), in.cfg.FlowletFire) {
		return nil
	}
	full := fmt.Sprintf("%s#%d", site, attempt)
	in.record("flowlet.fire", full)
	return &Error{Op: "flowlet.fire", Site: full}
}

// WouldFlowletFire is the pure decision behind FlowletFire.
func (in *Injector) WouldFlowletFire(site string, attempt int) bool {
	return in != nil && in.chance("flowlet.fire", site, uint64(attempt), in.cfg.FlowletFire)
}

// --- HDFS faults ---

// NodeDown reports whether a datanode's storage is in the dead set. It is
// a pure predicate (placement consults it per block; recording happens at
// read failover, where the fault is observable).
func (in *Injector) NodeDown(node int) bool {
	return in.Armed() && in.dead[node]
}

// ReplicaDown returns an injected error when the replica of block on node
// is unreadable, either because the node's storage is dead or because the
// per-replica dice fired.
func (in *Injector) ReplicaDown(node int, block string) error {
	if !in.Armed() {
		return nil
	}
	if !in.dead[node] && !in.chance("hdfs.replica", block, uint64(node), in.cfg.DeadReplica) {
		return nil
	}
	site := fmt.Sprintf("%s@%d", block, node)
	in.record("hdfs.replica", site)
	return &Error{Op: "hdfs.replica", Site: site}
}

// WouldReplicaDown is the pure decision behind ReplicaDown (it does not
// consult the armed flag, so tests can predict counts before a run).
func (in *Injector) WouldReplicaDown(node int, block string) bool {
	if in == nil {
		return false
	}
	return in.dead[node] || in.chance("hdfs.replica", block, uint64(node), in.cfg.DeadReplica)
}

// --- transport faults ---

// DeliveryFault is consulted once per message delivered to node's inbox
// and returns the simulated wire mishaps: retrans counts dropped-then-
// retransmitted copies, dups counts duplicates the fabric dedups, extra is
// added latency. The fabric stays reliable — delivery happens exactly
// once — so outputs are unchanged while modeled time and the faults.net.*
// counters show the churn. Implements transport.FaultHook.
func (in *Injector) DeliveryFault(node int, size int64) (retrans, dups int, extra time.Duration) {
	if !in.Armed() {
		return 0, 0, 0
	}
	c := &in.cfg
	if c.MsgDrop <= 0 && c.MsgDup <= 0 && c.MsgDelay <= 0 {
		return 0, 0, 0
	}
	site := fmt.Sprintf("rx%d", node)
	n := in.nextSeq("net|" + site)
	if in.chance("net.drop", site, n, c.MsgDrop) {
		in.record("net.drop", site)
		retrans = 1
	}
	if in.chance("net.dup", site, n, c.MsgDup) {
		in.record("net.dup", site)
		dups = 1
	}
	if in.chance("net.delay", site, n, c.MsgDelay) {
		in.record("net.delay", site)
		extra = c.MsgDelayDur
	}
	return retrans, dups, extra
}

// --- disk faults ---

// DiskPolicy returns the storage.FaultPolicy for a node's local disk.
func (in *Injector) DiskPolicy(node int) *DiskPolicy {
	return &DiskPolicy{in: in, node: node}
}

// WrapDisk wraps d with this injector's fault policy for node. With a nil
// injector d is returned unchanged.
func (in *Injector) WrapDisk(node int, d storage.Disk) storage.Disk {
	if in == nil {
		return d
	}
	return storage.NewFaultyDisk(d, in.DiskPolicy(node))
}

// DiskPolicy implements storage.FaultPolicy with seeded decisions keyed by
// (node, job-relative file name, per-name open sequence).
type DiskPolicy struct {
	in   *Injector
	node int
}

func (p *DiskPolicy) fault(op, name string, prob float64) (int64, error) {
	in := p.in
	if !in.Armed() || prob <= 0 {
		return -1, nil
	}
	site := fmt.Sprintf("node%d:%s", p.node, normalizeSite(name))
	n := in.nextSeq(op + "|" + site)
	if !in.chance(op, site, n, prob) {
		return -1, nil
	}
	in.record(op, site)
	// Fail partway into the transfer so partial-file cleanup paths run.
	failAfter := int64(siteHash(in.cfg.Seed, op+"#off", site, n) % 4096)
	return failAfter, &Error{Op: op, Site: site}
}

// CreateFault implements storage.FaultPolicy.
func (p *DiskPolicy) CreateFault(name string) (int64, error) {
	return p.fault("disk.write", name, p.in.cfg.DiskWrite)
}

// OpenFault implements storage.FaultPolicy.
func (p *DiskPolicy) OpenFault(name string) (int64, error) {
	return p.fault("disk.read", name, p.in.cfg.DiskRead)
}

var _ storage.FaultPolicy = (*DiskPolicy)(nil)
