// Deterministic chaos suite: every scenario runs a real job on the
// simulated cluster with a seeded fault injector armed, then checks two
// things against a fault-free run of the same job:
//
//  1. the output is byte-identical — recovery must mask every injected
//     fault completely;
//  2. the fault and recovery counters match values computed up front from
//     the injector's pure decision predictors — the same seed must fire
//     the same faults, run after run, even under -race.
//
// Scenario probabilities and seeds are chosen so that recovery succeeds
// (no task exhausts its attempt budget); the predictor verifies that
// assumption explicitly rather than leaving it to luck.
package faults_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/apps/mrapps"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
	"github.com/hamr-go/hamr/internal/faults"
	"github.com/hamr-go/hamr/internal/mapreduce"
)

// chaosSeeds are the fixed seeds every scenario replays under (CI runs the
// suite with -count=2, so each seed must also be stable across repeats in
// one process).
var chaosSeeds = []int64{1, 2, 3}

const chaosNodes = 3

// corpus is the deterministic WordCount input: big enough for several
// 4 KiB input blocks (= several map tasks), small enough to stay fast.
func corpus() []byte {
	return datagen.Text(datagen.TextConfig{Seed: 17, Vocabulary: 120, Lines: 600})
}

// mrRun is one MapReduce WordCount execution with (or without) faults.
type mrRun struct {
	c      *cluster.Cluster
	res    *mapreduce.Result
	err    error
	output map[string]string
}

// runMRWordCount executes WordCount on a fresh cluster. The injector is
// armed only around the job: input load and output verification stay
// fault-free.
func runMRWordCount(t *testing.T, fcfg *faults.Config, mcfg mapreduce.Config) *mrRun {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		NumNodes:        chaosNodes,
		HDFSBlockSize:   4 << 10,
		HDFSReplication: 2,
		Faults:          fcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.FS().WriteFile("in/words", corpus(), -1); err != nil {
		t.Fatal(err)
	}
	eng := mapreduce.NewEngine(c, mcfg)
	inj := c.Faults()
	inj.Arm()
	res, err := eng.Run(mrapps.WordCountJob("in/words", "out", true, 3))
	inj.Disarm()
	r := &mrRun{c: c, res: res, err: err}
	if err == nil {
		r.output = readHDFSOutput(t, c, "out/")
	}
	return r
}

func readHDFSOutput(t *testing.T, c *cluster.Cluster, prefix string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, f := range c.FS().List(prefix) {
		data, err := c.FS().ReadFile(f, -1)
		if err != nil {
			t.Fatal(err)
		}
		cur := ""
		for _, b := range data {
			if b == '\n' {
				for i := 0; i < len(cur); i++ {
					if cur[i] == '\t' {
						out[cur[:i]] = cur[i+1:]
						break
					}
				}
				cur = ""
			} else {
				cur += string(b)
			}
		}
	}
	return out
}

// taskPlan is the predicted fate of one task's attempt sequence under the
// engine's retry policy, mirrored from mapreduce.retryTask: kills consume
// attempts (mapreduce.task.maxattempts = 4 by default), revocations do
// not but are separately bounded.
type taskPlan struct {
	kills    int
	revokes  int
	retries  int
	survives bool
}

func predictTask(in *faults.Injector, kill, revoke func(site string, attempt int) bool,
	site string, maxAttempts int) taskPlan {
	const revokeBudget = 8
	var p taskPlan
	fails := 0
	for seq := 0; ; seq++ {
		switch {
		case kill(site, seq):
			p.kills++
			fails++
			if fails >= maxAttempts {
				return p
			}
		case revoke(site, seq):
			p.revokes++
			if seq+1 >= maxAttempts+revokeBudget {
				return p
			}
		default:
			p.survives = true
			return p
		}
		p.retries++
	}
}

func counter(c *cluster.Cluster, name string) int64 {
	return c.Metrics().Counter(name).Value()
}

func assertSameOutput(t *testing.T, got, want map[string]string) {
	t.Helper()
	if len(want) == 0 {
		t.Fatal("baseline output empty")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("output diverged from fault-free run: %d keys vs %d", len(got), len(want))
	}
}

// TestChaosMapTaskKills kills map task attempts at their mid-task
// checkpoint and verifies the retried tasks reproduce the fault-free
// output exactly, with kill and retry counters matching the predictor.
func TestChaosMapTaskKills(t *testing.T) {
	base := runMRWordCount(t, nil, mapreduce.Config{})
	if base.err != nil {
		t.Fatal(base.err)
	}
	// Seeds verified against the predictor: each kills at least one map
	// attempt and none exhausts a task's attempt budget.
	for _, seed := range []int64{1, 3, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fcfg := &faults.Config{Seed: seed, KillMap: 0.3}
			run := runMRWordCount(t, fcfg, mapreduce.Config{})
			inj := run.c.Faults()

			var kills, retries int64
			for i := 0; i < base.res.MapTasks; i++ {
				p := predictTask(inj, inj.WouldKillMap, inj.WouldRevoke,
					fmt.Sprintf("map-%05d", i), 4)
				if !p.survives {
					t.Fatalf("seed %d exhausts map-%05d's attempts; pick another seed", seed, i)
				}
				kills += int64(p.kills)
				retries += int64(p.retries)
			}
			if kills == 0 {
				t.Fatalf("seed %d kills no map task; pick another seed", seed)
			}
			if run.err != nil {
				t.Fatalf("job failed despite surviving plan: %v", run.err)
			}
			assertSameOutput(t, run.output, base.output)
			if got := counter(run.c, "faults.mr.map.kill"); got != kills {
				t.Errorf("faults.mr.map.kill = %d, want %d", got, kills)
			}
			if got := counter(run.c, "faults.injected"); got != kills {
				t.Errorf("faults.injected = %d, want %d", got, kills)
			}
			if got := counter(run.c, "mr.task.retries"); got != retries {
				t.Errorf("mr.task.retries = %d, want %d", got, retries)
			}
		})
	}
}

// TestChaosReduceTaskKills kills reduce attempts after the shuffle fetch
// (mid-merge): the retry must re-fetch from the still-present map output
// and produce identical results.
func TestChaosReduceTaskKills(t *testing.T) {
	base := runMRWordCount(t, nil, mapreduce.Config{})
	if base.err != nil {
		t.Fatal(base.err)
	}
	// Seeds verified to kill at least one reduce attempt and survive.
	for _, seed := range []int64{1, 2, 4} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fcfg := &faults.Config{Seed: seed, KillReduce: 0.5}
			run := runMRWordCount(t, fcfg, mapreduce.Config{})
			inj := run.c.Faults()

			var kills, retries int64
			for r := 0; r < base.res.ReduceTasks; r++ {
				p := predictTask(inj, inj.WouldKillReduce, inj.WouldRevoke,
					fmt.Sprintf("reduce-%05d", r), 4)
				if !p.survives {
					t.Fatalf("seed %d exhausts reduce-%05d's attempts; pick another seed", seed, r)
				}
				kills += int64(p.kills)
				retries += int64(p.retries)
			}
			if kills == 0 {
				t.Fatalf("seed %d kills no reduce task; pick another seed", seed)
			}
			if run.err != nil {
				t.Fatalf("job failed despite surviving plan: %v", run.err)
			}
			assertSameOutput(t, run.output, base.output)
			if got := counter(run.c, "faults.mr.reduce.kill"); got != kills {
				t.Errorf("faults.mr.reduce.kill = %d, want %d", got, kills)
			}
			if got := counter(run.c, "mr.task.retries"); got != retries {
				t.Errorf("mr.task.retries = %d, want %d", got, retries)
			}
		})
	}
}

// TestChaosDeadDatanode declares one node's storage dead: every replica it
// holds is unreadable and reads must fail over to the surviving replica,
// while blocks written during the job must avoid the dead node entirely.
func TestChaosDeadDatanode(t *testing.T) {
	base := runMRWordCount(t, nil, mapreduce.Config{})
	if base.err != nil {
		t.Fatal(base.err)
	}
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fcfg := &faults.Config{Seed: seed, DeadNodes: 1}
			run := runMRWordCount(t, fcfg, mapreduce.Config{})
			if run.err != nil {
				t.Fatalf("job failed: %v", run.err)
			}
			assertSameOutput(t, run.output, base.output)

			inj := run.c.Faults()
			dead := map[int]bool{}
			for _, n := range inj.DeadNodeSet() {
				dead[n] = true
			}
			if len(dead) != 1 {
				t.Fatalf("dead set = %v", inj.DeadNodeSet())
			}
			// Output blocks were written while the injector was armed, so
			// placement must have avoided the dead node.
			for _, f := range run.c.FS().List("out/") {
				blocks, err := run.c.FS().Blocks(f)
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range blocks {
					for _, r := range b.Replicas {
						if dead[int(r)] {
							t.Fatalf("output block %s placed on dead node %d", b.ID, r)
						}
					}
				}
			}
			// The input is replicated twice across three nodes, so the dead
			// node holds input replicas; at least the map attempts scheduled
			// on it must have failed over.
			if counter(run.c, "hdfs.failover.reads") == 0 &&
				counter(run.c, "faults.hdfs.replica") > 0 {
				t.Error("replica faults fired but no failover was counted")
			}
			if counter(run.c, "faults.injected") != counter(run.c, "faults.hdfs.replica") {
				t.Error("dead-node scenario fired non-replica faults")
			}
		})
	}
}

// TestChaosContainerRevocation preempts task containers mid-run: the YARN
// memory must be returned exactly once per revocation and the rescheduled
// attempts must reproduce the output.
func TestChaosContainerRevocation(t *testing.T) {
	base := runMRWordCount(t, nil, mapreduce.Config{})
	if base.err != nil {
		t.Fatal(base.err)
	}
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fcfg := &faults.Config{Seed: seed, Revoke: 0.4}
			run := runMRWordCount(t, fcfg, mapreduce.Config{})
			inj := run.c.Faults()

			var revokes, retries int64
			for i := 0; i < base.res.MapTasks; i++ {
				p := predictTask(inj, inj.WouldKillMap, inj.WouldRevoke,
					fmt.Sprintf("map-%05d", i), 4)
				if !p.survives {
					t.Fatalf("seed %d exhausts map-%05d; pick another seed", seed, i)
				}
				revokes += int64(p.revokes)
				retries += int64(p.retries)
			}
			for r := 0; r < base.res.ReduceTasks; r++ {
				p := predictTask(inj, inj.WouldKillReduce, inj.WouldRevoke,
					fmt.Sprintf("reduce-%05d", r), 4)
				if !p.survives {
					t.Fatalf("seed %d exhausts reduce-%05d; pick another seed", seed, r)
				}
				revokes += int64(p.revokes)
				retries += int64(p.retries)
			}
			if revokes == 0 {
				t.Fatalf("seed %d revokes nothing; pick another seed", seed)
			}
			if run.err != nil {
				t.Fatalf("job failed despite surviving plan: %v", run.err)
			}
			assertSameOutput(t, run.output, base.output)
			if got := run.c.Yarn().Revoked(); got != revokes {
				t.Errorf("yarn revoked %d containers, want %d", got, revokes)
			}
			if got := counter(run.c, "faults.yarn.revoke"); got != revokes {
				t.Errorf("faults.yarn.revoke = %d, want %d", got, revokes)
			}
			if got := counter(run.c, "mr.task.retries"); got != retries {
				t.Errorf("mr.task.retries = %d, want %d", got, retries)
			}
			// Every granted container was either released or revoked:
			// revocation must not corrupt the scheduler's accounting.
			granted, _, released := run.c.Yarn().Stats()
			if granted != released+revokes {
				t.Errorf("yarn accounting: granted %d != released %d + revoked %d",
					granted, released, revokes)
			}
		})
	}
}

// TestChaosSpeculativeExecution declares every map task a straggler: with
// Speculation on, a backup attempt races each stalled original and the job
// finishes with identical output.
func TestChaosSpeculativeExecution(t *testing.T) {
	base := runMRWordCount(t, nil, mapreduce.Config{})
	if base.err != nil {
		t.Fatal(base.err)
	}
	fcfg := &faults.Config{Seed: 1, Straggle: 1, StraggleDelay: 300 * time.Millisecond}
	run := runMRWordCount(t, fcfg, mapreduce.Config{Speculation: true})
	if run.err != nil {
		t.Fatalf("job failed: %v", run.err)
	}
	assertSameOutput(t, run.output, base.output)
	if got := counter(run.c, "mr.speculative.launched"); got != int64(base.res.MapTasks) {
		t.Errorf("mr.speculative.launched = %d, want %d", got, base.res.MapTasks)
	}
	// The originals stall 300ms; the backups run at full speed and must
	// win at least once (scheduling noise can let a stalled original slip
	// through occasionally, but not everywhere).
	if got := counter(run.c, "mr.speculative.won"); got == 0 {
		t.Error("no speculative attempt won against a 300ms straggler")
	}
	if got := counter(run.c, "faults.mr.straggle"); got == 0 {
		t.Error("no straggle faults recorded")
	}
}

// hamrRun is one HAMR WordCount execution.
type hamrRun struct {
	c      *cluster.Cluster
	err    error
	output []core.KV
}

// runHAMRWordCount executes the flowlet WordCount. Coalescing is disabled
// so every fabric message is individually visible to the injector's
// delivery hook.
func runHAMRWordCount(t *testing.T, fcfg *faults.Config) *hamrRun {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		NumNodes:      chaosNodes,
		HDFSBlockSize: 4 << 10,
		Core:          core.Config{Workers: 2, CoalesceMsgs: -1},
		Faults:        fcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	files, err := hamrapps.DistributeLocalText(c, "words", corpus(), 2*chaosNodes)
	if err != nil {
		t.Fatal(err)
	}
	g, sink, err := hamrapps.BuildWordCount(hamrapps.WordCountOptions{
		Loader:   &hamrapps.LocalTextLoader{Files: files},
		Combiner: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := c.Faults()
	inj.Arm()
	done := make(chan error, 1)
	go func() {
		_, rerr := c.Run(g)
		done <- rerr
	}()
	var rerr error
	select {
	case rerr = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("HAMR job hung under fault injection")
	}
	inj.Disarm()
	r := &hamrRun{c: c, err: rerr}
	if rerr == nil {
		r.output = sink.Sorted()
	}
	return r
}

// TestChaosMessageDropDupDelay drops, duplicates and delays fabric
// messages: the reliable fabric retransmits and dedups, so the flowlet
// output must not change at all.
func TestChaosMessageDropDupDelay(t *testing.T) {
	base := runHAMRWordCount(t, nil)
	if base.err != nil {
		t.Fatal(base.err)
	}
	if len(base.output) == 0 {
		t.Fatal("baseline output empty")
	}
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fcfg := &faults.Config{
				Seed:        seed,
				MsgDrop:     0.05,
				MsgDup:      0.03,
				MsgDelay:    0.05,
				MsgDelayDur: 200 * time.Microsecond,
			}
			run := runHAMRWordCount(t, fcfg)
			if run.err != nil {
				t.Fatalf("job failed: %v", run.err)
			}
			if !reflect.DeepEqual(run.output, base.output) {
				t.Fatalf("output diverged under message faults: %d pairs vs %d",
					len(run.output), len(base.output))
			}
			// Thousands of fabric messages flow at these rates; a zero
			// count means the hook was not consulted.
			if counter(run.c, "faults.injected") == 0 {
				t.Error("no message faults fired")
			}
			drops := counter(run.c, "faults.net.drop")
			dups := counter(run.c, "faults.net.dup")
			delays := counter(run.c, "faults.net.delay")
			if drops+dups+delays != counter(run.c, "faults.injected") {
				t.Error("message scenario fired non-network faults")
			}
			if drops == 0 {
				t.Error("no drops at 5% over the whole job")
			}
		})
	}
}

// TestChaosFlowletRefire crashes fine-grain flowlet tasks at their start;
// bounded re-fires must mask every crash and reproduce the output.
func TestChaosFlowletRefire(t *testing.T) {
	base := runHAMRWordCount(t, nil)
	if base.err != nil {
		t.Fatal(base.err)
	}
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fcfg := &faults.Config{Seed: seed, FlowletFire: 0.15}
			run := runHAMRWordCount(t, fcfg)
			if run.err != nil {
				t.Fatalf("job failed: %v", run.err)
			}
			if !reflect.DeepEqual(run.output, base.output) {
				t.Fatalf("output diverged under re-fires: %d pairs vs %d",
					len(run.output), len(base.output))
			}
			fires := counter(run.c, "faults.flowlet.fire")
			refires := counter(run.c, "flowlet.refires")
			if fires == 0 {
				t.Fatalf("seed %d crashed no flowlet task; pick another seed", seed)
			}
			// Every crash that the job survived was followed by a re-fire.
			if refires != fires {
				t.Errorf("flowlet.refires = %d, faults.flowlet.fire = %d", refires, fires)
			}
		})
	}
}

// TestChaosFlowletAbortPropagation makes every fire attempt of every
// fine-grain task crash: re-fires exhaust and the job must abort promptly
// across all nodes, surfacing the original injected error — not hang.
func TestChaosFlowletAbortPropagation(t *testing.T) {
	c, err := cluster.New(cluster.Options{
		NumNodes: chaosNodes,
		Core:     core.Config{Workers: 2},
		Faults:   &faults.Config{Seed: 1, FlowletFire: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	files, err := hamrapps.DistributeLocalText(c, "words", corpus(), chaosNodes)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := hamrapps.BuildWordCount(hamrapps.WordCountOptions{
		Loader: &hamrapps.LocalTextLoader{Files: files},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Faults().Arm()
	defer c.Faults().Disarm()
	done := make(chan error, 1)
	go func() {
		_, rerr := c.Run(g)
		done <- rerr
	}()
	select {
	case rerr := <-done:
		if rerr == nil {
			t.Fatal("job succeeded with every task crashing")
		}
		if !faults.IsInjected(rerr) {
			t.Fatalf("abort lost the original injected cause: %v", rerr)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("exhausted re-fires did not abort the job")
	}
}

// TestChaosSeedReplay runs the same faulty job twice with the same seed —
// the fired fault sites and counters must be identical — and once with a
// different seed, which must fire a different set.
func TestChaosSeedReplay(t *testing.T) {
	type replay struct {
		sites    []string
		injected int64
		retries  int64
		output   map[string]string
	}
	run := func(seed int64) replay {
		r := runMRWordCount(t, &faults.Config{Seed: seed, KillMap: 0.3, KillReduce: 0.3, Revoke: 0.2},
			mapreduce.Config{})
		if r.err != nil {
			t.Fatalf("seed %d job failed: %v", seed, r.err)
		}
		return replay{
			sites:    r.c.Faults().Sites(),
			injected: counter(r.c, "faults.injected"),
			retries:  counter(r.c, "mr.task.retries"),
			output:   r.output,
		}
	}
	a, b := run(1), run(1)
	if !reflect.DeepEqual(a.sites, b.sites) {
		t.Fatalf("same seed fired different sites:\n%v\n%v", a.sites, b.sites)
	}
	if a.injected != b.injected || a.retries != b.retries {
		t.Fatalf("same seed, different counters: %d/%d vs %d/%d",
			a.injected, a.retries, b.injected, b.retries)
	}
	if a.injected == 0 {
		t.Fatal("replay scenario fired no faults")
	}
	assertSameOutput(t, b.output, a.output)
	other := run(3)
	if reflect.DeepEqual(a.sites, other.sites) {
		t.Fatal("different seeds fired identical fault sites")
	}
	assertSameOutput(t, other.output, a.output)
}

// TestChaosDisabledInjectorIsInvariant verifies the tentpole's invariance
// guarantee: a cluster carrying a fully configured but never-armed
// injector produces the same output and the same deterministic counters
// as a cluster built without any injector.
func TestChaosDisabledInjectorIsInvariant(t *testing.T) {
	loaded := &faults.Config{
		Seed: 99, DiskRead: 0.5, DiskWrite: 0.5, DeadNodes: 2, DeadReplica: 0.5,
		MsgDrop: 0.5, MsgDup: 0.5, MsgDelay: 0.5, MsgDelayDur: time.Millisecond,
		KillMap: 0.9, KillReduce: 0.9, Straggle: 0.9, StraggleDelay: time.Second,
		Revoke: 0.9, FlowletFire: 0.9,
	}

	bare := runMRWordCount(t, nil, mapreduce.Config{})
	if bare.err != nil {
		t.Fatal(bare.err)
	}
	armedOff := func(t *testing.T, fcfg *faults.Config) *mrRun {
		t.Helper()
		c, err := cluster.New(cluster.Options{
			NumNodes:        chaosNodes,
			HDFSBlockSize:   4 << 10,
			HDFSReplication: 2,
			Faults:          fcfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		if err := c.FS().WriteFile("in/words", corpus(), -1); err != nil {
			t.Fatal(err)
		}
		eng := mapreduce.NewEngine(c, mapreduce.Config{})
		res, err := eng.Run(mrapps.WordCountJob("in/words", "out", true, 3))
		r := &mrRun{c: c, res: res, err: err}
		if err == nil {
			r.output = readHDFSOutput(t, c, "out/")
		}
		return r
	}
	carrying := armedOff(t, loaded)
	if carrying.err != nil {
		t.Fatal(carrying.err)
	}
	assertSameOutput(t, carrying.output, bare.output)
	// Deterministic counters must match exactly; fault counters must all
	// be zero (scheduling-dependent counters like mr.map.local are
	// legitimately run-variable and are not compared).
	for _, name := range []string{
		"mr.jobs", "mr.spills", "mr.task.retries", "mr.speculative.launched",
		"faults.injected", "hdfs.failover.reads", "hdfs.write.replaced",
		"flowlet.refires",
	} {
		if g, w := counter(carrying.c, name), counter(bare.c, name); g != w {
			t.Errorf("%s = %d with disarmed injector, %d without", name, g, w)
		}
	}
	if counter(carrying.c, "faults.injected") != 0 {
		t.Error("disarmed injector fired")
	}
	if carrying.res.MapTasks != bare.res.MapTasks || carrying.res.ReduceTasks != bare.res.ReduceTasks {
		t.Error("task counts diverged")
	}

	// Same invariance for the flowlet engine.
	hBare := runHAMRWordCount(t, nil)
	if hBare.err != nil {
		t.Fatal(hBare.err)
	}
	hOff := func() *hamrRun {
		c, err := cluster.New(cluster.Options{
			NumNodes:      chaosNodes,
			HDFSBlockSize: 4 << 10,
			Core:          core.Config{Workers: 2, CoalesceMsgs: -1},
			Faults:        loaded,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		files, err := hamrapps.DistributeLocalText(c, "words", corpus(), 2*chaosNodes)
		if err != nil {
			t.Fatal(err)
		}
		g, sink, err := hamrapps.BuildWordCount(hamrapps.WordCountOptions{
			Loader:   &hamrapps.LocalTextLoader{Files: files},
			Combiner: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := c.Run(g)
		r := &hamrRun{c: c, err: rerr}
		if rerr == nil {
			r.output = sink.Sorted()
		}
		return r
	}()
	if hOff.err != nil {
		t.Fatal(hOff.err)
	}
	if !reflect.DeepEqual(hOff.output, hBare.output) {
		t.Fatal("flowlet output diverged with a disarmed injector")
	}
	for _, name := range []string{"loader.splits", "faults.injected", "flowlet.refires"} {
		if g, w := counter(hOff.c, name), counter(hBare.c, name); g != w {
			t.Errorf("%s = %d with disarmed injector, %d without", name, g, w)
		}
	}
}
