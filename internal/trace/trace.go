// Package trace is a low-overhead span recorder for the simulated
// cluster. It records per-task timelines — spans carrying (node,
// task/flowlet id, phase, resource, byte count) plus instant events
// for faults, retries, spills and cache hits — and exports them as
// Chrome trace_event JSON together with a computed critical path.
//
// The recorder is nil-safe and default-off: every method on a nil
// *Tracer (and on the zero Span) is a no-op, so instrumented code
// paths stay bit-identical to their untraced behaviour when no tracer
// is installed. Appends are lock-free: each node (plus the driver)
// owns a sharded chunk list with an atomic claim cursor, so recording
// never introduces cross-node synchronization that could perturb the
// schedule being measured.
//
// Timestamps come from the engine's vtime.Clock. Under the virtual
// clock a span is stamped with the owning node's modeled lane time
// (vtime.VirtualClock.NodeTime), so -vclock runs produce
// deterministic, bit-identical timelines; under the real clock spans
// are stamped with the wall offset from the tracer's epoch.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hamr-go/hamr/internal/vtime"
)

// Event is one recorded span (Instant=false) or instant event
// (Instant=true, Dur always zero).
type Event struct {
	ID      string        // semantic identity, stable across runs
	Parent  string        // enclosing span ID ("" = root)
	Phase   string        // phase category: "map", "spill", "fetch", ...
	Res     string        // dominant resource: "disk", "net", "cpu", "startup", ""
	Node    int           // owning lane (-1 = driver)
	Begin   time.Duration // offset from trace epoch (lane time under vclock)
	Dur     time.Duration // span duration; zero for instants
	Bytes   int64         // bytes attributed to this event, if any
	Instant bool
}

const chunkSize = 256

// chunk is one fixed-size block of a shard's append-only event list.
// Slots are atomic.Pointer so a concurrent Events() collection (e.g.
// under -race) observes either nil or a fully written event.
type chunk struct {
	next  atomic.Pointer[chunk]
	used  atomic.Int64
	slots [chunkSize]atomic.Pointer[Event]
}

// shard is a per-lane event list. Padded so the hot claim cursors of
// neighbouring lanes do not share a cache line.
type shard struct {
	head *chunk
	tail atomic.Pointer[chunk]
	_    [48]byte
}

func newShard() *shard {
	s := &shard{head: &chunk{}}
	s.tail.Store(s.head)
	return s
}

func (s *shard) append(ev *Event) {
	for {
		c := s.tail.Load()
		idx := c.used.Add(1) - 1
		if idx < chunkSize {
			c.slots[idx].Store(ev)
			return
		}
		// Chunk full: link a fresh one (losers of the CAS retry on
		// the winner's chunk) and advance the tail hint.
		nc := &chunk{}
		if c.next.CompareAndSwap(nil, nc) {
			s.tail.CompareAndSwap(c, nc)
		} else {
			s.tail.CompareAndSwap(c, c.next.Load())
		}
	}
}

func (s *shard) collect(out []*Event) []*Event {
	for c := s.head; c != nil; c = c.next.Load() {
		n := c.used.Load()
		if n > chunkSize {
			n = chunkSize
		}
		for i := int64(0); i < n; i++ {
			if ev := c.slots[i].Load(); ev != nil {
				out = append(out, ev)
			}
		}
	}
	return out
}

// Tracer records spans and instants for one cluster run.
type Tracer struct {
	vc     *vtime.VirtualClock
	epoch  time.Time
	shards []*shard // shards[0] = driver, shards[1+i] = node i

	mu      sync.Mutex
	jobTags map[int64]string
}

// New returns a tracer for a cluster with the given node count,
// stamping events from clk. A *vtime.VirtualClock yields modeled
// lane-time stamps (deterministic across runs); any other clock (or
// nil) yields wall offsets from the tracer's creation time.
func New(nodes int, clk vtime.Clock) *Tracer {
	t := &Tracer{
		epoch:   time.Now(),
		shards:  make([]*shard, nodes+1),
		jobTags: make(map[int64]string),
	}
	if vc, ok := clk.(*vtime.VirtualClock); ok {
		t.vc = vc
	}
	for i := range t.shards {
		t.shards[i] = newShard()
	}
	return t
}

// Enabled reports whether events are being recorded. Instrumentation
// sites use it to skip building IDs when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// JobTag maps an engine-assigned job ID (a process-global sequence
// number) to a per-tracer index "j0", "j1", ... so span IDs are
// identical across runs within one process.
func (t *Tracer) JobTag(jobID int64) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tag, ok := t.jobTags[jobID]
	if !ok {
		tag = fmt.Sprintf("j%d", len(t.jobTags))
		t.jobTags[jobID] = tag
	}
	return tag
}

func (t *Tracer) now(node int) time.Duration {
	if t.vc != nil {
		return t.vc.NodeTime(node)
	}
	return time.Since(t.epoch)
}

func (t *Tracer) shardFor(node int) *shard {
	if node < 0 || node+1 >= len(t.shards) {
		return t.shards[0]
	}
	return t.shards[node+1]
}

// Span is an open interval created by Start. The zero Span (and any
// span from a nil tracer) is inert: End is a no-op.
type Span struct {
	t      *Tracer
	node   int
	begin  time.Duration
	id     string
	parent string
	phase  string
	res    string
}

// Start opens a span on the given node's lane. End (or EndBytes) must
// be called from a context where the same lane's time is meaningful.
func (t *Tracer) Start(node int, parent, id, phase, res string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, node: node, begin: t.now(node), id: id, parent: parent, phase: phase, res: res}
}

// End closes the span and records it.
func (s Span) End() { s.EndBytes(0) }

// EndBytes closes the span, attributing the given byte count.
func (s Span) EndBytes(bytes int64) {
	if s.t == nil {
		return
	}
	end := s.t.now(s.node)
	if end < s.begin {
		end = s.begin
	}
	s.t.shardFor(s.node).append(&Event{
		ID: s.id, Parent: s.parent, Phase: s.phase, Res: s.res,
		Node: s.node, Begin: s.begin, Dur: end - s.begin, Bytes: bytes,
	})
}

// Instant records a zero-duration event (fault, retry, spill, cache
// hit/miss, container grant) on the given node's lane.
func (t *Tracer) Instant(node int, parent, id, phase string, bytes int64) {
	if t == nil {
		return
	}
	t.shardFor(node).append(&Event{
		ID: id, Parent: parent, Phase: phase, Node: node,
		Begin: t.now(node), Bytes: bytes, Instant: true,
	})
}

// Events returns all recorded events in canonical order. The sort key
// is semantic (ID first, timestamps last), so two runs that record
// the same logical events in different arrival order — or with
// different wall timestamps — still enumerate identically whenever
// their stamps agree, which is what makes -vclock trace exports
// byte-identical across runs.
func (t *Tracer) Events() []*Event {
	if t == nil {
		return nil
	}
	var evs []*Event
	for _, s := range t.shards {
		evs = s.collect(evs)
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Instant != b.Instant {
			return !a.Instant
		}
		if a.Bytes != b.Bytes {
			return a.Bytes < b.Bytes
		}
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		return a.Dur < b.Dur
	})
	return evs
}

// Tree returns a timestamp-free structural dump — one
// "id|phase|parent|node|bytes|instant" line per event in canonical
// order. Real-clock and virtual-clock runs of the same deterministic
// workload must produce identical trees even though their stamps
// differ.
func Tree(evs []*Event) string {
	var sb []byte
	for _, ev := range evs {
		sb = fmt.Appendf(sb, "%s|%s|%s|%d|%d|%t\n",
			ev.ID, ev.Phase, ev.Parent, ev.Node, ev.Bytes, ev.Instant)
	}
	return string(sb)
}
