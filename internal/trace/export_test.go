package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
	"unicode/utf8"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chromeEvent mirrors the subset of the Chrome trace_event schema the
// writer emits, for round-trip decoding with encoding/json.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args struct {
		Parent string `json:"parent"`
		Res    string `json:"res"`
		Node   int    `json:"node"`
		Bytes  int64  `json:"bytes"`
	} `json:"args"`
}

type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// sanitize mirrors the writer's UTF-8 policy: each invalid byte becomes
// one U+FFFD (strings.ToValidUTF8 would collapse runs, which is not what
// the writer does).
func sanitize(s string) string {
	var b []byte
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = utf8.AppendRune(b, utf8.RuneError)
			i++
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return string(b)
}

// goldenEvents covers the writer's edge cases: driver lane, escapes,
// control characters, invalid UTF-8, negative durations and instants.
func goldenEvents() []*Event {
	return []*Event{
		{ID: "j0/job:wc", Phase: "job", Node: -1, Begin: 0, Dur: 2500 * time.Microsecond},
		{ID: "j0/map-00000", Parent: "j0", Phase: "map", Res: "cpu", Node: 0,
			Begin: 1500 * time.Nanosecond, Dur: 1234500 * time.Nanosecond, Bytes: 4096},
		{ID: "j0/map-00000/spill-0000", Parent: "j0/map-00000", Phase: "spill", Node: 0,
			Begin: 2 * time.Microsecond, Bytes: 512, Instant: true},
		{ID: "quote\"back\\slash", Parent: "ctl\x01chars\tok", Phase: "line\nbreak",
			Res: "\x80bad-utf8", Node: 1, Begin: time.Millisecond, Dur: -5, Bytes: -1},
		{ID: "unicode-ключ-鍵", Phase: "fetch", Res: "disk", Node: 2,
			Begin: time.Second, Dur: time.Nanosecond},
	}
}

// TestWriteJSONGolden pins the writer's byte-exact output — field order,
// integer-microsecond timestamps, escaping — against a checked-in golden
// file. Regenerate with `go test ./internal/trace -run Golden -update`.
func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("golden mismatch:\n got:\n%s\n want:\n%s", buf.Bytes(), want)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("golden output is not valid JSON")
	}
	if !utf8.Valid(buf.Bytes()) {
		t.Error("golden output is not valid UTF-8")
	}
}

// TestWriteJSONRoundTrip decodes the writer's output with encoding/json
// and checks every field survives: names keep their (sanitized) content,
// timestamps are exact microsecond values, instants carry no duration.
func TestWriteJSONRoundTrip(t *testing.T) {
	evs := goldenEvents()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != len(evs) {
		t.Fatalf("round trip lost events: got %d, want %d", len(doc.TraceEvents), len(evs))
	}
	for i, got := range doc.TraceEvents {
		ev := evs[i]
		if got.Name != sanitize(ev.ID) {
			t.Errorf("event %d name = %q, want %q", i, got.Name, sanitize(ev.ID))
		}
		if got.Cat != sanitize(ev.Phase) {
			t.Errorf("event %d cat = %q, want %q", i, got.Cat, sanitize(ev.Phase))
		}
		if got.Args.Parent != sanitize(ev.Parent) || got.Args.Res != sanitize(ev.Res) {
			t.Errorf("event %d args = %q/%q, want %q/%q",
				i, got.Args.Parent, got.Args.Res, sanitize(ev.Parent), sanitize(ev.Res))
		}
		if got.Args.Node != ev.Node || got.Tid != ev.Node+1 || got.Args.Bytes != ev.Bytes {
			t.Errorf("event %d node/tid/bytes = %d/%d/%d, want %d/%d/%d",
				i, got.Args.Node, got.Tid, got.Args.Bytes, ev.Node, ev.Node+1, ev.Bytes)
		}
		wantPh := "X"
		if ev.Instant {
			wantPh = "i"
		}
		if got.Ph != wantPh {
			t.Errorf("event %d ph = %q, want %q", i, got.Ph, wantPh)
		}
		begin := ev.Begin
		if begin < 0 {
			begin = 0
		}
		if wantTS := float64(begin.Nanoseconds()) / 1e3; got.TS != wantTS {
			t.Errorf("event %d ts = %v, want %v", i, got.TS, wantTS)
		}
		dur := ev.Dur
		if dur < 0 || ev.Instant {
			dur = 0
		}
		if wantDur := float64(dur.Nanoseconds()) / 1e3; got.Dur != wantDur {
			t.Errorf("event %d dur = %v, want %v", i, got.Dur, wantDur)
		}
	}
}

// FuzzWriteJSON feeds arbitrary strings (including invalid UTF-8 and
// control bytes) and extreme timestamps through the writer and asserts
// the three invariants the satellite requires: the output is valid JSON,
// valid UTF-8, and round-trips through encoding/json with no NaN/Inf
// (json.Valid rejects bare NaN/Infinity tokens, and the writer's integer
// pipeline cannot produce them).
func FuzzWriteJSON(f *testing.F) {
	f.Add("id", "parent", "map", "cpu", int64(0), int64(0), int64(0), false)
	f.Add("sp\xffan", "p\"ar", "ph\\ase", "\x00res", int64(-5), int64(1<<62), int64(-1), true)
	f.Add("j0/map-00001", "j0", "spill", "disk", int64(12345678), int64(999), int64(1<<40), false)
	f.Add("\xc3\x28mixed\xe2\x82", "�", "\n\r\t", "", int64(1), int64(-1), int64(0), true)
	f.Fuzz(func(t *testing.T, id, parent, phase, res string, begin, dur, byteCount int64, instant bool) {
		evs := []*Event{{
			ID: id, Parent: parent, Phase: phase, Res: res, Node: 1,
			Begin: time.Duration(begin), Dur: time.Duration(dur),
			Bytes: byteCount, Instant: instant,
		}}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, evs); err != nil {
			t.Fatal(err)
		}
		out := buf.Bytes()
		if !json.Valid(out) {
			t.Fatalf("invalid JSON: %q", out)
		}
		if !utf8.Valid(out) {
			t.Fatalf("invalid UTF-8: %q", out)
		}
		var doc chromeDoc
		if err := json.Unmarshal(out, &doc); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(doc.TraceEvents) != 1 {
			t.Fatalf("round trip lost the event: %q", out)
		}
		got := doc.TraceEvents[0]
		if got.Name != sanitize(id) || got.Cat != sanitize(phase) ||
			got.Args.Parent != sanitize(parent) || got.Args.Res != sanitize(res) {
			t.Errorf("string fields did not round-trip: %+v", got)
		}
		if got.TS < 0 || got.Dur < 0 {
			t.Errorf("negative timestamp leaked: ts=%v dur=%v", got.TS, got.Dur)
		}
	})
}
